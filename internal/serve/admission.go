package serve

import (
	"context"
	"errors"
)

// errBusy reports that both every render slot and every queue position is
// taken; the HTTP layer maps it to 429 + Retry-After.
var errBusy = errors.New("serve: at capacity (all render slots and queue positions taken)")

// admission is a two-stage semaphore admission controller: at most
// cap(slots) renders run concurrently, and at most cap(queue)-cap(slots)
// further requests may wait for a slot. Anything beyond that is rejected
// immediately with errBusy so overload turns into fast 429s instead of an
// unbounded goroutine pile-up.
type admission struct {
	slots chan struct{}
	queue chan struct{}
}

func newAdmission(concurrent, queueDepth int) *admission {
	if concurrent < 1 {
		concurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, concurrent),
		queue: make(chan struct{}, concurrent+queueDepth),
	}
}

// admit claims a render slot, waiting in the bounded queue if all slots are
// busy. It returns a release func on success; errBusy when the queue is
// full; ctx.Err() when the caller's context ends while queued.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, errBusy
	}
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots; <-a.queue }, nil
	case <-ctx.Done():
		<-a.queue
		return nil, ctx.Err()
	}
}

// inFlight reports the number of currently running renders.
func (a *admission) inFlight() int { return len(a.slots) }
