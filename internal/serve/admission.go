package serve

import (
	"context"
	"errors"
	"time"

	"github.com/quadkdv/quad/internal/telemetry"
)

// errBusy reports that both every render slot and every queue position is
// taken; the HTTP layer maps it to 429 + Retry-After.
var errBusy = errors.New("serve: at capacity (all render slots and queue positions taken)")

// admission is a two-stage semaphore admission controller: at most
// cap(slots) renders run concurrently, and at most cap(queue)-cap(slots)
// further requests may wait for a slot. Anything beyond that is rejected
// immediately with errBusy so overload turns into fast 429s instead of an
// unbounded goroutine pile-up.
type admission struct {
	slots chan struct{}
	queue chan struct{}

	// Telemetry recorders, nil (no-op) until instrument is called.
	admitted, rejected *telemetry.Counter
	queueWait          *telemetry.Histogram
	running            *telemetry.Gauge
}

func newAdmission(concurrent, queueDepth int) *admission {
	if concurrent < 1 {
		concurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, concurrent),
		queue: make(chan struct{}, concurrent+queueDepth),
	}
}

// instrument wires the controller's counters to the server's metric set.
func (a *admission) instrument(m *metrics) {
	if m == nil {
		return
	}
	a.admitted, a.rejected = m.admAdmitted, m.admRejected
	a.queueWait = m.admQueueWait
	a.running = m.admInFlight
}

// admit claims a render slot, waiting in the bounded queue if all slots are
// busy. It returns a release func on success; errBusy when the queue is
// full; ctx.Err() when the caller's context ends while queued.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejected.Inc()
		return nil, errBusy
	}
	var queued time.Time
	if a.queueWait != nil {
		queued = time.Now()
	}
	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		if a.queueWait != nil {
			a.queueWait.ObserveDuration(time.Since(queued))
		}
		a.running.Inc()
		return func() {
			<-a.slots
			<-a.queue
			a.running.Dec()
		}, nil
	case <-ctx.Done():
		<-a.queue
		return nil, ctx.Err()
	}
}

// inFlight reports the number of currently running renders.
func (a *admission) inFlight() int { return len(a.slots) }
