package serve

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/telemetry"
)

// endpoints are the label values of the per-endpoint HTTP metrics. Every
// series is pre-registered at server construction so the request path only
// touches atomics (and so scrapes show zero-valued series instead of
// absent ones).
var endpoints = []string{"render", "tiles", "hotspots", "progressive", "workmap", "info", "healthz", "readyz", "metrics", "other"}

// codeClasses bucket response statuses; per-exact-code series would blow up
// cardinality without telling an operator more than the class does.
var codeClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// renderOutcomes label kdv_render_requests_total: ok (full raster within
// deadline), degraded (progressive fallback raster), error (no raster).
var renderOutcomes = []string{"ok", "degraded", "error"}

// metrics is the server's whole metric surface, resolved once at
// construction. Everything is nil-safe through the telemetry recorders, so
// a Server without metrics (not constructible today, but cheap to keep
// true) records nothing.
type metrics struct {
	reg *telemetry.Registry

	httpRequests map[string]map[string]*telemetry.Counter // endpoint → class
	httpLatency  map[string]*telemetry.Histogram          // endpoint
	inFlight     *telemetry.Gauge

	renderRequests map[string]map[string]*telemetry.Counter // endpoint → outcome
	renderSeconds  map[string]*telemetry.Histogram          // endpoint
	degraded       *telemetry.Counter

	queuePops     *telemetry.Counter
	nodeEvals     *telemetry.Counter
	leafScans     *telemetry.Counter
	pointsScanned *telemetry.Counter
	sharedEvals   *telemetry.Counter
	tilesDecided  *telemetry.Counter
	promotions    *telemetry.Counter
	pixels        *telemetry.Counter

	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	cacheEvictions *telemetry.Counter
	cacheCoalesced *telemetry.Counter
	cacheEntries   *telemetry.Gauge

	admAdmitted  *telemetry.Counter
	admRejected  *telemetry.Counter
	admQueueWait *telemetry.Histogram
	admInFlight  *telemetry.Gauge

	ready *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{
		reg:            reg,
		httpRequests:   make(map[string]map[string]*telemetry.Counter, len(endpoints)),
		httpLatency:    make(map[string]*telemetry.Histogram, len(endpoints)),
		renderRequests: make(map[string]map[string]*telemetry.Counter, 3),
		renderSeconds:  make(map[string]*telemetry.Histogram, 3),
	}
	for _, ep := range endpoints {
		byClass := make(map[string]*telemetry.Counter, len(codeClasses))
		for _, cl := range codeClasses {
			byClass[cl] = reg.Counter("kdv_http_requests_total",
				"HTTP requests served, by endpoint and status class.",
				telemetry.L("endpoint", ep), telemetry.L("code", cl))
		}
		m.httpRequests[ep] = byClass
		m.httpLatency[ep] = reg.Histogram("kdv_http_request_seconds",
			"HTTP request latency in seconds, by endpoint.",
			telemetry.DurationBuckets, telemetry.L("endpoint", ep))
	}
	m.inFlight = reg.Gauge("kdv_http_in_flight", "HTTP requests currently being handled.")
	for _, ep := range []string{"render", "tiles", "hotspots", "progressive", "workmap"} {
		byOutcome := make(map[string]*telemetry.Counter, len(renderOutcomes))
		for _, oc := range renderOutcomes {
			byOutcome[oc] = reg.Counter("kdv_render_requests_total",
				"Render requests, by endpoint and outcome (ok, degraded, error).",
				telemetry.L("endpoint", ep), telemetry.L("outcome", oc))
		}
		m.renderRequests[ep] = byOutcome
		m.renderSeconds[ep] = reg.Histogram("kdv_render_seconds",
			"Wall time of the render itself (excluding queueing and encoding), by endpoint.",
			telemetry.DurationBuckets, telemetry.L("endpoint", ep))
	}
	m.degraded = reg.Counter("kdv_render_degraded_total",
		"Renders that missed their deadline and answered with the progressive partial raster.")

	m.queuePops = reg.Counter("kdv_render_queue_pops_total",
		"Priority-queue pops across per-pixel refinements (paper Section 3.2 iterations).")
	m.nodeEvals = reg.Counter("kdv_render_node_evals_total",
		"kd-tree node bound evaluations during per-pixel refinement.")
	m.leafScans = reg.Counter("kdv_render_leaf_scans_total",
		"Exact leaf fallbacks: leaves whose points were scanned exactly.")
	m.pointsScanned = reg.Counter("kdv_render_points_scanned_total",
		"Points scanned exactly inside leaf fallbacks.")
	m.sharedEvals = reg.Counter("kdv_render_shared_node_evals_total",
		"Tile-uniform bound evaluations (shared frontier phase and promotions).")
	m.tilesDecided = reg.Counter("kdv_render_tile_envelope_decided_total",
		"τKDV tiles classified whole by the shared tile envelope (zero per-pixel work).")
	m.promotions = reg.Counter("kdv_render_frontier_promotions_total",
		"Frontier promotions triggered by the coherence signal during per-pixel refinement.")
	m.pixels = reg.Counter("kdv_render_pixels_total", "Pixels rendered.")

	m.cacheHits = reg.Counter("kdv_cache_hits_total", "KDV build cache hits.")
	m.cacheMisses = reg.Counter("kdv_cache_misses_total", "KDV build cache misses (builds started).")
	m.cacheEvictions = reg.Counter("kdv_cache_evictions_total", "KDV build cache LRU evictions.")
	m.cacheCoalesced = reg.Counter("kdv_cache_coalesced_total",
		"Requests that waited on another request's in-flight build (singleflight).")
	m.cacheEntries = reg.Gauge("kdv_cache_entries", "KDV build cache residency.")

	m.admAdmitted = reg.Counter("kdv_admission_admitted_total", "Requests granted a render slot.")
	m.admRejected = reg.Counter("kdv_admission_rejected_total",
		"Requests rejected with 429 because slots and queue were full.")
	m.admQueueWait = reg.Histogram("kdv_admission_queue_wait_seconds",
		"Time spent queued for a render slot.", telemetry.DurationBuckets)
	m.admInFlight = reg.Gauge("kdv_admission_in_flight", "Renders currently holding a slot.")

	m.ready = reg.Gauge("kdv_ready", "1 once the warmup build has completed, else 0.")
	return m
}

// recordRenderStats folds one render's RenderStats into the work counters.
func (m *metrics) recordRenderStats(endpoint string, st quad.RenderStats) {
	if m == nil {
		return
	}
	m.queuePops.AddInt(st.Iterations)
	m.nodeEvals.AddInt(st.NodesEvaluated)
	m.leafScans.AddInt(st.LeafScans)
	m.pointsScanned.AddInt(st.PointsScanned)
	m.sharedEvals.AddInt(st.SharedNodeEvals)
	m.tilesDecided.AddInt(st.TilesDecided)
	m.promotions.AddInt(st.FrontierPromotions)
	m.pixels.AddInt(st.Pixels)
	m.renderSeconds[endpoint].ObserveDuration(st.Elapsed)
}

// recordOutcome counts one render request's outcome on a render endpoint.
func (m *metrics) recordOutcome(endpoint, outcome string) {
	if m == nil {
		return
	}
	if byOutcome, ok := m.renderRequests[endpoint]; ok {
		byOutcome[outcome].Inc()
	}
}

// endpointLabel maps a request path to its metric label; unknown paths
// share one "other" series so arbitrary probes cannot mint series.
func endpointLabel(path string) string {
	switch path {
	case "/render":
		return "render"
	case "/hotspots":
		return "hotspots"
	case "/progressive":
		return "progressive"
	case "/debug/workmap":
		return "workmap"
	case "/info":
		return "info"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/metrics":
		return "metrics"
	}
	if strings.HasPrefix(path, "/tiles/") {
		return "tiles"
	}
	return "other"
}

func codeClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	}
	return "2xx"
}

// setStatsHeaders surfaces the render's work counters as X-KDV-Stats-*
// response headers, the per-request view of the /metrics aggregates.
func setStatsHeaders(w http.ResponseWriter, st quad.RenderStats) {
	h := w.Header()
	h.Set("X-KDV-Stats-Pops", strconv.Itoa(st.Iterations))
	h.Set("X-KDV-Stats-Node-Evals", strconv.Itoa(st.NodesEvaluated))
	h.Set("X-KDV-Stats-Leaf-Scans", strconv.Itoa(st.LeafScans))
	h.Set("X-KDV-Stats-Points", strconv.Itoa(st.PointsScanned))
	h.Set("X-KDV-Stats-Shared-Evals", strconv.Itoa(st.SharedNodeEvals))
	h.Set("X-KDV-Stats-Tiles-Decided", strconv.Itoa(st.TilesDecided))
	h.Set("X-KDV-Stats-Promotions", strconv.Itoa(st.FrontierPromotions))
	h.Set("X-KDV-Stats-Render-Ms",
		strconv.FormatFloat(float64(st.Elapsed)/float64(time.Millisecond), 'f', 3, 64))
}
