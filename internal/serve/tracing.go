package serve

import (
	"net/http"

	"github.com/quadkdv/quad/internal/trace"
)

// traceIDHeader is the response header carrying the request's trace ID,
// alongside the standard traceparent echo — a convenience so clients that
// don't speak W3C trace-context can still quote the ID in bug reports.
const traceIDHeader = "X-Trace-ID"

// tracing decides whether a request is traced and, when it is, installs
// the Trace and root span on the request context and exports the finished
// spans after the response.
//
// A request is traced when the client propagated a valid W3C traceparent
// header (the trace continues under the caller's trace ID, parented on the
// caller's span) or when the server was configured with a TraceLog (every
// request is traced under a freshly minted ID). Otherwise the context
// carries no trace and every span call downstream is the nil-receiver
// no-op — the disabled path the render benchmarks bound at ≤2% overhead.
//
// The middleware sits between requestID and instrument: the trace ID is
// stamped on the response header before any handler runs, so error bodies,
// panic logs and the slow-query log read it off the ResponseWriter exactly
// like the request ID.
func (s *Server) tracing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tr *trace.Trace
		if tid, sid, err := trace.ParseTraceparent(r.Header.Get(trace.Header)); err == nil {
			tr = trace.Resume(tid, sid)
		} else if s.cfg.TraceLog != nil {
			tr = trace.New()
		}
		if tr == nil {
			next.ServeHTTP(w, r)
			return
		}
		root := tr.Start("request", nil)
		root.SetAttrs(
			trace.Str("method", r.Method),
			trace.Str("path", r.URL.Path),
			trace.Str("request_id", responseID(w)),
		)
		w.Header().Set(traceIDHeader, tr.ID().String())
		w.Header().Set(trace.Header, trace.FormatTraceparent(tr.ID(), root.ID))
		ctx := trace.NewContext(r.Context(), tr)
		ctx = trace.ContextWithSpan(ctx, root)
		next.ServeHTTP(w, r.WithContext(ctx))
		root.End()
		s.exportTrace(tr)
	})
}

// exportTrace appends the trace's spans to the configured trace log as
// JSON lines, serialized the same way the slow-query log is.
func (s *Server) exportTrace(tr *trace.Trace) {
	if s.cfg.TraceLog == nil {
		return
	}
	s.traceMu.Lock()
	err := trace.WriteJSONL(s.cfg.TraceLog, tr.Spans())
	s.traceMu.Unlock()
	if err != nil {
		s.log.Error("trace export failed", "trace_id", tr.ID().String(), "error", err)
	}
}

// responseTraceID reads the trace ID the tracing middleware stamped on the
// response (empty for untraced requests).
func responseTraceID(w http.ResponseWriter) string {
	return w.Header().Get(traceIDHeader)
}
