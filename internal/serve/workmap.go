package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"

	quad "github.com/quadkdv/quad"
)

// handleWorkMap serves GET /debug/workmap: the per-pixel work rasters of a
// render (refinement depth, node evaluations, settle bound gap) as a
// heat-ramp PNG — the diagnostic image that shows *where* the bound engine
// worked, pixel by pixel. Gated behind Config.EnableWorkMap.
//
// Parameters are /render's, plus:
//
//	layer  depth | evals | gap (default evals)
//	tau    when present, the τKDV work map at that threshold (mu±k or a
//	       literal, as on /hotspots); absent → the εKDV work map
func (s *Server) handleWorkMap(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableWorkMap {
		s.m.recordOutcome("workmap", "error")
		writeError(w, http.StatusNotFound, "work-map endpoint disabled (start the server with work maps enabled)")
		return
	}
	req, err := s.parse(r)
	if err != nil {
		s.m.recordOutcome("workmap", "error")
		parseError(w, r, err)
		return
	}
	layer := quad.WorkMapNodeEvals
	if v := r.URL.Query().Get("layer"); v != "" {
		layer, err = quad.ParseWorkMapLayer(v)
		if err != nil {
			s.m.recordOutcome("workmap", "error")
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var (
		wm *quad.WorkMap
		st quad.RenderStats
	)
	if spec := r.URL.Query().Get("tau"); spec != "" {
		var tau float64
		tau, err = s.resolveTau(r.Context(), req, spec)
		if err != nil {
			s.m.recordOutcome("workmap", "error")
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				requestError(w, r, err)
			} else {
				writeError(w, http.StatusBadRequest, "%v", err)
			}
			return
		}
		_, wm, st, err = req.kdv.RenderTauWorkMapInCtx(r.Context(), req.res, tau, req.window)
		w.Header().Set("X-KDV-Tau", strconv.FormatFloat(tau, 'g', -1, 64))
	} else {
		_, wm, st, err = req.kdv.RenderEpsWorkMapInCtx(r.Context(), req.res, req.eps, req.window)
	}
	setRenderStats(r, &st)
	s.m.recordRenderStats("workmap", st)
	if err != nil {
		s.m.recordOutcome("workmap", "error")
		requestError(w, r, err)
		return
	}
	s.m.recordOutcome("workmap", "ok")
	setStatsHeaders(w, st)
	w.Header().Set("X-KDV-Workmap-Layer", string(layer))
	w.Header().Set("Content-Type", "image/png")
	if err := wm.EncodePNG(w, layer); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
