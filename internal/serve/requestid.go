package serve

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// requestIDHeader is the header the middleware honors, echoes, and that
// error bodies and logs quote.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen truncates absurd client-supplied IDs so they cannot be
// used to bloat logs.
const maxRequestIDLen = 128

// requestID is the outermost middleware: it adopts the client's
// X-Request-ID (or mints one), and sets it on the response header before
// any handler runs — so every later layer (error bodies, panic logs, the
// slow-query log) can read the ID straight off the ResponseWriter without
// threading the request through.
func requestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" || len(id) > maxRequestIDLen {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// newRequestID returns 16 hex chars of crypto randomness — collision-proof
// for log correlation without coordinating any counter.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// responseID reads the request ID the middleware stamped on the response.
func responseID(w http.ResponseWriter) string {
	return w.Header().Get(requestIDHeader)
}
