package serve

import (
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := NewServer()
	s.DefaultN = 3000 // keep test renders fast
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestInfo(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/info")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if _, ok := info["datasets"]; !ok {
		t.Error("info missing datasets")
	}
}

func TestRenderPNG(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/render?dataset=crime&res=32x24&eps=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 24 {
		t.Errorf("image bounds %v", img.Bounds())
	}
}

func TestRenderParamValidation(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		"/render",                                  // missing dataset
		"/render?dataset=nope",                     // unknown dataset
		"/render?dataset=crime&res=banana",         // bad res
		"/render?dataset=crime&res=999999x999999",  // too big
		"/render?dataset=crime&eps=7",              // bad eps
		"/render?dataset=crime&kernel=nope",        // bad kernel
		"/render?dataset=crime&method=nope",        // bad method
		"/render?dataset=crime&n=0",                // bad n
		"/render?dataset=crime&seed=abc",           // bad seed
		"/hotspots?dataset=crime&tau=banana",       // bad tau
		"/progressive?dataset=crime&budget=banana", // bad budget
		"/progressive?dataset=crime&budget=5h",     // budget too long
	}
	for _, path := range cases {
		resp := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHotspots(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/hotspots?dataset=crime&res=24x24&tau=mu%2B0.1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatal(err)
	}
	tau, err := strconv.ParseFloat(resp.Header.Get("X-KDV-Tau"), 64)
	if err != nil || tau <= 0 {
		t.Errorf("X-KDV-Tau = %q", resp.Header.Get("X-KDV-Tau"))
	}
}

func TestHotspotsNumericTau(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/hotspots?dataset=crime&res=16x16&tau=0.001")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestProgressive(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/progressive?dataset=home&res=64x64&budget=50ms")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatal(err)
	}
	evaluated, err := strconv.Atoi(resp.Header.Get("X-KDV-Evaluated"))
	if err != nil || evaluated < 1 {
		t.Errorf("X-KDV-Evaluated = %q", resp.Header.Get("X-KDV-Evaluated"))
	}
}

func TestMethodVariants(t *testing.T) {
	ts := testServer(t)
	for _, m := range []string{"quad", "karl", "minmax", "exact", "zorder"} {
		resp := get(t, ts.URL+"/render?dataset=crime&res=16x12&eps=0.05&method="+m)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("method %s: status %d", m, resp.StatusCode)
		}
	}
	// KARL with a non-Gaussian kernel must fail loudly.
	resp := get(t, ts.URL+"/render?dataset=crime&res=16x12&kernel=triangular&method=karl")
	if resp.StatusCode == http.StatusOK {
		t.Error("KARL + triangular kernel should be rejected")
	}
}

func TestCacheReuse(t *testing.T) {
	s := NewServer()
	s.DefaultN = 2000
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp := get(t, ts.URL+"/render?dataset=elnino&res=16x12&eps=0.05")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if got := s.cache.len(); got != 1 {
		t.Errorf("cache has %d entries, want 1", got)
	}
}

func TestRenderBBox(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/render?dataset=crime&res=16x12&eps=0.05&bbox=10,10,40,40")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"bbox=1,2,3", "bbox=a,b,c,d", "bbox=5,5,5,9"} {
		resp := get(t, ts.URL+"/render?dataset=crime&res=16x12&"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
