package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"github.com/quadkdv/quad/internal/dataset"
)

// handleOps serves GET /debug/ops: one JSON document with the process's
// operational state — build identity, dataset and tileset registries, the
// cache/admission/breaker positions, the shadow auditor's state (including
// recent violations with their trace IDs), and the SLO snapshot with
// per-window burn rates. It is the page an on-call engineer reads first;
// everything in it is also on /metrics, but here it is joined and
// human-shaped.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	s.slo.Refresh()
	s.pyrMu.Lock()
	tilesets := append([]string{}, s.pyrOrder...)
	s.pyrMu.Unlock()

	snap := map[string]any{
		"build":           buildInfo(),
		"uptime_seconds":  time.Since(s.start).Seconds(),
		"ready":           s.warmState.Load() == warmDone,
		"datasets":        dataset.Names(),
		"default_dataset": s.cfg.WarmDataset,
		"default_n":       s.DefaultN,
		"limits": map[string]any{
			"max_concurrent":  s.cfg.MaxConcurrent,
			"max_queue":       s.cfg.MaxQueue,
			"cache_size":      s.cfg.CacheSize,
			"request_timeout": s.cfg.RequestTimeout.String(),
		},
		"cache": map[string]any{
			"entries":   s.cache.len(),
			"hits":      s.m.cacheHits.Value(),
			"misses":    s.m.cacheMisses.Value(),
			"evictions": s.m.cacheEvictions.Value(),
			"coalesced": s.m.cacheCoalesced.Value(),
		},
		"admission": map[string]any{
			"in_flight": s.adm.inFlight(),
			"admitted":  s.m.admAdmitted.Value(),
			"rejected":  s.m.admRejected.Value(),
		},
		"tilesets": tilesets,
		"audit":    s.auditor.State(),
		"slo":      s.slo.Snapshot(),
	}
	if c := s.cfg.Cluster; c != nil {
		workers := c.Workers()
		states := c.BreakerStates()
		ws := make([]map[string]any, len(workers))
		for i, wk := range workers {
			ws[i] = map[string]any{"worker": wk, "breaker": states[i].String()}
		}
		snap["cluster"] = map[string]any{"shards": c.Shards(), "workers": ws}
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// buildInfo extracts the process's build identity: Go version, main module
// path/version, and the VCS stamp when the binary was built from a checkout.
func buildInfo() map[string]any {
	info := map[string]any{"go_version": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info["module"] = bi.Main.Path
	if bi.Main.Version != "" {
		info["version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			info["revision"] = kv.Value
		case "vcs.time":
			info["build_time"] = kv.Value
		case "vcs.modified":
			info["modified"] = kv.Value == "true"
		}
	}
	return info
}
