package serve

import (
	"bufio"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/quadkdv/quad/internal/trace"
)

func tracedServer(t *testing.T, cfg Config) (*httptest.Server, *syncBuffer) {
	t.Helper()
	tl := &syncBuffer{}
	cfg.TraceLog = tl
	cfg.DefaultN = 3000
	s := NewServerWith(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, tl
}

// traceLogSpans parses the JSONL trace log into generic span records.
func traceLogSpans(t *testing.T, log string) []map[string]any {
	t.Helper()
	var spans []map[string]any
	sc := bufio.NewScanner(strings.NewReader(log))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad trace log line %q: %v", sc.Text(), err)
		}
		spans = append(spans, m)
	}
	return spans
}

// TestTraceparentPropagation is the round-trip test: a request carrying a
// W3C traceparent keeps its trace ID across the response headers and the
// exported spans, with the request's root span parented on the caller's
// span ID.
func TestTraceparentPropagation(t *testing.T) {
	ts, tl := tracedServer(t, Config{})
	const (
		tid    = "4bf92f3577b34da6a3ce929d0e0e4736"
		parent = "00f067aa0ba902b7"
	)
	req, err := http.NewRequest("GET", ts.URL+"/render?dataset=crime&res=32x24&eps=0.05", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, "00-"+tid+"-"+parent+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(traceIDHeader); got != tid {
		t.Errorf("X-Trace-ID = %q, want %q", got, tid)
	}
	tp := resp.Header.Get(trace.Header)
	if !strings.HasPrefix(tp, "00-"+tid+"-") || !strings.HasSuffix(tp, "-01") {
		t.Errorf("response traceparent %q does not continue trace %s", tp, tid)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatal(err)
	}

	spans := traceLogSpans(t, tl.String())
	if len(spans) == 0 {
		t.Fatal("no spans exported")
	}
	names := map[string]map[string]any{}
	for _, sp := range spans {
		if sp["trace_id"] != tid {
			t.Errorf("span %v exported under trace %v, want %s", sp["name"], sp["trace_id"], tid)
		}
		names[sp["name"].(string)] = sp
	}
	for _, want := range []string{"request", "admission", "cache", "render.eps", "shared_frontier", "pixel_refinement", "encode"} {
		if _, ok := names[want]; !ok {
			t.Errorf("missing %s span (got %v)", want, keysOf(names))
		}
	}
	if root, ok := names["request"]; ok && root["parent_id"] != parent {
		t.Errorf("request span parent %v, want propagated %s", root["parent_id"], parent)
	}
	if sp, ok := names["cache"]; ok {
		attrs, _ := sp["attrs"].(map[string]any)
		if oc := attrs["outcome"]; oc != "hit" && oc != "miss" && oc != "coalesced" {
			t.Errorf("cache span outcome = %v", oc)
		}
	}
}

func keysOf(m map[string]map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMalformedTraceparentMintsFreshTrace checks that a garbage header does
// not poison the request: with a TraceLog configured the server mints its
// own valid trace ID instead of failing or echoing the garbage.
func TestMalformedTraceparentMintsFreshTrace(t *testing.T) {
	ts, _ := tracedServer(t, Config{})
	for _, h := range []string{
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"not a traceparent",
	} {
		req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(trace.Header, h)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(traceIDHeader)
		if len(got) != 32 || strings.Contains(h, got) {
			t.Errorf("header %q: trace ID %q not freshly minted", h, got)
		}
	}
}

// TestUntracedRequestHasNoTraceHeaders checks the disabled path: no
// TraceLog and no traceparent → no trace headers, no per-request tracing.
func TestUntracedRequestHasNoTraceHeaders(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 3000})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp := get(t, ts.URL+"/render?dataset=crime&res=16x12&eps=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if v := resp.Header.Get(traceIDHeader); v != "" {
		t.Errorf("untraced request got X-Trace-ID %q", v)
	}
	if v := resp.Header.Get(trace.Header); v != "" {
		t.Errorf("untraced request got traceparent %q", v)
	}
}

// TestSlowQueryLogCarriesTraceAndCache checks the satellite fix: slow-query
// lines include the trace ID and the cache outcome.
func TestSlowQueryLogCarriesTraceAndCache(t *testing.T) {
	slow := &syncBuffer{}
	ts, _ := tracedServer(t, Config{SlowQuery: time.Nanosecond, SlowQueryLog: slow})
	resp := get(t, ts.URL+"/render?dataset=crime&res=32x24&eps=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tid := resp.Header.Get(traceIDHeader)
	if tid == "" {
		t.Fatal("no trace ID on response")
	}
	var entry slowQueryEntry
	line := strings.TrimSpace(slow.String())
	if line == "" {
		t.Fatal("no slow-query line")
	}
	// Concurrency in other tests is absent here; still, take the first line.
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.TraceID != tid {
		t.Errorf("slow-query trace_id = %q, want %q", entry.TraceID, tid)
	}
	if entry.Cache != "hit" && entry.Cache != "miss" && entry.Cache != "coalesced" {
		t.Errorf("slow-query cache outcome = %q", entry.Cache)
	}
	if entry.Stats == nil {
		t.Error("slow-query line missing render stats")
	}
}

// TestErrorBodyCarriesTraceID checks that structured error bodies quote the
// trace ID for traced requests.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	ts, _ := tracedServer(t, Config{})
	resp := get(t, ts.URL+"/render?dataset=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID == "" || body.TraceID != resp.Header.Get(traceIDHeader) {
		t.Errorf("error body trace_id %q != header %q", body.TraceID, resp.Header.Get(traceIDHeader))
	}
}

// TestWorkMapEndpointGatedAndServing checks /debug/workmap: 404 when
// disabled, a decodable PNG with stats headers per layer when enabled, and
// a 400 on a bogus layer.
func TestWorkMapEndpointGatedAndServing(t *testing.T) {
	off := NewServerWith(Config{DefaultN: 3000})
	tsOff := httptest.NewServer(off.Handler())
	t.Cleanup(tsOff.Close)
	if resp := get(t, tsOff.URL+"/debug/workmap?dataset=crime&res=16x12"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled endpoint: status %d, want 404", resp.StatusCode)
	}

	ts, _ := tracedServer(t, Config{EnableWorkMap: true})
	for _, layer := range []string{"", "depth", "evals", "gap"} {
		url := ts.URL + "/debug/workmap?dataset=crime&res=32x24&eps=0.05"
		if layer != "" {
			url += "&layer=" + layer
		}
		resp := get(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("layer %q: status %d", layer, resp.StatusCode)
		}
		img, err := png.Decode(resp.Body)
		if err != nil {
			t.Fatalf("layer %q: %v", layer, err)
		}
		if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 24 {
			t.Errorf("layer %q: bounds %v", layer, img.Bounds())
		}
		if resp.Header.Get("X-KDV-Stats-Node-Evals") == "" {
			t.Errorf("layer %q: missing stats headers", layer)
		}
	}
	if resp := get(t, ts.URL+"/debug/workmap?dataset=crime&res=16x12&layer=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus layer: status %d, want 400", resp.StatusCode)
	}
	// τ work map: decided tiles allowed, must still be a PNG.
	if resp := get(t, ts.URL+"/debug/workmap?dataset=crime&res=32x24&tau=mu&layer=depth"); resp.StatusCode != http.StatusOK {
		t.Errorf("tau work map: status %d", resp.StatusCode)
	} else if resp.Header.Get("X-KDV-Tau") == "" {
		t.Error("tau work map: missing X-KDV-Tau header")
	}
}

// TestProgressiveStatsHeaders checks the satellite: /progressive now
// carries the same X-KDV-Stats-* headers /render does.
func TestProgressiveStatsHeaders(t *testing.T) {
	ts, tl := tracedServer(t, Config{})
	resp := get(t, ts.URL+"/progressive?dataset=crime&res=32x24&eps=0.05&budget=5s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, h := range []string{"X-KDV-Stats-Pops", "X-KDV-Stats-Node-Evals", "X-KDV-Stats-Render-Ms"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("missing %s header on /progressive", h)
		}
	}
	if resp.Header.Get("X-KDV-Complete") != "true" {
		t.Errorf("X-KDV-Complete = %q", resp.Header.Get("X-KDV-Complete"))
	}
	_ = tl
}
