package serve

import (
	"context"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// tileTestServer runs a server with a small default n (fast tile builds)
// and, when dir is non-empty, a persistent tile store there.
func tileTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServerWith(Config{DefaultN: 2000, TilesDir: dir, TileSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getWith(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestTileEndpoint fetches a tile and asserts the response shape: a PNG of
// the configured tile size, a strong ETag, Cache-Control, and the bbox
// header; the second fetch is a cache hit.
func TestTileEndpoint(t *testing.T) {
	_, ts := tileTestServer(t, "")
	resp := get(t, ts.URL+"/tiles/crime/1/0/1.png?eps=0.05")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	etag := resp.Header.Get("ETag")
	if len(etag) < 4 || etag[0] != '"' || etag[len(etag)-1] != '"' {
		t.Fatalf("ETag %q is not a quoted strong validator", etag)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != tileCacheControl {
		t.Fatalf("Cache-Control %q", cc)
	}
	if bb := resp.Header.Get("X-KDV-Tile-Bbox"); bb == "" {
		t.Fatal("missing X-KDV-Tile-Bbox")
	}
	if src := resp.Header.Get("X-KDV-Tile-Source"); src != "build" && src != "coalesced" {
		t.Fatalf("first fetch source %q", src)
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 64 {
		t.Fatalf("tile bounds %v, want 64x64", img.Bounds())
	}

	resp2 := get(t, ts.URL+"/tiles/crime/1/0/1.png?eps=0.05")
	if src := resp2.Header.Get("X-KDV-Tile-Source"); src != "memory" {
		t.Fatalf("second fetch source %q, want memory", src)
	}
	if resp2.Header.Get("ETag") != etag {
		t.Fatal("ETag changed between identical fetches")
	}
}

// TestTileNotModified asserts the conditional-GET path: If-None-Match with
// the current ETag answers 304 with an empty body (and keeps the caching
// headers so the client refreshes its freshness lifetime).
func TestTileNotModified(t *testing.T) {
	_, ts := tileTestServer(t, "")
	url := ts.URL + "/tiles/crime/0/0/0.png?eps=0.05"
	first := get(t, url)
	etag := first.Header.Get("ETag")
	io.Copy(io.Discard, first.Body)

	for _, inm := range []string{etag, `"bogus", ` + etag, "W/" + etag, "*"} {
		resp := getWith(t, url, map[string]string{"If-None-Match": inm})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		if len(body) != 0 {
			t.Fatalf("If-None-Match %q: 304 carried %d body bytes", inm, len(body))
		}
		if resp.Header.Get("ETag") != etag {
			t.Fatalf("304 lost the ETag")
		}
		if resp.Header.Get("Cache-Control") != tileCacheControl {
			t.Fatalf("304 lost Cache-Control")
		}
	}
	// A stale validator still gets the full tile.
	resp := getWith(t, url, map[string]string{"If-None-Match": `"0000"`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale validator: status %d", resp.StatusCode)
	}
	if n, _ := io.Copy(io.Discard, resp.Body); n == 0 {
		t.Fatal("stale validator got empty body")
	}
}

// TestTileETagAcrossRestart asserts the ETag is content-derived and the
// disk store survives a server restart: a second server over the same tiles
// directory serves the identical ETag from disk, without a rebuild.
func TestTileETagAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := tileTestServer(t, dir)
	url1 := ts1.URL + "/tiles/crime/1/1/0.png?eps=0.05"
	resp := get(t, url1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	io.Copy(io.Discard, resp.Body)
	ts1.Close()
	s1.Close()

	_, ts2 := tileTestServer(t, dir)
	resp2 := get(t, ts2.URL+"/tiles/crime/1/1/0.png?eps=0.05")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restart status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Fatalf("ETag across restart: %s != %s", got, etag)
	}
	if src := resp2.Header.Get("X-KDV-Tile-Source"); src != "disk" {
		t.Fatalf("restart source %q, want disk", src)
	}
	// And a 304 round trip against the restarted server.
	resp3 := getWith(t, ts2.URL+"/tiles/crime/1/1/0.png?eps=0.05",
		map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("restart 304: status %d", resp3.StatusCode)
	}
}

// TestTileKeyInvalidation asserts the cache key includes dataset, ε, and
// tile options: changing any of them yields different tile identities
// (distinct ETags / fresh builds) instead of stale hits.
func TestTileKeyInvalidation(t *testing.T) {
	_, ts := tileTestServer(t, "")
	base := get(t, ts.URL+"/tiles/crime/1/0/0.png?eps=0.05")
	baseTag := base.Header.Get("ETag")
	io.Copy(io.Discard, base.Body)

	for name, url := range map[string]string{
		"eps":     ts.URL + "/tiles/crime/1/0/0.png?eps=0.2",
		"dataset": ts.URL + "/tiles/home/1/0/0.png?eps=0.05",
		"n":       ts.URL + "/tiles/crime/1/0/0.png?eps=0.05&n=1000",
		"scale":   ts.URL + "/tiles/crime/1/0/0.png?eps=0.05&log=0",
	} {
		resp := get(t, url)
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s variant: status %d: %s", name, resp.StatusCode, body)
		}
		if src := resp.Header.Get("X-KDV-Tile-Source"); src == "memory" || src == "disk" {
			t.Fatalf("%s variant served from cache (%s) — key misses the option", name, src)
		}
		if tag := resp.Header.Get("ETag"); tag == baseTag {
			t.Fatalf("%s variant shares the base ETag", name)
		}
		io.Copy(io.Discard, resp.Body)
	}
}

// TestTileErrors exercises the failure statuses: out-of-pyramid coords and
// malformed paths are 404/400, never 500.
func TestTileErrors(t *testing.T) {
	_, ts := tileTestServer(t, "")
	for url, want := range map[string]int{
		"/tiles/crime/1/2/0.png?eps=0.05":  http.StatusNotFound,   // x past 2^z
		"/tiles/crime/1/0/-1.png?eps=0.05": http.StatusNotFound,   // negative y
		"/tiles/crime/25/0/0.png?eps=0.05": http.StatusNotFound,   // z past cap
		"/tiles/crime/1/0/0?eps=0.05":      http.StatusNotFound,   // no .png
		"/tiles/crime/a/0/0.png?eps=0.05":  http.StatusBadRequest, // non-numeric
		"/tiles/nosuch/0/0/0.png":          http.StatusBadRequest, // unknown dataset
	} {
		resp := get(t, ts.URL+url)
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", url, resp.StatusCode, want)
		}
		io.Copy(io.Discard, resp.Body)
	}
}

// TestTileWarmup asserts Warmup with WarmZooms precomputes the configured
// levels: after warmup, those tiles serve from cache.
func TestTileWarmup(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 2000, TileSize: 64, WarmZooms: []int{0, 1}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("not ready after warmup")
	}
	// The warm pyramid uses the default options (eps=0.01, log scale).
	resp := get(t, ts.URL+"/tiles/crime/1/1/1.png?eps=0.01")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-KDV-Tile-Source"); src != "memory" {
		t.Fatalf("warmed tile source %q, want memory", src)
	}
	io.Copy(io.Discard, resp.Body)
}
