package serve

import (
	"container/list"
	"context"
	"sync"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/telemetry"
)

// kdvCache is a bounded LRU cache of built KDV instances with singleflight
// build deduplication: concurrent requests for the same cold key share one
// build, and builds run outside the lock so cache hits never wait behind a
// cold build.
type kdvCache struct {
	mu       sync.Mutex
	max      int                      // entry bound (≥ 1)
	ll       *list.List               // MRU at front; values are *cacheEntry
	entries  map[string]*list.Element // key → element in ll
	building map[string]*buildCall    // keys with an in-flight build

	// Telemetry recorders, nil (no-op) until instrument is called.
	hits, misses, coalesced, evictions *telemetry.Counter
	resident                           *telemetry.Gauge
}

// instrument wires the cache's counters to the server's metric set.
func (c *kdvCache) instrument(m *metrics) {
	if m == nil {
		return
	}
	c.hits, c.misses = m.cacheHits, m.cacheMisses
	c.coalesced, c.evictions = m.cacheCoalesced, m.cacheEvictions
	c.resident = m.cacheEntries
}

type cacheEntry struct {
	key string
	kdv *quad.KDV
}

// buildCall is one in-flight singleflight build; done is closed once kdv
// and err are final.
type buildCall struct {
	done chan struct{}
	kdv  *quad.KDV
	err  error
}

func newKDVCache(max int) *kdvCache {
	if max < 1 {
		max = 1
	}
	return &kdvCache{
		max:      max,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		building: make(map[string]*buildCall),
	}
}

// get returns the cached KDV for key, building it with build on a miss.
// Concurrent misses on one key share a single build; waiters abandon the
// wait (but not the build) when ctx is cancelled. Build errors are not
// cached — the next request retries.
func (c *kdvCache) get(ctx context.Context, key string, build func() (*quad.KDV, error)) (*quad.KDV, error) {
	k, _, err := c.getOutcome(ctx, key, build)
	return k, err
}

// getOutcome is get additionally reporting how the key was satisfied —
// "hit", "miss" (this call built it), or "coalesced" (waited on another
// call's build) — the label the cache span and slow-query log carry.
func (c *kdvCache) getOutcome(ctx context.Context, key string, build func() (*quad.KDV, error)) (*quad.KDV, string, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		k := el.Value.(*cacheEntry).kdv
		c.mu.Unlock()
		c.hits.Inc()
		return k, "hit", nil
	}
	if call, ok := c.building[key]; ok {
		c.mu.Unlock()
		c.coalesced.Inc()
		select {
		case <-call.done:
			return call.kdv, "coalesced", call.err
		case <-ctx.Done():
			return nil, "coalesced", ctx.Err()
		}
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[key] = call
	c.mu.Unlock()
	c.misses.Inc()

	// The build runs detached from the initiating request's context: if
	// that first caller disconnects (or times out) mid-build, the build
	// still completes and lands in the cache, and the coalesced waiters get
	// the real result instead of inheriting the initiator's cancellation.
	go func() {
		kdv, err := build()
		c.mu.Lock()
		delete(c.building, key)
		if err == nil {
			c.insertLocked(key, kdv)
		}
		call.kdv, call.err = kdv, err
		c.mu.Unlock()
		close(call.done)
	}()
	select {
	case <-call.done:
		return call.kdv, "miss", call.err
	case <-ctx.Done():
		return nil, "miss", ctx.Err()
	}
}

func (c *kdvCache) insertLocked(key string, k *quad.KDV) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).kdv = k
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, kdv: k})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.resident.Set(int64(c.ll.Len()))
}

// len reports the number of cached entries (not counting in-flight builds).
func (c *kdvCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// contains reports whether key is resident.
func (c *kdvCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}
