package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/tiles"
	"github.com/quadkdv/quad/internal/trace"
)

// tileCacheControl is the cache policy stamped on every tile response.
// Tiles are immutable for a given URL + options (the tileset key bakes in
// everything the bytes depend on), so clients and intermediaries may cache
// aggressively; the strong ETag revalidates for free after expiry.
const tileCacheControl = "public, max-age=3600"

// tileset names one pyramid: every parameter the tile bytes depend on.
// Unlike the KDV build cache key, eps ALWAYS participates (a tile rendered
// at ε=0.1 has different bytes than one at ε=0.01 even for bound methods),
// as do the tile size and the color scale — changing any option addresses a
// different tileset rather than serving stale tiles.
func tileset(p *renderParams, tileSize int) string {
	scale := "lin"
	if p.logScale {
		scale = "log"
	}
	return fmt.Sprintf("%s/%d/%d/%s/%s/eps=%g/t=%d/%s",
		p.name, p.n, p.seed, p.kern, p.method, p.eps, tileSize, scale)
}

// pyramidCall is one in-flight (or finished) pyramid construction; done is
// closed once p and err are final. Finished pyramids stay in the map (FIFO
// bounded) and serve as the registry entry.
type pyramidCall struct {
	done chan struct{}
	p    *tiles.Pyramid
	err  error
}

// pyramidFor returns the pyramid for the given parameters, constructing it
// at most once per tileset (singleflight, detached from the initiating
// request like the KDV build cache). Construction is expensive — a KDV
// build plus the zoom-0 base render that fixes the color scale — so a
// stampede on a cold tileset performs it once.
func (s *Server) pyramidFor(ctx context.Context, p *renderParams) (*tiles.Pyramid, error) {
	key := tileset(p, s.cfg.TileSize)
	sp, ctx := trace.StartSpan(ctx, "tiles.pyramid")
	sp.SetAttrs(trace.Str("tileset", key))
	defer sp.End()

	s.pyrMu.Lock()
	if call, ok := s.pyramids[key]; ok {
		s.pyrMu.Unlock()
		select {
		case <-call.done:
			return call.p, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &pyramidCall{done: make(chan struct{})}
	s.pyramids[key] = call
	s.pyrOrder = append(s.pyrOrder, key)
	// FIFO bound: pyramids pin their KDV (and its kd-tree) beyond the KDV
	// cache's LRU, so an unbounded registry would defeat that bound.
	for len(s.pyrOrder) > s.cfg.CacheSize {
		evict := s.pyrOrder[0]
		s.pyrOrder = s.pyrOrder[1:]
		delete(s.pyramids, evict)
	}
	s.pyrMu.Unlock()

	buildCtx := trace.NewContext(context.Background(), trace.FromContext(ctx))
	go func() {
		call.p, call.err = s.buildPyramid(buildCtx, p, key)
		if call.err != nil {
			// Failed constructions are not cached; the next request retries.
			s.pyrMu.Lock()
			if s.pyramids[key] == call {
				delete(s.pyramids, key)
			}
			s.pyrMu.Unlock()
		}
		close(call.done)
	}()
	select {
	case <-call.done:
		return call.p, call.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) buildPyramid(ctx context.Context, p *renderParams, key string) (*tiles.Pyramid, error) {
	kdv, err := s.kdvFor(ctx, p.name, p.n, p.seed, p.kern, p.method, p.eps)
	if err != nil {
		return nil, err
	}
	pyr, err := tiles.NewPyramid(ctx, tiles.PyramidConfig{
		Tileset:  key,
		KDV:      kdv,
		Eps:      p.eps,
		TileSize: s.cfg.TileSize,
		LogScale: p.logScale,
		Store:    s.tileStore,
		LRU:      s.tileLRU,
		Metrics:  s.tileM,
	})
	if err != nil {
		return nil, err
	}
	pyr.OnStats = func(st quad.RenderStats) { s.m.recordRenderStats("tiles", st) }
	pCopy := *p
	pyr.OnBuilt = func(ctx context.Context, c tiles.Coord, dm *quad.DensityMap) {
		s.auditTile(ctx, &pCopy, pyr, kdv, c, dm)
	}
	return pyr, nil
}

// handleTile serves GET /tiles/{dataset}/{z}/{x}/{y}.png. The same query
// parameters as /render select the build and render options (n, seed,
// kernel, method, eps, log); res and bbox do not apply — the pyramid's
// geometry is fixed by the dataset's extent and the zoom level.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	c, ok := parseTilePath(w, r)
	if !ok {
		s.m.recordOutcome("tiles", "error")
		return
	}
	p, err := s.parseParamsNamed(r.PathValue("dataset"), r.URL.Query())
	if err != nil {
		s.m.recordOutcome("tiles", "error")
		parseError(w, r, err)
		return
	}
	pyr, err := s.pyramidFor(r.Context(), p)
	if err != nil {
		s.m.recordOutcome("tiles", "error")
		parseError(w, r, err)
		return
	}
	tile, source, err := pyr.Tile(r.Context(), c)
	if err != nil {
		s.m.recordOutcome("tiles", "error")
		if c.Validate(0) != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		requestError(w, r, err)
		return
	}
	s.m.recordOutcome("tiles", "ok")

	h := w.Header()
	h.Set("ETag", tile.ETag)
	h.Set("Cache-Control", tileCacheControl)
	h.Set("X-KDV-Tile-Source", source)
	b := c.Bbox(pyr.Window())
	h.Set("X-KDV-Tile-Bbox", fmt.Sprintf("%g,%g,%g,%g", b.MinX, b.MinY, b.MaxX, b.MaxY))
	if etagMatch(r.Header.Get("If-None-Match"), tile.ETag) {
		s.tileM.NotModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "image/png")
	h.Set("Content-Length", strconv.Itoa(len(tile.PNG)))
	_, _ = w.Write(tile.PNG)
}

// parseTilePath extracts the tile coordinate from the path wildcards,
// answering the error response itself on failure. The y segment carries the
// ".png" extension (ServeMux wildcards span whole segments).
func parseTilePath(w http.ResponseWriter, r *http.Request) (tiles.Coord, bool) {
	ys, ok := strings.CutSuffix(r.PathValue("y"), ".png")
	if !ok {
		writeError(w, http.StatusNotFound, "tile paths end in .png: /tiles/{dataset}/{z}/{x}/{y}.png")
		return tiles.Coord{}, false
	}
	z, errZ := strconv.Atoi(r.PathValue("z"))
	x, errX := strconv.Atoi(r.PathValue("x"))
	y, errY := strconv.Atoi(ys)
	if errZ != nil || errX != nil || errY != nil {
		writeError(w, http.StatusBadRequest, "bad tile coordinate %s/%s/%s",
			r.PathValue("z"), r.PathValue("x"), r.PathValue("y"))
		return tiles.Coord{}, false
	}
	c := tiles.Coord{Z: z, X: x, Y: y}
	if err := c.Validate(0); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return tiles.Coord{}, false
	}
	return c, true
}

// etagMatch implements the If-None-Match comparison for a strong ETag: a
// literal match of any listed validator, or "*".
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		// A weak validator (W/"...") still matches for GET revalidation.
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// warmTiles precomputes the configured low-zoom levels of the default
// pyramid (warm dataset, default options) — the tile half of Warmup.
func (s *Server) warmTiles(ctx context.Context) error {
	if len(s.cfg.WarmZooms) == 0 {
		return nil
	}
	kern, _ := quad.ParseKernel("gaussian")
	method, _ := quad.ParseMethod("quad")
	p := &renderParams{
		name: s.cfg.WarmDataset, n: s.DefaultN, seed: 1,
		kern: kern, method: method, eps: 0.01, logScale: true,
	}
	pyr, err := s.pyramidFor(ctx, p)
	if err != nil {
		return err
	}
	_, err = pyr.Warm(ctx, s.cfg.WarmZooms)
	return err
}
