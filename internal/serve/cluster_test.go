package serve

import (
	"image/png"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"github.com/quadkdv/quad/internal/cluster"
	"github.com/quadkdv/quad/internal/cluster/faultinject"
	"github.com/quadkdv/quad/internal/telemetry"
)

// clusterServer wires a full coordinator-mode serving stack: a public
// server whose /render fans out to nWorkers real in-process shard workers
// through a fault-injection transport.
func clusterServer(t *testing.T, nWorkers int, mutate func(*cluster.CoordinatorConfig)) (*httptest.Server, *faultinject.Transport, []string) {
	t.Helper()
	fi := faultinject.New(nil, 1)
	var urls, hosts []string
	for i := 0; i < nWorkers; i++ {
		w := httptest.NewServer(cluster.NewWorker(cluster.WorkerConfig{}).Handler())
		t.Cleanup(w.Close)
		u, err := url.Parse(w.URL)
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, w.URL)
		hosts = append(hosts, u.Host)
	}
	ccfg := cluster.CoordinatorConfig{
		Workers:      urls,
		Client:       &http.Client{Transport: fi},
		Seed:         1,
		DisableHedge: true,
		RetryBase:    time.Millisecond,
		RetryMax:     4 * time.Millisecond,
		MaxAttempts:  2,
	}
	if mutate != nil {
		mutate(&ccfg)
	}
	reg := telemetry.NewRegistry()
	coord, err := cluster.NewCoordinator(ccfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServerWith(Config{DefaultN: 3000, Registry: reg, Cluster: coord})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, fi, hosts
}

func TestClusterRenderComplete(t *testing.T) {
	ts, _, _ := clusterServer(t, 2, nil)
	resp := get(t, ts.URL+"/render?dataset=crime&n=400&res=32x24&eps=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-KDV-Complete"); got != "true" {
		t.Fatalf("X-KDV-Complete = %q, want true", got)
	}
	if got := resp.Header.Get("X-KDV-Shards"); got != "2/2" {
		t.Fatalf("X-KDV-Shards = %q, want 2/2", got)
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 24 {
		t.Fatalf("image bounds %v", img.Bounds())
	}
}

func TestClusterRenderDegradesToPartial(t *testing.T) {
	ts, fi, hosts := clusterServer(t, 2, nil)
	// Worker 1 is dead: shard 1 has no replica to fail over to, so the
	// render degrades to the live shard instead of erroring.
	fi.SetDefault(hosts[1], faultinject.Action{Status: http.StatusServiceUnavailable})
	resp := get(t, ts.URL+"/render?dataset=crime&n=400&res=32x24&eps=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with a partial raster", resp.StatusCode)
	}
	if got := resp.Header.Get("X-KDV-Complete"); got != "false" {
		t.Fatalf("X-KDV-Complete = %q, want false", got)
	}
	if got := resp.Header.Get("X-KDV-Shards"); got != "1/2" {
		t.Fatalf("X-KDV-Shards = %q, want 1/2", got)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatalf("partial raster is not a PNG: %v", err)
	}
}

func TestClusterAllWorkersDead502(t *testing.T) {
	ts, fi, hosts := clusterServer(t, 2, nil)
	for _, h := range hosts {
		fi.SetDefault(h, faultinject.Action{Status: http.StatusInternalServerError})
	}
	resp := get(t, ts.URL+"/render?dataset=crime&n=400&res=16x16&eps=0.05")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 when the whole cluster is down", resp.StatusCode)
	}
}

func TestClusterZOrderFallsBackToLocal(t *testing.T) {
	ts, fi, hosts := clusterServer(t, 2, nil)
	// Even with every worker dead, zorder (not shardable) renders locally.
	for _, h := range hosts {
		fi.SetDefault(h, faultinject.Action{Status: http.StatusInternalServerError})
	}
	resp := get(t, ts.URL+"/render?dataset=crime&n=400&method=zorder&res=16x16&eps=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the local fallback path", resp.StatusCode)
	}
	if got := resp.Header.Get("X-KDV-Shards"); got != "" {
		t.Fatalf("local render carries X-KDV-Shards %q", got)
	}
}

func TestClusterOtherEndpointsStayLocal(t *testing.T) {
	ts, fi, hosts := clusterServer(t, 2, nil)
	for _, h := range hosts {
		fi.SetDefault(h, faultinject.Action{Status: http.StatusInternalServerError})
	}
	for _, path := range []string{
		"/hotspots?dataset=crime&n=400&res=16x16&eps=0.05",
		"/progressive?dataset=crime&n=400&res=16x16&eps=0.05&budget=2s",
	} {
		resp := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200 (local render)", path, resp.StatusCode)
		}
	}
}
