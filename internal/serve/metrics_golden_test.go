package serve

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// -update regenerates testdata/metrics_families.golden from the live
// registry: go test ./internal/serve -run TestMetricsGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the metrics golden file")

const goldenPath = "testdata/metrics_families.golden"

// scrapeFresh renders the Prometheus exposition of a freshly constructed
// server. Every family is registered eagerly at construction, so this is
// the server's complete metric surface.
func scrapeFresh(t *testing.T) []byte {
	t.Helper()
	s := NewServer()
	t.Cleanup(func() { s.Close() })
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// familyLines extracts the sorted "name kind help" drift surface from an
// exposition: one line per family, joining its TYPE and HELP declarations.
func familyLines(exposition []byte) []string {
	helps := map[string]string{}
	var fams []string
	for _, line := range strings.Split(string(exposition), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			helps[name] = help
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			fams = append(fams, name+" "+kind+" "+helps[name])
		}
	}
	sort.Strings(fams)
	return fams
}

// TestMetricsGolden is the drift gate: the set of exported metric families
// (name, type, and help text) must match the checked-in golden file. A rename, removal,
// or type change of any metric breaks dashboards and alerts silently — this
// test makes the break loud and reviewable. Intentional changes regenerate
// the file with -update.
func TestMetricsGolden(t *testing.T) {
	got := strings.Join(familyLines(scrapeFresh(t)), "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("metric families drifted from %s (intentional? rerun with -update):\n%s",
			goldenPath, diffLines(string(want), got))
	}
}

// diffLines reports the set difference between two newline-joined lists.
func diffLines(want, got string) string {
	w := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		w[l] = true
	}
	g := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		g[l] = true
	}
	var b strings.Builder
	for l := range w {
		if !g[l] {
			fmt.Fprintf(&b, "  - %s\n", l)
		}
	}
	for l := range g {
		if !w[l] {
			fmt.Fprintf(&b, "  + %s\n", l)
		}
	}
	return b.String()
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (NaN|[+-]Inf|[-+]?[0-9][0-9eE.+-]*)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\\\|\\"|\\n)*"$`)
)

// TestPrometheusExpositionParses validates the scrape against the text
// exposition format (version 0.0.4) the way a real Prometheus server would:
// every sample line must parse, carry well-formed labels, and belong to a
// declared family whose TYPE admits its suffix; every histogram's +Inf
// bucket must equal its _count.
func TestPrometheusExpositionParses(t *testing.T) {
	exposition := scrapeFresh(t)
	kinds := map[string]string{} // family name → TYPE
	infBucket := map[string]string{}
	counts := map[string]string{}
	for i, line := range strings.Split(strings.TrimRight(string(exposition), "\n"), "\n") {
		switch {
		case line == "":
			t.Fatalf("line %d: blank line in exposition", i+1)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", i+1, line)
			}
			if _, seen := kinds[name]; seen {
				t.Fatalf("line %d: HELP for %s after its TYPE", i+1, name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			name, kind := fields[0], fields[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q for %s", i+1, kind, name)
			}
			if _, dup := kinds[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", i+1, name)
			}
			kinds[name] = kind
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment: %q", i+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparseable sample: %q", i+1, line)
			}
			name, labels, value := m[1], m[2], m[3]
			if labels != "" {
				for _, pair := range splitLabels(labels) {
					if !labelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label %q in %q", i+1, pair, line)
					}
				}
			}
			fam, suffix := name, ""
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, s); base != name && kinds[base] == "histogram" {
					fam, suffix = base, s
					break
				}
			}
			kind, declared := kinds[fam]
			if !declared {
				t.Fatalf("line %d: sample %s has no TYPE declaration", i+1, name)
			}
			if kind == "histogram" && suffix == "" {
				t.Fatalf("line %d: bare sample %s for histogram family", i+1, name)
			}
			if kind != "histogram" && suffix != "" {
				t.Fatalf("line %d: histogram suffix on %s family %s", i+1, kind, fam)
			}
			series := fam + "{" + stripLe(labels) + "}"
			if suffix == "_bucket" && strings.Contains(labels, `le="+Inf"`) {
				infBucket[series] = value
			}
			if suffix == "_count" {
				counts[series] = value
			}
			if kind == "counter" || suffix == "_bucket" || suffix == "_count" {
				if _, err := strconv.ParseUint(value, 10, 64); err != nil {
					t.Fatalf("line %d: non-integer cumulative value %q: %q", i+1, value, line)
				}
			}
		}
	}
	if len(kinds) == 0 {
		t.Fatal("exposition declared no families")
	}
	for series, count := range counts {
		if inf, ok := infBucket[series]; !ok {
			t.Errorf("histogram %s has no +Inf bucket", series)
		} else if inf != count {
			t.Errorf("histogram %s: +Inf bucket %s != count %s", series, inf, count)
		}
	}
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLe removes the le bucket label so bucket and count lines of one
// series key identically.
func stripLe(labels string) string {
	var kept []string
	for _, pair := range splitLabels(labels) {
		if !strings.HasPrefix(pair, `le="`) {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}
