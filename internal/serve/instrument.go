package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	quad "github.com/quadkdv/quad"
)

// statusWriter captures the response status so the metrics and slow-query
// layers can see what the handler answered. A handler that never writes
// leaves status 0, which instrument treats as the implicit 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statsCtxKey carries the per-request statsHolder the render handlers fill
// in, so the slow-query log can include the render's work counters without
// the handlers knowing the log exists.
type statsCtxKey struct{}

type statsHolder struct {
	stats *quad.RenderStats
	// cacheOutcome records how the request's KDV build cache lookup was
	// satisfied ("hit", "miss", "coalesced"; empty when no lookup ran).
	cacheOutcome string
}

// setRenderStats publishes a render's stats to the instrumentation
// middleware. Only the request's own goroutine writes the holder, and the
// middleware reads it after the handler returns, so no locking is needed.
func setRenderStats(r *http.Request, st *quad.RenderStats) {
	if h, ok := r.Context().Value(statsCtxKey{}).(*statsHolder); ok {
		h.stats = st
	}
}

// setCacheOutcome publishes the request's cache-lookup outcome to the
// instrumentation middleware (same single-goroutine discipline as
// setRenderStats).
func setCacheOutcome(ctx context.Context, outcome string) {
	if h, ok := ctx.Value(statsCtxKey{}).(*statsHolder); ok {
		h.cacheOutcome = outcome
	}
}

// instrument wraps the whole handler tree with the HTTP-level telemetry:
// per-endpoint request/status counters, latency histograms, the in-flight
// gauge, and the slow-query log. It sits inside requestID (so the ID is on
// the response) and outside recoverJSON (so panics are counted as the 500s
// they become).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointLabel(r.URL.Path)
		s.m.inFlight.Inc()
		defer s.m.inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		holder := &statsHolder{}
		r = r.WithContext(context.WithValue(r.Context(), statsCtxKey{}, holder))
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.m.httpRequests[ep][codeClass(status)].Inc()
		s.m.httpLatency[ep].ObserveDuration(elapsed)
		s.logSlowQuery(sw, r, status, elapsed, holder)
	})
}

// slowQueryEntry is one JSON line of the slow-query log. Field order is
// fixed by the struct so the log is stable for tooling. TraceID is present
// for traced requests, so a slow line can be joined against the exported
// spans; Cache records how the KDV build lookup was satisfied.
type slowQueryEntry struct {
	Time      string          `json:"time"`
	RequestID string          `json:"request_id"`
	TraceID   string          `json:"trace_id,omitempty"`
	Method    string          `json:"method"`
	Path      string          `json:"path"`
	Query     string          `json:"query"`
	Status    int             `json:"status"`
	ElapsedMs float64         `json:"elapsed_ms"`
	Cache     string          `json:"cache,omitempty"`
	Stats     *slowQueryStats `json:"stats,omitempty"`
}

type slowQueryStats struct {
	Pixels        int     `json:"pixels"`
	QueuePops     int     `json:"queue_pops"`
	NodeEvals     int     `json:"node_evals"`
	LeafScans     int     `json:"leaf_scans"`
	PointsScanned int     `json:"points_scanned"`
	SharedEvals   int     `json:"shared_evals"`
	TilesDecided  int     `json:"tiles_decided"`
	Promotions    int     `json:"promotions"`
	RenderMs      float64 `json:"render_ms"`
	SharedMs      float64 `json:"shared_ms"`
}

// logSlowQuery appends one JSON line for any request that ran at least the
// configured threshold, with the render's work counters when the handler
// published them.
func (s *Server) logSlowQuery(w http.ResponseWriter, r *http.Request, status int, elapsed time.Duration, holder *statsHolder) {
	if s.cfg.SlowQuery <= 0 || elapsed < s.cfg.SlowQuery || s.cfg.SlowQueryLog == nil {
		return
	}
	entry := slowQueryEntry{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: responseID(w),
		TraceID:   responseTraceID(w),
		Method:    r.Method,
		Path:      r.URL.Path,
		Query:     r.URL.RawQuery,
		Status:    status,
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
		Cache:     holder.cacheOutcome,
	}
	if st := holder.stats; st != nil {
		entry.Stats = &slowQueryStats{
			Pixels:        st.Pixels,
			QueuePops:     st.Iterations,
			NodeEvals:     st.NodesEvaluated,
			LeafScans:     st.LeafScans,
			PointsScanned: st.PointsScanned,
			SharedEvals:   st.SharedNodeEvals,
			TilesDecided:  st.TilesDecided,
			Promotions:    st.FrontierPromotions,
			RenderMs:      float64(st.Elapsed) / float64(time.Millisecond),
			SharedMs:      float64(st.SharedElapsed) / float64(time.Millisecond),
		}
	}
	line, err := json.Marshal(entry)
	if err != nil {
		s.log.Error("slow-query marshal failed", "request_id", entry.RequestID, "error", err)
		return
	}
	line = append(line, '\n')
	s.slowMu.Lock()
	_, _ = s.cfg.SlowQueryLog.Write(line)
	s.slowMu.Unlock()
}
