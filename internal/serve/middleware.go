package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"github.com/quadkdv/quad/internal/trace"
)

// errorResponse is the structured JSON body of every non-2xx response.
// RequestID echoes X-Request-ID so a client error report can be matched to
// server logs; TraceID is present for traced requests so the report can be
// joined against exported spans too.
type errorResponse struct {
	Error     string `json:"error"`
	Status    int    `json:"status"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
}

// writeError emits a structured JSON error response. The request and trace
// IDs are read off the response header, where the requestID and tracing
// middleware stamped them before any handler ran.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{
		Error:     fmt.Sprintf(format, args...),
		Status:    status,
		RequestID: responseID(w),
		TraceID:   responseTraceID(w),
	})
}

// requestError maps an error from a handler body to the right status:
// deadline expiry → 503, client disconnect → nothing (the peer is gone),
// anything else → 500.
func requestError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// Client went away; there is nobody to answer.
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "render exceeded the request deadline: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// recoverJSON converts a handler panic into a 500 JSON response instead of
// letting it kill the connection (and, for panics on the main serve
// goroutine of custom servers, the process).
func (s *Server) recoverJSON(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.log.Error("panic in handler",
					"method", r.Method,
					"path", r.URL.Path,
					"request_id", responseID(w),
					"trace_id", responseTraceID(w),
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				writeError(w, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// baseCtxKey retrieves the pre-deadline client context, which the graceful
// degradation path uses to grant a short grace window after the request
// deadline fires while still honoring client disconnects.
type baseCtxKey struct{}

// baseContext returns the request's client-connection context without the
// per-request deadline applied (falling back to r.Context()).
func baseContext(r *http.Request) context.Context {
	if ctx, ok := r.Context().Value(baseCtxKey{}).(context.Context); ok {
		return ctx
	}
	return r.Context()
}

// guard wraps a render handler with the serving pipeline: admission
// control (429 when full), then the per-request deadline (keeping the
// undeadlined client context reachable via baseContext).
func (s *Server) guard(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp, _ := trace.StartSpan(r.Context(), "admission")
		release, err := s.adm.admit(r.Context())
		if err != nil {
			switch {
			case errors.Is(err, errBusy):
				sp.SetAttrs(trace.Str("outcome", "busy"))
				sp.End()
				// Jittered Retry-After: a herd of rejected clients that all
				// honor the header must not come back in the same second
				// and collide again.
				w.Header().Set("Retry-After", strconv.Itoa(s.jitterInt(1, 3)))
				writeError(w, http.StatusTooManyRequests, "server at capacity, retry shortly")
			case errors.Is(err, context.DeadlineExceeded):
				sp.SetAttrs(trace.Str("outcome", "timeout"))
				sp.End()
				writeError(w, http.StatusServiceUnavailable, "timed out waiting for a render slot")
			default:
				sp.SetAttrs(trace.Str("outcome", "cancelled"))
				sp.End()
			}
			// context.Canceled: the client hung up while queued; nothing to say.
			return
		}
		sp.SetAttrs(trace.Str("outcome", "admitted"))
		sp.End()
		defer release()
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			ctx = context.WithValue(ctx, baseCtxKey{}, r.Context())
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// deadlineRemaining returns how much of the request deadline is left, or
// fallback when no deadline is set.
func deadlineRemaining(ctx context.Context, fallback time.Duration) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return fallback
	}
	return time.Until(dl)
}
