package serve

import (
	"context"
	"encoding/json"
	"log"
	"net/http"
	"time"

	quad "github.com/quadkdv/quad"
)

// Warmup states. Failure returns the machine to idle so a later readiness
// probe retries the build instead of wedging the replica unready forever.
const (
	warmIdle int32 = iota
	warmRunning
	warmDone
)

// Warmup builds and caches the default dataset's KDV so the first real
// /render hits a warm cache, then — when Config.WarmZooms is set —
// precomputes those zoom levels of the default tile pyramid so the hot
// low-zoom tiles serve from cache from the first request. It is idempotent
// and races safely with the lazy warmup that /readyz probes trigger:
// whoever wins the CAS does the build, everyone else returns immediately
// (nil if warmup is already underway or done). A tile-warm failure fails
// the warmup like a build failure: the machine returns to idle and the
// next probe retries under the same jittered backoff.
func (s *Server) Warmup(ctx context.Context) error {
	if !s.warmState.CompareAndSwap(warmIdle, warmRunning) {
		return nil
	}
	kern, _ := quad.ParseKernel("gaussian")
	method, _ := quad.ParseMethod("quad")
	_, err := s.kdvFor(ctx, s.cfg.WarmDataset, s.DefaultN, 1, kern, method, 0.01)
	if err == nil {
		err = s.warmTiles(ctx)
	}
	if err != nil {
		s.noteWarmupFailure()
		s.warmState.Store(warmIdle)
		return err
	}
	s.warmMu.Lock()
	s.warmFails = 0
	s.warmMu.Unlock()
	s.warmState.Store(warmDone)
	s.m.ready.Set(1)
	return nil
}

// warmupRetryCap bounds the warmup retry backoff.
const warmupRetryCap = 30 * time.Second

// noteWarmupFailure records a failed warmup build and schedules the next
// probe-triggered retry with jittered exponential backoff (1s doubling to
// 30s, uniform in [d/2, d]).
func (s *Server) noteWarmupFailure() {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	d := time.Second << uint(min(s.warmFails, 10))
	if d > warmupRetryCap || d <= 0 {
		d = warmupRetryCap
	}
	s.warmFails++
	s.warmNext = time.Now().Add(s.jitterDur(d))
}

// shouldRetryWarmup reports whether a cold /readyz probe may launch the
// warmup now, honoring the backoff window set by the last failure. A fresh
// server (no failures yet) always may.
func (s *Server) shouldRetryWarmup() bool {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	return !time.Now().Before(s.warmNext)
}

// Ready reports whether the warmup build has completed.
func (s *Server) Ready() bool { return s.warmState.Load() == warmDone }

// handleReadyz is the readiness probe: 200 only once the default KDV is
// built and cached, 503 while cold. A cold probe triggers the warmup in the
// background, so replicas behind a load balancer warm themselves without
// any operator action — the first probe starts the build, a later probe
// turns green. After a failed build, retries are gated by jittered
// exponential backoff rather than launched by every probe: a load balancer
// probing a replica with a broken warm dataset every second must not turn
// into a build stampede (nor synchronize retries across replicas).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Ready() {
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ready"})
		return
	}
	if s.shouldRetryWarmup() {
		go func() {
			if err := s.Warmup(context.Background()); err != nil {
				log.Printf("serve: warmup: %v", err)
			}
		}()
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "warming"})
}
