package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	quad "github.com/quadkdv/quad"
)

// slowPath is a render that takes hundreds of milliseconds (an exact scan
// of 20k points per pixel) — long enough that admission, cancellation and
// deadline behavior is observable, short enough for tests.
const slowPath = "/render?dataset=crime&n=20000&method=exact&res=48x48"

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func decodeError(t *testing.T, resp *http.Response) errorResponse {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error content type %q, want application/json", ct)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if e.Status != resp.StatusCode {
		t.Errorf("body status %d != response status %d", e.Status, resp.StatusCode)
	}
	if e.Error == "" {
		t.Error("empty error message")
	}
	return e
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("status = %v, want ok", body["status"])
	}
}

// TestErrorResponsesAreJSON re-walks the 4xx paths asserting the
// structured error contract, not just the status code.
func TestErrorResponsesAreJSON(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		"/render",
		"/render?dataset=nope",
		"/render?dataset=crime&res=banana",
		"/render?dataset=crime&res=999999x999999",
		"/render?dataset=crime&eps=7",
		"/render?dataset=crime&kernel=nope",
		"/render?dataset=crime&method=nope",
		"/render?dataset=crime&n=0",
		"/render?dataset=crime&seed=abc",
		"/render?dataset=crime&res=16x12&bbox=5,5,5,9",
		"/hotspots?dataset=crime&tau=banana",
		"/progressive?dataset=crime&budget=banana",
		"/progressive?dataset=crime&budget=5h",
		"/progressive?dataset=crime&res=16x12&bbox=1,2,3",
	}
	for _, path := range cases {
		resp := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
			continue
		}
		decodeError(t, resp)
	}
}

// TestProgressiveBBox verifies /progressive actually honors the pan/zoom
// window: run to completion it must produce byte-identical PNG output to
// /render over the same window (same exact per-pixel evaluations).
func TestProgressiveBBox(t *testing.T) {
	ts := testServer(t)
	const params = "dataset=crime&n=3000&method=exact&res=24x16&bbox=10,10,40,40"
	full := get(t, ts.URL+"/render?"+params)
	if full.StatusCode != http.StatusOK {
		t.Fatalf("render status %d", full.StatusCode)
	}
	want, err := io.ReadAll(full.Body)
	if err != nil {
		t.Fatal(err)
	}
	prog := get(t, ts.URL+"/progressive?"+params+"&budget=50s")
	if prog.StatusCode != http.StatusOK {
		t.Fatalf("progressive status %d", prog.StatusCode)
	}
	if prog.Header.Get("X-KDV-Complete") != "true" {
		t.Fatal("progressive render did not complete")
	}
	got, err := io.ReadAll(prog.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("progressive bbox render differs from windowed full render")
	}
}

// TestAdmission429 fills the single render slot (queueing disabled) and
// asserts the next request is rejected with 429 + Retry-After.
func TestAdmission429(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 3000, MaxConcurrent: 1, MaxQueue: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+slowPath, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return s.adm.inFlight() == 1 }, "slow render in flight")

	resp := get(t, ts.URL+"/render?dataset=crime&n=3000&res=8x8")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	decodeError(t, resp)

	cancel() // abandon the slow render
	<-done
	waitFor(t, 5*time.Second, func() bool { return s.adm.inFlight() == 0 }, "slot release after cancel")
}

// TestClientDisconnectCancelsRender aborts a slow request client-side and
// asserts the server-side render goroutine exits promptly (observed via
// the admission slot being released long before the full render time).
func TestClientDisconnectCancelsRender(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 3000, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+slowPath, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return s.adm.inFlight() == 1 }, "slow render in flight")

	start := time.Now()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want Canceled", err)
	}
	// The full render takes hundreds of ms; the worker must exit within
	// roughly one row of work after the disconnect.
	waitFor(t, 2*time.Second, func() bool { return s.adm.inFlight() == 0 }, "render slot release")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("render still running %s after disconnect", elapsed)
	}
}

// TestDeadlineDegradesToPartial gives /render a deadline far below its
// render time and asserts graceful degradation: a 200 carrying the
// progressive partial raster, flagged incomplete.
func TestDeadlineDegradesToPartial(t *testing.T) {
	s := NewServerWith(Config{
		DefaultN:       3000,
		RequestTimeout: 100 * time.Millisecond,
		DegradeBudget:  60 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := get(t, ts.URL+slowPath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (degraded)", resp.StatusCode)
	}
	if got := resp.Header.Get("X-KDV-Complete"); got != "false" {
		t.Errorf("X-KDV-Complete = %q, want false", got)
	}
	if resp.Header.Get("X-KDV-Evaluated") == "" {
		t.Error("missing X-KDV-Evaluated on degraded response")
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 48 || img.Bounds().Dy() != 48 {
		t.Errorf("degraded image bounds %v", img.Bounds())
	}
}

// TestDeadlineHotspots503 pins the non-degradable endpoint's deadline
// behavior: a structured 503.
func TestDeadlineHotspots503(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 3000, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := get(t, ts.URL+"/hotspots?dataset=crime&n=20000&method=exact&res=48x48&tau=0.001")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	decodeError(t, resp)
}

// TestProgressiveDeadlineClamped: /progressive with a budget beyond the
// request deadline must still answer 200 with a partial raster (the budget
// is clamped under the deadline) instead of a 503.
func TestProgressiveDeadlineClamped(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 3000, RequestTimeout: 150 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := get(t, ts.URL+"/progressive?dataset=crime&n=20000&method=exact&res=48x48&budget=30s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-KDV-Complete"); got != "false" {
		t.Errorf("X-KDV-Complete = %q, want false", got)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestSingleflightDedup: concurrent cold-cache requests for one key share
// a single build.
func TestSingleflightDedup(t *testing.T) {
	c := newKDVCache(8)
	var builds atomic.Int32
	build := func() (*quad.KDV, error) {
		builds.Add(1)
		time.Sleep(50 * time.Millisecond)
		return quad.New([]float64{0, 0, 1, 1, 2, 2}, 2)
	}
	var wg sync.WaitGroup
	results := make([]*quad.KDV, 10)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, err := c.get(context.Background(), "key", build)
			if err != nil {
				t.Error(err)
			}
			results[i] = k
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for one key, want 1", n)
	}
	for i, k := range results {
		if k != results[0] {
			t.Errorf("result %d is a different instance", i)
		}
	}
}

// TestCacheHitDoesNotWaitOnColdBuild: while a cold build for key B blocks,
// a hit on resident key A must return immediately.
func TestCacheHitDoesNotWaitOnColdBuild(t *testing.T) {
	c := newKDVCache(8)
	warm, err := c.get(context.Background(), "A", func() (*quad.KDV, error) {
		return quad.New([]float64{0, 0, 1, 1}, 2)
	})
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	building := make(chan struct{})
	go func() {
		_, _ = c.get(context.Background(), "B", func() (*quad.KDV, error) {
			close(building)
			<-release
			return quad.New([]float64{0, 0, 1, 1}, 2)
		})
	}()
	<-building

	done := make(chan *quad.KDV, 1)
	go func() {
		k, _ := c.get(context.Background(), "A", func() (*quad.KDV, error) {
			t.Error("hit on resident key triggered a build")
			return nil, errors.New("unexpected build")
		})
		done <- k
	}()
	select {
	case k := <-done:
		if k != warm {
			t.Error("hit returned a different instance")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cache hit blocked behind an unrelated cold build")
	}
	close(release)
}

// TestCacheWaiterHonorsContext: a request waiting on someone else's build
// gives up when its context is cancelled.
func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newKDVCache(8)
	release := make(chan struct{})
	building := make(chan struct{})
	go func() {
		_, _ = c.get(context.Background(), "K", func() (*quad.KDV, error) {
			close(building)
			<-release
			return quad.New([]float64{0, 0, 1, 1}, 2)
		})
	}()
	<-building
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.get(ctx, "K", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// TestCacheInitiatorDisconnectDoesNotPoisonWaiters: the first caller of a
// cold key — the one whose request launched the build — disconnecting
// mid-build must not fail or re-run the build for everyone coalesced behind
// it. The build runs detached; the initiator gets its context error, the
// waiters get the finished KDV, and the result lands in the cache.
func TestCacheInitiatorDisconnectDoesNotPoisonWaiters(t *testing.T) {
	c := newKDVCache(8)
	var builds atomic.Int32
	release := make(chan struct{})
	building := make(chan struct{})
	build := func() (*quad.KDV, error) {
		builds.Add(1)
		close(building)
		<-release
		return quad.New([]float64{0, 0, 1, 1, 2, 2}, 2)
	}

	// The initiator starts the build, then its client vanishes.
	ctx1, cancel1 := context.WithCancel(context.Background())
	initErr := make(chan error, 1)
	go func() {
		_, _, err := c.getOutcome(ctx1, "K", build)
		initErr <- err
	}()
	<-building
	cancel1()
	if err := <-initErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("initiator err = %v, want context.Canceled", err)
	}

	// A waiter arriving after the disconnect coalesces onto the still-live
	// build — its closure must never run.
	type got struct {
		kdv *quad.KDV
		err error
	}
	waiter := make(chan got, 1)
	go func() {
		k, _, err := c.getOutcome(context.Background(), "K", func() (*quad.KDV, error) {
			return nil, errors.New("waiter re-ran the build")
		})
		waiter <- got{k, err}
	}()
	// Give the waiter a moment to coalesce, then finish the build.
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case g := <-waiter:
		if g.err != nil {
			t.Fatalf("waiter inherited the initiator's fate: %v", g.err)
		}
		if g.kdv == nil {
			t.Fatal("waiter got a nil KDV")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never resolved")
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds, want 1", n)
	}
	if !c.contains("K") {
		t.Fatal("finished build did not land in the cache")
	}
}

// TestCacheLRUBound: the cache never exceeds its bound and evicts oldest
// first.
func TestCacheLRUBound(t *testing.T) {
	c := newKDVCache(2)
	mk := func() (*quad.KDV, error) { return quad.New([]float64{0, 0, 1, 1}, 2) }
	for _, key := range []string{"a", "b", "c"} {
		if _, err := c.get(context.Background(), key, mk); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	if c.contains("a") {
		t.Error("oldest entry not evicted")
	}
	if !c.contains("b") || !c.contains("c") {
		t.Error("recent entries evicted")
	}
	// Touch b, insert d: c (now oldest) must go.
	if _, err := c.get(context.Background(), "b", mk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get(context.Background(), "d", mk); err != nil {
		t.Fatal(err)
	}
	if c.contains("c") || !c.contains("b") || !c.contains("d") {
		t.Error("LRU order not respected on touch")
	}
}

// TestCacheBuildErrorNotCached: a failed build must not poison the key.
func TestCacheBuildErrorNotCached(t *testing.T) {
	c := newKDVCache(4)
	boom := errors.New("boom")
	if _, err := c.get(context.Background(), "k", func() (*quad.KDV, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	k, err := c.get(context.Background(), "k", func() (*quad.KDV, error) { return quad.New([]float64{0, 0, 1, 1}, 2) })
	if err != nil || k == nil {
		t.Fatalf("retry after failed build: %v, %v", k, err)
	}
}

// TestZOrderEpsInCacheKey pins the satellite fix: zorder builds for
// different eps are distinct cache entries, other methods still share one.
func TestZOrderEpsInCacheKey(t *testing.T) {
	if k1, k2 := cacheKey("crime", 1000, 1, quad.Gaussian, quad.MethodZOrder, 0.01),
		cacheKey("crime", 1000, 1, quad.Gaussian, quad.MethodZOrder, 0.1); k1 == k2 {
		t.Error("zorder cache key ignores eps")
	}
	if k1, k2 := cacheKey("crime", 1000, 1, quad.Gaussian, quad.MethodQuadratic, 0.01),
		cacheKey("crime", 1000, 1, quad.Gaussian, quad.MethodQuadratic, 0.1); k1 != k2 {
		t.Error("quad cache key needlessly includes eps")
	}

	s := NewServerWith(Config{DefaultN: 2000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, eps := range []string{"0.01", "0.1"} {
		resp := get(t, ts.URL+"/render?dataset=crime&res=8x8&method=zorder&eps="+eps)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eps=%s: status %d", eps, resp.StatusCode)
		}
	}
	if got := s.cache.len(); got != 2 {
		t.Errorf("zorder builds for two eps share %d cache entries, want 2", got)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler becomes a structured
// 500, not a crashed connection.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 2000})
	defer s.Close()
	h := s.recoverJSON(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/render", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if e.Status != 500 {
		t.Errorf("body status %d", e.Status)
	}
}

// TestGracefulShutdownDrains starts a real http.Server, puts a slow render
// in flight, then calls Shutdown — the in-flight request must complete
// with a 200 and Shutdown must return nil, mirroring kdvserve's
// SIGINT/SIGTERM path.
func TestGracefulShutdownDrains(t *testing.T) {
	s := NewServerWith(Config{DefaultN: 3000})
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	url := fmt.Sprintf("http://%s%s", ln.Addr(), slowPath)

	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			done <- result{0, err}
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		done <- result{resp.StatusCode, err}
	}()
	waitFor(t, 5*time.Second, func() bool { return s.adm.inFlight() == 1 }, "slow render in flight")

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status %d during drain", r.status)
	}

	// New connections must be refused after shutdown.
	if _, err := http.Get(url); err == nil {
		t.Error("request succeeded after Shutdown")
	}
}
