package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the exact sample line `name{labels}`.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, sample+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("sample %q not found in scrape:\n%s", sample, body)
	return 0
}

// TestMetricsEndToEnd drives real requests through the handler tree and
// asserts the scrape reflects them: request counters, render work
// counters, cache hit/miss, and the latency histogram count.
func TestMetricsEndToEnd(t *testing.T) {
	ts := testServer(t)

	// Cold render: one cache miss. Same params again: one hit.
	for i := 0; i < 2; i++ {
		resp := get(t, ts.URL+"/render?dataset=crime&res=32x24&eps=0.05")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("render %d status %d", i, resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
	}
	body := scrape(t, ts.URL)

	if v := metricValue(t, body, `kdv_render_requests_total{endpoint="render",outcome="ok"}`); v != 2 {
		t.Errorf("render ok count = %g, want 2", v)
	}
	if v := metricValue(t, body, `kdv_http_requests_total{endpoint="render",code="2xx"}`); v != 2 {
		t.Errorf("http 2xx count = %g, want 2", v)
	}
	if v := metricValue(t, body, `kdv_cache_misses_total`); v != 1 {
		t.Errorf("cache misses = %g, want 1", v)
	}
	if v := metricValue(t, body, `kdv_cache_hits_total`); v != 1 {
		t.Errorf("cache hits = %g, want 1", v)
	}
	if v := metricValue(t, body, `kdv_cache_entries`); v != 1 {
		t.Errorf("cache entries = %g, want 1", v)
	}
	for _, name := range []string{
		"kdv_render_queue_pops_total",
		"kdv_render_node_evals_total",
		"kdv_render_pixels_total",
		"kdv_admission_admitted_total",
	} {
		if v := metricValue(t, body, name); v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
	if v := metricValue(t, body, `kdv_http_request_seconds_count{endpoint="render"}`); v != 2 {
		t.Errorf("latency histogram count = %g, want 2", v)
	}
	// A 400 lands in the 4xx class and the error outcome.
	resp := get(t, ts.URL+"/render?dataset=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dataset status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	body = scrape(t, ts.URL)
	if v := metricValue(t, body, `kdv_http_requests_total{endpoint="render",code="4xx"}`); v != 1 {
		t.Errorf("http 4xx count = %g, want 1", v)
	}
	if v := metricValue(t, body, `kdv_render_requests_total{endpoint="render",outcome="error"}`); v != 1 {
		t.Errorf("render error count = %g, want 1", v)
	}
}

// TestAdmissionRejectCounter fills every slot and queue position with slow
// renders, forces a 429, and asserts the rejection counter moved.
func TestAdmissionRejectCounter(t *testing.T) {
	s := NewServerWith(Config{MaxConcurrent: 1, MaxQueue: -1, DefaultN: 3000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single render slot.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		resp, err := http.Get(ts.URL + slowPath)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(release)
	}()
	<-started
	// Probe with three concurrent requests until one bounces: with a single
	// slot and no queue, at most one of the three is admitted, so a 429 is
	// guaranteed even if the occupying render above already finished (which
	// a sequential probe would miss — one request at a time never collides).
	waitFor(t, 5*time.Second, func() bool {
		codes := make(chan int, 3)
		for i := 0; i < 3; i++ {
			go func() {
				resp, err := http.Get(ts.URL + slowPath)
				if err != nil {
					codes <- 0
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				codes <- resp.StatusCode
			}()
		}
		saw := false
		for i := 0; i < 3; i++ {
			if <-codes == http.StatusTooManyRequests {
				saw = true
			}
		}
		return saw
	}, "never saw a 429")
	<-release
	wg.Wait()

	body := scrape(t, ts.URL)
	if v := metricValue(t, body, `kdv_admission_rejected_total`); v < 1 {
		t.Errorf("admission rejections = %g, want ≥ 1", v)
	}
}

// TestReadyz: a cold server reports 503 warming, triggers the warmup, and
// flips to 200 ready; the kdv_ready gauge follows.
func TestReadyz(t *testing.T) {
	s := NewServer()
	s.DefaultN = 3000
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold readyz status %d, want 503", resp.StatusCode)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["status"] != "warming" {
		t.Errorf("cold readyz status = %v, want warming", st["status"])
	}
	waitFor(t, 10*time.Second, func() bool {
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		defer r.Body.Close()
		io.Copy(io.Discard, r.Body)
		return r.StatusCode == http.StatusOK
	}, "readyz never flipped to 200")
	body := scrape(t, ts.URL)
	if v := metricValue(t, body, "kdv_ready"); v != 1 {
		t.Errorf("kdv_ready = %g, want 1", v)
	}
	// The warmup build must be resident so the first default render hits.
	if s.cache.len() == 0 {
		t.Error("warmup left the cache empty")
	}
}

// TestWarmupExplicit: the server-side Warmup used by kdvserve at startup.
func TestWarmupExplicit(t *testing.T) {
	s := NewServer()
	s.DefaultN = 3000
	if s.Ready() {
		t.Fatal("server born ready")
	}
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("Warmup did not flip readiness")
	}
	// Idempotent.
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRequestID covers the middleware: honored when supplied, generated
// otherwise, echoed in error bodies.
func TestRequestID(t *testing.T) {
	ts := testServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-chosen-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "client-chosen-42" {
		t.Errorf("supplied ID not echoed: got %q", id)
	}

	resp2 := get(t, ts.URL+"/healthz")
	gen := resp2.Header.Get("X-Request-ID")
	if len(gen) != 16 {
		t.Errorf("generated ID %q, want 16 hex chars", gen)
	}

	resp3 := get(t, ts.URL+"/render?dataset=nope")
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp3.StatusCode)
	}
	var body errorResponse
	if err := json.NewDecoder(resp3.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID == "" || body.RequestID != resp3.Header.Get("X-Request-ID") {
		t.Errorf("error body request_id %q does not match header %q",
			body.RequestID, resp3.Header.Get("X-Request-ID"))
	}
}

// TestStatsHeaders: successful renders carry the X-KDV-Stats-* counters.
func TestStatsHeaders(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/render?dataset=crime&res=32x24&eps=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	for _, h := range []string{"X-KDV-Stats-Pops", "X-KDV-Stats-Node-Evals", "X-KDV-Stats-Render-Ms"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("missing header %s", h)
		}
	}
	if pops, _ := strconv.Atoi(resp.Header.Get("X-KDV-Stats-Pops")); pops <= 0 {
		t.Errorf("X-KDV-Stats-Pops = %q, want > 0", resp.Header.Get("X-KDV-Stats-Pops"))
	}

	hresp := get(t, ts.URL+"/hotspots?dataset=crime&res=32x24&tau=mu")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("hotspots status %d", hresp.StatusCode)
	}
	io.Copy(io.Discard, hresp.Body)
	if hresp.Header.Get("X-KDV-Stats-Node-Evals") == "" {
		t.Error("hotspots missing X-KDV-Stats-Node-Evals")
	}
}

// syncBuffer is an io.Writer test double safe for the concurrent writes
// the slow-query path performs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog: a request over the threshold is logged as one JSON
// line including the request ID and the render stats.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	s := NewServerWith(Config{DefaultN: 3000, SlowQuery: time.Nanosecond, SlowQueryLog: &buf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/render?dataset=crime&res=32x24&eps=0.05", nil)
	req.Header.Set("X-Request-ID", "slow-query-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var entry slowQueryEntry
	found := false
	for _, line := range lines {
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("bad slow-query line %q: %v", line, err)
		}
		if entry.Path == "/render" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no /render entry in slow-query log:\n%s", buf.String())
	}
	if entry.RequestID != "slow-query-test" {
		t.Errorf("request_id = %q, want slow-query-test", entry.RequestID)
	}
	if entry.Status != http.StatusOK || entry.ElapsedMs <= 0 {
		t.Errorf("entry status/elapsed wrong: %+v", entry)
	}
	if entry.Stats == nil || entry.Stats.Pixels != 32*24 || entry.Stats.NodeEvals <= 0 {
		t.Errorf("entry stats missing or wrong: %+v", entry.Stats)
	}
}

// TestMetricsValidExposition sanity-parses the whole scrape: every
// non-comment line must be `name{...} value` with a parseable value, and
// the histogram invariant bucket(+Inf) == count must hold.
func TestMetricsValidExposition(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/render?dataset=crime&res=32x24&eps=0.05")
	io.Copy(io.Discard, resp.Body)
	body := scrape(t, ts.URL)

	infCount := map[string]float64{}
	counts := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.Contains(name, `le="+Inf"`) {
			key := strings.SplitN(name, "_bucket", 2)[0] + labelsOf(name)
			infCount[key] = v
		}
		if strings.Contains(name, "_count") {
			key := strings.SplitN(name, "_count", 2)[0] + labelsOf(name)
			counts[key] = v
		}
	}
	if len(counts) == 0 {
		t.Fatal("no histogram _count series in scrape")
	}
	for key, c := range counts {
		if inf, ok := infCount[key]; ok && inf != c {
			t.Errorf("histogram %s: +Inf bucket %g != count %g", key, inf, c)
		}
	}
}

// labelsOf strips the le label so bucket and count series can be matched.
func labelsOf(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	labels := name[i+1 : len(name)-1]
	var kept []string
	for _, l := range strings.Split(labels, ",") {
		if !strings.HasPrefix(l, "le=") {
			kept = append(kept, l)
		}
	}
	return fmt.Sprintf("{%s}", strings.Join(kept, ","))
}
