package serve

import (
	"context"
	"math"
	"net/http"
	"sync"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/audit"
	"github.com/quadkdv/quad/internal/cluster"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/telemetry"
	"github.com/quadkdv/quad/internal/tiles"
	"github.com/quadkdv/quad/internal/trace"
)

// This file is the producer side of the shadow accuracy auditor: each render
// endpoint, after serving a completed raster, flips the sampling coin and —
// when sampled — submits a handful of its pixels (with the data-space query
// coordinates the engine itself evaluated, reconstructed bit-identically
// from the render's grid) for background recomputation against the exact
// Kahan oracle. The request path only copies a few floats; all oracle work
// runs on the auditor's budget-capped pool.

// exactDensity adapts a KDV's exact density (the Kahan–Neumaier oracle) to
// the auditor's query shape.
func exactDensity(k *quad.KDV) func(q []float64) float64 {
	return func(q []float64) float64 {
		d, err := k.Density(q)
		if err != nil {
			return math.NaN() // unevaluable queries pass harmlessly
		}
		return d
	}
}

// gridFor reconstructs the render's pixel-center mapping from the density
// map's recorded window — bit-identical to the grid the engine rendered
// with, because the engine's own grid construction ran the same arithmetic
// over the same window floats.
func gridFor(res quad.Resolution, mn, mx [2]float64) (*grid.Grid, error) {
	return grid.New(grid.Resolution{W: res.W, H: res.H},
		geom.Rect{Min: mn[:], Max: mx[:]})
}

func maxVal(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// epsSamples draws the audit pixels from an εKDV raster through the given
// (possibly sub-view) grid.
func epsSamples(a *audit.Auditor, g *grid.Grid, values []float64, w int) []audit.Sample {
	idx := a.SamplePixels(len(values))
	samples := make([]audit.Sample, 0, len(idx))
	q := make([]float64, 2)
	for _, i := range idx {
		px, py := i%w, i/w
		g.Query(px, py, q)
		samples = append(samples, audit.Sample{
			X: px, Y: py, Q: [2]float64{q[0], q[1]}, Value: values[i],
		})
	}
	return samples
}

// auditEpsMap samples a completed full-raster εKDV render. endpoint is
// "render" (local) or "cluster" (merged fan-out).
func (s *Server) auditEpsMap(w http.ResponseWriter, endpoint string, p *renderParams, dm *quad.DensityMap, exact func(q []float64) float64) {
	a := s.auditor
	if !a.ShouldAudit() {
		return
	}
	if p.method == quad.MethodZOrder {
		// The Z-order sampling bound is probabilistic: a pixel past ε is not
		// evidence of a bug, so these renders are counted, not checked.
		a.Skip("zorder")
		return
	}
	g, err := gridFor(dm.Res, dm.WindowMin, dm.WindowMax)
	if err != nil {
		return
	}
	a.Submit(audit.Job{
		Endpoint: endpoint,
		Dataset:  p.name,
		Method:   p.method.String(),
		Kind:     audit.KindEps,
		Eps:      p.eps,
		Scale:    maxVal(dm.Values),
		TraceID:  responseTraceID(w),
		Samples:  epsSamples(a, g, dm.Values, dm.Res.W),
		Exact:    exact,
	})
}

// auditClusterRender audits a merged fan-out raster. Complete merges are
// checked against the full-dataset oracle; degraded k-of-n merges are NOT
// skipped — their ground truth is the partial-sum oracle over exactly the
// live shards (densities are additive over the Z-order partition), so the ε
// guarantee is auditable on the degraded output too.
func (s *Server) auditClusterRender(w http.ResponseWriter, p *renderParams, cres *cluster.RenderResult) {
	dm := &quad.DensityMap{
		Res:       cres.Res,
		Values:    cres.Values,
		WindowMin: cres.WindowMin,
		WindowMax: cres.WindowMax,
	}
	s.auditEpsMap(w, "cluster", p, dm, s.clusterOracle(p, cres))
}

// clusterOracle returns the ground-truth evaluator for a merged fan-out
// raster, materializing the coordinator's local KDV lazily ON THE AUDIT
// WORKER — the coordinator's request path never pays for a dataset build it
// doesn't otherwise need. A failed build logs and yields NaN, which the
// checker treats as unevaluable (never a violation).
func (s *Server) clusterOracle(p *renderParams, cres *cluster.RenderResult) func(q []float64) float64 {
	var once sync.Once
	var fn func(q []float64) float64
	return func(q []float64) float64 {
		once.Do(func() {
			k, err := s.kdvFor(context.Background(), p.name, p.n, p.seed, p.kern, p.method, p.eps)
			if err != nil {
				s.log.Error("audit oracle build failed", "dataset", p.name, "error", err)
				return
			}
			if cres.Complete {
				fn = exactDensity(k)
				return
			}
			pf, err := k.OraclePartial(cres.Live, cres.TotalShards)
			if err != nil {
				s.log.Error("audit partial oracle failed", "dataset", p.name,
					"live_shards", len(cres.Live), "total_shards", cres.TotalShards, "error", err)
				return
			}
			fn = pf
		})
		if fn == nil {
			return math.NaN()
		}
		return fn(q)
	}
}

// auditTauMap samples a completed τKDV classification raster.
func (s *Server) auditTauMap(w http.ResponseWriter, p *renderParams, hm *quad.HotspotMap, tau float64, exact func(q []float64) float64) {
	a := s.auditor
	if !a.ShouldAudit() {
		return
	}
	if p.method == quad.MethodZOrder {
		a.Skip("zorder")
		return
	}
	g, err := gridFor(hm.Res, hm.WindowMin, hm.WindowMax)
	if err != nil {
		return
	}
	idx := a.SamplePixels(len(hm.Hot))
	samples := make([]audit.Sample, 0, len(idx))
	q := make([]float64, 2)
	for _, i := range idx {
		px, py := i%hm.Res.W, i/hm.Res.W
		g.Query(px, py, q)
		samples = append(samples, audit.Sample{
			X: px, Y: py, Q: [2]float64{q[0], q[1]}, Hot: hm.Hot[i],
		})
	}
	a.Submit(audit.Job{
		Endpoint: "hotspots",
		Dataset:  p.name,
		Method:   p.method.String(),
		Kind:     audit.KindTau,
		Tau:      tau,
		TraceID:  responseTraceID(w),
		Samples:  samples,
		Exact:    exact,
	})
}

// auditTile samples a freshly built pyramid tile (the OnBuilt hook). The
// tile's query coordinates come from the full-pyramid grid's sub-view —
// the same mapping the sub-rect render evaluated — and the absolute slack
// anchors on the pyramid's fixed color scale rather than the tile's local
// maximum, so near-empty tiles don't degenerate the tolerance.
func (s *Server) auditTile(ctx context.Context, p *renderParams, pyr *tiles.Pyramid, k *quad.KDV, c tiles.Coord, dm *quad.DensityMap) {
	a := s.auditor
	if !a.ShouldAudit() {
		return
	}
	if p.method == quad.MethodZOrder {
		a.Skip("zorder")
		return
	}
	full, sub := c.PixelRect(pyr.TileSize())
	win := pyr.Window()
	g, err := grid.New(grid.Resolution{W: full.W, H: full.H},
		geom.Rect{Min: []float64{win.MinX, win.MinY}, Max: []float64{win.MaxX, win.MaxY}})
	if err != nil {
		return
	}
	sg, err := g.Sub(sub.X0, sub.Y0, dm.Res.W, dm.Res.H)
	if err != nil {
		return
	}
	_, hi := pyr.ScaleBounds()
	traceID := ""
	if tr := trace.FromContext(ctx); tr != nil {
		traceID = tr.ID().String()
	}
	a.Submit(audit.Job{
		Endpoint: "tile",
		Dataset:  p.name,
		Method:   p.method.String(),
		Kind:     audit.KindEps,
		Eps:      p.eps,
		Scale:    math.Max(hi, maxVal(dm.Values)),
		TraceID:  traceID,
		Samples:  epsSamples(a, sg, dm.Values, dm.Res.W),
		Exact:    exactDensity(k),
	})
}

// sloLatencyBound is the latency objective's threshold in seconds. It is an
// exact DurationBuckets bound, so the bucket-based good-event count is
// precise rather than interpolated.
const sloLatencyBound = 2.5

// initSLO declares the serving layer's objectives and registers their
// multi-window burn-rate gauges. Ratios are computed from the counters the
// server already maintains — the SLO layer adds no per-request work.
func (s *Server) initSLO(reg *telemetry.Registry) {
	s.slo = telemetry.NewSLO(reg, nil, nil)

	httpTotal := func() uint64 {
		var n uint64
		for _, ep := range endpoints {
			for _, cl := range codeClasses {
				n += s.m.httpRequests[ep][cl].Value()
			}
		}
		return n
	}
	// Availability: a request is good unless the server failed it (5xx).
	s.slo.Add(telemetry.Objective{
		Name: "availability",
		Goal: 0.999,
		Good: func() uint64 {
			var n uint64
			for _, ep := range endpoints {
				for _, cl := range codeClasses {
					if cl != "5xx" {
						n += s.m.httpRequests[ep][cl].Value()
					}
				}
			}
			return n
		},
		Total: httpTotal,
	})
	// Latency: the p99 objective as a bucket count — 99% of requests finish
	// within sloLatencyBound.
	s.slo.Add(telemetry.Objective{
		Name: "latency",
		Goal: 0.99,
		Good: func() uint64 {
			var n uint64
			for _, ep := range endpoints {
				n += s.m.httpLatency[ep].CountAtOrBelow(sloLatencyBound)
			}
			return n
		},
		Total: func() uint64 {
			var n uint64
			for _, ep := range endpoints {
				n += s.m.httpLatency[ep].Count()
			}
			return n
		},
	})
	// Accuracy: audited pixels that honored the advertised guarantee.
	s.slo.Add(telemetry.Objective{
		Name: "accuracy",
		Goal: 0.999,
		Good: func() uint64 {
			p, v := s.auditor.PixelsChecked(), s.auditor.ViolationCount()
			if v > p {
				return 0
			}
			return p - v
		},
		Total: s.auditor.PixelsChecked,
	})
}
