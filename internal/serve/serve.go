// Package serve exposes the KDV library over HTTP — the shape in which KDV
// ships inside the analytics platforms the paper names (ArcGIS, QGIS,
// Scikit-learn): a renderer that a front end can query for color-map tiles
// at interactive latencies, with the progressive framework handling strict
// time budgets.
//
// Endpoints:
//
//	GET /info                            JSON: datasets, kernels, methods
//	GET /render?dataset=crime&eps=0.01   εKDV heat map PNG
//	GET /hotspots?dataset=crime&tau=mu+0.2   τKDV two-color PNG
//	GET /progressive?dataset=crime&budget=500ms   budgeted heat map PNG
//
// Common query parameters: dataset (name of a synthetic analogue), n
// (cardinality), res (WxH), kernel, method, seed, log (0/1 color scale).
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/render"
)

// maxPixels caps requested rasters to keep a single request from consuming
// the server (2560×1920, the paper's largest screen).
const maxPixels = 2560 * 1920

// maxN caps requested dataset cardinalities.
const maxN = 10_000_000

// Server renders KDV maps over HTTP. Built KDV instances are cached per
// (dataset, n, seed, kernel, method) so repeated interactions are fast.
type Server struct {
	mu    sync.Mutex
	cache map[string]*quad.KDV
	// DefaultN is the dataset size used when ?n= is absent.
	DefaultN int
}

// NewServer returns a Server with sane defaults.
func NewServer() *Server {
	return &Server{cache: make(map[string]*quad.KDV), DefaultN: 100000}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /info", s.handleInfo)
	mux.HandleFunc("GET /render", s.handleRender)
	mux.HandleFunc("GET /hotspots", s.handleHotspots)
	mux.HandleFunc("GET /progressive", s.handleProgressive)
	return mux
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := map[string]any{
		"datasets": dataset.Names(),
		"kernels": []string{"gaussian", "triangular", "cosine", "exponential",
			"epanechnikov", "quartic", "uniform"},
		"methods":   []string{"quad", "karl", "minmax", "exact", "zorder"},
		"default_n": s.DefaultN,
		"endpoints": []string{"/render", "/hotspots", "/progressive"},
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(info); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// request carries the parsed common parameters.
type request struct {
	kdv      *quad.KDV
	res      quad.Resolution
	eps      float64
	logScale bool
	window   quad.Window
}

func (s *Server) parse(r *http.Request) (*request, error) {
	q := r.URL.Query()
	name := q.Get("dataset")
	if name == "" {
		return nil, fmt.Errorf("dataset parameter is required (one of %v)", dataset.Names())
	}
	n := s.DefaultN
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > maxN {
			return nil, fmt.Errorf("bad n %q (1..%d)", v, maxN)
		}
		n = parsed
	}
	seed := int64(1)
	if v := q.Get("seed"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", v)
		}
		seed = parsed
	}
	kernName := q.Get("kernel")
	if kernName == "" {
		kernName = "gaussian"
	}
	kern, err := quad.ParseKernel(kernName)
	if err != nil {
		return nil, err
	}
	methodName := q.Get("method")
	if methodName == "" {
		methodName = "quad"
	}
	method, err := quad.ParseMethod(methodName)
	if err != nil {
		return nil, err
	}
	res := quad.Resolution{W: 640, H: 480}
	if v := q.Get("res"); v != "" {
		parts := strings.Split(strings.ToLower(v), "x")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad res %q (want WxH)", v)
		}
		res.W, err = strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad res %q", v)
		}
		res.H, err = strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad res %q", v)
		}
	}
	if res.W < 1 || res.H < 1 || res.W*res.H > maxPixels {
		return nil, fmt.Errorf("resolution %dx%d out of range (max %d pixels)", res.W, res.H, maxPixels)
	}
	eps := 0.01
	if v := q.Get("eps"); v != "" {
		eps, err = strconv.ParseFloat(v, 64)
		if err != nil || eps < 0 || eps > 1 {
			return nil, fmt.Errorf("bad eps %q (0..1)", v)
		}
	}
	var window quad.Window
	if v := q.Get("bbox"); v != "" {
		// bbox=minX,minY,maxX,maxY — the pan/zoom window.
		parts := strings.Split(v, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad bbox %q (want minX,minY,maxX,maxY)", v)
		}
		vals := make([]float64, 4)
		for i, p := range parts {
			vals[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad bbox %q", v)
			}
		}
		window = quad.Window{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if window.MaxX <= window.MinX || window.MaxY <= window.MinY {
			return nil, fmt.Errorf("degenerate bbox %q", v)
		}
	}
	kdv, err := s.kdvFor(name, n, seed, kern, method, eps)
	if err != nil {
		return nil, err
	}
	return &request{
		kdv:      kdv,
		res:      res,
		eps:      eps,
		logScale: q.Get("log") != "0",
		window:   window,
	}, nil
}

func (s *Server) kdvFor(name string, n int, seed int64, kern quad.Kernel, method quad.Method, eps float64) (*quad.KDV, error) {
	key := fmt.Sprintf("%s/%d/%d/%s/%s", name, n, seed, kern, method)
	s.mu.Lock()
	defer s.mu.Unlock()
	if k, ok := s.cache[key]; ok {
		return k, nil
	}
	pts, err := dataset.Generate(name, n, seed)
	if err != nil {
		return nil, err
	}
	pts = dataset.First2D(pts)
	k, err := quad.New(pts.Coords, pts.Dim,
		quad.WithKernel(kern), quad.WithMethod(method), quad.WithZOrderGuarantee(eps, 0.2))
	if err != nil {
		return nil, err
	}
	s.cache[key] = k
	return k, nil
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	req, err := s.parse(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dm, err := req.kdv.RenderEpsIn(req.res, req.eps, req.window)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeDensityPNG(w, dm, req.logScale)
}

func (s *Server) handleHotspots(w http.ResponseWriter, r *http.Request) {
	req, err := s.parse(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tau, err := s.resolveTau(req, r.URL.Query().Get("tau"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hm, err := req.kdv.RenderTauIn(req.res, tau, req.window)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	img, err := render.Binary(grid.Resolution{W: hm.Res.W, H: hm.Res.H}, hm.Hot)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-KDV-Tau", strconv.FormatFloat(tau, 'g', -1, 64))
	if err := render.EncodePNG(w, img); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// resolveTau parses "mu", "mu+0.2", "mu-0.1" or a literal number.
func (s *Server) resolveTau(req *request, spec string) (float64, error) {
	spec = strings.TrimSpace(strings.ToLower(spec))
	if spec == "" {
		spec = "mu"
	}
	if v, err := strconv.ParseFloat(spec, 64); err == nil {
		return v, nil
	}
	if !strings.HasPrefix(spec, "mu") {
		return 0, fmt.Errorf("bad tau %q (number, 'mu', or 'mu±k')", spec)
	}
	mult := 0.0
	if rest := spec[2:]; rest != "" {
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return 0, fmt.Errorf("bad tau %q", spec)
		}
		mult = v
	}
	stride := 1 + req.res.W*req.res.H/4096
	mu, sigma, err := req.kdv.ThresholdStats(req.res, stride, req.eps)
	if err != nil {
		return 0, err
	}
	return mu + mult*sigma, nil
}

func (s *Server) handleProgressive(w http.ResponseWriter, r *http.Request) {
	req, err := s.parse(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget := 500 * time.Millisecond
	if v := r.URL.Query().Get("budget"); v != "" {
		budget, err = time.ParseDuration(v)
		if err != nil || budget <= 0 || budget > time.Minute {
			http.Error(w, fmt.Sprintf("bad budget %q (0 < d ≤ 1m)", v), http.StatusBadRequest)
			return
		}
	}
	res, err := req.kdv.RenderProgressive(req.res, req.eps, budget, 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-KDV-Evaluated", strconv.Itoa(res.Evaluated))
	w.Header().Set("X-KDV-Complete", strconv.FormatBool(res.Complete))
	writeDensityPNG(w, res.Map, req.logScale)
}

func writeDensityPNG(w http.ResponseWriter, dm *quad.DensityMap, logScale bool) {
	v := &grid.Values{Res: grid.Resolution{W: dm.Res.W, H: dm.Res.H}, Data: dm.Values}
	scale := render.Linear
	if logScale {
		scale = render.Log
	}
	w.Header().Set("Content-Type", "image/png")
	if err := render.EncodePNG(w, render.Heatmap(v, scale)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
