// Package serve exposes the KDV library over HTTP — the shape in which KDV
// ships inside the analytics platforms the paper names (ArcGIS, QGIS,
// Scikit-learn): a renderer that a front end can query for color-map tiles
// at interactive latencies, with the progressive framework handling strict
// time budgets.
//
// Endpoints:
//
//	GET /info                            JSON: datasets, kernels, methods
//	GET /healthz                         JSON liveness probe
//	GET /render?dataset=crime&eps=0.01   εKDV heat map PNG
//	GET /hotspots?dataset=crime&tau=mu+0.2   τKDV two-color PNG
//	GET /progressive?dataset=crime&budget=500ms   budgeted heat map PNG
//
// Common query parameters: dataset (name of a synthetic analogue), n
// (cardinality), res (WxH), kernel, method, seed, log (0/1 color scale),
// bbox (pan/zoom window).
//
// The serving layer is hardened for interactive traffic: render endpoints
// pass through a semaphore admission controller (429 + Retry-After when
// both the render slots and the wait queue are full), run under a
// per-request deadline, and observe client disconnects — a cancelled
// request stops its render within one row of pixel work. Built KDV
// instances live in a bounded LRU cache with singleflight deduplication,
// so a stampede on a cold key performs one build and hits never wait
// behind cold builds. When /render misses its deadline it degrades
// gracefully: the response is the progressive partial raster, flagged
// X-KDV-Complete: false, instead of an error. Errors are structured JSON,
// and a panic inside a handler becomes a 500 rather than a dead process.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/audit"
	"github.com/quadkdv/quad/internal/cluster"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/render"
	"github.com/quadkdv/quad/internal/telemetry"
	"github.com/quadkdv/quad/internal/tiles"
	"github.com/quadkdv/quad/internal/trace"
)

// maxPixels caps requested rasters to keep a single request from consuming
// the server (2560×1920, the paper's largest screen).
const maxPixels = 2560 * 1920

// maxN caps requested dataset cardinalities.
const maxN = 10_000_000

// Config tunes the serving layer. The zero value of any field selects its
// default.
type Config struct {
	// DefaultN is the dataset size used when ?n= is absent (default 100000).
	DefaultN int
	// RequestTimeout is the per-request render deadline. 0 disables
	// deadlines (renders still stop on client disconnect).
	RequestTimeout time.Duration
	// MaxConcurrent bounds simultaneously running renders
	// (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a render slot beyond
	// MaxConcurrent; anything past slots+queue is answered 429.
	// 0 selects the default (2×MaxConcurrent); negative disables
	// queueing entirely.
	MaxQueue int
	// CacheSize bounds the KDV build cache, in entries (default 32).
	CacheSize int
	// DegradeBudget is the progressive-render budget granted to /render's
	// graceful-degradation fallback after its deadline fires
	// (default 250ms).
	DegradeBudget time.Duration
	// WarmDataset is the dataset Warmup builds to flip /readyz green
	// (default "crime").
	WarmDataset string
	// SlowQuery enables the structured slow-query log: any request running
	// at least this long is appended as one JSON line to SlowQueryLog.
	// 0 disables the log.
	SlowQuery time.Duration
	// SlowQueryLog receives the slow-query lines (default os.Stderr).
	// Writes are serialized by the server.
	SlowQueryLog io.Writer
	// TraceLog, when set, enables request tracing for every request and
	// receives the finished spans as JSON lines (one span per line; writes
	// are serialized by the server). Requests arriving with a valid W3C
	// traceparent header are traced regardless, continuing the caller's
	// trace — but their spans are only exported when TraceLog is set.
	TraceLog io.Writer
	// EnableWorkMap exposes GET /debug/workmap, the diagnostic endpoint
	// rendering per-pixel work rasters (refinement depth, node evaluations,
	// settle bound gap). Off by default: work-map renders allocate three
	// full-resolution float64 rasters and bypass the KDV cache's PNG path,
	// so the endpoint is for debugging, not production traffic.
	EnableWorkMap bool
	// Registry, when set, receives the server's metric families instead of
	// a private registry — so a coordinator's cluster metrics and the
	// serving metrics share one /metrics scrape.
	Registry *telemetry.Registry
	// TilesDir, when set, backs the XYZ tile endpoint with the persistent
	// append-only tile store rooted there, so tiles survive restarts.
	// Empty keeps the tile endpoint memory-only.
	TilesDir string
	// TileSize is the tile edge in pixels for /tiles responses — a power of
	// two in [64, 1024] (default 256). It participates in the tileset key,
	// so changing it addresses a fresh pyramid.
	TileSize int
	// TileMemoryBytes bounds the in-memory tile cache (default 64 MiB).
	TileMemoryBytes int64
	// WarmZooms lists the zoom levels of the default pyramid that Warmup
	// precomputes (e.g. [0, 1, 2] renders 1+4+16 tiles). Empty skips tile
	// warmup.
	WarmZooms []int
	// AuditFraction is the fraction of completed renders re-checked by the
	// shadow accuracy auditor (0 selects the default 0.01; negative
	// disables auditing entirely). For each sampled render a few random
	// pixels are recomputed with the exact Kahan oracle on a background
	// pool and checked against the advertised ε/τ guarantee.
	AuditFraction float64
	// AuditPixels is the number of random pixels recomputed per audited
	// render (default 8).
	AuditPixels int
	// AuditBudget caps the audit queue; over-budget audits are dropped and
	// counted, never blocking the serving path (default 64).
	AuditBudget int
	// AuditHardFail latches the auditor into a failed state on the first
	// violation — the mode test harnesses assert on (see /debug/ops).
	AuditHardFail bool
	// AuditSeed fixes the audit sampling stream (0 picks a fixed default).
	AuditSeed int64
	// Logger receives the server's structured logs (default
	// slog.Default()).
	Logger *slog.Logger
	// Cluster, when set, turns this server into a fan-out coordinator:
	// /render requests with a shardable method (anything but zorder) are
	// partitioned by data shard across the coordinator's workers and the
	// per-shard rasters merged additively. Degraded merges (dead workers)
	// are served with X-KDV-Complete: false and X-KDV-Shards: k/n instead
	// of failing. Other endpoints keep rendering locally.
	Cluster *cluster.Coordinator
}

func (c Config) withDefaults() Config {
	if c.DefaultN <= 0 {
		c.DefaultN = 100000
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxConcurrent
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 32
	}
	if c.DegradeBudget <= 0 {
		c.DegradeBudget = 250 * time.Millisecond
	}
	if c.WarmDataset == "" {
		c.WarmDataset = "crime"
	}
	if c.TileSize <= 0 {
		c.TileSize = 256
	}
	if c.TileMemoryBytes <= 0 {
		c.TileMemoryBytes = 64 << 20
	}
	if c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	switch {
	case c.AuditFraction == 0:
		c.AuditFraction = 0.01
	case c.AuditFraction < 0:
		c.AuditFraction = 0
	case c.AuditFraction > 1:
		c.AuditFraction = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server renders KDV maps over HTTP. Built KDV instances are cached per
// (dataset, n, seed, kernel, method[, eps]) in a bounded LRU with
// singleflight build deduplication.
type Server struct {
	// DefaultN is the dataset size used when ?n= is absent. It may be set
	// before the server starts handling requests.
	DefaultN int

	cfg   Config
	cache *kdvCache
	adm   *admission

	// Tile subsystem: shared store/memory cache plus the per-tileset
	// pyramid registry (singleflight construction, FIFO bounded).
	tileStore *tiles.Store // nil when TilesDir is unset
	tileLRU   *tiles.LRU
	tileM     *tiles.Metrics
	pyrMu     sync.Mutex
	pyramids  map[string]*pyramidCall
	pyrOrder  []string

	reg       *telemetry.Registry
	m         *metrics
	auditor   *audit.Auditor
	slo       *telemetry.SLO
	log       *slog.Logger
	start     time.Time
	warmState atomic.Int32
	slowMu    sync.Mutex
	traceMu   sync.Mutex

	// rng drives the serving layer's jitter: randomized Retry-After values
	// on 429s and the warmup retry backoff — so a synchronized client herd
	// (or a fleet of replicas behind one probe) doesn't retry in lockstep.
	rngMu sync.Mutex
	rng   *rand.Rand

	// warmNext/warmFails gate the /readyz-triggered warmup retry loop with
	// jittered exponential backoff, so a failing warmup build is not
	// re-launched by every probe of an impatient load balancer.
	warmMu    sync.Mutex
	warmNext  time.Time
	warmFails int
}

// NewServer returns a Server with sane defaults.
func NewServer() *Server { return NewServerWith(Config{}) }

// NewServerWith returns a Server tuned by cfg; zero fields take defaults.
func NewServerWith(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		DefaultN: cfg.DefaultN,
		cfg:      cfg,
		cache:    newKDVCache(cfg.CacheSize),
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		reg:      reg,
		m:        newMetrics(reg),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		pyramids: make(map[string]*pyramidCall),
	}
	s.cache.instrument(s.m)
	s.adm.instrument(s.m)
	s.tileM = tiles.NewMetrics(reg)
	s.tileLRU = tiles.NewLRU(cfg.TileMemoryBytes, s.tileM)
	if cfg.TilesDir != "" {
		s.tileStore = tiles.OpenStore(cfg.TilesDir, s.tileM)
	}
	s.log = cfg.Logger
	s.start = time.Now()
	s.auditor = audit.New(audit.Config{
		Fraction: cfg.AuditFraction,
		Pixels:   cfg.AuditPixels,
		Budget:   cfg.AuditBudget,
		HardFail: cfg.AuditHardFail,
		Seed:     cfg.AuditSeed,
		Registry: reg,
		Logger:   s.log,
	})
	telemetry.RegisterRuntimeMetrics(reg)
	s.initSLO(reg)
	return s
}

// Close releases the server's persistent resources: the audit pool (drained,
// so submitted audits still complete) and the tile store's open log files.
// The server stays usable — tile logs reopen on the next access.
func (s *Server) Close() error {
	s.auditor.Close()
	if s.tileStore != nil {
		return s.tileStore.Close()
	}
	return nil
}

// Auditor exposes the shadow accuracy auditor (tests and harnesses assert
// on its hard-fail latch and pending queue).
func (s *Server) Auditor() *audit.Auditor { return s.auditor }

// Registry exposes the server's metric registry so a debug side listener
// (telemetry.StartDebug) can serve the same /metrics the main handler does.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// jitterInt returns a uniform int in [lo, hi] from the server's rng.
func (s *Server) jitterInt(lo, hi int) int {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return lo + s.rng.Intn(hi-lo+1)
}

// jitterDur returns a uniform duration in [d/2, d] ("full jitter"), the
// same decorrelation shape the cluster coordinator's retry backoff uses.
func (s *Server) jitterDur(d time.Duration) time.Duration {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
}

// Handler returns the HTTP handler tree with the hardening and
// observability middleware. Ordering, outermost first: requestID (stamps
// X-Request-ID on the response before anything can fail), tracing (adopts
// or mints the W3C trace context and stamps X-Trace-ID, so every later
// layer can read it off the ResponseWriter), instrument (status/latency
// metrics and the slow-query log — outside recovery, so a panic is counted
// as the 500 it becomes), recoverJSON, then the mux with admission control
// and per-request deadlines around the render endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /info", s.handleInfo)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.Handle("GET /render", s.guard(s.handleRender))
	mux.Handle("GET /tiles/{dataset}/{z}/{x}/{y}", s.guard(s.handleTile))
	mux.Handle("GET /hotspots", s.guard(s.handleHotspots))
	mux.Handle("GET /progressive", s.guard(s.handleProgressive))
	mux.Handle("GET /debug/workmap", s.guard(s.handleWorkMap))
	mux.HandleFunc("GET /debug/ops", s.handleOps)
	return requestID(s.tracing(s.instrument(s.recoverJSON(mux))))
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := map[string]any{
		"datasets": dataset.Names(),
		"kernels": []string{"gaussian", "triangular", "cosine", "exponential",
			"epanechnikov", "quartic", "uniform"},
		"methods":   []string{"quad", "karl", "minmax", "exact", "zorder"},
		"default_n": s.DefaultN,
		"endpoints": []string{"/render", "/tiles/{dataset}/{z}/{x}/{y}.png", "/hotspots", "/progressive", "/healthz", "/readyz", "/metrics"},
		"tiles": map[string]any{
			"tile_size":  s.cfg.TileSize,
			"persistent": s.tileStore != nil,
			"max_zoom":   tiles.MaxZoom,
		},
		"limits": map[string]any{
			"max_concurrent":  s.cfg.MaxConcurrent,
			"max_queue":       s.cfg.MaxQueue,
			"cache_size":      s.cfg.CacheSize,
			"request_timeout": s.cfg.RequestTimeout.String(),
		},
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(info); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"in_flight": s.adm.inFlight(),
		"cached":    s.cache.len(),
	})
}

// request carries the parsed common parameters plus the materialized KDV.
type request struct {
	kdv      *quad.KDV
	res      quad.Resolution
	eps      float64
	logScale bool
	window   quad.Window
}

// renderParams are the parsed common query parameters before any KDV is
// built — the form the coordinator path forwards to workers verbatim, so a
// coordinator never pays for a local dataset build it will not use.
type renderParams struct {
	name     string
	n        int
	seed     int64
	kern     quad.Kernel
	method   quad.Method
	res      quad.Resolution
	eps      float64
	logScale bool
	window   quad.Window
}

// parse parses the common parameters and materializes the (cached) KDV —
// the single-process path used by every local render endpoint.
func (s *Server) parse(r *http.Request) (*request, error) {
	p, err := s.parseParams(r)
	if err != nil {
		return nil, err
	}
	return s.materialize(r.Context(), p)
}

// materialize builds (or fetches from cache) the KDV for parsed params.
func (s *Server) materialize(ctx context.Context, p *renderParams) (*request, error) {
	kdv, err := s.kdvFor(ctx, p.name, p.n, p.seed, p.kern, p.method, p.eps)
	if err != nil {
		return nil, err
	}
	return &request{
		kdv:      kdv,
		res:      p.res,
		eps:      p.eps,
		logScale: p.logScale,
		window:   p.window,
	}, nil
}

func (s *Server) parseParams(r *http.Request) (*renderParams, error) {
	q := r.URL.Query()
	name := q.Get("dataset")
	if name == "" {
		return nil, fmt.Errorf("dataset parameter is required (one of %v)", dataset.Names())
	}
	return s.parseParamsNamed(name, q)
}

// parseParamsNamed parses the common query parameters for a dataset whose
// name arrived out of band — from the query (parseParams) or from the tile
// endpoint's path.
func (s *Server) parseParamsNamed(name string, q url.Values) (*renderParams, error) {
	n := s.DefaultN
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > maxN {
			return nil, fmt.Errorf("bad n %q (1..%d)", v, maxN)
		}
		n = parsed
	}
	seed := int64(1)
	if v := q.Get("seed"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", v)
		}
		seed = parsed
	}
	kernName := q.Get("kernel")
	if kernName == "" {
		kernName = "gaussian"
	}
	kern, err := quad.ParseKernel(kernName)
	if err != nil {
		return nil, err
	}
	methodName := q.Get("method")
	if methodName == "" {
		methodName = "quad"
	}
	method, err := quad.ParseMethod(methodName)
	if err != nil {
		return nil, err
	}
	res := quad.Resolution{W: 640, H: 480}
	if v := q.Get("res"); v != "" {
		parts := strings.Split(strings.ToLower(v), "x")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad res %q (want WxH)", v)
		}
		res.W, err = strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad res %q", v)
		}
		res.H, err = strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad res %q", v)
		}
	}
	if res.W < 1 || res.H < 1 || res.W*res.H > maxPixels {
		return nil, fmt.Errorf("resolution %dx%d out of range (max %d pixels)", res.W, res.H, maxPixels)
	}
	eps := 0.01
	if v := q.Get("eps"); v != "" {
		eps, err = strconv.ParseFloat(v, 64)
		if err != nil || eps < 0 || eps > 1 {
			return nil, fmt.Errorf("bad eps %q (0..1)", v)
		}
	}
	var window quad.Window
	if v := q.Get("bbox"); v != "" {
		// bbox=minX,minY,maxX,maxY — the pan/zoom window.
		parts := strings.Split(v, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad bbox %q (want minX,minY,maxX,maxY)", v)
		}
		vals := make([]float64, 4)
		for i, p := range parts {
			vals[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad bbox %q", v)
			}
		}
		window = quad.Window{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if window.MaxX <= window.MinX || window.MaxY <= window.MinY {
			return nil, fmt.Errorf("degenerate bbox %q", v)
		}
	}
	return &renderParams{
		name:     name,
		n:        n,
		seed:     seed,
		kern:     kern,
		method:   method,
		res:      res,
		eps:      eps,
		logScale: q.Get("log") != "0",
		window:   window,
	}, nil
}

// parseError answers a failed parse: context errors (deadline while
// waiting on a build, client disconnect) keep their server-side status;
// everything else is the client's fault.
func parseError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		requestError(w, r, err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

func (s *Server) kdvFor(ctx context.Context, name string, n int, seed int64, kern quad.Kernel, method quad.Method, eps float64) (*quad.KDV, error) {
	key := cacheKey(name, n, seed, kern, method, eps)
	sp, ctx := trace.StartSpan(ctx, "cache")
	k, outcome, err := s.cache.getOutcome(ctx, key, func() (*quad.KDV, error) {
		pts, err := dataset.Generate(name, n, seed)
		if err != nil {
			return nil, err
		}
		pts = dataset.First2D(pts)
		return quad.New(pts.Coords, pts.Dim,
			quad.WithKernel(kern), quad.WithMethod(method), quad.WithZOrderGuarantee(eps, 0.2))
	})
	sp.SetAttrs(trace.Str("key", key), trace.Str("outcome", outcome))
	sp.End()
	setCacheOutcome(ctx, outcome)
	return k, err
}

// cacheKey identifies a built KDV. eps participates only for MethodZOrder,
// where it dimensions the Z-order sample (WithZOrderGuarantee) — reusing a
// zorder build across eps values would silently void the sampling
// guarantee. For the bound-based methods eps is a query parameter, not a
// build parameter, so keeping it out of the key preserves their hit rate.
func cacheKey(name string, n int, seed int64, kern quad.Kernel, method quad.Method, eps float64) string {
	key := fmt.Sprintf("%s/%d/%d/%s/%s", name, n, seed, kern, method)
	if method == quad.MethodZOrder {
		key += fmt.Sprintf("/eps=%g", eps)
	}
	return key
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseParams(r)
	if err != nil {
		s.m.recordOutcome("render", "error")
		parseError(w, r, err)
		return
	}
	if s.cfg.Cluster != nil && p.method != quad.MethodZOrder {
		s.renderViaCluster(w, r, p)
		return
	}
	req, err := s.materialize(r.Context(), p)
	if err != nil {
		s.m.recordOutcome("render", "error")
		parseError(w, r, err)
		return
	}
	dm, st, err := req.kdv.RenderEpsStatsInCtx(r.Context(), req.res, req.eps, req.window)
	setRenderStats(r, &st)
	s.m.recordRenderStats("render", st)
	if err == nil {
		s.m.recordOutcome("render", "ok")
		s.auditEpsMap(w, "render", p, dm, exactDensity(req.kdv))
		setStatsHeaders(w, st)
		w.Header().Set("X-KDV-Complete", "true")
		writeDensityPNG(w, r, dm, req.logScale)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// Graceful degradation: the deadline fired but the client is still
		// connected — answer with the progressive partial raster instead
		// of an error.
		if pr := s.degraded(r, req); pr != nil {
			s.m.recordOutcome("render", "degraded")
			s.m.degraded.Inc()
			// A deadline-degraded partial raster carries no per-pixel
			// guarantee (unevaluated pixels hold coarse bounds), so it is
			// counted unauditable rather than checked.
			if s.auditor.ShouldAudit() {
				s.auditor.Skip("degraded")
			}
			s.m.pixels.AddInt(pr.Evaluated)
			setStatsHeaders(w, st)
			w.Header().Set("X-KDV-Complete", strconv.FormatBool(pr.Complete))
			w.Header().Set("X-KDV-Evaluated", strconv.Itoa(pr.Evaluated))
			writeDensityPNG(w, r, pr.Map, req.logScale)
			return
		}
	}
	s.m.recordOutcome("render", "error")
	requestError(w, r, err)
}

// renderViaCluster fans the render out across the coordinator's workers by
// data shard and serves the additively merged raster. Densities are
// additive over the Z-order partition, so the merge carries the same ε
// guarantee as a local render. When workers stay unreachable past budget
// the merge of the live shards is served flagged X-KDV-Complete: false with
// X-KDV-Shards: k/n — the distributed analogue of the deadline-degraded
// partial raster.
func (s *Server) renderViaCluster(w http.ResponseWriter, r *http.Request, p *renderParams) {
	cres, err := s.cfg.Cluster.RenderEps(r.Context(), cluster.RenderRequest{
		Dataset: p.name,
		N:       p.n,
		Seed:    p.seed,
		Kernel:  p.kern,
		Method:  p.method,
		Eps:     p.eps,
		Res:     p.res,
		Window:  p.window,
	})
	if err != nil {
		s.m.recordOutcome("render", "error")
		if r.Context().Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			requestError(w, r, err)
			return
		}
		// The cluster is the upstream here: its total failure is a gateway
		// error, not a client error.
		writeError(w, http.StatusBadGateway, "cluster render failed: %v", err)
		return
	}
	outcome := "ok"
	if !cres.Complete {
		outcome = "degraded"
		s.m.degraded.Inc()
	}
	s.m.recordOutcome("render", outcome)
	s.m.recordRenderStats("render", cres.Stats)
	s.auditClusterRender(w, p, cres)
	setRenderStats(r, &cres.Stats)
	setStatsHeaders(w, cres.Stats)
	w.Header().Set("X-KDV-Complete", strconv.FormatBool(cres.Complete))
	w.Header().Set("X-KDV-Shards", cres.ShardsHeader())
	dm := &quad.DensityMap{
		Res:       cres.Res,
		Values:    cres.Values,
		WindowMin: cres.WindowMin,
		WindowMax: cres.WindowMax,
	}
	writeDensityPNG(w, r, dm, p.logScale)
}

// degraded runs the short progressive fallback render for a /render that
// missed its deadline. It works under the client's base (undeadlined)
// context so a disconnect still cancels it, bounded by a grace timeout a
// little above the degrade budget. Returns nil if the fallback also failed
// (e.g. the client is gone).
func (s *Server) degraded(r *http.Request, req *request) *quad.ProgressiveResult {
	base := baseContext(r)
	if base.Err() != nil {
		return nil
	}
	budget := s.cfg.DegradeBudget
	ctx, cancel := context.WithTimeout(base, budget+budget/2+100*time.Millisecond)
	defer cancel()
	pr, err := req.kdv.RenderProgressiveInCtx(ctx, req.res, req.eps, budget, 0, req.window)
	if err != nil {
		return nil
	}
	return pr
}

func (s *Server) handleHotspots(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseParams(r)
	if err != nil {
		s.m.recordOutcome("hotspots", "error")
		parseError(w, r, err)
		return
	}
	req, err := s.materialize(r.Context(), p)
	if err != nil {
		s.m.recordOutcome("hotspots", "error")
		parseError(w, r, err)
		return
	}
	tau, err := s.resolveTau(r.Context(), req, r.URL.Query().Get("tau"))
	if err != nil {
		s.m.recordOutcome("hotspots", "error")
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			requestError(w, r, err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	hm, st, err := req.kdv.RenderTauStatsInCtx(r.Context(), req.res, tau, req.window)
	setRenderStats(r, &st)
	s.m.recordRenderStats("hotspots", st)
	if err != nil {
		s.m.recordOutcome("hotspots", "error")
		requestError(w, r, err)
		return
	}
	img, err := render.Binary(grid.Resolution{W: hm.Res.W, H: hm.Res.H}, hm.Hot)
	if err != nil {
		s.m.recordOutcome("hotspots", "error")
		requestError(w, r, err)
		return
	}
	s.m.recordOutcome("hotspots", "ok")
	s.auditTauMap(w, p, hm, tau, exactDensity(req.kdv))
	setStatsHeaders(w, st)
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-KDV-Tau", strconv.FormatFloat(tau, 'g', -1, 64))
	sp, _ := trace.StartSpan(r.Context(), "encode")
	err = render.EncodePNG(w, img)
	sp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// resolveTau parses "mu", "mu+0.2", "mu-0.1" or a literal number.
func (s *Server) resolveTau(ctx context.Context, req *request, spec string) (float64, error) {
	spec = strings.TrimSpace(strings.ToLower(spec))
	if spec == "" {
		spec = "mu"
	}
	if v, err := strconv.ParseFloat(spec, 64); err == nil {
		return v, nil
	}
	if !strings.HasPrefix(spec, "mu") {
		return 0, fmt.Errorf("bad tau %q (number, 'mu', or 'mu±k')", spec)
	}
	mult := 0.0
	if rest := spec[2:]; rest != "" {
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return 0, fmt.Errorf("bad tau %q", spec)
		}
		mult = v
	}
	stride := 1 + req.res.W*req.res.H/4096
	mu, sigma, err := req.kdv.ThresholdStatsCtx(ctx, req.res, stride, req.eps)
	if err != nil {
		return 0, err
	}
	return mu + mult*sigma, nil
}

func (s *Server) handleProgressive(w http.ResponseWriter, r *http.Request) {
	req, err := s.parse(r)
	if err != nil {
		s.m.recordOutcome("progressive", "error")
		parseError(w, r, err)
		return
	}
	budget := 500 * time.Millisecond
	if v := r.URL.Query().Get("budget"); v != "" {
		budget, err = time.ParseDuration(v)
		if err != nil || budget <= 0 || budget > time.Minute {
			s.m.recordOutcome("progressive", "error")
			writeError(w, http.StatusBadRequest, "bad budget %q (0 < d ≤ 1m)", v)
			return
		}
	}
	// Clamp the budget under the request deadline so the deadline shows up
	// as a smaller partial result rather than a 503.
	if rem := deadlineRemaining(r.Context(), 0); rem > 0 && budget > rem-rem/10 {
		budget = rem - rem/10
	}
	res, err := req.kdv.RenderProgressiveInCtx(r.Context(), req.res, req.eps, budget, 0, req.window)
	if err != nil {
		s.m.recordOutcome("progressive", "error")
		requestError(w, r, err)
		return
	}
	s.m.recordOutcome("progressive", "ok")
	s.m.pixels.AddInt(res.Evaluated)
	s.m.renderSeconds["progressive"].ObserveDuration(res.Elapsed)
	setRenderStats(r, &res.Stats)
	setStatsHeaders(w, res.Stats)
	w.Header().Set("X-KDV-Evaluated", strconv.Itoa(res.Evaluated))
	w.Header().Set("X-KDV-Complete", strconv.FormatBool(res.Complete))
	writeDensityPNG(w, r, res.Map, req.logScale)
}

func writeDensityPNG(w http.ResponseWriter, r *http.Request, dm *quad.DensityMap, logScale bool) {
	v := &grid.Values{Res: grid.Resolution{W: dm.Res.W, H: dm.Res.H}, Data: dm.Values}
	scale := render.Linear
	if logScale {
		scale = render.Log
	}
	w.Header().Set("Content-Type", "image/png")
	sp, _ := trace.StartSpan(r.Context(), "encode")
	err := render.EncodePNG(w, render.Heatmap(v, scale))
	sp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
