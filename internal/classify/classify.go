// Package classify implements kernel density classification — the task
// behind tKDC [13] and one of the "other kernel-based machine learning
// models" the QUAD paper names as the natural extension of its bounds: a
// query point is assigned to the class whose (prior-scaled) kernel density
// is highest,
//
//	label(q) = argmax_c  π_c · F_{P_c}(q).
//
// Instead of computing each class's density to full precision, the
// classifier races the classes' bound refinements: it repeatedly refines the
// class whose interval blocks the decision and stops the moment one class's
// lower bound clears every other class's upper bound. With QUAD's tight
// bounds the race usually ends after a handful of node evaluations per
// class.
package classify

import (
	"fmt"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// Class is one labeled training population.
type Class struct {
	Label string
	// Prior is the class prior π_c multiplied into the density. Zero means
	// "use the class's share of the training points".
	Prior float64

	engine *engine.Engine
	n      int
}

// Classifier assigns labels by racing per-class density bounds.
type Classifier struct {
	classes []*Class
	dim     int
}

// Config parameterizes the classifier's shared kernel.
type Config struct {
	Kernel kernel.Kernel
	// Gamma is the kernel distance scale; it must be positive and is shared
	// by all classes so densities are comparable.
	Gamma    float64
	Method   bounds.Method
	LeafSize int
}

// New builds a classifier from labeled point sets. Each class's density is
// normalized by its own cardinality and scaled by its prior, so the decision
// rule is the usual Bayes-style argmax π_c·f_c(q).
func New(classes map[string]geom.Points, cfg Config) (*Classifier, error) {
	if len(classes) < 2 {
		return nil, fmt.Errorf("classify: need at least 2 classes, got %d", len(classes))
	}
	if cfg.Gamma <= 0 {
		return nil, fmt.Errorf("classify: gamma must be positive, got %g", cfg.Gamma)
	}
	c := &Classifier{}
	total := 0
	for _, pts := range classes {
		total += pts.Len()
	}
	for label, pts := range classes {
		if pts.Len() == 0 {
			return nil, fmt.Errorf("classify: class %q is empty", label)
		}
		if c.dim == 0 {
			c.dim = pts.Dim
		} else if pts.Dim != c.dim {
			return nil, fmt.Errorf("classify: class %q has dim %d, want %d", label, pts.Dim, c.dim)
		}
		prior := float64(pts.Len()) / float64(total)
		// Per-class scalar weight: π_c / n_c, so the aggregate is the
		// prior-scaled class-conditional density estimate.
		ev, err := bounds.NewEvaluator(cfg.Kernel, cfg.Gamma, prior/float64(pts.Len()), cfg.Method, pts.Dim)
		if err != nil {
			return nil, err
		}
		tree, err := kdtree.Build(pts, kdtree.Options{LeafSize: cfg.LeafSize, Gram: ev.NeedsGram()})
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(tree, ev)
		if err != nil {
			return nil, err
		}
		c.classes = append(c.classes, &Class{Label: label, Prior: prior, engine: eng, n: pts.Len()})
	}
	// Deterministic order for tie-breaking.
	for i := 1; i < len(c.classes); i++ {
		for j := i; j > 0 && c.classes[j-1].Label > c.classes[j].Label; j-- {
			c.classes[j-1], c.classes[j] = c.classes[j], c.classes[j-1]
		}
	}
	return c, nil
}

// Labels returns the class labels in the classifier's (sorted) order.
func (c *Classifier) Labels() []string {
	out := make([]string, len(c.classes))
	for i, cl := range c.classes {
		out[i] = cl.Label
	}
	return out
}

// Dim returns the feature dimensionality.
func (c *Classifier) Dim() int { return c.dim }

// Result reports a classification and the work it took.
type Result struct {
	Label string
	// Margin is winner_lb − runnerup_ub at termination, ≥ 0 except for
	// exact ties (0).
	Margin float64
	// Stats aggregates refinement work across all classes.
	Stats engine.Stats
}

// Classify races the classes' density bounds at q and returns the winner.
// Exact ties resolve to the lexicographically smallest tied label. It is
// safe for concurrent use: each call refines on private engine clones.
func (c *Classifier) Classify(q []float64) (Result, error) {
	if len(q) != c.dim {
		return Result{}, fmt.Errorf("classify: query has dim %d, want %d", len(q), c.dim)
	}
	refs := make([]*engine.Refiner, len(c.classes))
	for i, cl := range c.classes {
		refs[i] = cl.engine.Clone().StartRefine(q)
	}
	finish := func(winner int, margin float64) Result {
		res := Result{Label: c.classes[winner].Label, Margin: margin}
		for _, r := range refs {
			res.Stats.Add(r.Stats())
		}
		return res
	}
	for {
		// Locate the two classes with the highest upper bounds.
		best, second := -1, -1
		var bestUB, secondUB float64
		for i, r := range refs {
			_, ub := r.Bounds()
			switch {
			case best == -1 || ub > bestUB:
				second, secondUB = best, bestUB
				best, bestUB = i, ub
			case second == -1 || ub > secondUB:
				second, secondUB = i, ub
			}
		}
		bestLB, _ := refs[best].Bounds()
		if bestLB > secondUB {
			return finish(best, bestLB-secondUB), nil
		}
		if bestLB == secondUB && refs[best].Exhausted() && refs[second].Exhausted() {
			// Exact tie between the two leaders: lexicographically smaller
			// label wins, deterministically.
			winner := best
			if lb2, ub2 := refs[second].Bounds(); lb2 == ub2 && ub2 == bestLB &&
				c.classes[second].Label < c.classes[best].Label {
				winner = second
			}
			return finish(winner, 0), nil
		}
		// Refine whichever contender is more uncertain; both exhausted is
		// handled above, so one of them can always step.
		pick := best
		if refs[best].Exhausted() || (!refs[second].Exhausted() && refs[second].Gap() > refs[best].Gap()) {
			pick = second
		}
		refs[pick].Step()
	}
}

// Densities computes each class's prior-scaled density at q to relative
// error ε — the slow path Classify avoids, provided for calibration and
// inspection.
func (c *Classifier) Densities(q []float64, eps float64) (map[string]float64, error) {
	if len(q) != c.dim {
		return nil, fmt.Errorf("classify: query has dim %d, want %d", len(q), c.dim)
	}
	out := make(map[string]float64, len(c.classes))
	for _, cl := range c.classes {
		v, _ := cl.engine.EvalEps(q, eps)
		out[cl.Label] = v
	}
	return out, nil
}
