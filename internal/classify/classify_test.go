package classify

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
)

// twoBlobs builds two Gaussian classes centered apart.
func twoBlobs(rng *rand.Rand, n int, sep float64) map[string]geom.Points {
	mk := func(cx, cy float64, m int) geom.Points {
		coords := make([]float64, 0, m*2)
		for i := 0; i < m; i++ {
			coords = append(coords, cx+rng.NormFloat64(), cy+rng.NormFloat64())
		}
		return geom.NewPoints(coords, 2)
	}
	return map[string]geom.Points{
		"a": mk(0, 0, n),
		"b": mk(sep, 0, n),
	}
}

func defaultCfg() Config {
	return Config{Kernel: kernel.Gaussian, Gamma: 0.5, Method: bounds.Quadratic}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	classes := twoBlobs(rng, 100, 6)
	if _, err := New(map[string]geom.Points{"solo": classes["a"]}, defaultCfg()); err == nil {
		t.Error("single class accepted")
	}
	bad := defaultCfg()
	bad.Gamma = 0
	if _, err := New(twoBlobs(rng, 100, 6), bad); err == nil {
		t.Error("zero gamma accepted")
	}
	mixed := map[string]geom.Points{
		"a": geom.NewPoints([]float64{0, 0}, 2),
		"b": geom.NewPoints([]float64{1, 2, 3}, 3),
	}
	if _, err := New(mixed, defaultCfg()); err == nil {
		t.Error("mixed dimensions accepted")
	}
	empty := map[string]geom.Points{
		"a": geom.NewPoints([]float64{0, 0}, 2),
		"b": {Dim: 2},
	}
	if _, err := New(empty, defaultCfg()); err == nil {
		t.Error("empty class accepted")
	}
}

func TestLabelsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	classes := map[string]geom.Points{
		"zeta":  twoBlobs(rng, 50, 6)["a"],
		"alpha": twoBlobs(rng, 50, 6)["b"],
		"mid":   twoBlobs(rng, 50, 6)["a"],
	}
	c, err := New(classes, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := c.Labels()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels() = %v, want %v", got, want)
		}
	}
	if c.Dim() != 2 {
		t.Errorf("Dim = %d", c.Dim())
	}
}

// TestClassifyMatchesExactArgmax: the raced decision must agree with the
// brute-force argmax of prior-scaled densities away from the decision
// boundary.
func TestClassifyMatchesExactArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	classes := twoBlobs(rng, 800, 6)
	for _, m := range []bounds.Method{bounds.MinMax, bounds.Quadratic} {
		cfg := defaultCfg()
		cfg.Method = m
		cl := map[string]geom.Points{"a": classes["a"].Clone(), "b": classes["b"].Clone()}
		c, err := New(cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			q := []float64{rng.Float64()*10 - 2, rng.NormFloat64() * 2}
			dens, err := c.Densities(q, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			da, db := dens["a"], dens["b"]
			if math.Abs(da-db) < 1e-6*(da+db) {
				continue // too close to the boundary to demand agreement
			}
			want := "a"
			if db > da {
				want = "b"
			}
			res, err := c.Classify(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Label != want {
				t.Fatalf("%s: Classify(%v) = %s, densities a=%g b=%g", m, q, res.Label, da, db)
			}
			if res.Margin < 0 {
				t.Fatalf("negative margin %g", res.Margin)
			}
		}
	}
}

// TestClassifyPrunes: the race must decide well before refining either class
// to exactness on clearly separated queries.
func TestClassifyPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	classes := twoBlobs(rng, 4000, 10)
	c, err := New(classes, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Classify([]float64{0, 0}) // deep inside class a
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "a" {
		t.Fatalf("label = %s", res.Label)
	}
	if res.Stats.PointsScanned > 4000 {
		t.Errorf("race scanned %d points — no pruning happened", res.Stats.PointsScanned)
	}
}

func TestClassifyDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	c, err := New(twoBlobs(rng, 100, 6), defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify([]float64{1}); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if _, err := c.Densities([]float64{1}, 0.01); err == nil {
		t.Error("wrong-dim Densities accepted")
	}
}

func TestClassifyExactTie(t *testing.T) {
	// Two identical classes: every query is an exact tie and must resolve
	// to the lexicographically smaller label.
	pts := geom.NewPoints([]float64{0, 0, 1, 1, 2, 2, 0, 1, 1, 0, 2, 1}, 2)
	classes := map[string]geom.Points{"beta": pts.Clone(), "alpha": pts.Clone()}
	c, err := New(classes, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Classify([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "alpha" {
		t.Errorf("tie resolved to %s, want alpha", res.Label)
	}
	if res.Margin != 0 {
		t.Errorf("tie margin = %g", res.Margin)
	}
}

func TestClassifyPriors(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	// Class b has 9x the points: at the exact midpoint the bigger prior
	// must win.
	mk := func(cx float64, m int) geom.Points {
		coords := make([]float64, 0, m*2)
		for i := 0; i < m; i++ {
			coords = append(coords, cx+rng.NormFloat64(), rng.NormFloat64())
		}
		return geom.NewPoints(coords, 2)
	}
	classes := map[string]geom.Points{"a": mk(0, 200), "b": mk(6, 1800)}
	c, err := New(classes, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Classify([]float64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "b" {
		t.Errorf("midpoint classified %s; the 9x prior should win", res.Label)
	}
}

func TestClassifyConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(136))
	c, err := New(twoBlobs(rng, 500, 6), defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := []float64{r.Float64() * 8, r.NormFloat64()}
				if _, err := c.Classify(q); err != nil {
					t.Errorf("concurrent Classify: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestThreeClasses exercises the race beyond the binary case.
func TestThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	mk := func(cx, cy float64) geom.Points {
		coords := make([]float64, 0, 600)
		for i := 0; i < 300; i++ {
			coords = append(coords, cx+rng.NormFloat64()*0.8, cy+rng.NormFloat64()*0.8)
		}
		return geom.NewPoints(coords, 2)
	}
	classes := map[string]geom.Points{"left": mk(0, 0), "right": mk(8, 0), "top": mk(4, 7)}
	c, err := New(classes, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]float64{
		"left":  {0, 0},
		"right": {8, 0},
		"top":   {4, 7},
	}
	for want, q := range cases {
		res, err := c.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Label != want {
			t.Errorf("Classify(%v) = %s, want %s", q, res.Label, want)
		}
	}
}
