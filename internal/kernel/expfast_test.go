package kernel

import (
	"math"
	"testing"
)

// ulpDiff returns the distance in representable float64 steps between a and
// b (0 when bit-identical), or MaxUint64 for NaN disagreements.
func ulpDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if math.IsNaN(a) && math.IsNaN(b) {
			return 0
		}
		return math.MaxUint64
	}
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba == bb {
		return 0
	}
	// Map to a monotone integer line (sign-magnitude to biased).
	conv := func(u uint64) uint64 {
		if u>>63 != 0 {
			return ^u
		}
		return u | (1 << 63)
	}
	ia, ib := conv(ba), conv(bb)
	if ia > ib {
		return ia - ib
	}
	return ib - ia
}

// TestExp1Accuracy sweeps exp's useful domain and edge cases and requires
// Exp1 to stay within 1 ulp of math.Exp (the two differ only when math.Exp
// takes a fused-multiply-add hardware path).
func TestExp1Accuracy(t *testing.T) {
	xs := []float64{
		0, math.Copysign(0, -1), 1, -1,
		709.78271289338397, 709.9, -744, -745.1, -745.2, -746, -1000,
		-708.5, 708.5, 1e-300, -1e-300, expLn2Hi, -expLn2Hi,
	}
	for x := -746.0; x <= 710; x += 0.013771 {
		xs = append(xs, x)
	}
	for x := -2.0; x <= 2; x += 0.000317 {
		xs = append(xs, x)
	}
	for _, x := range xs {
		got, want := Exp1(x), math.Exp(x)
		if d := ulpDiff(got, want); d > 1 {
			t.Fatalf("Exp1(%g) = %.17g, math.Exp = %.17g (%d ulp apart)", x, got, want, d)
		}
	}
}

// TestExp1Specials pins the special-case behavior to math.Exp's exactly.
func TestExp1Specials(t *testing.T) {
	for _, x := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), 710, 1e300, -1e300} {
		got, want := Exp1(x), math.Exp(x)
		if math.Float64bits(got) != math.Float64bits(want) &&
			!(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("Exp1(%g) = %g, math.Exp = %g", x, got, want)
		}
	}
}

// TestExp4MatchesExp1 requires every batch lane to be bit-identical to the
// scalar form — the property the engines' determinism rests on.
func TestExp4MatchesExp1(t *testing.T) {
	xs := []float64{
		0, math.Copysign(0, -1), 1, -1, math.Inf(1), math.Inf(-1), math.NaN(),
		709.78271289338397, 710, -744, -745.2, -746, -1000, -708.5, 708.5,
	}
	for x := -746.0; x <= 710; x += 0.13771 {
		xs = append(xs, x)
	}
	for i := 0; i+3 < len(xs); i += 4 {
		a, b, c, d := xs[i], xs[i+1], xs[i+2], xs[i+3]
		ea, eb, ec, ed := Exp4(a, b, c, d)
		for _, p := range [][2]float64{{a, ea}, {b, eb}, {c, ec}, {d, ed}} {
			want := Exp1(p[0])
			if math.Float64bits(p[1]) != math.Float64bits(want) &&
				!(math.IsNaN(p[1]) && math.IsNaN(want)) {
				t.Fatalf("Exp4(%g) = %x, Exp1 = %x", p[0],
					math.Float64bits(p[1]), math.Float64bits(want))
			}
		}
	}
}

// FuzzExpFastLanes fuzzes arbitrary arguments through all batch lanes,
// asserting lane-vs-scalar bit-identity and ≤1 ulp accuracy vs math.Exp.
func FuzzExpFastLanes(f *testing.F) {
	for _, x := range []float64{0, -1, 1, -745.13, 709.78, -0.0001, 3.14, -708, 708.0001} {
		f.Add(x)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		ea, eb, ec, ed := Exp4(x, x/2, -x, x*1.0001)
		for i, p := range [][2]float64{{x, ea}, {x / 2, eb}, {-x, ec}, {x * 1.0001, ed}} {
			want := Exp1(p[0])
			if math.Float64bits(p[1]) != math.Float64bits(want) &&
				!(math.IsNaN(p[1]) && math.IsNaN(want)) {
				t.Fatalf("lane %d: Exp4(%g) = %x, Exp1 = %x", i, p[0],
					math.Float64bits(p[1]), math.Float64bits(want))
			}
			if !math.IsNaN(p[0]) {
				if d := ulpDiff(p[1], math.Exp(p[0])); d > 1 {
					t.Fatalf("lane %d: Exp4(%g) is %d ulp from math.Exp", i, p[0], d)
				}
			}
		}
	})
}

func BenchmarkMathExp4x(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		x := -float64(i&1023) * 0.5
		s += math.Exp(x) + math.Exp(x-1) + math.Exp(x-2) + math.Exp(x-3)
	}
	sinkF = s
}

func BenchmarkExp4(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		x := -float64(i&1023) * 0.5
		ea, eb, ec, ed := Exp4(x, x-1, x-2, x-3)
		s += ea + eb + ec + ed
	}
	sinkF = s
}

var sinkF float64
