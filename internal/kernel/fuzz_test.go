package kernel

import (
	"math"
	"testing"
)

// FuzzExpEnvelopes: for fuzzer-chosen intervals and sample points, the four
// Gaussian-profile envelopes must sandwich exp(−x).
func FuzzExpEnvelopes(f *testing.F) {
	f.Add(0.0, 1.0, 0.5, 0.5)
	f.Add(0.0, 100.0, 0.3, 0.9)
	f.Add(3.0, 3.0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, a, width, tFrac, xFrac float64) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(width) || math.IsInf(width, 0) {
			return
		}
		xmin := math.Abs(math.Mod(a, 50))
		w := math.Abs(math.Mod(width, 50))
		xmax := xmin + w
		tf := math.Abs(math.Mod(tFrac, 1))
		xf := math.Abs(math.Mod(xFrac, 1))
		if math.IsNaN(tf) || math.IsNaN(xf) {
			return
		}
		tpt := xmin + tf*w
		x := xmin + xf*w
		e := math.Exp(-x)
		tol := 1e-9 * (1 + e)
		if v := ExpChordUpper(xmin, xmax).Eval(x); v < e-tol {
			t.Fatalf("chord upper %g < exp(−%g)=%g on [%g,%g]", v, x, e, xmin, xmax)
		}
		if v := ExpTangentLower(tpt).Eval(x); v > e+tol {
			t.Fatalf("tangent lower %g > exp(−%g)=%g (t=%g)", v, x, e, tpt)
		}
		if v := ExpQuadUpper(xmin, xmax).Eval(x); v < e-tol {
			t.Fatalf("quad upper %g < exp(−%g)=%g on [%g,%g]", v, x, e, xmin, xmax)
		}
		if v := ExpQuadLower(xmin, xmax, tpt).Eval(x); v > e+tol {
			t.Fatalf("quad lower %g > exp(−%g)=%g on [%g,%g] (t=%g)", v, x, e, xmin, xmax, tpt)
		}
	})
}

// FuzzDistKernelEnvelopes: the restricted a·x²+c envelopes of the distance
// kernels must sandwich their profiles wherever the constructors accept the
// interval.
func FuzzDistKernelEnvelopes(f *testing.F) {
	f.Add(0.0, 0.5, 0.5)
	f.Add(0.2, 1.0, 0.1)
	f.Fuzz(func(t *testing.T, a, width, xFrac float64) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(width) || math.IsInf(width, 0) || math.IsNaN(xFrac) {
			return
		}
		xmin := math.Abs(math.Mod(a, 3))
		w := math.Abs(math.Mod(width, 3))
		xmax := xmin + w
		x := xmin + math.Abs(math.Mod(xFrac, 1))*w
		tol := 1e-9

		if qu, ok := TriangularQuadUpper(xmin, xmax); ok {
			if v, p := qu.Eval(x), Triangular.Profile(x); v < p-tol {
				t.Fatalf("triangular upper %g < profile %g at x=%g", v, p, x)
			}
		}
		if qu, ok := CosineQuadUpper(xmin, xmax); ok {
			if v, p := qu.Eval(x), Cosine.Profile(x); v < p-tol {
				t.Fatalf("cosine upper %g < profile %g at x=%g", v, p, x)
			}
		}
		if ql, ok := CosineQuadLower(xmin, xmax); ok {
			if v, p := ql.Eval(x), math.Cos(x); v > p+tol {
				t.Fatalf("cosine lower %g > cos %g at x=%g", v, p, x)
			}
		}
		if qu, ok := ExpDistQuadUpper(xmin, xmax); ok {
			if v, p := qu.Eval(x), math.Exp(-x); v < p-tol {
				t.Fatalf("exp-dist upper %g < exp %g at x=%g", v, p, x)
			}
		}
		if ql, ok := ExpDistQuadLower(xmin + 0.1); ok {
			if v, p := ql.Eval(x), math.Exp(-x); v > p+tol {
				t.Fatalf("exp-dist lower %g > exp %g at x=%g", v, p, x)
			}
		}
	})
}
