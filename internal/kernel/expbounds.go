package kernel

import "math"

// This file implements the envelope mathematics for the profile exp(−x) used
// by the Gaussian kernel: the KARL linear bounds (paper Section 3.3) and the
// QUAD quadratic bounds (paper Section 4).
//
// All functions take an interval [xmin, xmax] with 0 ≤ xmin ≤ xmax that is
// guaranteed to contain every transformed value x_i of the node's points.

// degenerateX is the interval width below which a bounding interval is
// treated as a single point: the profile is then evaluated directly and the
// interpolation formulas (which divide by xmax−xmin) are bypassed.
const degenerateX = 1e-12

// Linear holds the coefficients of a linear envelope m·x + k.
type Linear struct{ M, K float64 }

// Eval evaluates the linear function at x.
func (l Linear) Eval(x float64) float64 { return l.M*x + l.K }

// Quadratic holds the coefficients of a quadratic envelope a·x² + b·x + c.
type Quadratic struct{ A, B, C float64 }

// Eval evaluates the quadratic at x.
func (q Quadratic) Eval(x float64) float64 { return (q.A*x+q.B)*x + q.C }

// ExpChordUpper returns the KARL linear upper bound of exp(−x) on
// [xmin, xmax]: the chord through (xmin, e^{−xmin}) and (xmax, e^{−xmax}).
// Because exp(−x) is convex, the chord lies above it on the interval.
func ExpChordUpper(xmin, xmax float64) Linear {
	w := xmax - xmin
	if w < degenerateX {
		return Linear{M: 0, K: math.Exp(-xmin)}
	}
	eMin := math.Exp(-xmin)
	// (e^{−xmax} − e^{−xmin})/w = e^{−xmin}·expm1(−w)/w, which stays
	// accurate when w is small (the direct difference cancels).
	m := eMin * math.Expm1(-w) / w
	return Linear{M: m, K: eMin - m*xmin}
}

// ExpTangentLower returns the KARL linear lower bound of exp(−x): the
// tangent line at t, EL(x) = −e^{−t}·x + (1+t)·e^{−t}. By convexity the
// tangent lies below exp(−x) everywhere, so no interval is needed.
func ExpTangentLower(t float64) Linear {
	et := math.Exp(-t)
	return Linear{M: -et, K: (1 + t) * et}
}

// ExpQuadUpper returns the QUAD quadratic upper bound of exp(−x) on
// [xmin, xmax] (paper Section 4.2, Theorem 1). The parabola passes through
// both interval endpoints of the profile and uses the optimal curvature
//
//	a_u* = (e^{−xmin} − (xmax − xmin + 1)·e^{−xmax}) / (xmax − xmin)²
//
// derived from the Theorem 1 slope condition
// dQU/dx|_{xmax} ≤ −e^{−xmax}: writing QU(x) = a_u·(x−xmin)(x−xmax) +
// chord(x), the condition gives a_u ≤ a_u* and the bound tightens as a_u
// grows, so a_u = a_u* is optimal. (1 − (w+1)e^{−w}) ≥ 0 for w ≥ 0, so
// a_u* ≥ 0 and QU never exceeds the KARL chord, the a_u = 0 special case.
func ExpQuadUpper(xmin, xmax float64) Quadratic {
	w := xmax - xmin
	if w < degenerateX {
		return Quadratic{A: 0, B: 0, C: math.Exp(-xmin)}
	}
	eMin := math.Exp(-xmin)
	em1 := math.Expm1(-w)
	// a_u* = e^{−xmin}·(1 − (w+1)e^{−w})/w². The parenthesized factor is
	// ~w²/2 for small w and cancels catastrophically if evaluated
	// directly; −(w + (w+1)·expm1(−w)) is the stable form.
	g := -(w + (w+1)*em1)
	au := eMin * g / (w * w)
	if au < 0 {
		// g ≥ 0 analytically; guard against rounding by falling back to
		// the chord, which is always a valid envelope.
		au = 0
	}
	// Chord slope and the cu interpolation term, both in cancellation-free
	// forms: (e^{−xmax}−e^{−xmin})/w = eMin·expm1(−w)/w and
	// (eMin·xmax − eMax·xmin)/w = eMin·(w − xmin·expm1(−w))/w.
	m := eMin * em1 / w
	bu := m - au*(xmin+xmax)
	cu := eMin*(w-xmin*em1)/w + au*xmin*xmax
	return Quadratic{A: au, B: bu, C: cu}
}

// ExpQuadLower returns the QUAD quadratic lower bound of exp(−x) on
// [xmin, xmax] (paper Section 4.3): the parabola tangent to exp(−x) at t and
// passing through (xmax, e^{−xmax}). t is clamped into [xmin, xmax]; the
// paper's recommended choice is t* = mean of the x_i (Equation 3).
//
// The resulting parabola satisfies m_l·x + k_l ≤ QL(x) ≤ exp(−x) on the
// interval, i.e. it is at least as tight as the KARL tangent line.
func ExpQuadLower(xmin, xmax, t float64) Quadratic {
	if t < xmin {
		t = xmin
	}
	if t > xmax {
		t = xmax
	}
	w := xmax - t
	if w < degenerateX {
		// Tangent point at the right endpoint: the parabola degenerates to
		// the tangent line at xmax, still a valid lower bound by convexity.
		l := ExpTangentLower(xmax)
		return Quadratic{A: 0, B: l.M, C: l.K}
	}
	et := math.Exp(-t)
	// a_l = e^{−t}·(e^{−u} + u − 1)/u² with u = xmax − t. The numerator is
	// ~u²/2 for small u and cancels catastrophically if evaluated as
	// e^{−xmax} + (xmax−1−t)e^{−t}; expm1(−u) + u is the stable form.
	al := et * (math.Expm1(-w) + w) / (w * w)
	if al < 0 {
		// The factor is ≥ 0 analytically; guard against rounding by
		// falling back to the plain tangent line.
		l := ExpTangentLower(t)
		return Quadratic{A: 0, B: l.M, C: l.K}
	}
	bl := -et - 2*t*al
	cl := (1+t)*et + t*t*al
	return Quadratic{A: al, B: bl, C: cl}
}
