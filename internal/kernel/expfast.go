package kernel

import "math"

// Batched exponentials for the Gaussian leaf-scan hot path. Exp4 evaluates
// four exp(x) with the four dependency chains interleaved in branch-free
// straight-line code, so the out-of-order core overlaps them — the ~25-step
// serial chain of one exponential amortizes across lanes instead of
// serializing behind a math.Exp call per point.
//
// The algorithm is the Shibata/SLEEF polynomial that Go's amd64 assembly
// math.Exp implements, in its plain multiply/add variant (no fused ops), so
// the result is a deterministic pure-Go function of the input — identical
// across worker counts, builds, and architectures that round IEEE multiplies
// and adds separately. Accuracy matches libm-grade exp (~1 ulp; this exact
// code path WAS math.Exp on pre-FMA amd64). It is intentionally not
// bit-identical to math.Exp on machines where math.Exp takes an FMA path:
// every engine consumer (pointer and flat alike) goes through this package,
// so raster bit-identity between the two engines never depends on matching
// math.Exp — and the conformance suite's oracle comparisons carry explicit
// floating-point slack orders of magnitude above the ulp-level difference.

const (
	expOverflow = 7.09782712893384e+02
	expLog2E    = 1.4426950408889634073599246810018920
	expLn2Hi    = 0.69314718055966295651160180568695068359375
	expLn2Lo    = 0.28235290563031577122588448175013436025525412068e-12

	// Taylor coefficients of the reduced-argument polynomial.
	expC3 = 1.6666666666666666667e-1
	expC4 = 4.1666666666666666667e-2
	expC5 = 8.3333333333333333333e-3
	expC6 = 1.3888888888888888889e-3
	expC7 = 1.9841269841269841270e-4
	expC8 = 2.4801587301587301587e-5

	// expRoundMagic implements round-to-nearest-even to an integer under the
	// default rounding mode: t + magic − magic is exact for |t| < 2^51,
	// which covers every finite exp argument.
	expRoundMagic = 6755399441055744.0 // 1.5 * 2^52

	// expEasyLim brackets the arguments the batched core handles without
	// overflow, underflow, or denormal scaling; |x| ≤ 708 keeps the biased
	// result exponent strictly inside (0, 0x7FF).
	expEasyLim = 708.0
)

// expScale multiplies the polynomial result by 2^k with full denormal and
// overflow handling (the assembly's ldexp tail).
func expScale(x0 float64, k int32) float64 {
	e := k + 0x3FF
	if e <= 0 {
		if e < -52 {
			return 0
		}
		x0 *= math.Float64frombits(uint64(e+0x3FE) << 52)
		return x0 * math.Float64frombits(1<<52) // 2^-1022
	}
	if e >= 0x7FF {
		return math.Inf(1)
	}
	return x0 * math.Float64frombits(uint64(e)<<52)
}

// Exp1 is the scalar form of Exp4: one lane of the same operation sequence,
// bit-identical to a batch lane, with the special cases (NaN, ±Inf,
// overflow, denormal results) handled like math.Exp handles them.
func Exp1(x float64) float64 {
	b := math.Float64bits(x)
	if b&0x7FFFFFFFFFFFFFFF >= 0x7FF0000000000000 {
		if b == 0xFFF0000000000000 { // -Inf
			return 0
		}
		return x // NaN or +Inf
	}
	if x > expOverflow {
		return math.Inf(1)
	}
	f := (x*expLog2E + expRoundMagic) - expRoundMagic
	k := int32(f)
	x0 := x - f*expLn2Hi
	x0 -= f * expLn2Lo
	x0 *= 0.0625
	p := expC8 * x0
	p += expC7
	p *= x0
	p += expC6
	p *= x0
	p += expC5
	p *= x0
	p += expC4
	p *= x0
	p += expC3
	p *= x0
	p += 0.5
	p *= x0
	p += 1.0
	x0 = x0 * p
	p = 2 + x0
	x0 = x0 * p
	p = 2 + x0
	x0 = x0 * p
	p = 2 + x0
	x0 = x0 * p
	p = 2 + x0
	x0 = x0 * p
	x0 += 1.0
	return expScale(x0, k)
}

// Exp4 returns (exp(a), exp(b), exp(c), exp(d)), each bit-identical to
// Exp1 of the same argument.
func Exp4(a, b, c, d float64) (ea, eb, ec, ed float64) {
	// NaN fails both range comparisons, so specials also take the scalar
	// lane handlers.
	if !(a >= -expEasyLim && a <= expEasyLim &&
		b >= -expEasyLim && b <= expEasyLim &&
		c >= -expEasyLim && c <= expEasyLim &&
		d >= -expEasyLim && d <= expEasyLim) {
		return Exp1(a), Exp1(b), Exp1(c), Exp1(d)
	}
	fa := (a*expLog2E + expRoundMagic) - expRoundMagic
	fb := (b*expLog2E + expRoundMagic) - expRoundMagic
	fc := (c*expLog2E + expRoundMagic) - expRoundMagic
	fd := (d*expLog2E + expRoundMagic) - expRoundMagic
	xa := a - fa*expLn2Hi
	xb := b - fb*expLn2Hi
	xc := c - fc*expLn2Hi
	xd := d - fd*expLn2Hi
	xa -= fa * expLn2Lo
	xb -= fb * expLn2Lo
	xc -= fc * expLn2Lo
	xd -= fd * expLn2Lo
	xa *= 0.0625
	xb *= 0.0625
	xc *= 0.0625
	xd *= 0.0625
	pa := expC8 * xa
	pb := expC8 * xb
	pc := expC8 * xc
	pd := expC8 * xd
	pa += expC7
	pb += expC7
	pc += expC7
	pd += expC7
	pa *= xa
	pb *= xb
	pc *= xc
	pd *= xd
	pa += expC6
	pb += expC6
	pc += expC6
	pd += expC6
	pa *= xa
	pb *= xb
	pc *= xc
	pd *= xd
	pa += expC5
	pb += expC5
	pc += expC5
	pd += expC5
	pa *= xa
	pb *= xb
	pc *= xc
	pd *= xd
	pa += expC4
	pb += expC4
	pc += expC4
	pd += expC4
	pa *= xa
	pb *= xb
	pc *= xc
	pd *= xd
	pa += expC3
	pb += expC3
	pc += expC3
	pd += expC3
	pa *= xa
	pb *= xb
	pc *= xc
	pd *= xd
	pa += 0.5
	pb += 0.5
	pc += 0.5
	pd += 0.5
	pa *= xa
	pb *= xb
	pc *= xc
	pd *= xd
	pa += 1.0
	pb += 1.0
	pc += 1.0
	pd += 1.0
	xa = xa * pa
	xb = xb * pb
	xc = xc * pc
	xd = xd * pd
	pa = 2 + xa
	pb = 2 + xb
	pc = 2 + xc
	pd = 2 + xd
	xa = xa * pa
	xb = xb * pb
	xc = xc * pc
	xd = xd * pd
	pa = 2 + xa
	pb = 2 + xb
	pc = 2 + xc
	pd = 2 + xd
	xa = xa * pa
	xb = xb * pb
	xc = xc * pc
	xd = xd * pd
	pa = 2 + xa
	pb = 2 + xb
	pc = 2 + xc
	pd = 2 + xd
	xa = xa * pa
	xb = xb * pb
	xc = xc * pc
	xd = xd * pd
	pa = 2 + xa
	pb = 2 + xb
	pc = 2 + xc
	pd = 2 + xd
	xa = xa * pa
	xb = xb * pb
	xc = xc * pc
	xd = xd * pd
	xa += 1.0
	xb += 1.0
	xc += 1.0
	xd += 1.0
	// |x| ≤ 708 keeps every lane in expScale's normal branch, so the calls
	// stay branch-predictable.
	return expScale(xa, int32(fa)), expScale(xb, int32(fb)),
		expScale(xc, int32(fc)), expScale(xd, int32(fd))
}
