package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStringParseRoundTrip(t *testing.T) {
	for _, k := range All() {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("Parse(String(%v)) = %v", k, got)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse of unknown kernel succeeded")
	}
}

func TestValid(t *testing.T) {
	for _, k := range All() {
		if !k.Valid() {
			t.Errorf("%v reported invalid", k)
		}
	}
	if Kernel(-1).Valid() || Kernel(int(numKernels)).Valid() {
		t.Error("out-of-range kernel reported valid")
	}
}

func TestProfileAtZero(t *testing.T) {
	for _, k := range All() {
		if got := k.Profile(0); got != 1 {
			t.Errorf("%v.Profile(0) = %g, want 1", k, got)
		}
		if got := k.ProfileMax(); got != 1 {
			t.Errorf("%v.ProfileMax() = %g, want 1", k, got)
		}
	}
}

func TestProfileSupport(t *testing.T) {
	for _, k := range All() {
		s := k.SupportX()
		if math.IsInf(s, 1) {
			continue
		}
		if got := k.Profile(s + 1e-9); got != 0 {
			t.Errorf("%v.Profile(just past support) = %g, want 0", k, got)
		}
		if got := k.Profile(s * 0.999); got <= 0 && k != Uniform {
			// Uniform is 1 on its whole support; the others approach 0.
			t.Errorf("%v.Profile(just inside support) = %g, want > 0", k, got)
		}
	}
}

func TestProfileMonotoneNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range All() {
		for trial := 0; trial < 2000; trial++ {
			a := rng.Float64() * 4
			b := a + rng.Float64()*4
			fa, fb := k.Profile(a), k.Profile(b)
			if fb > fa+1e-15 {
				t.Fatalf("%v profile increased: f(%g)=%g < f(%g)=%g", k, a, fa, b, fb)
			}
		}
	}
}

func TestEvalMatchesProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range All() {
		for trial := 0; trial < 500; trial++ {
			gamma := 0.1 + rng.Float64()*3
			dist := rng.Float64() * 3
			want := k.Profile(k.X(gamma, dist*dist))
			got := k.Eval(gamma, dist*dist)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v Eval(γ=%g, d=%g) = %g, want %g", k, gamma, dist, got, want)
			}
		}
	}
}

func TestGaussianUsesSquaredDistance(t *testing.T) {
	if !Gaussian.UsesSquaredDistance() {
		t.Error("Gaussian must use squared distance")
	}
	for _, k := range []Kernel{Triangular, Cosine, Exponential, Epanechnikov, Quartic, Uniform} {
		if k.UsesSquaredDistance() {
			t.Errorf("%v must not use squared distance", k)
		}
	}
}

func TestBoundAvailabilityFlags(t *testing.T) {
	if !Gaussian.HasLinearBounds() {
		t.Error("Gaussian must have linear bounds")
	}
	for _, k := range []Kernel{Triangular, Cosine, Exponential} {
		if k.HasLinearBounds() {
			t.Errorf("%v must not have linear bounds (paper Section 5.1)", k)
		}
		if !k.HasQuadraticBounds() {
			t.Errorf("%v must have quadratic bounds", k)
		}
	}
	if Uniform.HasQuadraticBounds() {
		t.Error("Uniform must not advertise quadratic bounds")
	}
}

// randInterval draws a plausible x-interval.
func randInterval(rng *rand.Rand, scale float64) (xmin, xmax float64) {
	xmin = rng.Float64() * scale
	xmax = xmin + rng.Float64()*scale
	return
}

func TestExpChordUpperEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		xmin, xmax := randInterval(rng, 5)
		up := ExpChordUpper(xmin, xmax)
		for i := 0; i <= 20; i++ {
			x := xmin + (xmax-xmin)*float64(i)/20
			if up.Eval(x) < math.Exp(-x)-1e-12 {
				t.Fatalf("chord upper below exp(−x) at x=%g on [%g,%g]", x, xmin, xmax)
			}
		}
		// Exactness at endpoints.
		if math.Abs(up.Eval(xmin)-math.Exp(-xmin)) > 1e-9 {
			t.Fatalf("chord not through left endpoint on [%g,%g]", xmin, xmax)
		}
	}
}

func TestExpTangentLowerEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5000; trial++ {
		tpt := rng.Float64() * 6
		lo := ExpTangentLower(tpt)
		for i := 0; i <= 20; i++ {
			x := rng.Float64() * 8
			if lo.Eval(x) > math.Exp(-x)+1e-12 {
				t.Fatalf("tangent lower above exp(−x) at x=%g (t=%g)", x, tpt)
			}
		}
		if math.Abs(lo.Eval(tpt)-math.Exp(-tpt)) > 1e-12 {
			t.Fatalf("tangent does not touch at t=%g", tpt)
		}
	}
}

func TestExpQuadUpperEnvelopeAndTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5000; trial++ {
		xmin, xmax := randInterval(rng, 5)
		qu := ExpQuadUpper(xmin, xmax)
		chord := ExpChordUpper(xmin, xmax)
		for i := 0; i <= 40; i++ {
			x := xmin + (xmax-xmin)*float64(i)/40
			e := math.Exp(-x)
			quv := qu.Eval(x)
			if quv < e-1e-10 {
				t.Fatalf("quad upper below exp(−x) at x=%g on [%g,%g]: %g < %g", x, xmin, xmax, quv, e)
			}
			// Theorem 1: tighter than (or equal to) the chord.
			if quv > chord.Eval(x)+1e-10 {
				t.Fatalf("quad upper looser than chord at x=%g on [%g,%g]", x, xmin, xmax)
			}
		}
	}
}

func TestExpQuadLowerEnvelopeAndTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5000; trial++ {
		xmin, xmax := randInterval(rng, 5)
		tpt := xmin + rng.Float64()*(xmax-xmin)
		ql := ExpQuadLower(xmin, xmax, tpt)
		tan := ExpTangentLower(clamp(tpt, xmin, xmax))
		for i := 0; i <= 40; i++ {
			x := xmin + (xmax-xmin)*float64(i)/40
			e := math.Exp(-x)
			qlv := ql.Eval(x)
			if qlv > e+1e-10 {
				t.Fatalf("quad lower above exp(−x) at x=%g on [%g,%g] (t=%g): %g > %g", x, xmin, xmax, tpt, qlv, e)
			}
			// Section 4.3: tighter than (or equal to) the tangent line.
			if qlv < tan.Eval(x)-1e-10 {
				t.Fatalf("quad lower looser than tangent at x=%g on [%g,%g]", x, xmin, xmax)
			}
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestExpQuadLowerClampsTangentPoint(t *testing.T) {
	// Out-of-interval t must still produce a valid envelope.
	for _, tpt := range []float64{-3, 0, 10, 100} {
		ql := ExpQuadLower(1, 2, tpt)
		for i := 0; i <= 20; i++ {
			x := 1 + float64(i)/20
			if ql.Eval(x) > math.Exp(-x)+1e-10 {
				t.Fatalf("clamped quad lower invalid at x=%g (t=%g)", x, tpt)
			}
		}
	}
}

// TestExpQuadUpperStrictlyTighterOnWideIntervals guards against sign
// mistakes in a_u*: on a wide interval the optimal parabola must beat the
// chord by a wide margin at the midpoint, not merely match it.
func TestExpQuadUpperStrictlyTighterOnWideIntervals(t *testing.T) {
	for _, iv := range [][2]float64{{0, 10}, {0.5, 6}, {1, 20}, {0, 3}} {
		xmin, xmax := iv[0], iv[1]
		qu := ExpQuadUpper(xmin, xmax)
		chord := ExpChordUpper(xmin, xmax)
		if qu.A <= 0 {
			t.Fatalf("a_u* = %g on [%g,%g], want > 0", qu.A, xmin, xmax)
		}
		mid := (xmin + xmax) / 2
		if qu.Eval(mid) > 0.7*chord.Eval(mid) {
			t.Errorf("quad upper %g not substantially below chord %g at midpoint of [%g,%g]",
				qu.Eval(mid), chord.Eval(mid), xmin, xmax)
		}
	}
}

func TestExpQuadDegenerateInterval(t *testing.T) {
	qu := ExpQuadUpper(2, 2)
	ql := ExpQuadLower(2, 2, 2)
	want := math.Exp(-2)
	if math.Abs(qu.Eval(2)-want) > 1e-12 || math.Abs(ql.Eval(2)-want) > 1e-12 {
		t.Errorf("degenerate interval bounds = [%g, %g], want both %g", ql.Eval(2), qu.Eval(2), want)
	}
}

// TestExpQuadUpperQuick drives the envelope with testing/quick over a wide
// random parameter space.
func TestExpQuadUpperQuick(t *testing.T) {
	f := func(a, b, frac float64) bool {
		xmin := math.Abs(math.Mod(a, 10))
		width := math.Abs(math.Mod(b, 10))
		xmax := xmin + width
		fr := math.Abs(math.Mod(frac, 1))
		x := xmin + fr*width
		qu := ExpQuadUpper(xmin, xmax)
		return qu.Eval(x) >= math.Exp(-x)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestExpQuadLowerQuick(t *testing.T) {
	f := func(a, b, c, frac float64) bool {
		xmin := math.Abs(math.Mod(a, 10))
		width := math.Abs(math.Mod(b, 10))
		xmax := xmin + width
		tpt := xmin + math.Abs(math.Mod(c, 1))*width
		fr := math.Abs(math.Mod(frac, 1))
		x := xmin + fr*width
		ql := ExpQuadLower(xmin, xmax, tpt)
		return ql.Eval(x) <= math.Exp(-x)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}
