// Package kernel defines the kernel functions supported by the library and
// the bound-coefficient mathematics at the heart of QUAD: linear (KARL-style)
// and quadratic (QUAD) lower/upper envelopes of each kernel profile over a
// distance interval.
//
// Every kernel is expressed through a scalar profile in a transformed
// variable x:
//
//	Gaussian:     K = exp(−γ·dist²)        x = γ·dist²   profile exp(−x)
//	Exponential:  K = exp(−γ·dist)         x = γ·dist    profile exp(−x)
//	Triangular:   K = max(1−γ·dist, 0)     x = γ·dist    profile max(1−x,0)
//	Cosine:       K = cos(γ·dist) [≤π/2γ]  x = γ·dist    profile cos(x)·1{x≤π/2}
//	Epanechnikov: K = max(1−(γ·dist)², 0)  x = γ·dist    profile max(1−x²,0)
//	Quartic:      K = max(1−(γ·dist)²,0)²  x = γ·dist    profile max(1−x²,0)²
//	Uniform:      K = 1{γ·dist ≤ 1}        x = γ·dist    profile 1{x≤1}
//
// The Gaussian uses the squared distance so that quadratic envelopes
// aggregate through Σdist² and Σdist⁴ (paper Section 4); the remaining
// kernels use the plain distance with restricted envelopes a·x²+c so that
// aggregation needs only Σdist² (paper Section 5).
package kernel

import (
	"fmt"
	"math"
)

// Kernel enumerates the supported kernel functions.
type Kernel int

const (
	// Gaussian is exp(−γ·dist²) — the paper's primary kernel (Equation 1).
	Gaussian Kernel = iota
	// Triangular is max(1 − γ·dist, 0) (Table 4).
	Triangular
	// Cosine is cos(γ·dist) for γ·dist ≤ π/2, else 0 (Table 4).
	Cosine
	// Exponential is exp(−γ·dist) (Table 4).
	Exponential
	// Epanechnikov is max(1 − (γ·dist)², 0) — an extension kernel.
	Epanechnikov
	// Quartic (biweight) is max(1 − (γ·dist)², 0)² — an extension kernel.
	Quartic
	// Uniform is 1 when γ·dist ≤ 1, else 0 — an extension kernel.
	Uniform

	numKernels
)

// All lists every supported kernel, in declaration order.
func All() []Kernel {
	ks := make([]Kernel, numKernels)
	for i := range ks {
		ks[i] = Kernel(i)
	}
	return ks
}

// String returns the kernel's canonical lowercase name.
func (k Kernel) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Triangular:
		return "triangular"
	case Cosine:
		return "cosine"
	case Exponential:
		return "exponential"
	case Epanechnikov:
		return "epanechnikov"
	case Quartic:
		return "quartic"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// Parse maps a name (as produced by String) back to a Kernel.
func Parse(name string) (Kernel, error) {
	for _, k := range All() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("kernel: unknown kernel %q", name)
}

// Valid reports whether k is one of the declared kernels.
func (k Kernel) Valid() bool { return k >= 0 && k < numKernels }

// UsesSquaredDistance reports whether the kernel's transformed variable is
// x = γ·dist² (true only for Gaussian) rather than x = γ·dist.
func (k Kernel) UsesSquaredDistance() bool { return k == Gaussian }

// SupportX returns the profile's support bound in x: the profile is
// identically zero for x > SupportX. Infinite-support kernels return +Inf.
func (k Kernel) SupportX() float64 {
	switch k {
	case Gaussian, Exponential:
		return math.Inf(1)
	case Cosine:
		return math.Pi / 2
	default: // Triangular, Epanechnikov, Quartic, Uniform
		return 1
	}
}

// Profile evaluates the kernel's scalar profile at x ≥ 0.
func (k Kernel) Profile(x float64) float64 {
	switch k {
	case Gaussian, Exponential:
		return math.Exp(-x)
	case Triangular:
		if x >= 1 {
			return 0
		}
		return 1 - x
	case Cosine:
		if x >= math.Pi/2 {
			return 0
		}
		return math.Cos(x)
	case Epanechnikov:
		if x >= 1 {
			return 0
		}
		return 1 - x*x
	case Quartic:
		if x >= 1 {
			return 0
		}
		u := 1 - x*x
		return u * u
	case Uniform:
		if x > 1 {
			return 0
		}
		return 1
	default:
		panic("kernel: invalid kernel")
	}
}

// Eval evaluates K(q,p) given the squared distance dist² between q and p.
// Taking the squared distance avoids a square root for the Gaussian kernel,
// the common case.
func (k Kernel) Eval(gamma, dist2 float64) float64 {
	if k == Gaussian {
		return math.Exp(-gamma * dist2)
	}
	return k.Profile(gamma * math.Sqrt(dist2))
}

// X maps a squared distance to the kernel's transformed variable.
func (k Kernel) X(gamma, dist2 float64) float64 {
	if k == Gaussian {
		return gamma * dist2
	}
	return gamma * math.Sqrt(dist2)
}

// ProfileMax returns the profile's maximum value (attained at x = 0).
func (k Kernel) ProfileMax() float64 {
	return k.Profile(0)
}

// HasQuadraticBounds reports whether the QUAD quadratic envelopes are
// available for this kernel. Uniform has a flat, discontinuous profile for
// which only min-max bounds apply; Epanechnikov and Quartic get partially
// exact envelopes (see bounds package).
func (k Kernel) HasQuadraticBounds() bool {
	return k != Uniform
}

// HasLinearBounds reports whether the KARL-style O(d) linear envelopes are
// available. Per paper Section 5.1 they exist only for the Gaussian kernel,
// whose transformed variable is the squared distance.
func (k Kernel) HasLinearBounds() bool { return k == Gaussian }
