package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTriangularQuadUpperEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tri := func(x float64) float64 { return math.Max(1-x, 0) }
	for trial := 0; trial < 5000; trial++ {
		xmin := rng.Float64() * 1.5
		xmax := xmin + rng.Float64()*1.5
		qu, ok := TriangularQuadUpper(xmin, xmax)
		if !ok {
			continue
		}
		for i := 0; i <= 40; i++ {
			x := xmin + (xmax-xmin)*float64(i)/40
			if qu.Eval(x) < tri(x)-1e-10 {
				t.Fatalf("triangular quad upper below profile at x=%g on [%g,%g]", x, xmin, xmax)
			}
			// Lemma 5: tighter than the min-max bound max(1−xmin, 0).
			if qu.Eval(x) > tri(xmin)+1e-10 {
				t.Fatalf("triangular quad upper looser than min-max at x=%g on [%g,%g]", x, xmin, xmax)
			}
		}
	}
}

func TestTriangularQuadUpperDegenerate(t *testing.T) {
	if _, ok := TriangularQuadUpper(0.5, 0.5); ok {
		t.Error("degenerate interval should report ok=false")
	}
	if _, ok := TriangularQuadUpper(0, 0); ok {
		t.Error("zero interval should report ok=false")
	}
}

// TestTriangularQuadLowerValue validates Theorem 2 / Lemma 6 numerically:
// the closed-form value lower-bounds the true aggregate and, when all
// x_i ≤ 1, dominates the min-max lower bound.
func TestTriangularQuadLowerValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(50)
		inside := rng.Float64() < 0.7
		scale := 1.0
		if !inside {
			scale = 2.5
		}
		xs := make([]float64, n)
		var sumX2, exact, xmax float64
		for i := range xs {
			xs[i] = rng.Float64() * scale
			sumX2 += xs[i] * xs[i]
			exact += math.Max(1-xs[i], 0)
			if xs[i] > xmax {
				xmax = xs[i]
			}
		}
		w := 0.1 + rng.Float64()
		lb := TriangularQuadLowerValue(w, float64(n), sumX2)
		if lb > w*exact+1e-9 {
			t.Fatalf("closed-form lower bound %g exceeds exact %g (n=%d)", lb, w*exact, n)
		}
		if inside {
			minmax := w * float64(n) * math.Max(1-xmax, 0)
			if lb < minmax-1e-9 {
				t.Fatalf("Lemma 6 violated: quad lower %g < min-max %g with all x ≤ 1", lb, minmax)
			}
		}
	}
}

func TestCosineQuadUpperEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5000; trial++ {
		xmin := rng.Float64() * math.Pi / 2
		xmax := xmin + rng.Float64()*(math.Pi/2-xmin)
		qu, ok := CosineQuadUpper(xmin, xmax)
		if !ok {
			continue
		}
		for i := 0; i <= 40; i++ {
			x := xmin + (xmax-xmin)*float64(i)/40
			if qu.Eval(x) < math.Cos(x)-1e-10 {
				t.Fatalf("cosine quad upper below cos at x=%g on [%g,%g]", x, xmin, xmax)
			}
			// Tighter than the min-max bound cos(xmin) (Section 9.6.1).
			if qu.Eval(x) > math.Cos(xmin)+1e-10 {
				t.Fatalf("cosine quad upper looser than min-max at x=%g on [%g,%g]", x, xmin, xmax)
			}
		}
	}
}

func TestCosineQuadUpperRejectsBeyondSupport(t *testing.T) {
	if _, ok := CosineQuadUpper(0.1, math.Pi/2+0.1); ok {
		t.Error("interval beyond π/2 should report ok=false")
	}
}

func TestCosineQuadLowerEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		xmin := rng.Float64() * math.Pi / 2
		xmax := xmin + rng.Float64()*(math.Pi/2-xmin)
		ql, ok := CosineQuadLower(xmin, xmax)
		if !ok {
			continue
		}
		for i := 0; i <= 40; i++ {
			x := xmin + (xmax-xmin)*float64(i)/40
			if ql.Eval(x) > math.Cos(x)+1e-10 {
				t.Fatalf("cosine quad lower above cos at x=%g on [%g,%g]", x, xmin, xmax)
			}
			// Tighter than the min-max bound cos(xmax) (Section 9.6.2).
			if ql.Eval(x) < math.Cos(xmax)-1e-10 {
				t.Fatalf("cosine quad lower looser than min-max at x=%g on [%g,%g]", x, xmin, xmax)
			}
		}
	}
}

func TestExpDistQuadUpperEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 5000; trial++ {
		xmin := rng.Float64() * 4
		xmax := xmin + rng.Float64()*4
		qu, ok := ExpDistQuadUpper(xmin, xmax)
		if !ok {
			continue
		}
		for i := 0; i <= 40; i++ {
			x := xmin + (xmax-xmin)*float64(i)/40
			if qu.Eval(x) < math.Exp(-x)-1e-10 {
				t.Fatalf("exp-dist quad upper below exp at x=%g on [%g,%g]", x, xmin, xmax)
			}
			if qu.Eval(x) > math.Exp(-xmin)+1e-10 {
				t.Fatalf("exp-dist quad upper looser than min-max at x=%g on [%g,%g]", x, xmin, xmax)
			}
		}
	}
}

func TestExpDistQuadLowerEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 5000; trial++ {
		tpt := 1e-3 + rng.Float64()*5
		ql, ok := ExpDistQuadLower(tpt)
		if !ok {
			t.Fatalf("ExpDistQuadLower(%g) rejected", tpt)
		}
		// Valid for every x ≥ 0, not just an interval (concavity argument).
		for i := 0; i <= 60; i++ {
			x := rng.Float64() * 8
			if ql.Eval(x) > math.Exp(-x)+1e-10 {
				t.Fatalf("exp-dist quad lower above exp at x=%g (t=%g)", x, tpt)
			}
		}
		if math.Abs(ql.Eval(tpt)-math.Exp(-tpt)) > 1e-10 {
			t.Fatalf("exp-dist quad lower does not touch at t=%g", tpt)
		}
	}
}

func TestExpDistQuadLowerRejectsZeroT(t *testing.T) {
	if _, ok := ExpDistQuadLower(0); ok {
		t.Error("t=0 should report ok=false")
	}
}

func TestEpanechnikovQuadLowerValue(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(40)
		scale := 0.5 + rng.Float64()*2
		var sumX2, exact float64
		allInside := true
		for i := 0; i < n; i++ {
			x := rng.Float64() * scale
			sumX2 += x * x
			exact += math.Max(1-x*x, 0)
			if x > 1 {
				allInside = false
			}
		}
		w := 0.1 + rng.Float64()
		lb := EpanechnikovQuadLowerValue(w, float64(n), sumX2)
		if lb > w*exact+1e-9 {
			t.Fatalf("Epanechnikov lower bound %g exceeds exact %g", lb, w*exact)
		}
		if allInside && math.Abs(lb-w*exact) > 1e-9 {
			t.Fatalf("Epanechnikov bound should be exact inside support: %g vs %g", lb, w*exact)
		}
	}
}

func TestQuarticQuadUpperValue(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(40)
		scale := 0.5 + rng.Float64()*2
		var sumX2, sumX4, exact float64
		allInside := true
		for i := 0; i < n; i++ {
			x := rng.Float64() * scale
			sumX2 += x * x
			sumX4 += x * x * x * x
			u := math.Max(1-x*x, 0)
			exact += u * u
			if x > 1 {
				allInside = false
			}
		}
		w := 0.1 + rng.Float64()
		ub := QuarticQuadUpperValue(w, float64(n), sumX2, sumX4)
		if ub < w*exact-1e-9 {
			t.Fatalf("quartic upper bound %g below exact %g", ub, w*exact)
		}
		if allInside && math.Abs(ub-w*exact) > 1e-9 {
			t.Fatalf("quartic bound should be exact inside support: %g vs %g", ub, w*exact)
		}
	}
}

func TestDistBoundsQuick(t *testing.T) {
	// Triangular upper envelope property under testing/quick.
	f := func(a, b, frac float64) bool {
		xmin := math.Abs(math.Mod(a, 2))
		xmax := xmin + math.Abs(math.Mod(b, 2))
		qu, ok := TriangularQuadUpper(xmin, xmax)
		if !ok {
			return true
		}
		x := xmin + math.Abs(math.Mod(frac, 1))*(xmax-xmin)
		return qu.Eval(x) >= math.Max(1-x, 0)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}
