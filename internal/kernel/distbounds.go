package kernel

import "math"

// This file implements the restricted quadratic envelopes Q(x) = a·x² + c
// for the distance-based kernels (paper Section 5 and appendix 9.6):
// triangular, cosine and exponential, plus the partially exact envelopes of
// the Epanechnikov and quartic extension kernels. Here x = γ·dist, so the
// aggregated bound Σ w·(a·(γ·dist)² + c) = w·a·γ²·Σdist² + w·c·|P| needs
// only the O(d)-computable Σdist² (Lemma 4).
//
// Each envelope constructor returns (a, c) plus ok=false when the restricted
// form cannot be applied on the given interval (the caller then falls back
// to the min-max bounds of Equations 5–6).

// AxC is a restricted quadratic a·x² + c (the b coefficient is fixed at 0).
type AxC struct{ A, C float64 }

// Eval evaluates the restricted quadratic at x.
func (q AxC) Eval(x float64) float64 { return q.A*x*x + q.C }

// TriangularQuadUpper returns the quadratic upper bound of max(1−x, 0) on
// [xmin, xmax] (paper Section 5.2.1): the concave parabola a_u·x² + c_u
// through (xmin, max(1−xmin,0)) and (xmax, max(1−xmax,0)). Being concave and
// agreeing with the profile's chord at the endpoints it dominates the
// profile on the interval, and it is tighter than the min-max upper bound
// max(1−xmin, 0) (Lemma 5).
func TriangularQuadUpper(xmin, xmax float64) (AxC, bool) {
	den := xmax*xmax - xmin*xmin
	if den < degenerateX {
		return AxC{}, false
	}
	fMin := math.Max(1-xmin, 0)
	fMax := math.Max(1-xmax, 0)
	au := (fMax - fMin) / den
	cu := (xmax*xmax*fMin - xmin*xmin*fMax) / den
	return AxC{A: au, C: cu}, true
}

// TriangularQuadLowerValue returns the paper's closed-form optimal quadratic
// lower bound VALUE for the triangular kernel aggregate (Theorem 2 +
// Lemma 6): substituting a_l* = −sqrt(|P| / (4·Σx²)) and c_l = 1 + 1/(4a_l)
// into F_Q gives
//
//	F_Q(q, QL) = w·|P| − w·sqrt(|P|·Σ x_i²)
//
// where Σx² = γ²·Σdist². The envelope a_l·x²+c_l is tangent to the line 1−x
// from below, hence ≤ 1−x ≤ max(1−x,0) for every x ≥ 0, so the value is a
// correct lower bound regardless of whether all x_i ≤ 1; it is tighter than
// the min-max bound whenever all x_i ≤ 1 (Lemma 6) and the caller clamps it
// at max(min-max lower bound, 0) otherwise.
func TriangularQuadLowerValue(w, count, sumX2 float64) float64 {
	if count <= 0 {
		return 0
	}
	return w*count - w*math.Sqrt(count*sumX2)
}

// CosineQuadUpper returns the quadratic upper bound of cos(x) on
// [xmin, xmax] ⊆ [0, π/2] (paper Section 9.6.1, Lemma 9): the parabola
// a_u·x² + c_u through (xmin, cos xmin) and (xmax, cos xmax). ok is false
// when the interval is degenerate or extends beyond the support π/2, in
// which case min-max bounds apply.
func CosineQuadUpper(xmin, xmax float64) (AxC, bool) {
	if xmax > math.Pi/2 {
		return AxC{}, false
	}
	den := xmax*xmax - xmin*xmin
	if den < degenerateX {
		return AxC{}, false
	}
	cMin := math.Cos(xmin)
	cMax := math.Cos(xmax)
	au := (cMax - cMin) / den
	cu := (xmax*xmax*cMin - xmin*xmin*cMax) / den
	return AxC{A: au, C: cu}, true
}

// CosineQuadLower returns the quadratic lower bound of cos(x) on
// [xmin, xmax] ⊆ [0, π/2] (paper Section 9.6.2, Lemma 10): the parabola
// through (xmax, cos xmax) with matching slope there,
//
//	a_l = −sin(xmax) / (2·xmax),  c_l = cos(xmax) + xmax·sin(xmax)/2.
func CosineQuadLower(xmin, xmax float64) (AxC, bool) {
	if xmax > math.Pi/2 || xmax < degenerateX {
		return AxC{}, false
	}
	s := math.Sin(xmax)
	al := -s / (2 * xmax)
	cl := math.Cos(xmax) + xmax*s/2
	return AxC{A: al, C: cl}, true
}

// ExpDistQuadUpper returns the quadratic upper bound of exp(−x) on
// [xmin, xmax] for the exponential kernel (paper Section 9.6.3, Lemma 11):
// the concave parabola a_u·x² + c_u through (xmin, e^{−xmin}) and
// (xmax, e^{−xmax}), which dominates the chord and hence the convex profile.
func ExpDistQuadUpper(xmin, xmax float64) (AxC, bool) {
	den := xmax*xmax - xmin*xmin
	if den < degenerateX {
		return AxC{}, false
	}
	eMin := math.Exp(-xmin)
	eMax := math.Exp(-xmax)
	au := (eMax - eMin) / den
	cu := (xmax*xmax*eMin - xmin*xmin*eMax) / den
	return AxC{A: au, C: cu}, true
}

// ExpDistQuadLower returns the quadratic lower bound of exp(−x) for the
// exponential kernel (paper Section 9.6.4, Lemma 12): the concave parabola
// tangent to exp(−x) at t > 0,
//
//	a_l = −e^{−t}/(2t),  c_l = (t+2)·e^{−t}/2.
//
// Being concave it lies below its tangent line at t, which by convexity of
// exp(−x) lies below the profile — so the envelope is valid for every x ≥ 0.
// The paper's recommended tangent point is t* = sqrt(γ²·Σdist²/|P|)
// (Equation 18), clamped here to stay strictly positive.
func ExpDistQuadLower(t float64) (AxC, bool) {
	if t < degenerateX {
		return AxC{}, false
	}
	et := math.Exp(-t)
	return AxC{A: -et / (2 * t), C: (t + 2) * et / 2}, true
}

// EpanechnikovQuadLowerValue returns a lower-bound VALUE for the
// Epanechnikov aggregate. The profile max(1−x², 0) dominates the plain
// quadratic 1−x² everywhere, so Σ w·(1 − x_i²) = w·|P| − w·Σx² is always a
// valid lower bound, and it is exact when all x_i ≤ 1.
func EpanechnikovQuadLowerValue(w, count, sumX2 float64) float64 {
	return w*count - w*sumX2
}

// QuarticQuadUpperValue returns an upper-bound VALUE for the quartic
// (biweight) aggregate. With y = x², the profile is (1−y)² for y ≤ 1 and 0
// beyond; (1−y)² ≥ max(1−y,0)² for every y ≥ 0, so
//
//	Σ w·(1 − 2·x_i² + x_i⁴) = w·(|P| − 2·Σx² + Σx⁴)
//
// is always a valid upper bound and is exact when all x_i ≤ 1. It needs
// Σx⁴ = γ⁴·Σdist⁴, the same O(d²) statistic the Gaussian bounds use.
func QuarticQuadUpperValue(w, count, sumX2, sumX4 float64) float64 {
	return w * (count - 2*sumX2 + sumX4)
}
