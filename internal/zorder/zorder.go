// Package zorder implements the Z-order sampling baseline of Zheng et
// al. [54, 55]: points are sorted along a Morton (Z-order) space-filling
// curve and a systematic sample is drawn along the curve, preserving spatial
// stratification. Exact KDV on the reweighted sample approximates KDV on the
// full dataset with a probabilistic error guarantee (ε with probability
// 1−δ), in contrast to the deterministic guarantee of the bound-based
// methods.
package zorder

import (
	"fmt"
	"math"
	"sort"

	"github.com/quadkdv/quad/internal/geom"
)

// gridBits is the per-axis quantization used for Morton codes. 16 bits per
// axis gives a 65536² grid, far below float64 noise for the datasets here,
// and the interleaved code fits a uint32 pair into a uint64.
const gridBits = 16

// Code returns the Morton code of a 2-d point scaled into window.
func Code(p []float64, window geom.Rect) uint64 {
	x := quantize(p[0], window.Min[0], window.Max[0])
	y := quantize(p[1], window.Min[1], window.Max[1])
	return interleave(x) | interleave(y)<<1
}

func quantize(v, lo, hi float64) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	q := uint64(f * float64(int64(1)<<gridBits))
	if q >= 1<<gridBits {
		q = 1<<gridBits - 1
	}
	return uint32(q)
}

// interleave spreads the low 16 bits of x so there is a zero bit between
// every pair of consecutive bits (the classic Morton dilation).
func interleave(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// SampleSize returns the sample size m needed for the (ε, δ) probabilistic
// guarantee of [54]: m = O((1/ε²)·log(1/δ)). The constant follows the
// Hoeffding-style analysis used there.
func SampleSize(eps, delta float64, n int) int {
	if eps <= 0 {
		return n
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.2 // the paper quotes ε with probability 0.8
	}
	m := int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
	if m > n {
		m = n
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Sampler holds a Z-order sorted copy of a dataset and draws systematic
// samples from it.
type Sampler struct {
	sorted geom.Points
	window geom.Rect
}

// NewSampler Z-order sorts a copy of the 2-d dataset.
func NewSampler(pts geom.Points) (*Sampler, error) {
	if pts.Dim != 2 {
		return nil, fmt.Errorf("zorder: Z-order sampling is defined for 2-d datasets, got %d-d", pts.Dim)
	}
	if pts.Len() == 0 {
		return nil, fmt.Errorf("zorder: empty dataset")
	}
	window := geom.BoundingRect(pts)
	n := pts.Len()
	type coded struct {
		code uint64
		idx  int
	}
	codes := make([]coded, n)
	for i := 0; i < n; i++ {
		codes[i] = coded{code: Code(pts.At(i), window), idx: i}
	}
	sort.Slice(codes, func(a, b int) bool { return codes[a].code < codes[b].code })
	sorted := geom.Points{Coords: make([]float64, 0, n*2), Dim: 2}
	for _, c := range codes {
		sorted.Coords = append(sorted.Coords, pts.At(c.idx)...)
	}
	return &Sampler{sorted: sorted, window: window}, nil
}

// Sample draws a systematic sample of size m along the Z-order curve
// (every ⌈n/m⌉-th point), returning the sample and the per-point weight
// multiplier n/m' that keeps Σw·K unbiased (the "weight update" of [54]).
func (s *Sampler) Sample(m int) (geom.Points, float64) {
	n := s.sorted.Len()
	if m >= n {
		return s.sorted, 1
	}
	if m < 1 {
		m = 1
	}
	stride := float64(n) / float64(m)
	out := geom.Points{Coords: make([]float64, 0, m*2), Dim: 2}
	for i := 0; i < m; i++ {
		idx := int(float64(i) * stride)
		if idx >= n {
			idx = n - 1
		}
		out.Coords = append(out.Coords, s.sorted.At(idx)...)
	}
	actual := out.Len()
	return out, float64(n) / float64(actual)
}

// Len returns the size of the underlying dataset.
func (s *Sampler) Len() int { return s.sorted.Len() }
