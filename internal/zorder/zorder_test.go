package zorder

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
)

func TestInterleaveBits(t *testing.T) {
	if got := interleave(0b11); got != 0b101 {
		t.Errorf("interleave(0b11) = %b", got)
	}
	if got := interleave(0); got != 0 {
		t.Errorf("interleave(0) = %d", got)
	}
	// Interleaved bits occupy only even positions.
	if got := interleave(0xFFFF); got&0xAAAAAAAAAAAAAAAA != 0 {
		t.Errorf("interleave produced odd-position bits: %b", got)
	}
}

func TestCodeOrderingPreservesLocality(t *testing.T) {
	w := geom.Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}
	// Same cell → same code; distant cells → different codes.
	a := Code([]float64{0.1, 0.1}, w)
	b := Code([]float64{0.100001, 0.100001}, w)
	c := Code([]float64{0.9, 0.9}, w)
	if a != b {
		t.Error("near-identical points got different codes")
	}
	if a == c {
		t.Error("distant points got identical codes")
	}
}

func TestQuantizeClamps(t *testing.T) {
	if quantize(-5, 0, 1) != 0 {
		t.Error("below-range value not clamped to 0")
	}
	if got := quantize(5, 0, 1); got != 1<<gridBits-1 {
		t.Errorf("above-range value = %d", got)
	}
	if quantize(0.5, 1, 1) != 0 {
		t.Error("degenerate range should map to 0")
	}
}

func TestSampleSize(t *testing.T) {
	m1 := SampleSize(0.01, 0.2, 1000000)
	m2 := SampleSize(0.05, 0.2, 1000000)
	if m1 <= m2 {
		t.Errorf("smaller ε must need a bigger sample: %d vs %d", m1, m2)
	}
	if got := SampleSize(0.01, 0.2, 100); got != 100 {
		t.Errorf("sample capped at n: got %d", got)
	}
	if got := SampleSize(0, 0.2, 50); got != 50 {
		t.Errorf("ε=0 should return n: got %d", got)
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(geom.NewPoints([]float64{1, 2, 3}, 3)); err == nil {
		t.Error("3-d dataset accepted")
	}
	if _, err := NewSampler(geom.Points{Dim: 2}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestSampleSystematic(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	coords := make([]float64, 0, 2000)
	for i := 0; i < 1000; i++ {
		coords = append(coords, rng.Float64()*10, rng.Float64()*10)
	}
	s, err := NewSampler(geom.NewPoints(coords, 2))
	if err != nil {
		t.Fatal(err)
	}
	sample, mult := s.Sample(100)
	if sample.Len() != 100 {
		t.Errorf("sample size %d, want 100", sample.Len())
	}
	if math.Abs(mult-10) > 1e-9 {
		t.Errorf("weight multiplier %g, want 10", mult)
	}
	full, mult := s.Sample(5000)
	if full.Len() != 1000 || mult != 1 {
		t.Errorf("oversized request: len=%d mult=%g", full.Len(), mult)
	}
}

// TestSampleKDEApproximation: the reweighted sample KDE should approximate
// the full KDE within a loose tolerance at well-populated queries.
func TestSampleKDEApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 20000
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		coords = append(coords, rng.NormFloat64(), rng.NormFloat64())
	}
	pts := geom.NewPoints(coords, 2)
	s, err := NewSampler(pts)
	if err != nil {
		t.Fatal(err)
	}
	sample, mult := s.Sample(4000)
	w := 1 / float64(n)
	q := []float64{0, 0}
	var exact float64
	for i := 0; i < pts.Len(); i++ {
		exact += kernel.Gaussian.Eval(1, geom.Dist2(q, pts.At(i)))
	}
	exact *= w
	var approx float64
	for i := 0; i < sample.Len(); i++ {
		approx += kernel.Gaussian.Eval(1, geom.Dist2(q, sample.At(i)))
	}
	approx *= w * mult
	if rel := math.Abs(approx-exact) / exact; rel > 0.1 {
		t.Errorf("sample KDE off by %g (approx %g, exact %g)", rel, approx, exact)
	}
}

// TestSampleSpatialStratification: a Z-order systematic sample should cover
// all four quadrants of a uniform dataset.
func TestSampleSpatialStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	coords := make([]float64, 0, 8000)
	for i := 0; i < 4000; i++ {
		coords = append(coords, rng.Float64(), rng.Float64())
	}
	s, err := NewSampler(geom.NewPoints(coords, 2))
	if err != nil {
		t.Fatal(err)
	}
	sample, _ := s.Sample(64)
	var quadCount [4]int
	for i := 0; i < sample.Len(); i++ {
		p := sample.At(i)
		idx := 0
		if p[0] > 0.5 {
			idx |= 1
		}
		if p[1] > 0.5 {
			idx |= 2
		}
		quadCount[idx]++
	}
	for qd, c := range quadCount {
		if c == 0 {
			t.Errorf("quadrant %d received no samples — stratification broken", qd)
		}
	}
}
