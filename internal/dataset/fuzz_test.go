package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary text must never panic the parser, and everything
// it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("x,y\n1,2\n")
	f.Add("# comment\n\n1.5e-3,-2\n")
	f.Add("1\n2\n3\n")
	f.Add(",,,\n")
	f.Add("nan,inf\n")
	f.Fuzz(func(t *testing.T, input string) {
		pts, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if pts.Len() == 0 || pts.Dim == 0 {
			t.Fatalf("accepted input produced empty points: %q", input)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, pts); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v (from %q)", err, input)
		}
		if back.Len() != pts.Len() || back.Dim != pts.Dim {
			t.Fatalf("round trip shape changed: %dx%d → %dx%d", pts.Len(), pts.Dim, back.Len(), back.Dim)
		}
	})
}
