// Package dataset generates the seeded synthetic analogues of the paper's
// four evaluation datasets (Table 5). The real files (UCI El Niño, Atlanta
// crime open data, UCI home sensor, UCI HEPMASS) are not available offline;
// each generator reproduces the statistical character that drives the
// experiments — the dataset's cardinality, dimensionality and, crucially,
// the skew of density across the visualized window, which is what creates
// (or denies) pruning opportunity for the bound-based methods. All
// generators are deterministic for a given (name, n, seed).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/quadkdv/quad/internal/geom"
)

// PaperSizes records the cardinalities of Table 5.
var PaperSizes = map[string]int{
	"elnino": 178080,
	"crime":  270688,
	"home":   919438,
	"hep":    7000000,
}

// Names lists the four dataset analogues in Table 5 order.
func Names() []string { return []string{"elnino", "crime", "home", "hep"} }

// Generate produces the named dataset analogue with n points. n ≤ 0 selects
// the paper's cardinality. hep is generated with its full 10 dimensions;
// use First2D to obtain the 2-attribute projection used for visualization.
func Generate(name string, n int, seed int64) (geom.Points, error) {
	if n <= 0 {
		n = PaperSizes[name]
	}
	switch name {
	case "elnino":
		return ElNino(n, seed), nil
	case "crime":
		return Crime(n, seed), nil
	case "home":
		return Home(n, seed), nil
	case "hep":
		return Hep(n, 10, seed), nil
	default:
		return geom.Points{}, fmt.Errorf("dataset: unknown dataset %q (want one of %v)", name, Names())
	}
}

// ElNino models the El Niño buoy readings (sea surface temperature at depth
// 0 vs depth 500): a smooth, banded, strongly correlated field — broad
// moderate-density regions with a gentle gradient rather than sharp
// hotspots. Two latent seasonal regimes bend the band.
func ElNino(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		// Latent position along the thermocline band; buoys cluster at a
		// few deployment sites, so the band has knots of much higher
		// density (the skew that makes bound pruning pay off, as in the
		// real readings).
		var t float64
		if rng.Float64() < 0.5 {
			site := float64(rng.Intn(8)) / 8
			t = site + rng.NormFloat64()*0.015
			if t < 0 {
				t = -t
			}
			if t > 1 {
				t = 2 - t
			}
		} else {
			t = rng.Float64()
		}
		regime := 0.0
		if rng.Float64() < 0.3 { // El Niño years: warmer deep water
			regime = 3.5
		}
		surface := 20 + 9*t + 1.2*math.Sin(6*t) + rng.NormFloat64()*0.35
		deep := 8 + 4.5*t*t + regime + 0.8*math.Sin(4*t+1) + rng.NormFloat64()*0.3
		coords = append(coords, surface, deep)
	}
	return geom.NewPoints(coords, 2)
}

// Crime models urban crime incidents (latitude/longitude): a heavy-tailed
// mixture of ~60 compact hotspots of widely varying intensity over a sparse
// street-grid background — the sharpest density skew of the four datasets,
// which is where bound-based pruning shines (Figure 1's red-spot structure).
func Crime(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	const hotspots = 60
	type spot struct {
		x, y, sx, sy, w float64
	}
	spots := make([]spot, hotspots)
	var totalW float64
	for i := range spots {
		// Zipf-like intensity: a few dominant hotspots, a long tail.
		w := 1 / math.Pow(float64(i+1), 0.9)
		spots[i] = spot{
			x:  rng.Float64() * 100,
			y:  rng.Float64() * 100,
			sx: 0.3 + rng.Float64()*1.2,
			sy: 0.3 + rng.Float64()*1.2,
			w:  w,
		}
		totalW += w
	}
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.15 {
			// Background incidents along a street grid: snap one axis to a
			// grid line.
			gx := math.Floor(rng.Float64()*20) * 5
			gy := rng.Float64() * 100
			if rng.Intn(2) == 0 {
				gx, gy = gy, gx
			}
			coords = append(coords, gx+rng.NormFloat64()*0.2, gy+rng.NormFloat64()*0.2)
			continue
		}
		r := rng.Float64() * totalW
		var s spot
		for _, cand := range spots {
			if r -= cand.w; r <= 0 {
				s = cand
				break
			}
			s = cand
		}
		coords = append(coords, s.x+rng.NormFloat64()*s.sx, s.y+rng.NormFloat64()*s.sy)
	}
	return geom.NewPoints(coords, 2)
}

// Home models the home-sensor dataset (temperature/humidity): two large
// anisotropic, correlated operating-mode clusters (heating vs cooling
// season) with mild measurement noise — big dense blobs rather than point
// hotspots.
func Home(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	// Thermostat set-points: the sensor sits at a handful of regulated
	// states most of the time, producing the sharp density spikes of real
	// home telemetry.
	type setpoint struct{ t, h float64 }
	points := []setpoint{{26, 55}, {24.5, 52}, {19, 38}, {21, 42}, {17.5, 35}}
	for i := 0; i < n; i++ {
		var temp, hum float64
		switch {
		case rng.Float64() < 0.55:
			sp := points[rng.Intn(len(points))]
			temp = sp.t + rng.NormFloat64()*0.25
			hum = sp.h + rng.NormFloat64()*0.8
		case rng.Float64() < 0.6:
			// Cooling-season drift: warm and humid, negatively correlated.
			z1, z2 := rng.NormFloat64(), rng.NormFloat64()
			temp = 26 + 1.4*z1
			hum = 55 - 4*z1 + 3*z2
		default:
			z1, z2 := rng.NormFloat64(), rng.NormFloat64()
			temp = 19 + 1.1*z1
			hum = 38 + 3*z1 + 2.5*z2
		}
		coords = append(coords, temp, hum)
	}
	return geom.NewPoints(coords, 2)
}

// Hep models HEPMASS (high-energy physics event features): a d-dimensional
// mixture of eight Gaussian components (signal/background-like populations)
// with component-specific covariance scales. The paper visualizes its first
// two dimensions and uses PCA projections of the full vectors for the
// dimensionality sweep (Figure 24).
func Hep(n, dim int, seed int64) geom.Points {
	if dim < 2 {
		dim = 2
	}
	rng := rand.New(rand.NewSource(seed))
	const comps = 12
	centers := make([][]float64, comps)
	scales := make([]float64, comps)
	weights := make([]float64, comps)
	var totalW float64
	for c := 0; c < comps; c++ {
		centers[c] = make([]float64, dim)
		for j := 0; j < dim; j++ {
			centers[c][j] = rng.NormFloat64() * 4.5
		}
		// Resonance-like components: a few narrow, dominant peaks over
		// broad background populations, matching the skew of real event
		// feature distributions.
		if c < 4 {
			scales[c] = 0.15 + rng.Float64()*0.25
			weights[c] = 3
		} else {
			scales[c] = 0.8 + rng.Float64()*1.2
			weights[c] = 1
		}
		totalW += weights[c]
	}
	coords := make([]float64, 0, n*dim)
	for i := 0; i < n; i++ {
		r := rng.Float64() * totalW
		c := 0
		for ; c < comps-1; c++ {
			if r -= weights[c]; r <= 0 {
				break
			}
		}
		for j := 0; j < dim; j++ {
			coords = append(coords, centers[c][j]+rng.NormFloat64()*scales[c])
		}
	}
	return geom.NewPoints(coords, dim)
}

// First2D projects a dataset onto its first two attributes — the
// "selected attributes" column of Table 5.
func First2D(pts geom.Points) geom.Points {
	if pts.Dim == 2 {
		return pts
	}
	n := pts.Len()
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		coords = append(coords, p[0], p[1])
	}
	return geom.NewPoints(coords, 2)
}

// Subsample returns a deterministic systematic subsample of m points,
// mirroring the paper's Figure 17 size sweep ("vary the size of the
// datasets via sampling").
func Subsample(pts geom.Points, m int, seed int64) geom.Points {
	n := pts.Len()
	if m >= n {
		return pts
	}
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Fisher–Yates over indices would need O(n) memory we already have;
	// instead draw a sorted systematic sample with random phase.
	stride := float64(n) / float64(m)
	phase := rng.Float64() * stride
	out := geom.Points{Coords: make([]float64, 0, m*pts.Dim), Dim: pts.Dim}
	for i := 0; i < m; i++ {
		idx := int(phase + float64(i)*stride)
		if idx >= n {
			idx = n - 1
		}
		out.Coords = append(out.Coords, pts.At(idx)...)
	}
	return out
}
