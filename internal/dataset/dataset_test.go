package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
)

func TestGenerateKnownNames(t *testing.T) {
	for _, name := range Names() {
		pts, err := Generate(name, 1000, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pts.Len() != 1000 {
			t.Errorf("%s: len = %d", name, pts.Len())
		}
		wantDim := 2
		if name == "hep" {
			wantDim = 10
		}
		if pts.Dim != wantDim {
			t.Errorf("%s: dim = %d, want %d", name, pts.Dim, wantDim)
		}
		for _, v := range pts.Coords[:20] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite coordinate", name)
			}
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestGenerateDefaultSizes(t *testing.T) {
	pts, err := Generate("elnino", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts.Len() != PaperSizes["elnino"] {
		t.Errorf("default size = %d, want %d", pts.Len(), PaperSizes["elnino"])
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate("crime", 5000, 7)
	b, _ := Generate("crime", 5000, 7)
	c, _ := Generate("crime", 5000, 8)
	if !equalCoords(a.Coords, b.Coords) {
		t.Error("same seed produced different data")
	}
	if equalCoords(a.Coords, c.Coords) {
		t.Error("different seeds produced identical data")
	}
}

func equalCoords(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrimeDensitySkew: the crime analogue must be strongly skewed (hotspot
// structure), measured as a high ratio between dense-cell and median-cell
// occupancy on a coarse histogram.
func TestCrimeDensitySkew(t *testing.T) {
	pts := Crime(50000, 3)
	const cells = 20
	var hist [cells * cells]int
	r := geom.BoundingRect(pts)
	for i := 0; i < pts.Len(); i++ {
		p := pts.At(i)
		cx := int((p[0] - r.Min[0]) / (r.Max[0] - r.Min[0]) * (cells - 1e-9))
		cy := int((p[1] - r.Min[1]) / (r.Max[1] - r.Min[1]) * (cells - 1e-9))
		if cx < 0 {
			cx = 0
		}
		if cx >= cells {
			cx = cells - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= cells {
			cy = cells - 1
		}
		hist[cy*cells+cx]++
	}
	max := 0
	for _, c := range hist {
		if c > max {
			max = c
		}
	}
	mean := pts.Len() / (cells * cells)
	if max < 10*mean {
		t.Errorf("crime analogue insufficiently skewed: max cell %d vs mean %d", max, mean)
	}
}

// TestHomeTwoModes: the home analogue must show two separated temperature
// modes.
func TestHomeTwoModes(t *testing.T) {
	pts := Home(20000, 5)
	var lo, hi int
	for i := 0; i < pts.Len(); i++ {
		temp := pts.At(i)[0]
		if temp < 22.5 {
			lo++
		} else {
			hi++
		}
	}
	if lo < pts.Len()/10 || hi < pts.Len()/10 {
		t.Errorf("home analogue modes unbalanced: %d vs %d", lo, hi)
	}
}

func TestHepDimensions(t *testing.T) {
	pts := Hep(1000, 6, 1)
	if pts.Dim != 6 {
		t.Errorf("dim = %d", pts.Dim)
	}
	pts = Hep(1000, 1, 1) // clamped up to 2
	if pts.Dim != 2 {
		t.Errorf("clamped dim = %d", pts.Dim)
	}
}

func TestFirst2D(t *testing.T) {
	pts := Hep(100, 5, 1)
	p2 := First2D(pts)
	if p2.Dim != 2 || p2.Len() != 100 {
		t.Fatalf("First2D: dim=%d len=%d", p2.Dim, p2.Len())
	}
	for i := 0; i < 100; i++ {
		if p2.At(i)[0] != pts.At(i)[0] || p2.At(i)[1] != pts.At(i)[1] {
			t.Fatalf("First2D mismatch at %d", i)
		}
	}
	same := First2D(p2)
	if &same.Coords[0] != &p2.Coords[0] {
		t.Error("First2D of 2-d data should be a no-op")
	}
}

func TestSubsample(t *testing.T) {
	pts := ElNino(10000, 1)
	sub := Subsample(pts, 1000, 2)
	if sub.Len() != 1000 {
		t.Errorf("subsample len = %d", sub.Len())
	}
	all := Subsample(pts, 20000, 2)
	if all.Len() != 10000 {
		t.Errorf("oversized subsample len = %d", all.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Crime(500, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != pts.Len() || got.Dim != pts.Dim {
		t.Fatalf("round trip: len=%d dim=%d", got.Len(), got.Dim)
	}
	for i := 0; i < got.Len(); i++ {
		a, b := got.At(i), pts.At(i)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, a, b)
		}
	}
}

func TestReadCSVHeaderAndComments(t *testing.T) {
	in := "x,y\n# comment\n1,2\n\n3,4\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("len = %d, want 2", got.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\nx,y\n")); err == nil {
		t.Error("mid-file non-numeric row accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	pts := Home(200, 4)
	if err := SaveFile(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 200 {
		t.Errorf("loaded %d points", got.Len())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}
