package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/quadkdv/quad/internal/geom"
)

// WriteCSV writes the points as comma-separated rows (no header), one point
// per line, to w.
func WriteCSV(w io.Writer, pts geom.Points) error {
	bw := bufio.NewWriter(w)
	n := pts.Len()
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for j, v := range p {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses comma-separated numeric rows into a point buffer. All rows
// must have the same number of columns; blank lines and lines starting with
// '#' are skipped, and a non-numeric first row is treated as a header.
func ReadCSV(r io.Reader) (geom.Points, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var coords []float64
	dim := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		row := make([]float64, 0, len(fields))
		bad := false
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				bad = true
				break
			}
			row = append(row, v)
		}
		if bad {
			if dim == 0 {
				continue // header row
			}
			return geom.Points{}, fmt.Errorf("dataset: non-numeric value on line %d", line)
		}
		if dim == 0 {
			dim = len(row)
		} else if len(row) != dim {
			return geom.Points{}, fmt.Errorf("dataset: line %d has %d columns, want %d", line, len(row), dim)
		}
		coords = append(coords, row...)
	}
	if err := sc.Err(); err != nil {
		return geom.Points{}, err
	}
	if dim == 0 {
		return geom.Points{}, fmt.Errorf("dataset: no data rows")
	}
	return geom.NewPoints(coords, dim), nil
}

// SaveFile writes the points to a CSV file at path.
func SaveFile(path string, pts geom.Points) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, pts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a CSV point file from path.
func LoadFile(path string) (geom.Points, error) {
	f, err := os.Open(path)
	if err != nil {
		return geom.Points{}, err
	}
	defer f.Close()
	return ReadCSV(f)
}
