package dataset

import (
	"math"
	"testing"
)

// goldenFirst8 pins the first 8 points of every analogue at (n=64, seed=42).
// The generators are the reproducibility root of the whole evaluation
// pipeline — benchmarks, conformance runs, and CI all assume that a (name,
// n, seed) triple names one immutable dataset. Any change to a generator's
// draw sequence (even an innocuous-looking refactor of its rng usage) breaks
// that contract and silently invalidates recorded results, so it must show
// up here as a test failure.
var goldenFirst8 = map[string][][]float64{
	"elnino": {
		{24.320744333339494, 12.967518017874662},
		{24.057511065289006, 8.7238018231432743},
		{27.536550502599244, 10.58812605522586},
		{27.917116947714909, 11.449352954007598},
		{24.185209579752435, 12.737335049216872},
		{26.830215215550652, 10.74699352916522},
		{23.556112760305581, 8.6918714549724179},
		{25.692926914464742, 12.795514722857266},
	},
	"crime": {
		{39.541853764465898, 64.338790087287364},
		{98.027053560134704, 29.939100976043989},
		{85.415150415993352, 68.950142266612474},
		{37.63728636715615, 64.870668506185794},
		{47.151026203652201, 87.656588714270185},
		{36.242421435715386, 12.667103695554411},
		{37.466025941958748, 6.4387669178935063},
		{18.824117827859681, 6.8103472034780328},
	},
	"home": {
		{18.876406296807378, 38.995212012060961},
		{25.843559603737489, 55.503687982589383},
		{20.670401871322341, 42.699551932691399},
		{20.837741636465722, 43.430877640749571},
		{18.74489840514542, 37.144698577528175},
		{17.593639931002794, 35.508183953555779},
		{25.718834042073802, 57.152377389323519},
		{17.692208069435246, 34.541011986435088},
	},
	"hep": {
		{7.3705300460020657, 0.45295022456460454, -2.0254678281737593, 5.7865744108564376, 0.91511173075797181, 5.2178766436853516, -2.6105330330925534, 2.2682217775797051, 6.5869203142835486, -4.6827314332330197},
		{1.696072793350291, 2.7674274611155876, -3.9840401142633834, 0.65240882406263079, -1.1217438027099316, 2.1029977942720941, 5.5882273510057079, 3.843695173137164, 3.7694528076631295, -1.9835213012135733},
		{1.2570396707088918, 3.0838147547553225, -2.9597928758229761, 0.56486206843489883, -0.86303631782855628, 1.3710364180283783, 6.0068302067745156, 3.1685875146482099, 2.7096591731280322, -2.2775553875957892},
		{0.34985065736243681, 4.9916879420508309, -1.1518885157681154, -2.8631605799414412, -1.4493481166693059, 6.5077957581600838, -4.764873660168826, 9.0581411871790039, -3.4772448040371491, -0.27084534519573222},
		{-0.074535092012660731, 1.1535092373336084, -0.14527185885789257, -1.1952025864374975, -1.2146091800081611, 2.1936730162866356, -4.7395859011792103, -2.1098211927048469, -4.0801884262038683, 3.6511997870513233},
		{7.077624800000347, 0.67998716185228303, -2.0675932465683124, 5.7840948626236415, 0.81344175022322462, 5.7669631822377507, -2.464443712493313, 3.0878224861047459, 7.0633316782491402, -4.2005584858442564},
		{3.8130452476453174, 5.5280420954951124, 1.5251561723964207, -3.3312286663258637, 8.1091998406990786, -2.0060980147741603, -6.3133304865186846, -1.2550951173935816, 0.090153664174695836, 1.9363950966142045},
		{0.031695716431946068, 1.3652873901700919, -0.33233236493080476, -1.4663670888145275, -0.8959542204810429, 2.0857981396263017, -4.594851824552185, -1.8478478996256296, -4.1489268559056613, 3.5430498835058759},
	},
}

// TestGeneratorsGolden locks every analogue's draw sequence to the recorded
// constants, bit for bit (%.17g round-trips float64 exactly).
func TestGeneratorsGolden(t *testing.T) {
	for _, name := range Names() {
		want, ok := goldenFirst8[name]
		if !ok {
			t.Fatalf("no golden points recorded for %q", name)
		}
		pts, err := Generate(name, 64, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i, wp := range want {
			got := pts.At(i)
			if len(got) != len(wp) {
				t.Fatalf("%s point %d: dimension %d, golden %d", name, i, len(got), len(wp))
			}
			for j := range wp {
				if math.Float64bits(got[j]) != math.Float64bits(wp[j]) {
					t.Errorf("%s point %d coord %d = %.17g, golden %.17g — generator draw sequence changed",
						name, i, j, got[j], wp[j])
				}
			}
		}
	}
}

// TestGeneratorsReproducible: the same (name, n, seed) must reproduce the
// identical coordinate buffer, and a different seed must not.
func TestGeneratorsReproducible(t *testing.T) {
	for _, name := range Names() {
		a, err := Generate(name, 200, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(name, 200, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Coords) != len(b.Coords) {
			t.Fatalf("%s: lengths differ across identical calls", name)
		}
		for i := range a.Coords {
			if math.Float64bits(a.Coords[i]) != math.Float64bits(b.Coords[i]) {
				t.Fatalf("%s coord %d differs across identical calls", name, i)
			}
		}
		c, err := Generate(name, 200, 8)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a.Coords {
			if a.Coords[i] != c.Coords[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 7 and 8 produced identical datasets", name)
		}
	}
}

// TestGeneratorsPrefix: growing n extends the dataset without perturbing
// earlier points — every generator does its (n-independent) setup first and
// then draws points one at a time, so Generate(name, m, s) is a prefix of
// Generate(name, n, s) for m < n. Benchmark sweeps over n rely on this to
// compare cardinalities on nested datasets.
func TestGeneratorsPrefix(t *testing.T) {
	for _, name := range Names() {
		small, err := Generate(name, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Generate(name, 64, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range small.Coords {
			if math.Float64bits(small.Coords[i]) != math.Float64bits(big.Coords[i]) {
				t.Fatalf("%s: coord %d of the n=8 dataset is not a prefix of n=64", name, i)
			}
		}
	}
}
