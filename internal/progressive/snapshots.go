package progressive

import (
	"context"
	"time"

	"github.com/quadkdv/quad/internal/grid"
)

// Snapshot is a partial visualization state delivered to a streaming
// consumer: the raster is spatially complete (coarse regions carry their
// representative value) and refines monotonically across snapshots.
type Snapshot struct {
	// Values aliases the live raster; consumers that retain it across
	// snapshots must copy it.
	Values []float64
	// Evaluated is the number of exactly evaluated pixels so far.
	Evaluated int
	// Level is the quad-tree refinement depth just completed (0 = the
	// single whole-raster evaluation).
	Level int
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Final marks the last snapshot of the run.
	Final bool
}

// RunStream executes the progressive evaluation like Run, additionally
// invoking emit at every completed quad-tree refinement level and once at
// the end. emit returning false stops the run (the "user terminates the
// process at any time" interaction of paper Section 6). budget and
// maxPixels behave as in Run.
func RunStream(o *Order, eval func(px, py int) float64, budget time.Duration, maxPixels int, emit func(Snapshot) bool) *Result {
	res, _ := RunStreamCtx(context.Background(), o, eval, budget, maxPixels, emit)
	return res
}

// RunStreamCtx is RunStream under a context: cancellation is polled every
// timeCheckStride evaluations and stops the run without emitting the final
// snapshot. As with RunCtx, the returned Result holds the partial raster
// even when the context error is non-nil.
func RunStreamCtx(ctx context.Context, o *Order, eval func(px, py int) float64, budget time.Duration, maxPixels int, emit func(Snapshot) bool) (*Result, error) {
	start := time.Now()
	vals := grid.NewValues(o.Res)
	exact := make([]bool, o.Res.W*o.Res.H)
	res := &Result{Values: vals}
	limit := o.Len()
	if maxPixels > 0 && maxPixels < limit {
		limit = maxPixels
	}
	level := 0
	stopped := false
	var ctxErr error
	for i := 0; i < limit; i++ {
		if i%timeCheckStride == 0 {
			if ctxErr = ctx.Err(); ctxErr != nil {
				stopped = true
				break
			}
			if budget > 0 && time.Since(start) > budget {
				break
			}
		}
		if o.Levels[i] > level {
			// A new, finer level begins: the previous level is complete.
			if emit != nil && !emit(Snapshot{
				Values:    vals.Data,
				Evaluated: res.Evaluated,
				Level:     level,
				Elapsed:   time.Since(start),
			}) {
				stopped = true
				break
			}
			level = o.Levels[i]
		}
		px, py := o.Px[i], o.Py[i]
		v := eval(px, py)
		exact[py*o.Res.W+px] = true
		res.Evaluated++
		x0, y0, x1, y1 := o.RegionAt(i)
		for y := y0; y < y1; y++ {
			row := y * o.Res.W
			for x := x0; x < x1; x++ {
				if !exact[row+x] || (x == px && y == py) {
					vals.Data[row+x] = v
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.Complete = res.Evaluated == o.Len()
	if emit != nil && !stopped {
		emit(Snapshot{
			Values:    vals.Data,
			Evaluated: res.Evaluated,
			Level:     level,
			Elapsed:   res.Elapsed,
			Final:     true,
		})
	}
	return res, ctxErr
}
