// Package progressive implements the paper's Section 6: a progressive
// visualization framework that evaluates pixels in quad-tree order
// (Figure 13) so that a coarse but spatially complete color map is available
// almost immediately and refines continuously. Each evaluated pixel's value
// fills its whole sub-region until finer evaluations overwrite it; the
// process can be stopped at any time (wall-clock budget or pixel budget),
// and when left to run it evaluates every pixel exactly once.
package progressive

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/quadkdv/quad/internal/grid"
)

// region is a rectangular pixel block [X0, X0+W) × [Y0, Y0+H) in the padded
// 2^r × 2^r raster.
type region struct {
	x0, y0, w, h int
	depth        int
}

// Order produces the quad-tree pixel evaluation order for a W×H raster: a
// breadth-first refinement of the (conceptually 2^r × 2^r padded) region,
// visiting the center pixel of each region before splitting it into four
// quadrants. Every on-screen pixel appears exactly once; the i-th prefix of
// the order is the paper's "partial result after i evaluations". For each
// order entry the region it represents is also returned, so callers can fill
// the region with the evaluated value.
type Order struct {
	Res grid.Resolution
	// Px, Py, Regions and Levels are parallel: evaluation i is pixel
	// (Px[i], Py[i]) whose value stands in for Region[i] until refined;
	// Levels[i] is the quad-tree depth of that region (0 = whole raster).
	Px, Py  []int
	Regions []region
	Levels  []int
}

// RegionAt exposes the pixel block covered by order entry i, clipped to the
// raster.
func (o *Order) RegionAt(i int) (x0, y0, x1, y1 int) {
	r := o.Regions[i]
	x0, y0 = r.x0, r.y0
	x1, y1 = r.x0+r.w, r.y0+r.h
	if x1 > o.Res.W {
		x1 = o.Res.W
	}
	if y1 > o.Res.H {
		y1 = o.Res.H
	}
	return
}

// Len returns the number of evaluations (== number of on-screen pixels).
func (o *Order) Len() int { return len(o.Px) }

// BuildOrder computes the quad-tree order for a resolution.
func BuildOrder(res grid.Resolution) (*Order, error) {
	if res.W <= 0 || res.H <= 0 {
		return nil, fmt.Errorf("progressive: non-positive resolution %s", res)
	}
	// Pad to a square power of two (the paper assumes 2^r × 2^r and notes
	// other resolutions are handled the same way: we simply skip centers
	// that fall off-screen).
	side := 1
	for side < res.W || side < res.H {
		side <<= 1
	}
	o := &Order{Res: res}
	seen := make([]bool, res.W*res.H)
	queue := []region{{0, 0, side, side, 0}}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		cx := r.x0 + r.w/2
		cy := r.y0 + r.h/2
		if cx >= res.W {
			cx = res.W - 1
		}
		if cy >= res.H {
			cy = res.H - 1
		}
		if r.x0 < res.W && r.y0 < res.H && !seen[cy*res.W+cx] {
			seen[cy*res.W+cx] = true
			o.Px = append(o.Px, cx)
			o.Py = append(o.Py, cy)
			o.Regions = append(o.Regions, r)
			o.Levels = append(o.Levels, r.depth)
		}
		if r.w > 1 || r.h > 1 {
			hw, hh := r.w/2, r.h/2
			if hw == 0 {
				hw = 1
			}
			if hh == 0 {
				hh = 1
			}
			if r.w > 1 && r.h > 1 {
				queue = append(queue,
					region{r.x0, r.y0, hw, hh, r.depth + 1},
					region{r.x0 + hw, r.y0, r.w - hw, hh, r.depth + 1},
					region{r.x0, r.y0 + hh, hw, r.h - hh, r.depth + 1},
					region{r.x0 + hw, r.y0 + hh, r.w - hw, r.h - hh, r.depth + 1},
				)
			} else if r.w > 1 {
				queue = append(queue, region{r.x0, r.y0, hw, r.h, r.depth + 1}, region{r.x0 + hw, r.y0, r.w - hw, r.h, r.depth + 1})
			} else {
				queue = append(queue, region{r.x0, r.y0, r.w, hh, r.depth + 1}, region{r.x0, r.y0 + hh, r.w, r.h - hh, r.depth + 1})
			}
		}
	}
	// Sweep any pixel a skipped off-screen center left unvisited (possible
	// only at extreme aspect ratios); emit them as 1×1 regions so the order
	// always covers the raster.
	for py := 0; py < res.H; py++ {
		for px := 0; px < res.W; px++ {
			if !seen[py*res.W+px] {
				o.Px = append(o.Px, px)
				o.Py = append(o.Py, py)
				o.Regions = append(o.Regions, region{px, py, 1, 1, maxDepth(o) + 1})
				o.Levels = append(o.Levels, maxDepth(o)+1)
			}
		}
	}
	return o, nil
}

// GroupByTile stably reorders each refinement level's evaluations so pixels
// falling in the same size×size tile are visited consecutively within the
// level. Raster semantics are unchanged — regions within one level are
// disjoint, so any level-internal order yields the same spatially complete
// raster at every level boundary, and Levels stays monotone for the
// streaming runner — but tile-warmed evaluators (the render layer's
// progressive εKDV path) get to touch each tile's frontier in bursts
// instead of thrashing across the raster.
func (o *Order) GroupByTile(size int) {
	if size < 2 || o.Len() < 2 {
		return
	}
	tilesX := (o.Res.W + size - 1) / size
	idx := make([]int, o.Len())
	for i := range idx {
		idx[i] = i
	}
	tile := func(i int) int { return (o.Py[i]/size)*tilesX + o.Px[i]/size }
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if o.Levels[ia] != o.Levels[ib] {
			return o.Levels[ia] < o.Levels[ib]
		}
		return tile(ia) < tile(ib)
	})
	px := make([]int, len(idx))
	py := make([]int, len(idx))
	regs := make([]region, len(idx))
	lvls := make([]int, len(idx))
	for n, i := range idx {
		px[n], py[n], regs[n], lvls[n] = o.Px[i], o.Py[i], o.Regions[i], o.Levels[i]
	}
	o.Px, o.Py, o.Regions, o.Levels = px, py, regs, lvls
}

// Result is the state of a progressive run.
type Result struct {
	// Values is the current color-map raster: exactly evaluated pixels hold
	// their value, the rest hold the value of the smallest evaluated region
	// containing them.
	Values *grid.Values
	// Evaluated is the number of pixels computed exactly.
	Evaluated int
	// Elapsed is the wall-clock time consumed.
	Elapsed time.Duration
	// Complete reports whether every pixel was evaluated.
	Complete bool
}

// timeCheckStride balances budget fidelity against clock overhead: the
// wall-clock (and the context, in the Ctx variants) is consulted every
// timeCheckStride evaluations.
const timeCheckStride = 8

// Run executes the progressive evaluation with eval(px, py) producing each
// pixel's density value. It stops when the wall-clock budget is exhausted
// (budget ≤ 0 means unlimited) or maxPixels evaluations were made
// (maxPixels ≤ 0 means all). The fill-down of region values happens as it
// goes, so the returned raster is always spatially complete after the very
// first evaluation.
func Run(o *Order, eval func(px, py int) float64, budget time.Duration, maxPixels int) *Result {
	res, _ := RunCtx(context.Background(), o, eval, budget, maxPixels)
	return res
}

// RunCtx is Run under a context: cancellation is polled every
// timeCheckStride evaluations and stops the run. The returned Result is
// always valid — on cancellation it holds the spatially complete partial
// raster accumulated so far, alongside the non-nil context error.
func RunCtx(ctx context.Context, o *Order, eval func(px, py int) float64, budget time.Duration, maxPixels int) (*Result, error) {
	start := time.Now()
	vals := grid.NewValues(o.Res)
	exact := make([]bool, o.Res.W*o.Res.H)
	res := &Result{Values: vals}
	limit := o.Len()
	if maxPixels > 0 && maxPixels < limit {
		limit = maxPixels
	}
	var ctxErr error
	for i := 0; i < limit; i++ {
		if i%timeCheckStride == 0 {
			if ctxErr = ctx.Err(); ctxErr != nil {
				break
			}
			if budget > 0 && time.Since(start) > budget {
				break
			}
		}
		px, py := o.Px[i], o.Py[i]
		v := eval(px, py)
		exact[py*o.Res.W+px] = true
		res.Evaluated++
		x0, y0, x1, y1 := o.RegionAt(i)
		for y := y0; y < y1; y++ {
			row := y * o.Res.W
			for x := x0; x < x1; x++ {
				if !exact[row+x] || (x == px && y == py) {
					vals.Data[row+x] = v
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.Complete = res.Evaluated == o.Len()
	return res, ctxErr
}

// maxDepth returns the deepest level recorded so far in the order.
func maxDepth(o *Order) int {
	m := 0
	for _, l := range o.Levels {
		if l > m {
			m = l
		}
	}
	return m
}
