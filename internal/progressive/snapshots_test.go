package progressive

import (
	"testing"
	"time"

	"github.com/quadkdv/quad/internal/grid"
)

func TestLevelsRecorded(t *testing.T) {
	o, err := BuildOrder(grid.Resolution{W: 16, H: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Levels) != o.Len() {
		t.Fatalf("Levels length %d, order length %d", len(o.Levels), o.Len())
	}
	if o.Levels[0] != 0 {
		t.Errorf("first level = %d, want 0", o.Levels[0])
	}
	// Levels are non-decreasing (breadth-first order).
	for i := 1; i < len(o.Levels); i++ {
		if o.Levels[i] < o.Levels[i-1] {
			t.Fatalf("levels not monotone at %d: %d < %d", i, o.Levels[i], o.Levels[i-1])
		}
	}
	// A 16×16 raster refines 0..4 levels.
	if got := o.Levels[len(o.Levels)-1]; got != 4 {
		t.Errorf("deepest level = %d, want 4", got)
	}
}

func TestRunStreamEmitsPerLevel(t *testing.T) {
	o, _ := BuildOrder(grid.Resolution{W: 16, H: 16})
	var snaps []Snapshot
	r := RunStream(o, func(px, py int) float64 { return float64(px) }, 0, 0, func(s Snapshot) bool {
		// Copy scalar fields only; Values aliases the live raster.
		snaps = append(snaps, Snapshot{Evaluated: s.Evaluated, Level: s.Level, Final: s.Final})
		return true
	})
	if !r.Complete {
		t.Fatal("run incomplete")
	}
	// Levels 0..4 complete → 4 boundary snapshots + 1 final.
	if len(snaps) != 5 {
		t.Fatalf("got %d snapshots, want 5", len(snaps))
	}
	if !snaps[len(snaps)-1].Final {
		t.Error("last snapshot not marked final")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Evaluated <= snaps[i-1].Evaluated {
			t.Errorf("snapshot %d did not add evaluations: %d → %d", i, snaps[i-1].Evaluated, snaps[i].Evaluated)
		}
	}
	// First snapshot is the single whole-raster evaluation.
	if snaps[0].Evaluated != 1 || snaps[0].Level != 0 {
		t.Errorf("first snapshot %+v", snaps[0])
	}
}

func TestRunStreamEarlyStop(t *testing.T) {
	o, _ := BuildOrder(grid.Resolution{W: 32, H: 32})
	evals := 0
	r := RunStream(o, func(px, py int) float64 {
		evals++
		return 0
	}, 0, 0, func(s Snapshot) bool {
		return s.Level < 1 // stop after the second level boundary
	})
	if r.Complete {
		t.Error("stopped run reported complete")
	}
	if evals >= o.Len() {
		t.Errorf("early stop evaluated everything (%d)", evals)
	}
}

func TestRunStreamNilEmit(t *testing.T) {
	o, _ := BuildOrder(grid.Resolution{W: 8, H: 8})
	r := RunStream(o, func(px, py int) float64 { return 1 }, 0, 0, nil)
	if !r.Complete {
		t.Error("nil-emit run incomplete")
	}
}

func TestRunStreamBudget(t *testing.T) {
	o, _ := BuildOrder(grid.Resolution{W: 64, H: 64})
	final := Snapshot{}
	r := RunStream(o, func(px, py int) float64 {
		time.Sleep(100 * time.Microsecond)
		return 0
	}, 3*time.Millisecond, 0, func(s Snapshot) bool {
		final = s
		return true
	})
	if r.Complete {
		t.Error("budgeted run completed 4096 slow evals in 3ms")
	}
	if !final.Final {
		t.Error("no final snapshot after budget expiry")
	}
}
