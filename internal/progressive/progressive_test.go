package progressive

import (
	"testing"
	"time"

	"github.com/quadkdv/quad/internal/grid"
)

func TestBuildOrderValidation(t *testing.T) {
	if _, err := BuildOrder(grid.Resolution{W: 0, H: 5}); err == nil {
		t.Error("zero width accepted")
	}
}

func TestOrderCoversEveryPixelOnce(t *testing.T) {
	for _, res := range []grid.Resolution{
		{W: 1, H: 1}, {W: 2, H: 2}, {W: 8, H: 8}, {W: 16, H: 16},
		{W: 7, H: 5}, {W: 13, H: 1}, {W: 1, H: 9}, {W: 320, H: 240}, {W: 33, H: 47},
	} {
		o, err := BuildOrder(res)
		if err != nil {
			t.Fatal(err)
		}
		if o.Len() != res.Pixels() {
			t.Fatalf("%s: order has %d entries, want %d", res, o.Len(), res.Pixels())
		}
		seen := make(map[int]bool, o.Len())
		for i := 0; i < o.Len(); i++ {
			px, py := o.Px[i], o.Py[i]
			if px < 0 || px >= res.W || py < 0 || py >= res.H {
				t.Fatalf("%s: pixel (%d,%d) out of range", res, px, py)
			}
			key := py*res.W + px
			if seen[key] {
				t.Fatalf("%s: pixel (%d,%d) visited twice", res, px, py)
			}
			seen[key] = true
		}
	}
}

// TestOrderIsCoarseToFine: the first evaluations must cover large regions,
// i.e. the prefix of the order must be spatially spread out.
func TestOrderIsCoarseToFine(t *testing.T) {
	res := grid.Resolution{W: 64, H: 64}
	o, err := BuildOrder(res)
	if err != nil {
		t.Fatal(err)
	}
	// First entry's region is the whole (padded) raster.
	x0, y0, x1, y1 := o.RegionAt(0)
	if x0 != 0 || y0 != 0 || x1 != 64 || y1 != 64 {
		t.Errorf("first region [%d,%d)x[%d,%d), want full raster", x0, x1, y0, y1)
	}
	// After 1+4+16 = 21 evaluations every 16x16 block should have ≥1
	// evaluated pixel.
	var blocks [4][4]bool
	for i := 0; i < 21 && i < o.Len(); i++ {
		blocks[o.Py[i]/16][o.Px[i]/16] = true
	}
	covered := 0
	for _, row := range blocks {
		for _, b := range row {
			if b {
				covered++
			}
		}
	}
	if covered < 12 {
		t.Errorf("after 21 evals only %d/16 coarse blocks touched", covered)
	}
}

func TestRegionsShrink(t *testing.T) {
	res := grid.Resolution{W: 32, H: 32}
	o, _ := BuildOrder(res)
	area := func(i int) int {
		x0, y0, x1, y1 := o.RegionAt(i)
		return (x1 - x0) * (y1 - y0)
	}
	if area(0) < area(o.Len()-1) {
		t.Error("regions should shrink over the order")
	}
	if a := area(o.Len() - 1); a != 1 {
		t.Errorf("final region area = %d, want 1", a)
	}
}

func TestRunCompletes(t *testing.T) {
	res := grid.Resolution{W: 16, H: 12}
	o, _ := BuildOrder(res)
	evals := 0
	r := Run(o, func(px, py int) float64 {
		evals++
		return float64(px + py)
	}, 0, 0)
	if !r.Complete || r.Evaluated != res.Pixels() || evals != res.Pixels() {
		t.Fatalf("complete run: complete=%v evaluated=%d evals=%d", r.Complete, r.Evaluated, evals)
	}
	// Every pixel must hold its own exact value at the end.
	for py := 0; py < res.H; py++ {
		for px := 0; px < res.W; px++ {
			if r.Values.At(px, py) != float64(px+py) {
				t.Fatalf("pixel (%d,%d) = %g, want %d", px, py, r.Values.At(px, py), px+py)
			}
		}
	}
}

func TestRunPixelBudget(t *testing.T) {
	res := grid.Resolution{W: 32, H: 32}
	o, _ := BuildOrder(res)
	r := Run(o, func(px, py int) float64 { return 1 }, 0, 10)
	if r.Evaluated != 10 {
		t.Errorf("evaluated %d, want 10", r.Evaluated)
	}
	if r.Complete {
		t.Error("partial run reported complete")
	}
	// Fill-down: every pixel must carry the value 1 even though only 10
	// were evaluated.
	for _, v := range r.Values.Data {
		if v != 1 {
			t.Fatalf("unfilled pixel value %g", v)
		}
	}
}

func TestRunTimeBudget(t *testing.T) {
	res := grid.Resolution{W: 64, H: 64}
	o, _ := BuildOrder(res)
	r := Run(o, func(px, py int) float64 {
		time.Sleep(200 * time.Microsecond)
		return 0
	}, 5*time.Millisecond, 0)
	if r.Complete {
		t.Error("run under a 5ms budget with 200µs evals should not complete 4096 pixels")
	}
	if r.Evaluated == 0 {
		t.Error("no pixels evaluated")
	}
}

// TestPartialApproximationImproves: with a smooth field, the average error
// of the filled raster must drop as the pixel budget grows.
func TestPartialApproximationImproves(t *testing.T) {
	res := grid.Resolution{W: 32, H: 32}
	o, _ := BuildOrder(res)
	field := func(px, py int) float64 {
		x := float64(px) / 32
		y := float64(py) / 32
		return x*x + y
	}
	errAt := func(budget int) float64 {
		r := Run(o, field, 0, budget)
		var sum float64
		for py := 0; py < res.H; py++ {
			for px := 0; px < res.W; px++ {
				d := r.Values.At(px, py) - field(px, py)
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	coarse := errAt(5)
	mid := errAt(100)
	full := errAt(res.Pixels())
	if !(coarse > mid && mid > full) {
		t.Errorf("error did not improve: %g → %g → %g", coarse, mid, full)
	}
	if full != 0 {
		t.Errorf("full run error = %g, want 0", full)
	}
}
