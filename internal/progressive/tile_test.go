package progressive

import (
	"testing"

	"github.com/quadkdv/quad/internal/grid"
)

// TestGroupByTilePreservesSemantics checks the three properties the render
// layer relies on: GroupByTile keeps Levels monotone (snapshot boundaries),
// keeps the same evaluation multiset (full runs still cover every pixel
// exactly once), and leaves the full-run raster identical.
func TestGroupByTilePreservesSemantics(t *testing.T) {
	for _, res := range []grid.Resolution{{W: 64, H: 48}, {W: 33, H: 7}, {W: 16, H: 16}} {
		base, err := BuildOrder(res)
		if err != nil {
			t.Fatal(err)
		}
		grouped, err := BuildOrder(res)
		if err != nil {
			t.Fatal(err)
		}
		grouped.GroupByTile(16)

		if grouped.Len() != base.Len() {
			t.Fatalf("%v: length changed %d -> %d", res, base.Len(), grouped.Len())
		}
		seen := make(map[[2]int]int)
		for i := 0; i < grouped.Len(); i++ {
			if i > 0 && grouped.Levels[i] < grouped.Levels[i-1] {
				t.Fatalf("%v: levels not monotone at %d: %d after %d", res, i, grouped.Levels[i], grouped.Levels[i-1])
			}
			seen[[2]int{grouped.Px[i], grouped.Py[i]}]++
		}
		if len(seen) != res.Pixels() {
			t.Fatalf("%v: %d distinct pixels, want %d", res, len(seen), res.Pixels())
		}
		for p, n := range seen {
			if n != 1 {
				t.Fatalf("%v: pixel %v evaluated %d times", res, p, n)
			}
		}

		eval := func(px, py int) float64 { return float64(py*res.W + px) }
		a := Run(base, eval, 0, 0)
		b := Run(grouped, eval, 0, 0)
		if !a.Complete || !b.Complete {
			t.Fatalf("%v: incomplete full run", res)
		}
		for i := range a.Values.Data {
			if a.Values.Data[i] != b.Values.Data[i] {
				t.Fatalf("%v: full-run raster differs at %d: %g vs %g", res, i, a.Values.Data[i], b.Values.Data[i])
			}
		}
	}
}
