package geom

import (
	"math/rand"
	"testing"
)

func randRect(rng *rand.Rand, dim int) Rect {
	min := make([]float64, dim)
	max := make([]float64, dim)
	for i := range min {
		a := rng.Float64()*20 - 10
		b := a + rng.Float64()*5
		min[i], max[i] = a, b
	}
	return Rect{Min: min, Max: max}
}

func randIn(rng *rand.Rand, r Rect) []float64 {
	p := make([]float64, len(r.Min))
	for i := range p {
		p[i] = r.Min[i] + rng.Float64()*(r.Max[i]-r.Min[i])
	}
	return p
}

// TestRectRectDistBrackets checks the rect-to-rect distance interval against
// sampled point pairs: for any p ∈ r and q ∈ o,
// MinDist2Rect ≤ ‖p−q‖² ≤ MaxDist2Rect.
func TestRectRectDistBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		dim := 2 + trial%3
		r, o := randRect(rng, dim), randRect(rng, dim)
		min2, max2 := r.MinDist2Rect(o), o.MaxDist2Rect(r)
		if min2 > max2 {
			t.Fatalf("trial %d: inverted interval [%g, %g]", trial, min2, max2)
		}
		if alt := o.MinDist2Rect(r); alt != min2 {
			t.Fatalf("trial %d: MinDist2Rect not symmetric: %g vs %g", trial, min2, alt)
		}
		if alt := r.MaxDist2Rect(o); alt != max2 {
			t.Fatalf("trial %d: MaxDist2Rect not symmetric: %g vs %g", trial, max2, alt)
		}
		for s := 0; s < 50; s++ {
			p, q := randIn(rng, r), randIn(rng, o)
			var d2 float64
			for i := range p {
				d := p[i] - q[i]
				d2 += d * d
			}
			if d2 < min2-1e-9 || d2 > max2+1e-9 {
				t.Fatalf("trial %d: dist² %g outside [%g, %g] for p=%v q=%v", trial, d2, min2, max2, p, q)
			}
		}
	}
}

// TestRectRectDistDegenerate pins the closed-form cases: coincident rects
// have min distance 0, and a point-rect (Min == Max) reduces to the
// point-to-rect distance.
func TestRectRectDistDegenerate(t *testing.T) {
	r := Rect{Min: []float64{0, 0}, Max: []float64{2, 2}}
	if d := r.MinDist2Rect(r); d != 0 {
		t.Errorf("self MinDist2Rect = %g, want 0", d)
	}
	pt := []float64{5, 3}
	p := Rect{Min: pt, Max: pt}
	if got, want := r.MinDist2Rect(p), r.MinDist2(pt); got != want {
		t.Errorf("point-rect MinDist2Rect = %g, MinDist2 = %g", got, want)
	}
	if got, want := r.MaxDist2Rect(p), r.MaxDist2(pt); got != want {
		t.Errorf("point-rect MaxDist2Rect = %g, MaxDist2 = %g", got, want)
	}
}
