// Package geom provides the low-level vector and rectangle geometry used by
// the kd-tree index and the bound evaluators: d-dimensional points stored in
// flat buffers, squared Euclidean distances, and minimum/maximum distances
// between a query point and an axis-aligned bounding rectangle.
//
// All distance computations are exact floating-point formulas; no function in
// this package allocates on the hot path.
package geom

import (
	"fmt"
	"math"
)

// Point is a d-dimensional point. The dimensionality is len(p).
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dot returns the inner product p·q. Both points must share a dimension.
func Dot(p, q []float64) float64 {
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm ‖p‖².
func Norm2(p []float64) float64 {
	var s float64
	for _, v := range p {
		s += v * v
	}
	return s
}

// Dist2 returns the squared Euclidean distance between p and q.
func Dist2(p, q []float64) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q []float64) float64 {
	return math.Sqrt(Dist2(p, q))
}

// Points is a flat, row-major buffer of n points of dimension Dim.
// Point i occupies Coords[i*Dim : (i+1)*Dim]. The flat layout keeps the
// kd-tree build and the leaf scans cache-friendly and allocation-free.
type Points struct {
	Coords []float64
	Dim    int
}

// NewPoints wraps a coordinate buffer. It panics if the buffer length is not
// a multiple of dim, since that always indicates a programming error.
func NewPoints(coords []float64, dim int) Points {
	if dim <= 0 {
		panic("geom: non-positive dimension")
	}
	if len(coords)%dim != 0 {
		panic(fmt.Sprintf("geom: coordinate buffer length %d not a multiple of dim %d", len(coords), dim))
	}
	return Points{Coords: coords, Dim: dim}
}

// FromSlice builds a flat Points buffer from a slice of points. All points
// must share the dimension of the first; it panics otherwise.
func FromSlice(pts []Point) Points {
	if len(pts) == 0 {
		return Points{Dim: 1}
	}
	dim := len(pts[0])
	coords := make([]float64, 0, len(pts)*dim)
	for i, p := range pts {
		if len(p) != dim {
			panic(fmt.Sprintf("geom: point %d has dim %d, want %d", i, len(p), dim))
		}
		coords = append(coords, p...)
	}
	return NewPoints(coords, dim)
}

// Len returns the number of points.
func (ps Points) Len() int { return len(ps.Coords) / ps.Dim }

// At returns point i as a slice aliasing the underlying buffer.
func (ps Points) At(i int) []float64 {
	return ps.Coords[i*ps.Dim : (i+1)*ps.Dim]
}

// Swap exchanges points i and j in place.
func (ps Points) Swap(i, j int) {
	a := ps.At(i)
	b := ps.At(j)
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// Slice returns the sub-buffer containing points [lo, hi).
func (ps Points) Slice(lo, hi int) Points {
	return Points{Coords: ps.Coords[lo*ps.Dim : hi*ps.Dim], Dim: ps.Dim}
}

// Clone returns a deep copy of the buffer.
func (ps Points) Clone() Points {
	c := make([]float64, len(ps.Coords))
	copy(c, ps.Coords)
	return Points{Coords: c, Dim: ps.Dim}
}
