package geom

import (
	"math"
	"math/rand"
	"testing"
)

// clampCoord folds an arbitrary fuzzed float into a sane coordinate range,
// rejecting NaN/Inf by mapping them to 0.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

// FuzzRectDistBounds: for a fuzzer-chosen rectangle and query, MinDist2 and
// MaxDist2 must bracket the true squared distance to every point inside the
// rectangle — the invariant every bound method's [x_min, x_max] interval
// rests on.
func FuzzRectDistBounds(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 0.5, 0.5, int64(1))
	f.Add(-3.0, 2.0, 0.0, 7.0, 10.0, -4.0, int64(9))
	f.Add(5.0, 5.0, 5.0, 5.0, 5.0, 5.0, int64(3)) // degenerate rect, q inside
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, qx, qy float64, seed int64) {
		ax, ay = clampCoord(ax), clampCoord(ay)
		bx, by = clampCoord(bx), clampCoord(by)
		q := []float64{clampCoord(qx), clampCoord(qy)}
		r := Rect{Min: []float64{math.Min(ax, bx), math.Min(ay, by)},
			Max: []float64{math.Max(ax, bx), math.Max(ay, by)}}
		min2, max2 := r.MinDist2(q), r.MaxDist2(q)
		if min2 < 0 || max2 < min2 {
			t.Fatalf("inverted interval [%g, %g] for rect %v q %v", min2, max2, r, q)
		}
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, 2)
		for i := 0; i < 16; i++ {
			for j := range p {
				p[j] = r.Min[j] + rng.Float64()*(r.Max[j]-r.Min[j])
			}
			d2 := Dist2(q, p)
			tol := 1e-9 * (1 + d2)
			if d2 < min2-tol || d2 > max2+tol {
				t.Fatalf("point %v in rect %v: dist² %g outside [%g, %g] from q %v", p, r, d2, min2, max2, q)
			}
		}
	})
}

// FuzzRectRectDistBounds: MinDist2Rect/MaxDist2Rect must bracket the
// distance between every pair of points drawn from the two rectangles — the
// invariant the tile-shared rect-query bounds rest on.
func FuzzRectRectDistBounds(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, int64(1))
	f.Add(0.0, 0.0, 4.0, 4.0, 1.0, 1.0, 2.0, 2.0, int64(5)) // containment
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, int64(2)) // both degenerate
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64, seed int64) {
		ax, ay = clampCoord(ax), clampCoord(ay)
		bx, by = clampCoord(bx), clampCoord(by)
		cx, cy = clampCoord(cx), clampCoord(cy)
		dx, dy = clampCoord(dx), clampCoord(dy)
		a := Rect{Min: []float64{math.Min(ax, bx), math.Min(ay, by)},
			Max: []float64{math.Max(ax, bx), math.Max(ay, by)}}
		b := Rect{Min: []float64{math.Min(cx, dx), math.Min(cy, dy)},
			Max: []float64{math.Max(cx, dx), math.Max(cy, dy)}}
		min2, max2 := a.MinDist2Rect(b), a.MaxDist2Rect(b)
		if min2 < 0 || max2 < min2 {
			t.Fatalf("inverted interval [%g, %g] for rects %v, %v", min2, max2, a, b)
		}
		if g, w := b.MinDist2Rect(a), b.MaxDist2Rect(a); g != min2 || w != max2 {
			t.Fatalf("rect-rect distance not symmetric: [%g,%g] vs [%g,%g]", min2, max2, g, w)
		}
		rng := rand.New(rand.NewSource(seed))
		p, q := make([]float64, 2), make([]float64, 2)
		for i := 0; i < 16; i++ {
			for j := range p {
				p[j] = a.Min[j] + rng.Float64()*(a.Max[j]-a.Min[j])
				q[j] = b.Min[j] + rng.Float64()*(b.Max[j]-b.Min[j])
			}
			d2 := Dist2(p, q)
			tol := 1e-9 * (1 + d2)
			if d2 < min2-tol || d2 > max2+tol {
				t.Fatalf("pair %v/%v: dist² %g outside [%g, %g]", p, q, d2, min2, max2)
			}
		}
	})
}
