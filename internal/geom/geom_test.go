package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotNorm(t *testing.T) {
	p := []float64{1, 2, 3}
	q := []float64{4, -5, 6}
	if got := Dot(p, q); got != 1*4+2*-5+3*6 {
		t.Errorf("Dot = %g", got)
	}
	if got := Norm2(p); got != 14 {
		t.Errorf("Norm2 = %g", got)
	}
}

func TestDist(t *testing.T) {
	p := []float64{0, 0}
	q := []float64{3, 4}
	if got := Dist2(p, q); got != 25 {
		t.Errorf("Dist2 = %g", got)
	}
	if got := Dist(p, q); got != 5 {
		t.Errorf("Dist = %g", got)
	}
}

func TestPointsBasics(t *testing.T) {
	ps := NewPoints([]float64{1, 2, 3, 4, 5, 6}, 2)
	if ps.Len() != 3 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if got := ps.At(1); got[0] != 3 || got[1] != 4 {
		t.Errorf("At(1) = %v", got)
	}
	ps.Swap(0, 2)
	if got := ps.At(0); got[0] != 5 || got[1] != 6 {
		t.Errorf("after Swap At(0) = %v", got)
	}
	sub := ps.Slice(1, 3)
	if sub.Len() != 2 {
		t.Errorf("Slice len = %d", sub.Len())
	}
	cl := ps.Clone()
	cl.Coords[0] = 99
	if ps.Coords[0] == 99 {
		t.Error("Clone aliases original")
	}
}

func TestNewPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoints with bad length did not panic")
		}
	}()
	NewPoints([]float64{1, 2, 3}, 2)
}

func TestFromSlice(t *testing.T) {
	ps := FromSlice([]Point{{1, 2}, {3, 4}})
	if ps.Len() != 2 || ps.Dim != 2 {
		t.Fatalf("FromSlice: len=%d dim=%d", ps.Len(), ps.Dim)
	}
	empty := FromSlice(nil)
	if empty.Len() != 0 {
		t.Errorf("empty FromSlice len = %d", empty.Len())
	}
}

func TestFromSliceMismatchedDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with mixed dims did not panic")
		}
	}()
	FromSlice([]Point{{1, 2}, {3}})
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2}
	c := p.Clone()
	c[0] = 7
	if p[0] != 1 {
		t.Error("Point.Clone aliases original")
	}
}

func TestRectExtendContains(t *testing.T) {
	r := NewRect(2)
	r.Extend([]float64{1, 5})
	r.Extend([]float64{3, 2})
	if !r.Contains([]float64{2, 3}) {
		t.Error("rect should contain interior point")
	}
	if r.Contains([]float64{0, 3}) {
		t.Error("rect should not contain exterior point")
	}
	c := r.Center(make([]float64, 2))
	if c[0] != 2 || c[1] != 3.5 {
		t.Errorf("Center = %v", c)
	}
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
}

func TestBoundingRect(t *testing.T) {
	ps := NewPoints([]float64{0, 0, 2, 3, -1, 1}, 2)
	r := BoundingRect(ps)
	if r.Min[0] != -1 || r.Min[1] != 0 || r.Max[0] != 2 || r.Max[1] != 3 {
		t.Errorf("BoundingRect = %+v", r)
	}
}

func TestMinMaxDistInside(t *testing.T) {
	r := Rect{Min: []float64{0, 0}, Max: []float64{2, 2}}
	q := []float64{1, 1}
	if got := r.MinDist2(q); got != 0 {
		t.Errorf("MinDist2 inside = %g", got)
	}
	if got := r.MaxDist2(q); got != 2 {
		t.Errorf("MaxDist2 inside = %g", got)
	}
}

func TestMinMaxDistOutside(t *testing.T) {
	r := Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}
	q := []float64{3, 0.5}
	if got := r.MinDist2(q); got != 4 {
		t.Errorf("MinDist2 = %g, want 4", got)
	}
	want := 9.0 + 0.25
	if got := r.MaxDist2(q); got != want {
		t.Errorf("MaxDist2 = %g, want %g", got, want)
	}
}

// TestMinMaxDistBracketActualPoints: for random rects and queries, the
// distance to every point inside the rect must lie within
// [MinDist, MaxDist] — the correctness contract the bound functions rely on.
func TestMinMaxDistBracketActualPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		dim := 1 + rng.Intn(4)
		r := NewRect(dim)
		a := make([]float64, dim)
		b := make([]float64, dim)
		for i := 0; i < dim; i++ {
			a[i] = rng.NormFloat64() * 5
			b[i] = a[i] + rng.Float64()*4
		}
		r.Extend(a)
		r.Extend(b)
		q := make([]float64, dim)
		for i := range q {
			q[i] = rng.NormFloat64() * 8
		}
		lo, hi := r.MinDist2(q), r.MaxDist2(q)
		for k := 0; k < 10; k++ {
			p := make([]float64, dim)
			for i := range p {
				p[i] = r.Min[i] + rng.Float64()*(r.Max[i]-r.Min[i])
			}
			d := Dist2(q, p)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("point dist² %g outside [%g, %g]", d, lo, hi)
			}
		}
	}
}

func TestLongestAxis(t *testing.T) {
	r := Rect{Min: []float64{0, 0, 0}, Max: []float64{1, 5, 2}}
	if got := r.LongestAxis(); got != 1 {
		t.Errorf("LongestAxis = %d, want 1", got)
	}
}

func TestRectClone(t *testing.T) {
	r := Rect{Min: []float64{0}, Max: []float64{1}}
	c := r.Clone()
	c.Min[0] = -9
	if r.Min[0] != 0 {
		t.Error("Rect.Clone aliases original")
	}
}

func TestMinDistQuick(t *testing.T) {
	f := func(qa, qb, ra, rb, rc, rd float64) bool {
		r := NewRect(2)
		r.Extend([]float64{math.Mod(ra, 10), math.Mod(rb, 10)})
		r.Extend([]float64{math.Mod(rc, 10), math.Mod(rd, 10)})
		q := []float64{math.Mod(qa, 20), math.Mod(qb, 20)}
		lo, hi := r.MinDist2(q), r.MaxDist2(q)
		// MinDist ≤ MaxDist and dist to each corner lies between them.
		if lo > hi+1e-12 {
			return false
		}
		corners := [][]float64{
			{r.Min[0], r.Min[1]}, {r.Min[0], r.Max[1]},
			{r.Max[0], r.Min[1]}, {r.Max[0], r.Max[1]},
		}
		for _, c := range corners {
			d := Dist2(q, c)
			if d < lo-1e-9 || d > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}
