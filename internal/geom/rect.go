package geom

import "math"

// Rect is an axis-aligned bounding rectangle (hyper-rectangle) given by its
// per-dimension minimum and maximum corners.
type Rect struct {
	Min, Max []float64
}

// NewRect returns a degenerate rectangle positioned for accumulation: every
// minimum at +Inf and every maximum at −Inf, so that the first Extend sets
// both corners.
func NewRect(dim int) Rect {
	r := Rect{Min: make([]float64, dim), Max: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		r.Min[i] = math.Inf(1)
		r.Max[i] = math.Inf(-1)
	}
	return r
}

// BoundingRect returns the minimum bounding rectangle of all points in ps.
func BoundingRect(ps Points) Rect {
	r := NewRect(ps.Dim)
	n := ps.Len()
	for i := 0; i < n; i++ {
		r.Extend(ps.At(i))
	}
	return r
}

// Dim returns the rectangle's dimensionality.
func (r Rect) Dim() int { return len(r.Min) }

// Extend grows the rectangle to cover point p.
func (r Rect) Extend(p []float64) {
	for i, v := range p {
		if v < r.Min[i] {
			r.Min[i] = v
		}
		if v > r.Max[i] {
			r.Max[i] = v
		}
	}
}

// Contains reports whether p lies inside the (closed) rectangle.
func (r Rect) Contains(p []float64) bool {
	for i, v := range p {
		if v < r.Min[i] || v > r.Max[i] {
			return false
		}
	}
	return true
}

// Center writes the rectangle's center into dst and returns it. dst must
// have length Dim.
func (r Rect) Center(dst []float64) []float64 {
	for i := range r.Min {
		dst[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return dst
}

// MinDist2 returns the squared Euclidean distance from q to the nearest
// point of the rectangle (zero when q is inside).
func (r Rect) MinDist2(q []float64) float64 {
	var s float64
	for i, v := range q {
		switch {
		case v < r.Min[i]:
			d := r.Min[i] - v
			s += d * d
		case v > r.Max[i]:
			d := v - r.Max[i]
			s += d * d
		}
	}
	return s
}

// MaxDist2 returns the squared Euclidean distance from q to the farthest
// point of the rectangle. Per dimension the farthest coordinate is whichever
// corner is farther from q.
func (r Rect) MaxDist2(q []float64) float64 {
	var s float64
	for i, v := range q {
		dLo := v - r.Min[i]
		dHi := r.Max[i] - v
		if dLo < 0 {
			dLo = -dLo
		}
		if dHi < 0 {
			dHi = -dHi
		}
		d := dLo
		if dHi > d {
			d = dHi
		}
		s += d * d
	}
	return s
}

// MinDist2Rect returns the squared Euclidean distance between the closest
// pair of points drawn from r and o (zero when the rectangles intersect).
func (r Rect) MinDist2Rect(o Rect) float64 {
	var s float64
	for i := range r.Min {
		switch {
		case o.Max[i] < r.Min[i]:
			d := r.Min[i] - o.Max[i]
			s += d * d
		case o.Min[i] > r.Max[i]:
			d := o.Min[i] - r.Max[i]
			s += d * d
		}
	}
	return s
}

// MaxDist2Rect returns the squared Euclidean distance between the farthest
// pair of points drawn from r and o. Per dimension the farthest pair is one
// of the two opposite corner spans.
func (r Rect) MaxDist2Rect(o Rect) float64 {
	var s float64
	for i := range r.Min {
		d := r.Max[i] - o.Min[i]
		if alt := o.Max[i] - r.Min[i]; alt > d {
			d = alt
		}
		if d < 0 {
			d = -d
		}
		s += d * d
	}
	return s
}

// MinDist returns the Euclidean distance from q to the rectangle.
func (r Rect) MinDist(q []float64) float64 { return math.Sqrt(r.MinDist2(q)) }

// MaxDist returns the maximum Euclidean distance from q to the rectangle.
func (r Rect) MaxDist(q []float64) float64 { return math.Sqrt(r.MaxDist2(q)) }

// LongestAxis returns the dimension with the largest side length, used as
// the kd-tree split axis.
func (r Rect) LongestAxis() int {
	best, bestLen := 0, math.Inf(-1)
	for i := range r.Min {
		if l := r.Max[i] - r.Min[i]; l > bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// Clone returns a deep copy of the rectangle.
func (r Rect) Clone() Rect {
	c := Rect{Min: make([]float64, len(r.Min)), Max: make([]float64, len(r.Max))}
	copy(c.Min, r.Min)
	copy(c.Max, r.Max)
	return c
}
