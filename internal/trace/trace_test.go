package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceAndSpanAreNoOps(t *testing.T) {
	var tr *Trace
	if got := tr.ID(); !got.IsZero() {
		t.Fatalf("nil trace ID = %v, want zero", got)
	}
	s := tr.Start("x", nil)
	if s != nil {
		t.Fatalf("nil trace Start = %v, want nil", s)
	}
	// Every span method must be callable on the nil result.
	s.SetAttrs(Str("k", "v"))
	s.End()
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace Spans = %v, want nil", got)
	}
	if s2 := tr.Add("y", nil, time.Now(), time.Now()); s2 != nil {
		t.Fatalf("nil trace Add = %v, want nil", s2)
	}
}

func TestSpanLifecycleAndParents(t *testing.T) {
	tr := New()
	if tr.ID().IsZero() {
		t.Fatal("minted trace has zero ID")
	}
	root := tr.Start("root", nil)
	child := tr.Start("child", root)
	child.SetAttrs(Int("n", 3), Str("mode", "tile"))
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0] != root || spans[1] != child {
		t.Fatal("spans not in start order")
	}
	if !root.Parent.IsZero() {
		t.Fatalf("root parent = %v, want zero", root.Parent)
	}
	if child.Parent != root.ID {
		t.Fatalf("child parent = %v, want %v", child.Parent, root.ID)
	}
	if child.Trace != tr.ID() || root.Trace != tr.ID() {
		t.Fatal("spans do not carry the trace ID")
	}
	if root.ID == child.ID {
		t.Fatal("span IDs collide")
	}
	if root.Duration() <= 0 && root.Finish.IsZero() {
		t.Fatal("ended root has no finish time")
	}
	end := child.Finish
	child.End() // double-End keeps the first end time
	if child.Finish != end {
		t.Fatal("double End moved the finish time")
	}
}

func TestResumeParentsOnRemoteSpan(t *testing.T) {
	tid := TraceID{1, 2, 3, 4}
	sid := SpanID{9, 8, 7}
	tr := Resume(tid, sid)
	if tr.ID() != tid {
		t.Fatalf("resumed trace ID = %v, want %v", tr.ID(), tid)
	}
	s := tr.Start("root", nil)
	if s.Parent != sid {
		t.Fatalf("resumed root parent = %v, want remote %v", s.Parent, sid)
	}
	// A zero propagated ID falls back to a minted trace.
	if tr2 := Resume(TraceID{}, SpanID{}); tr2.ID().IsZero() {
		t.Fatal("Resume with zero ID did not mint one")
	}
}

func TestSlabOverflowKeepsSpansValid(t *testing.T) {
	tr := New()
	var all []*Span
	for i := 0; i < slabSize+8; i++ {
		all = append(all, tr.Start("s", nil))
	}
	spans := tr.Spans()
	if len(spans) != slabSize+8 {
		t.Fatalf("got %d spans", len(spans))
	}
	for i, s := range all {
		if spans[i] != s {
			t.Fatalf("span %d moved after slab overflow", i)
		}
		if s.Trace != tr.ID() {
			t.Fatalf("span %d lost its trace ID", i)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatal("empty context yielded a trace")
	}
	if s, ctx2 := StartSpan(ctx, "x"); s != nil || ctx2 != ctx {
		t.Fatal("StartSpan on untraced context must be a no-op")
	}
	tr := New()
	ctx = NewContext(ctx, tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip the context")
	}
	parent, ctx := StartSpan(ctx, "parent")
	child, _ := StartSpan(ctx, "child")
	if child.Parent != parent.ID {
		t.Fatal("StartSpan did not parent on the context's current span")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New()
	root := tr.Start("http", nil)
	child := tr.Start("render", root)
	child.SetAttrs(Int("pixels", 100), Float64("eps", 0.01), Str("dataset", "crime"))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var got struct {
		TraceID  string         `json:"trace_id"`
		SpanID   string         `json:"span_id"`
		ParentID string         `json:"parent_id"`
		Name     string         `json:"name"`
		Attrs    map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != tr.ID().String() {
		t.Fatalf("trace_id = %q, want %q", got.TraceID, tr.ID().String())
	}
	if got.ParentID != root.ID.String() {
		t.Fatalf("parent_id = %q, want %q", got.ParentID, root.ID.String())
	}
	if got.Name != "render" {
		t.Fatalf("name = %q", got.Name)
	}
	if got.Attrs["pixels"] != float64(100) || got.Attrs["dataset"] != "crime" {
		t.Fatalf("attrs = %v", got.Attrs)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New()
	root := tr.Start("http", nil)
	base := time.Now()
	tr.Add("shared_frontier", root, base, base.Add(3*time.Millisecond), Int("node_evals", 42))
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(got.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(got.TraceEvents))
	}
	for _, ev := range got.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase = %q, want X", ev.Ph)
		}
		if ev.Ts < 0 {
			t.Fatalf("negative relative timestamp %g", ev.Ts)
		}
		if ev.Args["trace_id"] != tr.ID().String() {
			t.Fatalf("event args missing trace_id: %v", ev.Args)
		}
	}
	var synth *struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	}
	for i := range got.TraceEvents {
		if got.TraceEvents[i].Name == "shared_frontier" {
			synth = &got.TraceEvents[i]
		}
	}
	if synth == nil {
		t.Fatal("shared_frontier event missing")
	}
	if synth.Dur < 2900 || synth.Dur > 3100 {
		t.Fatalf("synthesized span duration = %g µs, want ~3000", synth.Dur)
	}
	if synth.Args["node_evals"] != float64(42) {
		t.Fatalf("args = %v", synth.Args)
	}
}

func TestConcurrentStart(t *testing.T) {
	tr := New()
	done := make(chan struct{})
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				s := tr.Start("s", nil)
				s.SetAttrs(Int("i", i))
				s.End()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := len(tr.Spans()); got != workers*per {
		t.Fatalf("got %d spans, want %d", got, workers*per)
	}
}
