package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonlSpan is the JSON-lines export schema: one span per line, flat fields
// first so grep/jq pipelines stay simple, attributes as a nested object.
type jsonlSpan struct {
	TraceID    string         `json:"trace_id"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	Start      string         `json:"start"`
	DurationMs float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// spanEnd returns the span's end time, treating an unfinished span as
// zero-length (exporters run after the request, so this only happens for
// spans a handler forgot to End — better a zero-length span than a lie).
func spanEnd(s *Span) time.Time {
	if s.Finish.IsZero() {
		return s.Start
	}
	return s.Finish
}

// attrMap renders a span's attributes for JSON encoding.
func attrMap(s *Span) map[string]any {
	if len(s.attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(s.attrs))
	for _, a := range s.attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSONL writes one JSON object per span, newline-delimited — the
// format the serving layer appends to its trace log, shaped like the
// slow-query log so the same tooling reads both.
func WriteJSONL(w io.Writer, spans []*Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if s == nil {
			continue
		}
		line := jsonlSpan{
			TraceID:    s.Trace.String(),
			SpanID:     s.ID.String(),
			Name:       s.Name,
			Start:      s.Start.UTC().Format(time.RFC3339Nano),
			DurationMs: float64(spanEnd(s).Sub(s.Start)) / float64(time.Millisecond),
			Attrs:      attrMap(s),
		}
		if !s.Parent.IsZero() {
			line.ParentID = s.Parent.String()
		}
		if err := enc.Encode(&line); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), the subset Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the envelope form of the trace-event format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChrome writes the spans in Chrome trace-event format. Load the file
// in Perfetto (ui.perfetto.dev → "Open trace file") or chrome://tracing to
// see the request's stage waterfall. Timestamps are microseconds relative
// to the earliest span, so traces from different machines line up at zero.
func WriteChrome(w io.Writer, spans []*Span) error {
	var t0 time.Time
	for _, s := range spans {
		if s == nil {
			continue
		}
		if t0.IsZero() || s.Start.Before(t0) {
			t0 = s.Start
		}
	}
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans))}
	for _, s := range spans {
		if s == nil {
			continue
		}
		args := attrMap(s)
		if args == nil {
			args = make(map[string]any, 2)
		}
		args["trace_id"] = s.Trace.String()
		args["span_id"] = s.ID.String()
		if !s.Parent.IsZero() {
			args["parent_id"] = s.Parent.String()
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "kdv",
			Ph:   "X",
			Ts:   float64(s.Start.Sub(t0)) / float64(time.Microsecond),
			Dur:  float64(spanEnd(s).Sub(s.Start)) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}
