package trace

import "context"

// ctxKey carries the request's *Trace through a context.
type ctxKey struct{}

// spanCtxKey carries the innermost active *Span, so nested layers parent
// their spans correctly without threading span handles through call
// signatures.
type spanCtxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil when the request is
// untraced — the disabled tracer, safe to call every method on.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// ContextWithSpan returns ctx with s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan begins a span on the context's trace, parented on the context's
// current span, and returns the span plus a context carrying it. On an
// untraced context it returns (nil, ctx) — both are safe to use as-is.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	t := FromContext(ctx)
	if t == nil {
		return nil, ctx
	}
	s := t.Start(name, SpanFromContext(ctx))
	return s, ContextWithSpan(ctx, s)
}
