// Package trace is the request-scoped counterpart of package telemetry:
// where telemetry aggregates work across all requests, trace records the
// spans of one request — admission, cache lookup, the render stages, the
// response encoding — so a single slow query can be decomposed instead of
// averaged away. The paper's evaluation (Section 6) keeps asking *where* a
// render spends its node evaluations; spans answer that per request the way
// work maps answer it per pixel.
//
// Design constraints mirror the telemetry recorders:
//
//  1. The disabled path is one nil check. Every method is nil-safe — a nil
//     *Trace hands out nil *Spans, and every method of a nil *Span is a
//     no-op — so instrumented code runs untraced requests through a
//     predictable branch, not an interface dispatch, and pays no
//     allocation.
//  2. Tracing a request allocates as little as possible: spans come from a
//     fixed slab inside the Trace (a request's handful of spans fits it),
//     and attributes live in small per-span arrays.
//  3. No dependencies beyond the standard library. Export formats are
//     JSON-lines (grep-able, one span per line) and the Chrome trace-event
//     format, loadable in Perfetto or chrome://tracing (see export.go).
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceID is the W3C 16-byte trace identifier shared by every span of one
// request, across services.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the 32-char lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is the W3C 8-byte span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the 16-char lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// Attr is one key/value annotation on a span. Values are either strings or
// numbers; use the Str / Int / Float64 / DurMs constructors.
type Attr struct {
	Key   string
	str   string
	num   float64
	isNum bool
}

// Str returns a string-valued attribute.
func Str(key, value string) Attr { return Attr{Key: key, str: value} }

// Int returns a number-valued attribute.
func Int(key string, value int) Attr { return Attr{Key: key, num: float64(value), isNum: true} }

// Float64 returns a number-valued attribute.
func Float64(key string, value float64) Attr { return Attr{Key: key, num: value, isNum: true} }

// DurMs returns d as a number-valued attribute in milliseconds.
func DurMs(key string, d time.Duration) Attr {
	return Attr{Key: key, num: float64(d) / float64(time.Millisecond), isNum: true}
}

// Value returns the attribute's value as an any (string or float64), for
// exporters.
func (a Attr) Value() any {
	if a.isNum {
		return a.num
	}
	return a.str
}

// Span is one timed operation inside a trace. Spans are created by
// Trace.Start (or Trace.Add for post-hoc spans with explicit times) and
// closed by End. A nil *Span is a valid no-op recorder.
type Span struct {
	Name   string
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for root spans with no remote parent
	Start  time.Time
	Finish time.Time // zero until End

	attrs []Attr
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Attrs returns the span's attributes (nil for a nil span).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// End closes the span at time.Now. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil || !s.Finish.IsZero() {
		return
	}
	s.Finish = time.Now()
}

// Duration returns Finish − Start, or 0 for an unfinished or nil span.
func (s *Span) Duration() time.Duration {
	if s == nil || s.Finish.IsZero() {
		return 0
	}
	return s.Finish.Sub(s.Start)
}

// slabSize is the number of spans a Trace can hand out without allocating.
// A served render emits under a dozen spans (root, admission, cache,
// render + its stage children, encode), so the slab covers the common case
// with room to spare.
const slabSize = 16

// Trace collects the spans of one request. It is safe for concurrent use;
// a nil *Trace is the valid disabled tracer (Start returns nil, Spans
// returns nil).
type Trace struct {
	mu     sync.Mutex
	id     TraceID
	remote SpanID // parent span propagated in via traceparent (zero if minted)
	slab   [slabSize]Span
	used   int
	spans  []*Span
}

// New returns a Trace with a freshly minted random trace ID.
func New() *Trace {
	t := &Trace{}
	if _, err := rand.Read(t.id[:]); err != nil || t.id.IsZero() {
		// Nothing sane to do without entropy; a fixed non-zero ID keeps the
		// trace valid (W3C forbids all-zero) even if uncorrelatable.
		t.id = TraceID{0: 1}
	}
	return t
}

// Resume returns a Trace continuing a propagated context: spans started
// with a nil parent become children of the remote parent span.
func Resume(id TraceID, parent SpanID) *Trace {
	if id.IsZero() {
		return New()
	}
	return &Trace{id: id, remote: parent}
}

// ID returns the trace ID (zero for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// newSpan takes a span from the slab, falling back to the heap once the
// slab is spent. Callers hold t.mu.
func (t *Trace) newSpan() *Span {
	var s *Span
	if t.used < slabSize {
		s = &t.slab[t.used]
		t.used++
	} else {
		s = new(Span)
	}
	t.spans = append(t.spans, s)
	return s
}

// Start begins a span. A nil parent parents the span on the remote
// propagated span (or nothing, for a minted trace). Returns nil on a nil
// trace.
func (t *Trace) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := t.newSpan()
	s.Name = name
	s.Trace = t.id
	s.ID = newSpanID()
	if parent != nil {
		s.Parent = parent.ID
	} else {
		s.Parent = t.remote
	}
	s.Start = time.Now()
	t.mu.Unlock()
	return s
}

// Add records a span with explicit start and end times — the form for
// stages whose timing is reconstructed after the fact (e.g. the render's
// shared-frontier CPU time, known only once RenderStats lands).
func (t *Trace) Add(name string, parent *Span, start, end time.Time, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := t.newSpan()
	s.Name = name
	s.Trace = t.id
	s.ID = newSpanID()
	if parent != nil {
		s.Parent = parent.ID
	} else {
		s.Parent = t.remote
	}
	s.Start = start
	s.Finish = end
	s.attrs = append(s.attrs, attrs...)
	t.mu.Unlock()
	return s
}

// Spans returns a snapshot of the trace's spans in start order. The spans
// themselves are shared, not copied; callers export after the request's
// spans have all ended.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// newSpanID mints a random non-zero span ID.
func newSpanID() SpanID {
	var id SpanID
	if _, err := rand.Read(id[:]); err != nil || id.IsZero() {
		id = SpanID{0: 1}
	}
	return id
}
