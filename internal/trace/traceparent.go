package trace

import "fmt"

// Header is the canonical name of the W3C trace-context propagation header.
const Header = "traceparent"

// traceparent wire format (https://www.w3.org/TR/trace-context/), version 00:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^  ^trace-id (32 lhex)              ^parent-id (16)   ^flags
//
// Fixed offsets of the version-00 layout; higher versions must start with
// the same prefix and may append "-extra".
const (
	tpLen       = 55
	tpTraceOff  = 3
	tpParentOff = 36
	tpFlagsOff  = 53
)

// ParseTraceparent parses a traceparent header. It accepts any version
// except the forbidden ff, requiring the version-00 prefix layout; unknown
// future versions may carry extra "-"-joined fields, which are ignored (as
// the spec instructs). The sampled flag is not modeled — the serving layer
// traces every request it is asked to trace.
func ParseTraceparent(h string) (TraceID, SpanID, error) {
	var tid TraceID
	var sid SpanID
	if len(h) < tpLen {
		return tid, sid, fmt.Errorf("trace: traceparent too short (%d < %d)", len(h), tpLen)
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, fmt.Errorf("trace: traceparent delimiters malformed")
	}
	ver, ok := hexByte(h[0], h[1])
	if !ok {
		return tid, sid, fmt.Errorf("trace: bad traceparent version %q", h[:2])
	}
	if ver == 0xff {
		return tid, sid, fmt.Errorf("trace: forbidden traceparent version ff")
	}
	if len(h) > tpLen {
		if ver == 0 {
			return tid, sid, fmt.Errorf("trace: version-00 traceparent has trailing data")
		}
		if h[tpLen] != '-' {
			return tid, sid, fmt.Errorf("trace: traceparent trailing data not dash-separated")
		}
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(h[tpTraceOff+2*i], h[tpTraceOff+2*i+1])
		if !ok {
			return TraceID{}, sid, fmt.Errorf("trace: trace-id is not lowercase hex")
		}
		tid[i] = b
	}
	if tid.IsZero() {
		return TraceID{}, sid, fmt.Errorf("trace: all-zero trace-id is invalid")
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(h[tpParentOff+2*i], h[tpParentOff+2*i+1])
		if !ok {
			return TraceID{}, SpanID{}, fmt.Errorf("trace: parent-id is not lowercase hex")
		}
		sid[i] = b
	}
	if sid.IsZero() {
		return TraceID{}, SpanID{}, fmt.Errorf("trace: all-zero parent-id is invalid")
	}
	if _, ok := hexByte(h[tpFlagsOff], h[tpFlagsOff+1]); !ok {
		return TraceID{}, SpanID{}, fmt.Errorf("trace: trace-flags are not lowercase hex")
	}
	return tid, sid, nil
}

// FormatTraceparent renders a version-00 traceparent with the sampled flag
// set (this process recorded the trace, so downstream should too).
func FormatTraceparent(tid TraceID, sid SpanID) string {
	return "00-" + tid.String() + "-" + sid.String() + "-01"
}

// hexByte decodes two lowercase hex digits. The W3C grammar forbids
// uppercase, so this is stricter than encoding/hex.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
