package trace

import (
	"strings"
	"testing"
)

const validTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparentRoundTrip(t *testing.T) {
	tid, sid, err := ParseTraceparent(validTP)
	if err != nil {
		t.Fatal(err)
	}
	if got := tid.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace-id = %s", got)
	}
	if got := sid.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("parent-id = %s", got)
	}
	// Format → Parse is the identity on the IDs (flags are normalized to 01).
	out := FormatTraceparent(tid, sid)
	tid2, sid2, err := ParseTraceparent(out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if tid2 != tid || sid2 != sid {
		t.Fatalf("round trip changed IDs: %v/%v → %v/%v", tid, sid, tid2, sid2)
	}
	if len(out) != tpLen {
		t.Fatalf("formatted length %d, want %d", len(out), tpLen)
	}
}

func TestParseTraceparentMintedRoundTrip(t *testing.T) {
	tr := New()
	s := tr.Start("root", nil)
	h := FormatTraceparent(tr.ID(), s.ID)
	tid, sid, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("minted header %q failed to parse: %v", h, err)
	}
	if tid != tr.ID() || sid != s.ID {
		t.Fatal("minted header round trip lost the IDs")
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"one char short", validTP[:len(validTP)-1]},
		{"bad version hex", "0g" + validTP[2:]},
		{"forbidden version ff", "ff" + validTP[2:]},
		{"uppercase trace-id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"uppercase parent-id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"zero trace-id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero parent-id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"bad flags", validTP[:53] + "zz"},
		{"missing first dash", "00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"missing second dash", "00-4bf92f3577b34da6a3ce929d0e0e4736x00f067aa0ba902b7-01"},
		{"missing third dash", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7x01"},
		{"v00 with trailing data", validTP + "-extra"},
		{"future version trailing junk not dashed", "01" + validTP[2:] + "extra"},
		{"non-hex trace-id", "00-4bf92f3577b34da6a3ce929d0e0e473x-00f067aa0ba902b7-01"},
		{"non-hex parent-id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bx-01"},
	}
	for _, tc := range cases {
		if _, _, err := ParseTraceparent(tc.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", tc.name, tc.in)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Higher versions are accepted with the 00 prefix layout, with or
	// without dash-joined extra fields.
	for _, h := range []string{
		"01" + validTP[2:],
		"cc" + validTP[2:] + "-what-future-versions-append",
	} {
		if _, _, err := ParseTraceparent(h); err != nil {
			t.Errorf("ParseTraceparent(%q) rejected: %v", h, err)
		}
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add(validTP)
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff" + validTP[2:])
	f.Add("01" + validTP[2:] + "-extra")
	f.Add(strings.Repeat("0", 55))
	f.Fuzz(func(t *testing.T, h string) {
		tid, sid, err := ParseTraceparent(h)
		if err != nil {
			return
		}
		// Accepted headers must yield valid IDs whose canonical re-render
		// parses to the same IDs (flags normalize to 01).
		if tid.IsZero() || sid.IsZero() {
			t.Fatalf("accepted %q with a zero ID", h)
		}
		out := FormatTraceparent(tid, sid)
		tid2, sid2, err := ParseTraceparent(out)
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q rejected: %v", out, h, err)
		}
		if tid2 != tid || sid2 != sid {
			t.Fatalf("round trip of %q changed IDs", h)
		}
		// The version-00 layout pins the IDs to fixed offsets of the input.
		if h[3:35] != tid.String() {
			t.Fatalf("trace-id %s does not match input %q", tid, h)
		}
		if h[36:52] != sid.String() {
			t.Fatalf("parent-id %s does not match input %q", sid, h)
		}
	})
}
