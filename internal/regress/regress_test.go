package regress

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
)

func cfg() Config {
	return Config{Kernel: kernel.Gaussian, Gamma: 8, Method: bounds.Quadratic}
}

// bruteNW computes the Nadaraya–Watson estimate directly.
func bruteNW(x geom.Points, y []float64, kern kernel.Kernel, gamma float64, q []float64) (float64, bool) {
	var num, den float64
	for i := 0; i < x.Len(); i++ {
		k := kern.Eval(gamma, geom.Dist2(q, x.At(i)))
		num += y[i] * k
		den += k
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

func sineData(rng *rand.Rand, n int, noise float64) (geom.Points, []float64) {
	coords := make([]float64, 0, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := rng.Float64() * 2 * math.Pi
		coords = append(coords, xv)
		y[i] = math.Sin(xv) + rng.NormFloat64()*noise
	}
	return geom.NewPoints(coords, 1), y
}

func TestNewValidation(t *testing.T) {
	x := geom.NewPoints([]float64{0, 1}, 1)
	if _, err := New(geom.Points{Dim: 1}, nil, cfg()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := New(x, []float64{1}, cfg()); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := cfg()
	bad.Gamma = 0
	if _, err := New(x, []float64{1, 2}, bad); err == nil {
		t.Error("zero gamma accepted")
	}
	if _, err := New(x, []float64{1, math.NaN()}, cfg()); err == nil {
		t.Error("NaN response accepted")
	}
	if _, err := New(x, []float64{1, math.Inf(1)}, cfg()); err == nil {
		t.Error("Inf response accepted")
	}
}

// TestPredictMatchesBruteForce: predictions must agree with the direct
// ratio within the requested tolerance, including negative responses.
func TestPredictMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	x, y := sineData(rng, 4000, 0.05) // sin takes both signs
	for _, m := range []bounds.Method{bounds.MinMax, bounds.Quadratic} {
		c := cfg()
		c.Method = m
		r, err := New(x.Clone(), append([]float64(nil), y...), c)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			q := []float64{rng.Float64() * 2 * math.Pi}
			want, wok := bruteNW(x, y, c.Kernel, c.Gamma, q)
			got, ok, err := r.Predict(q, 1e-4)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wok {
				t.Fatalf("%s: ok=%v want %v at %v", m, ok, wok, q)
			}
			if ok && math.Abs(got-want) > 1e-4*(1+math.Abs(want))*2 {
				t.Fatalf("%s: predict %g, brute force %g at %v", m, got, want, q)
			}
		}
	}
}

// TestPredictRecoverstSine: with dense low-noise data, the regression curve
// must track sin(x) closely.
func TestPredictRecoversSine(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	x, y := sineData(rng, 8000, 0.02)
	r, err := New(x, y, cfg())
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for xq := 0.5; xq < 2*math.Pi-0.5; xq += 0.25 {
		got, ok, err := r.Predict([]float64{xq}, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("prediction undefined at %g", xq)
		}
		if e := math.Abs(got - math.Sin(xq)); e > worst {
			worst = e
		}
	}
	if worst > 0.08 {
		t.Errorf("worst deviation from sin(x): %g", worst)
	}
}

func TestPredictAllPositiveResponses(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	n := 2000
	coords := make([]float64, n)
	y := make([]float64, n)
	for i := range coords {
		coords[i] = rng.Float64() * 10
		y[i] = 5 + coords[i] // strictly positive, linear
	}
	x := geom.NewPoints(coords, 1)
	r, err := New(x.Clone(), y, Config{Kernel: kernel.Gaussian, Gamma: 2, Method: bounds.Quadratic})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := r.Predict([]float64{5}, 1e-4)
	if err != nil || !ok {
		t.Fatalf("predict failed: %v %v", ok, err)
	}
	if math.Abs(got-10) > 0.3 {
		t.Errorf("linear fit at x=5: %g, want ≈10", got)
	}
}

func TestPredictAllNegativeResponses(t *testing.T) {
	x := geom.NewPoints([]float64{0, 1, 2, 3, 4}, 1)
	y := []float64{-2, -2, -2, -2, -2}
	r, err := New(x, y, Config{Kernel: kernel.Gaussian, Gamma: 1, Method: bounds.Quadratic})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := r.Predict([]float64{2}, 1e-6)
	if err != nil || !ok {
		t.Fatalf("predict failed: %v %v", ok, err)
	}
	if math.Abs(got+2) > 1e-4 {
		t.Errorf("constant fit = %g, want −2", got)
	}
}

func TestPredictFarQueryUndefined(t *testing.T) {
	// With a finite-support kernel, a far query has zero density: ok=false.
	x := geom.NewPoints([]float64{0, 0.1, 0.2}, 1)
	y := []float64{1, 2, 3}
	r, err := New(x, y, Config{Kernel: kernel.Triangular, Gamma: 1, Method: bounds.Quadratic})
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := r.Predict([]float64{100}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("far query with finite-support kernel should be undefined")
	}
}

func TestPredictDimMismatch(t *testing.T) {
	x := geom.NewPoints([]float64{0, 1}, 1)
	r, err := New(x, []float64{1, 2}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Predict([]float64{1, 2}, 1e-4); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if r.Dim() != 1 {
		t.Errorf("Dim = %d", r.Dim())
	}
}

// TestPredictionsWithinResponseRange: NW estimates are convex combinations
// of the responses.
func TestPredictionsWithinResponseRange(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	x, y := sineData(rng, 2000, 0.3)
	r, err := New(x, y, cfg())
	if err != nil {
		t.Fatal(err)
	}
	yMin, yMax := y[0], y[0]
	for _, v := range y {
		yMin = math.Min(yMin, v)
		yMax = math.Max(yMax, v)
	}
	for trial := 0; trial < 30; trial++ {
		q := []float64{rng.Float64() * 2 * math.Pi}
		got, ok, err := r.Predict(q, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if ok && (got < yMin-1e-9 || got > yMax+1e-9) {
			t.Fatalf("prediction %g outside response range [%g, %g]", got, yMin, yMax)
		}
	}
}
