// Package regress implements Nadaraya–Watson kernel regression with the
// same bound machinery as εKDV — the "kernel regression" item in the QUAD
// paper's future-work list. The estimator at a query q is the ratio
//
//	ŷ(q) = Σ y_i·K(q, p_i) / Σ K(q, p_i)
//
// whose numerator and denominator are both kernel aggregates. The
// denominator is a plain KDV aggregate; the numerator is a WEIGHTED
// aggregate with weights y_i, which the weighted kd-tree statistics support
// directly — except that responses may be negative, so the numerator is
// split into its positive and negative parts,
//
//	N(q) = N⁺(q) − N⁻(q),   N±(q) = Σ max(±y_i, 0)·K(q, p_i),
//
// each of which is a non-negative weighted aggregate with valid lower/upper
// bounds. Interval arithmetic then brackets the ratio, and the three
// refiners (N⁺, N⁻, D) are advanced — most uncertain first — until the
// bracket's width is within the requested tolerance of the prediction.
package regress

import (
	"fmt"
	"math"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// Config parameterizes the regressor.
type Config struct {
	Kernel kernel.Kernel
	// Gamma is the kernel distance scale (must be positive).
	Gamma    float64
	Method   bounds.Method
	LeafSize int
}

// Regressor predicts responses by locally weighted averaging.
type Regressor struct {
	den *engine.Engine // Σ K — the density aggregate
	pos *engine.Engine // Σ y⁺·K, nil if no positive responses
	neg *engine.Engine // Σ y⁻·K, nil if no negative responses
	dim int
	// yMin/yMax bound every prediction (a weighted average of responses).
	yMin, yMax float64
}

// New fits a regressor to (X, y). X is a flat point buffer; y must have one
// response per point.
func New(x geom.Points, y []float64, cfg Config) (*Regressor, error) {
	n := x.Len()
	if n == 0 {
		return nil, fmt.Errorf("regress: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("regress: %d responses for %d points", len(y), n)
	}
	if cfg.Gamma <= 0 {
		return nil, fmt.Errorf("regress: gamma must be positive, got %g", cfg.Gamma)
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("regress: non-finite response %g at index %d", v, i)
		}
	}
	r := &Regressor{dim: x.Dim, yMin: y[0], yMax: y[0]}
	pos := make([]float64, n)
	neg := make([]float64, n)
	var hasPos, hasNeg bool
	for i, v := range y {
		if v > 0 {
			pos[i] = v
			hasPos = true
		} else if v < 0 {
			neg[i] = -v
			hasNeg = true
		}
		if v < r.yMin {
			r.yMin = v
		}
		if v > r.yMax {
			r.yMax = v
		}
	}

	build := func(weights []float64) (*engine.Engine, error) {
		ev, err := bounds.NewEvaluator(cfg.Kernel, cfg.Gamma, 1, cfg.Method, x.Dim)
		if err != nil {
			return nil, err
		}
		tree, err := kdtree.Build(x.Clone(), kdtree.Options{
			LeafSize: cfg.LeafSize, Gram: ev.NeedsGram(), Weights: weights,
		})
		if err != nil {
			return nil, err
		}
		return engine.New(tree, ev)
	}
	var err error
	if r.den, err = build(nil); err != nil {
		return nil, err
	}
	if hasPos {
		if r.pos, err = build(pos); err != nil {
			return nil, err
		}
	}
	if hasNeg {
		if r.neg, err = build(neg); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Dim returns the feature dimensionality.
func (r *Regressor) Dim() int { return r.dim }

// Predict returns ŷ(q) with |result − ŷ(q)| ≤ tol·(1 + |ŷ(q)|): the three
// aggregates are refined until the ratio bracket is that narrow. ok is
// false when the local density underflows to zero (no kernel mass at q —
// the estimator is undefined there).
func (r *Regressor) Predict(q []float64, tol float64) (value float64, ok bool, err error) {
	if len(q) != r.dim {
		return 0, false, fmt.Errorf("regress: query has dim %d, want %d", len(q), r.dim)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	den := r.den.Clone().StartRefine(q)
	var pos, neg *engine.Refiner
	if r.pos != nil {
		pos = r.pos.Clone().StartRefine(q)
	}
	if r.neg != nil {
		neg = r.neg.Clone().StartRefine(q)
	}

	refBounds := func(rf *engine.Refiner) (float64, float64) {
		if rf == nil {
			return 0, 0
		}
		return rf.Bounds()
	}
	for {
		dLB, dUB := den.Bounds()
		if dUB <= 0 {
			// No kernel mass reaches q.
			return 0, false, nil
		}
		pLB, pUB := refBounds(pos)
		nLB, nUB := refBounds(neg)
		numLB := pLB - nUB
		numUB := pUB - nLB
		// Ratio bracket: numerator interval over denominator interval, with
		// the prediction capped by the response range (an NW estimate is a
		// convex combination of the y_i).
		lo, hi := r.yMin, r.yMax
		if dLB > 0 {
			l, h := ratioBracket(numLB, numUB, dLB, dUB)
			if l > lo {
				lo = l
			}
			if h < hi {
				hi = h
			}
		}
		mid := (lo + hi) / 2
		if hi-lo <= 2*tol*(1+math.Abs(mid)) {
			return mid, true, nil
		}
		// Refine whichever aggregate is most uncertain, scaled into
		// prediction units: numerator gaps divide by dLB; the denominator
		// gap matters in proportion to the prediction magnitude.
		best := den
		bestScore := (dUB - dLB) * math.Max(math.Abs(mid), 1)
		if pos != nil && !pos.Exhausted() {
			if s := pUB - pLB; s > bestScore || best.Exhausted() {
				best, bestScore = pos, s
			}
		}
		if neg != nil && !neg.Exhausted() {
			if s := nUB - nLB; s > bestScore || best.Exhausted() {
				best, bestScore = neg, s
			}
		}
		if best.Exhausted() {
			// Everything exact and the bracket still wide: numerically
			// degenerate (density underflow); report the midpoint.
			return mid, dUB > 0, nil
		}
		best.Step()
	}
}

// ratioBracket returns the range of num/den over num ∈ [numLB, numUB],
// den ∈ [dLB, dUB] with 0 < dLB ≤ dUB.
func ratioBracket(numLB, numUB, dLB, dUB float64) (lo, hi float64) {
	candidates := [4]float64{numLB / dLB, numLB / dUB, numUB / dLB, numUB / dUB}
	lo, hi = candidates[0], candidates[0]
	for _, c := range candidates[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return lo, hi
}
