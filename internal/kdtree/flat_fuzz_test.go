package kdtree_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kdtree/flat"
)

// FuzzFlatTreeInvariants builds the pointer tree and its flat SoA conversion
// over fuzzer-chosen datasets and asserts the flattening contract:
//
//   - structural invariants of the flat arrays — child ids in range and
//     monotone (BFS order), adjacent sibling ids, leaf markers paired,
//     subtree point intervals exactly partitioned by the children;
//   - node-for-node statistics equality with the pointer tree within 0 ULP
//     (the conversion copies, never recomputes);
//   - flat.Build (the rebuild-from-points path) bit-identical to flattening
//     a fresh pointer build over the same buffer.
func FuzzFlatTreeInvariants(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(8), 1.0, false)
	f.Add(int64(7), uint8(200), uint8(1), 100.0, true)
	f.Add(int64(3), uint8(5), uint8(30), 0.0, true) // all-identical points
	f.Add(int64(11), uint8(31), uint8(0), 2.5, false)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, leafRaw uint8, spread float64, weighted bool) {
		n := int(nRaw)%200 + 1
		leaf := int(leafRaw) % 40
		if math.IsNaN(spread) || math.IsInf(spread, 0) {
			spread = 1
		}
		spread = math.Abs(math.Mod(spread, 1e4))
		rng := rand.New(rand.NewSource(seed))
		coords := make([]float64, 2*n)
		for i := range coords {
			coords[i] = spread * math.Floor(8*rng.Float64()) / 8
		}
		coords2 := append([]float64(nil), coords...)
		var weights, weights2 []float64
		if weighted {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = rng.Float64()
			}
			weights2 = append([]float64(nil), weights...)
		}

		tree, err := kdtree.Build(geom.NewPoints(coords, 2), kdtree.Options{LeafSize: leaf, Gram: true, Weights: weights})
		if err != nil {
			t.Fatalf("Build(n=%d, leaf=%d): %v", n, leaf, err)
		}
		ft, err := flat.FromTree(tree)
		if err != nil {
			t.Fatalf("FromTree: %v", err)
		}

		nn := ft.NumNodes()
		if nn != tree.NumNodes() {
			t.Fatalf("flat has %d nodes, pointer tree %d", nn, tree.NumNodes())
		}
		if ft.LeafSize != tree.LeafSize {
			t.Fatalf("flat leaf size %d, pointer %d", ft.LeafSize, tree.LeafSize)
		}

		// Structural pass over the arrays alone.
		for id := int32(0); id < int32(nn); id++ {
			l, r := ft.Left[id], ft.Right[id]
			if (l == flat.NoChild) != (r == flat.NoChild) {
				t.Fatalf("node %d has one child (%d, %d)", id, l, r)
			}
			if ft.Start[id] < 0 || ft.End[id] > int32(n) || ft.Start[id] >= ft.End[id] {
				t.Fatalf("node %d range [%d,%d) outside [0,%d)", id, ft.Start[id], ft.End[id], n)
			}
			if l == flat.NoChild {
				continue
			}
			if l <= id || r <= id || int(l) >= nn || int(r) >= nn {
				t.Fatalf("node %d children (%d, %d) not BFS-monotone in [0,%d)", id, l, r, nn)
			}
			if r != l+1 {
				t.Fatalf("node %d siblings %d, %d not adjacent", id, l, r)
			}
			// Children partition the parent's point interval exactly.
			if ft.Start[l] != ft.Start[id] || ft.End[r] != ft.End[id] || ft.End[l] != ft.Start[r] {
				t.Fatalf("node %d children [%d,%d)+[%d,%d) do not partition [%d,%d)",
					id, ft.Start[l], ft.End[l], ft.Start[r], ft.End[r], ft.Start[id], ft.End[id])
			}
		}

		// Statistics pass: replay the conversion's BFS and require 0-ULP
		// equality against each pointer node.
		d := tree.Dim()
		queue := []*kdtree.Node{tree.Root}
		for id := 0; id < len(queue); id++ {
			nd := queue[id]
			if nd.Left != nil {
				queue = append(queue, nd.Left, nd.Right)
			}
			if (nd.Left == nil) != (ft.Left[id] == flat.NoChild) {
				t.Fatalf("node %d leafness differs", id)
			}
			if int(ft.Start[id]) != nd.Start || int(ft.End[id]) != nd.End {
				t.Fatalf("node %d range [%d,%d) != pointer [%d,%d)", id, ft.Start[id], ft.End[id], nd.Start, nd.End)
			}
			eq := func(name string, a, b float64) {
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("node %d %s: flat %x != pointer %x", id, name, math.Float64bits(a), math.Float64bits(b))
				}
			}
			eq("SumW", ft.SumW[id], nd.SumW)
			eq("SumNorm2", ft.SumNorm2[id], nd.SumNorm2)
			eq("SumNorm4", ft.SumNorm4[id], nd.SumNorm4)
			eq("Radius", ft.Radius[id], nd.Radius)
			for k := 0; k < d; k++ {
				eq("RectMin", ft.RectMin[id*d+k], nd.Rect.Min[k])
				eq("RectMax", ft.RectMax[id*d+k], nd.Rect.Max[k])
				eq("Center", ft.Center[id*d+k], nd.Center[k])
				eq("SumP", ft.SumP[id*d+k], nd.SumP[k])
				eq("SumNorm2P", ft.SumNorm2P[id*d+k], nd.SumNorm2P[k])
			}
			if tree.HasGram() != ft.HasGram() {
				t.Fatalf("node %d gram presence differs", id)
			}
			if ft.HasGram() {
				for k := 0; k < d*d; k++ {
					eq("Gram", ft.Gram[id*d*d+k], nd.Gram[k])
				}
			}
		}
		if len(queue) != nn {
			t.Fatalf("BFS replay visited %d nodes, flat has %d", len(queue), nn)
		}

		// Rebuild-from-points path: building flat directly over an identical
		// buffer must reproduce every array bit-for-bit (the pointer builder
		// it runs is deterministic).
		ft2, err := flat.Build(geom.NewPoints(coords2, 2), kdtree.Options{LeafSize: leaf, Gram: true, Weights: weights2})
		if err != nil {
			t.Fatalf("flat.Build: %v", err)
		}
		if ft2.NumNodes() != nn {
			t.Fatalf("rebuild has %d nodes, conversion %d", ft2.NumNodes(), nn)
		}
		eqSliceI := func(name string, a, b []int32) {
			if len(a) != len(b) {
				t.Fatalf("%s length %d != %d", name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s[%d]: rebuild %d != conversion %d", name, i, a[i], b[i])
				}
			}
		}
		eqSliceF := func(name string, a, b []float64) {
			if len(a) != len(b) {
				t.Fatalf("%s length %d != %d", name, len(a), len(b))
			}
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("%s[%d]: rebuild %x != conversion %x", name, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
				}
			}
		}
		eqSliceI("Left", ft2.Left, ft.Left)
		eqSliceI("Right", ft2.Right, ft.Right)
		eqSliceI("Start", ft2.Start, ft.Start)
		eqSliceI("End", ft2.End, ft.End)
		eqSliceF("RectMin", ft2.RectMin, ft.RectMin)
		eqSliceF("RectMax", ft2.RectMax, ft.RectMax)
		eqSliceF("Center", ft2.Center, ft.Center)
		eqSliceF("SumP", ft2.SumP, ft.SumP)
		eqSliceF("SumNorm2P", ft2.SumNorm2P, ft.SumNorm2P)
		eqSliceF("SumW", ft2.SumW, ft.SumW)
		eqSliceF("SumNorm2", ft2.SumNorm2, ft.SumNorm2)
		eqSliceF("SumNorm4", ft2.SumNorm4, ft.SumNorm4)
		eqSliceF("Radius", ft2.Radius, ft.Radius)
		eqSliceF("Gram", ft2.Gram, ft.Gram)
		eqSliceF("Coords", ft2.Pts.Coords, ft.Pts.Coords)
	})
}
