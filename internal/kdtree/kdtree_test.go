package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
)

func randomPoints(rng *rand.Rand, n, dim int, scale float64) geom.Points {
	coords := make([]float64, n*dim)
	for i := range coords {
		coords[i] = rng.NormFloat64() * scale
	}
	return geom.NewPoints(coords, dim)
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(geom.Points{Dim: 2}, Options{}); err == nil {
		t.Fatal("Build over empty set should fail")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	pts := geom.NewPoints([]float64{1, 2}, 2)
	tr, err := Build(pts, Options{Gram: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() || tr.Root.Size() != 1 {
		t.Fatalf("single-point tree: leaf=%v size=%d", tr.Root.IsLeaf(), tr.Root.Size())
	}
	if tr.Root.SumW != 1 {
		t.Errorf("Count = %g", tr.Root.SumW)
	}
}

func TestBuildAllIdenticalPoints(t *testing.T) {
	coords := make([]float64, 0, 200)
	for i := 0; i < 100; i++ {
		coords = append(coords, 3, 4)
	}
	tr, err := Build(geom.NewPoints(coords, 2), Options{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Identical points cannot be split; the root must be a (large) leaf and
	// the build must not recurse forever.
	if !tr.Root.IsLeaf() {
		t.Error("identical-point tree should be a single leaf")
	}
	if tr.Root.Size() != 100 {
		t.Errorf("Size = %d", tr.Root.Size())
	}
}

func TestLeafSizesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randomPoints(rng, 5000, 2, 10)
	tr, err := Build(pts, Options{LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	tr.Walk(func(n *Node) bool {
		if n.IsLeaf() && n.Size() > 16 {
			t.Errorf("leaf of size %d exceeds LeafSize 16", n.Size())
		}
		if !n.IsLeaf() {
			if n.Left.Start != n.Start || n.Right.End != n.End || n.Left.End != n.Right.Start {
				t.Errorf("children do not partition [%d,%d): left=[%d,%d) right=[%d,%d)",
					n.Start, n.End, n.Left.Start, n.Left.End, n.Right.Start, n.Right.End)
			}
		}
		return true
	})
}

func TestPointsPreservedUpToPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	orig := randomPoints(rng, 1000, 3, 5)
	// Sum per dimension is permutation-invariant.
	var wantSum [3]float64
	for i := 0; i < orig.Len(); i++ {
		p := orig.At(i)
		for j := 0; j < 3; j++ {
			wantSum[j] += p[j]
		}
	}
	tr, err := Build(orig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var gotSum [3]float64
	for i := 0; i < tr.Pts.Len(); i++ {
		p := tr.Pts.At(i)
		for j := 0; j < 3; j++ {
			gotSum[j] += p[j]
		}
	}
	for j := 0; j < 3; j++ {
		if math.Abs(gotSum[j]-wantSum[j]) > 1e-6 {
			t.Errorf("dim %d: sum %g after build, want %g", j, gotSum[j], wantSum[j])
		}
	}
}

func TestRectsContainPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 2000, 2, 3)
	tr, err := Build(pts, Options{LeafSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	tr.Walk(func(n *Node) bool {
		for i := n.Start; i < n.End; i++ {
			if !n.Rect.Contains(tr.Pts.At(i)) {
				t.Fatalf("node [%d,%d) rect does not contain point %d", n.Start, n.End, i)
			}
		}
		return true
	})
}

// TestNodeStatsMatchBruteForce is the load-bearing test: every node's
// centered moments must reproduce the brute-force Σdist² and Σdist⁴ for
// arbitrary queries.
func TestNodeStatsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, dim := range []int{1, 2, 3, 5} {
		pts := randomPoints(rng, 600, dim, 4)
		tr, err := Build(pts, Options{LeafSize: 10, Gram: true})
		if err != nil {
			t.Fatal(err)
		}
		scratch := make([]float64, dim)
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, dim)
			for i := range q {
				q[i] = rng.NormFloat64() * 6
			}
			tr.Walk(func(n *Node) bool {
				var want2, want4 float64
				for i := n.Start; i < n.End; i++ {
					d2 := geom.Dist2(q, tr.Pts.At(i))
					want2 += d2
					want4 += d2 * d2
				}
				got2 := n.SumDist2(q, scratch)
				got4 := n.SumDist4(q, scratch)
				if relErr(got2, want2) > 1e-9 {
					t.Fatalf("dim=%d SumDist2 = %g, want %g (node size %d)", dim, got2, want2, n.Size())
				}
				if relErr(got4, want4) > 1e-8 {
					t.Fatalf("dim=%d SumDist4 = %g, want %g (node size %d)", dim, got4, want4, n.Size())
				}
				f2, f4 := n.SumDist24(q, scratch)
				if f2 != got2 || relErr(f4, got4) > 1e-12 {
					t.Fatalf("dim=%d SumDist24 = (%g, %g), separate = (%g, %g)", dim, f2, f4, got2, got4)
				}
				// Only descend a few levels; children repeat the check.
				return n.Size() > 50
			})
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSumDist4FarQueryStability checks the centered-moment formulation stays
// accurate when the query is far from the node (where the naive uncentered
// expansion loses digits).
func TestSumDist4FarQueryStability(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	coords := make([]float64, 0, 400)
	for i := 0; i < 200; i++ {
		coords = append(coords, 1000+rng.Float64(), 2000+rng.Float64())
	}
	pts := geom.NewPoints(coords, 2)
	tr, err := Build(pts, Options{LeafSize: 16, Gram: true})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{-5000, 7000}
	scratch := make([]float64, 2)
	var want float64
	for i := 0; i < pts.Len(); i++ {
		d2 := geom.Dist2(q, tr.Pts.At(i))
		want += d2 * d2
	}
	got := tr.Root.SumDist4(q, scratch)
	if relErr(got, want) > 1e-10 {
		t.Errorf("far-query SumDist4 rel err %g (got %g, want %g)", relErr(got, want), got, want)
	}
}

func TestSumDist4WithoutGramPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pts := randomPoints(rng, 50, 2, 1)
	tr, err := Build(pts, Options{Gram: false})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SumDist4 without Gram did not panic")
		}
	}()
	tr.Root.SumDist4([]float64{0, 0}, make([]float64, 2))
}

func TestNumNodesAndHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	pts := randomPoints(rng, 1024, 2, 1)
	tr, err := Build(pts, Options{LeafSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() < 1024 {
		t.Errorf("NumNodes = %d, want ≥ 1024 (one per point at LeafSize 1)", tr.NumNodes())
	}
	h := tr.Height()
	if h < 10 || h > 40 {
		t.Errorf("Height = %d, implausible for 1024 points with median splits", h)
	}
}

func TestWalkPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	pts := randomPoints(rng, 500, 2, 1)
	tr, err := Build(pts, Options{LeafSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.Walk(func(n *Node) bool {
		count++
		return false // prune immediately
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes, want 1", count)
	}
}

func TestDefaultLeafSize(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := randomPoints(rng, 500, 2, 1)
	tr, err := Build(pts, Options{LeafSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.LeafSize != DefaultLeafSize {
		t.Errorf("LeafSize = %d, want default %d", tr.LeafSize, DefaultLeafSize)
	}
	if tr.Dim() != 2 {
		t.Errorf("Dim = %d", tr.Dim())
	}
	if tr.HasGram() {
		t.Error("HasGram should be false")
	}
}

func TestSelectNthOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pts := randomPoints(rng, 501, 1, 10)
	tr := &Tree{Pts: pts, LeafSize: 1}
	nth := 250
	tr.selectNth(0, pts.Len(), nth, 0)
	pivot := pts.At(nth)[0]
	for i := 0; i < nth; i++ {
		if pts.At(i)[0] > pivot {
			t.Fatalf("element %d (%g) left of nth exceeds pivot %g", i, pts.At(i)[0], pivot)
		}
	}
	for i := nth + 1; i < pts.Len(); i++ {
		if pts.At(i)[0] < pivot {
			t.Fatalf("element %d (%g) right of nth below pivot %g", i, pts.At(i)[0], pivot)
		}
	}
}
