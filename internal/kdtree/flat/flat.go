// Package flat is the contiguous struct-of-arrays (SoA) representation of
// the kdtree package's pointer tree — the render engine's production memory
// layout. The pointer tree allocates every node and each of its five moment
// slices separately, so the refinement hot loop (millions of node visits per
// raster) is bound by cache misses chasing node pointers and slice headers.
// The flat tree stores the same nodes as parallel arrays indexed by an int32
// node id:
//
//   - child and point indices are int32 (half the pointer width, no GC scan),
//   - per-node scalars (SumW, SumNorm2, SumNorm4, Radius) are one float64
//     array each,
//   - per-node vectors (rect corners, Center, SumP, SumNorm2P) are d-strided
//     arrays, and the optional Gram matrices are d²-strided,
//
// laid out in BFS order: the top of the tree — the part every query walks —
// occupies a contiguous prefix, and each node's two children are adjacent,
// so expanding a node touches one cache line of ids instead of two heap
// objects. (BFS is the breadth-first special case of the van Emde Boas
// blocking family: with the whole hot top fitting in L2 for realistic trees,
// the deeper vEB recursion buys nothing here and BFS keeps ids monotone in
// depth, which the structural invariants below exploit.)
//
// Correctness contract: every query-time method mirrors its pointer-tree
// counterpart operation for operation — loops are unrolled for d == 2 but
// never reassociated — so bound engines running on either representation
// produce bit-identical rasters. The conversion copies node statistics
// verbatim (0 ULP), which the FuzzFlatTreeInvariants target and the
// conformance flat-vs-pointer differential pass enforce.
package flat

import (
	"fmt"
	"math"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
)

// NoChild marks an absent child index (leaves).
const NoChild = int32(-1)

// Tree is the SoA kd-tree. All slices are indexed by node id (BFS order,
// root = 0); vector fields are strided by the tree's dimension d, Gram by d².
type Tree struct {
	// Pts and Weights alias the source tree's reordered point buffer; leaves
	// remain contiguous coordinate ranges.
	Pts     geom.Points
	Weights []float64

	// Left and Right are child node ids, NoChild for leaves. A node has
	// either two children or none, exactly like the pointer tree.
	Left, Right []int32
	// Start and End delimit the node's point range [Start, End) in Pts.
	Start, End []int32

	// RectMin and RectMax are the node MBR corners (d-strided).
	RectMin, RectMax []float64
	// Center is the MBR center the moments are taken around (d-strided).
	Center []float64
	// SumP is Σw·(p−Center) (d-strided); SumNorm2P is Σw·‖p−Center‖²·(p−Center).
	SumP, SumNorm2P []float64
	// SumW, SumNorm2, SumNorm4 and Radius are the per-node scalar stats.
	SumW, SumNorm2, SumNorm4, Radius []float64
	// Gram is Σw·(p−Center)·(p−Center)ᵀ row-major (d²-strided), nil when the
	// source tree was built without the Gram statistic.
	Gram []float64

	// LeafSize is the source tree's leaf capacity.
	LeafSize int

	dim      int
	numNodes int
}

// FromTree flattens a built pointer tree in one BFS pass. Node statistics
// are copied verbatim (bit-identical); the point buffer is shared, not
// copied.
func FromTree(t *kdtree.Tree) (*Tree, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("flat: nil or empty source tree")
	}
	d := t.Dim()
	n := t.NumNodes()
	ft := &Tree{
		Pts:       t.Pts,
		Weights:   t.Weights,
		LeafSize:  t.LeafSize,
		dim:       d,
		numNodes:  n,
		Left:      make([]int32, 0, n),
		Right:     make([]int32, 0, n),
		Start:     make([]int32, 0, n),
		End:       make([]int32, 0, n),
		RectMin:   make([]float64, 0, n*d),
		RectMax:   make([]float64, 0, n*d),
		Center:    make([]float64, 0, n*d),
		SumP:      make([]float64, 0, n*d),
		SumNorm2P: make([]float64, 0, n*d),
		SumW:      make([]float64, 0, n),
		SumNorm2:  make([]float64, 0, n),
		SumNorm4:  make([]float64, 0, n),
		Radius:    make([]float64, 0, n),
	}
	if t.HasGram() {
		ft.Gram = make([]float64, 0, n*d*d)
	}
	// BFS: assign ids in queue order; children are therefore adjacent (the
	// queue appends them together) and ids are monotone in depth.
	queue := make([]*kdtree.Node, 0, n)
	queue = append(queue, t.Root)
	for head := 0; head < len(queue); head++ {
		nd := queue[head]
		id := int32(len(ft.Left))
		_ = id
		if nd.Left != nil {
			ft.Left = append(ft.Left, int32(len(queue)))
			ft.Right = append(ft.Right, int32(len(queue)+1))
			queue = append(queue, nd.Left, nd.Right)
		} else {
			ft.Left = append(ft.Left, NoChild)
			ft.Right = append(ft.Right, NoChild)
		}
		ft.Start = append(ft.Start, int32(nd.Start))
		ft.End = append(ft.End, int32(nd.End))
		ft.RectMin = append(ft.RectMin, nd.Rect.Min...)
		ft.RectMax = append(ft.RectMax, nd.Rect.Max...)
		ft.Center = append(ft.Center, nd.Center...)
		ft.SumP = append(ft.SumP, nd.SumP...)
		ft.SumNorm2P = append(ft.SumNorm2P, nd.SumNorm2P...)
		ft.SumW = append(ft.SumW, nd.SumW)
		ft.SumNorm2 = append(ft.SumNorm2, nd.SumNorm2)
		ft.SumNorm4 = append(ft.SumNorm4, nd.SumNorm4)
		ft.Radius = append(ft.Radius, nd.Radius)
		if ft.Gram != nil {
			ft.Gram = append(ft.Gram, nd.Gram...)
		}
	}
	if len(ft.Left) != n {
		return nil, fmt.Errorf("flat: BFS visited %d nodes, tree reports %d", len(ft.Left), n)
	}
	return ft, nil
}

// Build constructs a flat tree directly from points: the rebuild-from-points
// path for streaming re-ingest. It runs the pointer builder (which reorders
// pts in place, exactly like kdtree.Build) and flattens the result, so a
// rebuilt flat tree is bit-identical to flattening a fresh pointer build
// over the same buffer.
func Build(pts geom.Points, opt kdtree.Options) (*Tree, error) {
	t, err := kdtree.Build(pts, opt)
	if err != nil {
		return nil, err
	}
	return FromTree(t)
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return t.numNodes }

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.dim }

// HasGram reports whether nodes carry the Gram statistic.
func (t *Tree) HasGram() bool { return t.Gram != nil }

// IsLeaf reports whether node id has no children.
func (t *Tree) IsLeaf(id int32) bool { return t.Left[id] == NoChild }

// Size returns the number of points under node id.
func (t *Tree) Size(id int32) int { return int(t.End[id] - t.Start[id]) }

// WeightAt returns point i's weight (1 for unweighted trees).
func (t *Tree) WeightAt(i int) float64 {
	if t.Weights == nil {
		return 1
	}
	return t.Weights[i]
}

// Rect returns a view of node id's MBR backed by the tree's arrays. The
// returned rect must not be mutated.
func (t *Tree) Rect(id int32) geom.Rect {
	o := int(id) * t.dim
	return geom.Rect{Min: t.RectMin[o : o+t.dim : o+t.dim], Max: t.RectMax[o : o+t.dim : o+t.dim]}
}

// CenterAt returns a view of node id's moment center.
func (t *Tree) CenterAt(id int32) []float64 {
	o := int(id) * t.dim
	return t.Center[o : o+t.dim : o+t.dim]
}

// MinDist2 returns the squared distance from q to node id's MBR — the SoA
// counterpart of geom.Rect.MinDist2, same per-dimension operations.
func (t *Tree) MinDist2(id int32, q []float64) float64 {
	o := int(id) * t.dim
	if len(q) == 2 {
		mn, mx := t.RectMin[o:o+2:o+2], t.RectMax[o:o+2:o+2]
		var s float64
		v := q[0]
		switch {
		case v < mn[0]:
			d := mn[0] - v
			s += d * d
		case v > mx[0]:
			d := v - mx[0]
			s += d * d
		}
		v = q[1]
		switch {
		case v < mn[1]:
			d := mn[1] - v
			s += d * d
		case v > mx[1]:
			d := v - mx[1]
			s += d * d
		}
		return s
	}
	return t.Rect(id).MinDist2(q)
}

// MaxDist2 returns the squared distance from q to the farthest point of node
// id's MBR — the SoA counterpart of geom.Rect.MaxDist2.
func (t *Tree) MaxDist2(id int32, q []float64) float64 {
	o := int(id) * t.dim
	if len(q) == 2 {
		mn, mx := t.RectMin[o:o+2:o+2], t.RectMax[o:o+2:o+2]
		var s float64
		for i := 0; i < 2; i++ {
			v := q[i]
			dLo := v - mn[i]
			dHi := mx[i] - v
			if dLo < 0 {
				dLo = -dLo
			}
			if dHi < 0 {
				dHi = -dHi
			}
			d := dLo
			if dHi > d {
				d = dHi
			}
			s += d * d
		}
		return s
	}
	return t.Rect(id).MaxDist2(q)
}

// Dist2Center returns the squared distance from q to node id's moment
// center, mirroring geom.Dist2(q, n.Center).
func (t *Tree) Dist2Center(id int32, q []float64) float64 {
	o := int(id) * t.dim
	c := t.Center[o : o+t.dim : o+t.dim]
	var s float64
	for i, v := range q {
		d := v - c[i]
		s += d * d
	}
	return s
}

// SumDist2 returns Σw·dist(q,p)² over node id's points in O(d) from the
// centered moments — Node.SumDist2 with the d == 2 loop unrolled.
func (t *Tree) SumDist2(id int32, q, scratch []float64) float64 {
	o := int(id) * t.dim
	if len(q) == 2 {
		c := t.Center[o : o+2 : o+2]
		sp := t.SumP[o : o+2 : o+2]
		qc0 := q[0] - c[0]
		qc1 := q[1] - c[1]
		var qn2 float64
		qn2 += qc0 * qc0
		qn2 += qc1 * qc1
		var dot float64
		dot += qc0 * sp[0]
		dot += qc1 * sp[1]
		return t.SumW[id]*qn2 - 2*dot + t.SumNorm2[id]
	}
	d := t.dim
	c := t.Center[o : o+d : o+d]
	qc := scratch[:len(q)]
	var qn2 float64
	for i := range q {
		qc[i] = q[i] - c[i]
		qn2 += qc[i] * qc[i]
	}
	return t.SumW[id]*qn2 - 2*geom.Dot(qc, t.SumP[o:o+d:o+d]) + t.SumNorm2[id]
}

// SumDist24 returns both Σw·dist² and Σw·dist⁴ in one pass — Node.SumDist24
// with the d == 2 loops unrolled. It requires the Gram statistic.
func (t *Tree) SumDist24(id int32, q, scratch []float64) (s2, s4 float64) {
	if t.Gram == nil {
		panic("flat: SumDist24 requires a tree built with Options.Gram")
	}
	o := int(id) * t.dim
	if len(q) == 2 {
		c := t.Center[o : o+2 : o+2]
		sp := t.SumP[o : o+2 : o+2]
		s2p := t.SumNorm2P[o : o+2 : o+2]
		g := t.Gram[int(id)*4 : int(id)*4+4 : int(id)*4+4]
		qc0 := q[0] - c[0]
		qc1 := q[1] - c[1]
		var qn2 float64
		qn2 += qc0 * qc0
		qn2 += qc1 * qc1
		var dotA float64
		dotA += qc0 * sp[0]
		dotA += qc1 * sp[1]
		sumW := t.SumW[id]
		sumN2 := t.SumNorm2[id]
		s2 = sumW*qn2 - 2*dotA + sumN2
		var quad float64
		var s float64
		s += g[0] * qc0
		s += g[1] * qc1
		quad += qc0 * s
		s = 0
		s += g[2] * qc0
		s += g[3] * qc1
		quad += qc1 * s
		var dotV float64
		dotV += qc0 * s2p[0]
		dotV += qc1 * s2p[1]
		s4 = sumW*qn2*qn2 - 4*qn2*dotA - 4*dotV +
			2*qn2*sumN2 + t.SumNorm4[id] + 4*quad
		return s2, s4
	}
	d := t.dim
	c := t.Center[o : o+d : o+d]
	qc := scratch[:d]
	var qn2 float64
	for i := 0; i < d; i++ {
		qc[i] = q[i] - c[i]
		qn2 += qc[i] * qc[i]
	}
	dotA := geom.Dot(qc, t.SumP[o:o+d:o+d])
	s2 = t.SumW[id]*qn2 - 2*dotA + t.SumNorm2[id]
	var quad float64
	gram := t.Gram[int(id)*d*d:]
	for r := 0; r < d; r++ {
		row := gram[r*d : (r+1)*d]
		var s float64
		for cc := 0; cc < d; cc++ {
			s += row[cc] * qc[cc]
		}
		quad += qc[r] * s
	}
	s4 = t.SumW[id]*qn2*qn2 - 4*qn2*dotA - 4*geom.Dot(qc, t.SumNorm2P[o:o+d:o+d]) +
		2*qn2*t.SumNorm2[id] + t.SumNorm4[id] + 4*quad
	return s2, s4
}

// RectSumDist2 returns the exact range of SumDist2 over every query point in
// the rectangle — Node.RectSumDist2 with the d == 2 loop unrolled.
func (t *Tree) RectSumDist2(id int32, rect geom.Rect) (lo, hi float64) {
	w := t.SumW[id]
	if w <= 0 {
		return 0, 0
	}
	o := int(id) * t.dim
	var m2, sumMin, sumMax float64
	if t.dim == 2 {
		c := t.Center[o : o+2 : o+2]
		sp := t.SumP[o : o+2 : o+2]
		for d := 0; d < 2; d++ {
			m := sp[d] / w
			m2 += sp[d] * m
			qlo := rect.Min[d] - c[d] - m
			qhi := rect.Max[d] - c[d] - m
			switch {
			case qlo > 0:
				sumMin += qlo * qlo
			case qhi < 0:
				sumMin += qhi * qhi
			}
			if lo2, hi2 := qlo*qlo, qhi*qhi; lo2 > hi2 {
				sumMax += lo2
			} else {
				sumMax += hi2
			}
		}
	} else {
		c := t.Center[o : o+t.dim : o+t.dim]
		sp := t.SumP[o : o+t.dim : o+t.dim]
		for d := range c {
			m := sp[d] / w
			m2 += sp[d] * m
			qlo := rect.Min[d] - c[d] - m
			qhi := rect.Max[d] - c[d] - m
			switch {
			case qlo > 0:
				sumMin += qlo * qlo
			case qhi < 0:
				sumMin += qhi * qhi
			}
			if lo2, hi2 := qlo*qlo, qhi*qhi; lo2 > hi2 {
				sumMax += lo2
			} else {
				sumMax += hi2
			}
		}
	}
	base := t.SumNorm2[id] - m2
	lo = w*sumMin + base
	hi = w*sumMax + base
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// RectDist2 returns the squared-distance interval between node id's points
// and any query point in rect — Node.RectDist2 over the SoA arrays.
func (t *Tree) RectDist2(id int32, rect geom.Rect, useBall bool) (min2, max2 float64) {
	o := int(id) * t.dim
	d := t.dim
	mn, mx := t.RectMin[o:o+d:o+d], t.RectMax[o:o+d:o+d]
	// MinDist2Rect/MaxDist2Rect with the node rect as the receiver, unrolled
	// over dimensions by the compiler-friendly bounded loop.
	var s float64
	for i := 0; i < d; i++ {
		switch {
		case rect.Max[i] < mn[i]:
			dd := mn[i] - rect.Max[i]
			s += dd * dd
		case rect.Min[i] > mx[i]:
			dd := rect.Min[i] - mx[i]
			s += dd * dd
		}
	}
	min2 = s
	s = 0
	for i := 0; i < d; i++ {
		dd := mx[i] - rect.Min[i]
		if alt := rect.Max[i] - mn[i]; alt > dd {
			dd = alt
		}
		if dd < 0 {
			dd = -dd
		}
		s += dd * dd
	}
	max2 = s
	if useBall {
		c := t.Center[o : o+d : o+d]
		dcMin := math.Sqrt(rect.MinDist2(c))
		dcMax := math.Sqrt(rect.MaxDist2(c))
		r := t.Radius[id]
		if bmin := dcMin - r; bmin > 0 {
			if b2 := bmin * bmin; b2 > min2 {
				min2 = b2
			}
		}
		bmax := dcMax + r
		if b2 := bmax * bmax; b2 < max2 {
			max2 = b2
		}
	}
	return min2, max2
}

// Walk visits every node id in pre-order; returning false prunes the
// subtree.
func (t *Tree) Walk(fn func(id int32) bool) {
	var rec func(id int32)
	rec = func(id int32) {
		if id == NoChild || !fn(id) {
			return
		}
		rec(t.Left[id])
		rec(t.Right[id])
	}
	if t.numNodes > 0 {
		rec(0)
	}
}

// Height returns the tree's height (a single node has height 1).
func (t *Tree) Height() int {
	var rec func(id int32) int
	rec = func(id int32) int {
		if id == NoChild {
			return 0
		}
		l, r := rec(t.Left[id]), rec(t.Right[id])
		if r > l {
			l = r
		}
		return l + 1
	}
	if t.numNodes == 0 {
		return 0
	}
	return rec(0)
}
