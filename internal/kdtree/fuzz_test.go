package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
)

// FuzzBuildInvariants: for fuzzer-chosen cardinality, leaf size, weighting,
// and coordinate distribution (including heavy duplication), the built tree
// must satisfy its structural invariants and its node statistics must match
// brute force.
func FuzzBuildInvariants(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(8), 1.0, false)
	f.Add(int64(7), uint8(200), uint8(1), 100.0, true)
	f.Add(int64(3), uint8(5), uint8(30), 0.0, true) // all-identical points
	f.Fuzz(func(t *testing.T, seed int64, nRaw, leafRaw uint8, spread float64, weighted bool) {
		n := int(nRaw)%200 + 1
		leaf := int(leafRaw) % 40 // 0 exercises the default
		if math.IsNaN(spread) || math.IsInf(spread, 0) {
			spread = 1
		}
		spread = math.Abs(math.Mod(spread, 1e4))
		rng := rand.New(rand.NewSource(seed))
		coords := make([]float64, 2*n)
		for i := range coords {
			// Snap to a coarse lattice so duplicate coordinates are common.
			coords[i] = spread * math.Floor(8*rng.Float64()) / 8
		}
		var weights []float64
		if weighted {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = rng.Float64()
			}
		}
		pts := geom.NewPoints(coords, 2)
		tree, err := Build(pts, Options{LeafSize: leaf, Gram: true, Weights: weights})
		if err != nil {
			t.Fatalf("Build(n=%d, leaf=%d): %v", n, leaf, err)
		}

		maxLeaf := leaf
		if maxLeaf < 1 {
			maxLeaf = DefaultLeafSize
		}
		q := []float64{spread * rng.Float64(), spread * rng.Float64()}
		scratch := make([]float64, 2)
		nodes := 0
		tree.Walk(func(nd *Node) bool {
			nodes++
			if nd.Start < 0 || nd.End > n || nd.Start >= nd.End {
				t.Fatalf("node range [%d,%d) outside [0,%d)", nd.Start, nd.End, n)
			}
			if nd.IsLeaf() {
				if nd.Size() > maxLeaf {
					// Oversized leaves are legal only when every point
					// coincides — the build keeps unsplittable nodes whole.
					if nd.Rect.Max[0] > nd.Rect.Min[0] || nd.Rect.Max[1] > nd.Rect.Min[1] {
						t.Fatalf("splittable leaf holds %d points, cap %d (rect %v)", nd.Size(), maxLeaf, nd.Rect)
					}
				}
			} else {
				if nd.Left.Start != nd.Start || nd.Right.End != nd.End || nd.Left.End != nd.Right.Start {
					t.Fatalf("children [%d,%d)+[%d,%d) do not partition [%d,%d)",
						nd.Left.Start, nd.Left.End, nd.Right.Start, nd.Right.End, nd.Start, nd.End)
				}
			}
			var sumW, s2, s4, s2c float64
			for i := nd.Start; i < nd.End; i++ {
				p := tree.Pts.At(i)
				if !nd.Rect.Contains(p) {
					t.Fatalf("point %v escapes node rect %v", p, nd.Rect)
				}
				w := tree.WeightAt(i)
				d2 := geom.Dist2(q, p)
				sumW += w
				s2 += w * d2
				s4 += w * d2 * d2
				s2c += w * geom.Dist2(nd.Center, p)
			}
			if math.Abs(sumW-nd.SumW) > 1e-9*(1+sumW) {
				t.Fatalf("SumW=%g, brute force %g", nd.SumW, sumW)
			}
			tol := 1e-9 * (1 + s2)
			if got := nd.SumDist2(q, scratch); math.Abs(got-s2) > tol {
				t.Fatalf("SumDist2=%g, brute force %g", got, s2)
			}
			g2, g4 := nd.SumDist24(q, scratch)
			if math.Abs(g2-s2) > tol || math.Abs(g4-s4) > 1e-9*(1+s4) {
				t.Fatalf("SumDist24=(%g,%g), brute force (%g,%g)", g2, g4, s2, s4)
			}
			// The node's center lies inside its own rect, so the exact
			// statistic there must fall in the rect-range.
			lo, hi := nd.RectSumDist2(nd.Rect)
			if ctol := 1e-9 * (1 + s2c); s2c < lo-ctol || s2c > hi+ctol {
				t.Fatalf("Σdist²(center) %g outside own-rect range [%g,%g]", s2c, lo, hi)
			}
			return true
		})
		if nodes != tree.NumNodes() {
			t.Fatalf("walked %d nodes, NumNodes=%d", nodes, tree.NumNodes())
		}
		// The tree must hold a permutation: total leaf size equals n.
		var leafPts int
		tree.Walk(func(nd *Node) bool {
			if nd.IsLeaf() {
				leafPts += nd.Size()
			}
			return true
		})
		if leafPts != n {
			t.Fatalf("leaves cover %d points, want %d", leafPts, n)
		}
	})
}
