// Package kdtree implements the hierarchical index used by the KDV bound
// framework (paper Section 3.2, Figure 3): a kd-tree whose every node is
// augmented with the aggregate statistics the bound functions need —
//
//	Σw           |P| (weighted cardinality)
//	Σw·p         a_P   (paper Section 3.3)
//	Σw·‖p‖²      b_P
//	Σw·‖p‖²·p    v_P   (paper Section 9.2)
//	Σw·‖p‖⁴      h_P
//	Σw·p·pᵀ      C     (the Gram matrix, Gaussian quadratic bounds only)
//
// plus the node's minimum bounding rectangle. Per-point weights w_i
// generalize Equation 1 the way the paper's sampling discussion requires
// ("replace P and w by output sample set and w_i"); an unweighted build has
// w_i = 1 and the statistics reduce to the paper's. The moments are stored
// relative to the node's own MBR center, which keeps their magnitudes small
// and makes the Σdist² / Σdist⁴ query-time formulas numerically stable even
// for far-away queries; each node's statistics are accumulated directly from
// its point range during the build (an O(n·log n·d²) pass).
//
// Points are kept in a flat buffer that the build reorders in place, so
// leaves are contiguous coordinate ranges and the exact leaf scans are
// cache-friendly.
package kdtree

import (
	"fmt"
	"math"

	"github.com/quadkdv/quad/internal/geom"
)

// DefaultLeafSize is the default maximum number of points per leaf.
const DefaultLeafSize = 30

// Options configures the tree build.
type Options struct {
	// LeafSize caps the number of points per leaf; values < 1 mean
	// DefaultLeafSize.
	LeafSize int
	// Gram controls whether the d×d Gram matrix Σw·p·pᵀ is computed per
	// node. Only the Gaussian and quartic quadratic (QUAD) bounds need it;
	// disabling it saves O(d²) memory per node for the O(d)-bound kernels.
	Gram bool
	// Weights are optional per-point weights w_i ≥ 0 parallel to the point
	// buffer. The slice is reordered in place alongside the points during
	// the build. nil means uniform weight 1.
	Weights []float64
}

// Node is one kd-tree node covering points [Start, End) of the tree's
// reordered buffer.
type Node struct {
	Rect        geom.Rect
	Left, Right *Node
	Start, End  int

	// Center is the reference point (the node MBR's center) the moment
	// statistics below are taken around.
	Center []float64
	// SumW is the total point weight Σw under the node; for an unweighted
	// build it equals the point count. Every moment below carries the same
	// per-point weight.
	SumW float64
	// SumP is Σw·(p−Center) — a_P in centered coordinates.
	SumP []float64
	// SumNorm2 is Σw·‖p−Center‖² — b_P centered.
	SumNorm2 float64
	// SumNorm2P is Σw·‖p−Center‖²·(p−Center) — v_P centered.
	SumNorm2P []float64
	// SumNorm4 is Σw·‖p−Center‖⁴ — h_P centered.
	SumNorm4 float64
	// Gram is Σw·(p−Center)·(p−Center)ᵀ flattened row-major (d×d), or nil
	// when the build disabled it.
	Gram []float64
	// Radius is the bounding-ball radius around Center: every point of the
	// node lies within Radius of Center. Combined with the MBR it yields
	// tighter min/max query distances (ball-tree-style bounds) at the cost
	// of one extra distance evaluation per node visit.
	Radius float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Size returns the number of points under the node.
func (n *Node) Size() int { return n.End - n.Start }

// Tree is a built kd-tree over a point set.
type Tree struct {
	Pts geom.Points
	// Weights are the per-point weights parallel to Pts (nil when the build
	// was unweighted), in the tree's reordered point order.
	Weights  []float64
	Root     *Node
	LeafSize int
	hasGram  bool
	numNodes int
}

// Build constructs a kd-tree over pts. The buffer (and, if supplied, the
// weight slice) is reordered in place; the caller must not assume any
// particular point order afterwards. Build returns an error (rather than
// panicking) for an empty input, since empty datasets are a caller-data
// condition.
func Build(pts geom.Points, opt Options) (*Tree, error) {
	if pts.Len() == 0 {
		return nil, fmt.Errorf("kdtree: cannot build over empty point set")
	}
	if opt.Weights != nil {
		if len(opt.Weights) != pts.Len() {
			return nil, fmt.Errorf("kdtree: %d weights for %d points", len(opt.Weights), pts.Len())
		}
		for i, w := range opt.Weights {
			if w < 0 {
				return nil, fmt.Errorf("kdtree: negative weight %g at index %d", w, i)
			}
		}
	}
	leaf := opt.LeafSize
	if leaf < 1 {
		leaf = DefaultLeafSize
	}
	t := &Tree{Pts: pts, Weights: opt.Weights, LeafSize: leaf, hasGram: opt.Gram}
	t.Root = t.build(0, pts.Len())
	return t, nil
}

// WeightAt returns point i's weight (1 for unweighted trees).
func (t *Tree) WeightAt(i int) float64 {
	if t.Weights == nil {
		return 1
	}
	return t.Weights[i]
}

// swap exchanges points i and j together with their weights.
func (t *Tree) swap(i, j int) {
	t.Pts.Swap(i, j)
	if t.Weights != nil {
		t.Weights[i], t.Weights[j] = t.Weights[j], t.Weights[i]
	}
}

// NumNodes returns the total number of nodes in the tree.
func (t *Tree) NumNodes() int { return t.numNodes }

// HasGram reports whether nodes carry the Gram matrix statistic.
func (t *Tree) HasGram() bool { return t.hasGram }

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.Pts.Dim }

func (t *Tree) build(lo, hi int) *Node {
	t.numNodes++
	n := &Node{Start: lo, End: hi, Rect: geom.NewRect(t.Pts.Dim)}
	for i := lo; i < hi; i++ {
		n.Rect.Extend(t.Pts.At(i))
	}
	if hi-lo > t.LeafSize {
		axis := n.Rect.LongestAxis()
		mid := (lo + hi) / 2
		t.selectNth(lo, hi, mid, axis)
		// Degenerate guard: if every coordinate along the split axis is
		// identical the partition may be vacuous; the longest-axis choice
		// makes that possible only when the node's rect is a single point,
		// in which case we keep it as an (oversized) leaf.
		if n.Rect.Max[axis]-n.Rect.Min[axis] > 0 {
			n.Left = t.build(lo, mid)
			n.Right = t.build(mid, hi)
		}
	}
	t.computeStats(n)
	return n
}

// selectNth partially sorts points [lo,hi) along axis so that the point at
// index nth is in its sorted position (Hoare quickselect with median-of-3
// pivoting).
func (t *Tree) selectNth(lo, hi, nth, axis int) {
	coord := func(i int) float64 { return t.Pts.Coords[i*t.Pts.Dim+axis] }
	for hi-lo > 1 {
		// Median-of-3 pivot.
		a, b, c := lo, (lo+hi)/2, hi-1
		if coord(a) > coord(b) {
			t.swap(a, b)
		}
		if coord(b) > coord(c) {
			t.swap(b, c)
			if coord(a) > coord(b) {
				t.swap(a, b)
			}
		}
		pivot := coord(b)
		i, j := lo, hi-1
		for i <= j {
			for coord(i) < pivot {
				i++
			}
			for coord(j) > pivot {
				j--
			}
			if i <= j {
				t.swap(i, j)
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j + 1
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}

// computeStats fills the node's centered, weighted moment statistics from
// its point range.
func (t *Tree) computeStats(n *Node) {
	d := t.Pts.Dim
	n.Center = make([]float64, d)
	n.Rect.Center(n.Center)
	n.SumP = make([]float64, d)
	n.SumNorm2P = make([]float64, d)
	if t.hasGram {
		n.Gram = make([]float64, d*d)
	}
	diff := make([]float64, d)
	var maxNorm2 float64
	for i := n.Start; i < n.End; i++ {
		p := t.Pts.At(i)
		w := 1.0
		if t.Weights != nil {
			w = t.Weights[i]
		}
		var norm2 float64
		for k := 0; k < d; k++ {
			diff[k] = p[k] - n.Center[k]
			norm2 += diff[k] * diff[k]
		}
		if norm2 > maxNorm2 {
			maxNorm2 = norm2
		}
		for k := 0; k < d; k++ {
			n.SumP[k] += w * diff[k]
			n.SumNorm2P[k] += w * norm2 * diff[k]
		}
		n.SumW += w
		n.SumNorm2 += w * norm2
		n.SumNorm4 += w * norm2 * norm2
		if n.Gram != nil {
			for r := 0; r < d; r++ {
				row := n.Gram[r*d : (r+1)*d]
				wdr := w * diff[r]
				for cIdx := 0; cIdx < d; cIdx++ {
					row[cIdx] += wdr * diff[cIdx]
				}
			}
		}
	}
	n.Radius = math.Sqrt(maxNorm2)
}

// SumDist2 returns Σ_{p∈node} dist(q, p)² in O(d) time using the centered
// moments (paper Section 3.3):
//
//	Σ‖q'−p'‖² = |P|·‖q'‖² − 2·q'·a_P + b_P,   q' = q − Center.
//
// scratch must have length ≥ d and is used for q'.
func (n *Node) SumDist2(q, scratch []float64) float64 {
	qc := scratch[:len(q)]
	var qn2 float64
	for i := range q {
		qc[i] = q[i] - n.Center[i]
		qn2 += qc[i] * qc[i]
	}
	return n.SumW*qn2 - 2*geom.Dot(qc, n.SumP) + n.SumNorm2
}

// SumDist4 returns Σ_{p∈node} dist(q, p)⁴ in O(d²) time (paper Lemma 3 /
// Section 9.2):
//
//	Σ‖q'−p'‖⁴ = |P|·‖q'‖⁴ − 4‖q'‖²·q'·a_P − 4·q'·v_P + 2‖q'‖²·b_P + h_P
//	            + 4·q'ᵀ·C·q'.
//
// It requires the Gram statistic; calling it on a tree built without Gram
// panics, since that is a programming error. scratch must have length ≥ d.
func (n *Node) SumDist4(q, scratch []float64) float64 {
	if n.Gram == nil {
		panic("kdtree: SumDist4 requires a tree built with Options.Gram")
	}
	d := len(q)
	qc := scratch[:d]
	var qn2 float64
	for i := 0; i < d; i++ {
		qc[i] = q[i] - n.Center[i]
		qn2 += qc[i] * qc[i]
	}
	var quad float64 // q'ᵀ C q'
	for r := 0; r < d; r++ {
		row := n.Gram[r*d : (r+1)*d]
		var s float64
		for c := 0; c < d; c++ {
			s += row[c] * qc[c]
		}
		quad += qc[r] * s
	}
	return n.SumW*qn2*qn2 - 4*qn2*geom.Dot(qc, n.SumP) - 4*geom.Dot(qc, n.SumNorm2P) +
		2*qn2*n.SumNorm2 + n.SumNorm4 + 4*quad
}

// SumDist24 returns both Σdist² and Σdist⁴ in one pass, sharing the
// centered-query terms the two formulas have in common. It requires the
// Gram statistic (see SumDist4). scratch must have length ≥ d.
func (n *Node) SumDist24(q, scratch []float64) (s2, s4 float64) {
	if n.Gram == nil {
		panic("kdtree: SumDist24 requires a tree built with Options.Gram")
	}
	d := len(q)
	qc := scratch[:d]
	var qn2 float64
	for i := 0; i < d; i++ {
		qc[i] = q[i] - n.Center[i]
		qn2 += qc[i] * qc[i]
	}
	dotA := geom.Dot(qc, n.SumP)
	s2 = n.SumW*qn2 - 2*dotA + n.SumNorm2
	var quad float64 // q'ᵀ C q'
	for r := 0; r < d; r++ {
		row := n.Gram[r*d : (r+1)*d]
		var s float64
		for c := 0; c < d; c++ {
			s += row[c] * qc[c]
		}
		quad += qc[r] * s
	}
	s4 = n.SumW*qn2*qn2 - 4*qn2*dotA - 4*geom.Dot(qc, n.SumNorm2P) +
		2*qn2*n.SumNorm2 + n.SumNorm4 + 4*quad
	return s2, s4
}

// RectSumDist2 returns the exact range of SumDist2(q) over every query point
// q in the rectangle. Completing the square in the Section 3.3 identity,
//
//	Σ w·‖q−p‖² = W·‖q' − a_P/W‖² + b_P − ‖a_P‖²/W,   q' = q − Center,
//
// which is a separable convex quadratic in q: each dimension independently
// attains its minimum at a_P[d]/W clamped into the rectangle's interval and
// its maximum at the endpoint farther from it. This is what lets envelope
// bounds (which aggregate through Σdist²) be evaluated tile-uniformly in
// O(d) instead of falling back to the loose min-max distance interval.
func (n *Node) RectSumDist2(rect geom.Rect) (lo, hi float64) {
	w := n.SumW
	if w <= 0 {
		return 0, 0
	}
	var m2, sumMin, sumMax float64
	for d := range n.Center {
		m := n.SumP[d] / w
		m2 += n.SumP[d] * m
		qlo := rect.Min[d] - n.Center[d] - m
		qhi := rect.Max[d] - n.Center[d] - m
		switch {
		case qlo > 0:
			sumMin += qlo * qlo
		case qhi < 0:
			sumMin += qhi * qhi
		}
		if lo2, hi2 := qlo*qlo, qhi*qhi; lo2 > hi2 {
			sumMax += lo2
		} else {
			sumMax += hi2
		}
	}
	base := n.SumNorm2 - m2
	lo = w*sumMin + base
	hi = w*sumMax + base
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// RectDist2 returns the squared distance interval [min2, max2] between the
// node's points and ANY query point inside the query rectangle: for every
// q ∈ rect and p ∈ node, min2 ≤ dist(q, p)² ≤ max2. The interval combines
// the node's MBR with (optionally) its bounding ball around Center — the
// rectangle-query analogue of the per-point MBR+ball machinery used by the
// bound evaluators, and the primitive behind tile-shared traversal.
func (n *Node) RectDist2(rect geom.Rect, useBall bool) (min2, max2 float64) {
	min2 = n.Rect.MinDist2Rect(rect)
	max2 = n.Rect.MaxDist2Rect(rect)
	if useBall {
		dcMin := math.Sqrt(rect.MinDist2(n.Center))
		dcMax := math.Sqrt(rect.MaxDist2(n.Center))
		if bmin := dcMin - n.Radius; bmin > 0 {
			if b2 := bmin * bmin; b2 > min2 {
				min2 = b2
			}
		}
		bmax := dcMax + n.Radius
		if b2 := bmax * bmax; b2 < max2 {
			max2 = b2
		}
	}
	return min2, max2
}

// Walk visits every node in pre-order and invokes fn; returning false from
// fn prunes the node's subtree.
func (t *Tree) Walk(fn func(*Node) bool) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil || !fn(n) {
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(t.Root)
}

// Height returns the height of the tree (a single node has height 1).
func (t *Tree) Height() int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		if n == nil {
			return 0
		}
		l, r := rec(n.Left), rec(n.Right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return rec(t.Root)
}
