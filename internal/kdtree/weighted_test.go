package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
)

func TestBuildWeightValidation(t *testing.T) {
	pts := geom.NewPoints([]float64{0, 0, 1, 1}, 2)
	if _, err := Build(pts.Clone(), Options{Weights: []float64{1}}); err == nil {
		t.Error("mismatched weight length accepted")
	}
	if _, err := Build(pts.Clone(), Options{Weights: []float64{1, -2}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightsFollowPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 1000
	pts := randomPoints(rng, n, 2, 5)
	// Weight encodes the point's original x coordinate so we can verify the
	// pairing survives the build's reordering.
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		weights[i] = math.Abs(pts.At(i)[0]) + 1
	}
	tr, err := Build(pts, Options{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := math.Abs(tr.Pts.At(i)[0]) + 1
		if tr.WeightAt(i) != want {
			t.Fatalf("point %d weight %g, want %g — weights decoupled from points", i, tr.WeightAt(i), want)
		}
	}
}

func TestWeightAtUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tr, err := Build(randomPoints(rng, 50, 2, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.WeightAt(7) != 1 {
		t.Errorf("unweighted WeightAt = %g", tr.WeightAt(7))
	}
}

// TestWeightedStatsMatchBruteForce: weighted node moments must reproduce the
// weighted Σw·dist² and Σw·dist⁴.
func TestWeightedStatsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, dim := range []int{1, 2, 4} {
		n := 500
		pts := randomPoints(rng, n, dim, 3)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 5
		}
		// Pre-pair weights with point values for post-build recomputation.
		tr, err := Build(pts, Options{LeafSize: 12, Gram: true, Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		scratch := make([]float64, dim)
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, dim)
			for i := range q {
				q[i] = rng.NormFloat64() * 5
			}
			tr.Walk(func(nd *Node) bool {
				var wantW, want2, want4 float64
				for i := nd.Start; i < nd.End; i++ {
					w := tr.WeightAt(i)
					d2 := geom.Dist2(q, tr.Pts.At(i))
					wantW += w
					want2 += w * d2
					want4 += w * d2 * d2
				}
				if relErr(nd.SumW, wantW) > 1e-12 {
					t.Fatalf("dim=%d SumW = %g, want %g", dim, nd.SumW, wantW)
				}
				if relErr(nd.SumDist2(q, scratch), want2) > 1e-9 {
					t.Fatalf("dim=%d weighted SumDist2 = %g, want %g", dim, nd.SumDist2(q, scratch), want2)
				}
				if relErr(nd.SumDist4(q, scratch), want4) > 1e-8 {
					t.Fatalf("dim=%d weighted SumDist4 = %g, want %g", dim, nd.SumDist4(q, scratch), want4)
				}
				return nd.Size() > 40
			})
		}
	}
}

// TestZeroWeightPointsContributeNothing: zero-weight points must be inert in
// every statistic.
func TestZeroWeightPointsContributeNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 200
	pts := randomPoints(rng, n, 2, 2)
	weights := make([]float64, n)
	for i := 0; i < n; i += 2 {
		weights[i] = 1
	}
	tr, err := Build(pts, Options{Gram: true, Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.SumW != float64(n/2) {
		t.Errorf("SumW = %g, want %d", tr.Root.SumW, n/2)
	}
	q := []float64{0.5, -0.5}
	scratch := make([]float64, 2)
	var want2 float64
	for i := 0; i < tr.Pts.Len(); i++ {
		want2 += tr.WeightAt(i) * geom.Dist2(q, tr.Pts.At(i))
	}
	if relErr(tr.Root.SumDist2(q, scratch), want2) > 1e-9 {
		t.Errorf("weighted SumDist2 = %g, want %g", tr.Root.SumDist2(q, scratch), want2)
	}
}
