package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRecordersAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	c.AddInt(3)
	g.Set(5)
	g.Add(-2)
	g.Inc()
	g.Dec()
	h.Observe(1.5)
	h.ObserveDuration(0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil recorders reported non-zero values: %d %d %d %g",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.AddInt(5)
	c.AddInt(-3) // negative ints are dropped, not wrapped
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := newHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 9, math.NaN()} {
		h.Observe(v)
	}
	// NaN dropped: 6 observations. le=1 admits {0.5, 1}; le=2 adds
	// {1.5, 2}; le=4 adds {3}; +Inf adds {9}.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+9; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	if _, err := newHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := newHistogram([]float64{1, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "help", L("k", "other"))
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	h1 := r.Histogram("h_seconds", "", []float64{1, 2}, L("e", "a"))
	h2 := r.Histogram("h_seconds", "", []float64{9, 99}, L("e", "b"))
	if len(h2.bounds) != 2 || h2.bounds[0] != 1 {
		t.Fatalf("second series did not inherit family bounds: %v", h2.bounds)
	}
	if h1 == h2 {
		t.Fatal("distinct labels returned the same histogram")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestRegistryConcurrency exercises concurrent registration and recording
// on overlapping names; run under -race it proves the registry and the
// recorders are safe to share.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "", L("worker", fmt.Sprint(w%4))).Inc()
				r.Gauge("conc_gauge", "").Add(1)
				r.Histogram("conc_seconds", "", DurationBuckets).Observe(float64(i) / 1000)
				var buf strings.Builder
				if i%100 == 0 {
					if err := r.WritePrometheus(&buf); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for w := 0; w < 4; w++ {
		total += r.Counter("conc_total", "", L("worker", fmt.Sprint(w))).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != 8*500 {
		t.Fatalf("gauge = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("conc_seconds", "", DurationBuckets).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("kdv_requests_total", "Requests served.", L("endpoint", "render")).Add(3)
	r.Counter("kdv_requests_total", "Requests served.", L("endpoint", "hotspots")).Add(1)
	r.Gauge("kdv_in_flight", "In-flight requests.").Set(2)
	h := r.Histogram("kdv_latency_seconds", "Latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.25)
	h.Observe(2)
	r.Counter("kdv_escaped_total", "", L("q", `a"b\c`)).Inc()

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP kdv_requests_total Requests served.
# TYPE kdv_requests_total counter
kdv_requests_total{endpoint="render"} 3
kdv_requests_total{endpoint="hotspots"} 1
# HELP kdv_in_flight In-flight requests.
# TYPE kdv_in_flight gauge
kdv_in_flight 2
# HELP kdv_latency_seconds Latency.
# TYPE kdv_latency_seconds histogram
kdv_latency_seconds_bucket{le="0.1"} 1
kdv_latency_seconds_bucket{le="0.5"} 2
kdv_latency_seconds_bucket{le="+Inf"} 3
kdv_latency_seconds_sum 2.3
kdv_latency_seconds_count 3
# TYPE kdv_escaped_total counter
kdv_escaped_total{q="a\"b\\c"} 1
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
