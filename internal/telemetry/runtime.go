package telemetry

import (
	"runtime"
	runtimemetrics "runtime/metrics"
)

// RegisterRuntimeMetrics registers Go runtime health gauges (heap, GC
// pause, goroutines) on r and refreshes them on every scrape via an
// OnScrape hook. Values are sampled, not recorded: the process pays one
// ReadMemStats + runtime/metrics read per scrape and nothing between
// scrapes. Call once per registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	var (
		heapAlloc   = r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
		heapSys     = r.Gauge("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
		heapObjects = r.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.")
		nextGC      = r.Gauge("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.")
		gcCycles    = r.Gauge("go_gc_cycles_count", "Completed GC cycles since process start.")
		gcPause     = r.FloatGauge("go_gc_pause_total_seconds", "Cumulative stop-the-world GC pause time since process start.")
		goroutines  = r.Gauge("go_goroutines", "Number of live goroutines.")
		gomaxprocs  = r.Gauge("go_sched_gomaxprocs_threads", "Current GOMAXPROCS setting.")
	)
	sampleSpec := []runtimemetrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/sched/gomaxprocs:threads"},
	}
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		heapObjects.Set(int64(ms.HeapObjects))
		nextGC.Set(int64(ms.NextGC))
		gcCycles.Set(int64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)

		samples := make([]runtimemetrics.Sample, len(sampleSpec))
		copy(samples, sampleSpec)
		runtimemetrics.Read(samples)
		if v := samples[0].Value; v.Kind() == runtimemetrics.KindUint64 {
			goroutines.Set(int64(v.Uint64()))
		} else {
			goroutines.Set(int64(runtime.NumGoroutine()))
		}
		if v := samples[1].Value; v.Kind() == runtimemetrics.KindUint64 {
			gomaxprocs.Set(int64(v.Uint64()))
		}
	})
}
