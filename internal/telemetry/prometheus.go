package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// ContentType is the Prometheus text exposition format version served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order, series within a family in registration order, so output is
// deterministic for a fixed registration sequence.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Scrape hooks refresh sampled values (runtime stats, burn rates) and
	// may touch the registry, so they run before the lock.
	r.runScrapeHooks()
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, expositionKind(f.kind))
		for _, s := range f.series {
			switch f.kind {
			case "counter":
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatUint(s.c.Value(), 10))
			case "gauge":
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatInt(s.g.Value(), 10))
			case "floatgauge":
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.fg.Value()))
			case "histogram":
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// expositionKind maps internal kinds onto Prometheus TYPE names — float
// gauges are plain gauges on the wire.
func expositionKind(kind string) string {
	if kind == "floatgauge" {
		return "gauge"
	}
	return kind
}

func writeHistogram(w *bufio.Writer, name string, s *series) {
	h := s.h
	// Prometheus buckets are cumulative: bucket{le="x"} counts every
	// observation ≤ x, and le="+Inf" equals the total count.
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(w, name, "_bucket", s.labels, `le="`+formatFloat(bound)+`"`, strconv.FormatUint(cum, 10))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(w, name, "_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
	writeSample(w, name, "_sum", s.labels, "", formatFloat(h.Sum()))
	writeSample(w, name, "_count", s.labels, "", strconv.FormatUint(h.Count(), 10))
}

// writeSample emits one `name{labels,extra} value` line. Either labels or
// extra may be empty.
func writeSample(w *bufio.Writer, name, suffix, labels, extra, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
