package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_probe_total", "").Inc()
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()

	for _, path := range []string{"/", "/debug/pprof/", "/debug/vars", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if path == "/metrics" {
			if ct := resp.Header.Get("Content-Type"); ct != ContentType {
				t.Errorf("/metrics Content-Type = %q, want %q", ct, ContentType)
			}
			if !strings.Contains(string(body), "debug_probe_total 1") {
				t.Errorf("/metrics missing counter, got:\n%s", body)
			}
		}
	}

	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", resp.StatusCode)
	}
}

func TestStartDebug(t *testing.T) {
	addr, err := StartDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d, want 200", resp.StatusCode)
	}
	// Without a registry /metrics must not exist on the side listener.
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics without registry = %d, want 404", resp.StatusCode)
	}
}
