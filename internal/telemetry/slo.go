package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Objective is one declarative service-level objective expressed over a
// pair of cumulative counters: Goal is the target good/total ratio (e.g.
// 0.999 availability), Good and Total read the current cumulative values.
// The closures are sampled — never recorded into — so an objective can be
// laid over any counters that already exist.
type Objective struct {
	Name  string  // metric label, e.g. "availability"
	Goal  float64 // target good/total in (0, 1)
	Good  func() uint64
	Total func() uint64
}

// DefaultSLOWindows are the multi-window burn-rate horizons: a fast window
// that catches sudden budget burn, a medium window for sustained burn, and
// a slow window approximating the daily budget.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}

// sloSample is one timestamped snapshot of an objective's counters.
type sloSample struct {
	at          time.Time
	good, total uint64
}

type objectiveState struct {
	Objective
	ring  []sloSample // ascending by time, pruned to the slowest window
	burn  []*FloatGauge
	ratio []*FloatGauge
}

// SLO tracks a set of objectives with multi-window burn rates. Each
// Refresh snapshots every objective's counters into a bounded ring and
// recomputes, for every window W, the windowed error ratio
//
//	err(W) = 1 − Δgood/Δtotal      (over the last W)
//
// and the burn rate err(W) / (1 − Goal): burn 1.0 means the error budget
// is being spent exactly at the sustainable rate, burn N means N× too
// fast. NewSLO hooks Refresh into the registry's scrape path, so /metrics
// always shows current burn.
type SLO struct {
	windows []time.Duration
	now     func() time.Time
	minGap  time.Duration

	mu   sync.Mutex
	objs []*objectiveState
	reg  *Registry
}

// NewSLO returns an SLO publishing kdv_slo_* gauges on reg and refreshing
// them on every scrape. windows defaults to DefaultSLOWindows; now
// defaults to time.Now (injectable for tests).
func NewSLO(reg *Registry, windows []time.Duration, now func() time.Time) *SLO {
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	if now == nil {
		now = time.Now
	}
	slowest := windows[0]
	for _, w := range windows {
		if w > slowest {
			slowest = w
		}
	}
	s := &SLO{
		windows: append([]time.Duration(nil), windows...),
		now:     now,
		// Bound ring growth: one stored sample per minGap keeps the
		// slowest window under ~2048 entries however often we're scraped.
		minGap: slowest / 2048,
		reg:    reg,
	}
	reg.OnScrape(s.Refresh)
	return s
}

// Add registers an objective. The ring is seeded with a zero sample so the
// first windows measure everything since process start.
func (s *SLO) Add(o Objective) {
	if o.Good == nil || o.Total == nil || !(o.Goal > 0 && o.Goal < 1) {
		panic(fmt.Sprintf("telemetry: bad SLO objective %q (need closures and goal in (0,1))", o.Name))
	}
	st := &objectiveState{Objective: o}
	st.ring = append(st.ring, sloSample{at: s.now()})
	s.reg.FloatGauge("kdv_slo_goal",
		"Declared objective target (good/total ratio).",
		L("objective", o.Name)).Set(o.Goal)
	for _, w := range s.windows {
		lbl := []Label{L("objective", o.Name), L("window", windowLabel(w))}
		st.burn = append(st.burn, s.reg.FloatGauge("kdv_slo_burn_rate",
			"Error-budget burn rate over the window (1.0 = sustainable).", lbl...))
		st.ratio = append(st.ratio, s.reg.FloatGauge("kdv_slo_error_ratio",
			"Windowed error ratio (1 - good/total).", lbl...))
	}
	s.mu.Lock()
	s.objs = append(s.objs, st)
	s.mu.Unlock()
}

// Refresh snapshots every objective and updates the burn-rate gauges.
func (s *SLO) Refresh() {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.objs {
		cur := sloSample{at: now, good: st.Good(), total: st.Total()}
		last := st.ring[len(st.ring)-1]
		if now.Sub(last.at) >= s.minGap {
			st.ring = append(st.ring, cur)
			st.prune(now, s.slowest())
		}
		for i, w := range s.windows {
			ratio := st.errorRatio(cur, w)
			st.ratio[i].Set(ratio)
			st.burn[i].Set(ratio / (1 - st.Goal))
		}
	}
}

func (s *SLO) slowest() time.Duration {
	max := s.windows[0]
	for _, w := range s.windows {
		if w > max {
			max = w
		}
	}
	return max
}

// prune drops samples older than the slowest window, always keeping at
// least one sample at or before the horizon so windowed deltas have a
// baseline.
func (st *objectiveState) prune(now time.Time, slowest time.Duration) {
	horizon := now.Add(-slowest)
	i := 0
	for i+1 < len(st.ring) && !st.ring[i+1].at.After(horizon) {
		i++
	}
	if i > 0 {
		st.ring = append(st.ring[:0], st.ring[i:]...)
	}
}

// baseline returns the stored sample closest to (but not after) now-w,
// falling back to the oldest sample when the ring doesn't reach back that
// far yet.
func (st *objectiveState) baseline(now time.Time, w time.Duration) sloSample {
	horizon := now.Add(-w)
	base := st.ring[0]
	for _, smp := range st.ring {
		if smp.at.After(horizon) {
			break
		}
		base = smp
	}
	return base
}

// errorRatio computes 1 - Δgood/Δtotal between the window baseline and
// cur, evaluated as Δbad/Δtotal so small error counts render exactly.
func (st *objectiveState) errorRatio(cur sloSample, w time.Duration) float64 {
	base := st.baseline(cur.at, w)
	dTotal := cur.total - base.total
	if dTotal == 0 {
		return 0
	}
	dGood := cur.good - base.good
	if dGood > dTotal { // counters sampled racily; clamp
		dGood = dTotal
	}
	return float64(dTotal-dGood) / float64(dTotal)
}

// SLOWindowSnapshot is one window's state in an SLOSnapshot.
type SLOWindowSnapshot struct {
	Window     string  `json:"window"`
	Good       uint64  `json:"good"`
	Total      uint64  `json:"total"`
	ErrorRatio float64 `json:"error_ratio"`
	BurnRate   float64 `json:"burn_rate"`
}

// SLOSnapshot is one objective's state for the ops snapshot endpoint.
type SLOSnapshot struct {
	Name    string              `json:"name"`
	Goal    float64             `json:"goal"`
	Good    uint64              `json:"good"`  // cumulative
	Total   uint64              `json:"total"` // cumulative
	Windows []SLOWindowSnapshot `json:"windows"`
}

// Snapshot refreshes and returns every objective's current state.
func (s *SLO) Snapshot() []SLOSnapshot {
	s.Refresh()
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SLOSnapshot, 0, len(s.objs))
	for _, st := range s.objs {
		cur := sloSample{at: now, good: st.Good(), total: st.Total()}
		snap := SLOSnapshot{Name: st.Name, Goal: st.Goal, Good: cur.good, Total: cur.total}
		for _, w := range s.windows {
			base := st.baseline(cur.at, w)
			ratio := st.errorRatio(cur, w)
			snap.Windows = append(snap.Windows, SLOWindowSnapshot{
				Window:     windowLabel(w),
				Good:       cur.good - base.good,
				Total:      cur.total - base.total,
				ErrorRatio: ratio,
				BurnRate:   ratio / (1 - st.Goal),
			})
		}
		out = append(out, snap)
	}
	return out
}

// windowLabel renders a duration as a compact label ("5m", "1h", "6h").
func windowLabel(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return d.String()
	}
}
