// Package telemetry is the zero-dependency observability core of the KDV
// serving stack: counters, gauges and fixed-bucket histograms behind an
// atomic registry, exposed in Prometheus text format.
//
// Design constraints, in order:
//
//  1. The hot path pays nothing it did not ask for. Every mutator is
//     nil-safe — a nil *Counter / *Gauge / *Histogram is the no-op
//     recorder, so instrumented code takes one pointer nil-check instead
//     of an interface call (which would defeat inlining and force the
//     receiver to escape). Disabled telemetry is therefore a predictable
//     branch, not a virtual dispatch.
//  2. Recording never allocates and never locks. Counters and gauges are
//     single atomic words; a histogram observation is two atomic adds, a
//     CAS-loop float add, and a branch-free bucket search over a fixed
//     bound slice. The registry mutex guards only metric registration and
//     exposition, which are off the request path.
//  3. Exposition is deterministic: families appear in registration order,
//     series within a family in registration order, so golden tests can
//     compare whole scrapes byte for byte.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter is a valid no-op recorder.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// AddInt adds n when positive (work counters arrive as ints).
func (c *Counter) AddInt(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil Gauge is a valid no-op recorder.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a gauge holding a float64 — for values that are not
// integral (ratios, seconds, burn rates). The zero value is ready to use; a
// nil FloatGauge is a valid no-op recorder.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// atomicFloat accumulates a float64 with a CAS loop (there is no atomic
// float add in sync/atomic).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are defined by ascending
// upper bounds; an implicit +Inf bucket catches the rest. A nil Histogram
// is a valid no-op recorder.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	count   atomic.Uint64
	sum     atomicFloat
}

// DurationBuckets are the default latency bounds in seconds — 1ms to 30s,
// roughly logarithmic, matched to interactive render times.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("telemetry: histogram bounds not strictly ascending at %d (%g, %g)",
				i, bounds[i-1], bounds[i])
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}, nil
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound ≥ v, i.e. the smallest bucket whose `le` admits v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// CountAtOrBelow returns the number of observations that landed in buckets
// whose upper bound is ≤ bound — the cumulative count Prometheus would
// report for bucket{le="bound"}. Bucket-based latency objectives ("p99 ≤
// 2.5s") divide this by Count(). A bound below the first bucket returns 0;
// +Inf returns Count().
func (h *Histogram) CountAtOrBelow(bound float64) uint64 {
	if h == nil {
		return 0
	}
	// First bucket bound strictly greater than bound: everything before it
	// is counted.
	i := sort.SearchFloat64s(h.bounds, bound)
	if i < len(h.bounds) && h.bounds[i] == bound {
		i++
	}
	var cum uint64
	for j := 0; j < i; j++ {
		cum += h.buckets[j].Load()
	}
	if math.IsInf(bound, 1) {
		return h.count.Load()
	}
	return cum
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one labeled time series inside a family.
type series struct {
	labels string // canonical `k="v",k2="v2"` render, "" for unlabeled
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name, help, kind string
	bounds           []float64 // histogram families only
	series           []*series
	index            map[string]*series
}

// Registry holds metric families and renders them as a Prometheus text
// scrape. Registration is get-or-create: asking twice for the same name and
// labels returns the same metric, so packages can look their metrics up
// where they use them.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family

	hookMu sync.Mutex
	hooks  []func()
}

// OnScrape registers fn to run at the start of every WritePrometheus call,
// before the registry lock is taken — so hooks may freely register or set
// metrics. Use it for values that are sampled rather than recorded (runtime
// stats, burn rates): the gauge is refreshed exactly when a scraper looks.
func (r *Registry) OnScrape(fn func()) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// runScrapeHooks invokes every OnScrape hook. Callers must not hold r.mu.
func (r *Registry) runScrapeHooks() {
	r.hookMu.Lock()
	hooks := r.hooks
	r.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) getFamily(name, help, kind string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, index: make(map[string]*series)}
		r.byName[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

func (f *family) getSeries(labels []Label) *series {
	key := renderLabels(labels)
	if s, ok := f.index[key]; ok {
		return s
	}
	s := &series{labels: key}
	f.index[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamily(name, help, "counter").getSeries(labels)
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamily(name, help, "gauge").getSeries(labels)
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// FloatGauge returns the float gauge registered under name with the given
// labels, creating it on first use. It is exposed with TYPE gauge; the
// distinct internal kind only prevents mixing integer and float series
// under one name.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamily(name, help, "floatgauge").getSeries(labels)
	if s.fg == nil {
		s.fg = new(FloatGauge)
	}
	return s.fg
}

// Histogram returns the histogram registered under name with the given
// labels, creating it on first use. Every series of one family shares the
// family's bucket bounds (the bounds of the first registration win); bounds
// must be strictly ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "histogram")
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
	}
	s := f.getSeries(labels)
	if s.h == nil {
		h, err := newHistogram(f.bounds)
		if err != nil {
			panic(fmt.Sprintf("telemetry: %s: %v", name, err))
		}
		s.h = h
	}
	return s.h
}

// renderLabels produces the canonical label body (without braces) in the
// order given, with Prometheus value escaping.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
