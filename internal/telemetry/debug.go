package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugMux builds the side-listener mux every kdv binary can expose with
// -pprof-addr: net/http/pprof profiles, expvar, and — when reg is non-nil —
// the Prometheus scrape endpoint. A private mux is used instead of
// http.DefaultServeMux so importing this package never leaks debug handlers
// onto an application server.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("kdv debug listener\n/debug/pprof/\n/debug/vars\n/metrics\n"))
	})
	return mux
}

// StartDebug binds addr and serves DebugMux(reg) on it in a background
// goroutine. It returns the bound address (useful with ":0") — the
// listener lives for the rest of the process, which is the lifetime a
// profiling side-channel wants.
func StartDebug(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{
		Handler:           DebugMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
