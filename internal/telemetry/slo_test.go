package telemetry

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestFloatGauge(t *testing.T) {
	var nilG *FloatGauge
	nilG.Set(3.5) // no-op, no panic
	if nilG.Value() != 0 {
		t.Fatalf("nil FloatGauge = %g, want 0", nilG.Value())
	}
	r := NewRegistry()
	g := r.FloatGauge("ratio", "A ratio.", L("k", "v"))
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("value = %g, want 0.25", g.Value())
	}
	if g2 := r.FloatGauge("ratio", "A ratio.", L("k", "v")); g2 != g {
		t.Fatal("same name+labels returned distinct float gauges")
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# HELP ratio A ratio.\n# TYPE ratio gauge\nratio{k=\"v\"} 0.25\n"
	if buf.String() != want {
		t.Fatalf("exposition:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestFloatGaugeKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Gauge("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as floatgauge after gauge did not panic")
		}
	}()
	r.FloatGauge("m", "")
}

func TestHistogramCountAtOrBelow(t *testing.T) {
	h, err := newHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 9} {
		h.Observe(v)
	}
	cases := []struct {
		bound float64
		want  uint64
	}{
		{0.5, 0}, // below the first bucket nothing is countable
		{1, 2},
		{2, 4},
		{3, 4}, // between bucket bounds: only fully-contained buckets count
		{4, 5},
		{math.Inf(1), 6},
	}
	for _, c := range cases {
		if got := h.CountAtOrBelow(c.bound); got != c.want {
			t.Errorf("CountAtOrBelow(%g) = %d, want %d", c.bound, got, c.want)
		}
	}
	var nilH *Histogram
	if nilH.CountAtOrBelow(1) != 0 {
		t.Error("nil histogram CountAtOrBelow != 0")
	}
}

func TestOnScrapeHookRunsPerScrape(t *testing.T) {
	r := NewRegistry()
	var calls atomic.Int64
	g := r.Gauge("sampled", "")
	r.OnScrape(func() { g.Set(calls.Add(1)) })
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("hook ran %d times, want 2", calls.Load())
	}
	if !strings.Contains(buf.String(), "sampled 2") {
		t.Fatalf("scrape did not see hook-refreshed value:\n%s", buf.String())
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"go_memstats_heap_alloc_bytes", "go_gc_pause_total_seconds", "go_goroutines",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("scrape missing %s:\n%s", name, out)
		}
	}
	if r.Gauge("go_goroutines", "Number of live goroutines.").Value() < 1 {
		t.Error("goroutine count not sampled on scrape")
	}
	RegisterRuntimeMetrics(nil) // nil registry is a no-op
}

// sloClock is a manually-advanced clock for deterministic SLO tests.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newSLOClock() *sloClock                { return &sloClock{t: time.Unix(1700000000, 0)} }
func burnOf(s []SLOSnapshot, win string) float64 {
	for _, w := range s[0].Windows {
		if w.Window == win {
			return w.BurnRate
		}
	}
	return math.NaN()
}

func TestSLOBurnRates(t *testing.T) {
	r := NewRegistry()
	clock := newSLOClock()
	slo := NewSLO(r, nil, clock.now)
	var good, total Counter
	slo.Add(Objective{
		Name:  "availability",
		Goal:  0.99,
		Good:  good.Value,
		Total: total.Value,
	})

	// 100 requests, all good: zero burn everywhere.
	good.Add(100)
	total.Add(100)
	clock.advance(time.Minute)
	snap := slo.Snapshot()
	if b := burnOf(snap, "5m"); b != 0 {
		t.Fatalf("all-good burn = %g, want 0", b)
	}

	// 100 more requests, 10 bad: error ratio 10/200 = 5% cumulative; the
	// 5m window sees only the new chunk if a sample separates them.
	clock.advance(10 * time.Minute) // push the first chunk out of the 5m window
	slo.Refresh()                   // store a baseline sample at t+11m
	good.Add(90)
	total.Add(100)
	clock.advance(time.Minute)
	snap = slo.Snapshot()
	// 5m window: Δgood=90 Δtotal=100 → err 0.10 → burn 0.10/0.01 = 10.
	if b := burnOf(snap, "5m"); math.Abs(b-10) > 1e-9 {
		t.Fatalf("5m burn = %g, want 10", b)
	}
	// 6h window reaches back to process start: err 10/200 → burn 5.
	if b := burnOf(snap, "6h"); math.Abs(b-5) > 1e-9 {
		t.Fatalf("6h burn = %g, want 5", b)
	}
	if snap[0].Good != 190 || snap[0].Total != 200 {
		t.Fatalf("cumulative = %d/%d, want 190/200", snap[0].Good, snap[0].Total)
	}
}

func TestSLOGaugesOnScrape(t *testing.T) {
	r := NewRegistry()
	clock := newSLOClock()
	slo := NewSLO(r, nil, clock.now)
	var good, total Counter
	slo.Add(Objective{Name: "avail", Goal: 0.9, Good: good.Value, Total: total.Value})
	_ = slo
	good.Add(8)
	total.Add(10) // 20% errors, goal 0.9 → budget 10% → burn 2
	clock.advance(time.Minute)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `kdv_slo_goal{objective="avail"} 0.9`) {
		t.Errorf("missing goal gauge:\n%s", out)
	}
	if !strings.Contains(out, `kdv_slo_burn_rate{objective="avail",window="5m"}`) {
		t.Errorf("missing 5m burn gauge:\n%s", out)
	}
	burn := r.FloatGauge("kdv_slo_burn_rate",
		"Error-budget burn rate over the window (1.0 = sustainable).",
		L("objective", "avail"), L("window", "5m"))
	if got := burn.Value(); math.Abs(got-2) > 1e-9 {
		t.Errorf("5m burn gauge = %g, want 2", got)
	}
	ratio := r.FloatGauge("kdv_slo_error_ratio",
		"Windowed error ratio (1 - good/total).",
		L("objective", "avail"), L("window", "6h"))
	if got := ratio.Value(); got != 0.2 {
		t.Errorf("6h ratio gauge = %g, want 0.2", got)
	}
}

func TestSLORingPrunes(t *testing.T) {
	r := NewRegistry()
	clock := newSLOClock()
	slo := NewSLO(r, []time.Duration{time.Minute}, clock.now)
	var c Counter
	slo.Add(Objective{Name: "x", Goal: 0.5, Good: c.Value, Total: c.Value})
	for i := 0; i < 10000; i++ {
		c.Inc()
		clock.advance(time.Second)
		slo.Refresh()
	}
	st := slo.objs[0]
	if n := len(st.ring); n > 4096 {
		t.Fatalf("ring grew unbounded: %d samples", n)
	}
	// The baseline for the 1m window must still reach back a full minute.
	base := st.baseline(clock.now(), time.Minute)
	if age := clock.now().Sub(base.at); age < time.Minute {
		t.Fatalf("baseline only %v old, want ≥ 1m", age)
	}
}

func TestSLOBadObjectivePanics(t *testing.T) {
	r := NewRegistry()
	slo := NewSLO(r, nil, newSLOClock().now)
	defer func() {
		if recover() == nil {
			t.Fatal("objective with goal 1 did not panic")
		}
	}()
	slo.Add(Objective{Name: "bad", Goal: 1, Good: func() uint64 { return 0 }, Total: func() uint64 { return 0 }})
}
