package grid

import (
	"testing"

	"github.com/quadkdv/quad/internal/geom"
)

func window(x0, y0, x1, y1 float64) geom.Rect {
	return geom.Rect{Min: []float64{x0, y0}, Max: []float64{x1, y1}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Resolution{0, 10}, window(0, 0, 1, 1)); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(Resolution{10, 10}, geom.Rect{Min: []float64{0}, Max: []float64{1}}); err == nil {
		t.Error("1-d window accepted")
	}
}

func TestQueryCenters(t *testing.T) {
	g, err := New(Resolution{4, 2}, window(0, 0, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 2)
	g.Query(0, 0, q)
	if q[0] != 0.5 || q[1] != 0.5 {
		t.Errorf("Query(0,0) = %v, want (0.5, 0.5)", q)
	}
	g.Query(3, 1, q)
	if q[0] != 3.5 || q[1] != 1.5 {
		t.Errorf("Query(3,1) = %v, want (3.5, 1.5)", q)
	}
}

func TestQueryInsideWindow(t *testing.T) {
	g, err := New(Resolution{7, 5}, window(-3, 2, 11, 9))
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 2)
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			g.Query(x, y, q)
			if !g.Window.Contains(q) {
				t.Fatalf("pixel (%d,%d) query %v outside window", x, y, q)
			}
		}
	}
}

func TestDegenerateWindowWidened(t *testing.T) {
	g, err := New(Resolution{4, 4}, window(2, 3, 2, 3)) // single point
	if err != nil {
		t.Fatal(err)
	}
	if g.Window.Max[0] <= g.Window.Min[0] || g.Window.Max[1] <= g.Window.Min[1] {
		t.Error("degenerate window not widened")
	}
}

func TestForDataset(t *testing.T) {
	pts := geom.NewPoints([]float64{0, 0, 10, 20}, 2)
	g, err := ForDataset(Resolution{10, 10}, pts, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Window.Min[0] != -1 || g.Window.Max[0] != 11 {
		t.Errorf("x window [%g, %g], want [-1, 11]", g.Window.Min[0], g.Window.Max[0])
	}
	if g.Window.Min[1] != -2 || g.Window.Max[1] != 22 {
		t.Errorf("y window [%g, %g], want [-2, 22]", g.Window.Min[1], g.Window.Max[1])
	}
	if _, err := ForDataset(Resolution{4, 4}, geom.NewPoints([]float64{1, 2, 3}, 3), 0); err == nil {
		t.Error("3-d dataset accepted")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g, _ := New(Resolution{5, 3}, window(0, 0, 1, 1))
	seen := map[int]bool{}
	for y := 0; y < 3; y++ {
		for x := 0; x < 5; x++ {
			i := g.Index(x, y)
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 15 {
		t.Errorf("covered %d indices, want 15", len(seen))
	}
}

func TestResolutionHelpers(t *testing.T) {
	if Res1280x960.String() != "1280x960" {
		t.Errorf("String = %q", Res1280x960.String())
	}
	if Res320x240.Pixels() != 76800 {
		t.Errorf("Pixels = %d", Res320x240.Pixels())
	}
}

func TestValues(t *testing.T) {
	v := NewValues(Resolution{3, 2})
	v.Set(2, 1, 7)
	v.Set(0, 0, -3)
	if v.At(2, 1) != 7 {
		t.Errorf("At = %g", v.At(2, 1))
	}
	lo, hi := v.MinMax()
	if lo != -3 || hi != 7 {
		t.Errorf("MinMax = %g, %g", lo, hi)
	}
}
