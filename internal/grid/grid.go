// Package grid models the screen: a W×H pixel raster mapped onto a
// two-dimensional data-space window. Each pixel's query point is the data
// coordinate of the pixel center, following the KDV formulation in which
// every pixel q gets a kernel density value F_P(q).
package grid

import (
	"fmt"

	"github.com/quadkdv/quad/internal/geom"
)

// Resolution is a screen size in pixels.
type Resolution struct{ W, H int }

// Standard resolutions used throughout the paper's evaluation (Section 7).
var (
	Res320x240   = Resolution{320, 240}
	Res640x480   = Resolution{640, 480}
	Res1280x960  = Resolution{1280, 960}
	Res2560x1920 = Resolution{2560, 1920}
)

// String formats the resolution as "WxH".
func (r Resolution) String() string { return fmt.Sprintf("%dx%d", r.W, r.H) }

// Pixels returns the total pixel count.
func (r Resolution) Pixels() int { return r.W * r.H }

// Grid maps pixel coordinates to data-space query points over a window.
type Grid struct {
	Res    Resolution
	Window geom.Rect // 2-d data-space window covered by the raster
	stepX  float64
	stepY  float64
}

// New creates a grid over the given window. The window must be
// two-dimensional and non-degenerate in area; a zero-extent side is widened
// by a tiny margin so every dataset (even a single point) gets a valid grid.
func New(res Resolution, window geom.Rect) (*Grid, error) {
	if res.W <= 0 || res.H <= 0 {
		return nil, fmt.Errorf("grid: non-positive resolution %s", res)
	}
	if window.Dim() != 2 {
		return nil, fmt.Errorf("grid: window must be 2-d, got %d-d", window.Dim())
	}
	w := window.Clone()
	for i := 0; i < 2; i++ {
		if w.Max[i] <= w.Min[i] {
			c := w.Min[i]
			w.Min[i] = c - 0.5
			w.Max[i] = c + 0.5
		}
	}
	return &Grid{
		Res:    res,
		Window: w,
		stepX:  (w.Max[0] - w.Min[0]) / float64(res.W),
		stepY:  (w.Max[1] - w.Min[1]) / float64(res.H),
	}, nil
}

// ForDataset creates a grid whose window is the bounding rectangle of the
// (2-d) dataset, expanded by marginFrac on each side so boundary hotspots
// are not clipped.
func ForDataset(res Resolution, pts geom.Points, marginFrac float64) (*Grid, error) {
	if pts.Dim != 2 {
		return nil, fmt.Errorf("grid: dataset must be 2-d, got %d-d", pts.Dim)
	}
	r := geom.BoundingRect(pts)
	for i := 0; i < 2; i++ {
		m := (r.Max[i] - r.Min[i]) * marginFrac
		r.Min[i] -= m
		r.Max[i] += m
	}
	return New(res, r)
}

// Query writes the data-space coordinate of pixel (px, py)'s center into dst
// and returns it. Pixel (0,0) is the lower-left corner of the window.
func (g *Grid) Query(px, py int, dst []float64) []float64 {
	dst[0] = g.Window.Min[0] + (float64(px)+0.5)*g.stepX
	dst[1] = g.Window.Min[1] + (float64(py)+0.5)*g.stepY
	return dst
}

// Index linearizes a pixel coordinate (row-major, y-major).
func (g *Grid) Index(px, py int) int { return py*g.Res.W + px }

// Values is a dense per-pixel value buffer matching the grid's raster.
type Values struct {
	Res  Resolution
	Data []float64
}

// NewValues allocates a zeroed value raster.
func NewValues(res Resolution) *Values {
	return &Values{Res: res, Data: make([]float64, res.Pixels())}
}

// At returns the value at pixel (px, py).
func (v *Values) At(px, py int) float64 { return v.Data[py*v.Res.W+px] }

// Set stores the value at pixel (px, py).
func (v *Values) Set(px, py int, x float64) { v.Data[py*v.Res.W+px] = x }

// MinMax returns the minimum and maximum stored values.
func (v *Values) MinMax() (lo, hi float64) {
	lo, hi = v.Data[0], v.Data[0]
	for _, x := range v.Data[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
