// Package grid models the screen: a W×H pixel raster mapped onto a
// two-dimensional data-space window. Each pixel's query point is the data
// coordinate of the pixel center, following the KDV formulation in which
// every pixel q gets a kernel density value F_P(q).
package grid

import (
	"fmt"

	"github.com/quadkdv/quad/internal/geom"
)

// Resolution is a screen size in pixels.
type Resolution struct{ W, H int }

// Standard resolutions used throughout the paper's evaluation (Section 7).
var (
	Res320x240   = Resolution{320, 240}
	Res640x480   = Resolution{640, 480}
	Res1280x960  = Resolution{1280, 960}
	Res2560x1920 = Resolution{2560, 1920}
)

// String formats the resolution as "WxH".
func (r Resolution) String() string { return fmt.Sprintf("%dx%d", r.W, r.H) }

// Pixels returns the total pixel count.
func (r Resolution) Pixels() int { return r.W * r.H }

// Grid maps pixel coordinates to data-space query points over a window.
//
// A Grid may be a sub-view of a larger conceptual raster (see Sub): offX and
// offY shift every pixel coordinate before the window mapping, so a view's
// pixel (0,0) is the parent's pixel (offX, offY). A directly constructed
// Grid has zero offsets.
type Grid struct {
	Res    Resolution
	Window geom.Rect // 2-d data-space window covered by the FULL raster
	stepX  float64
	stepY  float64
	offX   int
	offY   int
}

// New creates a grid over the given window. The window must be
// two-dimensional and non-degenerate in area; a zero-extent side is widened
// by a tiny margin so every dataset (even a single point) gets a valid grid.
func New(res Resolution, window geom.Rect) (*Grid, error) {
	if res.W <= 0 || res.H <= 0 {
		return nil, fmt.Errorf("grid: non-positive resolution %s", res)
	}
	if window.Dim() != 2 {
		return nil, fmt.Errorf("grid: window must be 2-d, got %d-d", window.Dim())
	}
	w := window.Clone()
	for i := 0; i < 2; i++ {
		if w.Max[i] <= w.Min[i] {
			c := w.Min[i]
			w.Min[i] = c - 0.5
			w.Max[i] = c + 0.5
		}
	}
	return &Grid{
		Res:    res,
		Window: w,
		stepX:  (w.Max[0] - w.Min[0]) / float64(res.W),
		stepY:  (w.Max[1] - w.Min[1]) / float64(res.H),
	}, nil
}

// ForDataset creates a grid whose window is the bounding rectangle of the
// (2-d) dataset, expanded by marginFrac on each side so boundary hotspots
// are not clipped.
func ForDataset(res Resolution, pts geom.Points, marginFrac float64) (*Grid, error) {
	if pts.Dim != 2 {
		return nil, fmt.Errorf("grid: dataset must be 2-d, got %d-d", pts.Dim)
	}
	r := geom.BoundingRect(pts)
	for i := 0; i < 2; i++ {
		m := (r.Max[i] - r.Min[i]) * marginFrac
		r.Min[i] -= m
		r.Max[i] += m
	}
	return New(res, r)
}

// Sub returns a view of g covering the w×h pixel block whose lower-left
// pixel is (x0, y0) of g's raster. The view shares g's window and steps, so
// the view's pixel (px, py) queries the BIT-IDENTICAL data-space coordinate
// of g's pixel (x0+px, y0+py) — the property the tile pyramid's
// stitched-mosaic conformance check relies on. The block must lie inside
// g's raster.
func (g *Grid) Sub(x0, y0, w, h int) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("grid: non-positive sub-view %dx%d", w, h)
	}
	if x0 < 0 || y0 < 0 || x0+w > g.Res.W || y0+h > g.Res.H {
		return nil, fmt.Errorf("grid: sub-view [%d,%d)+%dx%d outside raster %s", x0, y0, w, h, g.Res)
	}
	sub := *g
	sub.Res = Resolution{W: w, H: h}
	sub.offX = g.offX + x0
	sub.offY = g.offY + y0
	return &sub, nil
}

// Query writes the data-space coordinate of pixel (px, py)'s center into dst
// and returns it. Pixel (0,0) is the lower-left corner of the window (of the
// view, for sub-grids).
func (g *Grid) Query(px, py int, dst []float64) []float64 {
	dst[0] = g.Window.Min[0] + (float64(px+g.offX)+0.5)*g.stepX
	dst[1] = g.Window.Min[1] + (float64(py+g.offY)+0.5)*g.stepY
	return dst
}

// PixelEdge returns the data-space coordinate of the lower-left corner of
// pixel (px, py) — the tile-bbox form of the pixel mapping (pixel centers
// sit half a step further). Offsets apply like Query's.
func (g *Grid) PixelEdge(px, py int) (x, y float64) {
	return g.Window.Min[0] + float64(px+g.offX)*g.stepX,
		g.Window.Min[1] + float64(py+g.offY)*g.stepY
}

// Index linearizes a pixel coordinate (row-major, y-major).
func (g *Grid) Index(px, py int) int { return py*g.Res.W + px }

// Values is a dense per-pixel value buffer matching the grid's raster.
type Values struct {
	Res  Resolution
	Data []float64
}

// NewValues allocates a zeroed value raster.
func NewValues(res Resolution) *Values {
	return &Values{Res: res, Data: make([]float64, res.Pixels())}
}

// At returns the value at pixel (px, py).
func (v *Values) At(px, py int) float64 { return v.Data[py*v.Res.W+px] }

// Set stores the value at pixel (px, py).
func (v *Values) Set(px, py int, x float64) { v.Data[py*v.Res.W+px] = x }

// MinMax returns the minimum and maximum stored values.
func (v *Values) MinMax() (lo, hi float64) {
	lo, hi = v.Data[0], v.Data[0]
	for _, x := range v.Data[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
