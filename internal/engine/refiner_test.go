package engine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/kernel"
)

func TestRefinerConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	pts := clusteredPoints(rng, 1000)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	q := []float64{5, 5}
	exact := e.Exact(q)

	r := e.StartRefine(q)
	prevGap := math.Inf(1)
	steps := 0
	for !r.Exhausted() {
		lb, ub := r.Bounds()
		if lb > exact+1e-9*(1+exact) || ub < exact-1e-9*(1+exact) {
			t.Fatalf("step %d: bounds [%g, %g] do not sandwich %g", steps, lb, ub, exact)
		}
		r.Step()
		steps++
		if steps > 1_000_000 {
			t.Fatal("refiner did not exhaust")
		}
		_ = prevGap
	}
	lb, ub := r.Bounds()
	if lb != ub {
		t.Errorf("exhausted refiner has open interval [%g, %g]", lb, ub)
	}
	if math.Abs(lb-exact) > 1e-9*(1+exact) {
		t.Errorf("exhausted value %g, exact %g", lb, exact)
	}
	if r.Stats().Iterations != steps {
		t.Errorf("stats iterations %d, stepped %d", r.Stats().Iterations, steps)
	}
}

func TestRefinerGapShrinksMonotonically(t *testing.T) {
	// The max-gap pop order guarantees the TOTAL gap never grows after a
	// leaf refinement and shrinks when a node's children are tighter; check
	// it trends to 0.
	rng := rand.New(rand.NewSource(151))
	pts := clusteredPoints(rng, 2000)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	r := e.StartRefine([]float64{3, 7})
	first := r.Gap()
	for i := 0; i < 50 && !r.Exhausted(); i++ {
		r.Step()
	}
	mid := r.Gap()
	for !r.Exhausted() {
		r.Step()
	}
	last := r.Gap()
	if !(first >= mid && mid >= last-1e-15) {
		t.Errorf("gap did not shrink: %g → %g → %g", first, mid, last)
	}
	if last != 0 {
		t.Errorf("final gap %g, want 0", last)
	}
}

func TestRefineUntilMatchesEvalEps(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	pts := clusteredPoints(rng, 1500)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 20, rng.Float64() * 15}
		exact := e.Exact(q)
		r := e.Clone().StartRefine(q)
		lb, ub := r.RefineUntil(func(lb, ub float64) bool { return ub <= 1.01*lb })
		if exact > 0 {
			mid := (lb + ub) / 2
			if rel := math.Abs(mid-exact) / exact; rel > 0.01 {
				t.Fatalf("RefineUntil rel err %g", rel)
			}
		}
	}
}

func TestRefinerDeepTail(t *testing.T) {
	// Same drift regression as TestEpsGuaranteeDeepTail, via the stepwise
	// API.
	rng := rand.New(rand.NewSource(153))
	pts := clusteredPoints(rng, 3000)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	q := []float64{40, 40}
	exact := e.Exact(q)
	if exact == 0 {
		t.Skip("tail underflowed entirely")
	}
	r := e.StartRefine(q)
	lb, ub := r.RefineUntil(func(lb, ub float64) bool { return ub <= 1.01*lb })
	mid := (lb + ub) / 2
	if rel := math.Abs(mid-exact) / exact; rel > 0.01 {
		t.Fatalf("deep-tail stepwise rel err %g (got %g, exact %g)", rel, mid, exact)
	}
}

func TestRefinerStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	pts := clusteredPoints(rng, 500)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	r := e.StartRefine([]float64{5, 5})
	if r.Stats().NodesEvaluated != 1 {
		t.Errorf("fresh refiner evaluated %d nodes, want 1 (root)", r.Stats().NodesEvaluated)
	}
	for !r.Exhausted() {
		r.Step()
	}
	st := r.Stats()
	if st.PointsScanned != 500 {
		t.Errorf("full refinement scanned %d points, want 500", st.PointsScanned)
	}
	if st.LeafScans == 0 {
		t.Error("no leaf scans recorded")
	}
}
