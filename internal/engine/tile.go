// Tile-shared traversal: the render hot path refines every pixel of a raster
// against the same kd-tree, and neighboring pixels prune nearly identical
// node sets — per-pixel refinement from the root repeats the top of that
// work W×H times. The TileEngine amortizes it: one shared refinement per
// pixel tile classifies nodes against the tile's query rectangle into
//
//   - settled nodes — their tile-uniform [lb, ub] contribution is added once
//     for the whole tile (εKDV: within a budgeted fraction of the ε slack;
//     τKDV: only exactly-known contributions, so hot masks stay identical to
//     per-pixel refinement), and
//   - a residual frontier — a disjoint node cover of the rest.
//
// Per pixel, the refinement queue is then seeded from the frontier's
// tile-uniform bounds (zero bound evaluations — the bounds were computed once
// per tile) instead of the root, and refinement proceeds with the configured
// per-query bounds only where this pixel actually needs them. Frontier
// promotion feeds each pixel's termination state back into the shared
// frontier: nodes that successive pixels keep expanding are replaced
// tile-wide by their children, so later pixels skip that expansion too.
//
// Correctness: RectBounds guarantees lb ≤ F_R(q) ≤ ub for every q in the
// tile, so a pixel's aggregate [settled + seeded + refined] interval always
// brackets F_P(q) and the usual termination tests keep their guarantees
// (εKDV relative error; τKDV exact classification).
package engine

import (
	"sort"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
)

const (
	// DefaultMaxFrontier caps the residual frontier the shared phase
	// produces. Larger frontiers push more traversal into the shared phase
	// (good: amortized over the tile's pixels) but grow the per-pixel
	// queue-seeding copy, which costs no bound evaluations but is O(cap).
	DefaultMaxFrontier = 256
	// promoteHits is how many pixels must expand a frontier node before it
	// is promoted (replaced tile-wide by its children).
	promoteHits = 1
	// promoteCapFactor bounds frontier growth under promotion, as a
	// multiple of the configured frontier cap.
	promoteCapFactor = 3
	// settleFrac is the fraction of the εKDV error slack the shared phase
	// may spend on settled-node gaps. It must stay < 1 so per-pixel
	// refinement can always reach ub ≤ (1+ε)·lb even after fully refining
	// the frontier (the residual gap is then exactly the settled gap).
	settleFrac = 0.9
	// tileEpsFrac stops shared expansion once the tile-uniform bounds are
	// already within this fraction of the ε budget — the whole tile is then
	// answerable with (at most) queue-seeding work per pixel.
	tileEpsFrac = 0.5
	// expandBudgetFactor caps shared-phase pops at this multiple of the
	// frontier cap, a guard against long leaf-pop runs.
	expandBudgetFactor = 4
	// subFrontierFactor scales the second (sub-tile) level's frontier cap
	// relative to the parent frontier it starts from. Sub-tile rectangles
	// are much smaller, so re-bounded parent seeds settle readily and the
	// sub level may expand further — but expansion that cannot settle only
	// grows the per-pixel seeding cost, so the room is proportional to the
	// parent frontier rather than a fixed deep cap.
	subFrontierFactor = 2
	// subFrontierSlack is the additive part of the sub-level cap, so small
	// parent frontiers still have room to reach settleable granularity.
	subFrontierSlack = 64
	// subExpandBudget caps the sub level's expansion pops. The sub level
	// amortizes over only a sub-tile's worth of pixels, so unbounded
	// expansion hoping for settles can cost more shared work than the pixels
	// it serves would spend refining — dense datasets at coarse resolutions
	// hit exactly that. ~12 pops per pixel of a default 4×4 sub-tile.
	subExpandBudget = 192
	// coarseSettleFrac is the share of the settle budget the OUTER level of a
	// two-level build may spend. Settling at the coarse rectangle costs the
	// budget at coarse-gap granularity, while the sub level settles the same
	// mass against a much smaller rectangle (envelope gaps shrink with the
	// square of the rect width) — so most of the budget is reserved for it.
	coarseSettleFrac = 0.25
)

// Frontier is the reusable result of one shared tile refinement. It is
// owned by a single worker (no internal locking) and is valid only for query
// points inside the tile rectangle it was built for.
type Frontier struct {
	// Tile is the data-space rectangle spanning the tile's pixel centers.
	Tile geom.Rect
	// SettledLB/SettledUB are the summed tile-uniform bounds of settled
	// nodes: every pixel of the tile adds them as a constant.
	SettledLB, SettledUB float64
	// Decided reports a tile-wide τKDV classification: every pixel of the
	// tile is Hot (lb ≥ τ) or not (ub < τ) without per-pixel work.
	Decided bool
	Hot     bool

	// SettledGap tracks the worst-case per-pixel uncertainty of all settled
	// mass (constant settles plus envelope settles, across every level that
	// fed this frontier) — the spent part of the εKDV settle budget.
	SettledGap float64

	seeds          []item // residual frontier with tile-uniform bounds
	seedLB, seedUB float64
	hits           []int // per-seed expansion counts since last promotion

	// Collapsed envelope: when envOK, envLB/envUB aggregate per-node envelope
	// bounds into one quadratic form each (centered on envCenter), evaluated
	// in O(d) per pixel with zero node visits. Two usages share the machinery:
	//
	//   - εKDV (envSettled): the envelope IS settled mass — nodes whose
	//     envelope gap fits the settle budget are folded in and leave the
	//     frontier, and every pixel adds the envelope to its refinement base.
	//   - τKDV (!envSettled): the envelope covers the whole residual frontier
	//     as a pre-check — a pixel whose envelope bound already clears τ
	//     one-sidedly skips refinement entirely.
	envOK      bool
	envSettled bool
	envLB      bounds.TileEnvelope
	envUB      bounds.TileEnvelope
	envCenter  []float64
}

// envBounds evaluates the collapsed frontier envelope at q, including the
// settled contribution. Valid only when envOK.
func (f *Frontier) envBounds(q []float64) (lb, ub float64) {
	lb = f.SettledLB + f.envLB.Eval(q, f.envCenter)
	ub = f.SettledUB + f.envUB.Eval(q, f.envCenter)
	if lb < 0 {
		lb = 0
	}
	return lb, ub
}

// initEnv arms an empty settled envelope centered on the frontier's tile.
func (f *Frontier) initEnv() {
	d := len(f.Tile.Min)
	if cap(f.envCenter) < d {
		f.envCenter = make([]float64, d)
	}
	f.envCenter = f.envCenter[:d]
	for i := 0; i < d; i++ {
		f.envCenter[i] = (f.Tile.Min[i] + f.Tile.Max[i]) / 2
	}
	f.envLB.Reset(d)
	f.envUB.Reset(d)
	f.envOK, f.envSettled = true, true
}

// inheritEnv copies a parent frontier's settled envelope — valid here because
// this frontier's tile lies inside the parent's. The parent's center is kept
// (the forms are expressed about it).
func (f *Frontier) inheritEnv(parent *Frontier) {
	if !parent.envOK || !parent.envSettled {
		return
	}
	f.envCenter = append(f.envCenter[:0], parent.envCenter...)
	f.envLB.CopyFrom(&parent.envLB)
	f.envUB.CopyFrom(&parent.envUB)
	f.envOK, f.envSettled = true, true
}

// Size returns the residual frontier's node count.
func (f *Frontier) Size() int { return len(f.seeds) }

// Saturated reports that the shared phase pinned the frontier cap without
// settling the tile: the tile rectangle is too coarse for this data density,
// so the frontier is mostly shattered leaves with loose tile-uniform bounds.
// Seeding every pixel from such a frontier costs more than refining from the
// root — renderers should fall back to the per-pixel engine for the tile.
func (te *TileEngine) Saturated(f *Frontier) bool {
	return len(f.seeds) >= te.frontierCap()
}

// Settled returns the tile-wide settled contribution interval.
func (f *Frontier) Settled() (lb, ub float64) { return f.SettledLB, f.SettledUB }

func (f *Frontier) reset(tile geom.Rect) {
	// Copy the rect: callers reuse their rect buffers across tiles, while
	// the frontier (and Promote, which re-evaluates against Tile) may
	// outlive that reuse.
	f.Tile.Min = append(f.Tile.Min[:0], tile.Min...)
	f.Tile.Max = append(f.Tile.Max[:0], tile.Max...)
	f.SettledLB, f.SettledUB = 0, 0
	f.SettledGap = 0
	f.Decided, f.Hot = false, false
	f.seeds = f.seeds[:0]
	f.seedLB, f.seedUB = 0, 0
	f.hits = f.hits[:0]
	f.envOK, f.envSettled = false, false
}

// setSeeds installs the residual frontier, assigning seed indices and
// recomputing the seeded bound sums.
func (f *Frontier) setSeeds(items []item) {
	f.seeds = append(f.seeds[:0], items...)
	f.hits = f.hits[:0]
	f.seedLB, f.seedUB = 0, 0
	for i := range f.seeds {
		f.seeds[i].seed = i
		f.seedLB += f.seeds[i].lb
		f.seedUB += f.seeds[i].ub
		f.hits = append(f.hits, 0)
	}
}

// TileEngine runs the shared (per-tile) phase of the tile-shared traversal
// on top of a per-pixel Engine. Like the Engine it owns scratch state and
// must not be shared between goroutines.
type TileEngine struct {
	*Engine
	// MaxFrontier caps the residual frontier (0 means DefaultMaxFrontier).
	MaxFrontier int

	theap   []item    // shared-phase max-gap heap
	scratch []item    // candidate staging for settle/promote passes
	gapbuf  []float64 // per-candidate envelope gaps for the settle sort
}

// NewTileEngine wraps an engine for tile-shared rendering.
func NewTileEngine(e *Engine) *TileEngine { return &TileEngine{Engine: e} }

// subCap is the sub-level frontier cap for a parent frontier of n seeds.
func subCap(n int) int { return subFrontierFactor*n + subFrontierSlack }

func (te *TileEngine) frontierCap() int {
	if te.MaxFrontier > 0 {
		return te.MaxFrontier
	}
	return DefaultMaxFrontier
}

// sharedExpand runs the shared max-gap expansion against the tile rectangle
// until stop() holds on the exact tile-uniform aggregate, the frontier cap
// is reached, or the tree is exhausted. The expansion starts from seeds
// (each re-bounded against this tile's rectangle) when given, else from the
// root — the former is the second level of the two-level traversal, where a
// coarse tile frontier is tightened against a sub-tile rectangle. It
// returns the surviving candidate items (a disjoint node cover of the
// un-settled dataset) in te.scratch and the exact candidate bound sums.
// stop receives the tile-uniform aggregate bounds including base, the
// already-settled contribution interval (valid for every pixel of the
// tile).
func (te *TileEngine) sharedExpand(tile geom.Rect, seeds []item, baseLB, baseUB float64, fcap, budget int, st *Stats, stop func(lb, ub float64) bool) (cands []item, sumLB, sumUB float64) {
	te.theap = te.theap[:0]
	var pendLB, pendUB float64
	if seeds == nil {
		root := te.Tree.Root
		rlb, rub := te.Ev.RectBounds(root, tile)
		st.NodesEvaluated++
		te.heapPushTile(item{node: root, lb: rlb, ub: rub, seed: -1})
		pendLB, pendUB = rlb, rub
	} else {
		for _, it := range seeds {
			lb, ub := te.Ev.RectBounds(it.node, tile)
			st.NodesEvaluated++
			te.heapPushTile(item{node: it.node, lb: lb, ub: ub, seed: -1})
			pendLB += lb
			pendUB += ub
		}
	}
	// Popped leaves can't expand; they go straight to the candidate list.
	te.scratch = te.scratch[:0]
	leafLB, leafUB := baseLB, baseUB

	for pops := 0; len(te.theap) > 0 && len(te.theap)+len(te.scratch) < fcap && pops < budget; pops++ {
		// The pending sums are maintained incrementally; before trusting a
		// stop decision (or whenever accumulated float drift turns a sum
		// negative) they are recomputed exactly, mirroring the per-pixel
		// refinement loop.
		if pendLB < 0 || pendUB < 0 || stop(leafLB+pendLB, leafUB+pendUB) {
			pendLB, pendUB = te.tilePending()
			if stop(leafLB+pendLB, leafUB+pendUB) {
				break
			}
		}
		it := te.heapPopTile()
		n := it.node
		if n.IsLeaf() {
			te.scratch = append(te.scratch, it)
			leafLB += it.lb
			leafUB += it.ub
			pendLB -= it.lb
			pendUB -= it.ub
			continue
		}
		llb, lub := te.Ev.RectBounds(n.Left, tile)
		rlb, rub := te.Ev.RectBounds(n.Right, tile)
		st.NodesEvaluated += 2
		te.heapPushTile(item{node: n.Left, lb: llb, ub: lub, seed: -1})
		te.heapPushTile(item{node: n.Right, lb: rlb, ub: rub, seed: -1})
		pendLB += llb + rlb - it.lb
		pendUB += lub + rub - it.ub
	}
	te.scratch = append(te.scratch, te.theap...)
	pendLB, pendUB = te.tilePending()
	sumLB, sumUB = leafLB+pendLB, leafUB+pendUB
	// One final check so a decision reached exactly at the frontier cap
	// (τKDV tiles in particular) is not lost.
	stop(sumLB, sumUB)
	return te.scratch, sumLB, sumUB
}

// BuildFrontierEps runs the shared phase for an εKDV tile: expand until the
// tile-uniform bounds are within tileEpsFrac·ε or the frontier cap is hit,
// then settle the smallest-gap nodes within the settleFrac·ε error budget —
// into the collapsed envelope when the evaluator supports it (the envelope
// gap is second order in the tile size, so nearly the whole frontier usually
// fits the budget), else as tile-constant bounds.
func (te *TileEngine) BuildFrontierEps(tile geom.Rect, eps float64, f *Frontier) Stats {
	return te.buildEps(tile, nil, te.frontierCap(), eps, 1, f)
}

// BuildFrontierEpsCoarse is BuildFrontierEps for the OUTER level of a
// two-level build: it spends only coarseSettleFrac of the settle budget,
// reserving the rest for the sub level's far cheaper settles.
func (te *TileEngine) BuildFrontierEpsCoarse(tile geom.Rect, eps float64, f *Frontier) Stats {
	return te.buildEps(tile, nil, te.frontierCap(), eps, coarseSettleFrac, f)
}

// BuildFrontierEpsFrom is BuildFrontierEps seeded from a coarser frontier
// instead of the root — the second level of the two-level traversal. tile
// must lie inside parent's tile; parent's seeds are re-bounded against the
// finer rectangle (much tighter — rect-to-rect distance intervals shrink
// with the query rectangle) and its settled contribution carries over.
func (te *TileEngine) BuildFrontierEpsFrom(parent *Frontier, tile geom.Rect, eps float64, f *Frontier) Stats {
	if len(parent.seeds) == 0 {
		// Fully settled parent: the sub-frontier is the same settled state
		// (a nil seed slice must not fall back to root expansion — the
		// settled mass would be counted twice).
		f.reset(tile)
		f.SettledLB, f.SettledUB = parent.SettledLB, parent.SettledUB
		f.SettledGap = parent.SettledGap
		f.inheritEnv(parent)
		return Stats{}
	}
	return te.buildEps(tile, parent, subCap(len(parent.seeds)), eps, 1, f)
}

func (te *TileEngine) buildEps(tile geom.Rect, parent *Frontier, fcap int, eps, budgetFrac float64, f *Frontier) Stats {
	var st Stats
	f.reset(tile)
	var seeds []item
	var parentGap float64
	if parent != nil {
		seeds = parent.seeds
		f.SettledLB, f.SettledUB = parent.SettledLB, parent.SettledUB
		parentGap = parent.SettledGap
		f.inheritEnv(parent)
	}
	if !f.envOK && te.Ev.SupportsEnvelope() {
		f.initEnv()
	}
	// The expansion's stop test and settle budget see the settled envelope
	// through its exact value range over this tile: the envelope is settled
	// mass like the constant part, just query-dependent.
	baseLB, baseUB := f.SettledLB, f.SettledUB
	if f.envOK {
		elo, _ := f.envLB.RangeRect(tile, f.envCenter)
		_, uhi := f.envUB.RangeRect(tile, f.envCenter)
		baseLB += elo
		baseUB += uhi
		if baseLB < 0 {
			baseLB = 0
		}
	}
	budgetPops := expandBudgetFactor * fcap
	if parent != nil && budgetPops > subExpandBudget {
		budgetPops = subExpandBudget
	}
	cands, sumLB, _ := te.sharedExpand(tile, seeds, baseLB, baseUB, fcap, budgetPops, &st, func(lb, ub float64) bool {
		return ub <= (1+tileEpsFrac*eps)*lb
	})
	// Settle greedily by ascending gap while the cumulative settled gap
	// (including what the parent level already settled) stays within the
	// budget. sumLB lower-bounds every pixel's final lb (each candidate's
	// tile lb ≤ F_R(q)), so a total settled gap ≤ settleFrac·ε·sumLB keeps
	// ub ≤ (1+ε)·lb reachable for every pixel. With an envelope the per-node
	// cost of settling is its envelope gap — second order in the tile size —
	// instead of the loose rect-uniform gap, which is what empties most of
	// the frontier.
	budget := budgetFrac * settleFrac * eps * sumLB
	spent := parentGap
	rest := cands[:0]
	if f.envOK {
		gaps := te.gapbuf[:0]
		for i := range cands {
			g, _ := te.Ev.RectEnvelopeGap(cands[i].node, tile)
			gaps = append(gaps, g)
		}
		te.gapbuf = gaps
		st.NodesEvaluated += len(cands)
		sortCandidatesByGap(cands, gaps)
		for i := range cands {
			if spent+gaps[i] <= budget {
				spent += gaps[i]
				te.Ev.AccumulateRectEnvelope(cands[i].node, tile, f.envCenter, &f.envLB, &f.envUB)
				st.NodesEvaluated++
				continue
			}
			rest = append(rest, cands[i])
		}
	} else {
		sortCandidates(cands)
		for _, it := range cands {
			if g := gap(it); spent+g <= budget {
				spent += g
				f.SettledLB += it.lb
				f.SettledUB += it.ub
				continue
			}
			rest = append(rest, it)
		}
	}
	f.SettledGap = spent
	f.setSeeds(rest)
	return st
}

// BuildFrontierTau runs the shared phase for a τKDV tile. When the tile's
// uniform bounds already decide the classification (lb ≥ τ tile-wide, or
// ub < τ tile-wide — strict, so densities exactly at τ stay hot exactly as
// in per-pixel refinement), the frontier comes back Decided and pixels need
// no work at all. Otherwise only zero-gap nodes settle, keeping every
// pixel's classification bit-identical to per-pixel refinement.
func (te *TileEngine) BuildFrontierTau(tile geom.Rect, tau float64, f *Frontier) Stats {
	return te.buildTau(tile, nil, 0, 0, te.frontierCap(), tau, f)
}

// BuildFrontierTauFrom is BuildFrontierTau seeded from a coarser frontier
// (see BuildFrontierEpsFrom). A sub-tile can come back Decided even when the
// whole tile could not.
func (te *TileEngine) BuildFrontierTauFrom(parent *Frontier, tile geom.Rect, tau float64, f *Frontier) Stats {
	if len(parent.seeds) == 0 {
		f.reset(tile)
		f.SettledLB, f.SettledUB = parent.SettledLB, parent.SettledUB
		f.Decided, f.Hot = parent.Decided, parent.Hot
		return Stats{}
	}
	return te.buildTau(tile, parent.seeds, parent.SettledLB, parent.SettledUB, subCap(len(parent.seeds)), tau, f)
}

func (te *TileEngine) buildTau(tile geom.Rect, seeds []item, baseLB, baseUB float64, fcap int, tau float64, f *Frontier) Stats {
	var st Stats
	f.reset(tile)
	f.SettledLB, f.SettledUB = baseLB, baseUB
	budgetPops := expandBudgetFactor * fcap
	if seeds != nil && budgetPops > subExpandBudget {
		budgetPops = subExpandBudget
	}
	cands, _, _ := te.sharedExpand(tile, seeds, baseLB, baseUB, fcap, budgetPops, &st, func(lb, ub float64) bool {
		if lb >= tau {
			f.Decided, f.Hot = true, true
			return true
		}
		if ub < tau {
			f.Decided, f.Hot = true, false
			return true
		}
		return false
	})
	if f.Decided {
		return st
	}
	rest := cands[:0]
	for _, it := range cands {
		if gap(it) == 0 {
			f.SettledLB += it.lb
			f.SettledUB += it.ub
			continue
		}
		rest = append(rest, it)
	}
	f.setSeeds(rest)
	te.buildEnvelope(f, &st)
	return st
}

// Promote replaces frontier nodes that promoteHits pixels had to expand with
// their children (evaluated once against the tile rectangle), bounded by
// promoteCapFactor·cap — the "reuse the previous pixel's termination state"
// feedback that walks the shared frontier down to where pixels actually
// stop. Call it between pixels of one tile.
func (te *TileEngine) Promote(f *Frontier) Stats {
	var st Stats
	limit := promoteCapFactor * te.frontierCap()
	if len(f.seeds) >= limit {
		return st
	}
	promote := 0
	for i, h := range f.hits {
		if h >= promoteHits && !f.seeds[i].node.IsLeaf() {
			promote++
		}
	}
	if promote == 0 || len(f.seeds)+promote > limit {
		return st
	}
	out := te.scratch[:0]
	for i, it := range f.seeds {
		if f.hits[i] >= promoteHits && !it.node.IsLeaf() {
			n := it.node
			llb, lub := te.Ev.RectBounds(n.Left, f.Tile)
			rlb, rub := te.Ev.RectBounds(n.Right, f.Tile)
			st.NodesEvaluated += 2
			out = append(out,
				item{node: n.Left, lb: llb, ub: lub},
				item{node: n.Right, lb: rlb, ub: rub})
			continue
		}
		out = append(out, it)
	}
	te.scratch = out
	f.setSeeds(out)
	if f.envOK && !f.envSettled {
		// The τKDV pre-check envelope covers the seed set, which just
		// changed; re-collapse it. (The εKDV settled envelope covers settled
		// mass only — promotion does not touch it.)
		te.buildEnvelope(f, &st)
	}
	return st
}

// buildEnvelope collapses the frontier's FULL seed set into the aggregate
// envelope forms — the τKDV pre-check variant (!envSettled): the envelope
// mirrors the residual frontier instead of replacing it, so EvalTauFrom can
// try a one-sided O(d) classification before seeding the refinement heap.
func (te *TileEngine) buildEnvelope(f *Frontier, st *Stats) {
	f.envSettled = false
	d := len(f.Tile.Min)
	if cap(f.envCenter) < d {
		f.envCenter = make([]float64, d)
	}
	f.envCenter = f.envCenter[:d]
	for i := 0; i < d; i++ {
		f.envCenter[i] = (f.Tile.Min[i] + f.Tile.Max[i]) / 2
	}
	f.envLB.Reset(d)
	f.envUB.Reset(d)
	for i := range f.seeds {
		if !te.Ev.AccumulateRectEnvelope(f.seeds[i].node, f.Tile, f.envCenter, &f.envLB, &f.envUB) {
			f.envOK = false
			return
		}
		st.NodesEvaluated++
	}
	f.envOK = true
}

// sortCandidatesByGap orders cands (and the parallel gaps slice) by ascending
// gap, tie-broken on the node's point range for determinism.
func sortCandidatesByGap(cands []item, gaps []float64) {
	sort.Sort(&candGapSorter{cands, gaps})
}

type candGapSorter struct {
	items []item
	gaps  []float64
}

func (s *candGapSorter) Len() int { return len(s.items) }
func (s *candGapSorter) Less(i, j int) bool {
	if s.gaps[i] != s.gaps[j] {
		return s.gaps[i] < s.gaps[j]
	}
	return s.items[i].node.Start < s.items[j].node.Start
}
func (s *candGapSorter) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.gaps[i], s.gaps[j] = s.gaps[j], s.gaps[i]
}

// sortCandidates orders items by ascending gap, tie-broken on the node's
// point range so the settle split is fully deterministic.
func sortCandidates(items []item) {
	sort.Slice(items, func(i, j int) bool {
		gi, gj := gap(items[i]), gap(items[j])
		if gi != gj {
			return gi < gj
		}
		return items[i].node.Start < items[j].node.Start
	})
}

// --- shared-phase heap (same max-gap ordering as the per-pixel queue) ---

func (te *TileEngine) heapPushTile(it item) {
	te.theap = append(te.theap, it)
	i := len(te.theap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if gap(te.theap[parent]) >= gap(te.theap[i]) {
			break
		}
		te.theap[parent], te.theap[i] = te.theap[i], te.theap[parent]
		i = parent
	}
}

func (te *TileEngine) heapPopTile() item {
	h := te.theap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	te.theap = h[:last]
	h = te.theap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && gap(h[l]) > gap(h[big]) {
			big = l
		}
		if r < len(h) && gap(h[r]) > gap(h[big]) {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return top
}

func (te *TileEngine) tilePending() (lb, ub float64) {
	for _, it := range te.theap {
		lb += it.lb
		ub += it.ub
	}
	return lb, ub
}

// EvalEpsFrom answers an εKDV query for a pixel inside the frontier's tile,
// warm-started from the shared frontier. The guarantee is the same as
// EvalEps: the returned value is within relative error ε of F_P(q).
func (e *Engine) EvalEpsFrom(f *Frontier, q []float64, eps float64) (float64, Stats) {
	lb, ub, st := e.refineFrom(f, q, func(lb, ub float64) bool {
		return ub <= (1+eps)*lb
	})
	st.LB, st.UB = lb, ub
	return (lb + ub) / 2, st
}

// EvalTauFrom answers a τKDV query for a pixel inside the frontier's tile,
// warm-started from the shared frontier. The classification is exactly the
// per-pixel engine's: F_P(q) ≥ τ.
func (e *Engine) EvalTauFrom(f *Frontier, q []float64, tau float64) (bool, Stats) {
	if f.Decided {
		return f.Hot, Stats{}
	}
	if f.envOK && !f.envSettled {
		// Each envelope side is an independently valid bound, so a one-sided
		// decision here is exactly the classification refinement would reach
		// (strict ub < τ keeps densities at exactly τ hot, as everywhere).
		lb, ub := f.envBounds(q)
		if lb >= tau {
			return true, Stats{Iterations: 1, LB: lb, UB: ub}
		}
		if ub < tau {
			return false, Stats{Iterations: 1, LB: lb, UB: ub}
		}
	}
	lb, ub, st := e.refineFrom(f, q, func(lb, ub float64) bool {
		return lb >= tau || ub <= tau
	})
	st.LB, st.UB = lb, ub
	return lb >= tau, st
}

// refineFrom is the Table 3 refinement loop seeded from a tile frontier
// instead of the root: the queue starts with the frontier's tile-uniform
// bounds (no bound evaluations — they were computed once per tile) plus the
// settled contribution as a constant base, and per-query bounds are spent
// only on the nodes this pixel actually needs refined. Expansions of seed
// items are recorded in the frontier's hit counters for Promote.
func (e *Engine) refineFrom(f *Frontier, q []float64, done func(lb, ub float64) bool) (flb, fub float64, st Stats) {
	e.heap = append(e.heap[:0], f.seeds...)
	e.heapify()
	baseLB, baseUB := f.SettledLB, f.SettledUB
	if f.envOK && f.envSettled {
		// The settled envelope is part of this pixel's base: one O(d)
		// evaluation per side covers every node folded into it.
		baseLB += f.envLB.Eval(q, f.envCenter)
		baseUB += f.envUB.Eval(q, f.envCenter)
		if baseLB < 0 {
			baseLB = 0
		}
		if baseUB < baseLB {
			mid := (baseLB + baseUB) / 2
			baseLB, baseUB = mid, mid
		}
	}

	var exactAcc float64
	lbPend, ubPend := f.seedLB, f.seedUB
	for len(e.heap) > 0 {
		if lbPend < 0 || ubPend < 0 || done(baseLB+exactAcc+lbPend, baseUB+exactAcc+ubPend) {
			lbPend, ubPend = e.recomputePending()
			if done(baseLB+exactAcc+lbPend, baseUB+exactAcc+ubPend) {
				break
			}
		}
		st.Iterations++
		it := e.heapPop()
		n := it.node
		if n.IsLeaf() {
			if it.seed >= 0 {
				// A leaf seed still carries its loose tile-uniform bounds.
				// Tighten with this pixel's bounds before committing to an
				// exact scan — the per-query bounds usually shrink the gap
				// enough that the scan is never needed.
				llb, lub := e.Ev.Bounds(n, q)
				st.NodesEvaluated++
				lbPend += llb - it.lb
				ubPend += lub - it.ub
				e.heapPush(item{node: n, lb: llb, ub: lub, seed: -1})
				continue
			}
			exactAcc += e.Ev.ExactNode(e.Tree, n, q)
			st.LeafScans++
			st.PointsScanned += n.Size()
			lbPend -= it.lb
			ubPend -= it.ub
			continue
		}
		if it.seed >= 0 {
			f.hits[it.seed]++
		}
		llb, lub := e.Ev.Bounds(n.Left, q)
		rlb, rub := e.Ev.Bounds(n.Right, q)
		st.NodesEvaluated += 2
		lbPend += llb + rlb - it.lb
		ubPend += lub + rub - it.ub
		e.heapPush(item{node: n.Left, lb: llb, ub: lub, seed: -1})
		e.heapPush(item{node: n.Right, lb: rlb, ub: rub, seed: -1})
	}
	if len(e.heap) == 0 {
		// Fully refined: only the settled tile-wide gap remains.
		return baseLB + exactAcc, baseUB + exactAcc, st
	}
	lb, ub := baseLB+exactAcc+lbPend, baseUB+exactAcc+ubPend
	if lb > ub {
		mid := (lb + ub) / 2
		lb, ub = mid, mid
	}
	return lb, ub, st
}
