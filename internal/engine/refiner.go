package engine

// Refiner exposes the Table 3 refinement loop one step at a time, so callers
// can interleave the refinement of several aggregates and stop on conditions
// the engine doesn't know about — the mechanism behind kernel density
// classification (racing per-class density bounds) and any anytime use of
// the bounds.
//
// A Refiner borrows its Engine exclusively until the caller is done with it;
// the Engine's own Eval* methods must not be used concurrently. Use
// Engine.Clone to refine several queries at once.
type Refiner struct {
	e *Engine
	q []float64

	exactAcc       float64
	lbPend, ubPend float64
	st             Stats
	heap           []item
}

// StartRefine begins refining F_P(q)'s bounds. The returned Refiner starts
// with the root bounds already evaluated.
func (e *Engine) StartRefine(q []float64) *Refiner {
	r := &Refiner{e: e, q: q}
	lb, ub := e.Ev.Bounds(e.Tree.Root, q)
	r.st.NodesEvaluated++
	r.push(item{node: e.Tree.Root, lb: lb, ub: ub})
	r.lbPend, r.ubPend = lb, ub
	return r
}

// Bounds returns the current certified interval [lb, ub] around F_P(q).
func (r *Refiner) Bounds() (lb, ub float64) {
	if len(r.heap) == 0 {
		return r.exactAcc, r.exactAcc
	}
	if r.lbPend < 0 || r.ubPend < 0 {
		r.recompute()
	}
	lb, ub = r.exactAcc+r.lbPend, r.exactAcc+r.ubPend
	if lb < 0 {
		lb = 0
	}
	if lb > ub {
		mid := (lb + ub) / 2
		lb, ub = mid, mid
	}
	return lb, ub
}

// Gap returns ub − lb, the current uncertainty.
func (r *Refiner) Gap() float64 {
	lb, ub := r.Bounds()
	return ub - lb
}

// Exhausted reports whether the bounds are exact (nothing left to refine).
func (r *Refiner) Exhausted() bool { return len(r.heap) == 0 }

// Stats returns the work counters accumulated so far.
func (r *Refiner) Stats() Stats { return r.st }

// Step performs one refinement iteration (pop + split or leaf scan) and
// reports whether further refinement is possible.
func (r *Refiner) Step() bool {
	if len(r.heap) == 0 {
		return false
	}
	r.st.Iterations++
	it := r.pop()
	n := it.node
	if n.IsLeaf() {
		r.exactAcc += r.e.Ev.ExactNode(r.e.Tree, n, r.q)
		r.st.LeafScans++
		r.st.PointsScanned += n.Size()
		r.lbPend -= it.lb
		r.ubPend -= it.ub
	} else {
		llb, lub := r.e.Ev.Bounds(n.Left, r.q)
		rlb, rub := r.e.Ev.Bounds(n.Right, r.q)
		r.st.NodesEvaluated += 2
		r.lbPend += llb + rlb - it.lb
		r.ubPend += lub + rub - it.ub
		r.push(item{node: n.Left, lb: llb, ub: lub})
		r.push(item{node: n.Right, lb: rlb, ub: rub})
	}
	return len(r.heap) > 0
}

// RefineUntil steps until cond(lb, ub) holds or the bounds are exact, and
// returns the final bounds. The condition is re-verified on drift-free
// recomputed pending sums before it is trusted (see Engine.refine).
func (r *Refiner) RefineUntil(cond func(lb, ub float64) bool) (lb, ub float64) {
	for {
		if r.lbPend < 0 || r.ubPend < 0 || cond(r.rawBounds()) {
			r.recompute()
			if cond(r.rawBounds()) {
				return r.Bounds()
			}
		}
		if !r.Step() {
			return r.Bounds()
		}
	}
}

func (r *Refiner) rawBounds() (float64, float64) {
	return r.exactAcc + r.lbPend, r.exactAcc + r.ubPend
}

func (r *Refiner) recompute() {
	r.lbPend, r.ubPend = 0, 0
	for _, it := range r.heap {
		r.lbPend += it.lb
		r.ubPend += it.ub
	}
}

// --- Refiner-local heap (same max-gap ordering as the engine's). ---

func (r *Refiner) push(it item) {
	r.heap = append(r.heap, it)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if gap(r.heap[parent]) >= gap(r.heap[i]) {
			break
		}
		r.heap[parent], r.heap[i] = r.heap[i], r.heap[parent]
		i = parent
	}
}

func (r *Refiner) pop() item {
	h := r.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	r.heap = h[:last]
	h = r.heap
	i := 0
	for {
		l, rc := 2*i+1, 2*i+2
		big := i
		if l < len(h) && gap(h[l]) > gap(h[big]) {
			big = l
		}
		if rc < len(h) && gap(h[rc]) > gap(h[big]) {
			big = rc
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return top
}
