package engine

import "github.com/quadkdv/quad/internal/geom"

// Renderer is the engine surface the render path drives: per-pixel εKDV/τKDV
// evaluation, the tile-shared frontier protocol, and the exact fallbacks. Two
// implementations exist — PointerRenderer over the original *kdtree.Node tree
// and FlatRenderer over the SoA flat tree — and the render path is written
// against this interface so the layout is a construction-time choice
// (quad.WithEngineLayout). The per-call interface dispatch is amortized over
// an entire tile build or pixel refinement, so it is not measurable against
// the traversal work behind it.
//
// Both implementations produce bit-identical rasters for identical
// configurations; the conformance flat-vs-pointer differential pass keeps
// the pointer engine as the test oracle for the flat one.
type Renderer interface {
	// NewFront returns an empty reusable frontier of the renderer's
	// representation; it may only be passed back to the same renderer kind.
	NewFront() Front

	BuildFrontierEps(tile geom.Rect, eps float64, f Front) Stats
	BuildFrontierEpsCoarse(tile geom.Rect, eps float64, f Front) Stats
	BuildFrontierEpsFrom(parent Front, tile geom.Rect, eps float64, f Front) Stats
	BuildFrontierTau(tile geom.Rect, tau float64, f Front) Stats
	BuildFrontierTauFrom(parent Front, tile geom.Rect, tau float64, f Front) Stats
	Promote(f Front) Stats
	Saturated(f Front) bool

	EvalEps(q []float64, eps float64) (float64, Stats)
	EvalTau(q []float64, tau float64) (bool, Stats)
	EvalEpsFrom(f Front, q []float64, eps float64) (float64, Stats)
	EvalTauFrom(f Front, q []float64, tau float64) (bool, Stats)

	// Exact computes F_P(q) exactly through the tree.
	Exact(q []float64) float64
	// RootBounds returns the configured method's whole-dataset bounds at q
	// without refinement (paper Section 7.3 diagnostics).
	RootBounds(q []float64) (lb, ub float64)
}

// Front is a tile frontier handle: the opaque, reusable product of a
// renderer's shared phase. Concrete types are *Frontier and *FlatFrontier.
type Front interface {
	// State reports a tile-wide τKDV classification: decided means every
	// pixel of the tile shares the hot bit without per-pixel work.
	State() (decided, hot bool)
	// Size returns the residual frontier's node count.
	Size() int
}

// State reports the tile-wide τKDV classification (Front).
func (f *Frontier) State() (decided, hot bool) { return f.Decided, f.Hot }

// PointerRenderer adapts the pointer-tree TileEngine to the Renderer
// surface. The concrete methods (promoted from TileEngine/Engine) remain
// available for code that holds the concrete type.
type PointerRenderer struct{ *TileEngine }

// NewFront returns an empty *Frontier.
func (r PointerRenderer) NewFront() Front { return new(Frontier) }

func (r PointerRenderer) BuildFrontierEps(tile geom.Rect, eps float64, f Front) Stats {
	return r.TileEngine.BuildFrontierEps(tile, eps, f.(*Frontier))
}

func (r PointerRenderer) BuildFrontierEpsCoarse(tile geom.Rect, eps float64, f Front) Stats {
	return r.TileEngine.BuildFrontierEpsCoarse(tile, eps, f.(*Frontier))
}

func (r PointerRenderer) BuildFrontierEpsFrom(parent Front, tile geom.Rect, eps float64, f Front) Stats {
	return r.TileEngine.BuildFrontierEpsFrom(parent.(*Frontier), tile, eps, f.(*Frontier))
}

func (r PointerRenderer) BuildFrontierTau(tile geom.Rect, tau float64, f Front) Stats {
	return r.TileEngine.BuildFrontierTau(tile, tau, f.(*Frontier))
}

func (r PointerRenderer) BuildFrontierTauFrom(parent Front, tile geom.Rect, tau float64, f Front) Stats {
	return r.TileEngine.BuildFrontierTauFrom(parent.(*Frontier), tile, tau, f.(*Frontier))
}

func (r PointerRenderer) Promote(f Front) Stats { return r.TileEngine.Promote(f.(*Frontier)) }

func (r PointerRenderer) Saturated(f Front) bool { return r.TileEngine.Saturated(f.(*Frontier)) }

func (r PointerRenderer) EvalEpsFrom(f Front, q []float64, eps float64) (float64, Stats) {
	return r.Engine.EvalEpsFrom(f.(*Frontier), q, eps)
}

func (r PointerRenderer) EvalTauFrom(f Front, q []float64, tau float64) (bool, Stats) {
	return r.Engine.EvalTauFrom(f.(*Frontier), q, tau)
}

// RootBounds returns the evaluator's whole-dataset bounds at q.
func (r PointerRenderer) RootBounds(q []float64) (lb, ub float64) {
	return r.Ev.Bounds(r.Tree.Root, q)
}

// FlatRenderer adapts the flat-tree FlatTileEngine to the Renderer surface.
type FlatRenderer struct{ *FlatTileEngine }

// NewFront returns an empty *FlatFrontier.
func (r FlatRenderer) NewFront() Front { return new(FlatFrontier) }

func (r FlatRenderer) BuildFrontierEps(tile geom.Rect, eps float64, f Front) Stats {
	return r.FlatTileEngine.BuildFrontierEps(tile, eps, f.(*FlatFrontier))
}

func (r FlatRenderer) BuildFrontierEpsCoarse(tile geom.Rect, eps float64, f Front) Stats {
	return r.FlatTileEngine.BuildFrontierEpsCoarse(tile, eps, f.(*FlatFrontier))
}

func (r FlatRenderer) BuildFrontierEpsFrom(parent Front, tile geom.Rect, eps float64, f Front) Stats {
	return r.FlatTileEngine.BuildFrontierEpsFrom(parent.(*FlatFrontier), tile, eps, f.(*FlatFrontier))
}

func (r FlatRenderer) BuildFrontierTau(tile geom.Rect, tau float64, f Front) Stats {
	return r.FlatTileEngine.BuildFrontierTau(tile, tau, f.(*FlatFrontier))
}

func (r FlatRenderer) BuildFrontierTauFrom(parent Front, tile geom.Rect, tau float64, f Front) Stats {
	return r.FlatTileEngine.BuildFrontierTauFrom(parent.(*FlatFrontier), tile, tau, f.(*FlatFrontier))
}

func (r FlatRenderer) Promote(f Front) Stats { return r.FlatTileEngine.Promote(f.(*FlatFrontier)) }

func (r FlatRenderer) Saturated(f Front) bool { return r.FlatTileEngine.Saturated(f.(*FlatFrontier)) }

func (r FlatRenderer) EvalEpsFrom(f Front, q []float64, eps float64) (float64, Stats) {
	return r.FlatEngine.EvalEpsFrom(f.(*FlatFrontier), q, eps)
}

func (r FlatRenderer) EvalTauFrom(f Front, q []float64, tau float64) (bool, Stats) {
	return r.FlatEngine.EvalTauFrom(f.(*FlatFrontier), q, tau)
}
