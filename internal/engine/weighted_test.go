package engine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// weightedExact computes the weighted ground truth by brute force.
func weightedExact(tr *kdtree.Tree, kern kernel.Kernel, gamma, w float64, q []float64) float64 {
	var sum float64
	for i := 0; i < tr.Pts.Len(); i++ {
		sum += tr.WeightAt(i) * kern.Eval(gamma, geom.Dist2(q, tr.Pts.At(i)))
	}
	return w * sum
}

// TestWeightedEpsGuarantee: the ε guarantee must hold for non-uniform point
// weights across kernels and methods (generalized Equation 1).
func TestWeightedEpsGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := clusteredPoints(rng, 1500)
	weights := make([]float64, pts.Len())
	for i := range weights {
		// Heavy-tailed weights, including exact zeros.
		switch i % 5 {
		case 0:
			weights[i] = 0
		case 1:
			weights[i] = 10
		default:
			weights[i] = rng.Float64()
		}
	}
	for _, kern := range []kernel.Kernel{kernel.Gaussian, kernel.Triangular, kernel.Cosine, kernel.Exponential} {
		methods := []bounds.Method{bounds.MinMax, bounds.Quadratic}
		if kern.HasLinearBounds() {
			methods = append(methods, bounds.Linear)
		}
		for _, m := range methods {
			ws := append([]float64(nil), weights...)
			tr, err := kdtree.Build(pts.Clone(), kdtree.Options{LeafSize: 8, Gram: true, Weights: ws})
			if err != nil {
				t.Fatal(err)
			}
			ev, err := bounds.NewEvaluator(kern, 0.4, 1e-3, m, 2)
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(tr, ev)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				q := []float64{rng.Float64() * 20, rng.Float64() * 15}
				got, _ := e.EvalEps(q, 0.01)
				exact := weightedExact(tr, kern, 0.4, 1e-3, q)
				if exact == 0 {
					if got != 0 {
						t.Fatalf("%s/%s: got %g for zero weighted density", kern, m, got)
					}
					continue
				}
				if rel := math.Abs(got-exact) / exact; rel > 0.01 {
					t.Fatalf("%s/%s: weighted rel err %g (got %g, exact %g)", kern, m, rel, got, exact)
				}
			}
		}
	}
}

// TestWeightedMatchesScaledUniform: scaling every weight by c must scale
// every density by c (homogeneity).
func TestWeightedMatchesScaledUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := clusteredPoints(rng, 500)
	ws := make([]float64, pts.Len())
	for i := range ws {
		ws[i] = 3
	}
	tr, err := kdtree.Build(pts.Clone(), kdtree.Options{Gram: true, Weights: ws})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := bounds.NewEvaluator(kernel.Gaussian, 0.5, 1, bounds.Quadratic, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tr, ev)
	if err != nil {
		t.Fatal(err)
	}
	plain := buildEngine(t, pts.Clone(), kernel.Gaussian, 0.5, bounds.Quadratic)
	for trial := 0; trial < 10; trial++ {
		q := []float64{rng.Float64() * 20, rng.Float64() * 15}
		gw, _ := e.EvalEps(q, 0.001)
		gu, _ := plain.EvalEps(q, 0.001)
		// plain uses weight 1/n; weighted uses scalar weight 1 with w_i=3.
		want := gu * float64(pts.Len()) * 3
		if want > 0 && math.Abs(gw-want)/want > 0.005 {
			t.Fatalf("homogeneity violated: weighted %g, scaled uniform %g", gw, want)
		}
	}
}
