package engine

import (
	"sort"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree/flat"
)

// Flat-tree tile-shared traversal: the SoA mirror of tile.go. Every constant
// (settleFrac, tileEpsFrac, budgets, promotion thresholds), every loop, and
// every settle/sort decision is shared with or copied verbatim from the
// pointer implementation — the ONLY differences are fitem entries instead of
// item and flat-array statistic fetches instead of pointer chases — so a
// flat render is bit-identical to a pointer render of the same raster.

// FlatFrontier is the reusable result of one shared tile refinement over a
// flat tree (see Frontier).
type FlatFrontier struct {
	Tile                 geom.Rect
	SettledLB, SettledUB float64
	Decided              bool
	Hot                  bool
	SettledGap           float64

	seeds          []fitem
	seedLB, seedUB float64
	hits           []int32

	envOK      bool
	envSettled bool
	envLB      bounds.TileEnvelope
	envUB      bounds.TileEnvelope
	envCenter  []float64
}

// State reports the tile-wide τKDV classification (see Frontier.Decided).
func (f *FlatFrontier) State() (decided, hot bool) { return f.Decided, f.Hot }

// Size returns the residual frontier's node count.
func (f *FlatFrontier) Size() int { return len(f.seeds) }

// Settled returns the tile-wide settled contribution interval.
func (f *FlatFrontier) Settled() (lb, ub float64) { return f.SettledLB, f.SettledUB }

func (f *FlatFrontier) envBounds(q []float64) (lb, ub float64) {
	lb = f.SettledLB + f.envLB.Eval(q, f.envCenter)
	ub = f.SettledUB + f.envUB.Eval(q, f.envCenter)
	if lb < 0 {
		lb = 0
	}
	return lb, ub
}

func (f *FlatFrontier) initEnv() {
	d := len(f.Tile.Min)
	if cap(f.envCenter) < d {
		f.envCenter = make([]float64, d)
	}
	f.envCenter = f.envCenter[:d]
	for i := 0; i < d; i++ {
		f.envCenter[i] = (f.Tile.Min[i] + f.Tile.Max[i]) / 2
	}
	f.envLB.Reset(d)
	f.envUB.Reset(d)
	f.envOK, f.envSettled = true, true
}

func (f *FlatFrontier) inheritEnv(parent *FlatFrontier) {
	if !parent.envOK || !parent.envSettled {
		return
	}
	f.envCenter = append(f.envCenter[:0], parent.envCenter...)
	f.envLB.CopyFrom(&parent.envLB)
	f.envUB.CopyFrom(&parent.envUB)
	f.envOK, f.envSettled = true, true
}

func (f *FlatFrontier) reset(tile geom.Rect) {
	f.Tile.Min = append(f.Tile.Min[:0], tile.Min...)
	f.Tile.Max = append(f.Tile.Max[:0], tile.Max...)
	f.SettledLB, f.SettledUB = 0, 0
	f.SettledGap = 0
	f.Decided, f.Hot = false, false
	f.seeds = f.seeds[:0]
	f.seedLB, f.seedUB = 0, 0
	f.hits = f.hits[:0]
	f.envOK, f.envSettled = false, false
}

func (f *FlatFrontier) setSeeds(items []fitem) {
	f.seeds = append(f.seeds[:0], items...)
	f.hits = f.hits[:0]
	f.seedLB, f.seedUB = 0, 0
	for i := range f.seeds {
		f.seeds[i].seed = int32(i)
		f.seedLB += f.seeds[i].lb
		f.seedUB += f.seeds[i].ub
		f.hits = append(f.hits, 0)
	}
}

// FlatTileEngine runs the shared (per-tile) phase over a flat tree (see
// TileEngine). It owns scratch state and must not be shared between
// goroutines.
type FlatTileEngine struct {
	*FlatEngine
	// MaxFrontier caps the residual frontier (0 means DefaultMaxFrontier).
	MaxFrontier int

	theap   []fitem
	scratch []fitem
	gapbuf  []float64
}

// NewFlatTileEngine wraps a flat engine for tile-shared rendering.
func NewFlatTileEngine(e *FlatEngine) *FlatTileEngine { return &FlatTileEngine{FlatEngine: e} }

func (te *FlatTileEngine) frontierCap() int {
	if te.MaxFrontier > 0 {
		return te.MaxFrontier
	}
	return DefaultMaxFrontier
}

// Saturated reports that the shared phase pinned the frontier cap without
// settling the tile (see TileEngine.Saturated).
func (te *FlatTileEngine) Saturated(f *FlatFrontier) bool {
	return len(f.seeds) >= te.frontierCap()
}

// sharedExpand is TileEngine.sharedExpand over the flat arrays: identical
// loop, budgets, and pending-sum discipline.
func (te *FlatTileEngine) sharedExpand(tile geom.Rect, seeds []fitem, baseLB, baseUB float64, fcap, budget int, st *Stats, stop func(lb, ub float64) bool) (cands []fitem, sumLB, sumUB float64) {
	te.theap = te.theap[:0]
	t := te.Tree
	var pendLB, pendUB float64
	if seeds == nil {
		rlb, rub := te.Ev.FlatRectBounds(t, 0, tile)
		st.NodesEvaluated++
		te.heapPushTile(fitem{id: 0, seed: -1, lb: rlb, ub: rub})
		pendLB, pendUB = rlb, rub
	} else {
		for _, it := range seeds {
			lb, ub := te.Ev.FlatRectBounds(t, it.id, tile)
			st.NodesEvaluated++
			te.heapPushTile(fitem{id: it.id, seed: -1, lb: lb, ub: ub})
			pendLB += lb
			pendUB += ub
		}
	}
	// Popped leaves can't expand; they go straight to the candidate list.
	te.scratch = te.scratch[:0]
	leafLB, leafUB := baseLB, baseUB

	for pops := 0; len(te.theap) > 0 && len(te.theap)+len(te.scratch) < fcap && pops < budget; pops++ {
		if pendLB < 0 || pendUB < 0 || stop(leafLB+pendLB, leafUB+pendUB) {
			pendLB, pendUB = te.tilePending()
			if stop(leafLB+pendLB, leafUB+pendUB) {
				break
			}
		}
		it := te.heapPopTile()
		id := it.id
		left := t.Left[id]
		if left == flat.NoChild {
			te.scratch = append(te.scratch, it)
			leafLB += it.lb
			leafUB += it.ub
			pendLB -= it.lb
			pendUB -= it.ub
			continue
		}
		right := t.Right[id]
		llb, lub := te.Ev.FlatRectBounds(t, left, tile)
		rlb, rub := te.Ev.FlatRectBounds(t, right, tile)
		st.NodesEvaluated += 2
		te.heapPushTile(fitem{id: left, seed: -1, lb: llb, ub: lub})
		te.heapPushTile(fitem{id: right, seed: -1, lb: rlb, ub: rub})
		pendLB += llb + rlb - it.lb
		pendUB += lub + rub - it.ub
	}
	te.scratch = append(te.scratch, te.theap...)
	pendLB, pendUB = te.tilePending()
	sumLB, sumUB = leafLB+pendLB, leafUB+pendUB
	// One final check so a decision reached exactly at the frontier cap
	// (τKDV tiles in particular) is not lost.
	stop(sumLB, sumUB)
	return te.scratch, sumLB, sumUB
}

// BuildFrontierEps runs the shared phase for an εKDV tile (see
// TileEngine.BuildFrontierEps).
func (te *FlatTileEngine) BuildFrontierEps(tile geom.Rect, eps float64, f *FlatFrontier) Stats {
	return te.buildEps(tile, nil, te.frontierCap(), eps, 1, f)
}

// BuildFrontierEpsCoarse is BuildFrontierEps for the OUTER level of a
// two-level build (see TileEngine.BuildFrontierEpsCoarse).
func (te *FlatTileEngine) BuildFrontierEpsCoarse(tile geom.Rect, eps float64, f *FlatFrontier) Stats {
	return te.buildEps(tile, nil, te.frontierCap(), eps, coarseSettleFrac, f)
}

// BuildFrontierEpsFrom is BuildFrontierEps seeded from a coarser frontier
// (see TileEngine.BuildFrontierEpsFrom).
func (te *FlatTileEngine) BuildFrontierEpsFrom(parent *FlatFrontier, tile geom.Rect, eps float64, f *FlatFrontier) Stats {
	if len(parent.seeds) == 0 {
		// Fully settled parent: the sub-frontier is the same settled state
		// (a nil seed slice must not fall back to root expansion — the
		// settled mass would be counted twice).
		f.reset(tile)
		f.SettledLB, f.SettledUB = parent.SettledLB, parent.SettledUB
		f.SettledGap = parent.SettledGap
		f.inheritEnv(parent)
		return Stats{}
	}
	return te.buildEps(tile, parent, subCap(len(parent.seeds)), eps, 1, f)
}

func (te *FlatTileEngine) buildEps(tile geom.Rect, parent *FlatFrontier, fcap int, eps, budgetFrac float64, f *FlatFrontier) Stats {
	var st Stats
	f.reset(tile)
	var seeds []fitem
	var parentGap float64
	if parent != nil {
		seeds = parent.seeds
		f.SettledLB, f.SettledUB = parent.SettledLB, parent.SettledUB
		parentGap = parent.SettledGap
		f.inheritEnv(parent)
	}
	if !f.envOK && te.Ev.SupportsEnvelope() {
		f.initEnv()
	}
	baseLB, baseUB := f.SettledLB, f.SettledUB
	if f.envOK {
		elo, _ := f.envLB.RangeRect(tile, f.envCenter)
		_, uhi := f.envUB.RangeRect(tile, f.envCenter)
		baseLB += elo
		baseUB += uhi
		if baseLB < 0 {
			baseLB = 0
		}
	}
	budgetPops := expandBudgetFactor * fcap
	if parent != nil && budgetPops > subExpandBudget {
		budgetPops = subExpandBudget
	}
	cands, sumLB, _ := te.sharedExpand(tile, seeds, baseLB, baseUB, fcap, budgetPops, &st, func(lb, ub float64) bool {
		return ub <= (1+tileEpsFrac*eps)*lb
	})
	// Settle greedily by ascending gap within the budget (see
	// TileEngine.buildEps for the εKDV-guarantee argument).
	budget := budgetFrac * settleFrac * eps * sumLB
	spent := parentGap
	rest := cands[:0]
	if f.envOK {
		gaps := te.gapbuf[:0]
		for i := range cands {
			g, _ := te.Ev.FlatRectEnvelopeGap(te.Tree, cands[i].id, tile)
			gaps = append(gaps, g)
		}
		te.gapbuf = gaps
		st.NodesEvaluated += len(cands)
		sortFlatCandidatesByGap(te.Tree, cands, gaps)
		for i := range cands {
			if spent+gaps[i] <= budget {
				spent += gaps[i]
				te.Ev.FlatAccumulateRectEnvelope(te.Tree, cands[i].id, tile, f.envCenter, &f.envLB, &f.envUB)
				st.NodesEvaluated++
				continue
			}
			rest = append(rest, cands[i])
		}
	} else {
		sortFlatCandidates(te.Tree, cands)
		for _, it := range cands {
			if g := fgap(it); spent+g <= budget {
				spent += g
				f.SettledLB += it.lb
				f.SettledUB += it.ub
				continue
			}
			rest = append(rest, it)
		}
	}
	f.SettledGap = spent
	f.setSeeds(rest)
	return st
}

// BuildFrontierTau runs the shared phase for a τKDV tile (see
// TileEngine.BuildFrontierTau).
func (te *FlatTileEngine) BuildFrontierTau(tile geom.Rect, tau float64, f *FlatFrontier) Stats {
	return te.buildTau(tile, nil, 0, 0, te.frontierCap(), tau, f)
}

// BuildFrontierTauFrom is BuildFrontierTau seeded from a coarser frontier
// (see TileEngine.BuildFrontierTauFrom).
func (te *FlatTileEngine) BuildFrontierTauFrom(parent *FlatFrontier, tile geom.Rect, tau float64, f *FlatFrontier) Stats {
	if len(parent.seeds) == 0 {
		f.reset(tile)
		f.SettledLB, f.SettledUB = parent.SettledLB, parent.SettledUB
		f.Decided, f.Hot = parent.Decided, parent.Hot
		return Stats{}
	}
	return te.buildTau(tile, parent.seeds, parent.SettledLB, parent.SettledUB, subCap(len(parent.seeds)), tau, f)
}

func (te *FlatTileEngine) buildTau(tile geom.Rect, seeds []fitem, baseLB, baseUB float64, fcap int, tau float64, f *FlatFrontier) Stats {
	var st Stats
	f.reset(tile)
	f.SettledLB, f.SettledUB = baseLB, baseUB
	budgetPops := expandBudgetFactor * fcap
	if seeds != nil && budgetPops > subExpandBudget {
		budgetPops = subExpandBudget
	}
	cands, _, _ := te.sharedExpand(tile, seeds, baseLB, baseUB, fcap, budgetPops, &st, func(lb, ub float64) bool {
		if lb >= tau {
			f.Decided, f.Hot = true, true
			return true
		}
		if ub < tau {
			f.Decided, f.Hot = true, false
			return true
		}
		return false
	})
	if f.Decided {
		return st
	}
	rest := cands[:0]
	for _, it := range cands {
		if fgap(it) == 0 {
			f.SettledLB += it.lb
			f.SettledUB += it.ub
			continue
		}
		rest = append(rest, it)
	}
	f.setSeeds(rest)
	te.buildEnvelope(f, &st)
	return st
}

// Promote replaces over-expanded frontier nodes with their children (see
// TileEngine.Promote).
func (te *FlatTileEngine) Promote(f *FlatFrontier) Stats {
	var st Stats
	t := te.Tree
	limit := promoteCapFactor * te.frontierCap()
	if len(f.seeds) >= limit {
		return st
	}
	promote := 0
	for i, h := range f.hits {
		if h >= promoteHits && !t.IsLeaf(f.seeds[i].id) {
			promote++
		}
	}
	if promote == 0 || len(f.seeds)+promote > limit {
		return st
	}
	out := te.scratch[:0]
	for i, it := range f.seeds {
		if f.hits[i] >= promoteHits && !t.IsLeaf(it.id) {
			left, right := t.Left[it.id], t.Right[it.id]
			llb, lub := te.Ev.FlatRectBounds(t, left, f.Tile)
			rlb, rub := te.Ev.FlatRectBounds(t, right, f.Tile)
			st.NodesEvaluated += 2
			out = append(out,
				fitem{id: left, seed: -1, lb: llb, ub: lub},
				fitem{id: right, seed: -1, lb: rlb, ub: rub})
			continue
		}
		out = append(out, it)
	}
	te.scratch = out
	f.setSeeds(out)
	if f.envOK && !f.envSettled {
		// The τKDV pre-check envelope covers the seed set, which just
		// changed; re-collapse it.
		te.buildEnvelope(f, &st)
	}
	return st
}

func (te *FlatTileEngine) buildEnvelope(f *FlatFrontier, st *Stats) {
	f.envSettled = false
	d := len(f.Tile.Min)
	if cap(f.envCenter) < d {
		f.envCenter = make([]float64, d)
	}
	f.envCenter = f.envCenter[:d]
	for i := 0; i < d; i++ {
		f.envCenter[i] = (f.Tile.Min[i] + f.Tile.Max[i]) / 2
	}
	f.envLB.Reset(d)
	f.envUB.Reset(d)
	for i := range f.seeds {
		if !te.Ev.FlatAccumulateRectEnvelope(te.Tree, f.seeds[i].id, f.Tile, f.envCenter, &f.envLB, &f.envUB) {
			f.envOK = false
			return
		}
		st.NodesEvaluated++
	}
	f.envOK = true
}

// sortFlatCandidatesByGap orders cands (and the parallel gaps slice) by
// ascending gap, tie-broken on the node's point range. The comparator is a
// total order over a disjoint node cover (Start values are unique across the
// cover), so the sorted permutation is identical to the pointer path's.
func sortFlatCandidatesByGap(t *flat.Tree, cands []fitem, gaps []float64) {
	sort.Sort(&flatCandGapSorter{t, cands, gaps})
}

type flatCandGapSorter struct {
	tree  *flat.Tree
	items []fitem
	gaps  []float64
}

func (s *flatCandGapSorter) Len() int { return len(s.items) }
func (s *flatCandGapSorter) Less(i, j int) bool {
	if s.gaps[i] != s.gaps[j] {
		return s.gaps[i] < s.gaps[j]
	}
	return s.tree.Start[s.items[i].id] < s.tree.Start[s.items[j].id]
}
func (s *flatCandGapSorter) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.gaps[i], s.gaps[j] = s.gaps[j], s.gaps[i]
}

// sortFlatCandidates orders items by ascending gap, tie-broken on the node's
// point range (see sortCandidates).
func sortFlatCandidates(t *flat.Tree, items []fitem) {
	sort.Slice(items, func(i, j int) bool {
		gi, gj := fgap(items[i]), fgap(items[j])
		if gi != gj {
			return gi < gj
		}
		return t.Start[items[i].id] < t.Start[items[j].id]
	})
}

// --- shared-phase heap (same max-gap binary heap as the per-pixel queue) ---

func (te *FlatTileEngine) heapPushTile(it fitem) {
	te.theap = append(te.theap, it)
	i := len(te.theap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if fgap(te.theap[parent]) >= fgap(te.theap[i]) {
			break
		}
		te.theap[parent], te.theap[i] = te.theap[i], te.theap[parent]
		i = parent
	}
}

func (te *FlatTileEngine) heapPopTile() fitem {
	h := te.theap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	te.theap = h[:last]
	h = te.theap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && fgap(h[l]) > fgap(h[big]) {
			big = l
		}
		if r < len(h) && fgap(h[r]) > fgap(h[big]) {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return top
}

func (te *FlatTileEngine) tilePending() (lb, ub float64) {
	for _, it := range te.theap {
		lb += it.lb
		ub += it.ub
	}
	return lb, ub
}

// EvalEpsFrom answers an εKDV query warm-started from a flat frontier (see
// Engine.EvalEpsFrom).
func (e *FlatEngine) EvalEpsFrom(f *FlatFrontier, q []float64, eps float64) (float64, Stats) {
	lb, ub, st := e.refineFrom(f, q, func(lb, ub float64) bool {
		return ub <= (1+eps)*lb
	})
	st.LB, st.UB = lb, ub
	return (lb + ub) / 2, st
}

// EvalTauFrom answers a τKDV query warm-started from a flat frontier (see
// Engine.EvalTauFrom).
func (e *FlatEngine) EvalTauFrom(f *FlatFrontier, q []float64, tau float64) (bool, Stats) {
	if f.Decided {
		return f.Hot, Stats{}
	}
	if f.envOK && !f.envSettled {
		// Each envelope side is an independently valid bound, so a one-sided
		// decision here is exactly the classification refinement would reach.
		lb, ub := f.envBounds(q)
		if lb >= tau {
			return true, Stats{Iterations: 1, LB: lb, UB: ub}
		}
		if ub < tau {
			return false, Stats{Iterations: 1, LB: lb, UB: ub}
		}
	}
	lb, ub, st := e.refineFrom(f, q, func(lb, ub float64) bool {
		return lb >= tau || ub <= tau
	})
	st.LB, st.UB = lb, ub
	return lb >= tau, st
}

// refineFrom is Engine.refineFrom over the flat arrays: frontier-seeded
// refinement with identical bookkeeping and promotion hit recording.
func (e *FlatEngine) refineFrom(f *FlatFrontier, q []float64, done func(lb, ub float64) bool) (flb, fub float64, st Stats) {
	e.heap = append(e.heap[:0], f.seeds...)
	e.heapify()
	t := e.Tree
	baseLB, baseUB := f.SettledLB, f.SettledUB
	if f.envOK && f.envSettled {
		// The settled envelope is part of this pixel's base: one O(d)
		// evaluation per side covers every node folded into it.
		baseLB += f.envLB.Eval(q, f.envCenter)
		baseUB += f.envUB.Eval(q, f.envCenter)
		if baseLB < 0 {
			baseLB = 0
		}
		if baseUB < baseLB {
			mid := (baseLB + baseUB) / 2
			baseLB, baseUB = mid, mid
		}
	}

	var exactAcc float64
	lbPend, ubPend := f.seedLB, f.seedUB
	for len(e.heap) > 0 {
		if lbPend < 0 || ubPend < 0 || done(baseLB+exactAcc+lbPend, baseUB+exactAcc+ubPend) {
			lbPend, ubPend = e.recomputePending()
			if done(baseLB+exactAcc+lbPend, baseUB+exactAcc+ubPend) {
				break
			}
		}
		st.Iterations++
		it := e.heapPop()
		id := it.id
		left := t.Left[id]
		if left == flat.NoChild {
			if it.seed >= 0 {
				// A leaf seed still carries its loose tile-uniform bounds.
				// Tighten with this pixel's bounds before committing to an
				// exact scan.
				llb, lub := e.Ev.FlatBounds(t, id, q)
				st.NodesEvaluated++
				lbPend += llb - it.lb
				ubPend += lub - it.ub
				e.heapPush(fitem{id: id, seed: -1, lb: llb, ub: lub})
				continue
			}
			exactAcc += e.Ev.FlatExactNode(t, id, q)
			st.LeafScans++
			st.PointsScanned += t.Size(id)
			lbPend -= it.lb
			ubPend -= it.ub
			continue
		}
		if it.seed >= 0 {
			f.hits[it.seed]++
		}
		right := t.Right[id]
		llb, lub := e.Ev.FlatBounds(t, left, q)
		rlb, rub := e.Ev.FlatBounds(t, right, q)
		st.NodesEvaluated += 2
		lbPend += llb + rlb - it.lb
		ubPend += lub + rub - it.ub
		e.heapPush(fitem{id: left, seed: -1, lb: llb, ub: lub})
		e.heapPush(fitem{id: right, seed: -1, lb: rlb, ub: rub})
	}
	if len(e.heap) == 0 {
		// Fully refined: only the settled tile-wide gap remains.
		return baseLB + exactAcc, baseUB + exactAcc, st
	}
	lb, ub := baseLB+exactAcc+lbPend, baseUB+exactAcc+ubPend
	if lb > ub {
		mid := (lb + ub) / 2
		lb, ub = mid, mid
	}
	return lb, ub, st
}
