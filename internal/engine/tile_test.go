package engine

import (
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
)

// tileQueries samples query points spread over a tile rectangle, including
// its corners.
func tileQueries(rng *rand.Rand, tile geom.Rect, n int) [][]float64 {
	qs := [][]float64{
		{tile.Min[0], tile.Min[1]},
		{tile.Max[0], tile.Min[1]},
		{tile.Min[0], tile.Max[1]},
		{tile.Max[0], tile.Max[1]},
	}
	for i := 0; i < n; i++ {
		qs = append(qs, []float64{
			tile.Min[0] + rng.Float64()*(tile.Max[0]-tile.Min[0]),
			tile.Min[1] + rng.Float64()*(tile.Max[1]-tile.Min[1]),
		})
	}
	return qs
}

func testTiles() []geom.Rect {
	return []geom.Rect{
		{Min: []float64{1, 1}, Max: []float64{3, 3}},     // inside a cluster band
		{Min: []float64{7, -2}, Max: []float64{9, -1}},   // off the data
		{Min: []float64{-1, -1}, Max: []float64{16, 11}}, // spanning everything
		{Min: []float64{5, 5}, Max: []float64{5.1, 5.1}}, // nearly a point
	}
}

func TestEvalEpsFromMeetsGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := clusteredPoints(rng, 400)
	for _, m := range []bounds.Method{bounds.Quadratic, bounds.Linear, bounds.MinMax} {
		e := buildEngine(t, pts, kernel.Gaussian, 0.5, m)
		te := NewTileEngine(e.Clone())
		for _, eps := range []float64{0.3, 0.05, 0.005} {
			for ti, tile := range testTiles() {
				var f Frontier
				te.BuildFrontierEps(tile, eps, &f)
				for qi, q := range tileQueries(rng, tile, 20) {
					got, _ := te.EvalEpsFrom(&f, q, eps)
					exact := e.Exact(q)
					if diff := got - exact; diff > eps*exact || -diff > eps*exact {
						t.Fatalf("method %v eps=%g tile %d query %d (%v): got %g, exact %g, rel err %g",
							m, eps, ti, qi, q, got, exact, (got-exact)/exact)
					}
				}
			}
		}
	}
}

func TestEvalTauFromMatchesPerPixel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := clusteredPoints(rng, 400)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	te := NewTileEngine(e.Clone())

	// Probe τ values around the density range so tiles land on all three
	// regimes: decided-hot, decided-cold, and mixed.
	var lo, hi float64 = 1e300, 0
	for _, tile := range testTiles() {
		for _, q := range tileQueries(rng, tile, 10) {
			v := e.Exact(q)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	for _, frac := range []float64{0.01, 0.3, 0.9} {
		tau := lo + frac*(hi-lo)
		for ti, tile := range testTiles() {
			var f Frontier
			te.BuildFrontierTau(tile, tau, &f)
			for qi, q := range tileQueries(rng, tile, 30) {
				got, _ := te.EvalTauFrom(&f, q, tau)
				want, _ := e.EvalTau(q, tau)
				if got != want {
					t.Fatalf("tau=%g tile %d query %d (%v): tile-shared %v, per-pixel %v (exact %g)",
						tau, ti, qi, q, got, want, e.Exact(q))
				}
			}
		}
	}
}

func TestFrontierInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := clusteredPoints(rng, 300)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	te := NewTileEngine(e.Clone())
	tile := geom.Rect{Min: []float64{0, 0}, Max: []float64{4, 4}}
	var f Frontier
	te.BuildFrontierEps(tile, 0.05, &f)
	if f.SettledLB > f.SettledUB {
		t.Errorf("settled bounds inverted: [%g, %g]", f.SettledLB, f.SettledUB)
	}
	if f.Size() > DefaultMaxFrontier {
		t.Errorf("frontier size %d exceeds cap %d", f.Size(), DefaultMaxFrontier)
	}
	// The frontier plus settled contribution must bracket F for any query in
	// the tile even before per-pixel refinement.
	for _, q := range tileQueries(rng, tile, 10) {
		lb, ub := f.SettledLB+f.seedLB, f.SettledUB+f.seedUB
		exact := e.Exact(q)
		if exact < lb || exact > ub {
			t.Fatalf("tile-uniform bounds [%g, %g] do not bracket exact %g at %v", lb, ub, exact, q)
		}
	}
}

func TestPromotePreservesGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := clusteredPoints(rng, 300)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	te := NewTileEngine(e.Clone())
	tile := geom.Rect{Min: []float64{1, 1}, Max: []float64{3, 3}}
	const eps = 0.02
	var f Frontier
	te.BuildFrontierEps(tile, eps, &f)
	for i, q := range tileQueries(rng, tile, 50) {
		got, _ := te.EvalEpsFrom(&f, q, eps)
		exact := e.Exact(q)
		if diff := got - exact; diff > eps*exact || -diff > eps*exact {
			t.Fatalf("query %d after %d promotions: got %g, exact %g", i, i, got, exact)
		}
		te.Promote(&f)
	}
}
