// Package engine implements the per-pixel refinement algorithm of the KDV
// indexing framework (paper Section 3.2, Table 3): a max-priority queue over
// kd-tree nodes ordered by bound gap UB_R(q) − LB_R(q), with incremental
// maintenance of the aggregate bounds lb and ub. Popping an internal node
// replaces its bounds with its children's; popping a leaf replaces them with
// the exact leaf contribution. The loop stops as soon as the variant's
// termination condition holds:
//
//	εKDV:  ub ≤ (1+ε)·lb          → return (lb+ub)/2
//	τKDV:  lb ≥ τ  or  ub ≤ τ     → return lb ≥ τ
//
// The engine is shared by every bound method (MinMax/aKDE, MinMax/tKDC,
// Linear/KARL, Quadratic/QUAD), mirroring the paper's "same framework,
// different bound functions" methodology.
package engine

import (
	"fmt"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/kdtree"
)

// Stats aggregates per-query work counters.
type Stats struct {
	// Iterations is the number of queue pops.
	Iterations int
	// NodesEvaluated is the number of bound-function evaluations.
	NodesEvaluated int
	// LeafScans is the number of leaves refined exactly.
	LeafScans int
	// PointsScanned is the number of points touched by leaf scans.
	PointsScanned int
	// LB and UB are the final aggregate bounds the query settled at — the
	// residual bound gap UB−LB is the per-pixel tightness signal behind
	// work-map diagnostics. They describe one query, so Add does not
	// accumulate them.
	LB, UB float64
}

// Gap returns the residual bound gap UB−LB at settle, clamped at zero
// (fully refined queries end with UB == LB up to rounding).
func (s Stats) Gap() float64 {
	if g := s.UB - s.LB; g > 0 {
		return g
	}
	return 0
}

// Add accumulates other's work counters into s. The per-query settle
// bounds (LB, UB) are not summed — an aggregate of final bounds has no
// meaning — so s keeps its own.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.NodesEvaluated += other.NodesEvaluated
	s.LeafScans += other.LeafScans
	s.PointsScanned += other.PointsScanned
}

// item is one queue entry: a node with its current bound contribution. seed
// is the node's index in the tile frontier that seeded the queue (−1 for
// items produced by ordinary expansion); refineFrom uses it to record which
// frontier nodes a pixel had to expand, the signal behind frontier promotion.
type item struct {
	node   *kdtree.Node
	lb, ub float64
	seed   int
}

// Engine evaluates εKDV / τKDV queries against one tree with one bound
// evaluator. It reuses its internal queue across queries and therefore must
// not be shared between goroutines; use Clone for parallel workers.
type Engine struct {
	Tree *kdtree.Tree
	Ev   *bounds.Evaluator

	heap []item
}

// New validates that the tree carries the statistics the evaluator needs and
// returns an engine.
func New(tree *kdtree.Tree, ev *bounds.Evaluator) (*Engine, error) {
	if tree == nil || tree.Root == nil {
		return nil, fmt.Errorf("engine: nil or empty tree")
	}
	if ev.NeedsGram() && !tree.HasGram() {
		return nil, fmt.Errorf("engine: %s/%s bounds need the Gram statistic; build the tree with Options.Gram", ev.Kern, ev.Method)
	}
	if len(tree.Pts.Coords) > 0 && tree.Dim() <= 0 {
		return nil, fmt.Errorf("engine: tree has invalid dimension %d", tree.Dim())
	}
	return &Engine{Tree: tree, Ev: ev}, nil
}

// Clone returns an engine sharing the tree but with private evaluator
// scratch and queue, safe for a separate goroutine.
func (e *Engine) Clone() *Engine {
	return &Engine{Tree: e.Tree, Ev: e.Ev.Clone()}
}

// --- internal max-heap on gap = ub − lb (hand-rolled: container/heap's
// interface indirection costs ~2x on this hot path). ---

func (e *Engine) heapReset() { e.heap = e.heap[:0] }

func (e *Engine) heapPush(it item) {
	e.heap = append(e.heap, it)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if gap(e.heap[parent]) >= gap(e.heap[i]) {
			break
		}
		e.heap[parent], e.heap[i] = e.heap[i], e.heap[parent]
		i = parent
	}
}

func (e *Engine) heapPop() item {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	h = e.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && gap(h[l]) > gap(h[big]) {
			big = l
		}
		if r < len(h) && gap(h[r]) > gap(h[big]) {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return top
}

func gap(it item) float64 { return it.ub - it.lb }

// heapify restores the max-gap heap property over the whole slice in O(n) —
// used when a pixel's queue is bulk-seeded from a tile frontier.
func (e *Engine) heapify() {
	h := e.heap
	for i := len(h)/2 - 1; i >= 0; i-- {
		for j := i; ; {
			l, r := 2*j+1, 2*j+2
			big := j
			if l < len(h) && gap(h[l]) > gap(h[big]) {
				big = l
			}
			if r < len(h) && gap(h[r]) > gap(h[big]) {
				big = r
			}
			if big == j {
				break
			}
			h[j], h[big] = h[big], h[j]
			j = big
		}
	}
}

// EvalEps answers an εKDV query: a value within relative error ε of F_P(q).
// With the stop rule ub ≤ (1+ε)·lb and result (lb+ub)/2, the error satisfies
// |R−F|/F ≤ (ub−lb)/(2·lb) ≤ ε/2.
func (e *Engine) EvalEps(q []float64, eps float64) (float64, Stats) {
	lb, ub, st := e.refine(q, func(lb, ub float64) bool {
		return ub <= (1+eps)*lb
	})
	st.LB, st.UB = lb, ub
	return (lb + ub) / 2, st
}

// EvalTau answers a τKDV query: whether F_P(q) ≥ τ. Pixels whose density is
// exactly τ are classified as hot (lb ≥ τ fires first).
func (e *Engine) EvalTau(q []float64, tau float64) (bool, Stats) {
	lb, ub, st := e.refine(q, func(lb, ub float64) bool {
		return lb >= tau || ub <= tau
	})
	st.LB, st.UB = lb, ub
	return lb >= tau, st
}

// Exact computes F_P(q) exactly through the tree (equivalent to a full scan
// but reusing the leaf layout).
func (e *Engine) Exact(q []float64) float64 {
	return e.Ev.ExactNode(e.Tree, e.Tree.Root, q)
}

// refine runs the Table 3 loop until done(lb, ub) holds or the bounds are
// exact (queue empty). It returns the final aggregate bounds.
//
// The aggregates are maintained as exactAcc (sum of refined leaf
// contributions, exact) plus lbPend/ubPend (incremental sums of the bound
// contributions of nodes still in the queue). The incremental updates
// accumulate absolute rounding drift on the order of an ulp of the ROOT
// bounds, which can dwarf tiny tail densities and corrupt the relative
// termination test — so whenever the test is about to fire, or a pending
// sum dips negative (impossible for true sums of non-negative bounds), the
// pending sums are recomputed exactly from the live queue before the
// decision is trusted.
func (e *Engine) refine(q []float64, done func(lb, ub float64) bool) (flb, fub float64, st Stats) {
	e.heapReset()
	root := e.Tree.Root
	rlb, rub := e.Ev.Bounds(root, q)
	st.NodesEvaluated++
	e.heapPush(item{node: root, lb: rlb, ub: rub})

	var exactAcc float64
	lbPend, ubPend := rlb, rub

	for len(e.heap) > 0 {
		if lbPend < 0 || ubPend < 0 || done(exactAcc+lbPend, exactAcc+ubPend) {
			lbPend, ubPend = e.recomputePending()
			if done(exactAcc+lbPend, exactAcc+ubPend) {
				break
			}
		}
		st.Iterations++
		it := e.heapPop()
		n := it.node
		if n.IsLeaf() {
			exactAcc += e.Ev.ExactNode(e.Tree, n, q)
			st.LeafScans++
			st.PointsScanned += n.Size()
			lbPend -= it.lb
			ubPend -= it.ub
			continue
		}
		llb, lub := e.Ev.Bounds(n.Left, q)
		rlb, rub := e.Ev.Bounds(n.Right, q)
		st.NodesEvaluated += 2
		lbPend += llb + rlb - it.lb
		ubPend += lub + rub - it.ub
		e.heapPush(item{node: n.Left, lb: llb, ub: lub})
		e.heapPush(item{node: n.Right, lb: rlb, ub: rub})
	}
	if len(e.heap) == 0 {
		// Fully refined: the pending sums are pure rounding residue.
		return exactAcc, exactAcc, st
	}
	lb, ub := exactAcc+lbPend, exactAcc+ubPend
	if lb > ub {
		// Within an ulp of each other after the fresh recompute.
		mid := (lb + ub) / 2
		lb, ub = mid, mid
	}
	return lb, ub, st
}

// recomputePending re-derives the pending bound sums directly from the
// queue's items, discarding accumulated incremental drift. The true sums of
// clamped node bounds are non-negative by construction.
func (e *Engine) recomputePending() (lbPend, ubPend float64) {
	for _, it := range e.heap {
		lbPend += it.lb
		ubPend += it.ub
	}
	return lbPend, ubPend
}

// TracePoint records the aggregate bounds after one refinement iteration —
// the instrumentation behind the paper's Figure 18.
type TracePoint struct {
	Iteration int
	LB, UB    float64
}

// BoundTrace runs an εKDV query recording (lb, ub) after every iteration,
// including iteration 0 (root bounds). It stops at the εKDV termination
// condition and returns the trace.
func (e *Engine) BoundTrace(q []float64, eps float64) []TracePoint {
	e.heapReset()
	root := e.Tree.Root
	blb, bub := e.Ev.Bounds(root, q)
	e.heapPush(item{node: root, lb: blb, ub: bub})
	trace := []TracePoint{{Iteration: 0, LB: blb, UB: bub}}

	var exactAcc float64
	lbPend, ubPend := blb, bub
	iter := 0
	for len(e.heap) > 0 {
		if lbPend < 0 || ubPend < 0 || exactAcc+ubPend <= (1+eps)*(exactAcc+lbPend) {
			lbPend, ubPend = e.recomputePending()
			if exactAcc+ubPend <= (1+eps)*(exactAcc+lbPend) {
				break
			}
		}
		iter++
		it := e.heapPop()
		n := it.node
		if n.IsLeaf() {
			exactAcc += e.Ev.ExactNode(e.Tree, n, q)
			lbPend -= it.lb
			ubPend -= it.ub
		} else {
			llb, lub := e.Ev.Bounds(n.Left, q)
			rlb, rub := e.Ev.Bounds(n.Right, q)
			lbPend += llb + rlb - it.lb
			ubPend += lub + rub - it.ub
			e.heapPush(item{node: n.Left, lb: llb, ub: lub})
			e.heapPush(item{node: n.Right, lb: rlb, ub: rub})
		}
		if lbPend < 0 || ubPend < 0 {
			lbPend, ubPend = e.recomputePending()
		}
		trace = append(trace, TracePoint{Iteration: iter, LB: exactAcc + lbPend, UB: exactAcc + ubPend})
	}
	return trace
}
