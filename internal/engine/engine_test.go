package engine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

func clusteredPoints(rng *rand.Rand, n int) geom.Points {
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		cx, cy := float64(i%4)*5, float64((i/4)%3)*5
		coords = append(coords, cx+rng.NormFloat64()*0.5, cy+rng.NormFloat64()*0.5)
	}
	return geom.NewPoints(coords, 2)
}

func buildEngine(t *testing.T, pts geom.Points, kern kernel.Kernel, gamma float64, m bounds.Method) *Engine {
	t.Helper()
	w := 1 / float64(pts.Len())
	ev, err := bounds.NewEvaluator(kern, gamma, w, m, pts.Dim)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := kdtree.Build(pts, kdtree.Options{LeafSize: 8, Gram: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tr, ev)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	pts := clusteredPoints(rng, 100)
	ev, err := bounds.NewEvaluator(kernel.Gaussian, 1, 0.01, bounds.Quadratic, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, ev); err == nil {
		t.Error("New with nil tree should fail")
	}
	// Gram-less tree with a Gram-needing evaluator must be rejected.
	tr, err := kdtree.Build(pts, kdtree.Options{Gram: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tr, ev); err == nil {
		t.Error("New with Gram-less tree and Gaussian quadratic bounds should fail")
	}
}

// TestEpsGuarantee: for every kernel and method, the εKDV answer must be
// within ε of the exact density.
func TestEpsGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := clusteredPoints(rng, 800)
	for _, kern := range kernel.All() {
		methods := []bounds.Method{bounds.MinMax, bounds.Quadratic}
		if kern.HasLinearBounds() {
			methods = append(methods, bounds.Linear)
		}
		for _, m := range methods {
			for _, eps := range []float64{0.01, 0.05, 0.2} {
				e := buildEngine(t, pts.Clone(), kern, 0.5, m)
				for trial := 0; trial < 25; trial++ {
					q := []float64{rng.Float64()*20 - 2, rng.Float64()*15 - 2}
					got, _ := e.EvalEps(q, eps)
					exact := bounds.ExactScan(e.Tree.Pts, nil, kern, 0.5, 1/float64(pts.Len()), q)
					if exact == 0 {
						if got != 0 {
							t.Fatalf("%s/%s ε=%g: got %g for zero density", kern, m, eps, got)
						}
						continue
					}
					if rel := math.Abs(got-exact) / exact; rel > eps {
						t.Fatalf("%s/%s ε=%g: relative error %g exceeds ε (got %g, exact %g)",
							kern, m, eps, rel, got, exact)
					}
				}
			}
		}
	}
}

// TestTauAgreement: τKDV classification must agree with the exact
// classification for thresholds away from the numerical knife edge.
func TestTauAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	pts := clusteredPoints(rng, 800)
	for _, kern := range []kernel.Kernel{kernel.Gaussian, kernel.Triangular, kernel.Exponential} {
		for _, m := range []bounds.Method{bounds.MinMax, bounds.Quadratic} {
			e := buildEngine(t, pts.Clone(), kern, 0.5, m)
			w := 1 / float64(pts.Len())
			for trial := 0; trial < 60; trial++ {
				q := []float64{rng.Float64()*20 - 2, rng.Float64()*15 - 2}
				exact := bounds.ExactScan(e.Tree.Pts, nil, kern, 0.5, w, q)
				for _, frac := range []float64{0.5, 0.9, 1.1, 2} {
					tau := exact * frac
					if tau == 0 || math.Abs(tau-exact) < 1e-12*exact {
						continue
					}
					got, _ := e.EvalTau(q, tau)
					if got != (exact >= tau) {
						t.Fatalf("%s/%s: τ=%g exact=%g classified %v", kern, m, tau, exact, got)
					}
				}
			}
		}
	}
}

func TestTauNearBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pts := clusteredPoints(rng, 200)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	q := []float64{5, 5}
	exact := e.Exact(q)
	// τ a hair below/above the density must classify hot/cold. (τ exactly
	// equal to F is a floating-point knife edge with no defined answer.)
	if hot, _ := e.EvalTau(q, exact*(1-1e-9)); !hot {
		t.Error("pixel with F just above τ should classify hot")
	}
	if hot, _ := e.EvalTau(q, exact*(1+1e-9)); hot {
		t.Error("pixel with F just below τ should classify cold")
	}
}

func TestExactMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	pts := clusteredPoints(rng, 300)
	e := buildEngine(t, pts, kernel.Gaussian, 0.7, bounds.Quadratic)
	q := []float64{3, 3}
	got := e.Exact(q)
	want := bounds.ExactScan(e.Tree.Pts, nil, kernel.Gaussian, 0.7, 1.0/300, q)
	if math.Abs(got-want) > 1e-12*(1+want) {
		t.Errorf("Exact = %g, want %g", got, want)
	}
}

// TestEpsZeroIsExact: ε=0 must refine to the exact answer.
func TestEpsZeroIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	pts := clusteredPoints(rng, 300)
	e := buildEngine(t, pts, kernel.Gaussian, 0.7, bounds.Quadratic)
	for trial := 0; trial < 10; trial++ {
		q := []float64{rng.Float64() * 15, rng.Float64() * 10}
		got, _ := e.EvalEps(q, 0)
		want := e.Exact(q)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("ε=0 result %g != exact %g", got, want)
		}
	}
}

// TestQuadPrunesMoreThanMinMax is the mechanism behind the paper's speedup:
// tighter bounds terminate with fewer leaf scans.
func TestQuadPrunesMoreThanMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	pts := clusteredPoints(rng, 4000)
	eq := buildEngine(t, pts.Clone(), kernel.Gaussian, 0.5, bounds.Quadratic)
	em := buildEngine(t, pts.Clone(), kernel.Gaussian, 0.5, bounds.MinMax)
	var quadPoints, mmPoints int
	for trial := 0; trial < 30; trial++ {
		q := []float64{rng.Float64() * 20, rng.Float64() * 15}
		_, sq := eq.EvalEps(q, 0.01)
		_, sm := em.EvalEps(q, 0.01)
		quadPoints += sq.PointsScanned
		mmPoints += sm.PointsScanned
	}
	if quadPoints >= mmPoints {
		t.Errorf("QUAD scanned %d points, MinMax %d — tighter bounds should scan fewer", quadPoints, mmPoints)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	pts := clusteredPoints(rng, 500)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	_, st := e.EvalEps([]float64{5, 5}, 0.01)
	if st.Iterations <= 0 || st.NodesEvaluated <= 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
	var total Stats
	total.Add(st)
	total.Add(st)
	if total.Iterations != 2*st.Iterations || total.PointsScanned != 2*st.PointsScanned {
		t.Errorf("Stats.Add wrong: %+v vs %+v", total, st)
	}
}

func TestBoundTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	pts := clusteredPoints(rng, 1000)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	q := []float64{5, 5}
	trace := e.BoundTrace(q, 0.01)
	if len(trace) < 2 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	exact := e.Exact(q)
	prevGap := math.Inf(1)
	for i, tp := range trace {
		if tp.LB > exact+1e-9*(1+exact) || tp.UB < exact-1e-9*(1+exact) {
			t.Fatalf("trace[%d] bounds [%g, %g] do not sandwich exact %g", i, tp.LB, tp.UB, exact)
		}
		gap := tp.UB - tp.LB
		// The gap is not strictly monotone per step, but must shrink overall.
		if i == len(trace)-1 && gap > prevGap && gap > 0.02*exact {
			t.Errorf("final gap %g did not shrink", gap)
		}
		if i == 0 {
			prevGap = gap
		}
	}
	last := trace[len(trace)-1]
	if last.UB > (1+0.01)*last.LB+1e-15 {
		t.Errorf("trace did not reach εKDV termination: [%g, %g]", last.LB, last.UB)
	}
}

// TestBoundTraceQuadStopsEarlier reproduces Figure 18's claim: QUAD
// terminates in fewer iterations than KARL on the same query.
func TestBoundTraceQuadStopsEarlier(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	pts := clusteredPoints(rng, 4000)
	eq := buildEngine(t, pts.Clone(), kernel.Gaussian, 0.5, bounds.Quadratic)
	ek := buildEngine(t, pts.Clone(), kernel.Gaussian, 0.5, bounds.Linear)
	var quadIters, karlIters int
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 20, rng.Float64() * 15}
		quadIters += len(eq.BoundTrace(q, 0.01))
		karlIters += len(ek.BoundTrace(q, 0.01))
	}
	if quadIters >= karlIters {
		t.Errorf("QUAD used %d total iterations, KARL %d — expected QUAD to stop earlier", quadIters, karlIters)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	pts := clusteredPoints(rng, 500)
	e := buildEngine(t, pts, kernel.Gaussian, 0.5, bounds.Quadratic)
	c := e.Clone()
	if c.Tree != e.Tree {
		t.Error("Clone should share the tree")
	}
	if c.Ev == e.Ev {
		t.Error("Clone must not share the evaluator")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.EvalEps([]float64{float64(i % 20), 5}, 0.01)
		}
	}()
	for i := 0; i < 200; i++ {
		e.EvalEps([]float64{5, float64(i % 15)}, 0.01)
	}
	<-done
}

// TestEpsGuaranteeDeepTail is a regression test for incremental-drift
// corruption: at query points where F is 10+ orders of magnitude below the
// root upper bound, the pending bound sums' absolute rounding drift used to
// flip ub negative and terminate refinement at half the true density. The
// engine must stay within ε even at these magnitudes.
func TestEpsGuaranteeDeepTail(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := clusteredPoints(rng, 5000)
	for _, m := range []bounds.Method{bounds.MinMax, bounds.Linear, bounds.Quadratic} {
		e := buildEngine(t, pts.Clone(), kernel.Gaussian, 0.5, m)
		w := 1 / float64(pts.Len())
		for _, off := range []float64{8, 10, 12, 15, 20} {
			q := []float64{15 + off, 10 + off} // progressively deeper tail
			exact := bounds.ExactScan(e.Tree.Pts, nil, kernel.Gaussian, 0.5, w, q)
			if exact == 0 {
				continue
			}
			got, _ := e.EvalEps(q, 0.01)
			if rel := math.Abs(got-exact) / exact; rel > 0.01 {
				t.Fatalf("%s tail offset %g: rel err %g (got %g, exact %g)", m, off, rel, got, exact)
			}
		}
	}
}

// TestSinglePointDataset exercises the degenerate single-node tree.
func TestSinglePointDataset(t *testing.T) {
	pts := geom.NewPoints([]float64{1, 1}, 2)
	e := buildEngine(t, pts, kernel.Gaussian, 1, bounds.Quadratic)
	got, _ := e.EvalEps([]float64{1, 1}, 0.01)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("density at the point = %g, want 1", got)
	}
	got, _ = e.EvalEps([]float64{100, 100}, 0.01)
	if got > 1e-100 {
		t.Errorf("density far away = %g, want ≈ 0", got)
	}
}
