package engine

import (
	"fmt"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/kdtree/flat"
)

// This file is the flat-tree (SoA) per-pixel refinement engine: the same
// Table 3 loop as Engine.refine, walking int32 node ids through contiguous
// arrays instead of chasing *Node pointers. Queue entries shrink from 32 to
// 24 bytes and every statistic fetch is a strided array load, which is what
// converts the refinement loop from cache-miss-bound to arithmetic-bound.
//
// Bit-identity contract with the pointer engine: the heap uses the SAME
// binary-heap push/pop/heapify algorithms (tied gaps pop in the same order),
// the pending-sum bookkeeping is identical, and every bound evaluation
// delegates to the shared scalar cores in internal/bounds — so EvalEps /
// EvalTau return bit-identical results for the same query, which the
// conformance flat-vs-pointer differential pass verifies raster-wide.

// fitem is one flat-queue entry: a node id with its current bound
// contribution. seed mirrors item.seed (−1 for expansion products).
type fitem struct {
	id   int32
	seed int32
	lb   float64
	ub   float64
}

func fgap(it fitem) float64 { return it.ub - it.lb }

// FlatEngine evaluates εKDV / τKDV queries against one flat tree. Like
// Engine it reuses its queue across queries and must not be shared between
// goroutines.
type FlatEngine struct {
	Tree *flat.Tree
	Ev   *bounds.Evaluator

	heap []fitem
}

// NewFlat validates that the flat tree carries the statistics the evaluator
// needs and returns a flat engine (the SoA counterpart of New).
func NewFlat(tree *flat.Tree, ev *bounds.Evaluator) (*FlatEngine, error) {
	if tree == nil || tree.NumNodes() == 0 {
		return nil, fmt.Errorf("engine: nil or empty flat tree")
	}
	if ev.NeedsGram() && !tree.HasGram() {
		return nil, fmt.Errorf("engine: %s/%s bounds need the Gram statistic; build the tree with Options.Gram", ev.Kern, ev.Method)
	}
	if len(tree.Pts.Coords) > 0 && tree.Dim() <= 0 {
		return nil, fmt.Errorf("engine: flat tree has invalid dimension %d", tree.Dim())
	}
	return &FlatEngine{Tree: tree, Ev: ev}, nil
}

// Clone returns an engine sharing the tree but with private evaluator
// scratch and queue, safe for a separate goroutine.
func (e *FlatEngine) Clone() *FlatEngine {
	return &FlatEngine{Tree: e.Tree, Ev: e.Ev.Clone()}
}

// --- max-heap on gap = ub − lb: the same hand-rolled binary heap as the
// pointer engine, so tied gaps resolve in the same order. ---

func (e *FlatEngine) heapReset() { e.heap = e.heap[:0] }

func (e *FlatEngine) heapPush(it fitem) {
	e.heap = append(e.heap, it)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if fgap(e.heap[parent]) >= fgap(e.heap[i]) {
			break
		}
		e.heap[parent], e.heap[i] = e.heap[i], e.heap[parent]
		i = parent
	}
}

func (e *FlatEngine) heapPop() fitem {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	h = e.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && fgap(h[l]) > fgap(h[big]) {
			big = l
		}
		if r < len(h) && fgap(h[r]) > fgap(h[big]) {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return top
}

func (e *FlatEngine) heapify() {
	h := e.heap
	for i := len(h)/2 - 1; i >= 0; i-- {
		for j := i; ; {
			l, r := 2*j+1, 2*j+2
			big := j
			if l < len(h) && fgap(h[l]) > fgap(h[big]) {
				big = l
			}
			if r < len(h) && fgap(h[r]) > fgap(h[big]) {
				big = r
			}
			if big == j {
				break
			}
			h[j], h[big] = h[big], h[j]
			j = big
		}
	}
}

// EvalEps answers an εKDV query (see Engine.EvalEps).
func (e *FlatEngine) EvalEps(q []float64, eps float64) (float64, Stats) {
	lb, ub, st := e.refine(q, func(lb, ub float64) bool {
		return ub <= (1+eps)*lb
	})
	st.LB, st.UB = lb, ub
	return (lb + ub) / 2, st
}

// EvalTau answers a τKDV query (see Engine.EvalTau).
func (e *FlatEngine) EvalTau(q []float64, tau float64) (bool, Stats) {
	lb, ub, st := e.refine(q, func(lb, ub float64) bool {
		return lb >= tau || ub <= tau
	})
	st.LB, st.UB = lb, ub
	return lb >= tau, st
}

// Exact computes F_P(q) exactly through the tree.
func (e *FlatEngine) Exact(q []float64) float64 {
	return e.Ev.FlatExactNode(e.Tree, 0, q)
}

// RootBounds returns the evaluator's whole-dataset bounds at q without
// refinement.
func (e *FlatEngine) RootBounds(q []float64) (lb, ub float64) {
	return e.Ev.FlatBounds(e.Tree, 0, q)
}

// refine is Engine.refine over the flat arrays: identical loop structure,
// termination tests, and pending-sum recompute discipline.
func (e *FlatEngine) refine(q []float64, done func(lb, ub float64) bool) (flb, fub float64, st Stats) {
	e.heapReset()
	t := e.Tree
	rlb, rub := e.Ev.FlatBounds(t, 0, q)
	st.NodesEvaluated++
	e.heapPush(fitem{id: 0, seed: -1, lb: rlb, ub: rub})

	var exactAcc float64
	lbPend, ubPend := rlb, rub

	for len(e.heap) > 0 {
		if lbPend < 0 || ubPend < 0 || done(exactAcc+lbPend, exactAcc+ubPend) {
			lbPend, ubPend = e.recomputePending()
			if done(exactAcc+lbPend, exactAcc+ubPend) {
				break
			}
		}
		st.Iterations++
		it := e.heapPop()
		id := it.id
		left := t.Left[id]
		if left == flat.NoChild {
			exactAcc += e.Ev.FlatExactNode(t, id, q)
			st.LeafScans++
			st.PointsScanned += t.Size(id)
			lbPend -= it.lb
			ubPend -= it.ub
			continue
		}
		right := t.Right[id]
		llb, lub := e.Ev.FlatBounds(t, left, q)
		rlb, rub := e.Ev.FlatBounds(t, right, q)
		st.NodesEvaluated += 2
		lbPend += llb + rlb - it.lb
		ubPend += lub + rub - it.ub
		e.heapPush(fitem{id: left, seed: -1, lb: llb, ub: lub})
		e.heapPush(fitem{id: right, seed: -1, lb: rlb, ub: rub})
	}
	if len(e.heap) == 0 {
		// Fully refined: the pending sums are pure rounding residue.
		return exactAcc, exactAcc, st
	}
	lb, ub := exactAcc+lbPend, exactAcc+ubPend
	if lb > ub {
		// Within an ulp of each other after the fresh recompute.
		mid := (lb + ub) / 2
		lb, ub = mid, mid
	}
	return lb, ub, st
}

func (e *FlatEngine) recomputePending() (lbPend, ubPend float64) {
	for _, it := range e.heap {
		lbPend += it.lb
		ubPend += it.ub
	}
	return lbPend, ubPend
}
