package bounds

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// FuzzEvaluatorBounds: for a fuzzer-chosen dataset shape, kernel, γ, and
// query, every bound method's [LB, UB] must bracket the exact node sum on
// every node of the tree — the quadratic-bound coefficients' end-to-end
// soundness invariant.
func FuzzEvaluatorBounds(f *testing.F) {
	f.Add(int64(1), uint8(60), uint8(0), 1.0, 0.3, 0.7, false)
	f.Add(int64(5), uint8(120), uint8(3), 0.2, -2.0, 9.0, true)
	f.Add(int64(9), uint8(4), uint8(5), 10.0, 0.0, 0.0, false) // tiny set, quartic
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kernRaw uint8, gammaRaw, qx, qy float64, ball bool) {
		if math.IsNaN(gammaRaw) || math.IsInf(gammaRaw, 0) || math.IsNaN(qx) || math.IsNaN(qy) || math.IsInf(qx, 0) || math.IsInf(qy, 0) {
			return
		}
		n := int(nRaw)%150 + 1
		kern := kernel.Kernel(int(kernRaw) % len(kernel.All()))
		gamma := math.Abs(math.Mod(gammaRaw, 100))
		if gamma == 0 {
			gamma = 0.5
		}
		rng := rand.New(rand.NewSource(seed))
		coords := make([]float64, 2*n)
		for i := range coords {
			coords[i] = 10 * rng.NormFloat64()
		}
		pts := geom.NewPoints(coords, 2)
		tree, err := kdtree.Build(pts, kdtree.Options{Gram: true})
		if err != nil {
			t.Fatal(err)
		}
		q := []float64{math.Mod(qx, 50), math.Mod(qy, 50)}
		weight := 1.0 / float64(n)

		methods := []Method{Quadratic, MinMax}
		if kern.HasLinearBounds() {
			methods = append(methods, Linear)
		}
		for _, m := range methods {
			ev, err := NewEvaluator(kern, gamma, weight, m, 2)
			if err != nil {
				t.Fatal(err)
			}
			ev.SetBallTightening(ball)
			tree.Walk(func(nd *kdtree.Node) bool {
				lb, ub := ev.Bounds(nd, q)
				exact := ev.ExactNode(tree, nd, q)
				tol := 1e-9*(math.Abs(exact)+math.Abs(lb)+math.Abs(ub)) + 1e-300
				if lb > exact+tol || exact > ub+tol {
					t.Fatalf("%s/%s node [%d,%d): bounds [%.17g,%.17g] miss exact %.17g (γ=%g q=%v)",
						kern, m, nd.Start, nd.End, lb, ub, exact, gamma, q)
				}
				return true
			})
		}
	})
}

// FuzzRectBounds: the tile-uniform RectBounds must bracket the exact node
// sum for every query inside the rectangle.
func FuzzRectBounds(f *testing.F) {
	f.Add(int64(2), uint8(40), uint8(0), 0.5, -1.0, -1.0, 3.0, 4.0)
	f.Add(int64(8), uint8(90), uint8(2), 2.0, 0.0, 0.0, 0.0, 0.0) // degenerate rect
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kernRaw uint8, gammaRaw, ax, ay, bx, by float64) {
		for _, v := range []float64{gammaRaw, ax, ay, bx, by} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		n := int(nRaw)%100 + 1
		kern := kernel.Kernel(int(kernRaw) % len(kernel.All()))
		gamma := math.Abs(math.Mod(gammaRaw, 100))
		if gamma == 0 {
			gamma = 0.5
		}
		rng := rand.New(rand.NewSource(seed))
		coords := make([]float64, 2*n)
		for i := range coords {
			coords[i] = 10 * rng.NormFloat64()
		}
		tree, err := kdtree.Build(geom.NewPoints(coords, 2), kdtree.Options{Gram: true})
		if err != nil {
			t.Fatal(err)
		}
		rect := geom.Rect{
			Min: []float64{math.Min(math.Mod(ax, 40), math.Mod(bx, 40)), math.Min(math.Mod(ay, 40), math.Mod(by, 40))},
			Max: []float64{math.Max(math.Mod(ax, 40), math.Mod(bx, 40)), math.Max(math.Mod(ay, 40), math.Mod(by, 40))},
		}
		ev, err := NewEvaluator(kern, gamma, 1.0/float64(n), Quadratic, 2)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, 2)
		tree.Walk(func(nd *kdtree.Node) bool {
			lb, ub := ev.RectBounds(nd, rect)
			for i := 0; i < 8; i++ {
				for j := range q {
					q[j] = rect.Min[j] + rng.Float64()*(rect.Max[j]-rect.Min[j])
				}
				exact := ev.ExactNode(tree, nd, q)
				tol := 1e-9*(math.Abs(exact)+math.Abs(lb)+math.Abs(ub)) + 1e-300
				if lb > exact+tol || exact > ub+tol {
					t.Fatalf("%s node [%d,%d): rect bounds [%.17g,%.17g] miss exact %.17g at q=%v",
						kern, nd.Start, nd.End, lb, ub, exact, q)
				}
			}
			return true
		})
	})
}
