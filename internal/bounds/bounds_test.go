package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// fixture bundles a built tree with brute-force helpers.
type fixture struct {
	tree *kdtree.Tree
	pts  geom.Points
}

func newFixture(t *testing.T, rng *rand.Rand, n, dim int, clustered bool) *fixture {
	t.Helper()
	coords := make([]float64, 0, n*dim)
	for i := 0; i < n; i++ {
		if clustered && i%3 != 0 {
			base := float64(i % 5)
			for j := 0; j < dim; j++ {
				coords = append(coords, base+rng.NormFloat64()*0.2)
			}
		} else {
			for j := 0; j < dim; j++ {
				coords = append(coords, rng.NormFloat64()*3)
			}
		}
	}
	tr, err := kdtree.Build(geom.NewPoints(coords, dim), kdtree.Options{LeafSize: 8, Gram: true})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{tree: tr, pts: tr.Pts}
}

func (f *fixture) exactNode(n *kdtree.Node, kern kernel.Kernel, gamma, w float64, q []float64) float64 {
	var sum float64
	for i := n.Start; i < n.End; i++ {
		sum += kern.Eval(gamma, geom.Dist2(q, f.pts.At(i)))
	}
	return w * sum
}

func (f *fixture) randQuery(rng *rand.Rand, dim int) []float64 {
	q := make([]float64, dim)
	for i := range q {
		q[i] = rng.NormFloat64() * 4
	}
	return q
}

// allMethods returns the methods applicable to a kernel.
func allMethods(k kernel.Kernel) []Method {
	ms := []Method{MinMax, Quadratic}
	if k.HasLinearBounds() {
		ms = append(ms, Linear)
	}
	return ms
}

// TestBoundsSandwichExact is the core correctness property: for every
// kernel, method, node and query, LB ≤ F ≤ UB.
func TestBoundsSandwichExact(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, kern := range kernel.All() {
		for _, dim := range []int{1, 2, 3} {
			f := newFixture(t, rng, 400, dim, true)
			for _, gamma := range []float64{0.05, 0.5, 3} {
				for _, method := range allMethods(kern) {
					ev, err := NewEvaluator(kern, gamma, 1.0/400, method, dim)
					if err != nil {
						t.Fatal(err)
					}
					for trial := 0; trial < 8; trial++ {
						q := f.randQuery(rng, dim)
						f.tree.Walk(func(n *kdtree.Node) bool {
							lb, ub := ev.Bounds(n, q)
							exact := f.exactNode(n, kern, gamma, 1.0/400, q)
							tol := 1e-9 * (1 + math.Abs(exact))
							if lb > exact+tol {
								t.Fatalf("%s/%s dim=%d γ=%g: LB %.12g > exact %.12g (node size %d)",
									kern, method, dim, gamma, lb, exact, n.Size())
							}
							if ub < exact-tol {
								t.Fatalf("%s/%s dim=%d γ=%g: UB %.12g < exact %.12g (node size %d)",
									kern, method, dim, gamma, ub, exact, n.Size())
							}
							if lb > ub+tol {
								t.Fatalf("%s/%s: LB %g > UB %g", kern, method, lb, ub)
							}
							return n.Size() > 30
						})
					}
				}
			}
		}
	}
}

// TestTightnessOrderingGaussian verifies the paper's central tightness claim
// (Sections 4.2–4.3): on the Gaussian kernel,
// LB_MinMax ≤ LB_KARL ≤ LB_QUAD and UB_QUAD ≤ UB_KARL ≤ UB_MinMax.
func TestTightnessOrderingGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := newFixture(t, rng, 500, 2, true)
	const gamma, w = 0.8, 1.0 / 500
	mk := func(m Method) *Evaluator {
		ev, err := NewEvaluator(kernel.Gaussian, gamma, w, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	evMM, evL, evQ := mk(MinMax), mk(Linear), mk(Quadratic)
	const tol = 1e-9
	for trial := 0; trial < 30; trial++ {
		q := f.randQuery(rng, 2)
		f.tree.Walk(func(n *kdtree.Node) bool {
			lbM, ubM := evMM.Bounds(n, q)
			lbL, ubL := evL.Bounds(n, q)
			lbQ, ubQ := evQ.Bounds(n, q)
			if lbL < lbM-tol*(1+lbM) {
				t.Fatalf("KARL lower %g looser than MinMax %g", lbL, lbM)
			}
			if lbQ < lbL-tol*(1+lbL) {
				t.Fatalf("QUAD lower %g looser than KARL %g", lbQ, lbL)
			}
			if ubL > ubM+tol*(1+ubM) {
				t.Fatalf("KARL upper %g looser than MinMax %g", ubL, ubM)
			}
			if ubQ > ubL+tol*(1+ubL) {
				t.Fatalf("QUAD upper %g looser than KARL %g", ubQ, ubL)
			}
			return n.Size() > 30
		})
	}
}

// TestTightnessOrderingDistanceKernels verifies QUAD ⊆ MinMax for the
// Section 5 kernels (Lemmas 5–6 and the 9.6 analogues).
func TestTightnessOrderingDistanceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := newFixture(t, rng, 500, 2, true)
	const w = 1.0 / 500
	const tol = 1e-9
	for _, kern := range []kernel.Kernel{kernel.Triangular, kernel.Cosine, kernel.Exponential} {
		for _, gamma := range []float64{0.1, 0.4, 1.5} {
			evMM, err := NewEvaluator(kern, gamma, w, MinMax, 2)
			if err != nil {
				t.Fatal(err)
			}
			evQ, err := NewEvaluator(kern, gamma, w, Quadratic, 2)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				q := f.randQuery(rng, 2)
				f.tree.Walk(func(n *kdtree.Node) bool {
					lbM, ubM := evMM.Bounds(n, q)
					lbQ, ubQ := evQ.Bounds(n, q)
					if lbQ < lbM-tol*(1+lbM) {
						t.Fatalf("%s γ=%g: QUAD lower %g looser than MinMax %g", kern, gamma, lbQ, lbM)
					}
					if ubQ > ubM+tol*(1+ubM) {
						t.Fatalf("%s γ=%g: QUAD upper %g looser than MinMax %g", kern, gamma, ubQ, ubM)
					}
					return n.Size() > 30
				})
			}
		}
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	cases := []struct {
		name   string
		kern   kernel.Kernel
		gamma  float64
		weight float64
		method Method
		dim    int
	}{
		{"invalid kernel", kernel.Kernel(99), 1, 1, MinMax, 2},
		{"zero gamma", kernel.Gaussian, 0, 1, MinMax, 2},
		{"negative weight", kernel.Gaussian, 1, -1, MinMax, 2},
		{"linear non-gaussian", kernel.Triangular, 1, 1, Linear, 2},
		{"zero dim", kernel.Gaussian, 1, 1, MinMax, 0},
	}
	for _, c := range cases {
		if _, err := NewEvaluator(c.kern, c.gamma, c.weight, c.method, c.dim); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNeedsGram(t *testing.T) {
	mk := func(k kernel.Kernel, m Method) bool {
		ev, err := NewEvaluator(k, 1, 1, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		return ev.NeedsGram()
	}
	if !mk(kernel.Gaussian, Quadratic) {
		t.Error("Gaussian quadratic must need Gram")
	}
	if !mk(kernel.Quartic, Quadratic) {
		t.Error("Quartic quadratic must need Gram")
	}
	if mk(kernel.Gaussian, Linear) || mk(kernel.Gaussian, MinMax) || mk(kernel.Triangular, Quadratic) {
		t.Error("only Gaussian/Quartic quadratic bounds need Gram")
	}
}

func TestMethodStringParse(t *testing.T) {
	for _, m := range []Method{MinMax, Linear, Quadratic} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v failed: %v %v", m, got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("ParseMethod of unknown name succeeded")
	}
}

func TestExactScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := geom.NewPoints([]float64{0, 0, 1, 1, 2, 0, -1, 3}, 2)
	q := []float64{0.5, 0.5}
	for _, kern := range kernel.All() {
		gamma := 0.3 + rng.Float64()
		var want float64
		for i := 0; i < pts.Len(); i++ {
			want += kern.Eval(gamma, geom.Dist2(q, pts.At(i)))
		}
		want *= 0.25
		got := ExactScan(pts, nil, kern, gamma, 0.25, q)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: ExactScan = %g, want %g", kern, got, want)
		}
	}
}

func TestExactNodeMatchesExactScanOnRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	f := newFixture(t, rng, 300, 2, false)
	ev, err := NewEvaluator(kernel.Gaussian, 0.7, 1.0/300, Quadratic, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := f.randQuery(rng, 2)
	got := ev.ExactNode(f.tree, f.tree.Root, q)
	want := ExactScan(f.pts, nil, kernel.Gaussian, 0.7, 1.0/300, q)
	if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		t.Errorf("ExactNode(root) = %g, ExactScan = %g", got, want)
	}
}

func TestCloneIndependentScratch(t *testing.T) {
	ev, err := NewEvaluator(kernel.Gaussian, 1, 1, Quadratic, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := ev.Clone()
	if &c.scratch[0] == &ev.scratch[0] {
		t.Error("Clone shares scratch buffer")
	}
	if c.Kern != ev.Kern || c.Method != ev.Method {
		t.Error("Clone lost configuration")
	}
}

// TestBoundsQuickGaussian drives the sandwich property through testing/quick
// with randomized queries on a fixed tree.
func TestBoundsQuickGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	f := newFixture(t, rng, 300, 2, true)
	ev, err := NewEvaluator(kernel.Gaussian, 0.6, 1.0/300, Quadratic, 2)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(qa, qb float64) bool {
		q := []float64{math.Mod(qa, 12), math.Mod(qb, 12)}
		lb, ub := ev.Bounds(f.tree.Root, q)
		exact := f.exactNode(f.tree.Root, kernel.Gaussian, 0.6, 1.0/300, q)
		tol := 1e-9 * (1 + exact)
		return lb <= exact+tol && ub >= exact-tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestZeroSupportNodes: nodes entirely outside a finite-support kernel's
// radius must get lb = ub = 0 under quadratic bounds.
func TestZeroSupportNodes(t *testing.T) {
	pts := geom.NewPoints([]float64{100, 100, 101, 101, 100, 101, 102, 100, 101, 100, 102, 102}, 2)
	tr, err := kdtree.Build(pts, kdtree.Options{LeafSize: 2, Gram: true})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0}
	for _, kern := range []kernel.Kernel{kernel.Triangular, kernel.Cosine, kernel.Epanechnikov, kernel.Quartic} {
		ev, err := NewEvaluator(kern, 1, 1, Quadratic, 2)
		if err != nil {
			t.Fatal(err)
		}
		lb, ub := ev.Bounds(tr.Root, q)
		if lb != 0 || ub != 0 {
			t.Errorf("%s: far node bounds [%g, %g], want [0, 0]", kern, lb, ub)
		}
	}
}
