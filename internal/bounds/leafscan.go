package bounds

import "github.com/quadkdv/quad/internal/kernel"

// Gaussian 2-D leaf scans, shared verbatim by the pointer engine's ExactNode
// and the flat engine's FlatExactNode so the two produce bit-identical sums
// by construction. The distance accumulation order (x-term then y-term, one
// running sum added point by point) is fixed; the exponentials go through
// kernel.Exp4 four points at a time, which returns bit-identical values to
// its scalar form kernel.Exp1, so the batching never changes the sum.

// gaussLeafSum2 returns Σ_i exp(−γ·‖q−p_i‖²) over the interleaved 2-D
// coordinate row (x0 y0 x1 y1 …).
func gaussLeafSum2(row []float64, q0, q1, gamma float64) float64 {
	var sum float64
	n := len(row) / 2
	i := 0
	for ; i+3 < n; i += 4 {
		r := row[2*i : 2*i+8 : 2*i+8]
		var d0, d1, d2, d3 float64
		dd := q0 - r[0]
		d0 += dd * dd
		dd = q1 - r[1]
		d0 += dd * dd
		dd = q0 - r[2]
		d1 += dd * dd
		dd = q1 - r[3]
		d1 += dd * dd
		dd = q0 - r[4]
		d2 += dd * dd
		dd = q1 - r[5]
		d2 += dd * dd
		dd = q0 - r[6]
		d3 += dd * dd
		dd = q1 - r[7]
		d3 += dd * dd
		e0, e1, e2, e3 := kernel.Exp4(-gamma*d0, -gamma*d1, -gamma*d2, -gamma*d3)
		sum += e0
		sum += e1
		sum += e2
		sum += e3
	}
	for ; i < n; i++ {
		var dist2 float64
		dd := q0 - row[2*i]
		dist2 += dd * dd
		dd = q1 - row[2*i+1]
		dist2 += dd * dd
		sum += kernel.Exp1(-gamma * dist2)
	}
	return sum
}

// gaussLeafSumW2 is gaussLeafSum2 with per-point weights (parallel to the
// points, i.e. ws[i] belongs to row[2i:2i+2]).
func gaussLeafSumW2(row []float64, ws []float64, q0, q1, gamma float64) float64 {
	var sum float64
	n := len(row) / 2
	i := 0
	for ; i+3 < n; i += 4 {
		r := row[2*i : 2*i+8 : 2*i+8]
		w := ws[i : i+4 : i+4]
		var d0, d1, d2, d3 float64
		dd := q0 - r[0]
		d0 += dd * dd
		dd = q1 - r[1]
		d0 += dd * dd
		dd = q0 - r[2]
		d1 += dd * dd
		dd = q1 - r[3]
		d1 += dd * dd
		dd = q0 - r[4]
		d2 += dd * dd
		dd = q1 - r[5]
		d2 += dd * dd
		dd = q0 - r[6]
		d3 += dd * dd
		dd = q1 - r[7]
		d3 += dd * dd
		e0, e1, e2, e3 := kernel.Exp4(-gamma*d0, -gamma*d1, -gamma*d2, -gamma*d3)
		sum += w[0] * e0
		sum += w[1] * e1
		sum += w[2] * e2
		sum += w[3] * e3
	}
	for ; i < n; i++ {
		var dist2 float64
		dd := q0 - row[2*i]
		dist2 += dd * dd
		dd = q1 - row[2*i+1]
		dist2 += dd * dd
		sum += ws[i] * kernel.Exp1(-gamma*dist2)
	}
	return sum
}
