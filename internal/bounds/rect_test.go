package bounds

import (
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// TestRectBoundsBracketAllQueries is the tile-shared traversal's core
// soundness property: RectBounds(n, rect) must bracket the node's exact
// contribution F_R(q) for EVERY query point q in rect — that is what lets
// one shared evaluation stand in for a whole pixel tile.
func TestRectBoundsBracketAllQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	coords := make([]float64, 0, 600)
	for i := 0; i < 300; i++ {
		cx, cy := float64(i%3)*4, float64(i%2)*4
		coords = append(coords, cx+rng.NormFloat64(), cy+rng.NormFloat64())
	}
	pts := geom.NewPoints(coords, 2)
	tree, err := kdtree.Build(pts, kdtree.Options{LeafSize: 8, Gram: true})
	if err != nil {
		t.Fatal(err)
	}
	rects := []geom.Rect{
		{Min: []float64{0, 0}, Max: []float64{2, 2}},
		{Min: []float64{-5, -5}, Max: []float64{-4, -4}},
		{Min: []float64{-2, -2}, Max: []float64{10, 8}},
		{Min: []float64{3, 3}, Max: []float64{3, 3}}, // degenerate: a point
	}
	for _, kern := range []kernel.Kernel{kernel.Gaussian, kernel.Triangular, kernel.Epanechnikov} {
		for _, ball := range []bool{false, true} {
			ev, err := NewEvaluator(kern, 0.7, 1.0/300, MinMax, 2)
			if err != nil {
				t.Fatal(err)
			}
			ev.SetBallTightening(ball)
			var nodes []*kdtree.Node
			tree.Walk(func(n *kdtree.Node) bool { nodes = append(nodes, n); return true })
			for _, rect := range rects {
				for ni, n := range nodes {
					lb, ub := ev.RectBounds(n, rect)
					if lb > ub {
						t.Fatalf("%v ball=%v node %d: inverted bounds [%g, %g]", kern, ball, ni, lb, ub)
					}
					// Corners plus interior samples.
					qs := [][]float64{
						{rect.Min[0], rect.Min[1]},
						{rect.Max[0], rect.Max[1]},
						{rect.Min[0], rect.Max[1]},
						{rect.Max[0], rect.Min[1]},
					}
					for s := 0; s < 6; s++ {
						qs = append(qs, []float64{
							rect.Min[0] + rng.Float64()*(rect.Max[0]-rect.Min[0]),
							rect.Min[1] + rng.Float64()*(rect.Max[1]-rect.Min[1]),
						})
					}
					for _, q := range qs {
						exact := ev.ExactNode(tree, n, q)
						if exact < lb-1e-12 || exact > ub+1e-12 {
							t.Fatalf("%v ball=%v node %d rect %v q %v: exact %g outside [%g, %g]",
								kern, ball, ni, rect, q, exact, lb, ub)
						}
						// The rect bounds must also contain the per-query
						// min-max bounds' information: they may be looser,
						// never contradictory.
						qlb, qub := ev.Bounds(n, q)
						if qub < lb-1e-12 || qlb > ub+1e-12 {
							t.Fatalf("%v ball=%v node %d: per-query bounds [%g, %g] disjoint from rect bounds [%g, %g]",
								kern, ball, ni, qlb, qub, lb, ub)
						}
					}
				}
			}
		}
	}
}
