package bounds

import (
	"math"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree/flat"
	"github.com/quadkdv/quad/internal/kernel"
)

// This file is the flat-tree (SoA) front end of the evaluator: each method
// mirrors its pointer-tree counterpart in bounds.go, fetching node statistics
// from the flat arrays and feeding them to the shared scalar cores in
// vals.go. The distance/moment computations delegate to the flat package,
// whose methods replicate the pointer arithmetic operation for operation, so
// both front ends produce bit-identical bounds for the same node.

// FlatBounds is Bounds over a flat tree node.
func (e *Evaluator) FlatBounds(t *flat.Tree, id int32, q []float64) (lb, ub float64) {
	sumW := t.SumW[id]
	if sumW == 0 {
		// All-zero weights contribute nothing (and would otherwise produce
		// 0/0 in the tangent-point formulas).
		return 0, 0
	}
	mind2 := t.MinDist2(id, q)
	maxd2 := t.MaxDist2(id, q)
	if e.useBall {
		dc := math.Sqrt(t.Dist2Center(id, q))
		r := t.Radius[id]
		if bmin := dc - r; bmin > 0 {
			if b2 := bmin * bmin; b2 > mind2 {
				mind2 = b2
			}
		}
		bmax := dc + r
		if b2 := bmax * bmax; b2 < maxd2 {
			maxd2 = b2
		}
	}
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)

	switch e.Method {
	case MinMax:
		lb, ub = e.minMaxVals(sumW, xmin, xmax)
	case Linear:
		sumX := e.Gamma * t.SumDist2(id, q, e.scratch)
		lb, ub = e.linearGaussianVals(sumW, sumX, xmin, xmax)
	case Quadratic:
		lb, ub = e.flatQuadratic(t, id, q, xmin, xmax)
	default:
		panic("bounds: invalid method")
	}
	return e.clampVals(sumW, lb, ub)
}

func (e *Evaluator) flatQuadratic(t *flat.Tree, id int32, q []float64, xmin, xmax float64) (lb, ub float64) {
	sumW := t.SumW[id]
	switch e.Kern {
	case kernel.Gaussian:
		s2, s4 := t.SumDist24(id, q, e.scratch)
		sumX := e.Gamma * s2
		sumX2 := e.Gamma * e.Gamma * s4
		return e.quadGaussianVals(sumW, sumX, sumX2, xmin, xmax)
	case kernel.Triangular:
		if xmin >= 1 {
			return 0, 0
		}
		sumX2 := e.Gamma * e.Gamma * t.SumDist2(id, q, e.scratch)
		return e.quadTriangularVals(sumW, sumX2, xmin, xmax)
	case kernel.Cosine:
		if xmin >= math.Pi/2 {
			return 0, 0
		}
		if xmax > math.Pi/2 {
			return e.minMaxVals(sumW, xmin, xmax)
		}
		sumX2 := e.Gamma * e.Gamma * t.SumDist2(id, q, e.scratch)
		return e.quadCosineVals(sumW, sumX2, xmin, xmax)
	case kernel.Exponential:
		s2 := t.SumDist2(id, q, e.scratch)
		sumX2 := e.Gamma * e.Gamma * s2
		return e.quadExponentialVals(sumW, sumX2, xmin, xmax)
	case kernel.Epanechnikov:
		if xmin >= 1 {
			return 0, 0
		}
		sumX2 := e.Gamma * e.Gamma * t.SumDist2(id, q, e.scratch)
		return e.quadEpanechnikovVals(sumW, sumX2, xmin, xmax)
	case kernel.Quartic:
		if xmin >= 1 {
			return 0, 0
		}
		g2 := e.Gamma * e.Gamma
		s2, s4 := t.SumDist24(id, q, e.scratch)
		sumX2 := g2 * s2
		sumX4 := g2 * g2 * s4
		return e.quadQuarticVals(sumW, sumX2, sumX4, xmin, xmax)
	default: // Uniform: flat discontinuous profile, only min-max applies.
		return e.minMaxVals(sumW, xmin, xmax)
	}
}

// FlatRectBounds is RectBounds over a flat tree node.
func (e *Evaluator) FlatRectBounds(t *flat.Tree, id int32, rect geom.Rect) (lb, ub float64) {
	sumW := t.SumW[id]
	if sumW == 0 {
		return 0, 0
	}
	mind2, maxd2 := t.RectDist2(id, rect, e.useBall)
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)
	lb, ub = e.minMaxVals(sumW, xmin, xmax)
	if e.Method != MinMax && e.Kern.HasLinearBounds() {
		s2lo, s2hi := t.RectSumDist2(id, rect)
		llb, lub := e.rectLinearGaussianVals(sumW, s2lo, s2hi, xmin, xmax)
		if llb > lb {
			lb = llb
		}
		if lub < ub {
			ub = lub
		}
	}
	return e.clampVals(sumW, lb, ub)
}

// FlatAccumulateRectEnvelope is AccumulateRectEnvelope over a flat tree node.
func (e *Evaluator) FlatAccumulateRectEnvelope(t *flat.Tree, id int32, rect geom.Rect, center []float64, lbEnv, ubEnv *TileEnvelope) bool {
	if !e.SupportsEnvelope() {
		return false
	}
	sumW := t.SumW[id]
	if sumW == 0 {
		return true
	}
	mind2, maxd2 := t.RectDist2(id, rect, e.useBall)
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)
	s2lo, s2hi := t.RectSumDist2(id, rect)
	d := t.Dim()
	o := int(id) * d
	e.accumulateEnvelopeVals(sumW, t.SumNorm2[id], t.Center[o:o+d:o+d], t.SumP[o:o+d:o+d],
		s2lo, s2hi, xmin, xmax, center, lbEnv, ubEnv)
	return true
}

// FlatRectEnvelopeGap is RectEnvelopeGap over a flat tree node.
func (e *Evaluator) FlatRectEnvelopeGap(t *flat.Tree, id int32, rect geom.Rect) (float64, bool) {
	if !e.SupportsEnvelope() {
		return 0, false
	}
	sumW := t.SumW[id]
	if sumW == 0 {
		return 0, true
	}
	mind2, maxd2 := t.RectDist2(id, rect, e.useBall)
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)
	s2lo, s2hi := t.RectSumDist2(id, rect)
	return e.envelopeGapVals(sumW, s2lo, s2hi, xmin, xmax), true
}

// FlatExactNode is ExactNode over a flat tree node: the leaf point-scan,
// with the batched 2-D Gaussian fast path of leafscan.go (shared with the
// pointer engine's ExactNode, so the two stay bit-identical).
func (e *Evaluator) FlatExactNode(t *flat.Tree, id int32, q []float64) float64 {
	pts := t.Pts
	d := pts.Dim
	coords := pts.Coords
	start, end := int(t.Start[id]), int(t.End[id])
	var sum float64
	if e.Kern == kernel.Gaussian && d == 2 {
		row := coords[start*2 : end*2]
		if t.Weights == nil {
			sum = gaussLeafSum2(row, q[0], q[1], e.Gamma)
		} else {
			sum = gaussLeafSumW2(row, t.Weights[start:end], q[0], q[1], e.Gamma)
		}
		return e.Weight * sum
	}
	if t.Weights == nil {
		for i := start; i < end; i++ {
			row := coords[i*d : i*d+d]
			var dist2 float64
			for k, v := range q {
				dd := v - row[k]
				dist2 += dd * dd
			}
			sum += e.Kern.Eval(e.Gamma, dist2)
		}
	} else {
		for i := start; i < end; i++ {
			row := coords[i*d : i*d+d]
			var dist2 float64
			for k, v := range q {
				dd := v - row[k]
				dist2 += dd * dd
			}
			sum += t.Weights[i] * e.Kern.Eval(e.Gamma, dist2)
		}
	}
	return e.Weight * sum
}
