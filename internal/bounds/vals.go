package bounds

import (
	"math"

	"github.com/quadkdv/quad/internal/kernel"
)

// This file holds the representation-independent scalar cores of every bound
// family: each takes the node's aggregate statistics as plain float64s (or
// slices of them) and is shared verbatim by the pointer-tree methods in
// bounds.go and the flat-tree methods in flat.go. Keeping exactly one copy of
// each formula is what makes the two engines bit-identical by construction —
// the representations may only differ in how they fetch the statistics, never
// in how they combine them.

// clampVals floors lb at 0, caps ub at w·|P|·K(0), and repairs any floating-
// point inversion by widening to the safe side (see Evaluator.clamp).
func (e *Evaluator) clampVals(sumW, lb, ub float64) (float64, float64) {
	cap := e.Weight * sumW * e.Kern.ProfileMax()
	if lb < 0 {
		lb = 0
	}
	if ub > cap {
		ub = cap
	}
	if lb > ub {
		lb = ub
	}
	return lb, ub
}

// minMaxVals is the aKDE/tKDC rectangle-distance bound (Equations 5–6).
func (e *Evaluator) minMaxVals(sumW, xmin, xmax float64) (lb, ub float64) {
	w := e.Weight * sumW
	return w * e.Kern.Profile(xmax), w * e.Kern.Profile(xmin)
}

// linearGaussianVals is KARL's aggregated linear envelope (Section 3.3,
// Lemma 1) given sumX = γ·Σdist².
func (e *Evaluator) linearGaussianVals(sumW, sumX, xmin, xmax float64) (lb, ub float64) {
	up := kernel.ExpChordUpper(xmin, xmax)
	ub = e.Weight * (up.M*sumX + up.K*sumW)
	t := e.tangentPoint(sumX/sumW, xmin, xmax) // Equation 3 by default
	lo := kernel.ExpTangentLower(t)
	lb = e.Weight * (lo.M*sumX + lo.K*sumW)
	return lb, ub
}

// quadGaussianVals is QUAD's aggregated quadratic envelope (Section 4,
// Lemma 3) given sumX = γ·Σdist² and sumX2 = γ²·Σdist⁴.
func (e *Evaluator) quadGaussianVals(sumW, sumX, sumX2, xmin, xmax float64) (lb, ub float64) {
	qu := kernel.ExpQuadUpper(xmin, xmax)
	ub = e.Weight * (qu.A*sumX2 + qu.B*sumX + qu.C*sumW)
	t := e.tangentPoint(sumX/sumW, xmin, xmax) // t* of Equation 3 by default
	ql := kernel.ExpQuadLower(xmin, xmax, t)
	lb = e.Weight * (ql.A*sumX2 + ql.B*sumX + ql.C*sumW)
	return lb, ub
}

// quadTriangularVals is the Section 5.2 bound given sumX2 = γ²·Σdist². The
// caller has already handled the xmin ≥ 1 early-out.
func (e *Evaluator) quadTriangularVals(sumW, sumX2, xmin, xmax float64) (lb, ub float64) {
	if qu, ok := kernel.TriangularQuadUpper(xmin, xmax); ok {
		ub = e.Weight * (qu.A*sumX2 + qu.C*sumW)
	} else {
		ub = e.Weight * sumW * e.Kern.Profile(xmin)
	}
	// The optimal shifted parabola (Theorem 2) is a valid lower bound for
	// every x ≥ 0; it beats the min-max bound whenever all x_i ≤ 1
	// (Lemma 6), and we keep the better of the two in general.
	lb = kernel.TriangularQuadLowerValue(e.Weight, sumW, sumX2)
	if mm := e.Weight * sumW * e.Kern.Profile(xmax); mm > lb {
		lb = mm
	}
	return lb, ub
}

// quadCosineVals is the appendix 9.6.1–9.6.2 bound given sumX2 = γ²·Σdist².
// The caller has already handled the support early-outs.
func (e *Evaluator) quadCosineVals(sumW, sumX2, xmin, xmax float64) (lb, ub float64) {
	if qu, ok := kernel.CosineQuadUpper(xmin, xmax); ok {
		ub = e.Weight * (qu.A*sumX2 + qu.C*sumW)
	} else {
		ub = e.Weight * sumW * e.Kern.Profile(xmin)
	}
	if ql, ok := kernel.CosineQuadLower(xmin, xmax); ok {
		lb = e.Weight * (ql.A*sumX2 + ql.C*sumW)
	} else {
		lb = e.Weight * sumW * e.Kern.Profile(xmax)
	}
	return lb, ub
}

// quadExponentialVals is the appendix 9.6.3–9.6.4 bound given
// sumX2 = γ²·Σdist².
func (e *Evaluator) quadExponentialVals(sumW, sumX2, xmin, xmax float64) (lb, ub float64) {
	if qu, ok := kernel.ExpDistQuadUpper(xmin, xmax); ok {
		ub = e.Weight * (qu.A*sumX2 + qu.C*sumW)
	} else {
		ub = e.Weight * sumW * e.Kern.Profile(xmin)
	}
	// t* = sqrt(γ²·Σdist²/|P|) (Equation 18), clamped into the interval so
	// the tangent point stays within the node's reachable x range.
	t := clampT(math.Sqrt(sumX2/sumW), xmin, xmax)
	if ql, ok := kernel.ExpDistQuadLower(t); ok {
		lb = e.Weight * (ql.A*sumX2 + ql.C*sumW)
	} else {
		lb = e.Weight * sumW * e.Kern.Profile(xmax)
	}
	return lb, ub
}

// quadEpanechnikovVals: exact inside the support, envelope lower bound plus
// min-max upper bound beyond it. The caller has handled xmin ≥ 1.
func (e *Evaluator) quadEpanechnikovVals(sumW, sumX2, xmin, xmax float64) (lb, ub float64) {
	exactish := kernel.EpanechnikovQuadLowerValue(e.Weight, sumW, sumX2)
	if xmax <= 1 {
		return exactish, exactish
	}
	lb = exactish
	if mm := e.Weight * sumW * e.Kern.Profile(xmax); mm > lb {
		lb = mm
	}
	ub = e.Weight * sumW * e.Kern.Profile(xmin)
	return lb, ub
}

// quadQuarticVals: exact inside the support via the Σx², Σx⁴ statistics. The
// caller has handled xmin ≥ 1.
func (e *Evaluator) quadQuarticVals(sumW, sumX2, sumX4, xmin, xmax float64) (lb, ub float64) {
	ub = kernel.QuarticQuadUpperValue(e.Weight, sumW, sumX2, sumX4)
	if xmax <= 1 {
		return ub, ub
	}
	lb = e.Weight * sumW * e.Kern.Profile(xmax)
	return lb, ub
}

// rectLinearGaussianVals is the tile-uniform KARL tightening (see
// Evaluator.rectLinearGaussian) given the exact rect-range [s2lo, s2hi] of
// Σ w·dist².
func (e *Evaluator) rectLinearGaussianVals(sumW, s2lo, s2hi, xmin, xmax float64) (lb, ub float64) {
	sxLo, sxHi := e.Gamma*s2lo, e.Gamma*s2hi
	up := kernel.ExpChordUpper(xmin, xmax)
	ub = e.Weight * (math.Max(up.M*sxLo, up.M*sxHi) + up.K*sumW)
	t := e.tangentPoint(sxHi/sumW, xmin, xmax)
	lo := kernel.ExpTangentLower(t)
	lb = e.Weight * (math.Min(lo.M*sxLo, lo.M*sxHi) + lo.K*sumW)
	return lb, ub
}

// accumulateEnvelopeVals folds one node's tile-valid envelope bounds into the
// aggregate quadratic forms (see Evaluator.AccumulateRectEnvelope). nCenter
// and nSumP are the node's moment center and Σw·(p−C) vectors in whichever
// representation the caller uses.
func (e *Evaluator) accumulateEnvelopeVals(sumW, sumNorm2 float64, nCenter, nSumP []float64,
	s2lo, s2hi, xmin, xmax float64, center []float64, lbEnv, ubEnv *TileEnvelope) {
	up := kernel.ExpChordUpper(xmin, xmax)
	// Tangent at the midpoint of the rect-range of the mean statistic: the
	// tangent is a valid lower envelope anywhere, and the midpoint keeps it
	// tight across the whole tile rather than at one extreme.
	t := e.tangentPoint(e.Gamma*(s2lo+s2hi)/(2*sumW), xmin, xmax)
	lo := kernel.ExpTangentLower(t)

	// Re-center the node moments onto the tile's center T:
	//   Σ w·(p−T)       = w·(C_n−T) + a_P
	//   Σ w·‖p−T‖²      = b_P + 2·(C_n−T)·a_P + w·‖C_n−T‖²
	var cc2, dotCS float64
	for i := range center {
		dc := nCenter[i] - center[i]
		cc2 += dc * dc
		dotCS += dc * nSumP[i]
	}
	cPrime := sumNorm2 + 2*dotCS + sumW*cc2
	gm := e.Gamma
	w := e.Weight
	for i := range center {
		s := sumW*(nCenter[i]-center[i]) + nSumP[i]
		lbEnv.B[i] += w * lo.M * gm * (-2 * s)
		ubEnv.B[i] += w * up.M * gm * (-2 * s)
	}
	lbEnv.A += w * lo.M * gm * sumW
	lbEnv.C += w * (lo.M*gm*cPrime + lo.K*sumW)
	ubEnv.A += w * up.M * gm * sumW
	ubEnv.C += w * (up.M*gm*cPrime + up.K*sumW)
}

// envelopeGapVals is the rect-maximum chord-vs-tangent envelope gap (see
// Evaluator.RectEnvelopeGap).
func (e *Evaluator) envelopeGapVals(sumW, s2lo, s2hi, xmin, xmax float64) float64 {
	up := kernel.ExpChordUpper(xmin, xmax)
	t := e.tangentPoint(e.Gamma*(s2lo+s2hi)/(2*sumW), xmin, xmax)
	lo := kernel.ExpTangentLower(t)
	dM, dK := up.M-lo.M, up.K-lo.K
	g := dM*e.Gamma*s2lo + dK*sumW
	if g2 := dM*e.Gamma*s2hi + dK*sumW; g2 > g {
		g = g2
	}
	if g < 0 {
		g = 0
	}
	return e.Weight * g
}
