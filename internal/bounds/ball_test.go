package bounds

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// TestBallTighteningStillSandwiches: with the ball-intersected intervals,
// the sandwich property LB ≤ F ≤ UB must still hold on every node.
func TestBallTighteningStillSandwiches(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	f := newFixture(t, rng, 400, 2, true)
	for _, kern := range []kernel.Kernel{kernel.Gaussian, kernel.Triangular, kernel.Exponential} {
		for _, method := range allMethods(kern) {
			ev, err := NewEvaluator(kern, 0.6, 1.0/400, method, 2)
			if err != nil {
				t.Fatal(err)
			}
			ev.SetBallTightening(true)
			if !ev.BallTightening() {
				t.Fatal("SetBallTightening(true) not recorded")
			}
			for trial := 0; trial < 10; trial++ {
				q := f.randQuery(rng, 2)
				f.tree.Walk(func(n *kdtree.Node) bool {
					lb, ub := ev.Bounds(n, q)
					exact := f.exactNode(n, kern, 0.6, 1.0/400, q)
					tol := 1e-9 * (1 + math.Abs(exact))
					if lb > exact+tol || ub < exact-tol {
						t.Fatalf("%s/%s ball: [%g, %g] does not sandwich %g", kern, method, lb, ub, exact)
					}
					return n.Size() > 30
				})
			}
		}
	}
}

// TestBallTighteningNeverLoosens: the ball-intersected interval is a subset
// of the MBR interval, so the bounds can only tighten.
func TestBallTighteningNeverLoosens(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	f := newFixture(t, rng, 400, 2, false)
	plain, err := NewEvaluator(kernel.Gaussian, 0.6, 1.0/400, MinMax, 2)
	if err != nil {
		t.Fatal(err)
	}
	ball := plain.Clone()
	ball.SetBallTightening(true)
	const tol = 1e-12
	for trial := 0; trial < 30; trial++ {
		q := f.randQuery(rng, 2)
		f.tree.Walk(func(n *kdtree.Node) bool {
			lbP, ubP := plain.Bounds(n, q)
			lbB, ubB := ball.Bounds(n, q)
			if lbB < lbP-tol*(1+lbP) || ubB > ubP+tol*(1+ubP) {
				t.Fatalf("ball loosened: [%g,%g] vs [%g,%g]", lbB, ubB, lbP, ubP)
			}
			return n.Size() > 30
		})
	}
}

// TestCloneCopiesBallFlag: engine worker clones must inherit the setting.
func TestCloneCopiesBallFlag(t *testing.T) {
	ev, err := NewEvaluator(kernel.Gaussian, 1, 1, MinMax, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev.SetBallTightening(true)
	if !ev.Clone().BallTightening() {
		t.Error("Clone dropped ball tightening")
	}
}

// TestZeroSumWNode: a node whose weights sum to zero yields [0, 0] under
// every method.
func TestZeroSumWNode(t *testing.T) {
	pts := geom.NewPoints([]float64{0, 0, 1, 1, 2, 2, 3, 3}, 2)
	ws := []float64{0, 0, 0, 0}
	tr, err := kdtree.Build(pts, kdtree.Options{Gram: true, Weights: ws})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MinMax, Linear, Quadratic} {
		ev, err := NewEvaluator(kernel.Gaussian, 1, 1, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		lb, ub := ev.Bounds(tr.Root, []float64{1, 1})
		if lb != 0 || ub != 0 {
			t.Errorf("%s: zero-weight node bounds [%g, %g]", m, lb, ub)
		}
	}
}

// TestExactNodeWeighted covers the weighted leaf-scan path.
func TestExactNodeWeighted(t *testing.T) {
	pts := geom.NewPoints([]float64{0, 0, 1, 0, 0, 1}, 2)
	ws := []float64{2, 0, 3}
	tr, err := kdtree.Build(pts, kdtree.Options{Gram: true, Weights: ws})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(kernel.Gaussian, 1, 0.5, Quadratic, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0}
	got := ev.ExactNode(tr, tr.Root, q)
	var want float64
	for i := 0; i < tr.Pts.Len(); i++ {
		want += tr.WeightAt(i) * kernel.Gaussian.Eval(1, geom.Dist2(q, tr.Pts.At(i)))
	}
	want *= 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted ExactNode = %g, want %g", got, want)
	}
}

// TestCosineBeyondSupportFallbacks exercises the min-max fallback when a
// node's distance interval crosses π/2γ.
func TestCosineBeyondSupportFallbacks(t *testing.T) {
	// Points spread wide enough that the root interval crosses the support.
	pts := geom.NewPoints([]float64{0, 0, 10, 10, 5, 0, 0, 5, 10, 0, 0, 10}, 2)
	tr, err := kdtree.Build(pts, kdtree.Options{Gram: true, LeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(kernel.Cosine, 0.3, 1, Quadratic, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{1, 1}
	lb, ub := ev.Bounds(tr.Root, q)
	var exact float64
	for i := 0; i < tr.Pts.Len(); i++ {
		exact += kernel.Cosine.Eval(0.3, geom.Dist2(q, tr.Pts.At(i)))
	}
	if lb > exact+1e-12 || ub < exact-1e-12 {
		t.Errorf("crossing-support cosine bounds [%g, %g] vs exact %g", lb, ub, exact)
	}
}

// TestTangentChoicesAllValid: every tangent strategy must preserve the
// sandwich property; the paper's mean choice must be at least as tight as
// the endpoint choice on average.
func TestTangentChoicesAllValid(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	f := newFixture(t, rng, 400, 2, true)
	gapSums := map[TangentChoice]float64{}
	for _, tc := range []TangentChoice{TangentMean, TangentMidpoint, TangentXMax} {
		ev, err := NewEvaluator(kernel.Gaussian, 0.6, 1.0/400, Quadratic, 2)
		if err != nil {
			t.Fatal(err)
		}
		ev.SetTangentChoice(tc)
		for trial := 0; trial < 15; trial++ {
			q := f.randQuery(rng, 2)
			f.tree.Walk(func(n *kdtree.Node) bool {
				lb, ub := ev.Bounds(n, q)
				exact := f.exactNode(n, kernel.Gaussian, 0.6, 1.0/400, q)
				tol := 1e-9 * (1 + exact)
				if lb > exact+tol || ub < exact-tol {
					t.Fatalf("tangent %d: [%g, %g] does not sandwich %g", tc, lb, ub, exact)
				}
				gapSums[tc] += ub - lb
				return n.Size() > 30
			})
		}
	}
	if gapSums[TangentMean] > gapSums[TangentXMax] {
		t.Errorf("mean tangent (Equation 3) gaps %g should beat endpoint gaps %g",
			gapSums[TangentMean], gapSums[TangentXMax])
	}
}
