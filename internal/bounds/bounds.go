// Package bounds implements the node-level lower/upper bound functions for
// kernel aggregation (paper Sections 3–5). All methods share the indexing
// framework of Section 3.2; they differ only in how LB_R(q) and UB_R(q) are
// derived from a node's bounding rectangle and aggregate statistics:
//
//	MinMax     — w·|P|·K(maxdist) / w·|P|·K(mindist), the aKDE [17] and
//	             tKDC [13] bounds (Equations 5–6).
//	Linear     — KARL's [7] linear envelopes of exp(−x): chord upper bound,
//	             tangent lower bound (Section 3.3). Gaussian kernel only.
//	Quadratic  — QUAD's quadratic envelopes: Section 4 (Gaussian, O(d²))
//	             and Section 5 / appendix 9.6 (triangular, cosine,
//	             exponential, O(d)); extension kernels get partially exact
//	             envelopes where the profile shape permits.
//
// Every bound is floored at 0 and capped at w·|P|·K(0); these clamps never
// loosen a bound (the aggregate always lies in that range) and protect
// downstream termination tests from stray negative values.
package bounds

import (
	"fmt"
	"math"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// Method selects a bound family.
type Method int

const (
	// MinMax is the aKDE/tKDC rectangle-distance bound.
	MinMax Method = iota
	// Linear is KARL's linear bound (Gaussian only).
	Linear
	// Quadratic is QUAD's quadratic bound — this paper's contribution.
	Quadratic
)

// String returns the method's canonical name.
func (m Method) String() string {
	switch m {
	case MinMax:
		return "minmax"
	case Linear:
		return "linear"
	case Quadratic:
		return "quadratic"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod maps a name back to a Method.
func ParseMethod(name string) (Method, error) {
	for _, m := range []Method{MinMax, Linear, Quadratic} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("bounds: unknown method %q", name)
}

// Evaluator computes node bounds for one (kernel, γ, w, method)
// configuration. It owns a scratch buffer, so a single Evaluator must not be
// shared across goroutines; Clone one per worker instead.
type Evaluator struct {
	Kern   kernel.Kernel
	Gamma  float64
	Weight float64
	Method Method

	needGram bool
	useBall  bool
	tChoice  TangentChoice
	scratch  []float64
}

// TangentChoice selects the tangent point t of the Gaussian lower-bound
// envelopes (paper Equation 3 picks the mean of the x_i; the alternatives
// exist for the DESIGN.md ablation).
type TangentChoice int

const (
	// TangentMean is t* = (γ/|P|)·Σdist² — the paper's choice (Equation 3).
	TangentMean TangentChoice = iota
	// TangentMidpoint is t = (x_min + x_max)/2.
	TangentMidpoint
	// TangentXMax is t = x_max (the quadratic lower bound degenerates to
	// the chord-anchored parabola at the right endpoint).
	TangentXMax
)

// SetTangentChoice selects the lower-bound tangent strategy (default
// TangentMean, the paper's Equation 3).
func (e *Evaluator) SetTangentChoice(tc TangentChoice) { e.tChoice = tc }

// tangentPoint computes the configured tangent point, clamped into
// [xmin, xmax]. mean is the precomputed Equation 3 value.
func (e *Evaluator) tangentPoint(mean, xmin, xmax float64) float64 {
	switch e.tChoice {
	case TangentMidpoint:
		return (xmin + xmax) / 2
	case TangentXMax:
		return xmax
	default:
		return clampT(mean, xmin, xmax)
	}
}

// NewEvaluator validates the configuration and returns an evaluator for
// points of dimension dim.
func NewEvaluator(kern kernel.Kernel, gamma, weight float64, method Method, dim int) (*Evaluator, error) {
	if !kern.Valid() {
		return nil, fmt.Errorf("bounds: invalid kernel %d", int(kern))
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("bounds: gamma must be positive, got %g", gamma)
	}
	if weight <= 0 {
		return nil, fmt.Errorf("bounds: weight must be positive, got %g", weight)
	}
	if method == Linear && !kern.HasLinearBounds() {
		return nil, fmt.Errorf("bounds: linear (KARL) bounds are not available for the %s kernel (paper Section 5.1)", kern)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("bounds: dimension must be positive, got %d", dim)
	}
	e := &Evaluator{
		Kern:    kern,
		Gamma:   gamma,
		Weight:  weight,
		Method:  method,
		scratch: make([]float64, dim),
	}
	e.needGram = method == Quadratic && (kern == kernel.Gaussian || kern == kernel.Quartic)
	return e, nil
}

// Clone returns an independent evaluator with its own scratch buffer.
func (e *Evaluator) Clone() *Evaluator {
	c := *e
	c.scratch = make([]float64, len(e.scratch))
	return &c
}

// NeedsGram reports whether this evaluator requires the kd-tree's Gram
// statistic (Gaussian and quartic quadratic bounds do).
func (e *Evaluator) NeedsGram() bool { return e.needGram }

// SetBallTightening toggles combining the node's bounding-ball distances
// with the MBR distances when deriving [x_min, x_max]: the intersection of
// the two enclosures gives a narrower distance interval (hence tighter
// envelopes for every method) at the cost of one extra distance computation
// per node. The paper's baselines use the MBR only, so this is off by
// default and exercised as an ablation.
func (e *Evaluator) SetBallTightening(on bool) { e.useBall = on }

// BallTightening reports whether ball tightening is enabled.
func (e *Evaluator) BallTightening() bool { return e.useBall }

// Bounds returns LB_R(q) ≤ F_R(q) ≤ UB_R(q) for the node.
func (e *Evaluator) Bounds(n *kdtree.Node, q []float64) (lb, ub float64) {
	if n.SumW == 0 {
		// All-zero weights contribute nothing (and would otherwise produce
		// 0/0 in the tangent-point formulas).
		return 0, 0
	}
	mind2 := n.Rect.MinDist2(q)
	maxd2 := n.Rect.MaxDist2(q)
	if e.useBall {
		dc := math.Sqrt(geom.Dist2(q, n.Center))
		if bmin := dc - n.Radius; bmin > 0 {
			if b2 := bmin * bmin; b2 > mind2 {
				mind2 = b2
			}
		}
		bmax := dc + n.Radius
		if b2 := bmax * bmax; b2 < maxd2 {
			maxd2 = b2
		}
	}
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)

	switch e.Method {
	case MinMax:
		lb, ub = e.minMax(n, xmin, xmax)
	case Linear:
		lb, ub = e.linearGaussian(n, q, xmin, xmax)
	case Quadratic:
		lb, ub = e.quadratic(n, q, xmin, xmax)
	default:
		panic("bounds: invalid method")
	}
	return e.clamp(n, lb, ub)
}

// RectBounds returns tile-uniform bounds on a node's contribution: for EVERY
// query point q inside the query rectangle,
//
//	lb ≤ F_R(q) ≤ ub.
//
// The baseline is the min-max bounds (Equations 5–6) evaluated over the
// rect-to-rect distance interval — valid for every kernel because each
// profile is non-increasing in distance — honoring the evaluator's
// ball-tightening setting. For the Gaussian kernel under an envelope method
// (Linear or Quadratic) the bounds are then tightened with the KARL
// chord/tangent envelopes: those aggregate through Σdist²(q) alone, and
// Node.RectSumDist2 gives that statistic's exact range over the rectangle,
// so the envelope evaluated at the adversarial end of the range is valid for
// every q in the rect. (The O(d²) quadratic envelopes additionally need
// Σdist⁴(q), whose rect-range is not available in closed form; the linear
// tightening is the shared-phase analogue of the method hierarchy.)
func (e *Evaluator) RectBounds(n *kdtree.Node, rect geom.Rect) (lb, ub float64) {
	if n.SumW == 0 {
		return 0, 0
	}
	mind2, maxd2 := n.RectDist2(rect, e.useBall)
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)
	lb, ub = e.minMax(n, xmin, xmax)
	if e.Method != MinMax && e.Kern.HasLinearBounds() {
		llb, lub := e.rectLinearGaussian(n, rect, xmin, xmax)
		if llb > lb {
			lb = llb
		}
		if lub < ub {
			ub = lub
		}
	}
	return e.clamp(n, lb, ub)
}

// TileEnvelope is an aggregate envelope bound over a set of nodes for every
// query point in a tile: a single quadratic form in the centered query
// q' = q − center,
//
//	E(q) = A·‖q'‖² + B·q' + C.
//
// Because the Gaussian envelope bounds are linear in the node statistic
// Σ w·dist²(q) — itself a quadratic in q — the per-node bounds of an entire
// frontier collapse into one such form per side (see
// Evaluator.AccumulateRectEnvelope). Evaluating it costs O(d) per pixel
// regardless of how many nodes were accumulated, which is what removes the
// per-pixel re-bounding of frontier nodes from the render hot path.
type TileEnvelope struct {
	A float64
	B []float64
	C float64
}

// Reset zeroes the form for dim-dimensional queries, reusing the coefficient
// buffer.
func (t *TileEnvelope) Reset(dim int) {
	t.A, t.C = 0, 0
	if cap(t.B) < dim {
		t.B = make([]float64, dim)
		return
	}
	t.B = t.B[:dim]
	for i := range t.B {
		t.B[i] = 0
	}
}

// Eval evaluates the form at q with the given centering point.
func (t *TileEnvelope) Eval(q, center []float64) float64 {
	var qn2, dot float64
	for i := range q {
		qc := q[i] - center[i]
		qn2 += qc * qc
		dot += t.B[i] * qc
	}
	return t.A*qn2 + dot + t.C
}

// SupportsEnvelope reports whether the evaluator can share envelope bounds
// tile-wide (AccumulateRectEnvelope / RectEnvelopeGap): an envelope method
// with a kernel that has KARL linear envelopes.
func (e *Evaluator) SupportsEnvelope() bool {
	return e.Method != MinMax && e.Kern.HasLinearBounds()
}

// CopyFrom overwrites the form with src, reusing the coefficient buffer.
func (t *TileEnvelope) CopyFrom(src *TileEnvelope) {
	t.A, t.C = src.A, src.C
	t.B = append(t.B[:0], src.B...)
}

// RangeRect returns the form's exact value range over an axis-aligned query
// rectangle. The form is separable per dimension, so each coordinate's
// quadratic A·u² + B_i·u is extremized independently (endpoints plus the
// interior vertex when it falls inside the interval).
func (t *TileEnvelope) RangeRect(rect geom.Rect, center []float64) (lo, hi float64) {
	lo, hi = t.C, t.C
	for i := range center {
		u0 := rect.Min[i] - center[i]
		u1 := rect.Max[i] - center[i]
		g0 := t.A*u0*u0 + t.B[i]*u0
		g1 := t.A*u1*u1 + t.B[i]*u1
		glo, ghi := g0, g1
		if g1 < g0 {
			glo, ghi = g1, g0
		}
		if t.A != 0 {
			if v := -t.B[i] / (2 * t.A); v > u0 && v < u1 {
				gv := t.A*v*v + t.B[i]*v
				if gv < glo {
					glo = gv
				}
				if gv > ghi {
					ghi = gv
				}
			}
		}
		lo += glo
		hi += ghi
	}
	return lo, hi
}

// AccumulateRectEnvelope folds the node's tile-valid envelope bounds into the
// aggregate quadratic forms: afterwards, for every q in rect,
//
//	lbEnv(q) ≤ F_R(q) ≤ ubEnv(q)    (contribution of this node included).
//
// The construction fits the KARL chord/tangent envelopes once per node over
// the rect-wide x-interval (every x_i(q) stays inside it for q in the rect,
// so the envelopes hold pointwise), then substitutes the EXACT per-query
// statistic Σ w·dist²(q) = w·‖q'‖² − 2·q'·s' + c' (moments re-centered onto
// `center`) instead of its rect-worst value. The result is first-order exact
// in the query position — the residual gap is the envelope's curvature gap
// over the x-interval, second order in the interval width — while remaining
// a valid bound for every pixel of the tile.
//
// It returns false (accumulating nothing) when the evaluator has no linear
// envelopes to share: the MinMax method, or a kernel without KARL bounds.
// center must have the query dimension.
func (e *Evaluator) AccumulateRectEnvelope(n *kdtree.Node, rect geom.Rect, center []float64, lbEnv, ubEnv *TileEnvelope) bool {
	if !e.SupportsEnvelope() {
		return false
	}
	if n.SumW == 0 {
		return true
	}
	mind2, maxd2 := n.RectDist2(rect, e.useBall)
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)
	s2lo, s2hi := n.RectSumDist2(rect)
	e.accumulateEnvelopeVals(n.SumW, n.SumNorm2, n.Center, n.SumP, s2lo, s2hi, xmin, xmax, center, lbEnv, ubEnv)
	return true
}

// RectEnvelopeGap returns the maximum over q in the rect of the gap between
// the chord upper and tangent lower envelope bounds that
// AccumulateRectEnvelope would install for this node — the tile-wide
// uncertainty that collapsing the node into the envelope adds to every pixel.
// The gap is linear in the statistic Σ w·dist²(q), so its rect-maximum is
// attained at an end of the statistic's exact rect-range. Second order in the
// x-interval width, it is far smaller than the node's rect-uniform min-max
// gap, which is what lets the shared phase settle most of the frontier into
// the envelope within a fraction of the ε budget.
func (e *Evaluator) RectEnvelopeGap(n *kdtree.Node, rect geom.Rect) (float64, bool) {
	if !e.SupportsEnvelope() {
		return 0, false
	}
	if n.SumW == 0 {
		return 0, true
	}
	mind2, maxd2 := n.RectDist2(rect, e.useBall)
	xmin := e.Kern.X(e.Gamma, mind2)
	xmax := e.Kern.X(e.Gamma, maxd2)
	s2lo, s2hi := n.RectSumDist2(rect)
	return e.envelopeGapVals(n.SumW, s2lo, s2hi, xmin, xmax), true
}

// rectLinearGaussian evaluates the KARL envelopes tile-uniformly. Every
// x_i(q) = γ·dist(q, p_i)² stays inside [xmin, xmax] for q in the rect, so
// the chord/tangent envelopes hold pointwise; their aggregates are linear in
// sumX(q) = γ·Σ w·dist²(q), whose exact rect-range [sxLo, sxHi] comes from
// RectSumDist2. Both envelope slopes are ≤ 0 (the profile decreases), so the
// upper bound is worst at sxLo and the lower bound at sxHi; the tangent sits
// at the worst case's mean so the lower envelope is tight exactly where it
// binds.
func (e *Evaluator) rectLinearGaussian(n *kdtree.Node, rect geom.Rect, xmin, xmax float64) (lb, ub float64) {
	s2lo, s2hi := n.RectSumDist2(rect)
	return e.rectLinearGaussianVals(n.SumW, s2lo, s2hi, xmin, xmax)
}

// clamp floors lb at 0, caps ub at w·|P|·K(0), and repairs any floating-
// point inversion (lb marginally above ub) by widening to the safe side.
func (e *Evaluator) clamp(n *kdtree.Node, lb, ub float64) (float64, float64) {
	return e.clampVals(n.SumW, lb, ub)
}

func (e *Evaluator) minMax(n *kdtree.Node, xmin, xmax float64) (lb, ub float64) {
	return e.minMaxVals(n.SumW, xmin, xmax)
}

// linearGaussian implements KARL's bounds for exp(−γ·dist²)
// (paper Section 3.3, Lemma 1): with x_i = γ·dist², the aggregated linear
// envelope is w·(m·γ·Σdist² + k·|P|), and Σdist² is O(d) from node stats.
func (e *Evaluator) linearGaussian(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	sumX := e.Gamma * n.SumDist2(q, e.scratch)
	return e.linearGaussianVals(n.SumW, sumX, xmin, xmax)
}

func (e *Evaluator) quadratic(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	switch e.Kern {
	case kernel.Gaussian:
		return e.quadGaussian(n, q, xmin, xmax)
	case kernel.Triangular:
		return e.quadTriangular(n, q, xmin, xmax)
	case kernel.Cosine:
		return e.quadCosine(n, q, xmin, xmax)
	case kernel.Exponential:
		return e.quadExponential(n, q, xmin, xmax)
	case kernel.Epanechnikov:
		return e.quadEpanechnikov(n, q, xmin, xmax)
	case kernel.Quartic:
		return e.quadQuartic(n, q, xmin, xmax)
	default: // Uniform: flat discontinuous profile, only min-max applies.
		return e.minMax(n, xmin, xmax)
	}
}

// quadGaussian implements paper Section 4: quadratic envelopes of exp(−x)
// with x = γ·dist², aggregated through Σx = γ·Σdist² and Σx² = γ²·Σdist⁴
// (Lemma 3, O(d²)).
func (e *Evaluator) quadGaussian(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	s2, s4 := n.SumDist24(q, e.scratch)
	sumX := e.Gamma * s2
	sumX2 := e.Gamma * e.Gamma * s4
	return e.quadGaussianVals(n.SumW, sumX, sumX2, xmin, xmax)
}

// quadTriangular implements paper Section 5.2 for max(1 − γ·dist, 0).
func (e *Evaluator) quadTriangular(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	if xmin >= 1 {
		return 0, 0
	}
	sumX2 := e.Gamma * e.Gamma * n.SumDist2(q, e.scratch)
	return e.quadTriangularVals(n.SumW, sumX2, xmin, xmax)
}

// quadCosine implements paper appendix 9.6.1–9.6.2 for cos(γ·dist) with
// support γ·dist ≤ π/2. When the node's distance interval leaves the
// support, the quadratic envelopes of cos no longer apply and we fall back
// to min-max bounds, exactly as the construction in the paper assumes
// 0 ≤ x ≤ π/2.
func (e *Evaluator) quadCosine(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	if xmin >= math.Pi/2 {
		return 0, 0
	}
	if xmax > math.Pi/2 {
		return e.minMax(n, xmin, xmax)
	}
	sumX2 := e.Gamma * e.Gamma * n.SumDist2(q, e.scratch)
	return e.quadCosineVals(n.SumW, sumX2, xmin, xmax)
}

// quadExponential implements paper appendix 9.6.3–9.6.4 for exp(−γ·dist).
func (e *Evaluator) quadExponential(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	s2 := n.SumDist2(q, e.scratch)
	sumX2 := e.Gamma * e.Gamma * s2
	return e.quadExponentialVals(n.SumW, sumX2, xmin, xmax)
}

// quadEpanechnikov: the profile max(1−x², 0) coincides with the quadratic
// 1−x² on its support, so the aggregate is EXACT (lb = ub) whenever the
// whole node lies inside the support; otherwise 1−x² still lower-bounds the
// profile everywhere and min-max supplies the upper bound.
func (e *Evaluator) quadEpanechnikov(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	if xmin >= 1 {
		return 0, 0
	}
	sumX2 := e.Gamma * e.Gamma * n.SumDist2(q, e.scratch)
	return e.quadEpanechnikovVals(n.SumW, sumX2, xmin, xmax)
}

// quadQuartic: with y = x², the profile is (1−y)² on its support, a
// quadratic in y — so the aggregate 1 − 2Σx² + Σx⁴ is EXACT when the node
// lies inside the support and remains a valid upper bound beyond it. Σx⁴
// reuses the Σdist⁴ statistic (O(d²)).
func (e *Evaluator) quadQuartic(n *kdtree.Node, q []float64, xmin, xmax float64) (lb, ub float64) {
	if xmin >= 1 {
		return 0, 0
	}
	g2 := e.Gamma * e.Gamma
	s2, s4 := n.SumDist24(q, e.scratch)
	sumX2 := g2 * s2
	sumX4 := g2 * g2 * s4
	return e.quadQuarticVals(n.SumW, sumX2, sumX4, xmin, xmax)
}

// clampT restricts a tangent/interpolation parameter into [xmin, xmax].
func clampT(t, xmin, xmax float64) float64 {
	if t < xmin {
		return xmin
	}
	if t > xmax {
		return xmax
	}
	return t
}

// ExactNode computes the exact contribution F_R(q) of a node by scanning its
// point range — the leaf-refinement step of the indexing framework. The
// tree supplies the per-point weights (uniform 1 when unweighted).
func (e *Evaluator) ExactNode(t *kdtree.Tree, n *kdtree.Node, q []float64) float64 {
	pts := t.Pts
	d := pts.Dim
	coords := pts.Coords
	var sum float64
	if e.Kern == kernel.Gaussian && d == 2 {
		// Batched 2-D Gaussian fast path, shared with FlatExactNode so the
		// pointer and flat engines scan leaves bit-identically.
		row := coords[n.Start*2 : n.End*2]
		if t.Weights == nil {
			sum = gaussLeafSum2(row, q[0], q[1], e.Gamma)
		} else {
			sum = gaussLeafSumW2(row, t.Weights[n.Start:n.End], q[0], q[1], e.Gamma)
		}
		return e.Weight * sum
	}
	if t.Weights == nil {
		for i := n.Start; i < n.End; i++ {
			row := coords[i*d : i*d+d]
			var dist2 float64
			for k, v := range q {
				dd := v - row[k]
				dist2 += dd * dd
			}
			sum += e.Kern.Eval(e.Gamma, dist2)
		}
	} else {
		for i := n.Start; i < n.End; i++ {
			row := coords[i*d : i*d+d]
			var dist2 float64
			for k, v := range q {
				dd := v - row[k]
				dist2 += dd * dd
			}
			sum += t.Weights[i] * e.Kern.Eval(e.Gamma, dist2)
		}
	}
	return e.Weight * sum
}

// ExactScan computes F_P(q) by a full sequential scan over pts — the EXACT
// baseline of the paper's evaluation (Table 6). weights may be nil for the
// uniform case; otherwise it must be parallel to pts.
func ExactScan(pts geom.Points, weights []float64, kern kernel.Kernel, gamma, weight float64, q []float64) float64 {
	var sum float64
	d := pts.Dim
	coords := pts.Coords
	n := pts.Len()
	for i := 0; i < n; i++ {
		row := coords[i*d : i*d+d]
		var dist2 float64
		for k, v := range q {
			dd := v - row[k]
			dist2 += dd * dd
		}
		kv := kern.Eval(gamma, dist2)
		if weights != nil {
			kv *= weights[i]
		}
		sum += kv
	}
	return weight * sum
}
