// Package render turns density rasters into color maps: a continuous
// blue→red heat ramp for εKDV/exact maps (the paper's Figures 1, 2a–b, 19,
// 21) and a two-color map for τKDV (Figure 2c). Output is stdlib image/png.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"

	"github.com/quadkdv/quad/internal/grid"
)

// Scale selects how density values map to ramp positions.
type Scale int

const (
	// Linear maps [min, max] linearly onto the ramp.
	Linear Scale = iota
	// Log maps values through log1p, emphasizing low-density structure —
	// the usual choice for skewed KDV maps.
	Log
)

// heatStops is the blue→cyan→green→yellow→red ramp, the classic KDV
// "criminal risk" palette of Figure 1.
var heatStops = []struct {
	pos     float64
	r, g, b uint8
}{
	{0.00, 13, 8, 135},
	{0.25, 0, 144, 221},
	{0.50, 60, 200, 110},
	{0.75, 244, 209, 60},
	{1.00, 220, 20, 30},
}

// HeatColor maps t ∈ [0,1] onto the heat ramp.
func HeatColor(t float64) color.RGBA {
	if math.IsNaN(t) || t <= 0 {
		s := heatStops[0]
		return color.RGBA{s.r, s.g, s.b, 255}
	}
	if t >= 1 {
		s := heatStops[len(heatStops)-1]
		return color.RGBA{s.r, s.g, s.b, 255}
	}
	for i := 1; i < len(heatStops); i++ {
		if t <= heatStops[i].pos {
			lo, hi := heatStops[i-1], heatStops[i]
			f := (t - lo.pos) / (hi.pos - lo.pos)
			return color.RGBA{
				uint8(float64(lo.r) + f*(float64(hi.r)-float64(lo.r))),
				uint8(float64(lo.g) + f*(float64(hi.g)-float64(lo.g))),
				uint8(float64(lo.b) + f*(float64(hi.b)-float64(lo.b))),
				255,
			}
		}
	}
	s := heatStops[len(heatStops)-1]
	return color.RGBA{s.r, s.g, s.b, 255}
}

// Heatmap renders a density raster as a heat-ramp image. The raster's pixel
// (0,0) is the window's lower-left corner, so rows are flipped into image
// space (top-left origin). Normalization is the raster's own min/max; use
// HeatmapFixed when several rasters must share one color scale.
func Heatmap(v *grid.Values, scale Scale) *image.RGBA {
	lo, hi := v.MinMax()
	return HeatmapFixed(v, lo, hi, scale)
}

// HeatmapFixed renders a density raster with a fixed normalization [lo, hi]
// instead of the raster's own extremes. Adjacent rasters of one logical
// image — the tiles of an XYZ pyramid — must be colored against the same
// scale or they disagree at their seams; a shared [lo, hi] also makes a
// tile's PNG bytes identical to the same crop of a full render encoded with
// that scale. Values outside [lo, hi] clamp to the ramp's ends.
func HeatmapFixed(v *grid.Values, lo, hi float64, scale Scale) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, v.Res.W, v.Res.H))
	denom := hi - lo
	if denom <= 0 {
		denom = 1
	}
	for py := 0; py < v.Res.H; py++ {
		for px := 0; px < v.Res.W; px++ {
			t := (v.At(px, py) - lo) / denom
			if scale == Log {
				t = math.Log1p(63*t) / math.Log(64)
			}
			img.SetRGBA(px, v.Res.H-1-py, HeatColor(t))
		}
	}
	return img
}

// Binary renders a τKDV classification raster: hot pixels in red, cold in a
// deep blue, matching the two-color map of Figure 2c.
func Binary(res grid.Resolution, hot []bool) (*image.RGBA, error) {
	if len(hot) != res.Pixels() {
		return nil, fmt.Errorf("render: classification has %d entries, want %d", len(hot), res.Pixels())
	}
	hotC := color.RGBA{220, 20, 30, 255}
	coldC := color.RGBA{13, 8, 135, 255}
	img := image.NewRGBA(image.Rect(0, 0, res.W, res.H))
	for py := 0; py < res.H; py++ {
		for px := 0; px < res.W; px++ {
			c := coldC
			if hot[py*res.W+px] {
				c = hotC
			}
			img.SetRGBA(px, res.H-1-py, c)
		}
	}
	return img, nil
}

// EncodePNG writes the image as PNG.
func EncodePNG(w io.Writer, img image.Image) error { return png.Encode(w, img) }

// SavePNG writes the image as a PNG file at path.
func SavePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
