package render

import (
	"bytes"
	"image/png"
	"path/filepath"
	"testing"

	"github.com/quadkdv/quad/internal/grid"
)

func TestHeatColorEndpoints(t *testing.T) {
	lo := HeatColor(0)
	hi := HeatColor(1)
	if lo.B <= lo.R {
		t.Errorf("low end should be blue-ish: %+v", lo)
	}
	if hi.R <= hi.B {
		t.Errorf("high end should be red-ish: %+v", hi)
	}
	if HeatColor(-1) != lo || HeatColor(2) != hi {
		t.Error("out-of-range t not clamped")
	}
}

func TestHeatColorMonotoneRedward(t *testing.T) {
	prev := HeatColor(0)
	for i := 1; i <= 10; i++ {
		c := HeatColor(float64(i) / 10)
		// Blue channel decreases or red increases across the ramp ends.
		_ = c
		prev = c
	}
	_ = prev // spot checks above are the contract; mid-ramp hues vary
	mid := HeatColor(0.5)
	if mid.G < 100 {
		t.Errorf("mid-ramp should be green-ish: %+v", mid)
	}
}

func TestHeatmapDimensions(t *testing.T) {
	v := grid.NewValues(grid.Resolution{W: 8, H: 6})
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	img := Heatmap(v, Linear)
	b := img.Bounds()
	if b.Dx() != 8 || b.Dy() != 6 {
		t.Errorf("image bounds %v", b)
	}
}

func TestHeatmapRowFlip(t *testing.T) {
	v := grid.NewValues(grid.Resolution{W: 2, H: 2})
	v.Set(0, 0, 0) // lower-left, coldest
	v.Set(1, 1, 1) // upper-right, hottest
	v.Set(1, 0, 0.5)
	v.Set(0, 1, 0.5)
	img := Heatmap(v, Linear)
	// Raster (0,0) (cold) must land at image (0, H-1).
	bottom := img.RGBAAt(0, 1)
	top := img.RGBAAt(1, 0)
	if bottom.B <= bottom.R {
		t.Errorf("cold pixel not blue: %+v", bottom)
	}
	if top.R <= top.B {
		t.Errorf("hot pixel not red: %+v", top)
	}
}

func TestHeatmapConstantField(t *testing.T) {
	v := grid.NewValues(grid.Resolution{W: 4, H: 4})
	for i := range v.Data {
		v.Data[i] = 3.5
	}
	// Degenerate min==max must not divide by zero.
	img := Heatmap(v, Log)
	if img == nil {
		t.Fatal("nil image")
	}
}

func TestBinary(t *testing.T) {
	res := grid.Resolution{W: 3, H: 2}
	hot := []bool{true, false, false, false, false, true}
	img, err := Binary(res, hot)
	if err != nil {
		t.Fatal(err)
	}
	// hot[0] is raster (0,0) → image (0, 1).
	c := img.RGBAAt(0, 1)
	if c.R <= c.B {
		t.Errorf("hot pixel not red: %+v", c)
	}
	c = img.RGBAAt(1, 1)
	if c.B <= c.R {
		t.Errorf("cold pixel not blue: %+v", c)
	}
	if _, err := Binary(res, []bool{true}); err == nil {
		t.Error("wrong-length classification accepted")
	}
}

func TestEncodeAndSavePNG(t *testing.T) {
	v := grid.NewValues(grid.Resolution{W: 5, H: 5})
	img := Heatmap(v, Linear)
	var buf bytes.Buffer
	if err := EncodePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatalf("encoded PNG does not decode: %v", err)
	}
	path := filepath.Join(t.TempDir(), "m.png")
	if err := SavePNG(path, img); err != nil {
		t.Fatal(err)
	}
	if err := SavePNG(filepath.Join(t.TempDir(), "no", "such", "dir.png"), img); err == nil {
		t.Error("save into missing directory succeeded")
	}
}
