// Package stats provides the experimental-setting statistics of the paper's
// Section 7.1: Scott's-rule bandwidth selection (γ and w), the μ/σ of
// KDE values over the pixel grid used to pick τKDV thresholds, and the
// relative-error quality metrics of Sections 7.4–7.5.
package stats

import (
	"fmt"
	"math"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
)

// Bandwidth holds a kernel parameterization: the γ that scales distances in
// the kernel argument and the per-point weight w.
type Bandwidth struct {
	Gamma  float64
	Weight float64
	// H is the underlying Scott's-rule bandwidth (data units).
	H float64
}

// ScottsRule derives (γ, w) from the data per Scott's rule [43], as the
// paper does (Section 7.1): per-dimension bandwidth h_j = σ_j · n^{−1/(d+4)},
// collapsed to a single isotropic h (the mean of the h_j, floored at a tiny
// positive value for degenerate data). For the Gaussian kernel
// γ = 1/(2h²) — the standard N(0, h²) exponent — and for the distance-based
// kernels γ = 1/h, making h the kernel radius scale. The weight is the KDE
// normalization w = 1/n (the color map only needs values proportional to
// density, so the dimension-dependent normalizing constant is folded into
// the color scale).
func ScottsRule(pts geom.Points, kern kernel.Kernel) Bandwidth {
	return ruleOfThumb(pts, kern, 1)
}

// SilvermanRule derives (γ, w) from Silverman's rule of thumb: Scott's
// bandwidth scaled by the kernel-efficiency factor (4/(d+2))^{1/(d+4)}.
func SilvermanRule(pts geom.Points, kern kernel.Kernel) Bandwidth {
	d := pts.Dim
	factor := math.Pow(4/float64(d+2), 1/float64(d+4))
	return ruleOfThumb(pts, kern, factor)
}

// ruleOfThumb computes the shared σ·n^{−1/(d+4)} form with an extra
// multiplicative factor on h.
func ruleOfThumb(pts geom.Points, kern kernel.Kernel, factor float64) Bandwidth {
	n := pts.Len()
	d := pts.Dim
	if n == 0 {
		return Bandwidth{Gamma: 1, Weight: 1, H: 1}
	}
	// Per-dimension standard deviation.
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for j := 0; j < d; j++ {
			mean[j] += p[j]
		}
	}
	for j := 0; j < d; j++ {
		mean[j] /= float64(n)
	}
	variance := make([]float64, d)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for j := 0; j < d; j++ {
			dd := p[j] - mean[j]
			variance[j] += dd * dd
		}
	}
	var h float64
	scale := factor * math.Pow(float64(n), -1/float64(d+4))
	for j := 0; j < d; j++ {
		sigma := math.Sqrt(variance[j] / float64(n))
		h += sigma * scale
	}
	h /= float64(d)
	if h <= 0 || math.IsNaN(h) {
		h = 1e-9
	}
	b := Bandwidth{H: h, Weight: 1 / float64(n)}
	if kern.UsesSquaredDistance() {
		b.Gamma = 1 / (2 * h * h)
	} else {
		b.Gamma = 1 / h
	}
	return b
}

// MuSigma returns the mean μ and standard deviation σ of the supplied KDE
// values — the quantities the paper's τ sweep is expressed in
// (τ ∈ {μ−0.3σ, …, μ+0.3σ}, Section 7.2).
func MuSigma(values []float64) (mu, sigma float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mu += v
	}
	mu /= float64(len(values))
	for _, v := range values {
		d := v - mu
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(len(values)))
	return mu, sigma
}

// Thresholds materializes the paper's τ ladder μ + k·σ for the given
// multiples of σ (e.g. −0.2, −0.1, 0, 0.1, 0.2).
func Thresholds(mu, sigma float64, multiples []float64) []float64 {
	out := make([]float64, len(multiples))
	for i, m := range multiples {
		out[i] = mu + m*sigma
	}
	return out
}

// AvgRelativeError returns (1/|Q|)·Σ |R(q) − F(q)| / F(q), the quality
// measure of the progressive-framework experiment (Section 7.5). Pixels
// whose exact value is zero contribute 0 when the returned value is also
// zero and 1 otherwise (the bounded convention, avoiding division by zero).
func AvgRelativeError(approx, exact []float64) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(approx), len(exact))
	}
	if len(exact) == 0 {
		return 0, fmt.Errorf("stats: empty value sets")
	}
	var sum float64
	for i, f := range exact {
		r := approx[i]
		if f == 0 {
			if r != 0 {
				sum++
			}
			continue
		}
		sum += math.Abs(r-f) / f
	}
	return sum / float64(len(exact)), nil
}

// FlooredAvgRelativeError returns (1/|Q|)·Σ |R(q) − F(q)| / max(F(q), floor).
// With floor = 0 it reduces to AvgRelativeError's strict ratio. A positive
// floor (typically a small fraction of the maximum density) keeps pixels in
// the far kernel tail — where F underflows toward 0 and any absolute
// deviation yields an astronomically large ratio — from dominating the
// average; the progressive-visualization experiment (Section 7.5) is only
// meaningful under such a floor when the visualized window includes
// effectively empty regions.
func FlooredAvgRelativeError(approx, exact []float64, floor float64) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(approx), len(exact))
	}
	if len(exact) == 0 {
		return 0, fmt.Errorf("stats: empty value sets")
	}
	var sum float64
	for i, f := range exact {
		den := f
		if den < floor {
			den = floor
		}
		if den == 0 {
			if approx[i] != 0 {
				sum++
			}
			continue
		}
		sum += math.Abs(approx[i]-f) / den
	}
	return sum / float64(len(exact)), nil
}

// MaxRelativeError returns max_q |R(q) − F(q)| / F(q) with the same
// zero-value convention as AvgRelativeError — used to verify the ε
// guarantee (Section 7.4).
func MaxRelativeError(approx, exact []float64) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(approx), len(exact))
	}
	if len(exact) == 0 {
		return 0, fmt.Errorf("stats: empty value sets")
	}
	var worst float64
	for i, f := range exact {
		r := approx[i]
		var e float64
		if f == 0 {
			if r != 0 {
				e = 1
			}
		} else {
			e = math.Abs(r-f) / f
		}
		if e > worst {
			worst = e
		}
	}
	return worst, nil
}

// Disagreement returns the fraction of positions where the two boolean
// classifications differ — the τKDV quality measure.
func Disagreement(a, b []bool) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("stats: empty classifications")
	}
	var diff int
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a)), nil
}
