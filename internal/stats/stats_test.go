package stats

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
)

func gaussianCloud(rng *rand.Rand, n int, sigma float64) geom.Points {
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		coords = append(coords, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return geom.NewPoints(coords, 2)
}

func TestScottsRuleScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	small := ScottsRule(gaussianCloud(rng, 1000, 1), kernel.Gaussian)
	big := ScottsRule(gaussianCloud(rng, 100000, 1), kernel.Gaussian)
	// h shrinks with n (n^{-1/6} in 2-d), so γ grows.
	if big.H >= small.H {
		t.Errorf("bandwidth did not shrink with n: %g vs %g", big.H, small.H)
	}
	if big.Gamma <= small.Gamma {
		t.Errorf("gamma did not grow with n: %g vs %g", big.Gamma, small.Gamma)
	}
	if small.Weight != 1.0/1000 || big.Weight != 1.0/100000 {
		t.Errorf("weights: %g, %g", small.Weight, big.Weight)
	}
}

func TestScottsRuleSigmaScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	narrow := ScottsRule(gaussianCloud(rng, 10000, 1), kernel.Gaussian)
	wide := ScottsRule(gaussianCloud(rng, 10000, 10), kernel.Gaussian)
	if wide.H <= narrow.H {
		t.Errorf("bandwidth should scale with spread: %g vs %g", wide.H, narrow.H)
	}
}

func TestScottsRuleKernelConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pts := gaussianCloud(rng, 5000, 2)
	g := ScottsRule(pts, kernel.Gaussian)
	tr := ScottsRule(pts, kernel.Triangular)
	if math.Abs(g.Gamma-1/(2*g.H*g.H)) > 1e-12 {
		t.Errorf("Gaussian γ = %g, want 1/(2h²) = %g", g.Gamma, 1/(2*g.H*g.H))
	}
	if math.Abs(tr.Gamma-1/tr.H) > 1e-12 {
		t.Errorf("triangular γ = %g, want 1/h = %g", tr.Gamma, 1/tr.H)
	}
}

func TestScottsRuleDegenerate(t *testing.T) {
	// All-identical points: σ = 0 must not produce γ = Inf/NaN.
	pts := geom.NewPoints([]float64{1, 1, 1, 1, 1, 1}, 2)
	b := ScottsRule(pts, kernel.Gaussian)
	if math.IsInf(b.Gamma, 0) || math.IsNaN(b.Gamma) || b.Gamma <= 0 {
		t.Errorf("degenerate γ = %g", b.Gamma)
	}
	empty := ScottsRule(geom.Points{Dim: 2}, kernel.Gaussian)
	if empty.Gamma <= 0 || empty.Weight <= 0 {
		t.Errorf("empty-set bandwidth: %+v", empty)
	}
}

func TestMuSigma(t *testing.T) {
	mu, sigma := MuSigma([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mu != 5 {
		t.Errorf("μ = %g, want 5", mu)
	}
	if sigma != 2 {
		t.Errorf("σ = %g, want 2", sigma)
	}
	mu, sigma = MuSigma(nil)
	if mu != 0 || sigma != 0 {
		t.Errorf("empty MuSigma = %g, %g", mu, sigma)
	}
}

func TestThresholds(t *testing.T) {
	got := Thresholds(10, 2, []float64{-0.2, 0, 0.3})
	want := []float64{9.6, 10, 10.6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Thresholds[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestAvgRelativeError(t *testing.T) {
	got, err := AvgRelativeError([]float64{1.1, 2, 0}, []float64{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.1 + 0 + 0) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgRelativeError = %g, want %g", got, want)
	}
	// Zero exact with nonzero approx counts as error 1.
	got, _ = AvgRelativeError([]float64{0.5}, []float64{0})
	if got != 1 {
		t.Errorf("zero-exact convention = %g, want 1", got)
	}
	if _, err := AvgRelativeError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AvgRelativeError(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMaxRelativeError(t *testing.T) {
	got, err := MaxRelativeError([]float64{1.1, 2.4}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-9 {
		t.Errorf("MaxRelativeError = %g, want 0.2", got)
	}
	if _, err := MaxRelativeError([]float64{1}, []float64{}); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestDisagreement(t *testing.T) {
	got, err := Disagreement([]bool{true, false, true, true}, []bool{true, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("Disagreement = %g, want 0.5", got)
	}
	if _, err := Disagreement([]bool{true}, []bool{}); err == nil {
		t.Error("mismatch accepted")
	}
	if _, err := Disagreement(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestSilvermanRule(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	pts := gaussianCloud(rng, 5000, 2) // 2-d: factor is exactly 1
	sc := ScottsRule(pts, kernel.Gaussian)
	si := SilvermanRule(pts, kernel.Gaussian)
	if math.Abs(sc.H-si.H) > 1e-12*sc.H {
		t.Errorf("2-d Silverman h %g != Scott h %g", si.H, sc.H)
	}
	// 1-d: Silverman h = Scott h × (4/3)^{1/5}.
	one := geom.NewPoints(pts.Coords[:4000], 1)
	sc1 := ScottsRule(one, kernel.Gaussian)
	si1 := SilvermanRule(one, kernel.Gaussian)
	want := sc1.H * math.Pow(4.0/3.0, 0.2)
	if math.Abs(si1.H-want) > 1e-12*want {
		t.Errorf("1-d Silverman h %g, want %g", si1.H, want)
	}
}

func TestFlooredAvgRelativeError(t *testing.T) {
	// Without a floor, the tiny-denominator pixel dominates.
	approx := []float64{1.1, 1e-9}
	exact := []float64{1.0, 1e-12}
	strict, err := AvgRelativeError(approx, exact)
	if err != nil {
		t.Fatal(err)
	}
	if strict < 100 {
		t.Fatalf("strict error %g should blow up on the tail pixel", strict)
	}
	floored, err := FlooredAvgRelativeError(approx, exact, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if floored > 0.06 {
		t.Errorf("floored error %g should stay moderate", floored)
	}
	// floor = 0 reduces to the strict metric.
	same, err := FlooredAvgRelativeError(approx, exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same-strict) > 1e-9*strict {
		t.Errorf("floor=0: %g vs strict %g", same, strict)
	}
	// Zero-exact convention with zero floor.
	v, err := FlooredAvgRelativeError([]float64{0.5}, []float64{0}, 0)
	if err != nil || v != 1 {
		t.Errorf("zero-exact convention: %g, %v", v, err)
	}
	if _, err := FlooredAvgRelativeError([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FlooredAvgRelativeError(nil, nil, 0); err == nil {
		t.Error("empty input accepted")
	}
}
