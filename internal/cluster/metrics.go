package cluster

import "github.com/quadkdv/quad/internal/telemetry"

// clusterMetrics are the coordinator's telemetry families. Per-worker series
// are pre-registered at construction so the hot path is lookup-free and the
// /metrics exposition order is deterministic.
type clusterMetrics struct {
	// attempts[worker][result] — kdv_cluster_attempts_total{worker,result}.
	attempts []map[string]*telemetry.Counter
	// shardRenders[outcome] — kdv_cluster_shard_renders_total{outcome}.
	shardRenders map[string]*telemetry.Counter
	// fanouts[outcome] — kdv_cluster_fanouts_total{outcome}.
	fanouts map[string]*telemetry.Counter
	// breakerState[worker] — kdv_cluster_breaker_state{worker}
	// (0 closed, 1 half-open, 2 open).
	breakerState []*telemetry.Gauge
	retries      *telemetry.Counter
	hedges       *telemetry.Counter
	hedgeWins    *telemetry.Counter
}

func newClusterMetrics(reg *telemetry.Registry, workers []string) *clusterMetrics {
	m := &clusterMetrics{
		attempts:     make([]map[string]*telemetry.Counter, len(workers)),
		shardRenders: make(map[string]*telemetry.Counter, 2),
		fanouts:      make(map[string]*telemetry.Counter, 3),
		breakerState: make([]*telemetry.Gauge, len(workers)),
	}
	for i, w := range workers {
		m.attempts[i] = map[string]*telemetry.Counter{
			"ok": reg.Counter("kdv_cluster_attempts_total",
				"Shard-render RPC attempts by worker and result.",
				telemetry.L("worker", w), telemetry.L("result", "ok")),
			"error": reg.Counter("kdv_cluster_attempts_total",
				"Shard-render RPC attempts by worker and result.",
				telemetry.L("worker", w), telemetry.L("result", "error")),
		}
	}
	m.retries = reg.Counter("kdv_cluster_retries_total",
		"Shard fetches retried after a failed attempt.")
	m.hedges = reg.Counter("kdv_cluster_hedges_total",
		"Hedged (straggler-racing) shard requests launched.")
	m.hedgeWins = reg.Counter("kdv_cluster_hedge_wins_total",
		"Hedged requests that beat the primary to first success.")
	for _, oc := range []string{"ok", "dead"} {
		m.shardRenders[oc] = reg.Counter("kdv_cluster_shard_renders_total",
			"Per-shard fan-out outcomes across all renders.",
			telemetry.L("outcome", oc))
	}
	for _, oc := range []string{"complete", "partial", "error"} {
		m.fanouts[oc] = reg.Counter("kdv_cluster_fanouts_total",
			"Distributed renders by completeness outcome.",
			telemetry.L("outcome", oc))
	}
	for i, w := range workers {
		m.breakerState[i] = reg.Gauge("kdv_cluster_breaker_state",
			"Per-worker circuit-breaker state (0 closed, 1 half-open, 2 open).",
			telemetry.L("worker", w))
	}
	return m
}
