// Package cluster is the horizontal scale-out layer behind kdvserve: a
// coordinator that partitions /render work across N worker processes by
// data shard and merges the per-shard rasters additively, and the worker's
// internal HTTP API serving those shard renders.
//
// Kernel densities are additive — Σ over a partition of the dataset
// composes exactly, and per-shard QUAD/KARL quadratic bounds sum to valid
// global bounds — so the fan-out preserves the paper's ε guarantee: each
// worker renders its Z-order shard (quad.WithShard) against the full
// dataset's window and bandwidth, and the coordinator sums rasters pixel by
// pixel in shard order.
//
// The robustness core lives in the coordinator: per-worker circuit breakers
// (closed/open/half-open with failure-rate tripping), bounded retries with
// jittered exponential backoff and per-attempt timeouts derived from the
// request deadline, hedged requests against stragglers (second attempt
// after a latency-quantile delay, first success wins), consistent-hash
// routing for cache affinity, and graceful degradation — when a shard stays
// unreachable past budget the merged raster of the live shards is served
// with X-KDV-Complete: false and X-KDV-Shards: k/n.
package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/telemetry"
	"github.com/quadkdv/quad/internal/trace"
)

// ShardRenderPath is the worker's internal shard-render endpoint.
const ShardRenderPath = "/internal/shard-render"

// Response headers of the shard-render API.
const (
	headerShard  = "X-KDV-Shard"        // "i/n"
	headerRes    = "X-KDV-Res"          // "WxH"
	headerWindow = "X-KDV-Window"       // "minX,minY,maxX,maxY"
	headerStats  = "X-KDV-Render-Stats" // RenderStats as JSON
)

// rasterContentType is the wire format of a shard raster: W·H little-endian
// float64 density values, row-major, pixel (0,0) lower-left.
const rasterContentType = "application/x-kdv-raster"

// maxPixels mirrors the serving layer's raster cap.
const maxPixels = 2560 * 1920

// maxN mirrors the serving layer's dataset-cardinality cap.
const maxN = 10_000_000

// ShardSpec identifies one shard of a Count-way Z-order partition.
type ShardSpec struct {
	Index, Count int
}

func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// Validate reports whether the spec is a well-formed partition member.
func (s ShardSpec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("cluster: shard count %d must be at least 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("cluster: shard index %d out of range [0, %d)", s.Index, s.Count)
	}
	return nil
}

// ParseShardSpec parses the "i/n" form used on the wire.
func ParseShardSpec(v string) (ShardSpec, error) {
	i, n, ok := strings.Cut(v, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("cluster: bad shard %q (want i/n)", v)
	}
	idx, err := strconv.Atoi(i)
	if err != nil {
		return ShardSpec{}, fmt.Errorf("cluster: bad shard index %q", i)
	}
	cnt, err := strconv.Atoi(n)
	if err != nil {
		return ShardSpec{}, fmt.Errorf("cluster: bad shard count %q", n)
	}
	s := ShardSpec{Index: idx, Count: cnt}
	return s, s.Validate()
}

// WorkerConfig tunes a worker. Zero fields take defaults.
type WorkerConfig struct {
	// CacheSize bounds the worker's shard-KDV build cache, in entries
	// (default 8; a shard build holds a kd-tree over its slice of points).
	CacheSize int
	// Registry receives the worker's metric families (nil → a private
	// registry; expose it via Registry()).
	Registry *telemetry.Registry
	// TraceLog, when set, receives the worker-side spans of traced shard
	// renders as JSON lines. Requests carrying a W3C traceparent are traced
	// regardless (continuing the coordinator's trace) but only exported
	// when TraceLog is set.
	TraceLog io.Writer
}

// Worker serves shard renders over the internal HTTP API. The same binary
// that runs the coordinator runs workers (kdvserve -worker); any worker can
// serve any shard — the shard spec arrives with each request and built
// shard KDVs are cached.
type Worker struct {
	cfg   WorkerConfig
	reg   *telemetry.Registry
	cache *shardKDVCache

	renders  map[string]*telemetry.Counter // outcome → counter
	buildSec *telemetry.Histogram
	traceMu  sync.Mutex
}

// NewWorker constructs a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 8
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	w := &Worker{
		cfg:     cfg,
		reg:     reg,
		cache:   newShardKDVCache(cfg.CacheSize),
		renders: make(map[string]*telemetry.Counter, 3),
	}
	for _, oc := range []string{"ok", "error", "cancelled"} {
		w.renders[oc] = reg.Counter("kdv_worker_shard_renders_total",
			"Shard renders served by this worker, by outcome.",
			telemetry.L("outcome", oc))
	}
	w.buildSec = reg.Histogram("kdv_worker_shard_build_seconds",
		"Wall time of shard KDV builds (dataset generation + Z-order split + kd-tree).",
		telemetry.DurationBuckets)
	w.cache.instrument(reg)
	return w
}

// Registry exposes the worker's metric registry.
func (w *Worker) Registry() *telemetry.Registry { return w.reg }

// Handler returns the worker's HTTP handler tree: the internal shard-render
// endpoint plus liveness and metrics.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+ShardRenderPath, w.handleShardRender)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write([]byte(`{"status":"ok","role":"worker"}` + "\n"))
	})
	mux.Handle("GET /metrics", w.reg.Handler())
	return mux
}

// shardRenderParams are the parsed wire parameters of one shard render.
type shardRenderParams struct {
	Dataset string
	N       int
	Seed    int64
	Kernel  quad.Kernel
	Method  quad.Method
	Eps     float64
	Res     quad.Resolution
	Window  quad.Window // zero → full-dataset window
	Shard   ShardSpec
}

func parseShardRenderParams(q map[string][]string) (*shardRenderParams, error) {
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	p := &shardRenderParams{}
	p.Dataset = get("dataset")
	if p.Dataset == "" {
		return nil, fmt.Errorf("dataset parameter is required")
	}
	n, err := strconv.Atoi(get("n"))
	if err != nil || n < 1 || n > maxN {
		return nil, fmt.Errorf("bad n %q", get("n"))
	}
	p.N = n
	p.Seed, err = strconv.ParseInt(get("seed"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad seed %q", get("seed"))
	}
	p.Kernel, err = quad.ParseKernel(get("kernel"))
	if err != nil {
		return nil, err
	}
	p.Method, err = quad.ParseMethod(get("method"))
	if err != nil {
		return nil, err
	}
	if p.Method == quad.MethodZOrder {
		return nil, fmt.Errorf("method zorder is not shardable")
	}
	p.Eps, err = strconv.ParseFloat(get("eps"), 64)
	if err != nil || p.Eps < 0 || p.Eps > 1 {
		return nil, fmt.Errorf("bad eps %q", get("eps"))
	}
	wpart, hpart, ok := strings.Cut(strings.ToLower(get("res")), "x")
	if !ok {
		return nil, fmt.Errorf("bad res %q", get("res"))
	}
	if p.Res.W, err = strconv.Atoi(wpart); err != nil {
		return nil, fmt.Errorf("bad res %q", get("res"))
	}
	if p.Res.H, err = strconv.Atoi(hpart); err != nil {
		return nil, fmt.Errorf("bad res %q", get("res"))
	}
	if p.Res.W < 1 || p.Res.H < 1 || p.Res.W*p.Res.H > maxPixels {
		return nil, fmt.Errorf("resolution %dx%d out of range", p.Res.W, p.Res.H)
	}
	if v := get("bbox"); v != "" {
		parts := strings.Split(v, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad bbox %q", v)
		}
		vals := make([]float64, 4)
		for i, s := range parts {
			if vals[i], err = strconv.ParseFloat(strings.TrimSpace(s), 64); err != nil {
				return nil, fmt.Errorf("bad bbox %q", v)
			}
		}
		p.Window = quad.Window{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if p.Window.MaxX <= p.Window.MinX || p.Window.MaxY <= p.Window.MinY {
			return nil, fmt.Errorf("degenerate bbox %q", v)
		}
	}
	p.Shard, err = ParseShardSpec(get("shard"))
	if err != nil {
		return nil, err
	}
	return p, nil
}

// query encodes the params back into wire form (the coordinator side).
func (p *shardRenderParams) query() string {
	v := make([]string, 0, 9)
	v = append(v,
		"dataset="+p.Dataset,
		"n="+strconv.Itoa(p.N),
		"seed="+strconv.FormatInt(p.Seed, 10),
		"kernel="+p.Kernel.String(),
		"method="+p.Method.String(),
		"eps="+strconv.FormatFloat(p.Eps, 'g', -1, 64),
		"res="+fmt.Sprintf("%dx%d", p.Res.W, p.Res.H),
		"shard="+p.Shard.String(),
	)
	if !p.Window.IsZero() {
		v = append(v, fmt.Sprintf("bbox=%g,%g,%g,%g",
			p.Window.MinX, p.Window.MinY, p.Window.MaxX, p.Window.MaxY))
	}
	return strings.Join(v, "&")
}

// cacheKey identifies a built shard KDV.
func (p *shardRenderParams) cacheKey() string {
	return fmt.Sprintf("%s/%d/%d/%s/%s/%s", p.Dataset, p.N, p.Seed, p.Kernel, p.Method, p.Shard)
}

func (w *Worker) handleShardRender(rw http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var tr *trace.Trace
	if tid, sid, err := trace.ParseTraceparent(r.Header.Get(trace.Header)); err == nil {
		tr = trace.Resume(tid, sid)
		ctx = trace.NewContext(ctx, tr)
	}
	sp, ctx := trace.StartSpan(ctx, "cluster.shard.render")
	defer func() {
		sp.End()
		if tr != nil && w.cfg.TraceLog != nil {
			w.traceMu.Lock()
			if err := trace.WriteJSONL(w.cfg.TraceLog, tr.Spans()); err != nil {
				slog.Error("worker trace export failed", "component", "cluster", "error", err)
			}
			w.traceMu.Unlock()
		}
	}()

	p, err := parseShardRenderParams(r.URL.Query())
	if err != nil {
		w.renders["error"].Inc()
		sp.SetAttrs(trace.Str("outcome", "bad-request"))
		workerError(rw, http.StatusBadRequest, err)
		return
	}
	sp.SetAttrs(
		trace.Str("shard", p.Shard.String()),
		trace.Str("dataset", p.Dataset),
		trace.Str("res", p.Res.String()),
	)

	kdv, err := w.cache.get(ctx, p.cacheKey(), func() (*quad.KDV, error) {
		return w.buildShardKDV(p)
	})
	if err != nil {
		w.renders["error"].Inc()
		sp.SetAttrs(trace.Str("outcome", "build-error"))
		workerError(rw, statusFor(ctx, err), err)
		return
	}

	dm, st, err := kdv.RenderEpsStatsInCtx(ctx, p.Res, p.Eps, p.Window)
	if err != nil {
		if ctx.Err() != nil {
			w.renders["cancelled"].Inc()
			sp.SetAttrs(trace.Str("outcome", "cancelled"))
		} else {
			w.renders["error"].Inc()
			sp.SetAttrs(trace.Str("outcome", "render-error"))
		}
		workerError(rw, statusFor(ctx, err), err)
		return
	}
	defer dm.Release()
	w.renders["ok"].Inc()
	sp.SetAttrs(trace.Str("outcome", "ok"), trace.Int("node_evals", st.NodesEvaluated))

	statsJSON, _ := json.Marshal(st)
	h := rw.Header()
	h.Set("Content-Type", rasterContentType)
	h.Set(headerShard, p.Shard.String())
	h.Set(headerRes, p.Res.String())
	h.Set(headerWindow, fmt.Sprintf("%.17g,%.17g,%.17g,%.17g",
		dm.WindowMin[0], dm.WindowMin[1], dm.WindowMax[0], dm.WindowMax[1]))
	h.Set(headerStats, string(statsJSON))
	h.Set("Content-Length", strconv.Itoa(8*len(dm.Values)))
	buf := make([]byte, 8*len(dm.Values))
	for i, v := range dm.Values {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, _ = rw.Write(buf)
}

// buildShardKDV generates the dataset and builds the shard-restricted KDV.
// quad.WithShard derives the bandwidth, weight normalization, and default
// render window from the FULL dataset before restricting to the shard's
// Z-order range, which is what makes per-shard rasters merge exactly.
func (w *Worker) buildShardKDV(p *shardRenderParams) (*quad.KDV, error) {
	start := time.Now()
	defer func() { w.buildSec.ObserveDuration(time.Since(start)) }()
	pts, err := dataset.Generate(p.Dataset, p.N, p.Seed)
	if err != nil {
		return nil, err
	}
	pts = dataset.First2D(pts)
	return quad.New(pts.Coords, pts.Dim,
		quad.WithKernel(p.Kernel),
		quad.WithMethod(p.Method),
		quad.WithShard(p.Shard.Index, p.Shard.Count))
}

func statusFor(ctx context.Context, err error) int {
	if ctx.Err() != nil {
		// The coordinator hung up or its deadline fired; the status is
		// moot, but 499-style signaling beats a misleading 500.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// workerError writes the structured JSON error body of the internal API.
func workerError(rw http.ResponseWriter, status int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(map[string]any{"error": err.Error(), "status": status})
}

// shardKDVCache is a bounded LRU of built shard KDVs with singleflight
// builds, the worker-side sibling of the serving layer's KDV cache. Builds
// run detached from the requesting context, so a coordinator that hedges
// away mid-build does not poison the build for the retry that follows.
type shardKDVCache struct {
	mu       sync.Mutex
	max      int
	order    []string // LRU order, most recent last
	entries  map[string]*quad.KDV
	building map[string]*shardBuild

	builds, hits *telemetry.Counter
	resident     *telemetry.Gauge
}

type shardBuild struct {
	done chan struct{}
	kdv  *quad.KDV
	err  error
}

func newShardKDVCache(max int) *shardKDVCache {
	if max < 1 {
		max = 1
	}
	return &shardKDVCache{
		max:      max,
		entries:  make(map[string]*quad.KDV),
		building: make(map[string]*shardBuild),
	}
}

func (c *shardKDVCache) instrument(reg *telemetry.Registry) {
	c.builds = reg.Counter("kdv_worker_shard_builds_total", "Shard KDV builds started.")
	c.hits = reg.Counter("kdv_worker_shard_cache_hits_total", "Shard KDV cache hits.")
	c.resident = reg.Gauge("kdv_worker_shard_cache_entries", "Shard KDV cache residency.")
}

func (c *shardKDVCache) get(ctx context.Context, key string, build func() (*quad.KDV, error)) (*quad.KDV, error) {
	c.mu.Lock()
	if k, ok := c.entries[key]; ok {
		c.touchLocked(key)
		c.mu.Unlock()
		c.hits.Inc()
		return k, nil
	}
	if b, ok := c.building[key]; ok {
		c.mu.Unlock()
		select {
		case <-b.done:
			return b.kdv, b.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	b := &shardBuild{done: make(chan struct{})}
	c.building[key] = b
	c.mu.Unlock()
	c.builds.Inc()
	go func() {
		kdv, err := build()
		c.mu.Lock()
		delete(c.building, key)
		if err == nil {
			c.insertLocked(key, kdv)
		}
		b.kdv, b.err = kdv, err
		c.mu.Unlock()
		close(b.done)
	}()
	select {
	case <-b.done:
		return b.kdv, b.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *shardKDVCache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

func (c *shardKDVCache) insertLocked(key string, k *quad.KDV) {
	if _, ok := c.entries[key]; ok {
		c.entries[key] = k
		c.touchLocked(key)
		return
	}
	c.entries[key] = k
	c.order = append(c.order, key)
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.resident.Set(int64(len(c.order)))
}
