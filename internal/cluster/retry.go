package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// backoff computes the jittered exponential retry delay for the given
// attempt (0-based: the delay taken before attempt 1, 2, …). The jitter is
// "full jitter": uniform in [base/2, base], which decorrelates retry storms
// across shards and coordinators while keeping a floor so retries are not
// immediate.
type backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	rnd *rand.Rand
}

func newBackoff(base, max time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 1 * time.Second
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &backoff{base: base, max: max, rnd: rand.New(rand.NewSource(seed))}
}

func (b *backoff) delay(attempt int) time.Duration {
	d := b.base << uint(attempt)
	if d > b.max || d <= 0 {
		d = b.max
	}
	b.mu.Lock()
	f := 0.5 + 0.5*b.rnd.Float64()
	b.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// latencyTracker keeps a bounded ring of recent successful shard-render
// latencies and answers quantile queries — the adaptive source of the hedge
// delay ("hedge after the p95 of recent latencies").
type latencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration
	head, n int
}

func newLatencyTracker(window int) *latencyTracker {
	if window <= 0 {
		window = 128
	}
	return &latencyTracker{samples: make([]time.Duration, window)}
}

func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.samples[l.head] = d
	l.head = (l.head + 1) % len(l.samples)
	if l.n < len(l.samples) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile (q in [0,1]) of the recorded window, or
// fallback when fewer than minSamples latencies have been observed.
func (l *latencyTracker) quantile(q float64, minSamples int, fallback time.Duration) time.Duration {
	l.mu.Lock()
	if l.n < minSamples {
		l.mu.Unlock()
		return fallback
	}
	buf := make([]time.Duration, l.n)
	copy(buf, l.samples[:l.n])
	l.mu.Unlock()
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	i := int(q * float64(len(buf)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(buf) {
		i = len(buf) - 1
	}
	return buf[i]
}
