package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker indices with virtual nodes. It
// gives every routing key a stable worker preference order: the same
// (shard, tile/bbox) key always walks the same sequence of workers, so
// repeated requests for one viewport land on workers whose shard-KDV builds
// and OS page cache are already warm — and failover for a given key is
// sticky too, instead of scattering cold builds across the fleet.
type ring struct {
	hashes  []uint64
	workers []int // parallel to hashes: worker index owning the vnode
	n       int
}

const vnodesPerWorker = 64

func newRing(n int) *ring {
	r := &ring{n: n}
	r.hashes = make([]uint64, 0, n*vnodesPerWorker)
	r.workers = make([]int, 0, n*vnodesPerWorker)
	type vnode struct {
		h uint64
		w int
	}
	vns := make([]vnode, 0, n*vnodesPerWorker)
	for w := 0; w < n; w++ {
		for v := 0; v < vnodesPerWorker; v++ {
			vns = append(vns, vnode{h: hash64(fmt.Sprintf("worker-%d#%d", w, v)), w: w})
		}
	}
	sort.Slice(vns, func(a, b int) bool {
		if vns[a].h != vns[b].h {
			return vns[a].h < vns[b].h
		}
		return vns[a].w < vns[b].w
	})
	for _, v := range vns {
		r.hashes = append(r.hashes, v.h)
		r.workers = append(r.workers, v.w)
	}
	return r
}

// walk returns the ring's preference order for key: the first max distinct
// workers encountered walking clockwise from the key's hash.
func (r *ring) walk(key string, max int) []int {
	if max > r.n {
		max = r.n
	}
	out := make([]int, 0, max)
	if max <= 0 || len(r.hashes) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make([]bool, r.n)
	for i := 0; i < len(r.hashes) && len(out) < max; i++ {
		w := r.workers[(start+i)%len(r.hashes)]
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
