package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/telemetry"
	"github.com/quadkdv/quad/internal/trace"
)

// CoordinatorConfig tunes the render fan-out. Zero fields take defaults.
type CoordinatorConfig struct {
	// Workers are the worker base addresses ("host:port" or full URLs).
	// Required, at least one.
	Workers []string
	// Shards is the partition width (default len(Workers)). The Z-order
	// range split is fixed at coordinator startup: every render is
	// partitioned into exactly this many shard RPCs.
	Shards int
	// Replicas bounds how many distinct workers a single shard's attempts
	// (retries and hedges) may be routed across (default 1: shard i is
	// pinned to worker i mod len(Workers) — maximal build-cache affinity
	// and strictly partitioned memory; a dead worker degrades its shards).
	// Raising it enables failover at the cost of workers holding replica
	// shard builds.
	Replicas int
	// MaxAttempts bounds tries per shard, including the first (default 3).
	MaxAttempts int
	// RetryBase/RetryMax shape the jittered exponential backoff between
	// attempts (defaults 25ms / 1s).
	RetryBase, RetryMax time.Duration
	// HedgeDelay, when positive, launches the hedged request after a fixed
	// delay. When zero, the delay adapts to the HedgeQuantile of recent
	// shard-render latencies (floored at 5ms until enough samples exist:
	// the fallback is 150ms).
	HedgeDelay time.Duration
	// HedgeQuantile selects the adaptive hedge trigger (default 0.95).
	HedgeQuantile float64
	// DisableHedge turns hedging off entirely.
	DisableHedge bool
	// ShardBudget caps the total time spent on one shard before the render
	// degrades without it. 0 derives the budget from the request deadline
	// (90% of the remaining time, leaving margin for merge + encode); with
	// neither a budget nor a deadline, shards are retried to MaxAttempts.
	ShardBudget time.Duration
	// Breaker tunes the per-worker circuit breakers.
	Breaker BreakerConfig
	// Client performs the worker HTTP requests (default http.DefaultClient
	// with a 0 timeout — per-attempt contexts bound each call). Tests
	// inject a faultinject.Transport here.
	Client *http.Client
	// Seed fixes the retry/hedge jitter for deterministic tests (0 → from
	// the wall clock).
	Seed int64

	// now is the breaker clock, injectable in tests.
	now func() time.Time
}

func (c CoordinatorConfig) withDefaults() (CoordinatorConfig, error) {
	if len(c.Workers) == 0 {
		return c, errors.New("cluster: coordinator needs at least one worker")
	}
	if c.Shards <= 0 {
		c.Shards = len(c.Workers)
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > len(c.Workers) {
		c.Replicas = len(c.Workers)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c, nil
}

// RenderRequest is one distributed εKDV render.
type RenderRequest struct {
	Dataset string
	N       int
	Seed    int64
	Kernel  quad.Kernel
	Method  quad.Method
	Eps     float64
	Res     quad.Resolution
	Window  quad.Window // zero → full-dataset window
}

// RenderResult is the merged outcome of a fan-out. When Complete is false,
// Values is the partial sum over the LiveShards live shards — graceful
// degradation, mirroring the serving layer's progressive partial rasters.
type RenderResult struct {
	Values               []float64
	Res                  quad.Resolution
	WindowMin, WindowMax [2]float64
	Stats                quad.RenderStats
	LiveShards           int
	TotalShards          int
	Complete             bool
	// Live lists the shard indices that contributed to Values, ascending.
	// A degraded merge's ground truth is the partial-sum oracle over
	// exactly these shards (quad.KDV.OraclePartial).
	Live []int
}

// ShardsHeader formats the k/n degraded-mode header value.
func (r *RenderResult) ShardsHeader() string {
	return fmt.Sprintf("%d/%d", r.LiveShards, r.TotalShards)
}

// Coordinator fans /render work out across workers by data shard and merges
// the rasters additively. It is safe for concurrent use.
type Coordinator struct {
	cfg      CoordinatorConfig
	workers  []string // normalized base URLs
	ring     *ring
	breakers []*breaker
	backoff  *backoff
	lat      *latencyTracker
	m        *clusterMetrics
}

// NewCoordinator constructs a coordinator over the given workers,
// registering its metric families on reg (which may be shared with the
// serving layer so one /metrics scrape covers both).
func NewCoordinator(cfg CoordinatorConfig, reg *telemetry.Registry) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	workers := make([]string, len(cfg.Workers))
	for i, w := range cfg.Workers {
		w = strings.TrimRight(w, "/")
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		workers[i] = w
	}
	c := &Coordinator{
		cfg:     cfg,
		workers: workers,
		ring:    newRing(len(workers)),
		backoff: newBackoff(cfg.RetryBase, cfg.RetryMax, cfg.Seed),
		lat:     newLatencyTracker(256),
		m:       newClusterMetrics(reg, cfg.Workers),
	}
	c.breakers = make([]*breaker, len(workers))
	for i := range c.breakers {
		b := newBreaker(cfg.Breaker, cfg.now)
		idx := i
		b.onState = func(s BreakerState) { c.m.breakerState[idx].Set(int64(s)) }
		c.breakers[i] = b
	}
	return c, nil
}

// Shards reports the fixed partition width.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// Workers reports the normalized worker base URLs.
func (c *Coordinator) Workers() []string { return append([]string(nil), c.workers...) }

// BreakerStates reports every worker's breaker position (diagnostics).
func (c *Coordinator) BreakerStates() []BreakerState {
	out := make([]BreakerState, len(c.breakers))
	for i, b := range c.breakers {
		out[i] = b.State()
	}
	return out
}

// errShardFailed wraps the last error of an exhausted shard fetch.
type errShardFailed struct {
	shard ShardSpec
	err   error
}

func (e *errShardFailed) Error() string {
	return fmt.Sprintf("shard %s failed: %v", e.shard, e.err)
}
func (e *errShardFailed) Unwrap() error { return e.err }

// errBreakerOpen reports that every routable worker's breaker refused the
// attempt.
var errBreakerOpen = errors.New("cluster: all candidate workers' circuit breakers are open")

// shardResult is one shard's successful render.
type shardResult struct {
	values               []float64
	windowMin, windowMax [2]float64
	stats                quad.RenderStats
}

// RenderEps partitions the render across the configured shard count, fans
// the shard RPCs out to the workers, and merges the rasters additively in
// ascending shard order (so k-of-n partial merges are bit-identical to the
// same sum taken over the live shards alone). Shards that stay unreachable
// past budget are dropped: the result is flagged incomplete rather than the
// whole render failing. An error is returned only when no shard could be
// rendered at all, or ctx ended.
func (c *Coordinator) RenderEps(ctx context.Context, req RenderRequest) (*RenderResult, error) {
	if req.Method == quad.MethodZOrder {
		return nil, errors.New("cluster: method zorder is not shardable")
	}
	start := time.Now()
	sp, ctx := trace.StartSpan(ctx, "cluster.fanout")
	sp.SetAttrs(
		trace.Int("shards", c.cfg.Shards),
		trace.Int("workers", len(c.workers)),
		trace.Str("dataset", req.Dataset),
		trace.Str("res", req.Res.String()),
	)
	defer sp.End()

	// Every shard shares one budgeted context derived from the request
	// deadline, leaving headroom for merge + encode after the fan-out.
	shardCtx, cancel := c.shardContext(ctx)
	defer cancel()

	results := make([]*shardResult, c.cfg.Shards)
	errs := make([]error, c.cfg.Shards)
	var wg sync.WaitGroup
	for shard := 0; shard < c.cfg.Shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			spec := ShardSpec{Index: shard, Count: c.cfg.Shards}
			results[shard], errs[shard] = c.fetchShard(shardCtx, req, spec)
		}(shard)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	merged := &RenderResult{Res: req.Res, TotalShards: c.cfg.Shards}
	var firstErr error
	for shard := 0; shard < c.cfg.Shards; shard++ {
		r := results[shard]
		if r == nil {
			c.m.shardRenders["dead"].Inc()
			if firstErr == nil && errs[shard] != nil {
				firstErr = &errShardFailed{shard: ShardSpec{Index: shard, Count: c.cfg.Shards}, err: errs[shard]}
			}
			continue
		}
		c.m.shardRenders["ok"].Inc()
		if merged.Values == nil {
			merged.Values = make([]float64, len(r.values))
			merged.WindowMin, merged.WindowMax = r.windowMin, r.windowMax
		} else {
			if len(r.values) != len(merged.Values) {
				return nil, fmt.Errorf("cluster: shard %d raster size %d != %d", shard, len(r.values), len(merged.Values))
			}
			if r.windowMin != merged.WindowMin || r.windowMax != merged.WindowMax {
				return nil, fmt.Errorf("cluster: shard %d window %v..%v disagrees with %v..%v (workers out of sync?)",
					shard, r.windowMin, r.windowMax, merged.WindowMin, merged.WindowMax)
			}
		}
		// Additive merge in ascending shard order: densities are additive
		// over any partition of the dataset, and the fixed order makes
		// partial merges deterministic down to the bit.
		for i, v := range r.values {
			merged.Values[i] += v
		}
		addStats(&merged.Stats, r.stats)
		merged.Live = append(merged.Live, shard)
		merged.LiveShards++
	}
	merged.Complete = merged.LiveShards == merged.TotalShards
	merged.Stats.Elapsed = time.Since(start)
	sp.SetAttrs(
		trace.Int("live_shards", merged.LiveShards),
		trace.Str("outcome", map[bool]string{true: "complete", false: "partial"}[merged.Complete]),
	)
	if merged.LiveShards == 0 {
		c.m.fanouts["error"].Inc()
		if firstErr == nil {
			firstErr = errors.New("cluster: no live shards")
		}
		return nil, firstErr
	}
	if merged.Complete {
		c.m.fanouts["complete"].Inc()
	} else {
		c.m.fanouts["partial"].Inc()
	}
	return merged, nil
}

// shardContext derives the per-shard fetch budget from the request
// deadline (or the configured ShardBudget, whichever binds first).
func (c *Coordinator) shardContext(ctx context.Context) (context.Context, context.CancelFunc) {
	budget := c.cfg.ShardBudget
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		derived := rem - rem/10
		if budget <= 0 || derived < budget {
			budget = derived
		}
	}
	if budget <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, budget)
}

// fetchShard runs the full robustness pipeline for one shard: candidate
// routing, circuit-breaker gating, bounded retries with jittered backoff,
// per-attempt timeouts derived from the remaining budget, and hedging.
func (c *Coordinator) fetchShard(ctx context.Context, req RenderRequest, spec ShardSpec) (*shardResult, error) {
	sp, ctx := trace.StartSpan(ctx, "cluster.shard")
	sp.SetAttrs(trace.Str("shard", spec.String()))
	defer sp.End()

	p := &shardRenderParams{
		Dataset: req.Dataset, N: req.N, Seed: req.Seed,
		Kernel: req.Kernel, Method: req.Method,
		Eps: req.Eps, Res: req.Res, Window: req.Window, Shard: spec,
	}
	candidates := c.candidates(p)

	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.m.retries.Inc()
			if err := sleepCtx(ctx, c.backoff.delay(attempt-1)); err != nil {
				sp.SetAttrs(trace.Str("outcome", "budget-exhausted"), trace.Int("attempts", attempt))
				return nil, lastErrOr(lastErr, err)
			}
		}
		res, err := c.attempt(ctx, p, candidates, attempt)
		if err == nil {
			sp.SetAttrs(trace.Str("outcome", "ok"), trace.Int("attempts", attempt+1))
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			sp.SetAttrs(trace.Str("outcome", "budget-exhausted"), trace.Int("attempts", attempt+1))
			return nil, lastErrOr(lastErr, ctx.Err())
		}
	}
	sp.SetAttrs(trace.Str("outcome", "exhausted"), trace.Int("attempts", c.cfg.MaxAttempts))
	return nil, lastErr
}

// candidates returns the shard's routable worker indices: the static
// primary (shard mod workers — the startup range split, maximal build-cache
// affinity) followed by the consistent-hash ring walk for the render key,
// bounded by Replicas. The ring makes failover sticky per (shard, viewport)
// key, so secondary builds concentrate instead of scattering.
func (c *Coordinator) candidates(p *shardRenderParams) []int {
	primary := p.Shard.Index % len(c.workers)
	if c.cfg.Replicas <= 1 {
		return []int{primary}
	}
	key := p.cacheKey() + "/" + p.Res.String() + "/" + fmt.Sprintf("%v", p.Window)
	out := []int{primary}
	for _, w := range c.ring.walk(key, len(c.workers)) {
		if len(out) >= c.cfg.Replicas {
			break
		}
		if w != primary {
			out = append(out, w)
		}
	}
	return out
}

// attempt performs one (possibly hedged) try of a shard render. The primary
// request goes to the attempt's candidate; if it has not resolved within
// the hedge delay, a second request races it on the next candidate (the
// same worker when only one is routable — a fresh connection still escapes
// a stuck socket). First success wins and the loser is cancelled; losers
// cancelled by the race are not recorded against their worker's breaker.
func (c *Coordinator) attempt(ctx context.Context, p *shardRenderParams, candidates []int, attempt int) (*shardResult, error) {
	primary, ok := c.pickWorker(candidates, attempt)
	if !ok {
		return nil, errBreakerOpen
	}

	actx, cancelAttempt := c.attemptContext(ctx, attempt)
	defer cancelAttempt()

	type outcome struct {
		res    *shardResult
		err    error
		worker int
		hedged bool
		dur    time.Duration
	}
	results := make(chan outcome, 2)
	launch := func(worker int, hedged bool, rctx context.Context) {
		start := time.Now()
		res, err := c.doRequest(rctx, worker, p, hedged)
		results <- outcome{res: res, err: err, worker: worker, hedged: hedged, dur: time.Since(start)}
	}

	// Both racers run under actx; the deferred cancelAttempt releases the
	// loser the moment the attempt returns with a winner (or gives up).
	go launch(primary, false, actx)

	var hedgeTimer *time.Timer
	var hedgeFired <-chan time.Time
	if !c.cfg.DisableHedge {
		hedgeTimer = time.NewTimer(c.hedgeDelay())
		defer hedgeTimer.Stop()
		hedgeFired = hedgeTimer.C
	}

	inFlight := 1
	var firstErr error
	for {
		select {
		case <-hedgeFired:
			hedgeFired = nil
			target, ok := c.hedgeTarget(candidates, attempt, primary)
			if !ok {
				continue
			}
			c.m.hedges.Inc()
			inFlight++
			go launch(target, true, actx)
		case out := <-results:
			definitive := out.err == nil || actx.Err() == nil
			if definitive {
				c.recordOutcome(out.worker, out.err == nil)
			}
			if out.err == nil {
				// Winner: cancel the loser; its cancellation is not held
				// against its worker.
				if out.hedged {
					c.m.hedgeWins.Inc()
				}
				c.lat.observe(out.dur)
				return out.res, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			inFlight--
			if inFlight == 0 {
				return nil, firstErr
			}
			// The other request is still racing; wait for it.
		case <-actx.Done():
			// Attempt timeout or shard budget: return now to keep the retry
			// loop on schedule — the launched goroutines resolve via their
			// cancelled contexts and the buffered channel, no leak. When the
			// shard budget is still live the timeout is definitive straggler
			// evidence against the primary (a hang must trip the breaker
			// just like an error); a budget/caller cancellation is not the
			// worker's fault and is not recorded.
			if ctx.Err() == nil {
				c.recordOutcome(primary, false)
			}
			return nil, actx.Err()
		}
	}
}

// pickWorker selects the attempt's primary: candidates are walked in order,
// rotated by attempt so consecutive retries prefer different workers when
// replicas allow, skipping candidates whose breaker refuses.
func (c *Coordinator) pickWorker(candidates []int, attempt int) (int, bool) {
	n := len(candidates)
	for i := 0; i < n; i++ {
		w := candidates[(attempt+i)%n]
		if c.breakers[w].Allow() {
			return w, true
		}
	}
	return 0, false
}

// hedgeTarget picks the hedge's worker: the next breaker-admitted candidate
// after the primary, or the primary itself again when it is the only
// routable worker (the breaker must re-admit it).
func (c *Coordinator) hedgeTarget(candidates []int, attempt, primary int) (int, bool) {
	n := len(candidates)
	for i := 1; i < n; i++ {
		w := candidates[(attempt+i)%n]
		if w != primary && c.breakers[w].Allow() {
			return w, true
		}
	}
	if c.breakers[primary].Allow() {
		return primary, true
	}
	return 0, false
}

// attemptContext bounds one attempt: the remaining shard budget is split
// evenly across the attempts left, so early attempts cannot starve the
// final one — "per-attempt timeouts derived from the request deadline".
func (c *Coordinator) attemptContext(ctx context.Context, attempt int) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	left := c.cfg.MaxAttempts - attempt
	if left < 1 {
		left = 1
	}
	rem := time.Until(dl)
	per := rem / time.Duration(left)
	if per <= 0 {
		per = time.Millisecond
	}
	return context.WithTimeout(ctx, per)
}

// hedgeDelay resolves the straggler trigger: fixed when configured, else
// the configured quantile of recent shard latencies.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	d := c.lat.quantile(c.cfg.HedgeQuantile, 16, 150*time.Millisecond)
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

func (c *Coordinator) recordOutcome(worker int, success bool) {
	c.breakers[worker].Record(success)
	if success {
		c.m.attempts[worker]["ok"].Inc()
	} else {
		c.m.attempts[worker]["error"].Inc()
	}
}

// doRequest performs one shard-render HTTP call, propagating the W3C trace
// context, and decodes the raster.
func (c *Coordinator) doRequest(ctx context.Context, worker int, p *shardRenderParams, hedged bool) (*shardResult, error) {
	sp, ctx := trace.StartSpan(ctx, "cluster.rpc")
	sp.SetAttrs(
		trace.Str("worker", c.cfg.Workers[worker]),
		trace.Str("shard", p.Shard.String()),
		trace.Str("hedged", fmt.Sprintf("%t", hedged)),
	)
	defer sp.End()

	url := c.workers[worker] + ShardRenderPath + "?" + p.query()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if tr := trace.FromContext(ctx); tr != nil {
		req.Header.Set(trace.Header, trace.FormatTraceparent(tr.ID(), sp.ID))
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		sp.SetAttrs(trace.Str("outcome", "transport-error"))
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		sp.SetAttrs(trace.Str("outcome", fmt.Sprintf("status-%d", resp.StatusCode)))
		return nil, fmt.Errorf("cluster: worker %s: %s: %s",
			c.cfg.Workers[worker], resp.Status, strings.TrimSpace(string(body)))
	}
	want := 8 * p.Res.W * p.Res.H
	buf, err := io.ReadAll(io.LimitReader(resp.Body, int64(want)+1))
	if err != nil {
		sp.SetAttrs(trace.Str("outcome", "read-error"))
		return nil, err
	}
	if len(buf) != want {
		sp.SetAttrs(trace.Str("outcome", "short-raster"))
		return nil, fmt.Errorf("cluster: worker %s: raster is %d bytes, want %d",
			c.cfg.Workers[worker], len(buf), want)
	}
	res := &shardResult{values: make([]float64, p.Res.W*p.Res.H)}
	for i := range res.values {
		res.values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	if res.windowMin, res.windowMax, err = parseWindowHeader(resp.Header.Get(headerWindow)); err != nil {
		return nil, err
	}
	if v := resp.Header.Get(headerStats); v != "" {
		if err := json.Unmarshal([]byte(v), &res.stats); err != nil {
			return nil, fmt.Errorf("cluster: bad %s header: %w", headerStats, err)
		}
	}
	sp.SetAttrs(trace.Str("outcome", "ok"))
	return res, nil
}

func parseWindowHeader(v string) (mn, mx [2]float64, err error) {
	var vals [4]float64
	parts := strings.Split(v, ",")
	if len(parts) != 4 {
		return mn, mx, fmt.Errorf("cluster: bad %s header %q", headerWindow, v)
	}
	for i, s := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &vals[i]); err != nil {
			return mn, mx, fmt.Errorf("cluster: bad %s header %q", headerWindow, v)
		}
	}
	return [2]float64{vals[0], vals[1]}, [2]float64{vals[2], vals[3]}, nil
}

// addStats folds one shard's render work into the aggregate.
func addStats(dst *quad.RenderStats, s quad.RenderStats) {
	dst.Pixels += s.Pixels
	dst.Tiles += s.Tiles
	dst.TilesDecided += s.TilesDecided
	dst.SharedNodeEvals += s.SharedNodeEvals
	dst.FrontierPromotions += s.FrontierPromotions
	dst.Iterations += s.Iterations
	dst.NodesEvaluated += s.NodesEvaluated
	dst.LeafScans += s.LeafScans
	dst.PointsScanned += s.PointsScanned
	for i := range dst.DepthPixels {
		dst.DepthPixels[i] += s.DepthPixels[i]
	}
	dst.SharedElapsed += s.SharedElapsed
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func lastErrOr(last, fallback error) error {
	if last != nil {
		return last
	}
	return fallback
}
