package cluster

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/cluster/faultinject"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/telemetry"
)

// The chaos suite drives the coordinator's robustness machinery — breakers,
// retries, hedges, partial merges — through the deterministic fault-injection
// transport against real in-process workers.

// lockedClock is a race-safe manual clock for the coordinator's breakers.
type lockedClock struct {
	mu sync.Mutex
	t  time.Time
}

func newLockedClock() *lockedClock {
	return &lockedClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *lockedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockedClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// chaosRig is one coordinator wired through a fault-injection transport to n
// real in-process workers.
type chaosRig struct {
	coord   *Coordinator
	fi      *faultinject.Transport
	servers []*httptest.Server
	hosts   []string // URL hosts, the fault-injection keys
	reg     *telemetry.Registry
	clock   *lockedClock
}

func newChaosRig(t *testing.T, workers int, mutate func(*CoordinatorConfig)) *chaosRig {
	t.Helper()
	rig := &chaosRig{
		fi:    faultinject.New(nil, 1),
		reg:   telemetry.NewRegistry(),
		clock: newLockedClock(),
	}
	urls := make([]string, workers)
	for i := 0; i < workers; i++ {
		srv := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
		t.Cleanup(srv.Close)
		rig.servers = append(rig.servers, srv)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		rig.hosts = append(rig.hosts, u.Host)
		urls[i] = srv.URL
	}
	cfg := CoordinatorConfig{
		Workers:      urls,
		Client:       &http.Client{Transport: rig.fi},
		Seed:         1,
		DisableHedge: true,
		RetryBase:    time.Millisecond,
		RetryMax:     4 * time.Millisecond,
		Breaker: BreakerConfig{
			Window: 8, FailureRate: 0.5, MinSamples: 2,
			Cooldown: time.Minute, HalfOpenProbes: 1,
		},
		now: rig.clock.Now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := NewCoordinator(cfg, rig.reg)
	if err != nil {
		t.Fatal(err)
	}
	rig.coord = coord
	return rig
}

// chaosRequest is the shared small render: cheap enough for a test matrix,
// big enough that shard rasters are nontrivial.
func chaosRequest() RenderRequest {
	return RenderRequest{
		Dataset: "crime", N: 400, Seed: 7,
		Kernel: quad.Gaussian, Method: quad.MethodQuadratic,
		Eps: 0.05, Res: quad.Resolution{W: 24, H: 24},
	}
}

// localShardValues renders one shard of the request in-process — the oracle
// the distributed path must match bit for bit.
func localShardValues(t *testing.T, req RenderRequest, shard, count int) []float64 {
	t.Helper()
	pts, err := dataset.Generate(req.Dataset, req.N, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	pts = dataset.First2D(pts)
	opts := []quad.Option{quad.WithKernel(req.Kernel), quad.WithMethod(req.Method)}
	if count > 1 {
		opts = append(opts, quad.WithShard(shard, count))
	}
	k, err := quad.New(pts.Coords, pts.Dim, opts...)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := k.RenderEpsIn(req.Res, req.Eps, req.Window)
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]float64(nil), dm.Values...)
	dm.Release()
	return vals
}

// mergeAscending sums shard rasters in ascending shard order, the
// coordinator's merge rule.
func mergeAscending(rasters ...[]float64) []float64 {
	out := make([]float64, len(rasters[0]))
	for _, r := range rasters {
		for i, v := range r {
			out[i] += v
		}
	}
	return out
}

func assertBitIdentical(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: pixel %d differs: %x vs %x (%g vs %g)",
				label, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

func TestChaosBaselineCompleteMergeMatchesOracle(t *testing.T) {
	rig := newChaosRig(t, 2, func(c *CoordinatorConfig) { c.Shards = 2 })
	req := chaosRequest()
	res, err := rig.coord.RenderEps(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.LiveShards != 2 {
		t.Fatalf("fault-free fan-out not complete: %+v", res)
	}
	want := mergeAscending(
		localShardValues(t, req, 0, 2),
		localShardValues(t, req, 1, 2),
	)
	assertBitIdentical(t, res.Values, want, "2-shard complete merge")
	if res.Stats.Pixels == 0 || res.Stats.NodesEvaluated == 0 {
		t.Fatalf("merged stats not aggregated: %+v", res.Stats)
	}
}

func TestChaosBreakerTripsThenRecovers(t *testing.T) {
	rig := newChaosRig(t, 1, func(c *CoordinatorConfig) {
		c.Shards = 1
		c.MaxAttempts = 1
	})
	req := chaosRequest()
	boom := errors.New("injected: connection refused")
	rig.fi.SetDefault(rig.hosts[0], faultinject.Action{Err: boom})

	// Two failed renders reach MinSamples=2 at 100% failure rate: trips.
	for i := 0; i < 2; i++ {
		if _, err := rig.coord.RenderEps(context.Background(), req); err == nil {
			t.Fatalf("render %d succeeded against a dead worker", i)
		}
	}
	if got := rig.coord.BreakerStates()[0]; got != BreakerOpen {
		t.Fatalf("breaker = %v after repeated failures, want open", got)
	}

	// Open breaker: the render fails fast without touching the worker.
	calls := rig.fi.Calls(rig.hosts[0])
	if _, err := rig.coord.RenderEps(context.Background(), req); !errors.Is(err, errBreakerOpen) {
		t.Fatalf("render through open breaker: err = %v, want errBreakerOpen", err)
	}
	if got := rig.fi.Calls(rig.hosts[0]); got != calls {
		t.Fatalf("open breaker let %d requests through", got-calls)
	}

	// Worker heals, cooldown elapses: the half-open probe succeeds and the
	// breaker closes.
	rig.fi.SetDefault(rig.hosts[0], faultinject.Action{})
	rig.clock.Advance(61 * time.Second)
	res, err := rig.coord.RenderEps(context.Background(), req)
	if err != nil {
		t.Fatalf("render after recovery: %v", err)
	}
	if !res.Complete {
		t.Fatalf("post-recovery render incomplete: %+v", res)
	}
	if got := rig.coord.BreakerStates()[0]; got != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", got)
	}
}

func TestChaosHedgeBeatsHungWorker(t *testing.T) {
	rig := newChaosRig(t, 2, func(c *CoordinatorConfig) {
		c.Shards = 2
		c.Replicas = 2
		c.DisableHedge = false
		c.HedgeDelay = 20 * time.Millisecond
		c.MaxAttempts = 1
	})
	req := chaosRequest()
	// Worker 0 (primary for shard 0) accepts and never answers.
	rig.fi.SetDefault(rig.hosts[0], faultinject.Action{Hang: true})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := rig.coord.RenderEps(ctx, req)
	if err != nil {
		t.Fatalf("hedged render: %v", err)
	}
	if !res.Complete {
		t.Fatalf("hedged render incomplete: %d/%d", res.LiveShards, res.TotalShards)
	}
	if got := rig.coord.m.hedges.Value(); got == 0 {
		t.Fatal("no hedge was launched against the hung worker")
	}
	if got := rig.coord.m.hedgeWins.Value(); got == 0 {
		t.Fatal("the hedge never won against the hung worker")
	}
	// First-success-wins must not double-count: the merged raster is still
	// exactly the 2-shard oracle sum.
	want := mergeAscending(
		localShardValues(t, req, 0, 2),
		localShardValues(t, req, 1, 2),
	)
	assertBitIdentical(t, res.Values, want, "hedged merge")
}

func TestChaosKilledWorkerDegradesToPartial(t *testing.T) {
	rig := newChaosRig(t, 2, func(c *CoordinatorConfig) {
		c.Shards = 2
		c.MaxAttempts = 2
	})
	req := chaosRequest()
	// Worker 1 (primary for shard 1; Replicas=1, so no failover) is dead.
	rig.fi.SetDefault(rig.hosts[1], faultinject.Action{Err: errors.New("injected: worker killed")})

	res, err := rig.coord.RenderEps(context.Background(), req)
	if err != nil {
		t.Fatalf("degraded render returned an error instead of a partial raster: %v", err)
	}
	if res.Complete {
		t.Fatal("render claims completeness with a dead worker")
	}
	if res.LiveShards != 1 || res.TotalShards != 2 {
		t.Fatalf("live/total = %d/%d, want 1/2", res.LiveShards, res.TotalShards)
	}
	if got := res.ShardsHeader(); got != "1/2" {
		t.Fatalf("ShardsHeader() = %q, want 1/2", got)
	}
	// The partial raster is bit-identical to the oracle restricted to the
	// live shard.
	assertBitIdentical(t, res.Values, localShardValues(t, req, 0, 2), "partial merge")
}

func TestChaosPartialMergeBitIdenticalKofN(t *testing.T) {
	// 4 shards across 2 workers (shard i → worker i%2); killing worker 1
	// kills shards 1 and 3, and the surviving merge must equal the oracle
	// sum over shards {0, 2} in ascending order, bit for bit.
	rig := newChaosRig(t, 2, func(c *CoordinatorConfig) {
		c.Shards = 4
		c.MaxAttempts = 1
	})
	req := chaosRequest()
	rig.fi.SetDefault(rig.hosts[1], faultinject.Action{Err: errors.New("injected: worker killed")})

	res, err := rig.coord.RenderEps(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || res.LiveShards != 2 || res.ShardsHeader() != "2/4" {
		t.Fatalf("want a 2/4 partial, got %d/%d complete=%v",
			res.LiveShards, res.TotalShards, res.Complete)
	}
	want := mergeAscending(
		localShardValues(t, req, 0, 4),
		localShardValues(t, req, 2, 4),
	)
	assertBitIdentical(t, res.Values, want, "2-of-4 partial merge")
}

func TestChaosTransientErrorIsRetried(t *testing.T) {
	rig := newChaosRig(t, 1, func(c *CoordinatorConfig) {
		c.Shards = 1
		c.MaxAttempts = 3
		c.Breaker.MinSamples = 8 // keep the breaker out of this test's way
	})
	req := chaosRequest()
	// Exactly two transient failures (Repeat=1 → the action serves 2
	// requests), then the worker is healthy.
	rig.fi.Push(rig.hosts[0], faultinject.Action{Err: errors.New("injected: transient"), Repeat: 1})

	res, err := rig.coord.RenderEps(context.Background(), req)
	if err != nil {
		t.Fatalf("retried render: %v", err)
	}
	if !res.Complete {
		t.Fatalf("retried render incomplete: %+v", res)
	}
	if got := rig.fi.Calls(rig.hosts[0]); got != 3 {
		t.Fatalf("worker saw %d calls, want 3 (two failures + success)", got)
	}
	if got := rig.coord.m.retries.Value(); got != 2 {
		t.Fatalf("kdv_cluster_retries_total = %d, want 2", got)
	}
}

func TestChaosRetriesRespectDeadline(t *testing.T) {
	rig := newChaosRig(t, 1, func(c *CoordinatorConfig) {
		c.Shards = 1
		c.MaxAttempts = 3
	})
	req := chaosRequest()
	rig.fi.SetDefault(rig.hosts[0], faultinject.Action{Hang: true})

	deadline := 400 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := rig.coord.RenderEps(ctx, req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("render against a hung worker succeeded")
	}
	// The per-attempt timeouts are carved from the request deadline, so the
	// whole retry ladder must finish close to it — not MaxAttempts× past it.
	if elapsed > deadline+600*time.Millisecond {
		t.Fatalf("retry ladder overshot the deadline: elapsed %v for a %v budget", elapsed, deadline)
	}
}

func TestChaosFlappingWorkerSeededDeterminism(t *testing.T) {
	// A 50% flapping worker under a fixed transport seed produces the same
	// call sequence on every run; with retries the render still completes.
	run := func() (int, bool) {
		rig := newChaosRig(t, 1, func(c *CoordinatorConfig) {
			c.Shards = 1
			c.MaxAttempts = 6
			c.Breaker.MinSamples = 32
		})
		req := chaosRequest()
		rig.fi.SetDefault(rig.hosts[0], faultinject.Action{FailProb: 0.5})
		res, err := rig.coord.RenderEps(context.Background(), req)
		if err != nil {
			t.Fatalf("flapping render: %v", err)
		}
		return rig.fi.Calls(rig.hosts[0]), res.Complete
	}
	calls1, ok1 := run()
	calls2, ok2 := run()
	if !ok1 || !ok2 {
		t.Fatal("flapping render did not complete")
	}
	if calls1 != calls2 {
		t.Fatalf("seeded flapping is not deterministic: %d calls vs %d", calls1, calls2)
	}
}

func TestChaosSlowWorkerStillMerges(t *testing.T) {
	// Injected latency (well under any timeout) must not change the merged
	// bits — only the wall clock.
	rig := newChaosRig(t, 2, func(c *CoordinatorConfig) { c.Shards = 2 })
	req := chaosRequest()
	rig.fi.SetDefault(rig.hosts[0], faultinject.Action{Delay: 30 * time.Millisecond})

	res, err := rig.coord.RenderEps(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("slow-worker render incomplete: %+v", res)
	}
	want := mergeAscending(
		localShardValues(t, req, 0, 2),
		localShardValues(t, req, 1, 2),
	)
	assertBitIdentical(t, res.Values, want, "slow-worker merge")
}

func TestChaosAllWorkersDeadIsAnError(t *testing.T) {
	rig := newChaosRig(t, 2, func(c *CoordinatorConfig) {
		c.Shards = 2
		c.MaxAttempts = 1
	})
	boom := errors.New("injected: cluster down")
	rig.fi.SetDefault(rig.hosts[0], faultinject.Action{Err: boom})
	rig.fi.SetDefault(rig.hosts[1], faultinject.Action{Err: boom})
	_, err := rig.coord.RenderEps(context.Background(), chaosRequest())
	if err == nil {
		t.Fatal("render with zero live shards returned a raster")
	}
	var sf *errShardFailed
	if !errors.As(err, &sf) {
		t.Fatalf("error %v does not identify the failing shard", err)
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Fatalf("error %q does not name the shard", err)
	}
}

func TestChaosWorkerRejectsBadShardSpec(t *testing.T) {
	// The worker-side API must reject malformed shard specs rather than
	// render garbage that would poison a merge.
	srv := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
	defer srv.Close()
	for _, q := range []string{
		"shard=2/2",  // index out of range
		"shard=-1/2", // negative index
		"shard=x/2",  // not a number
		"shard=0/0",  // zero count
		"",           // missing
	} {
		u := srv.URL + ShardRenderPath +
			"?dataset=crime&n=100&seed=1&kernel=gaussian&method=quad&eps=0.05&res=8x8&" + q
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("shard spec %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}
