package cluster

import (
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	clk := newFakeClock()
	return newBreaker(cfg, clk.now), clk
}

func TestBreakerTripsAtFailureRate(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 10, FailureRate: 0.5, MinSamples: 5, Cooldown: time.Second})
	// Four failures: below MinSamples, must stay closed.
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 4 failures = %v, want closed (MinSamples=5)", got)
	}
	// Fifth failure reaches MinSamples with rate 1.0 ≥ 0.5: trips.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 5 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
}

func TestBreakerSuccessesKeepItClosed(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 10, FailureRate: 0.5, MinSamples: 5})
	// 40% failures in the full window, and no prefix of length ≥ MinSamples
	// ever reaches the 50% trip rate either (the check runs per Record).
	for _, ok := range []bool{true, true, true, false, true, true, false, true, false, false} {
		b.Record(ok)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed at 40%% failure rate", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	cfg := BreakerConfig{Window: 10, FailureRate: 0.5, MinSamples: 3, Cooldown: time.Second, HalfOpenProbes: 2}
	b, clk := newTestBreaker(cfg)
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	// Mid-cooldown: still open.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a request mid-cooldown")
	}

	// Cooldown elapsed: half-open, at most HalfOpenProbes concurrent probes.
	clk.advance(600 * time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused its probe budget")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted more than HalfOpenProbes concurrent probes")
	}

	// Both probes succeed: closed again, window clean.
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probes = %v, want closed", got)
	}
	// A single failure on the fresh window must not re-trip (MinSamples).
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after one failure post-recovery = %v, want closed", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	cfg := BreakerConfig{Window: 10, FailureRate: 0.5, MinSamples: 3, Cooldown: time.Second, HalfOpenProbes: 2}
	b, clk := newTestBreaker(cfg)
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", got)
	}
	// And the new cooldown starts from the failed probe.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request mid-second-cooldown")
	}
	clk.advance(600 * time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after second cooldown = %v, want half-open", got)
	}
}

func TestBreakerHalfOpenSelfHeals(t *testing.T) {
	// A probe slot taken by a caller that never records an outcome must not
	// wedge the breaker forever.
	cfg := BreakerConfig{Window: 10, FailureRate: 0.5, MinSamples: 3, Cooldown: time.Second, HalfOpenProbes: 1}
	b, clk := newTestBreaker(cfg)
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	// The probe's outcome is never recorded. After a full further cooldown
	// of silence the probe budget refreshes.
	if b.Allow() {
		t.Fatal("expected probe budget exhausted")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker did not self-heal a leaked probe slot")
	}
}

func TestBreakerStateHook(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Window: 4, FailureRate: 0.5, MinSamples: 2, Cooldown: time.Second, HalfOpenProbes: 1})
	var transitions []BreakerState
	b.onState = func(s BreakerState) { transitions = append(transitions, s) }
	b.Record(false)
	b.Record(false) // trip
	clk.advance(1100 * time.Millisecond)
	b.Allow()      // half-open probe
	b.Record(true) // close
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

func TestBreakerOpenIgnoresStragglers(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 4, FailureRate: 0.5, MinSamples: 2, Cooldown: time.Minute})
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	// Stragglers from before the trip arrive late: no effect.
	b.Record(true)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after stragglers = %v, want open", got)
	}
}

func TestRingWalkDeterministicAndDistinct(t *testing.T) {
	r := newRing(5)
	a := r.walk("shard-3/render-key", 5)
	b := r.walk("shard-3/render-key", 5)
	if len(a) != 5 {
		t.Fatalf("walk returned %d workers, want 5", len(a))
	}
	seen := map[int]bool{}
	for i, w := range a {
		if w != b[i] {
			t.Fatalf("walk not deterministic: %v vs %v", a, b)
		}
		if w < 0 || w >= 5 {
			t.Fatalf("walk returned out-of-range worker %d", w)
		}
		if seen[w] {
			t.Fatalf("walk repeated worker %d: %v", w, a)
		}
		seen[w] = true
	}
	// max caps the walk.
	if got := r.walk("another-key", 2); len(got) != 2 {
		t.Fatalf("walk(max=2) returned %d workers", len(got))
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := newRing(4)
	first := map[int]int{}
	for i := 0; i < 256; i++ {
		w := r.walk(string(rune('a'+i%26))+"/key/"+string(rune('0'+i%10))+string(rune('A'+i%7)), 1)[0]
		first[w]++
	}
	for w := 0; w < 4; w++ {
		if first[w] == 0 {
			t.Fatalf("worker %d never preferred across 256 keys: %v", w, first)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := newBackoff(20*time.Millisecond, 200*time.Millisecond, 42)
	for attempt := 0; attempt < 8; attempt++ {
		full := 20 * time.Millisecond << uint(attempt)
		if full > 200*time.Millisecond || full <= 0 {
			full = 200 * time.Millisecond
		}
		for i := 0; i < 100; i++ {
			d := b.delay(attempt)
			if d < full/2 || d > full {
				t.Fatalf("delay(%d) = %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	a := newBackoff(20*time.Millisecond, time.Second, 7)
	b := newBackoff(20*time.Millisecond, time.Second, 7)
	for i := 0; i < 20; i++ {
		if da, db := a.delay(i%4), b.delay(i%4); da != db {
			t.Fatalf("same-seed backoffs diverged at %d: %v vs %v", i, da, db)
		}
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	l := newLatencyTracker(64)
	if got := l.quantile(0.95, 16, 150*time.Millisecond); got != 150*time.Millisecond {
		t.Fatalf("quantile below minSamples = %v, want fallback", got)
	}
	for i := 1; i <= 20; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	if got := l.quantile(0.95, 16, 0); got < 18*time.Millisecond || got > 20*time.Millisecond {
		t.Fatalf("p95 of 1..20ms = %v", got)
	}
	if got := l.quantile(0, 16, 0); got != time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms", got)
	}
}
