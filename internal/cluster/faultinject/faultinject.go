// Package faultinject is a deterministic fault-injection harness for HTTP
// clients: a RoundTripper wrapper that applies programmable per-host faults
// — added latency, transport errors, synthetic status codes, hangs, and
// seeded probabilistic failures — before (or instead of) forwarding to the
// real transport.
//
// Faults are scripted per destination host as a FIFO of Actions plus an
// optional default applied once the queue drains, so a test can express
// "fail twice, then recover", "hang forever", or "flap with probability p
// under seed s" and replay it exactly. The chaos suite in package cluster
// drives the coordinator's breakers, retries, and hedges through this
// transport against real in-process workers.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Action is one scripted fault. Fields compose in order: Delay first, then
// Hang, then Err / Status / FailProb; an all-zero Action passes the request
// through untouched.
type Action struct {
	// Delay sleeps before acting (cancelled cleanly by the request context).
	Delay time.Duration
	// Hang blocks until the request context ends, then returns its error —
	// a worker that accepts the connection and never answers.
	Hang bool
	// Err fails the round trip with a transport error.
	Err error
	// Status short-circuits with a synthetic empty response of this code
	// (e.g. 503 from a dying worker) without touching the real server.
	Status int
	// FailProb fails the round trip with probability FailProb using the
	// transport's seeded source — a flapping worker. Applied after Err and
	// Status.
	FailProb float64
	// Repeat stretches the action over 1+Repeat requests before the queue
	// advances (0 → the action applies once).
	Repeat int
}

// errInjected is the transport error produced by Status-less failures.
type errInjected struct{ host, kind string }

func (e *errInjected) Error() string {
	return fmt.Sprintf("faultinject: %s fault for %s", e.kind, e.host)
}

// Transport wraps an http.RoundTripper with scripted per-host faults. It is
// safe for concurrent use; with a fixed seed and a deterministic request
// order the produced fault sequence is reproducible.
type Transport struct {
	next http.RoundTripper

	mu       sync.Mutex
	rnd      *rand.Rand
	queues   map[string][]Action
	uses     map[string]int // requests served by the queue head so far
	defaults map[string]Action
	calls    map[string]int
}

// New wraps next (nil → http.DefaultTransport) with a fault script seeded
// for reproducible FailProb draws.
func New(next http.RoundTripper, seed int64) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{
		next:     next,
		rnd:      rand.New(rand.NewSource(seed)),
		queues:   make(map[string][]Action),
		uses:     make(map[string]int),
		defaults: make(map[string]Action),
		calls:    make(map[string]int),
	}
}

// Push appends actions to host's FIFO. Each queued action is consumed by
// 1+Repeat requests; once the queue drains the host's default applies.
func (t *Transport) Push(host string, actions ...Action) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queues[host] = append(t.queues[host], actions...)
}

// SetDefault sets the action applied to host once (and while) its queue is
// empty. The zero Action passes requests through.
func (t *Transport) SetDefault(host string, a Action) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.defaults[host] = a
}

// Reset clears every script and counter (the seeded source keeps its
// position).
func (t *Transport) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queues = make(map[string][]Action)
	t.uses = make(map[string]int)
	t.defaults = make(map[string]Action)
	t.calls = make(map[string]int)
}

// Calls reports how many round trips have been attempted against host
// (including ones that were failed or hung by the script).
func (t *Transport) Calls(host string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls[host]
}

// take pops the next action for host and draws any probabilistic decision
// under the lock, so concurrent requests consume the script in a serialized,
// reproducible order.
func (t *Transport) take(host string) (a Action, probFail bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls[host]++
	if q := t.queues[host]; len(q) > 0 {
		a = q[0]
		t.uses[host]++
		if t.uses[host] > a.Repeat {
			t.queues[host] = q[1:]
			t.uses[host] = 0
		}
	} else {
		a = t.defaults[host]
	}
	if a.FailProb > 0 {
		probFail = t.rnd.Float64() < a.FailProb
	}
	return a, probFail
}

// RoundTrip applies host's next scripted fault to req.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	a, probFail := t.take(host)
	ctx := req.Context()
	if a.Delay > 0 {
		if err := sleep(ctx, a.Delay); err != nil {
			return nil, err
		}
	}
	if a.Hang {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if a.Err != nil {
		return nil, a.Err
	}
	if a.Status != 0 {
		return &http.Response{
			StatusCode: a.Status,
			Status:     fmt.Sprintf("%d %s", a.Status, http.StatusText(a.Status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          http.NoBody,
			ContentLength: 0,
			Request:       req,
		}, nil
	}
	if probFail {
		return nil, &errInjected{host: host, kind: "flap"}
	}
	return t.next.RoundTrip(req)
}

func sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
