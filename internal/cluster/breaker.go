package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow; outcomes are sampled into the sliding
	// window and a high failure rate trips the breaker open.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; a bounded number of probe
	// requests test the worker. Probe failures reopen, enough probe
	// successes close.
	BreakerHalfOpen
	// BreakerOpen: requests are refused without touching the worker until
	// the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a per-worker circuit breaker. Zero fields take
// defaults.
type BreakerConfig struct {
	// Window is the sliding outcome window length (default 10 samples).
	Window int
	// FailureRate in [0,1] trips the breaker when at least MinSamples
	// outcomes are in the window and the failing fraction reaches it
	// (default 0.5).
	FailureRate float64
	// MinSamples is the minimum window occupancy before the rate can trip
	// (default 5), so one failed request on a fresh breaker doesn't open it.
	MinSamples int
	// Cooldown is how long the breaker stays open before probing
	// (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close a
	// half-open breaker (default 2). Probe concurrency is bounded to the
	// same number.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	return c
}

// breaker is a closed/half-open/open circuit breaker with failure-rate
// tripping over a count-based sliding window. It is safe for concurrent use;
// time is injected so tests are deterministic.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu            sync.Mutex
	state         BreakerState
	window        []bool // ring buffer of outcomes (true = failure)
	head, n       int
	openUntil     time.Time
	halfOpenSince time.Time
	probes        int // probes currently in flight
	probeOK       int // successful probes this half-open episode

	onState func(BreakerState) // optional transition hook (metrics)
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	cfg = cfg.withDefaults()
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg, now: now, window: make([]bool, cfg.Window)}
}

func (b *breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.onState != nil {
		b.onState(s)
	}
}

// State reports the breaker's current position (advancing open → half-open
// when the cooldown has elapsed).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

func (b *breaker) advanceLocked() {
	now := b.now()
	if b.state == BreakerOpen && !now.Before(b.openUntil) {
		b.setState(BreakerHalfOpen)
		b.probes, b.probeOK = 0, 0
		b.halfOpenSince = now
	}
	// Self-heal: a probe whose outcome was never recorded (e.g. the caller
	// vanished mid-probe) must not wedge the half-open state with no free
	// slots; after a full cooldown of silence the probe budget refreshes.
	if b.state == BreakerHalfOpen && now.Sub(b.halfOpenSince) >= b.cfg.Cooldown {
		b.probes, b.probeOK = 0, 0
		b.halfOpenSince = now
	}
}

// Allow reports whether a request may be sent to the worker right now. In
// the half-open state it admits at most HalfOpenProbes concurrent probes.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		return false
	default:
		return false
	}
}

// Record folds one definitive request outcome into the breaker. Outcomes
// cancelled for reasons unrelated to the worker (a hedge lost its race, the
// caller went away) must not be recorded.
func (b *breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			b.tripLocked()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			// Recovered: close with a clean window.
			b.head, b.n = 0, 0
			b.setState(BreakerClosed)
		}
	case BreakerClosed:
		b.window[b.head] = !success
		b.head = (b.head + 1) % len(b.window)
		if b.n < len(b.window) {
			b.n++
		}
		if b.n >= b.cfg.MinSamples {
			fails := 0
			for i := 0; i < b.n; i++ {
				if b.window[i] {
					fails++
				}
			}
			if float64(fails)/float64(b.n) >= b.cfg.FailureRate {
				b.tripLocked()
			}
		}
	default:
		// Open: a straggler from before the trip; nothing to update.
	}
}

func (b *breaker) tripLocked() {
	b.openUntil = b.now().Add(b.cfg.Cooldown)
	b.head, b.n = 0, 0
	b.setState(BreakerOpen)
}
