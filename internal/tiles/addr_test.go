package tiles

import (
	"math"
	"testing"

	quad "github.com/quadkdv/quad"
)

func TestCoordValidate(t *testing.T) {
	for _, tc := range []struct {
		c  Coord
		ok bool
	}{
		{Coord{0, 0, 0}, true},
		{Coord{1, 1, 1}, true},
		{Coord{3, 7, 0}, true},
		{Coord{-1, 0, 0}, false},
		{Coord{0, 1, 0}, false},
		{Coord{0, 0, 1}, false},
		{Coord{2, 4, 0}, false},
		{Coord{2, 0, -1}, false},
		{Coord{MaxZoom + 1, 0, 0}, false},
	} {
		if err := tc.c.Validate(0); (err == nil) != tc.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", tc.c, err, tc.ok)
		}
	}
	if err := (Coord{5, 0, 0}).Validate(4); err == nil {
		t.Error("zoom 5 admitted past maxZoom 4")
	}
}

// TestPixelRectTiling asserts the pixel rects of a zoom level tile the full
// raster exactly: disjoint, in-bounds, covering every pixel, with XYZ y=0 at
// the TOP of the raster.
func TestPixelRectTiling(t *testing.T) {
	const T = 64
	for z := 0; z <= 3; z++ {
		n := 1 << z
		covered := make([]bool, n*T*n*T)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				full, sub := (Coord{z, x, y}).PixelRect(T)
				if full.W != n*T || full.H != n*T {
					t.Fatalf("z%d full = %dx%d, want %d", z, full.W, full.H, n*T)
				}
				if sub.W() != T || sub.H() != T {
					t.Fatalf("z%d/%d/%d sub %v not %d square", z, x, y, sub, T)
				}
				for py := sub.Y0; py < sub.Y1; py++ {
					for px := sub.X0; px < sub.X1; px++ {
						i := py*full.W + px
						if covered[i] {
							t.Fatalf("z%d pixel (%d,%d) covered twice", z, px, py)
						}
						covered[i] = true
					}
				}
			}
		}
		for i, ok := range covered {
			if !ok {
				t.Fatalf("z%d pixel index %d uncovered", z, i)
			}
		}
		// XYZ row 0 must be the top of the raster (highest pixel rows).
		_, top := (Coord{z, 0, 0}).PixelRect(T)
		if top.Y1 != n*T {
			t.Fatalf("z%d tile y=0 ends at row %d, want top %d", z, top.Y1, n*T)
		}
	}
}

// TestBboxClamped asserts edge tiles end exactly on the window edges and
// adjacent tiles share edges.
func TestBboxClamped(t *testing.T) {
	win := quad.Window{MinX: -3, MinY: 1, MaxX: 5, MaxY: 11}
	for z := 0; z <= 4; z++ {
		n := 1 << z
		for _, c := range []Coord{{z, 0, 0}, {z, n - 1, n - 1}, {z, n / 2, n / 2}} {
			b := c.Bbox(win)
			if b.MaxX <= b.MinX || b.MaxY <= b.MinY {
				t.Fatalf("%v: degenerate bbox %+v", c, b)
			}
			if c.X == 0 && b.MinX != win.MinX {
				t.Fatalf("%v: west edge %g != %g", c, b.MinX, win.MinX)
			}
			if c.X == n-1 && b.MaxX != win.MaxX {
				t.Fatalf("%v: east edge %g != %g", c, b.MaxX, win.MaxX)
			}
			if c.Y == 0 && b.MaxY != win.MaxY {
				t.Fatalf("%v: north edge %g != %g", c, b.MaxY, win.MaxY)
			}
			if c.Y == n-1 && b.MinY != win.MinY {
				t.Fatalf("%v: south edge %g != %g", c, b.MinY, win.MinY)
			}
		}
		// Horizontal neighbors share their common edge bit-exactly.
		if n >= 2 {
			a, b := (Coord{z, 0, 0}).Bbox(win), (Coord{z, 1, 0}).Bbox(win)
			if math.Float64bits(a.MaxX) != math.Float64bits(b.MinX) {
				t.Fatalf("z%d seam: %g != %g", z, a.MaxX, b.MinX)
			}
		}
	}
}

func TestValidTileSize(t *testing.T) {
	for _, ok := range []int{64, 128, 256, 512, 1024} {
		if err := ValidTileSize(ok); err != nil {
			t.Errorf("ValidTileSize(%d) = %v", ok, err)
		}
	}
	for _, bad := range []int{0, -256, 32, 100, 300, 2048, 96} {
		if err := ValidTileSize(bad); err == nil {
			t.Errorf("ValidTileSize(%d) accepted", bad)
		}
	}
}
