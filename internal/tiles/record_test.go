package tiles

import (
	"bytes"
	"errors"
	"testing"
)

func mustEncode(t *testing.T, r Record) []byte {
	t.Helper()
	b, err := AppendRecord(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range []Record{
		{X: 0, Y: 0, Payload: nil},
		{X: 3, Y: 7, Payload: []byte("png bytes")},
		{X: 1<<32 - 1, Y: 42, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	} {
		enc := mustEncode(t, r)
		got, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode(%v): %v", r, err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d", n, len(enc))
		}
		if got.X != r.X || got.Y != r.Y || !bytes.Equal(got.Payload, r.Payload) {
			t.Fatalf("round trip: got %v want %v", got, r)
		}
	}
}

// TestRecordSequence asserts back-to-back records decode in order — the
// store's scan loop.
func TestRecordSequence(t *testing.T) {
	var log []byte
	recs := []Record{
		{X: 0, Y: 0, Payload: []byte("a")},
		{X: 1, Y: 0, Payload: []byte("bb")},
		{X: 0, Y: 1, Payload: []byte("ccc")},
	}
	for _, r := range recs {
		var err error
		log, err = AppendRecord(log, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(log[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.X != want.X || got.Y != want.Y || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d: got %v want %v", i, got, want)
		}
		off += n
	}
	if off != len(log) {
		t.Fatalf("scan left %d bytes", len(log)-off)
	}
}

// TestRecordTruncation asserts every proper prefix of a record decodes as
// ErrTruncated — the crash-recovery classification.
func TestRecordTruncation(t *testing.T) {
	enc := mustEncode(t, Record{X: 5, Y: 9, Payload: []byte("payload bytes here")})
	for cut := 0; cut < len(enc); cut++ {
		_, _, err := DecodeRecord(enc[:cut])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTruncated", cut, len(enc), err)
		}
	}
}

// TestRecordCorruption asserts flipped bytes classify as ErrCorrupt, not
// ErrTruncated and not a bogus success.
func TestRecordCorruption(t *testing.T) {
	enc := mustEncode(t, Record{X: 5, Y: 9, Payload: []byte("payload bytes here")})
	for _, pos := range []int{0, 3, 5, 13, 17, recordHeaderSize + 2, len(enc) - 1} {
		bad := bytes.Clone(enc)
		bad[pos] ^= 0xFF
		if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", pos, err)
		}
	}
	// Garbage that shares no prefix with a record.
	if _, _, err := DecodeRecord([]byte("not a record at all......")); !errors.Is(err, ErrCorrupt) {
		t.Fatal("garbage accepted")
	}
	// A short fragment that already disagrees with the magic is corrupt,
	// not truncated.
	if _, _, err := DecodeRecord([]byte{'X'}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bad one-byte fragment not corrupt")
	}
	// A short fragment consistent with the magic is truncated.
	if _, _, err := DecodeRecord([]byte{'K', 'D'}); !errors.Is(err, ErrTruncated) {
		t.Fatal("valid two-byte prefix not truncated")
	}
}

func TestRecordPayloadBound(t *testing.T) {
	if _, err := AppendRecord(nil, Record{Payload: make([]byte, MaxPayload+1)}); err == nil {
		t.Fatal("oversized payload encoded")
	}
}

// FuzzTileRecord fuzzes the decode path (arbitrary bytes never panic,
// errors are always one of the two classes) and, when the input happens to
// decode, re-encodes and checks the round trip is exact.
func FuzzTileRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("KDT1"))
	f.Add([]byte("not a record"))
	whole, _ := AppendRecord(nil, Record{X: 2, Y: 3, Payload: []byte("seed tile payload")})
	f.Add(whole)
	f.Add(whole[:len(whole)-3])
	f.Add(whole[:recordHeaderSize-1])
	two, _ := AppendRecord(whole, Record{X: 9, Y: 1, Payload: nil})
	f.Add(two)
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decoded length %d out of [1, %d]", n, len(b))
		}
		enc, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record: %v", err)
		}
		if !bytes.Equal(enc, b[:n]) {
			t.Fatalf("re-encode differs from input bytes")
		}
		// Truncation at every offset of the decoded record must stay a
		// clean prefix error, never a panic or success.
		for cut := 0; cut < n; cut++ {
			if _, _, err := DecodeRecord(b[:cut]); err == nil {
				t.Fatalf("proper prefix %d/%d decoded successfully", cut, n)
			}
		}
	})
}
