package tiles

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/quadkdv/quad/internal/telemetry"
)

func testMetrics() *Metrics { return NewMetrics(telemetry.NewRegistry()) }

func TestStorePutGet(t *testing.T) {
	s := OpenStore(t.TempDir(), nil)
	defer s.Close()
	c := Coord{Z: 2, X: 1, Y: 3}
	if _, ok := s.Get("ts", c); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put("ts", c, []byte("tile png")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("ts", c)
	if !ok || !bytes.Equal(got, []byte("tile png")) {
		t.Fatalf("get = %q, %v", got, ok)
	}
	// Distinct tilesets are distinct namespaces.
	if _, ok := s.Get("other", c); ok {
		t.Fatal("cross-tileset hit")
	}
	// Re-put wins.
	if err := s.Put("ts", c, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("ts", c); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after re-put: %q", got)
	}
	if n := s.Len("ts", 2); n != 1 {
		t.Fatalf("Len = %d, want 1 (last record wins)", n)
	}
}

// TestStoreRestart asserts a fresh store over the same directory serves
// what the old one wrote — the persistence contract behind restart-warm
// serving.
func TestStoreRestart(t *testing.T) {
	dir := t.TempDir()
	s := OpenStore(dir, nil)
	c := Coord{Z: 1, X: 0, Y: 1}
	if err := s.Put("ts", c, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := OpenStore(dir, nil)
	defer s2.Close()
	got, ok := s2.Get("ts", c)
	if !ok || !bytes.Equal(got, []byte("persisted")) {
		t.Fatalf("restart get = %q, %v", got, ok)
	}
}

// findLog locates the single z-level log file the store created.
func findLog(t *testing.T, dir string) string {
	t.Helper()
	var path string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			path = p
		}
		return err
	})
	if err != nil || path == "" {
		t.Fatalf("no log file under %s (err %v)", dir, err)
	}
	return path
}

// TestStoreTornTail simulates a crash mid-append: the log loses its last
// bytes. Reopening must recover the valid prefix, count the recovery in
// kdv_tiles_store_corrupt_total, serve surviving tiles, treat the torn one
// as a miss, and accept new appends.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s := OpenStore(dir, nil)
	a, b := Coord{Z: 3, X: 1, Y: 1}, Coord{Z: 3, X: 2, Y: 5}
	if err := s.Put("ts", a, []byte("first, survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ts", b, []byte("second, torn")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := findLog(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Each cut stays inside the tail record (header 20 + payload 12 + crc 4
	// = 36 bytes): mid-CRC, mid-payload, and mid-header tears.
	for _, cut := range []int{1, 3, 9, 30} {
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m := testMetrics()
		s2 := OpenStore(dir, m)
		if got, ok := s2.Get("ts", a); !ok || !bytes.Equal(got, []byte("first, survives")) {
			t.Fatalf("cut %d: surviving tile lost: %q, %v", cut, got, ok)
		}
		if _, ok := s2.Get("ts", b); ok {
			t.Fatalf("cut %d: torn tile served", cut)
		}
		if n := m.StoreCorrupt.Value(); n != 1 {
			t.Fatalf("cut %d: corrupt counter = %d, want 1", cut, n)
		}
		// The store keeps working after recovery.
		if err := s2.Put("ts", b, []byte("rebuilt")); err != nil {
			t.Fatalf("cut %d: put after recovery: %v", cut, err)
		}
		if got, ok := s2.Get("ts", b); !ok || !bytes.Equal(got, []byte("rebuilt")) {
			t.Fatalf("cut %d: rebuilt tile: %q, %v", cut, got, ok)
		}
		s2.Close()
	}
}

// TestStoreCorruptTail flips bytes in the tail record (not just truncates):
// recovery drops it, keeps the prefix, counts the event.
func TestStoreCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s := OpenStore(dir, nil)
	a, b := Coord{Z: 2, X: 0, Y: 0}, Coord{Z: 2, X: 3, Y: 3}
	if err := s.Put("ts", a, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ts", b, []byte("rot")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := findLog(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF // inside the tail record's payload CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m := testMetrics()
	s2 := OpenStore(dir, m)
	defer s2.Close()
	if got, ok := s2.Get("ts", a); !ok || !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("prefix tile lost: %q, %v", got, ok)
	}
	if _, ok := s2.Get("ts", b); ok {
		t.Fatal("corrupt tile served")
	}
	if n := m.StoreCorrupt.Value(); n != 1 {
		t.Fatalf("corrupt counter = %d, want 1", n)
	}
}

// TestStoreEmptyAndMissing: a missing directory or empty log is a clean
// all-miss store, not an error.
func TestStoreEmptyAndMissing(t *testing.T) {
	s := OpenStore(filepath.Join(t.TempDir(), "does", "not", "exist"), nil)
	defer s.Close()
	if _, ok := s.Get("ts", Coord{}); ok {
		t.Fatal("hit on missing dir")
	}
	if err := s.Put("ts", Coord{}, []byte("x")); err != nil {
		t.Fatalf("put creates dirs: %v", err)
	}
}

func TestSanitizeTileset(t *testing.T) {
	a := sanitizeTileset("crime/100k/7/epan/quad/eps=0.05/t=256")
	b := sanitizeTileset("crime_100k/7/epan/quad/eps=0.05/t=256")
	if a == b {
		t.Fatalf("distinct tilesets collide: %s", a)
	}
	if filepath.Base(a) != a || filepath.IsAbs(a) {
		t.Fatalf("sanitized name %q escapes its directory", a)
	}
}
