package tiles

import (
	"container/list"
	"sync"
)

// Tile is a finished, servable tile: the encoded PNG and its strong ETag
// (derived from the content hash, so it is stable across processes and
// restarts). Both caches levels traffic in Tiles — disk stores the PNG and
// recomputes the ETag on load, memory keeps both.
type Tile struct {
	PNG  []byte
	ETag string
}

// lruOverhead approximates the per-entry bookkeeping cost (list element,
// map entry, key, ETag) charged on top of the PNG bytes.
const lruOverhead = 160

// LRU is a byte-bounded least-recently-used cache of finished tiles. It is
// deliberately tiny: the disk store is the durable level, so eviction here
// costs one re-read, not one re-render.
type LRU struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List
	items map[string]*list.Element
	m     *Metrics
}

type lruEntry struct {
	key  string
	tile *Tile
	cost int64
}

// NewLRU returns a cache bounded at maxBytes (minimum one entry is always
// admitted). m may be nil.
func NewLRU(maxBytes int64, m *Metrics) *LRU {
	return &LRU{max: maxBytes, ll: list.New(), items: make(map[string]*list.Element), m: m}
}

// Get returns the cached tile and marks it most recently used.
func (c *LRU) Get(key string) (*Tile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).tile, true
}

// Add inserts (or refreshes) a tile and evicts from the cold end until the
// byte bound holds again. A tile larger than the whole bound is still
// admitted alone — the bound is a target, not a correctness line.
func (c *LRU) Add(key string, t *Tile) {
	cost := int64(len(t.PNG)) + lruOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*lruEntry)
		c.size += cost - old.cost
		old.tile, old.cost = t, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, tile: t, cost: cost})
		c.size += cost
	}
	for c.size > c.max && c.ll.Len() > 1 {
		el := c.ll.Back()
		e := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.size -= e.cost
	}
	c.m.memEntries().Set(int64(c.ll.Len()))
	c.m.memBytes().Set(c.size)
}

// Len returns the resident entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident byte estimate.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
