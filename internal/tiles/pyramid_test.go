package tiles

import (
	"bytes"
	"context"
	"sync"
	"testing"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
)

func testKDV(t *testing.T) *quad.KDV {
	t.Helper()
	pts, err := dataset.Generate("crime", 800, 11)
	if err != nil {
		t.Fatal(err)
	}
	pts = dataset.First2D(pts)
	k, err := quad.New(pts.Coords, pts.Dim)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testPyramid(t *testing.T, dir string, m *Metrics) *Pyramid {
	t.Helper()
	var store *Store
	if dir != "" {
		store = OpenStore(dir, m)
		t.Cleanup(func() { store.Close() })
	}
	p, err := NewPyramid(context.Background(), PyramidConfig{
		Tileset:  "crime/800/11/epan/quad/eps=0.05/t=64/log",
		KDV:      testKDV(t),
		Eps:      0.05,
		TileSize: 64,
		MaxZoom:  4,
		LogScale: true,
		Store:    store,
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPyramidLevels walks a tile through the cache levels: build on first
// touch, memory on the second, disk after the memory level is dropped.
func TestPyramidLevels(t *testing.T) {
	m := testMetrics()
	dir := t.TempDir()
	p := testPyramid(t, dir, m)
	c := Coord{Z: 1, X: 0, Y: 1}

	t1, src, err := p.Tile(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if src != "build" {
		t.Fatalf("first touch source = %q, want build", src)
	}
	if len(t1.PNG) == 0 || t1.ETag == "" {
		t.Fatal("empty tile")
	}
	t2, src, err := p.Tile(context.Background(), c)
	if err != nil || src != "memory" {
		t.Fatalf("second touch = %q, %v; want memory", src, err)
	}
	if !bytes.Equal(t1.PNG, t2.PNG) || t1.ETag != t2.ETag {
		t.Fatal("memory tile differs from built tile")
	}
	// Drop the memory level; the disk store must answer without a rebuild.
	p.lru = NewLRU(1<<20, m)
	builds := m.BuildsOK.Value()
	t3, src, err := p.Tile(context.Background(), c)
	if err != nil || src != "disk" {
		t.Fatalf("after memory drop = %q, %v; want disk", src, err)
	}
	if !bytes.Equal(t1.PNG, t3.PNG) || t1.ETag != t3.ETag {
		t.Fatal("disk tile differs from built tile")
	}
	if m.BuildsOK.Value() != builds {
		t.Fatal("disk hit triggered a rebuild")
	}
	if m.MemHits.Value() != 1 || m.DiskHits.Value() != 1 || m.Misses.Value() != 1 {
		t.Fatalf("counters mem=%d disk=%d miss=%d, want 1/1/1",
			m.MemHits.Value(), m.DiskHits.Value(), m.Misses.Value())
	}
}

// TestPyramidETagAcrossRestart asserts the ETag is purely content-derived:
// a fresh pyramid over the same directory serves the same bytes and the
// same ETag without rebuilding.
func TestPyramidETagAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c := Coord{Z: 2, X: 1, Y: 2}
	p1 := testPyramid(t, dir, nil)
	t1, _, err := p1.Tile(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	m := testMetrics()
	p2 := testPyramid(t, dir, m)
	t2, src, err := p2.Tile(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if src != "disk" {
		t.Fatalf("restart source = %q, want disk", src)
	}
	if t1.ETag != t2.ETag || !bytes.Equal(t1.PNG, t2.PNG) {
		t.Fatalf("restart changed tile: etag %s vs %s", t1.ETag, t2.ETag)
	}
}

// TestPyramidSingleflight asserts concurrent first touches of one tile
// coalesce onto one build.
func TestPyramidSingleflight(t *testing.T) {
	m := testMetrics()
	p := testPyramid(t, "", m)
	c := Coord{Z: 3, X: 5, Y: 2}
	const N = 8
	var wg sync.WaitGroup
	tiles := make([]*Tile, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tiles[i], _, errs[i] = p.Tile(context.Background(), c)
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if tiles[i].ETag != tiles[0].ETag {
			t.Fatalf("waiter %d got a different tile", i)
		}
	}
	// One build for this coord (the base tile build is counted too).
	if misses := m.Misses.Value(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

// TestPyramidValidation rejects out-of-pyramid coordinates and bad sizes.
func TestPyramidValidation(t *testing.T) {
	p := testPyramid(t, "", nil)
	for _, c := range []Coord{{Z: -1}, {Z: 5}, {Z: 1, X: 2}, {Z: 1, Y: -1}} {
		if _, _, err := p.Tile(context.Background(), c); err == nil {
			t.Fatalf("coord %v accepted", c)
		}
	}
	if _, err := NewPyramid(context.Background(), PyramidConfig{
		Tileset: "x", KDV: testKDV(t), Eps: 0.05, TileSize: 100,
	}); err == nil {
		t.Fatal("tile size 100 accepted")
	}
}

// TestPyramidWarm precomputes zooms 0–1 and asserts they serve from cache
// afterwards.
func TestPyramidWarm(t *testing.T) {
	m := testMetrics()
	dir := t.TempDir()
	p := testPyramid(t, dir, m)
	n, err := p.Warm(context.Background(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1+4 {
		t.Fatalf("warmed %d tiles, want 5", n)
	}
	builds := m.BuildsOK.Value()
	for _, c := range []Coord{{0, 0, 0}, {1, 0, 0}, {1, 1, 1}} {
		if _, src, err := p.Tile(context.Background(), c); err != nil || src == "build" {
			t.Fatalf("tile %v after warm: src=%q err=%v", c, src, err)
		}
	}
	if m.BuildsOK.Value() != builds {
		t.Fatal("warm did not stick")
	}
}
