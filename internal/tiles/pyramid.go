package tiles

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/render"
	"github.com/quadkdv/quad/internal/trace"
)

// Pyramid serves one tileset — one (dataset, build options, ε, tile size,
// color scale) combination — as an XYZ pyramid over the dataset's default
// window. Lookups walk memory → disk → build; builds render the tile
// through the engine's sub-rect entry point, run detached from the
// initiating request (singleflight waiters and the cache get the finished
// tile even if the first requester disconnects), and land in both cache
// levels.
//
// Color normalization is fixed at construction from the zoom-0 base render
// (its min/max): every tile of the pyramid is colored against that one
// scale, so tiles agree at seams and match a full-render crop byte for
// byte. Higher zooms can resolve densities above the base maximum; those
// clamp to the ramp's top, exactly as the full render at that zoom would
// under the same fixed scale.
type Pyramid struct {
	tileset  string
	k        *quad.KDV
	eps      float64
	tileSize int
	maxZoom  int
	logScale bool
	lo, hi   float64
	win      quad.Window

	store *Store // may be nil: memory-only pyramid
	lru   *LRU
	m     *Metrics

	// OnStats, when set, receives each tile build's render counters (the
	// serve layer folds them into the kdv_render_* work metrics).
	OnStats func(quad.RenderStats)

	// OnBuilt, when set, receives each freshly rendered tile's raster before
	// it is encoded — the shadow-audit hook. The DensityMap is the tile's
	// own sub-raster; its window is the tile bbox, and the full-pyramid
	// pixel geometry is recoverable from the Coord and the tile size. The
	// context is the build's (carrying the initiating request's trace).
	OnBuilt func(ctx context.Context, c Coord, dm *quad.DensityMap)

	mu       sync.Mutex
	building map[Coord]*tileCall
}

type tileCall struct {
	done chan struct{}
	tile *Tile
	err  error
}

// PyramidConfig configures NewPyramid.
type PyramidConfig struct {
	// Tileset is the pyramid's identity — the cache key prefix on disk and
	// in memory. It MUST encode everything the tile bytes depend on
	// (dataset, n, seed, kernel, method, ε, tile size, color scale), so
	// that changing any option addresses a different tileset instead of
	// serving stale tiles.
	Tileset  string
	KDV      *quad.KDV
	Eps      float64
	TileSize int
	MaxZoom  int  // ≤ 0 means MaxZoom
	LogScale bool // log1p color ramp (the usual KDV choice)
	Store    *Store
	LRU      *LRU
	Metrics  *Metrics
}

// NewPyramid builds the pyramid, rendering the zoom-0 base tile to fix the
// color scale (the base tile itself is cached, so the work is not wasted).
func NewPyramid(ctx context.Context, cfg PyramidConfig) (*Pyramid, error) {
	if cfg.KDV == nil {
		return nil, fmt.Errorf("tiles: nil KDV")
	}
	if err := ValidTileSize(cfg.TileSize); err != nil {
		return nil, err
	}
	if cfg.Eps < 0 {
		return nil, fmt.Errorf("tiles: negative eps %g", cfg.Eps)
	}
	if cfg.LRU == nil {
		cfg.LRU = NewLRU(64<<20, cfg.Metrics)
	}
	win, err := cfg.KDV.DefaultWindow()
	if err != nil {
		return nil, err
	}
	p := &Pyramid{
		tileset:  cfg.Tileset,
		k:        cfg.KDV,
		eps:      cfg.Eps,
		tileSize: cfg.TileSize,
		maxZoom:  cfg.MaxZoom,
		logScale: cfg.LogScale,
		win:      win,
		store:    cfg.Store,
		lru:      cfg.LRU,
		m:        cfg.Metrics,
		building: make(map[Coord]*tileCall),
	}
	// The zoom-0 render fixes the scale. Its values are also tile 0/0/0,
	// which buildTile would otherwise re-render first thing.
	base := Coord{}
	full, sub := base.PixelRect(p.tileSize)
	dm, st, err := p.k.RenderEpsSubStatsInCtx(ctx, quad.Resolution{W: full.W, H: full.H}, p.eps, quad.Window{}, sub)
	if err != nil {
		return nil, fmt.Errorf("tiles: base render: %w", err)
	}
	if p.OnStats != nil {
		p.OnStats(st)
	}
	v := &grid.Values{Res: grid.Resolution{W: dm.Res.W, H: dm.Res.H}, Data: dm.Values}
	p.lo, p.hi = v.MinMax()
	if _, err := p.encodeAndStore(ctx, base, v); err != nil {
		return nil, fmt.Errorf("tiles: base tile encode: %w", err)
	}
	return p, nil
}

// Tileset returns the pyramid's identity key.
func (p *Pyramid) Tileset() string { return p.tileset }

// TileSize returns the tile edge in pixels.
func (p *Pyramid) TileSize() int { return p.tileSize }

// Window returns the data-space window the pyramid is addressed against.
func (p *Pyramid) Window() quad.Window { return p.win }

// ScaleBounds returns the fixed color normalization [lo, hi].
func (p *Pyramid) ScaleBounds() (lo, hi float64) { return p.lo, p.hi }

// ETagFor computes the strong validator for a tile's bytes: a quoted
// content hash. Purely content-derived, so it is stable across processes,
// restarts, and cache levels.
func ETagFor(png []byte) string {
	sum := sha256.Sum256(png)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

func (p *Pyramid) lruKey(c Coord) string { return p.tileset + "|" + c.String() }

// Tile returns the tile at c, serving from memory, then disk, then a
// (coalesced, detached) build. source reports which level answered:
// "memory", "disk", "build", or "coalesced".
func (p *Pyramid) Tile(ctx context.Context, c Coord) (t *Tile, source string, err error) {
	if err := c.Validate(p.maxZoom); err != nil {
		return nil, "", err
	}
	sp, ctx := trace.StartSpan(ctx, "tiles.lookup")
	sp.SetAttrs(trace.Str("tile", c.String()), trace.Str("tileset", p.tileset))
	defer func() {
		sp.SetAttrs(trace.Str("source", source))
		sp.End()
	}()

	key := p.lruKey(c)
	if t, ok := p.lru.Get(key); ok {
		p.m.memHit().Inc()
		return t, "memory", nil
	}
	if p.store != nil {
		if png, ok := p.store.Get(p.tileset, c); ok {
			p.m.diskHit().Inc()
			t := &Tile{PNG: png, ETag: ETagFor(png)}
			p.lru.Add(key, t)
			return t, "disk", nil
		}
	}

	p.mu.Lock()
	if call, ok := p.building[c]; ok {
		p.mu.Unlock()
		p.m.coalesced().Inc()
		select {
		case <-call.done:
			return call.tile, "coalesced", call.err
		case <-ctx.Done():
			return nil, "coalesced", ctx.Err()
		}
	}
	call := &tileCall{done: make(chan struct{})}
	p.building[c] = call
	p.mu.Unlock()
	p.m.miss().Inc()

	// Detached build (same rationale as the KDV build cache): the render
	// outlives the initiating request, so coalesced waiters and the caches
	// get the tile even if the first requester gives up. The initiator's
	// trace rides along so the build span lands on the right request.
	buildCtx := trace.NewContext(context.Background(), trace.FromContext(ctx))
	buildCtx = trace.ContextWithSpan(buildCtx, sp)
	go func() {
		tile, err := p.buildTile(buildCtx, c)
		p.mu.Lock()
		delete(p.building, c)
		p.mu.Unlock()
		call.tile, call.err = tile, err
		close(call.done)
	}()
	select {
	case <-call.done:
		return call.tile, "build", call.err
	case <-ctx.Done():
		return nil, "build", ctx.Err()
	}
}

// buildTile renders, encodes, and stores one tile.
func (p *Pyramid) buildTile(ctx context.Context, c Coord) (*Tile, error) {
	sp, ctx := trace.StartSpan(ctx, "tiles.build")
	sp.SetAttrs(trace.Str("tile", c.String()))
	start := time.Now()
	full, sub := c.PixelRect(p.tileSize)
	dm, st, err := p.k.RenderEpsSubStatsInCtx(ctx, quad.Resolution{W: full.W, H: full.H}, p.eps, quad.Window{}, sub)
	if err != nil {
		p.m.buildsErr().Inc()
		sp.SetAttrs(trace.Str("error", err.Error()))
		sp.End()
		return nil, err
	}
	if p.OnStats != nil {
		p.OnStats(st)
	}
	if p.OnBuilt != nil {
		p.OnBuilt(ctx, c, dm)
	}
	v := &grid.Values{Res: grid.Resolution{W: dm.Res.W, H: dm.Res.H}, Data: dm.Values}
	tile, err := p.encodeAndStore(ctx, c, v)
	if err != nil {
		p.m.buildsErr().Inc()
		sp.SetAttrs(trace.Str("error", err.Error()))
		sp.End()
		return nil, err
	}
	p.m.buildsOK().Inc()
	p.m.buildSeconds().ObserveDuration(time.Since(start))
	sp.End()
	return tile, nil
}

// encodeAndStore colors the values with the pyramid's fixed scale, encodes
// the PNG, and inserts the tile into both cache levels. A disk write
// failure is logged into the error but the tile still serves from memory —
// persistence is an optimization, not a correctness dependency — so the
// error is returned only when encoding itself fails.
func (p *Pyramid) encodeAndStore(ctx context.Context, c Coord, v *grid.Values) (*Tile, error) {
	scale := render.Linear
	if p.logScale {
		scale = render.Log
	}
	var buf bytes.Buffer
	if err := render.EncodePNG(&buf, render.HeatmapFixed(v, p.lo, p.hi, scale)); err != nil {
		return nil, err
	}
	png := buf.Bytes()
	tile := &Tile{PNG: png, ETag: ETagFor(png)}
	if p.store != nil {
		sp, _ := trace.StartSpan(ctx, "tiles.store")
		sp.SetAttrs(trace.Str("tile", c.String()))
		_ = p.store.Put(p.tileset, c, png)
		sp.End()
	}
	p.lru.Add(p.lruKey(c), tile)
	return tile, nil
}

// Warm renders every tile of the given zoom levels that is not already on
// disk or in memory — the boot-time precomputation of the hot low-zoom
// levels. It stops early when ctx is cancelled and returns the number of
// tiles now resident for those zooms.
func (p *Pyramid) Warm(ctx context.Context, zooms []int) (int, error) {
	resident := 0
	for _, z := range zooms {
		if z < 0 {
			continue
		}
		n := 1 << z
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if err := ctx.Err(); err != nil {
					return resident, err
				}
				if _, _, err := p.Tile(ctx, Coord{Z: z, X: x, Y: y}); err != nil {
					return resident, err
				}
				resident++
			}
		}
	}
	return resident, nil
}
