package tiles

import "github.com/quadkdv/quad/internal/telemetry"

// Metrics is the tile subsystem's metric surface, the kdv_tiles_* families.
// A nil *Metrics records nothing (every telemetry recorder is nil-safe), so
// tests and embedded uses can pass nil.
type Metrics struct {
	// Lookup outcomes: which cache level answered, or neither (a build).
	MemHits     *telemetry.Counter
	DiskHits    *telemetry.Counter
	Misses      *telemetry.Counter
	Coalesced   *telemetry.Counter
	NotModified *telemetry.Counter

	// Build outcomes and latency.
	BuildsOK     *telemetry.Counter
	BuildsErr    *telemetry.Counter
	BuildSeconds *telemetry.Histogram

	// Persistent store health.
	StoreWrites  *telemetry.Counter
	StoreCorrupt *telemetry.Counter
	StoreBytes   *telemetry.Gauge

	// In-memory LRU residency.
	MemEntries *telemetry.Gauge
	MemBytes   *telemetry.Gauge
}

// NewMetrics registers the kdv_tiles_* families on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		MemHits: reg.Counter("kdv_tiles_hits_total",
			"Tile lookups answered from cache, by level.", telemetry.L("level", "memory")),
		DiskHits: reg.Counter("kdv_tiles_hits_total",
			"Tile lookups answered from cache, by level.", telemetry.L("level", "disk")),
		Misses: reg.Counter("kdv_tiles_misses_total",
			"Tile lookups that missed both cache levels and started a build."),
		Coalesced: reg.Counter("kdv_tiles_coalesced_total",
			"Tile lookups that waited on another request's in-flight build (singleflight)."),
		NotModified: reg.Counter("kdv_tiles_not_modified_total",
			"Tile requests answered 304 via If-None-Match."),
		BuildsOK: reg.Counter("kdv_tiles_builds_total",
			"Tile builds, by outcome.", telemetry.L("outcome", "ok")),
		BuildsErr: reg.Counter("kdv_tiles_builds_total",
			"Tile builds, by outcome.", telemetry.L("outcome", "error")),
		BuildSeconds: reg.Histogram("kdv_tiles_build_seconds",
			"Wall time of a tile build (render + encode + store).", telemetry.DurationBuckets),
		StoreWrites: reg.Counter("kdv_tiles_store_writes_total",
			"Tile records appended to the persistent store."),
		StoreCorrupt: reg.Counter("kdv_tiles_store_corrupt_total",
			"Tile store recoveries: truncated or corrupt log tails dropped at open."),
		StoreBytes: reg.Gauge("kdv_tiles_store_bytes",
			"Bytes resident in open persistent tile logs."),
		MemEntries: reg.Gauge("kdv_tiles_memory_entries",
			"Tiles resident in the in-memory cache."),
		MemBytes: reg.Gauge("kdv_tiles_memory_bytes",
			"Bytes resident in the in-memory tile cache."),
	}
}

func (m *Metrics) memHit() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.MemHits
}

func (m *Metrics) diskHit() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.DiskHits
}

func (m *Metrics) miss() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.Misses
}

func (m *Metrics) coalesced() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.Coalesced
}

func (m *Metrics) buildsOK() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.BuildsOK
}

func (m *Metrics) buildsErr() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.BuildsErr
}

func (m *Metrics) buildSeconds() *telemetry.Histogram {
	if m == nil {
		return nil
	}
	return m.BuildSeconds
}

func (m *Metrics) storeWrites() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.StoreWrites
}

func (m *Metrics) storeCorrupt() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.StoreCorrupt
}

func (m *Metrics) storeBytes() *telemetry.Gauge {
	if m == nil {
		return nil
	}
	return m.StoreBytes
}

func (m *Metrics) memEntries() *telemetry.Gauge {
	if m == nil {
		return nil
	}
	return m.MemEntries
}

func (m *Metrics) memBytes() *telemetry.Gauge {
	if m == nil {
		return nil
	}
	return m.MemBytes
}
