// Package tiles is the slippy-map XYZ tile subsystem: tile addressing over
// a dataset's data-space extent, per-tile renders through the quad engine,
// and a two-level cache — an in-memory LRU in front of a crash-safe,
// disk-persistent append-only tile store — behind the server's
// GET /tiles/{dataset}/{z}/{x}/{y}.png endpoint.
//
// Addressing follows the standard XYZ scheme: zoom z divides the dataset's
// default render window (bounding box plus margin) into a 2^z × 2^z
// power-of-two pyramid of tiles, x growing east from the window's west
// edge, y growing SOUTH from the window's NORTH edge (the slippy-map
// convention, the opposite of the raster's lower-left pixel origin). Each
// tile is a T×T pixel crop of the conceptual (T·2^z)² raster over the full
// window, rendered through quad's sub-rect entry point — so a stitched
// mosaic of any zoom level is bit-identical (Float64bits) to one full-bbox
// render at that zoom's resolution, which the conformance suite asserts for
// every bound method.
//
// Tiles are colored with a normalization fixed per pyramid (derived from
// the zoom-0 base render), not per tile — adjacent tiles must agree at
// their seams, and the fixed scale is also what makes a tile PNG
// byte-identical to the same crop of a full render encoded with that scale.
package tiles

import (
	"fmt"

	quad "github.com/quadkdv/quad"
)

// MaxZoom bounds the pyramid depth the subsystem will address. At zoom 20
// with 256-px tiles the conceptual raster is 2^28 pixels square — far past
// any realistic dataset's usable depth, but the math (int pixel indices)
// stays exact well beyond it.
const MaxZoom = 20

// Coord addresses one tile: zoom z, column x (west→east), row y
// (north→south, the XYZ slippy-map convention).
type Coord struct {
	Z, X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("%d/%d/%d", c.Z, c.X, c.Y) }

// Validate checks the coordinate lies inside the pyramid: 0 ≤ z ≤ maxZoom
// (MaxZoom when maxZoom ≤ 0) and 0 ≤ x, y < 2^z.
func (c Coord) Validate(maxZoom int) error {
	if maxZoom <= 0 || maxZoom > MaxZoom {
		maxZoom = MaxZoom
	}
	if c.Z < 0 || c.Z > maxZoom {
		return fmt.Errorf("tiles: zoom %d out of range [0, %d]", c.Z, maxZoom)
	}
	n := 1 << c.Z
	if c.X < 0 || c.X >= n || c.Y < 0 || c.Y >= n {
		return fmt.Errorf("tiles: tile %s outside the 2^%d pyramid", c, c.Z)
	}
	return nil
}

// PixelRect maps the tile onto the conceptual full raster at its zoom for
// tile edge t: the full resolution (t·2^z square) and the tile's pixel
// sub-rectangle in the raster's lower-left-origin coordinates. The XYZ y
// axis grows south, the raster's grows north, so row y occupies the pixel
// rows [(2^z−1−y)·t, (2^z−y)·t).
func (c Coord) PixelRect(t int) (full quad.Resolution, sub quad.PixelRect) {
	n := 1 << c.Z
	full = quad.Resolution{W: n * t, H: n * t}
	sub = quad.PixelRect{
		X0: c.X * t,
		X1: (c.X + 1) * t,
		Y0: (n - 1 - c.Y) * t,
		Y1: (n - c.Y) * t,
	}
	return full, sub
}

// Bbox returns the tile's data-space bounding box over the pyramid window:
// the window divided into 2^z equal spans per axis, clamped so edge tiles
// end exactly on the window's edges. This is the human-readable form of the
// addressing (response headers, docs); renders use PixelRect, whose pixel
// mapping is the bit-exact contract.
func (c Coord) Bbox(win quad.Window) quad.Window {
	n := float64(int(1) << c.Z)
	spanX := (win.MaxX - win.MinX) / n
	spanY := (win.MaxY - win.MinY) / n
	out := quad.Window{
		MinX: win.MinX + float64(c.X)*spanX,
		MaxX: win.MinX + float64(c.X+1)*spanX,
		// XYZ y counts from the north edge.
		MaxY: win.MaxY - float64(c.Y)*spanY,
		MinY: win.MaxY - float64(c.Y+1)*spanY,
	}
	if c.X == (1<<c.Z)-1 {
		out.MaxX = win.MaxX
	}
	if c.Y == (1<<c.Z)-1 {
		out.MinY = win.MinY
	}
	return out
}

// ValidTileSize reports whether t is a usable tile edge: a power of two in
// [64, 1024]. Powers of two keep every tile origin aligned to the render
// engine's 16-pixel tile lattice (the bit-identity precondition) and the
// pyramid's resolutions sane.
func ValidTileSize(t int) error {
	if t < 64 || t > 1024 || t&(t-1) != 0 {
		return fmt.Errorf("tiles: tile size %d (want a power of two in [64, 1024])", t)
	}
	return nil
}
