package tiles

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the disk level of the tile cache: one append-only record log
// per tileset/zoom under a root directory, each paired with an in-memory
// index rebuilt by scanning the log at open. There is no separate index
// file and no database — the log IS the store, which makes the crash story
// one sentence: an append either completed (the scan finds a whole record)
// or it did not (the scan stops at the torn tail, the file is truncated to
// the last whole record, and the lost tile is simply a miss). Re-putting a
// tile appends a newer record; the scan's last-record-wins rule makes it
// the visible one.
//
// Layout: <dir>/<tileset-dir>/z<zoom>.log, where tileset-dir is the
// sanitized tileset key plus a short content hash (collision-proof even
// after sanitizing). Logs open lazily on first access and stay open.
type Store struct {
	dir string
	m   *Metrics

	mu   sync.Mutex
	logs map[string]*tileLog
}

// OpenStore returns a store rooted at dir. The directory is created on
// first write; opening never scans anything eagerly. m may be nil.
func OpenStore(dir string, m *Metrics) *Store {
	return &Store{dir: dir, m: m, logs: make(map[string]*tileLog)}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

type recSpan struct {
	off int64
	n   int
}

type tileLog struct {
	f     *os.File
	index map[[2]uint32]recSpan
	size  int64
}

// sanitizeTileset maps an arbitrary tileset key to one directory name:
// unsafe runes become '_' and a 10-hex-digit content hash is appended so
// distinct keys can never collide after sanitizing.
func sanitizeTileset(tileset string) string {
	var b strings.Builder
	for _, r := range tileset {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_', r == '=':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	sum := sha256.Sum256([]byte(tileset))
	return b.String() + "-" + hex.EncodeToString(sum[:5])
}

func (s *Store) logKey(tileset string, z int) string {
	return fmt.Sprintf("%s\x00%d", tileset, z)
}

func (s *Store) logPath(tileset string, z int) string {
	return filepath.Join(s.dir, sanitizeTileset(tileset), fmt.Sprintf("z%d.log", z))
}

// openLog returns the log for tileset/z, opening and scanning it on first
// use. Called with s.mu held.
func (s *Store) openLog(tileset string, z int) (*tileLog, error) {
	key := s.logKey(tileset, z)
	if l, ok := s.logs[key]; ok {
		return l, nil
	}
	path := s.logPath(tileset, z)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	index := make(map[[2]uint32]recSpan)
	valid := 0
	for valid < len(data) {
		rec, n, err := DecodeRecord(data[valid:])
		if err != nil {
			// Torn or corrupt tail: everything before it is intact, so
			// recover that prefix and drop the rest. The dropped tiles are
			// misses, never request errors.
			break
		}
		index[[2]uint32{rec.X, rec.Y}] = recSpan{off: int64(valid), n: n}
		valid += n
	}
	// O_APPEND (not truncate-and-rewrite): concurrent readers of the same
	// file never observe a shrinking-then-growing log except during this
	// one-time recovery.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if valid < len(data) {
		s.m.storeCorrupt().Inc()
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	l := &tileLog{f: f, index: index, size: int64(valid)}
	s.logs[key] = l
	s.m.storeBytes().Add(l.size)
	return l, nil
}

// Get returns the stored PNG for tileset/c, or ok=false on a miss. The
// returned slice is the caller's to keep. Read-back failures (the file
// changed underneath us, bit rot since open) degrade to a miss — the tile
// will be rebuilt, not failed.
func (s *Store) Get(tileset string, c Coord) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.openLog(tileset, c.Z)
	if err != nil {
		return nil, false
	}
	span, ok := l.index[[2]uint32{uint32(c.X), uint32(c.Y)}]
	if !ok {
		return nil, false
	}
	buf := make([]byte, span.n)
	if _, err := l.f.ReadAt(buf, span.off); err != nil {
		return nil, false
	}
	rec, _, err := DecodeRecord(buf)
	if err != nil {
		s.m.storeCorrupt().Inc()
		delete(l.index, [2]uint32{uint32(c.X), uint32(c.Y)})
		return nil, false
	}
	return rec.Payload, true // payload aliases buf, which is ours
}

// Put appends the tile's PNG to its log. The append is one write call, so
// a crash leaves either a whole record or a recoverable torn tail.
func (s *Store) Put(tileset string, c Coord, png []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.openLog(tileset, c.Z)
	if err != nil {
		return err
	}
	buf, err := AppendRecord(nil, Record{X: uint32(c.X), Y: uint32(c.Y), Payload: png})
	if err != nil {
		return err
	}
	if _, err := l.f.Write(buf); err != nil {
		// The log may now hold a torn record; resync our view of the file
		// so the index never points past what the next open would keep.
		if st, serr := l.f.Stat(); serr == nil && st.Size() != l.size {
			l.f.Truncate(l.size)
		}
		return err
	}
	l.index[[2]uint32{uint32(c.X), uint32(c.Y)}] = recSpan{off: l.size, n: len(buf)}
	l.size += int64(len(buf))
	s.m.storeWrites().Inc()
	s.m.storeBytes().Add(int64(len(buf)))
	return nil
}

// Len reports how many distinct tiles the tileset/z log currently indexes.
func (s *Store) Len(tileset string, z int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, err := s.openLog(tileset, z)
	if err != nil {
		return 0
	}
	return len(l.index)
}

// Close closes every open log. The store stays usable — a later access
// reopens (and rescans) the log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	keys := make([]string, 0, len(s.logs))
	for k := range s.logs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := s.logs[k]
		s.m.storeBytes().Add(-l.size)
		if err := l.f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.logs, k)
	}
	return first
}
