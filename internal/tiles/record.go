package tiles

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The persistent tile store is an append-only log of self-delimiting
// records, one log per tileset/zoom (the zoom and tileset identity live in
// the file's path, not the records). A record is:
//
//	offset  size  field
//	0       4     magic "KDT1"
//	4       4     x      (uint32 LE, tile column)
//	8       4     y      (uint32 LE, tile row, XYZ orientation)
//	12      4     plen   (uint32 LE, payload length)
//	16      4     hcrc   (uint32 LE, IEEE CRC-32 of bytes [0,16))
//	20      plen  payload (the encoded PNG)
//	20+plen 4     pcrc   (uint32 LE, IEEE CRC-32 of the payload)
//
// The header CRC makes a torn header distinguishable from a corrupt one
// without trusting plen; the payload CRC catches partial payload writes and
// bit rot. Decoding classifies every failure as either ErrTruncated (the
// bytes so far are a valid prefix of a record — the expected state after a
// crash mid-append, recovered by truncating to the last whole record) or
// ErrCorrupt (the bytes can never become a valid record — counted and
// surfaced as a cache miss, never an error to the client).

var (
	// ErrTruncated reports a record cut short — a valid prefix that ends
	// before the record completes (torn tail after a crash).
	ErrTruncated = errors.New("tiles: truncated record")
	// ErrCorrupt reports bytes that cannot be a record prefix: bad magic,
	// CRC mismatch, or an implausible length.
	ErrCorrupt = errors.New("tiles: corrupt record")
)

var recordMagic = [4]byte{'K', 'D', 'T', '1'}

const (
	recordHeaderSize = 20
	// MaxPayload bounds a record's payload. A 1024² RGBA PNG is well under
	// a megabyte; 32 MiB leaves two orders of magnitude of headroom while
	// keeping a corrupt-but-CRC-colliding length from driving a huge
	// allocation.
	MaxPayload = 32 << 20
)

// Record is one stored tile: its x/y within the log's zoom level and the
// encoded PNG payload.
type Record struct {
	X, Y    uint32
	Payload []byte
}

// AppendRecord appends r's encoding to dst and returns the extended slice.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	if len(r.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrCorrupt, len(r.Payload), MaxPayload)
	}
	var hdr [recordHeaderSize]byte
	copy(hdr[0:4], recordMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], r.X)
	binary.LittleEndian.PutUint32(hdr[8:12], r.Y)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(r.Payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[0:16]))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Payload...)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(r.Payload))
	return append(dst, tail[:]...), nil
}

// DecodeRecord decodes the record starting at b[0] and returns it with the
// number of bytes it occupied. The returned payload aliases b — callers
// that outlive b must copy. Failures are ErrTruncated when b is a valid
// proper prefix of a record and ErrCorrupt when it can never complete into
// one; DecodeRecord never panics, whatever the input.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recordHeaderSize {
		// Short of a full header: truncated if what's there agrees with a
		// record prefix, corrupt as soon as a byte rules one out.
		n := len(b)
		if n > 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			if b[i] != recordMagic[i] {
				return Record{}, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
			}
		}
		return Record{}, 0, ErrTruncated
	}
	if [4]byte(b[0:4]) != recordMagic {
		return Record{}, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(b[0:16]), binary.LittleEndian.Uint32(b[16:20]); got != want {
		return Record{}, 0, fmt.Errorf("%w: header crc %08x, want %08x", ErrCorrupt, got, want)
	}
	plen := binary.LittleEndian.Uint32(b[12:16])
	if plen > MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, plen, MaxPayload)
	}
	total := recordHeaderSize + int(plen) + 4
	if len(b) < total {
		return Record{}, 0, ErrTruncated
	}
	payload := b[recordHeaderSize : recordHeaderSize+int(plen)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[total-4:total]); got != want {
		return Record{}, 0, fmt.Errorf("%w: payload crc %08x, want %08x", ErrCorrupt, got, want)
	}
	return Record{
		X:       binary.LittleEndian.Uint32(b[4:8]),
		Y:       binary.LittleEndian.Uint32(b[8:12]),
		Payload: payload,
	}, total, nil
}
