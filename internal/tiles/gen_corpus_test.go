package tiles

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenCorpus regenerates the FuzzTileRecord seed corpus. Gated behind an
// env var so it only runs when invoked explicitly.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_TILE_CORPUS") == "" {
		t.Skip("set GEN_TILE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTileRecord")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	whole := mustEncode(t, Record{X: 3, Y: 7, Payload: []byte("tile-payload")})
	two := mustEncode(t, Record{X: 0, Y: 0, Payload: []byte("a")})
	two = append(two, mustEncode(t, Record{X: 1, Y: 2, Payload: []byte("bb")})...)
	seeds := map[string][]byte{
		"seed_empty":        nil,
		"seed_magic_only":   []byte("KDT1"),
		"seed_garbage":      []byte("not a tile record at all........"),
		"seed_whole_record": whole,
		"seed_torn_tail":    whole[:len(whole)-3],
		"seed_torn_header":  whole[:recordHeaderSize-1],
		"seed_two_records":  two,
	}
	for name, b := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
