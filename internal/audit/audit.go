// Package audit is the production shadow-auditor behind QUAD's accuracy
// SLO: for a sampled fraction of completed renders it re-evaluates a few
// random pixels with the exact Kahan oracle on a background worker pool and
// checks that the served values actually honor the advertised guarantee —
// relative error ≤ ε for εKDV, exact τ classification for τKDV.
//
// The design keeps the serving path unharmed: sampling copies K pixel
// values at enqueue time (rasters may be pooled and reused), the queue is
// budget-capped (over-budget jobs are dropped and counted, never blocking),
// and all oracle work happens off-request on the pool. Tolerances mirror
// the offline conformance suite exactly — an absolute slack of 1e-12·scale
// on ε checks and a 1e-9 relative margin around τ — so honest renders never
// register violations while a broken bound is caught by the planted-bug
// self-test.
package audit

import (
	"log/slog"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/quadkdv/quad/internal/telemetry"
)

// Kind distinguishes the two guarantees the auditor checks.
type Kind string

const (
	// KindEps audits the εKDV guarantee |v − F_P(q)| ≤ ε·F_P(q).
	KindEps Kind = "eps"
	// KindTau audits τKDV classification: hot iff F_P(q) ≥ τ.
	KindTau Kind = "tau"
)

// Tolerances, shared with internal/conformance: relTolExact stands in for ε
// on exact renders (ε = 0 would demand bit equality the accumulation order
// cannot promise), slackFrac·scale absorbs absolute rounding noise on
// near-zero pixels, and fpMargin excuses τ classifications within floating-
// point distance of the threshold.
const (
	relTolExact = 1e-9
	slackFrac   = 1e-12
	fpMargin    = 1e-9
)

// Endpoints are the serving surfaces that submit audit jobs; families are
// pre-registered for each so scrape output is complete and deterministic
// from boot.
var Endpoints = []string{"render", "cluster", "hotspots", "tile"}

// SkipReasons are the pre-registered causes for skipping an audit.
var SkipReasons = []string{"zorder", "degraded"}

// ratioBuckets grade the observed relative error as a fraction of ε:
// anything ≤ 1 honors the guarantee; the over-1 buckets resolve how badly a
// violation missed.
var ratioBuckets = []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1, 1.5, 2, 10}

// Sample is one audited pixel: its raster coordinate (for the violation
// report), its data-space query point (computed by the producer with the
// render's own grid, so it is bit-identical to what the engine evaluated),
// and the served value or classification.
type Sample struct {
	X, Y  int
	Q     [2]float64
	Value float64 // KindEps: served density
	Hot   bool    // KindTau: served classification
}

// Job is one completed render to audit. Exact recomputes the ground-truth
// density at a query point — the producer binds it to the right oracle
// (full dataset, or the partial sum over live shards for degraded merges).
type Job struct {
	Endpoint string // "render", "cluster", "hotspots", "tile"
	Dataset  string
	Method   string
	Kind     Kind
	Eps      float64 // KindEps: the advertised relative error bound
	Tau      float64 // KindTau: the classification threshold
	Scale    float64 // max raster value, anchors the absolute slack
	TraceID  string
	Samples  []Sample
	Exact    func(q []float64) float64
}

// Violation is one detected guarantee breach.
type Violation struct {
	Endpoint string  `json:"endpoint"`
	Dataset  string  `json:"dataset"`
	Method   string  `json:"method"`
	Kind     string  `json:"kind"`
	TraceID  string  `json:"trace_id,omitempty"`
	X        int     `json:"x"`
	Y        int     `json:"y"`
	Observed float64 `json:"observed"`
	Exact    float64 `json:"exact"`
	Eps      float64 `json:"eps,omitempty"`
	Tau      float64 `json:"tau,omitempty"`
	RelErr   float64 `json:"rel_err"`
	Hot      bool    `json:"hot,omitempty"`
}

// Config configures New.
type Config struct {
	// Fraction of completed renders to audit, in [0, 1]. ≤ 0 disables
	// sampling (ShouldAudit always returns false).
	Fraction float64
	// Pixels is the number of random pixels recomputed per audited render
	// (default 8).
	Pixels int
	// Budget caps the job queue: submissions beyond it are dropped and
	// counted, never blocking the serving path (default 64).
	Budget int
	// Workers sizes the background oracle pool (default 1).
	Workers int
	// Seed fixes the sampling stream (0 picks a fixed default); audits are
	// then deterministic for a deterministic request sequence.
	Seed int64
	// HardFail latches the auditor into a failed state on the first
	// violation — the mode tests and CI harnesses assert on.
	HardFail bool
	// OnViolation, when set, runs synchronously on the audit worker for
	// every violation.
	OnViolation func(Violation)
	Registry    *telemetry.Registry
	Logger      *slog.Logger
}

// Auditor runs shadow accuracy checks on a budget-capped background pool.
// A nil *Auditor is a valid disabled auditor: every method is a no-op.
type Auditor struct {
	cfg  Config
	log  *slog.Logger
	jobs chan Job
	wg   sync.WaitGroup

	closed   atomic.Bool
	inflight atomic.Int64

	randMu sync.Mutex
	rng    *rand.Rand

	checks     func(endpoint string) *telemetry.Counter
	pixels     func(endpoint string) *telemetry.Counter
	violations func(endpoint, kind string) *telemetry.Counter
	dropped    *telemetry.Counter
	skipped    func(reason string) *telemetry.Counter
	queueDepth *telemetry.Gauge
	ratioHist  *telemetry.Histogram
	maxRatioG  *telemetry.FloatGauge

	mu         sync.Mutex
	maxRatio   float64
	recent     []Violation // newest last, bounded ring
	hardFailed bool
}

const recentViolations = 16

// New builds and starts an auditor. The kdv_audit_* metric families are
// pre-registered on cfg.Registry for every endpoint so scrapes are complete
// from the first request.
func New(cfg Config) *Auditor {
	if cfg.Pixels <= 0 {
		cfg.Pixels = 8
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20200614
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	a := &Auditor{
		cfg:  cfg,
		log:  log,
		jobs: make(chan Job, cfg.Budget),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	const (
		checksName     = "kdv_audit_checks_total"
		checksHelp     = "Completed shadow audits of served renders."
		pixelsName     = "kdv_audit_pixels_total"
		pixelsHelp     = "Pixels recomputed against the exact oracle."
		violationsName = "kdv_audit_violations_total"
		violationsHelp = "Served pixels that breached the advertised guarantee."
	)
	a.checks = func(ep string) *telemetry.Counter {
		return reg.Counter(checksName, checksHelp, telemetry.L("endpoint", ep))
	}
	a.pixels = func(ep string) *telemetry.Counter {
		return reg.Counter(pixelsName, pixelsHelp, telemetry.L("endpoint", ep))
	}
	a.violations = func(ep, kind string) *telemetry.Counter {
		return reg.Counter(violationsName, violationsHelp,
			telemetry.L("endpoint", ep), telemetry.L("kind", kind))
	}
	a.skipped = func(reason string) *telemetry.Counter {
		return reg.Counter("kdv_audit_skipped_total",
			"Renders not auditable (probabilistic or degraded output).",
			telemetry.L("reason", reason))
	}
	for _, ep := range Endpoints {
		a.checks(ep)
		a.pixels(ep)
		a.violations(ep, string(KindEps))
		a.violations(ep, string(KindTau))
	}
	for _, r := range SkipReasons {
		a.skipped(r)
	}
	a.dropped = reg.Counter("kdv_audit_dropped_total",
		"Audit jobs dropped because the queue budget was full.")
	a.queueDepth = reg.Gauge("kdv_audit_queue_depth",
		"Audit jobs queued or being checked.")
	a.ratioHist = reg.Histogram("kdv_audit_rel_error_ratio",
		"Observed relative error as a fraction of the guarantee (>1 = violation).",
		ratioBuckets)
	a.maxRatioG = reg.FloatGauge("kdv_audit_max_rel_error_ratio",
		"Worst observed relative error as a fraction of the guarantee.")
	for i := 0; i < cfg.Workers; i++ {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			for job := range a.jobs {
				a.check(job)
				a.inflight.Add(-1)
				a.queueDepth.Dec()
			}
		}()
	}
	return a
}

// ShouldAudit flips the sampling coin: true for ~Fraction of calls.
func (a *Auditor) ShouldAudit() bool {
	if a == nil || a.cfg.Fraction <= 0 || a.closed.Load() {
		return false
	}
	if a.cfg.Fraction >= 1 {
		return true
	}
	a.randMu.Lock()
	v := a.rng.Float64()
	a.randMu.Unlock()
	return v < a.cfg.Fraction
}

// SamplePixels returns up to Pixels distinct random indices in [0, n).
func (a *Auditor) SamplePixels(n int) []int {
	if a == nil || n <= 0 {
		return nil
	}
	k := a.cfg.Pixels
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	a.randMu.Lock()
	defer a.randMu.Unlock()
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		i := a.rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// Skip counts one unauditable render (MethodZOrder's probabilistic
// guarantee, degraded progressive partials).
func (a *Auditor) Skip(reason string) {
	if a == nil {
		return
	}
	a.skipped(reason).Inc()
}

// Submit enqueues a job for background checking. It never blocks: when the
// queue budget is exhausted the job is dropped and counted. Returns whether
// the job was accepted.
func (a *Auditor) Submit(job Job) bool {
	if a == nil || a.closed.Load() || job.Exact == nil || len(job.Samples) == 0 {
		return false
	}
	select {
	case a.jobs <- job:
		a.inflight.Add(1)
		a.queueDepth.Inc()
		return true
	default:
		a.dropped.Inc()
		return false
	}
}

// check runs the oracle over one job's samples.
func (a *Auditor) check(job Job) {
	q := make([]float64, 2)
	worst := 0.0
	for _, s := range job.Samples {
		q[0], q[1] = s.Q[0], s.Q[1]
		exact := job.Exact(q)
		a.pixels(job.Endpoint).Inc()
		switch job.Kind {
		case KindTau:
			exactHot := exact >= job.Tau
			if exactHot == s.Hot {
				continue
			}
			// Mirror the conformance suite: a classification is excused when
			// the exact density sits within floating-point distance of τ.
			if math.Abs(exact-job.Tau) <= fpMargin*math.Max(math.Abs(exact), math.Abs(job.Tau)) {
				continue
			}
			a.violate(job, s, exact, 0)
		default: // KindEps
			eff := math.Max(job.Eps, relTolExact)
			slack := slackFrac * job.Scale
			diff := math.Abs(s.Value - exact)
			ratio := diff / (eff*exact + slack)
			if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
				ratio = 0
				if diff > 0 {
					ratio = math.Inf(1)
				}
			}
			a.ratioHist.Observe(ratio)
			worst = math.Max(worst, ratio)
			if diff > eff*exact+slack {
				a.violate(job, s, exact, ratio)
			}
		}
	}
	a.checks(job.Endpoint).Inc()
	if worst > 0 {
		a.mu.Lock()
		if worst > a.maxRatio {
			a.maxRatio = worst
			a.maxRatioG.Set(worst)
		}
		a.mu.Unlock()
	}
}

// violate records one guarantee breach: counter, bounded recent ring,
// structured log with the offending trace and pixel, hard-fail latch, and
// the synchronous callback.
func (a *Auditor) violate(job Job, s Sample, exact, ratio float64) {
	relErr := math.Inf(1)
	if exact != 0 {
		relErr = math.Abs(s.Value-exact) / math.Abs(exact)
	}
	v := Violation{
		Endpoint: job.Endpoint,
		Dataset:  job.Dataset,
		Method:   job.Method,
		Kind:     string(job.Kind),
		TraceID:  job.TraceID,
		X:        s.X,
		Y:        s.Y,
		Observed: s.Value,
		Exact:    exact,
		Eps:      job.Eps,
		Tau:      job.Tau,
		RelErr:   relErr,
		Hot:      s.Hot,
	}
	a.violations(job.Endpoint, string(job.Kind)).Inc()
	a.mu.Lock()
	a.recent = append(a.recent, v)
	if len(a.recent) > recentViolations {
		a.recent = a.recent[len(a.recent)-recentViolations:]
	}
	if a.cfg.HardFail {
		a.hardFailed = true
	}
	a.mu.Unlock()
	a.log.Error("kdv accuracy guarantee violated",
		"endpoint", v.Endpoint,
		"dataset", v.Dataset,
		"method", v.Method,
		"kind", v.Kind,
		"trace_id", v.TraceID,
		"pixel_x", v.X,
		"pixel_y", v.Y,
		"observed", v.Observed,
		"exact", v.Exact,
		"eps", v.Eps,
		"tau", v.Tau,
		"rel_err", v.RelErr,
		"ratio", ratio,
	)
	if a.cfg.OnViolation != nil {
		a.cfg.OnViolation(v)
	}
}

// PixelsChecked sums the audited-pixel counters across endpoints — the
// denominator of the accuracy SLO.
func (a *Auditor) PixelsChecked() uint64 {
	if a == nil {
		return 0
	}
	var total uint64
	for _, ep := range Endpoints {
		total += a.pixels(ep).Value()
	}
	return total
}

// ViolationCount sums the violation counters across endpoints and kinds.
func (a *Auditor) ViolationCount() uint64 {
	if a == nil {
		return 0
	}
	var total uint64
	for _, ep := range Endpoints {
		total += a.violations(ep, string(KindEps)).Value()
		total += a.violations(ep, string(KindTau)).Value()
	}
	return total
}

// ChecksCount sums the completed-audit counters across endpoints.
func (a *Auditor) ChecksCount() uint64 {
	if a == nil {
		return 0
	}
	var total uint64
	for _, ep := range Endpoints {
		total += a.checks(ep).Value()
	}
	return total
}

// HardFailed reports whether a violation latched the hard-fail state.
func (a *Auditor) HardFailed() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hardFailed
}

// Pending returns the number of submitted jobs not yet fully checked.
func (a *Auditor) Pending() int {
	if a == nil {
		return 0
	}
	return int(a.inflight.Load())
}

// Close stops accepting jobs, drains the queue, and waits for the workers.
func (a *Auditor) Close() {
	if a == nil || !a.closed.CompareAndSwap(false, true) {
		return
	}
	close(a.jobs)
	a.wg.Wait()
}

// Snapshot is the auditor's state for the ops endpoint.
type Snapshot struct {
	Enabled          bool        `json:"enabled"`
	Fraction         float64     `json:"fraction"`
	PixelsPerAudit   int         `json:"pixels_per_audit"`
	Budget           int         `json:"budget"`
	Pending          int         `json:"pending"`
	Checks           uint64      `json:"checks"`
	PixelsChecked    uint64      `json:"pixels_checked"`
	Violations       uint64      `json:"violations"`
	MaxRelErrRatio   float64     `json:"max_rel_error_ratio"`
	HardFailed       bool        `json:"hard_failed"`
	RecentViolations []Violation `json:"recent_violations"`
}

// State returns the current Snapshot (nil auditor: disabled zero state).
func (a *Auditor) State() Snapshot {
	if a == nil {
		return Snapshot{RecentViolations: []Violation{}}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	recent := make([]Violation, len(a.recent))
	copy(recent, a.recent)
	return Snapshot{
		Enabled:          a.cfg.Fraction > 0,
		Fraction:         a.cfg.Fraction,
		PixelsPerAudit:   a.cfg.Pixels,
		Budget:           a.cfg.Budget,
		Pending:          int(a.inflight.Load()),
		Checks:           a.ChecksCount(),
		PixelsChecked:    a.PixelsChecked(),
		Violations:       a.ViolationCount(),
		MaxRelErrRatio:   a.maxRatio,
		HardFailed:       a.hardFailed,
		RecentViolations: recent,
	}
}
