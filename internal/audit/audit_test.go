package audit_test

import (
	"log/slog"
	"sort"
	"testing"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/audit"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/telemetry"
)

func testKDV(t *testing.T, opts ...quad.Option) *quad.KDV {
	t.Helper()
	pts, err := dataset.Generate("crime", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	k, err := quad.New(dataset.First2D(pts).Coords, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// drain waits for the auditor's queue to empty.
func drain(t *testing.T, a *audit.Auditor) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("auditor did not drain: %d pending", a.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

// sampleEps builds an eps job from a density map, sampling every index in
// idx with the render's own grid mapping.
func sampleEps(t *testing.T, k *quad.KDV, dm *quad.DensityMap, idx []int, eps float64) audit.Job {
	t.Helper()
	g, err := grid.New(grid.Resolution{W: dm.Res.W, H: dm.Res.H},
		geom.Rect{Min: dm.WindowMin[:], Max: dm.WindowMax[:]})
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.0
	for _, v := range dm.Values {
		if v > scale {
			scale = v
		}
	}
	job := audit.Job{
		Endpoint: "render",
		Dataset:  "crime",
		Method:   "quad",
		Kind:     audit.KindEps,
		Eps:      eps,
		Scale:    scale,
		TraceID:  "0123456789abcdef0123456789abcdef",
		Exact: func(q []float64) float64 {
			v, err := k.Density(q)
			if err != nil {
				t.Errorf("oracle density: %v", err)
			}
			return v
		},
	}
	q := make([]float64, 2)
	for _, i := range idx {
		x, y := i%dm.Res.W, i/dm.Res.W
		g.Query(x, y, q)
		job.Samples = append(job.Samples, audit.Sample{
			X: x, Y: y, Q: [2]float64{q[0], q[1]}, Value: dm.Values[i],
		})
	}
	return job
}

func TestHonestEpsRenderPasses(t *testing.T) {
	k := testKDV(t)
	const eps = 0.05
	dm, err := k.RenderEps(quad.Resolution{W: 32, H: 24}, eps)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	a := audit.New(audit.Config{Fraction: 1, Pixels: 16, Registry: reg, HardFail: true,
		Logger: slog.Default()})
	defer a.Close()

	idx := a.SamplePixels(len(dm.Values))
	if len(idx) != 16 {
		t.Fatalf("sampled %d pixels, want 16", len(idx))
	}
	if !a.Submit(sampleEps(t, k, dm, idx, eps)) {
		t.Fatal("submit rejected")
	}
	drain(t, a)
	if got := reg.Counter("kdv_audit_checks_total", "", telemetry.L("endpoint", "render")).Value(); got != 1 {
		t.Errorf("checks = %d, want 1", got)
	}
	if got := reg.Counter("kdv_audit_pixels_total", "", telemetry.L("endpoint", "render")).Value(); got != 16 {
		t.Errorf("pixels = %d, want 16", got)
	}
	if v := reg.Counter("kdv_audit_violations_total", "",
		telemetry.L("endpoint", "render"), telemetry.L("kind", "eps")).Value(); v != 0 {
		t.Errorf("honest render produced %d violations", v)
	}
	if a.HardFailed() {
		t.Error("honest render latched hard-fail")
	}
	st := a.State()
	if !st.Enabled || st.MaxRelErrRatio > 1 {
		t.Errorf("state = %+v", st)
	}
}

// TestExactRenderPasses pins the ε=0 path: exact renders are audited under
// the stand-in relative tolerance, not bit equality.
func TestExactRenderPasses(t *testing.T) {
	k := testKDV(t, quad.WithMethod(quad.MethodExact))
	dm, err := k.RenderEps(quad.Resolution{W: 16, H: 12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	a := audit.New(audit.Config{Fraction: 1, Pixels: 8, Registry: reg, HardFail: true})
	defer a.Close()
	job := sampleEps(t, k, dm, a.SamplePixels(len(dm.Values)), 0)
	job.Method = "exact"
	a.Submit(job)
	drain(t, a)
	if a.HardFailed() {
		t.Errorf("exact render flagged: %+v", a.State().RecentViolations)
	}
}

// TestPlantedEpsViolationCaught is the mutation-style self-test: a
// deliberately over-reported density must be flagged, counted, logged with
// its trace and pixel, and must fire hard-fail mode.
func TestPlantedEpsViolationCaught(t *testing.T) {
	k := testKDV(t)
	const eps = 0.05
	dm, err := k.RenderEps(quad.Resolution{W: 32, H: 24}, eps)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	var got []audit.Violation
	a := audit.New(audit.Config{
		Fraction: 1, Pixels: 8, Registry: reg, HardFail: true,
		OnViolation: func(v audit.Violation) { got = append(got, v) },
	})
	defer a.Close()

	idx := a.SamplePixels(len(dm.Values))
	job := sampleEps(t, k, dm, idx, eps)
	// Plant the bug: over-report one sampled pixel well past the ε band.
	job.Samples[3].Value *= 1 + 4*eps
	planted := job.Samples[3]
	a.Submit(job)
	drain(t, a)

	if v := reg.Counter("kdv_audit_violations_total", "",
		telemetry.L("endpoint", "render"), telemetry.L("kind", "eps")).Value(); v != 1 {
		t.Fatalf("violations = %d, want 1", v)
	}
	if !a.HardFailed() {
		t.Fatal("planted violation did not fire hard-fail mode")
	}
	if len(got) != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", len(got))
	}
	v := got[0]
	if v.X != planted.X || v.Y != planted.Y {
		t.Errorf("violation pixel (%d,%d), want (%d,%d)", v.X, v.Y, planted.X, planted.Y)
	}
	if v.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Errorf("violation trace = %q", v.TraceID)
	}
	if v.RelErr < 3*eps {
		t.Errorf("rel err %g implausibly small for a %g over-report", v.RelErr, 4*eps)
	}
	st := a.State()
	if !st.HardFailed || len(st.RecentViolations) != 1 {
		t.Errorf("state = %+v", st)
	}
	if st.MaxRelErrRatio <= 1 {
		t.Errorf("max ratio %g should exceed 1 after a violation", st.MaxRelErrRatio)
	}
}

func TestTauAuditAndPlantedFlip(t *testing.T) {
	k := testKDV(t)
	res := quad.Resolution{W: 24, H: 16}
	ref, err := k.RenderEps(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	// τ at the raster median-ish so both classes are populated.
	sorted := append([]float64(nil), ref.Values...)
	sort.Float64s(sorted)
	tau := sorted[len(sorted)/2]
	hm, err := k.RenderTau(res, tau)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(grid.Resolution{W: res.W, H: res.H},
		geom.Rect{Min: hm.WindowMin[:], Max: hm.WindowMax[:]})
	if err != nil {
		t.Fatal(err)
	}
	mkJob := func() audit.Job {
		job := audit.Job{
			Endpoint: "hotspots", Dataset: "crime", Method: "quad",
			Kind: audit.KindTau, Tau: tau,
			Exact: func(q []float64) float64 {
				v, err := k.Density(q)
				if err != nil {
					t.Errorf("oracle density: %v", err)
				}
				return v
			},
		}
		q := make([]float64, 2)
		for i := 0; i < len(hm.Hot); i += 37 {
			x, y := i%res.W, i/res.W
			g.Query(x, y, q)
			job.Samples = append(job.Samples, audit.Sample{
				X: x, Y: y, Q: [2]float64{q[0], q[1]}, Hot: hm.Hot[i],
			})
		}
		return job
	}

	reg := telemetry.NewRegistry()
	a := audit.New(audit.Config{Fraction: 1, Registry: reg, HardFail: true})
	defer a.Close()
	a.Submit(mkJob())
	drain(t, a)
	if a.HardFailed() {
		t.Fatalf("honest τ map flagged: %+v", a.State().RecentViolations)
	}

	// Plant a flipped classification on a pixel far from τ.
	job := mkJob()
	flipped := false
	q := make([]float64, 2)
	for i := range job.Samples {
		s := &job.Samples[i]
		q[0], q[1] = s.Q[0], s.Q[1]
		exact, _ := k.Density(q)
		if exact > 1.5*tau || exact < 0.5*tau {
			s.Hot = !s.Hot
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no sample far enough from tau to plant a flip")
	}
	a.Submit(job)
	drain(t, a)
	if v := reg.Counter("kdv_audit_violations_total", "",
		telemetry.L("endpoint", "hotspots"), telemetry.L("kind", "tau")).Value(); v != 1 {
		t.Fatalf("tau violations = %d, want 1", v)
	}
	if !a.HardFailed() {
		t.Fatal("planted τ flip did not fire hard-fail")
	}
}

func TestBudgetDropsNeverBlock(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := audit.New(audit.Config{Fraction: 1, Budget: 1, Workers: 1, Registry: reg})
	defer a.Close()
	gate := make(chan struct{})
	slow := audit.Job{
		Endpoint: "render", Kind: audit.KindEps, Eps: 1,
		Samples: []audit.Sample{{Value: 0}},
		Exact:   func([]float64) float64 { <-gate; return 0 },
	}
	// First job occupies the worker, second fills the queue, the rest must
	// be dropped without blocking.
	accepted := 0
	for i := 0; i < 10; i++ {
		if a.Submit(slow) {
			accepted++
		}
	}
	close(gate)
	drain(t, a)
	if accepted > 2 {
		t.Errorf("accepted %d jobs with budget 1", accepted)
	}
	if d := reg.Counter("kdv_audit_dropped_total", "").Value(); d < 8 {
		t.Errorf("dropped = %d, want ≥ 8", d)
	}
}

func TestSamplingAndNilSafety(t *testing.T) {
	a := audit.New(audit.Config{Fraction: 0.5, Pixels: 4, Registry: telemetry.NewRegistry()})
	defer a.Close()
	idx := a.SamplePixels(100)
	if len(idx) != 4 {
		t.Fatalf("sampled %d, want 4", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad sample set %v", idx)
		}
		seen[i] = true
	}
	if got := a.SamplePixels(3); len(got) != 3 {
		t.Fatalf("small raster sample = %v, want all 3", got)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if a.ShouldAudit() {
			hits++
		}
	}
	if hits < 350 || hits > 650 {
		t.Errorf("fraction 0.5 sampled %d/1000", hits)
	}

	var nilA *audit.Auditor
	if nilA.ShouldAudit() || nilA.Submit(audit.Job{}) || nilA.HardFailed() {
		t.Error("nil auditor not a no-op")
	}
	nilA.Skip("zorder")
	nilA.Close()
	if st := nilA.State(); st.Enabled {
		t.Error("nil auditor state enabled")
	}
}

func TestSkipCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := audit.New(audit.Config{Fraction: 1, Registry: reg})
	defer a.Close()
	a.Skip("zorder")
	a.Skip("zorder")
	a.Skip("degraded")
	if got := reg.Counter("kdv_audit_skipped_total", "", telemetry.L("reason", "zorder")).Value(); got != 2 {
		t.Errorf("zorder skips = %d, want 2", got)
	}
	if got := reg.Counter("kdv_audit_skipped_total", "", telemetry.L("reason", "degraded")).Value(); got != 1 {
		t.Errorf("degraded skips = %d, want 1", got)
	}
}
