// Package harness drives the paper's evaluation (Section 7): it prepares
// the dataset analogues, times each method over pixel grids with the paper's
// parameter sweeps, and prints the series behind every figure. Long-running
// baselines are handled the way the paper handles its 2-hour timeout — a
// cell that exceeds the budget is measured on a pixel prefix and
// extrapolated (marked with '~'), so the harness always terminates.
package harness

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/stats"
)

// Config scales the experiments. The defaults (via DefaultConfig) are sized
// for a single-core container; Full restores the paper's setting.
type Config struct {
	// Sizes overrides the per-dataset cardinalities (0 → paper size).
	Sizes map[string]int
	// Res is the pixel grid for the main experiments.
	Res grid.Resolution
	// HiRes is the top end of the Figure 16 resolution sweep.
	Resolutions []grid.Resolution
	// Eps is the Figure 14 relative-error sweep.
	Eps []float64
	// TauMultiples is the Figure 15 τ ladder in σ units around μ.
	TauMultiples []float64
	// Budgets is the Figure 20 progressive time ladder.
	Budgets []time.Duration
	// HepSizes is the Figure 17 cardinality sweep.
	HepSizes []int
	// Dims is the Figure 24 dimensionality sweep.
	Dims []int
	// CellTimeout caps the measurement of a single (method, parameter)
	// cell; beyond it the time is extrapolated from the finished prefix.
	CellTimeout time.Duration
	// Seed drives the dataset generators.
	Seed int64
	// OutDir receives PNG artifacts (Figures 2 and 21); empty disables.
	OutDir string
	// Out receives the printed tables.
	Out io.Writer
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Sizes: map[string]int{
			"elnino": 30000, "crime": 45000, "home": 80000, "hep": 150000,
		},
		Res: grid.Resolution{W: 160, H: 120},
		Resolutions: []grid.Resolution{
			{W: 40, H: 30}, {W: 80, H: 60}, {W: 160, H: 120}, {W: 320, H: 240},
		},
		Eps:          []float64{0.01, 0.02, 0.03, 0.04, 0.05},
		TauMultiples: []float64{-0.2, -0.1, 0, 0.1, 0.2},
		Budgets: []time.Duration{
			10 * time.Millisecond, 50 * time.Millisecond, 250 * time.Millisecond,
			1250 * time.Millisecond, 6250 * time.Millisecond,
		},
		HepSizes:    []int{150000, 450000, 750000, 1050000},
		Dims:        []int{2, 4, 6, 8, 10},
		CellTimeout: 20 * time.Second,
		Seed:        20200614,
	}
}

// FullConfig returns the paper-scale configuration (Section 7.1): paper
// cardinalities, 1280×960 grids, 2-hour cell timeout. Expect long runtimes.
func FullConfig(out io.Writer) Config {
	c := DefaultConfig(out)
	c.Sizes = map[string]int{}
	c.Res = grid.Res1280x960
	c.Resolutions = []grid.Resolution{grid.Res320x240, grid.Res640x480, grid.Res1280x960, grid.Res2560x1920}
	c.HepSizes = []int{1000000, 3000000, 5000000, 7000000}
	c.CellTimeout = 2 * time.Hour
	return c
}

// DS is a prepared dataset with its derived KDV instances per method.
type DS struct {
	Name string
	Pts  geom.Points
	N    int
}

// LoadDataset generates (or re-generates) the named dataset analogue at the
// configured size, reduced to 2-d for visualization.
func (c *Config) LoadDataset(name string) (*DS, error) {
	n := 0
	if c.Sizes != nil {
		n = c.Sizes[name]
	}
	pts, err := dataset.Generate(name, n, c.Seed)
	if err != nil {
		return nil, err
	}
	pts = dataset.First2D(pts)
	return &DS{Name: name, Pts: pts, N: pts.Len()}, nil
}

// Build constructs a KDV over the dataset for a method and kernel.
func (d *DS) Build(kern quad.Kernel, method quad.Method, eps float64) (*quad.KDV, error) {
	return quad.New(d.Pts.Coords, d.Pts.Dim,
		quad.WithKernel(kern),
		quad.WithMethod(method),
		quad.WithZOrderGuarantee(eps, 0.2),
	)
}

// Cell is one timed measurement.
type Cell struct {
	Seconds      float64
	Extrapolated bool
	PixelsTimed  int
}

// String renders the cell for a table ("12.3" or "~4567" when
// extrapolated).
func (c Cell) String() string {
	prefix := ""
	if c.Extrapolated {
		prefix = "~"
	}
	switch {
	case c.Seconds >= 100:
		return fmt.Sprintf("%s%.0f", prefix, c.Seconds)
	case c.Seconds >= 1:
		return fmt.Sprintf("%s%.1f", prefix, c.Seconds)
	default:
		return fmt.Sprintf("%s%.3f", prefix, c.Seconds)
	}
}

// timeGridLoop measures evaluating every pixel of res with perPixel,
// extrapolating past the timeout from the completed prefix.
func timeGridLoop(pts geom.Points, res grid.Resolution, timeout time.Duration, perPixel func(q []float64)) (Cell, error) {
	g, err := grid.ForDataset(res, pts, 0.02)
	if err != nil {
		return Cell{}, err
	}
	start := time.Now()
	q := make([]float64, 2)
	total := res.Pixels()
	done := 0
	for y := 0; y < res.H; y++ {
		for x := 0; x < res.W; x++ {
			perPixel(g.Query(x, y, q))
			done++
			if done%64 == 0 && timeout > 0 && time.Since(start) > timeout {
				elapsed := time.Since(start).Seconds()
				return Cell{
					Seconds:      elapsed / float64(done) * float64(total),
					Extrapolated: true,
					PixelsTimed:  done,
				}, nil
			}
		}
	}
	return Cell{Seconds: time.Since(start).Seconds(), PixelsTimed: total}, nil
}

// TimeEps measures an εKDV full-grid render.
func TimeEps(k *quad.KDV, pts geom.Points, res grid.Resolution, eps float64, timeout time.Duration) (Cell, error) {
	var firstErr error
	cell, err := timeGridLoop(pts, res, timeout, func(q []float64) {
		if _, e := k.Estimate(q, eps); e != nil && firstErr == nil {
			firstErr = e
		}
	})
	if err == nil {
		err = firstErr
	}
	return cell, err
}

// TimeTau measures a τKDV full-grid render.
func TimeTau(k *quad.KDV, pts geom.Points, res grid.Resolution, tau float64, timeout time.Duration) (Cell, error) {
	var firstErr error
	cell, err := timeGridLoop(pts, res, timeout, func(q []float64) {
		if _, e := k.IsHot(q, tau); e != nil && firstErr == nil {
			firstErr = e
		}
	})
	if err == nil {
		err = firstErr
	}
	return cell, err
}

// MuSigma computes the τ-ladder statistics of a dataset on the configured
// grid via a strided QUAD render (the paper computes μ, σ over all pixels;
// the stride keeps setup time modest and is shared by all methods).
func (c *Config) MuSigma(d *DS) (mu, sigma float64, err error) {
	k, err := d.Build(quad.Gaussian, quad.MethodQuadratic, 0.01)
	if err != nil {
		return 0, 0, err
	}
	stride := 1 + c.Res.Pixels()/4096
	return k.ThresholdStats(quad.Resolution{W: c.Res.W, H: c.Res.H}, stride, 0.01)
}

// DensestPixel returns the grid query point with the (approximately)
// highest density — the pixel Figure 18 traces.
func DensestPixel(k *quad.KDV, pts geom.Points, res grid.Resolution) ([]float64, error) {
	g, err := grid.ForDataset(res, pts, 0.02)
	if err != nil {
		return nil, err
	}
	best := []float64{0, 0}
	bestV := -1.0
	q := make([]float64, 2)
	stride := 1 + res.Pixels()/8192
	idx := 0
	for y := 0; y < res.H; y++ {
		for x := 0; x < res.W; x++ {
			idx++
			if idx%stride != 0 {
				continue
			}
			g.Query(x, y, q)
			v, err := k.Estimate(q, 0.05)
			if err != nil {
				return nil, err
			}
			if v > bestV {
				bestV = v
				best[0], best[1] = q[0], q[1]
			}
		}
	}
	return best, nil
}

// RenderValues produces the per-pixel value raster for a method via the
// public API (used by the quality experiments).
func RenderValues(k *quad.KDV, res grid.Resolution, eps float64) ([]float64, error) {
	dm, err := k.RenderEps(quad.Resolution{W: res.W, H: res.H}, eps)
	if err != nil {
		return nil, err
	}
	return dm.Values, nil
}

// Quality summarizes approximation quality against a reference raster.
type Quality struct {
	Avg, Max float64
}

// MeasureQuality compares a method's raster to the exact reference.
func MeasureQuality(approx, exact []float64) (Quality, error) {
	avg, err := stats.AvgRelativeError(approx, exact)
	if err != nil {
		return Quality{}, err
	}
	max, err := stats.MaxRelativeError(approx, exact)
	if err != nil {
		return Quality{}, err
	}
	return Quality{Avg: avg, Max: max}, nil
}

// Table is a simple aligned-column printer for the experiment series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteCSV emits the table as CSV (header row first). Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// SaveCSV writes the table as a CSV file.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Headers)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// SortedNames returns map keys in sorted order (deterministic printing).
func SortedNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// csvSeq numbers emitted CSV artifacts so repeated titles stay distinct.
var csvSeq int

// Emit prints the table to the configured writer and, when OutDir is set,
// also writes it as a CSV artifact named after the title.
func (c *Config) Emit(t *Table) {
	t.Fprint(c.Out)
	if c.OutDir == "" {
		return
	}
	csvSeq++
	slug := make([]rune, 0, 40)
	for _, r := range strings.ToLower(t.Title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			slug = append(slug, r)
		case r == ' ' || r == ':' || r == ',':
			if len(slug) > 0 && slug[len(slug)-1] != '_' {
				slug = append(slug, '_')
			}
		}
		if len(slug) >= 40 {
			break
		}
	}
	path := fmt.Sprintf("%s/%03d_%s.csv", c.OutDir, csvSeq, strings.Trim(string(slug), "_"))
	if err := t.SaveCSV(path); err != nil {
		fmt.Fprintf(c.Out, "warning: could not write %s: %v\n", path, err)
	}
}
