package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/grid"
)

// tinyConfig shrinks every sweep so the whole experiment registry smoke-runs
// in seconds.
func tinyConfig(buf *bytes.Buffer) Config {
	c := DefaultConfig(buf)
	c.Out = buf
	c.Sizes = map[string]int{"elnino": 2000, "crime": 2000, "home": 2000, "hep": 2000}
	c.Res = grid.Resolution{W: 16, H: 12}
	c.Resolutions = []grid.Resolution{{W: 8, H: 6}, {W: 16, H: 12}}
	c.Eps = []float64{0.01, 0.05}
	c.TauMultiples = []float64{-0.1, 0, 0.1}
	c.Budgets = []time.Duration{5 * time.Millisecond, 20 * time.Millisecond}
	c.HepSizes = []int{1000, 2000}
	c.Dims = []int{2, 3}
	c.CellTimeout = 5 * time.Second
	return c
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	if _, ok := Find("fig14"); !ok {
		t.Error("fig14 missing")
	}
	if _, ok := Find("nope"); ok {
		t.Error("unknown id found")
	}
}

// TestAllExperimentsSmoke runs every experiment end-to-end at toy scale and
// sanity-checks the emitted tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run takes ~1 min")
	}
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	c.OutDir = t.TempDir()
	for _, e := range Experiments() {
		start := buf.Len()
		if err := e.Run(&c); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == start {
			t.Errorf("%s produced no output", e.ID)
		}
	}
	out := buf.String()
	for _, want := range []string{"QUAD", "KARL", "aKDE", "tKDC", "Z-order", "Figure 14", "Figure 24"} {
		if !strings.Contains(out, want) {
			t.Errorf("combined output missing %q", want)
		}
	}
}

func TestCellString(t *testing.T) {
	cases := []struct {
		c    Cell
		want string
	}{
		{Cell{Seconds: 0.1234}, "0.123"},
		{Cell{Seconds: 12.34}, "12.3"},
		{Cell{Seconds: 1234}, "1234"},
		{Cell{Seconds: 1234, Extrapolated: true}, "~1234"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Cell%+v.String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestTimeEpsExtrapolates(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	d, err := c.LoadDataset("crime")
	if err != nil {
		t.Fatal(err)
	}
	k, err := d.Build(quad.Gaussian, quad.MethodExact, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny timeout must force extrapolation on a big grid.
	cell, err := TimeEps(k, d.Pts, grid.Resolution{W: 200, H: 200}, 0.01, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.Extrapolated {
		t.Errorf("expected extrapolated cell, got %+v", cell)
	}
	if cell.PixelsTimed >= 200*200 {
		t.Errorf("timed all pixels despite timeout")
	}
	if cell.Seconds <= 0 {
		t.Errorf("non-positive extrapolated time %g", cell.Seconds)
	}
}

func TestMuSigmaAndDensestPixel(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	d, err := c.LoadDataset("home")
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma, err := c.MuSigma(d)
	if err != nil {
		t.Fatal(err)
	}
	if mu <= 0 || sigma < 0 {
		t.Errorf("μ=%g σ=%g", mu, sigma)
	}
	k, err := d.Build(quad.Gaussian, quad.MethodQuadratic, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DensestPixel(k, d.Pts, c.Res)
	if err != nil {
		t.Fatal(err)
	}
	v, err := k.Estimate(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if v < mu {
		t.Errorf("densest pixel density %g below the mean %g", v, mu)
	}
}

func TestTablePrint(t *testing.T) {
	var buf bytes.Buffer
	tbl := Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.Add("xxx", "1")
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "xxx") {
		t.Errorf("table output: %q", out)
	}
}

func TestMeasureQuality(t *testing.T) {
	q, err := MeasureQuality([]float64{1.1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if q.Max < q.Avg || q.Max < 0.0999 || q.Max > 0.1001 {
		t.Errorf("quality %+v", q)
	}
	if _, err := MeasureQuality([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Headers: []string{"a", "b"}, Rows: [][]string{{"1,5", `say "hi"`}, {"2", "3"}}}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n2,3\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	path := t.TempDir() + "/t.csv"
	if err := tbl.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
}
