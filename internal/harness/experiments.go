package harness

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/pca"
	"github.com/quadkdv/quad/internal/stats"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(c *Config) error
}

// Experiments returns the registry of all reproducible artifacts, in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"datasets", "Table 5: dataset analogues", RunDatasets},
		{"fig2", "Figure 2: exact vs εKDV vs τKDV color maps", RunFig2},
		{"fig14", "Figure 14: εKDV response time vs ε", RunFig14},
		{"fig15", "Figure 15: τKDV response time vs τ", RunFig15},
		{"fig16", "Figure 16: εKDV response time vs resolution", RunFig16},
		{"fig17", "Figure 17: response time vs dataset size (hep)", RunFig17},
		{"fig18", "Figure 18: bound value vs iteration (KARL vs QUAD)", RunFig18},
		{"fig19", "Figure 19: εKDV quality across methods", RunFig19},
		{"fig20", "Figure 20: progressive avg relative error vs time", RunFig20},
		{"fig21", "Figure 21: QUAD progressive maps at five timestamps", RunFig21},
		{"fig22", "Figure 22: εKDV time, triangular & cosine kernels", RunFig22},
		{"fig23", "Figure 23: τKDV time, triangular & cosine kernels", RunFig23},
		{"fig24", "Figure 24: KDE throughput vs dimensionality", RunFig24},
		{"fig27", "Figure 27: exponential-kernel εKDV and τKDV", RunFig27},
		{"tightness", "Ablation: root-bound tightness distribution", RunTightness},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// epsMethods are the εKDV competitors of Figure 14 (Table 6).
var epsMethods = []struct {
	Label  string
	Method quad.Method
}{
	{"aKDE", quad.MethodMinMax},
	{"KARL", quad.MethodLinear},
	{"QUAD", quad.MethodQuadratic},
	{"Z-order", quad.MethodZOrder},
}

// tauMethods are the τKDV competitors of Figure 15 (Table 6).
var tauMethods = []struct {
	Label  string
	Method quad.Method
}{
	{"tKDC", quad.MethodMinMax},
	{"KARL", quad.MethodLinear},
	{"QUAD", quad.MethodQuadratic},
}

// RunDatasets prints the Table 5 analogue inventory.
func RunDatasets(c *Config) error {
	t := Table{
		Title:   "Table 5: dataset analogues (synthetic, seeded)",
		Headers: []string{"name", "n", "dim(2d-proj)", "gamma(Scott)", "weight"},
	}
	for _, name := range dataset.Names() {
		d, err := c.LoadDataset(name)
		if err != nil {
			return err
		}
		bw := stats.ScottsRule(d.Pts, kernel.Gaussian)
		t.Add(name, fmt.Sprintf("%d", d.N), "2",
			fmt.Sprintf("%.4g", bw.Gamma), fmt.Sprintf("%.3g", bw.Weight))
	}
	c.Emit(&t)
	return nil
}

// RunFig2 renders the three map styles of Figure 2 as PNGs.
func RunFig2(c *Config) error {
	if c.OutDir == "" {
		fmt.Fprintln(c.Out, "fig2: set -out DIR to write PNGs; skipping")
		return nil
	}
	d, err := c.LoadDataset("home")
	if err != nil {
		return err
	}
	k, err := d.Build(quad.Gaussian, quad.MethodQuadratic, 0.01)
	if err != nil {
		return err
	}
	res := quad.Resolution{W: c.Res.W, H: c.Res.H}
	exact, err := k.RenderEps(res, 0) // ε=0 refines to exact
	if err != nil {
		return err
	}
	if err := exact.SavePNG(filepath.Join(c.OutDir, "fig2a_exact.png"), true); err != nil {
		return err
	}
	eps, err := k.RenderEps(res, 0.01)
	if err != nil {
		return err
	}
	if err := eps.SavePNG(filepath.Join(c.OutDir, "fig2b_epskdv.png"), true); err != nil {
		return err
	}
	mu, _ := eps.MuSigma()
	tau, err := k.RenderTau(res, mu)
	if err != nil {
		return err
	}
	if err := tau.SavePNG(filepath.Join(c.OutDir, "fig2c_taukdv.png")); err != nil {
		return err
	}
	fmt.Fprintf(c.Out, "fig2: wrote fig2a_exact.png, fig2b_epskdv.png, fig2c_taukdv.png (τ=μ=%.4g, hot %.1f%%)\n",
		mu, tau.HotFraction()*100)
	return nil
}

// RunFig14 times εKDV across ε for every dataset and method.
func RunFig14(c *Config) error {
	for _, name := range dataset.Names() {
		d, err := c.LoadDataset(name)
		if err != nil {
			return err
		}
		t := Table{
			Title:   fmt.Sprintf("Figure 14 (%s, n=%d, %s): εKDV seconds vs ε", name, d.N, c.Res),
			Headers: append([]string{"method"}, formatFloats(c.Eps)...),
		}
		for _, m := range epsMethods {
			row := []string{m.Label}
			for _, eps := range c.Eps {
				k, err := d.Build(quad.Gaussian, m.Method, eps)
				if err != nil {
					return err
				}
				cell, err := TimeEps(k, d.Pts, c.Res, eps, c.CellTimeout)
				if err != nil {
					return err
				}
				row = append(row, cell.String())
			}
			t.Add(row...)
		}
		c.Emit(&t)
	}
	return nil
}

// RunFig15 times τKDV across the τ ladder for every dataset and method.
func RunFig15(c *Config) error {
	for _, name := range dataset.Names() {
		d, err := c.LoadDataset(name)
		if err != nil {
			return err
		}
		mu, sigma, err := c.MuSigma(d)
		if err != nil {
			return err
		}
		taus := stats.Thresholds(mu, sigma, c.TauMultiples)
		t := Table{
			Title:   fmt.Sprintf("Figure 15 (%s, μ=%.3g σ=%.3g): τKDV seconds vs τ", name, mu, sigma),
			Headers: append([]string{"method"}, tauHeaders(c.TauMultiples)...),
		}
		for _, m := range tauMethods {
			row := []string{m.Label}
			for _, tau := range taus {
				k, err := d.Build(quad.Gaussian, m.Method, 0.01)
				if err != nil {
					return err
				}
				cell, err := TimeTau(k, d.Pts, c.Res, tau, c.CellTimeout)
				if err != nil {
					return err
				}
				row = append(row, cell.String())
			}
			t.Add(row...)
		}
		c.Emit(&t)
	}
	return nil
}

// RunFig16 times εKDV (ε=0.01) across resolutions.
func RunFig16(c *Config) error {
	for _, name := range dataset.Names() {
		d, err := c.LoadDataset(name)
		if err != nil {
			return err
		}
		headers := []string{"method"}
		for _, r := range c.Resolutions {
			headers = append(headers, r.String())
		}
		t := Table{
			Title:   fmt.Sprintf("Figure 16 (%s, ε=0.01): εKDV seconds vs resolution", name),
			Headers: headers,
		}
		for _, m := range epsMethods {
			row := []string{m.Label}
			k, err := d.Build(quad.Gaussian, m.Method, 0.01)
			if err != nil {
				return err
			}
			for _, r := range c.Resolutions {
				cell, err := TimeEps(k, d.Pts, r, 0.01, c.CellTimeout)
				if err != nil {
					return err
				}
				row = append(row, cell.String())
			}
			t.Add(row...)
		}
		c.Emit(&t)
	}
	return nil
}

// RunFig17 times εKDV and τKDV on hep across cardinalities.
func RunFig17(c *Config) error {
	full, err := dataset.Generate("hep", maxInt(c.HepSizes), c.Seed)
	if err != nil {
		return err
	}
	full = dataset.First2D(full)
	headers := []string{"method"}
	for _, n := range c.HepSizes {
		headers = append(headers, fmt.Sprintf("%dk", n/1000))
	}
	tEps := Table{Title: fmt.Sprintf("Figure 17a (hep, ε=0.01, %s): εKDV seconds vs n", c.Res), Headers: headers}
	tTau := Table{Title: "Figure 17b (hep, τ=μ): τKDV seconds vs n", Headers: headers}

	type prepared struct {
		d   *DS
		tau float64
	}
	preps := make([]prepared, len(c.HepSizes))
	for i, n := range c.HepSizes {
		sub := dataset.Subsample(full, n, c.Seed+int64(i))
		d := &DS{Name: "hep", Pts: sub, N: sub.Len()}
		mu, _, err := c.MuSigma(d)
		if err != nil {
			return err
		}
		preps[i] = prepared{d: d, tau: mu}
	}
	for _, m := range epsMethods {
		row := []string{m.Label}
		for _, p := range preps {
			k, err := p.d.Build(quad.Gaussian, m.Method, 0.01)
			if err != nil {
				return err
			}
			cell, err := TimeEps(k, p.d.Pts, c.Res, 0.01, c.CellTimeout)
			if err != nil {
				return err
			}
			row = append(row, cell.String())
		}
		tEps.Add(row...)
	}
	for _, m := range tauMethods {
		row := []string{m.Label}
		for _, p := range preps {
			k, err := p.d.Build(quad.Gaussian, m.Method, 0.01)
			if err != nil {
				return err
			}
			cell, err := TimeTau(k, p.d.Pts, c.Res, p.tau, c.CellTimeout)
			if err != nil {
				return err
			}
			row = append(row, cell.String())
		}
		tTau.Add(row...)
	}
	c.Emit(&tEps)
	c.Emit(&tTau)
	return nil
}

// RunFig18 traces KARL vs QUAD aggregate bounds per iteration on the
// highest-density home pixel.
func RunFig18(c *Config) error {
	d, err := c.LoadDataset("home")
	if err != nil {
		return err
	}
	kq, err := d.Build(quad.Gaussian, quad.MethodQuadratic, 0.01)
	if err != nil {
		return err
	}
	q, err := DensestPixel(kq, d.Pts, c.Res)
	if err != nil {
		return err
	}
	bw := stats.ScottsRule(d.Pts, kernel.Gaussian)
	tree, err := kdtree.Build(d.Pts.Clone(), kdtree.Options{Gram: true})
	if err != nil {
		return err
	}
	trace := func(m bounds.Method) ([]engine.TracePoint, error) {
		ev, err := bounds.NewEvaluator(kernel.Gaussian, bw.Gamma, bw.Weight, m, 2)
		if err != nil {
			return nil, err
		}
		e, err := engine.New(tree, ev)
		if err != nil {
			return nil, err
		}
		return e.BoundTrace(q, 0.01), nil
	}
	karl, err := trace(bounds.Linear)
	if err != nil {
		return err
	}
	quadTrace, err := trace(bounds.Quadratic)
	if err != nil {
		return err
	}
	t := Table{
		Title:   fmt.Sprintf("Figure 18 (home, densest pixel, ε=0.01): bounds per iteration — QUAD stops at %d, KARL at %d", len(quadTrace)-1, len(karl)-1),
		Headers: []string{"iter", "LB_KARL", "UB_KARL", "LB_QUAD", "UB_QUAD"},
	}
	steps := maxInt([]int{len(karl), len(quadTrace)})
	stride := 1 + steps/25
	for i := 0; i < steps; i += stride {
		row := []string{fmt.Sprintf("%d", i)}
		row = append(row, traceCells(karl, i)...)
		row = append(row, traceCells(quadTrace, i)...)
		t.Add(row...)
	}
	c.Emit(&t)
	return nil
}

func traceCells(tr []engine.TracePoint, i int) []string {
	if i >= len(tr) {
		return []string{"-", "-"}
	}
	return []string{fmt.Sprintf("%.5g", tr[i].LB), fmt.Sprintf("%.5g", tr[i].UB)}
}

// RunFig19 compares εKDV value quality across methods against the exact
// reference.
func RunFig19(c *Config) error {
	d, err := c.LoadDataset("home")
	if err != nil {
		return err
	}
	res := c.Res
	if res.Pixels() > 160*120 {
		res.W, res.H = 160, 120 // exact reference cost guard
	}
	ek, err := d.Build(quad.Gaussian, quad.MethodExact, 0)
	if err != nil {
		return err
	}
	exact, err := RenderValues(ek, res, 0)
	if err != nil {
		return err
	}
	t := Table{
		Title:   fmt.Sprintf("Figure 19 (home, ε=0.01, %s): value quality vs exact", res),
		Headers: []string{"method", "avg rel err", "max rel err"},
	}
	for _, m := range epsMethods {
		k, err := d.Build(quad.Gaussian, m.Method, 0.01)
		if err != nil {
			return err
		}
		vals, err := RenderValues(k, res, 0.01)
		if err != nil {
			return err
		}
		qual, err := MeasureQuality(vals, exact)
		if err != nil {
			return err
		}
		t.Add(m.Label, fmt.Sprintf("%.2e", qual.Avg), fmt.Sprintf("%.2e", qual.Max))
	}
	c.Emit(&t)
	return nil
}

// RunFig20 measures progressive-framework quality across time budgets for
// every method.
func RunFig20(c *Config) error {
	d, err := c.LoadDataset("home")
	if err != nil {
		return err
	}
	kq, err := d.Build(quad.Gaussian, quad.MethodQuadratic, 0.01)
	if err != nil {
		return err
	}
	res := quad.Resolution{W: c.Res.W, H: c.Res.H}
	refRun, err := kq.RenderProgressive(res, 0.001, 0, 0)
	if err != nil {
		return err
	}
	ref := refRun.Map.Values
	// Relative error is floored at 1e-6 of the peak density so empty-region
	// pixels (F in the deep kernel tail) do not dominate the average; see
	// stats.FlooredAvgRelativeError.
	var peak float64
	for _, v := range ref {
		if v > peak {
			peak = v
		}
	}
	floor := 1e-6 * peak

	headers := []string{"method"}
	for _, b := range c.Budgets {
		headers = append(headers, b.String())
	}
	t := Table{
		Title:   fmt.Sprintf("Figure 20 (home, %s): progressive avg relative error vs time budget", c.Res),
		Headers: headers,
	}
	methods := append([]struct {
		Label  string
		Method quad.Method
	}{{"EXACT", quad.MethodExact}}, epsMethods...)
	for _, m := range methods {
		k, err := d.Build(quad.Gaussian, m.Method, 0.01)
		if err != nil {
			return err
		}
		row := []string{m.Label}
		for _, b := range c.Budgets {
			r, err := k.RenderProgressive(res, 0.01, b, 0)
			if err != nil {
				return err
			}
			avg, err := stats.FlooredAvgRelativeError(r.Map.Values, ref, floor)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3g", avg))
		}
		t.Add(row...)
	}
	c.Emit(&t)
	return nil
}

// RunFig21 writes QUAD progressive snapshots at five budgets.
func RunFig21(c *Config) error {
	if c.OutDir == "" {
		fmt.Fprintln(c.Out, "fig21: set -out DIR to write PNGs; skipping")
		return nil
	}
	d, err := c.LoadDataset("home")
	if err != nil {
		return err
	}
	k, err := d.Build(quad.Gaussian, quad.MethodQuadratic, 0.01)
	if err != nil {
		return err
	}
	res := quad.Resolution{W: c.Res.W, H: c.Res.H}
	budgets := []time.Duration{20 * time.Millisecond, 50 * time.Millisecond,
		200 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second}
	for _, b := range budgets {
		r, err := k.RenderProgressive(res, 0.01, b, 0)
		if err != nil {
			return err
		}
		path := filepath.Join(c.OutDir, fmt.Sprintf("fig21_t%s.png", b))
		if err := r.Map.SavePNG(path, true); err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "fig21: t=%-8s evaluated %6d/%d pixels → %s\n",
			b, r.Evaluated, res.W*res.H, path)
	}
	return nil
}

// runOtherKernelEps is shared by Figures 22 and 27a-b.
func runOtherKernelEps(c *Config, kern quad.Kernel, names []string) error {
	for _, name := range names {
		d, err := c.LoadDataset(name)
		if err != nil {
			return err
		}
		t := Table{
			Title:   fmt.Sprintf("%s kernel (%s): εKDV seconds vs ε", kern, name),
			Headers: append([]string{"method"}, formatFloats(c.Eps)...),
		}
		for _, m := range epsMethods {
			if m.Method == quad.MethodLinear {
				continue // KARL has no O(d) bounds for these kernels (Section 5.1)
			}
			row := []string{m.Label}
			for _, eps := range c.Eps {
				k, err := d.Build(kern, m.Method, eps)
				if err != nil {
					return err
				}
				cell, err := TimeEps(k, d.Pts, c.Res, eps, c.CellTimeout)
				if err != nil {
					return err
				}
				row = append(row, cell.String())
			}
			t.Add(row...)
		}
		c.Emit(&t)
	}
	return nil
}

// runOtherKernelTau is shared by Figures 23 and 27c-d.
func runOtherKernelTau(c *Config, kern quad.Kernel, names []string) error {
	for _, name := range names {
		d, err := c.LoadDataset(name)
		if err != nil {
			return err
		}
		kq, err := d.Build(kern, quad.MethodQuadratic, 0.01)
		if err != nil {
			return err
		}
		stride := 1 + c.Res.Pixels()/4096
		mu, sigma, err := kq.ThresholdStats(quad.Resolution{W: c.Res.W, H: c.Res.H}, stride, 0.01)
		if err != nil {
			return err
		}
		taus := stats.Thresholds(mu, sigma, c.TauMultiples)
		t := Table{
			Title:   fmt.Sprintf("%s kernel (%s, μ=%.3g σ=%.3g): τKDV seconds vs τ", kern, name, mu, sigma),
			Headers: append([]string{"method"}, tauHeaders(c.TauMultiples)...),
		}
		for _, m := range tauMethods {
			if m.Method == quad.MethodLinear {
				continue
			}
			row := []string{m.Label}
			for _, tau := range taus {
				k, err := d.Build(kern, m.Method, 0.01)
				if err != nil {
					return err
				}
				cell, err := TimeTau(k, d.Pts, c.Res, tau, c.CellTimeout)
				if err != nil {
					return err
				}
				row = append(row, cell.String())
			}
			t.Add(row...)
		}
		c.Emit(&t)
	}
	return nil
}

// RunFig22 measures εKDV for triangular and cosine kernels on crime & hep.
func RunFig22(c *Config) error {
	if err := runOtherKernelEps(c, quad.Triangular, []string{"crime", "hep"}); err != nil {
		return err
	}
	return runOtherKernelEps(c, quad.Cosine, []string{"crime", "hep"})
}

// RunFig23 measures τKDV for triangular and cosine kernels on crime & hep.
func RunFig23(c *Config) error {
	if err := runOtherKernelTau(c, quad.Triangular, []string{"crime", "hep"}); err != nil {
		return err
	}
	return runOtherKernelTau(c, quad.Cosine, []string{"crime", "hep"})
}

// RunFig24 measures general-KDE throughput (queries/sec) vs dimensionality
// on PCA-projected home and hep analogues.
func RunFig24(c *Config) error {
	for _, name := range []string{"home", "hep"} {
		n := 0
		if c.Sizes != nil {
			n = c.Sizes[name]
		}
		fullPts, err := dataset.Generate(name, n, c.Seed)
		if err != nil {
			return err
		}
		// home is natively 2-d; lift it by replicating noise-augmented
		// channels so the PCA sweep has 10 source dimensions, mirroring the
		// paper's use of the dataset's full attribute set.
		src := fullPts
		if src.Dim < maxInt(c.Dims) {
			src = liftDims(src, maxInt(c.Dims), c.Seed)
		}
		model, err := pca.Fit(src)
		if err != nil {
			return err
		}
		headers := []string{"method"}
		for _, dim := range c.Dims {
			headers = append(headers, fmt.Sprintf("d=%d", dim))
		}
		t := Table{
			Title:   fmt.Sprintf("Figure 24 (%s, Gaussian, ε=0.01): throughput queries/sec vs dimensionality", name),
			Headers: headers,
		}
		methods := []struct {
			Label  string
			Method quad.Method
		}{
			{"SCAN", quad.MethodExact},
			{"aKDE", quad.MethodMinMax},
			{"KARL", quad.MethodLinear},
			{"QUAD", quad.MethodQuadratic},
		}
		const queries = 64
		for _, m := range methods {
			row := []string{m.Label}
			for _, dim := range c.Dims {
				proj, err := model.Project(src, dim)
				if err != nil {
					return err
				}
				k, err := quad.New(proj.Coords, dim, quad.WithMethod(m.Method))
				if err != nil {
					return err
				}
				qs := dataset.Subsample(proj, queries, c.Seed+99)
				start := time.Now()
				count := 0
				deadline := start.Add(c.CellTimeout)
				for i := 0; i < qs.Len(); i++ {
					if _, err := k.Estimate(qs.At(i), 0.01); err != nil {
						return err
					}
					count++
					if time.Now().After(deadline) {
						break
					}
				}
				qps := float64(count) / time.Since(start).Seconds()
				row = append(row, fmt.Sprintf("%.3g", qps))
			}
			t.Add(row...)
		}
		c.Emit(&t)
	}
	return nil
}

// liftDims pads a dataset with correlated noise channels up to dim
// dimensions so the PCA sweep has material to project: channel j beyond the
// native ones is a scaled copy of a native channel plus Gaussian noise.
func liftDims(pts geom.Points, dim int, seed int64) geom.Points {
	if pts.Dim >= dim {
		return pts
	}
	rng := rand.New(rand.NewSource(seed + 1234))
	n := pts.Len()
	coords := make([]float64, 0, n*dim)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		coords = append(coords, p...)
		for j := pts.Dim; j < dim; j++ {
			base := p[j%pts.Dim]
			coords = append(coords, 0.6*base+rng.NormFloat64())
		}
	}
	return geom.NewPoints(coords, dim)
}

// RunFig27 measures the exponential kernel (appendix 9.7).
func RunFig27(c *Config) error {
	if err := runOtherKernelEps(c, quad.Exponential, []string{"crime", "hep"}); err != nil {
		return err
	}
	return runOtherKernelTau(c, quad.Exponential, []string{"crime", "hep"})
}

// RunTightness reports the distribution of per-node bound gaps
// (UB−LB)/(w·|P|) across methods, measured on mid-level index nodes
// (64–1024 points) where the bounding intervals are narrow enough for the
// envelope shape to matter — the ablation behind Section 7.3. It also
// reports the average εKDV refinement work (points scanned per pixel) as
// the end-to-end consequence.
func RunTightness(c *Config) error {
	d, err := c.LoadDataset("crime")
	if err != nil {
		return err
	}
	bw := stats.ScottsRule(d.Pts, kernel.Gaussian)
	tree, err := kdtree.Build(d.Pts.Clone(), kdtree.Options{Gram: true})
	if err != nil {
		return err
	}
	t := Table{
		Title:   "Bound tightness on mid-level nodes (crime): gap (UB−LB)/(w·|P|) and εKDV work",
		Headers: []string{"method", "gap p50", "gap p90", "gap mean", "pts scanned/pixel"},
	}
	qs := dataset.Subsample(d.Pts, 64, c.Seed+5)
	for _, m := range []struct {
		label  string
		method bounds.Method
	}{{"MinMax", bounds.MinMax}, {"KARL", bounds.Linear}, {"QUAD", bounds.Quadratic}} {
		ev, err := bounds.NewEvaluator(kernel.Gaussian, bw.Gamma, bw.Weight, m.method, 2)
		if err != nil {
			return err
		}
		var gaps []float64
		for i := 0; i < qs.Len(); i++ {
			q := qs.At(i)
			tree.Walk(func(n *kdtree.Node) bool {
				if n.Size() >= 64 && n.Size() <= 1024 {
					lb, ub := ev.Bounds(n, q)
					gaps = append(gaps, (ub-lb)/(bw.Weight*n.SumW))
				}
				return n.Size() > 64
			})
		}
		sort.Float64s(gaps)
		var mean float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))

		eng, err := engine.New(tree, ev)
		if err != nil {
			return err
		}
		var scanned int
		for i := 0; i < qs.Len(); i++ {
			_, st := eng.EvalEps(qs.At(i), 0.01)
			scanned += st.PointsScanned
		}
		t.Add(m.label,
			fmt.Sprintf("%.3g", percentile(gaps, 0.5)),
			fmt.Sprintf("%.3g", percentile(gaps, 0.9)),
			fmt.Sprintf("%.3g", mean),
			fmt.Sprintf("%.0f", float64(scanned)/float64(qs.Len())))
	}
	c.Emit(&t)
	return nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func formatFloats(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("ε=%.2g", x)
	}
	return out
}

func tauHeaders(multiples []float64) []string {
	out := make([]string, len(multiples))
	for i, m := range multiples {
		switch {
		case m == 0:
			out[i] = "μ"
		case m > 0:
			out[i] = fmt.Sprintf("μ+%.1fσ", m)
		default:
			out[i] = fmt.Sprintf("μ−%.1fσ", -m)
		}
	}
	return out
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
