package conformance

import (
	"fmt"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/kernel"
)

// The flat-vs-pointer differential pass: the flat SoA engine (the default
// layout) must render bit-identically to the pointer-tree engine it
// replaced, across every bound-based method × kernel × tile size — and under
// sharding. The pointer engine is retained behind WithEngineLayout exactly
// so it can serve as this oracle: both layouts feed the same scalar bound
// cores and the same heap algorithms, so any divergence is a bug in the
// flattening, not legitimate floating-point drift. The checks are therefore
// exact (Float64bits), with no tolerance.

// buildLayoutKDV is buildKDV pinned to an engine layout.
func buildLayoutKDV(cfg *Config, k kernel.Kernel, m quad.Method, gamma, weight float64, ts int, l quad.EngineLayout) (*quad.KDV, error) {
	kdv, err := quad.New(cfg.Pts.Coords, 2,
		quad.WithKernel(qKernel(k)),
		quad.WithMethod(m),
		quad.WithBandwidth(gamma, weight),
		quad.WithTileSize(ts),
		quad.WithWorkers(cfg.Workers),
		quad.WithEngineLayout(l),
	)
	if err != nil {
		return nil, fmt.Errorf("conformance: building %s/%s/ts=%d layout %d: %w", k, m, ts, l, err)
	}
	return kdv, nil
}

// runFlat renders every bound-based cell of the matrix through both engine
// layouts and asserts bit-identity of εKDV rasters and τKDV masks. With
// cfg.FlatQuick the matrix is cut to the first kernel × MethodQuadratic
// (still across all tile sizes), the subset CI's quick gate runs.
func runFlat(cfg *Config, rep *Report) error {
	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}
	kernels := cfg.Kernels
	methods := cfg.Methods
	if cfg.FlatQuick {
		kernels = kernels[:1]
		methods = []quad.Method{quad.MethodQuadratic}
	}
	for _, k := range kernels {
		ref, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)))
		if err != nil {
			return fmt.Errorf("conformance: flat reference build (%s): %w", k, err)
		}
		gamma, weight := ref.Gamma(), ref.Weight()
		tau := flatTau(ref, res, cfg)

		for _, m := range methods {
			if m == quad.MethodExact || m == quad.MethodZOrder {
				continue // scan methods never touch the tree engines
			}
			if m == quad.MethodLinear && !k.HasLinearBounds() {
				continue
			}
			for _, ts := range cfg.TileSizes {
				tag := fmt.Sprintf("%s/%s/ts=%d", k, m, ts)
				fl, err := buildLayoutKDV(cfg, k, m, gamma, weight, ts, quad.LayoutFlat)
				if err != nil {
					return err
				}
				pt, err := buildLayoutKDV(cfg, k, m, gamma, weight, ts, quad.LayoutPointer)
				if err != nil {
					return err
				}

				fdm, err := fl.RenderEps(res, cfg.Eps)
				if err != nil {
					return fmt.Errorf("conformance: flat RenderEps %s: %w", tag, err)
				}
				pdm, err := pt.RenderEps(res, cfg.Eps)
				if err != nil {
					return fmt.Errorf("conformance: pointer RenderEps %s: %w", tag, err)
				}
				rep.add(CheckRastersIdentical("flat-identity/eps/"+tag, fdm.Values, pdm.Values))

				fhm, err := fl.RenderTau(res, tau)
				if err != nil {
					return fmt.Errorf("conformance: flat RenderTau %s: %w", tag, err)
				}
				phm, err := pt.RenderTau(res, tau)
				if err != nil {
					return fmt.Errorf("conformance: pointer RenderTau %s: %w", tag, err)
				}
				rep.add(CheckMasksIdentical("flat-identity/tau/"+tag, fhm.Hot, phm.Hot))
			}
		}
	}

	// Sharded views flatten a different point subset per shard; each must
	// stay bit-identical to its pointer twin, or distributed merges would
	// silently mix engine behaviors.
	k := cfg.Kernels[0]
	ref, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)))
	if err != nil {
		return fmt.Errorf("conformance: flat shard reference build: %w", err)
	}
	gamma, weight := ref.Gamma(), ref.Weight()
	counts := shardCounts
	if cfg.FlatQuick {
		counts = counts[:1]
	}
	for _, count := range counts {
		for i := 0; i < count; i++ {
			tag := fmt.Sprintf("%s/quad/shard=%d-of-%d", k, i, count)
			fl, err := buildLayoutShard(cfg, k, gamma, weight, i, count, quad.LayoutFlat)
			if err != nil {
				return err
			}
			pt, err := buildLayoutShard(cfg, k, gamma, weight, i, count, quad.LayoutPointer)
			if err != nil {
				return err
			}
			fdm, err := fl.RenderEps(res, cfg.Eps)
			if err != nil {
				return fmt.Errorf("conformance: flat shard RenderEps %s: %w", tag, err)
			}
			pdm, err := pt.RenderEps(res, cfg.Eps)
			if err != nil {
				return fmt.Errorf("conformance: pointer shard RenderEps %s: %w", tag, err)
			}
			rep.add(CheckRastersIdentical("flat-identity/eps/"+tag, fdm.Values, pdm.Values))
		}
	}
	return nil
}

// flatTau derives the τ threshold for the flat pass from a quick εKDV render
// of the reference build — the pass compares engines against each other, so
// τ only needs to land inside the raster's dynamic range, not match the
// oracle-derived ladder of the main differential pass.
func flatTau(ref *quad.KDV, res quad.Resolution, cfg *Config) float64 {
	dm, err := ref.RenderEps(res, cfg.Eps)
	if err != nil || len(dm.Values) == 0 {
		return 0
	}
	var mu float64
	for _, v := range dm.Values {
		mu += v
	}
	mu /= float64(len(dm.Values))
	return mu * (1 + 0.1*cfg.TauSigma)
}

// buildLayoutShard is buildShardKDV pinned to an engine layout.
func buildLayoutShard(cfg *Config, k kernel.Kernel, gamma, weight float64, i, count int, l quad.EngineLayout) (*quad.KDV, error) {
	kdv, err := quad.New(cfg.Pts.Coords, 2,
		quad.WithKernel(qKernel(k)),
		quad.WithMethod(quad.MethodQuadratic),
		quad.WithBandwidth(gamma, weight),
		quad.WithWorkers(cfg.Workers),
		quad.WithShard(i, count),
		quad.WithEngineLayout(l),
	)
	if err != nil {
		return nil, fmt.Errorf("conformance: building %s shard %d/%d layout %d: %w", k, i, count, l, err)
	}
	return kdv, nil
}
