package conformance

import (
	"fmt"
	"math"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/oracle"
)

// checkScaledBy asserts b[i] == s·a[i] bit-for-bit. It backs the properties
// where the transformation is exact in IEEE arithmetic (s a power of two).
func checkScaledBy(name string, a, b []float64, s float64) Check {
	if len(a) != len(b) {
		return Check{Name: name, Detail: fmt.Sprintf("raster sizes differ: %d vs %d", len(a), len(b))}
	}
	for i := range a {
		if math.Float64bits(b[i]) != math.Float64bits(s*a[i]) {
			return Check{Name: name, Detail: fmt.Sprintf("pixel %d: %.17g != %g × %.17g", i, b[i], s, a[i])}
		}
	}
	return Check{Name: name, Pass: true}
}

// checkMonotone asserts lo[i] ≤ hi[i] up to compensated-summation noise.
func checkMonotone(name string, lo, hi []float64) Check {
	if len(lo) != len(hi) {
		return Check{Name: name, Detail: fmt.Sprintf("raster sizes differ: %d vs %d", len(lo), len(hi))}
	}
	for i := range lo {
		if lo[i] > hi[i]+boundTol(lo[i], hi[i]) {
			return Check{Name: name, Detail: fmt.Sprintf("pixel %d: subset density %.17g exceeds full %.17g", i, lo[i], hi[i])}
		}
	}
	return Check{Name: name, Pass: true}
}

// bboxWindow returns the dataset's bounding box padded by frac of each span.
func bboxWindow(pts geom.Points, frac float64) quad.Window {
	r := geom.BoundingRect(pts)
	padX := frac * (r.Max[0] - r.Min[0])
	padY := frac * (r.Max[1] - r.Min[1])
	return quad.Window{
		MinX: r.Min[0] - padX, MinY: r.Min[1] - padY,
		MaxX: r.Max[0] + padX, MaxY: r.Max[1] + padY,
	}
}

func windowRect(w quad.Window) geom.Rect {
	return geom.Rect{Min: []float64{w.MinX, w.MinY}, Max: []float64{w.MaxX, w.MaxY}}
}

// runMetamorphic checks the suite's metamorphic properties on the Gaussian
// kernel under MethodQuadratic: relations between renders of transformed
// inputs that must hold without any reference to ground truth — several of
// them exactly, because the transformation commutes with IEEE rounding.
func runMetamorphic(cfg *Config, rep *Report) error {
	const k = kernel.Gaussian
	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}
	ref, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)))
	if err != nil {
		return fmt.Errorf("conformance: metamorphic reference build: %w", err)
	}
	gamma, weight := ref.Gamma(), ref.Weight()
	kdv, err := buildKDV(cfg, k, quad.MethodQuadratic, gamma, weight, 0)
	if err != nil {
		return err
	}
	dm, err := kdv.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: metamorphic render: %w", err)
	}
	mu, sigma := oracle.MuSigma(dm.Values)
	tau := mu + cfg.TauSigma*sigma
	hm, err := kdv.RenderTau(res, tau)
	if err != nil {
		return fmt.Errorf("conformance: metamorphic render: %w", err)
	}

	// Weight linearity: doubling the scalar weight doubles every pixel
	// exactly (scaling by a power of two commutes with every rounding in
	// the pipeline), and τKDV at 2τ makes identical decisions.
	kdv2w, err := buildKDV(cfg, k, quad.MethodQuadratic, gamma, 2*weight, 0)
	if err != nil {
		return err
	}
	dm2w, err := kdv2w.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: metamorphic render: %w", err)
	}
	rep.add(checkScaledBy("metamorphic/weight-linearity/eps", dm.Values, dm2w.Values, 2))
	hm2w, err := kdv2w.RenderTau(res, 2*tau)
	if err != nil {
		return fmt.Errorf("conformance: metamorphic render: %w", err)
	}
	rep.add(CheckMasksIdentical("metamorphic/weight-linearity/tau", hm.Hot, hm2w.Hot))

	if err := metamorphicTranslation(cfg, rep, gamma, weight); err != nil {
		return err
	}
	if err := metamorphicScale(cfg, rep, gamma, weight, tau); err != nil {
		return err
	}
	if err := metamorphicDuplication(cfg, rep, gamma, weight); err != nil {
		return err
	}
	return metamorphicSampling(cfg, rep, gamma, weight)
}

// metamorphicTranslation: translating the dataset and the window together
// must preserve the raster. The translation itself rounds (coordinates gain
// a large offset), so agreement is to tight floating-point tolerance for
// the oracle and within the stacked ε budgets for the renders.
func metamorphicTranslation(cfg *Config, rep *Report, gamma, weight float64) error {
	const k = kernel.Gaussian
	dx, dy := 4096.0, -2048.0
	shifted := make([]float64, len(cfg.Pts.Coords))
	for i := 0; i < len(shifted); i += 2 {
		shifted[i] = cfg.Pts.Coords[i] + dx
		shifted[i+1] = cfg.Pts.Coords[i+1] + dy
	}
	win := bboxWindow(cfg.Pts, 0.02)
	winT := quad.Window{MinX: win.MinX + dx, MinY: win.MinY + dy, MaxX: win.MaxX + dx, MaxY: win.MaxY + dy}

	o, err := oracle.New(cfg.Pts, nil, k, gamma, weight)
	if err != nil {
		return err
	}
	oT, err := oracle.New(geom.NewPoints(shifted, 2), nil, k, gamma, weight)
	if err != nil {
		return err
	}
	g, err := grid.New(cfg.Res, windowRect(win))
	if err != nil {
		return err
	}
	gT, err := grid.New(cfg.Res, windowRect(winT))
	if err != nil {
		return err
	}
	rep.add(CheckRastersWithin("metamorphic/translation/oracle", o.Raster(g), oT.Raster(gT), 1e-9))

	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}
	kdv, err := buildKDV(cfg, k, quad.MethodQuadratic, gamma, weight, 0)
	if err != nil {
		return err
	}
	cfgT := *cfg
	cfgT.Pts = geom.NewPoints(shifted, 2)
	kdvT, err := buildKDV(&cfgT, k, quad.MethodQuadratic, gamma, weight, 0)
	if err != nil {
		return err
	}
	dm, err := kdv.RenderEpsIn(res, cfg.Eps, win)
	if err != nil {
		return err
	}
	dmT, err := kdvT.RenderEpsIn(res, cfg.Eps, winT)
	if err != nil {
		return err
	}
	rep.add(CheckRastersWithin("metamorphic/translation/render", dm.Values, dmT.Values, 2*cfg.Eps))
	return nil
}

// metamorphicScale: scaling coordinates by s = 2 with γ' = γ/s² leaves the
// Gaussian density field unchanged — and since every intermediate (tree
// statistics, distances, envelope coefficients) scales by a power of two,
// the renders are bit-identical, not just close.
func metamorphicScale(cfg *Config, rep *Report, gamma, weight, tau float64) error {
	const k = kernel.Gaussian
	scaled := make([]float64, len(cfg.Pts.Coords))
	for i, v := range cfg.Pts.Coords {
		scaled[i] = 2 * v
	}
	win := bboxWindow(cfg.Pts, 0.02)
	winS := quad.Window{MinX: 2 * win.MinX, MinY: 2 * win.MinY, MaxX: 2 * win.MaxX, MaxY: 2 * win.MaxY}
	gammaS := gamma / 4

	o, err := oracle.New(cfg.Pts, nil, k, gamma, weight)
	if err != nil {
		return err
	}
	oS, err := oracle.New(geom.NewPoints(scaled, 2), nil, k, gammaS, weight)
	if err != nil {
		return err
	}
	g, err := grid.New(cfg.Res, windowRect(win))
	if err != nil {
		return err
	}
	gS, err := grid.New(cfg.Res, windowRect(winS))
	if err != nil {
		return err
	}
	rep.add(CheckRastersIdentical("metamorphic/scale/oracle", o.Raster(g), oS.Raster(gS)))

	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}
	kdv, err := buildKDV(cfg, k, quad.MethodQuadratic, gamma, weight, 0)
	if err != nil {
		return err
	}
	cfgS := *cfg
	cfgS.Pts = geom.NewPoints(scaled, 2)
	kdvS, err := buildKDV(&cfgS, k, quad.MethodQuadratic, gammaS, weight, 0)
	if err != nil {
		return err
	}
	dm, err := kdv.RenderEpsIn(res, cfg.Eps, win)
	if err != nil {
		return err
	}
	dmS, err := kdvS.RenderEpsIn(res, cfg.Eps, winS)
	if err != nil {
		return err
	}
	rep.add(CheckRastersIdentical("metamorphic/scale/eps", dm.Values, dmS.Values))
	hm, err := kdv.RenderTauIn(res, tau, win)
	if err != nil {
		return err
	}
	hmS, err := kdvS.RenderTauIn(res, tau, winS)
	if err != nil {
		return err
	}
	rep.add(CheckMasksIdentical("metamorphic/scale/tau", hm.Hot, hmS.Hot))
	return nil
}

// metamorphicDuplication: concatenating the dataset with itself equals
// doubling every per-point weight — for the oracle to compensated-summation
// tolerance, and for the renders within their stacked ε budgets against the
// shared ground truth.
func metamorphicDuplication(cfg *Config, rep *Report, gamma, weight float64) error {
	const k = kernel.Gaussian
	dup := append(append([]float64(nil), cfg.Pts.Coords...), cfg.Pts.Coords...)
	w2 := make([]float64, cfg.Pts.Len())
	for i := range w2 {
		w2[i] = 2
	}
	oDup, err := oracle.New(geom.NewPoints(dup, 2), nil, k, gamma, weight)
	if err != nil {
		return err
	}
	oW, err := oracle.New(cfg.Pts, w2, k, gamma, weight)
	if err != nil {
		return err
	}
	// Duplication preserves the bounding box, so both default windows match.
	g, err := grid.ForDataset(cfg.Res, cfg.Pts, 0.02)
	if err != nil {
		return err
	}
	exact := oDup.Raster(g)
	rep.add(CheckRastersWithin("metamorphic/duplication/oracle", exact, oW.Raster(g), 1e-12))

	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}
	kdvDup, err := quad.New(dup, 2, quad.WithKernel(qKernel(k)), quad.WithBandwidth(gamma, weight), quad.WithWorkers(cfg.Workers))
	if err != nil {
		return err
	}
	kdvW, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)), quad.WithPointWeights(w2), quad.WithBandwidth(gamma, weight), quad.WithWorkers(cfg.Workers))
	if err != nil {
		return err
	}
	dmDup, err := kdvDup.RenderEps(res, cfg.Eps)
	if err != nil {
		return err
	}
	dmW, err := kdvW.RenderEps(res, cfg.Eps)
	if err != nil {
		return err
	}
	rep.add(CheckEpsRaster("metamorphic/duplication/eps-dup", dmDup.Values, exact, cfg.Eps))
	rep.add(CheckEpsRaster("metamorphic/duplication/eps-weighted", dmW.Values, exact, cfg.Eps))
	rep.add(CheckRastersWithin("metamorphic/duplication/render-agreement", dmDup.Values, dmW.Values, 2*cfg.Eps))
	return nil
}

// metamorphicSampling: with γ and the scalar weight held fixed, the density
// of a prefix subset is pointwise ≤ the full dataset's (every kernel term
// is non-negative).
func metamorphicSampling(cfg *Config, rep *Report, gamma, weight float64) error {
	const k = kernel.Gaussian
	m := cfg.Pts.Len() / 2
	if m < 1 {
		return nil
	}
	prefix := geom.NewPoints(append([]float64(nil), cfg.Pts.Coords[:m*2]...), 2)
	oFull, err := oracle.New(cfg.Pts, nil, k, gamma, weight)
	if err != nil {
		return err
	}
	oPrefix, err := oracle.New(prefix, nil, k, gamma, weight)
	if err != nil {
		return err
	}
	g, err := grid.ForDataset(cfg.Res, cfg.Pts, 0.02)
	if err != nil {
		return err
	}
	rep.add(checkMonotone("metamorphic/sampling-monotonicity", oPrefix.Raster(g), oFull.Raster(g)))
	return nil
}
