package conformance

import (
	"bytes"
	"context"
	"fmt"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/render"
)

// The tile-pyramid stitch pass: an XYZ zoom level rendered tile by tile
// through the sub-rect entry point, stitched back together, must be
// bit-identical (Float64bits) to one full-raster render at that zoom's
// resolution — for every method × kernel. This is the correctness contract
// of the /tiles serving layer: clients assemble mosaics from independently
// rendered (and independently cached) tiles, and a seam would be a wrong
// answer, not a cosmetic blemish. The identity is exact because a tile's
// grid is an offset view sharing the full raster's window and steps (every
// query point is the same float64) and tile origins stay aligned to the
// engine's pixel-tile lattice (so tile-shared frontiers see the same
// 16×16 blocks); PR8's flat-engine determinism supplies the rest. A
// PNG-byte check on the representative combo additionally proves the
// encoded artifact matches (fixed color scale), and a mutation self-test
// plants an off-by-one tile origin and asserts the check catches it.

// tilePassT is the tile edge used by the pass — the engine's pixel-tile
// lattice size, so every tile origin is aligned.
const tilePassT = 16

// tilePassZooms are the two pyramid levels the pass stitches.
var tilePassZooms = []int{1, 2}

// runTiles executes the stitch pass. With cfg.TileQuick the matrix is cut
// to the first kernel × MethodQuadratic (both zooms still run — the
// cross-tile seams are the point of the pass).
func runTiles(cfg *Config, rep *Report) error {
	kernels := cfg.Kernels
	methods := cfg.Methods
	if cfg.TileQuick {
		kernels = kernels[:1]
		methods = []quad.Method{quad.MethodQuadratic}
	}
	for _, k := range kernels {
		for _, m := range methods {
			if m == quad.MethodLinear && !k.HasLinearBounds() {
				continue
			}
			kdv, err := buildTileKDV(cfg, k, m)
			if err != nil {
				return err
			}
			for _, z := range tilePassZooms {
				tag := fmt.Sprintf("%s/%s/z=%d", k, m, z)
				if err := stitchCheck(cfg, rep, kdv, z, tag); err != nil {
					return err
				}
			}
		}
	}
	if err := tilePNGCheck(cfg, rep, kernels[0]); err != nil {
		return err
	}
	return tileMutationCheck(cfg, rep, kernels[0])
}

func buildTileKDV(cfg *Config, k kernel.Kernel, m quad.Method) (*quad.KDV, error) {
	kdv, err := quad.New(cfg.Pts.Coords, 2,
		quad.WithKernel(qKernel(k)),
		quad.WithMethod(m),
		quad.WithWorkers(cfg.Workers),
		quad.WithZOrderGuarantee(cfg.Eps, 0.2),
	)
	if err != nil {
		return nil, fmt.Errorf("conformance: tile build %s/%s: %w", k, m, err)
	}
	return kdv, nil
}

// renderZoom renders the full conceptual raster of zoom z (the stitch
// reference).
func renderZoom(cfg *Config, kdv *quad.KDV, z int) (*quad.DensityMap, quad.Resolution, error) {
	n := 1 << z
	full := quad.Resolution{W: n * tilePassT, H: n * tilePassT}
	dm, err := kdv.RenderEps(full, cfg.Eps)
	return dm, full, err
}

// stitchCheck renders every tile of zoom z, stitches them, and asserts
// bit-identity with the full render.
func stitchCheck(cfg *Config, rep *Report, kdv *quad.KDV, z int, tag string) error {
	ref, full, err := renderZoom(cfg, kdv, z)
	if err != nil {
		return fmt.Errorf("conformance: tile reference render %s: %w", tag, err)
	}
	stitched := make([]float64, full.W*full.H)
	n := 1 << z
	for ty := 0; ty < n; ty++ {
		for tx := 0; tx < n; tx++ {
			sub := quad.PixelRect{
				X0: tx * tilePassT, X1: (tx + 1) * tilePassT,
				Y0: ty * tilePassT, Y1: (ty + 1) * tilePassT,
			}
			dm, err := kdv.RenderEpsSubInCtx(context.Background(), full, cfg.Eps, quad.Window{}, sub)
			if err != nil {
				return fmt.Errorf("conformance: tile render %s %d/%d: %w", tag, tx, ty, err)
			}
			for y := 0; y < tilePassT; y++ {
				copy(stitched[(sub.Y0+y)*full.W+sub.X0:(sub.Y0+y)*full.W+sub.X1],
					dm.Values[y*tilePassT:(y+1)*tilePassT])
			}
		}
	}
	rep.add(CheckRastersIdentical("tiles/stitch/"+tag, stitched, ref.Values))
	return nil
}

// tilePNGCheck proves the encoded artifact identity on the representative
// combo: with a color scale fixed from the zoom-0 base render (what the
// serving pyramid does), each tile's PNG bytes equal the PNG of the same
// crop of the full render.
func tilePNGCheck(cfg *Config, rep *Report, k kernel.Kernel) error {
	kdv, err := buildTileKDV(cfg, k, quad.MethodQuadratic)
	if err != nil {
		return err
	}
	base, err := kdv.RenderEps(quad.Resolution{W: tilePassT, H: tilePassT}, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: tile png base render: %w", err)
	}
	bv := &grid.Values{Res: grid.Resolution{W: tilePassT, H: tilePassT}, Data: base.Values}
	lo, hi := bv.MinMax()

	const z = 1
	ref, full, err := renderZoom(cfg, kdv, z)
	if err != nil {
		return fmt.Errorf("conformance: tile png reference render: %w", err)
	}
	name := fmt.Sprintf("tiles/png/%s/quad/z=%d", k, z)
	n := 1 << z
	for ty := 0; ty < n; ty++ {
		for tx := 0; tx < n; tx++ {
			sub := quad.PixelRect{
				X0: tx * tilePassT, X1: (tx + 1) * tilePassT,
				Y0: ty * tilePassT, Y1: (ty + 1) * tilePassT,
			}
			dm, err := kdv.RenderEpsSubInCtx(context.Background(), full, cfg.Eps, quad.Window{}, sub)
			if err != nil {
				return fmt.Errorf("conformance: tile png render %d/%d: %w", tx, ty, err)
			}
			tilePNG, err := encodeFixed(dm.Values, tilePassT, tilePassT, lo, hi)
			if err != nil {
				return err
			}
			crop := make([]float64, tilePassT*tilePassT)
			for y := 0; y < tilePassT; y++ {
				copy(crop[y*tilePassT:(y+1)*tilePassT],
					ref.Values[(sub.Y0+y)*full.W+sub.X0:(sub.Y0+y)*full.W+sub.X1])
			}
			cropPNG, err := encodeFixed(crop, tilePassT, tilePassT, lo, hi)
			if err != nil {
				return err
			}
			if !bytes.Equal(tilePNG, cropPNG) {
				rep.add(Check{Name: name, Detail: fmt.Sprintf(
					"tile %d/%d PNG (%d bytes) differs from full-render crop PNG (%d bytes)",
					tx, ty, len(tilePNG), len(cropPNG))})
				return nil
			}
		}
	}
	rep.add(Check{Name: name, Pass: true})
	return nil
}

func encodeFixed(vals []float64, w, h int, lo, hi float64) ([]byte, error) {
	v := &grid.Values{Res: grid.Resolution{W: w, H: h}, Data: vals}
	var buf bytes.Buffer
	if err := render.EncodePNG(&buf, render.HeatmapFixed(v, lo, hi, render.Log)); err != nil {
		return nil, fmt.Errorf("conformance: tile png encode: %w", err)
	}
	return buf.Bytes(), nil
}

// tileMutationCheck is the pass's self-test: a tile rendered from an
// off-by-one origin (the planted bug: a bbox computed one pixel off) must
// NOT pass the identity check against the true crop — if it did, the pass
// has no teeth.
func tileMutationCheck(cfg *Config, rep *Report, k kernel.Kernel) error {
	kdv, err := buildTileKDV(cfg, k, quad.MethodQuadratic)
	if err != nil {
		return err
	}
	ref, full, err := renderZoom(cfg, kdv, 1)
	if err != nil {
		return fmt.Errorf("conformance: tile mutation reference: %w", err)
	}
	// The planted off-by-one: tile (0,0) addressed one pixel east/north.
	bad, err := kdv.RenderEpsSubInCtx(context.Background(), full, cfg.Eps, quad.Window{},
		quad.PixelRect{X0: 1, Y0: 1, X1: tilePassT + 1, Y1: tilePassT + 1})
	if err != nil {
		return fmt.Errorf("conformance: tile mutation render: %w", err)
	}
	crop := make([]float64, tilePassT*tilePassT)
	for y := 0; y < tilePassT; y++ {
		copy(crop[y*tilePassT:(y+1)*tilePassT], ref.Values[y*full.W:y*full.W+tilePassT])
	}
	verdict := CheckRastersIdentical("", crop, bad.Values)
	c := Check{Name: fmt.Sprintf("tiles/mutation/%s/off-by-one-rejected", k), Pass: !verdict.Pass}
	if verdict.Pass {
		c.Detail = "an off-by-one tile origin passed the stitch identity check — the pass cannot catch bbox addressing bugs"
	}
	rep.add(c)
	return nil
}
