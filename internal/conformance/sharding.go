package conformance

import (
	"fmt"
	"math"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/oracle"
)

// shardCounts are the partition widths the additive-merge pass proves —
// the 2-way and 4-way splits the scale-out smoke and chaos scenarios use.
var shardCounts = []int{2, 4}

// buildShardKDV constructs the shard-i-of-count view of the config's
// dataset, pinning (γ, w) so every shard — and the oracle — share one
// bandwidth regardless of which points the shard sees.
func buildShardKDV(cfg *Config, k kernel.Kernel, m quad.Method, gamma, weight float64, i, count int) (*quad.KDV, error) {
	kdv, err := quad.New(cfg.Pts.Coords, 2,
		quad.WithKernel(qKernel(k)),
		quad.WithMethod(m),
		quad.WithBandwidth(gamma, weight),
		quad.WithWorkers(cfg.Workers),
		quad.WithShard(i, count),
	)
	if err != nil {
		return nil, fmt.Errorf("conformance: building %s/%s shard %d/%d: %w", k, m, i, count, err)
	}
	return kdv, nil
}

// mergeAscending sums per-shard rasters pixel-wise in ascending shard
// order — the exact reduction the cluster coordinator applies, so the
// identity checks below speak for the distributed merge too.
func mergeAscending(shards [][]float64) []float64 {
	out := make([]float64, len(shards[0]))
	for _, s := range shards {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// runSharding verifies the additive-merge contract the scale-out
// coordinator (internal/cluster) is built on: a KDV constructed with
// WithShard(i, count) evaluates only its own slice of the points but
// derives bandwidth, weight, and render window from the full dataset, so
// per-shard rasters share a pixel grid and sum — in ascending shard
// order — to the single-process result. Exact-method merges must land
// within accumulation rounding of the oracle; εKDV merges inherit the ε
// guarantee (per-shard error ≤ ε·F_shard sums to ≤ ε·F across shards).
func runSharding(cfg *Config, rep *Report) error {
	k := cfg.Kernels[0]
	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}

	ref, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)))
	if err != nil {
		return fmt.Errorf("conformance: sharding reference build: %w", err)
	}
	gamma, weight := ref.Gamma(), ref.Weight()
	g, err := grid.ForDataset(cfg.Res, cfg.Pts, 0.02)
	if err != nil {
		return fmt.Errorf("conformance: sharding grid: %w", err)
	}
	o, err := oracle.New(cfg.Pts, nil, k, gamma, weight)
	if err != nil {
		return fmt.Errorf("conformance: sharding oracle: %w", err)
	}
	exact := o.Raster(g)

	// The unsharded render pins the window every shard must reproduce:
	// grid alignment is the precondition for pixel-wise merging.
	full, err := buildKDV(cfg, k, quad.MethodExact, gamma, weight, 0)
	if err != nil {
		return err
	}
	fdm, err := full.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: sharding full render: %w", err)
	}

	for _, count := range shardCounts {
		for _, m := range []quad.Method{quad.MethodExact, quad.MethodQuadratic} {
			tag := fmt.Sprintf("%s/%s/shards=%d", k, m, count)
			shards := make([][]float64, count)
			for i := 0; i < count; i++ {
				kdv, err := buildShardKDV(cfg, k, m, gamma, weight, i, count)
				if err != nil {
					return err
				}
				dm, err := kdv.RenderEps(res, cfg.Eps)
				if err != nil {
					return fmt.Errorf("conformance: RenderEps %s shard %d: %w", tag, i, err)
				}
				rep.add(checkWindowsAligned(
					fmt.Sprintf("shard-window/%s/i=%d", tag, i),
					fdm.WindowMin, fdm.WindowMax, dm.WindowMin, dm.WindowMax))
				shards[i] = dm.Values
			}
			merged := mergeAscending(shards)
			if m == quad.MethodExact {
				rep.add(CheckEpsRaster("shard-merge/"+tag, merged, exact, exactScanTol))
			} else {
				rep.add(CheckEpsRaster("shard-merge/"+tag, merged, exact, cfg.Eps))
			}
		}
	}

	// Sharded rendering is deterministic: a freshly built identical shard
	// reproduces its raster bit-for-bit. This is what makes the cluster's
	// k-of-n partial merges repeatable across retries and hedged replays.
	a, err := buildShardKDV(cfg, k, quad.MethodQuadratic, gamma, weight, 0, 2)
	if err != nil {
		return err
	}
	b, err := buildShardKDV(cfg, k, quad.MethodQuadratic, gamma, weight, 0, 2)
	if err != nil {
		return err
	}
	adm, err := a.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: sharding determinism render: %w", err)
	}
	bdm, err := b.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: sharding determinism render: %w", err)
	}
	rep.add(CheckRastersIdentical(
		fmt.Sprintf("shard-determinism/%s/quad/i=0-of-2", k), adm.Values, bdm.Values))
	return nil
}

// checkWindowsAligned asserts a shard render reproduced the unsharded
// window bit-for-bit. WithShard derives the window from the full dataset
// precisely so this holds; a drift here would silently misalign the
// pixel grids being summed.
func checkWindowsAligned(name string, fullMin, fullMax, shardMin, shardMax [2]float64) Check {
	for d := 0; d < 2; d++ {
		if math.Float64bits(fullMin[d]) != math.Float64bits(shardMin[d]) ||
			math.Float64bits(fullMax[d]) != math.Float64bits(shardMax[d]) {
			return Check{Name: name, Detail: fmt.Sprintf(
				"shard window [%v, %v] != full window [%v, %v]",
				shardMin, shardMax, fullMin, fullMax)}
		}
	}
	return Check{Name: name, Pass: true}
}
