package conformance

// Mutation-style self-tests: the conformance checks are only trustworthy if
// they FAIL when handed broken inputs. Each test corrupts one artifact — a
// rendered raster, a hot mask, a bound implementation — and asserts the
// corresponding check rejects it.

import (
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/oracle"
)

func mutationFixture(t *testing.T) (*kdtree.Tree, *bounds.Evaluator, *oracle.Oracle, [][]float64, []float64) {
	t.Helper()
	pts := dataset.Crime(600, 3)
	tree, err := kdtree.Build(pts, kdtree.Options{Gram: true})
	if err != nil {
		t.Fatal(err)
	}
	gamma, weight := 0.5, 1.0/600
	ev, err := bounds.NewEvaluator(kernel.Gaussian, gamma, weight, bounds.Quadratic, 2)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.New(pts, nil, kernel.Gaussian, gamma, weight)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.ForDataset(grid.Resolution{W: 20, H: 15}, pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	_, queries := centralRect(g)
	return tree, ev, o, queries, o.Raster(g)
}

func TestEpsCheckRejectsCorruptRaster(t *testing.T) {
	_, _, _, _, exact := mutationFixture(t)
	vals := append([]float64(nil), exact...)
	if c := CheckEpsRaster("self", vals, exact, 0.05); !c.Pass {
		t.Fatalf("clean raster rejected: %s", c.Detail)
	}
	// Nudge one pixel just past the ε band.
	i := len(vals) / 2
	vals[i] *= 1.07
	if c := CheckEpsRaster("self", vals, exact, 0.05); c.Pass {
		t.Error("corrupted raster (7% error vs ε=5%) accepted")
	}
	// NaN must never pass.
	vals[i] = exact[i]
	vals[0] = nan()
	if c := CheckEpsRaster("self", vals, exact, 0.05); c.Pass {
		t.Error("NaN pixel accepted")
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestMaskChecksRejectFlippedBit(t *testing.T) {
	_, _, _, _, exact := mutationFixture(t)
	mu, sigma := oracle.MuSigma(exact)
	tau := mu + 0.5*sigma
	mask := oracle.HotMask(exact, tau)
	if c := CheckMaskAgainstRaster("self", mask, exact, tau, 1e-9); !c.Pass {
		t.Fatalf("oracle-derived mask rejected: %s", c.Detail)
	}
	flipped := append([]bool(nil), mask...)
	flipped[len(flipped)/3] = !flipped[len(flipped)/3]
	if c := CheckMaskAgainstRaster("self", flipped, exact, tau, 1e-9); c.Pass {
		t.Error("mask with flipped pixel accepted against raster")
	}
	if c := CheckMasksIdentical("self", mask, flipped); c.Pass {
		t.Error("mask with flipped pixel accepted as identical")
	}
}

// brokenBounder halves the upper bound — the canonical "intentionally broken
// bound" of the acceptance criteria: it stays ordered (lb ≤ ub) and correct
// in shape, wrong only in value, so only a ground-truth comparison can
// catch it.
type brokenBounder struct{ ev *bounds.Evaluator }

func (b brokenBounder) Bounds(n *kdtree.Node, q []float64) (float64, float64) {
	lb, ub := b.ev.Bounds(n, q)
	return lb, lb + 0.5*(ub-lb)
}

func TestNodeBoundCheckRejectsBrokenBound(t *testing.T) {
	tree, ev, o, queries, _ := mutationFixture(t)
	if c := CheckNodeBounds("self", tree, ev, o, queries); !c.Pass {
		t.Fatalf("correct bounds rejected: %s", c.Detail)
	}
	if c := CheckNodeBounds("self", tree, brokenBounder{ev}, o, queries); c.Pass {
		t.Error("halved upper bound accepted — the sandwich check has no teeth")
	}
}

func TestHierarchyCheckRejectsInvertedChain(t *testing.T) {
	tree, ev, _, queries, _ := mutationFixture(t)
	mm, err := bounds.NewEvaluator(kernel.Gaussian, ev.Gamma, ev.Weight, bounds.MinMax, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c := CheckBoundHierarchy("self", tree, ev, mm, queries); !c.Pass {
		t.Fatalf("true hierarchy rejected: %s", c.Detail)
	}
	// Swapping tight and loose claims min-max nests inside QUAD — false.
	if c := CheckBoundHierarchy("self", tree, mm, ev, queries); c.Pass {
		t.Error("inverted hierarchy accepted")
	}
}

func TestScaledAndMonotoneChecksReject(t *testing.T) {
	_, _, _, _, exact := mutationFixture(t)
	doubled := make([]float64, len(exact))
	for i, v := range exact {
		doubled[i] = 2 * v
	}
	if c := checkScaledBy("self", exact, doubled, 2); !c.Pass {
		t.Fatalf("exact doubling rejected: %s", c.Detail)
	}
	doubled[7] *= 1.0000001
	if c := checkScaledBy("self", exact, doubled, 2); c.Pass {
		t.Error("perturbed scaling accepted")
	}

	if c := checkMonotone("self", exact, doubled); !c.Pass {
		t.Fatalf("monotone rasters rejected: %s", c.Detail)
	}
	if c := checkMonotone("self", doubled, exact); c.Pass {
		t.Error("anti-monotone rasters accepted")
	}
}
