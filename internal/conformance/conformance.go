// Package conformance is the guarantee-checking layer built on the oracle:
// it renders the same scene through every evaluation method, kernel, and
// tile size the library supports and asserts, against Kahan-summed exact
// ground truth, that each path honors its contract — the εKDV relative-error
// guarantee pixel-by-pixel, exact τKDV classification, bit-identical hot
// masks between tile-shared and per-pixel refinement, bit-identical rasters
// and masks between the flat SoA engine and the pointer-tree engine it
// replaced (every bound-based method × kernel × tile size, and per shard),
// the bound-dominance
// invariants (LB ≤ F ≤ UB on every node; QUAD ⊆ KARL ⊆ min-max interval
// nesting for the Gaussian kernel), a set of metamorphic properties
// (translation/scale invariance, weight linearity, duplication ≡ weight
// doubling, sampling monotonicity), and the additive shard-merge contract
// behind the scale-out coordinator (per-shard WithShard rasters sum to the
// single-process result within the same ε).
//
// The individual Check* helpers are pure functions over rasters, masks, and
// an injectable Bounder, so the suite can prove its own teeth: mutation
// self-tests feed intentionally corrupted inputs and assert the checks fail.
//
// cmd/kdvcheck wraps Run as a CLI emitting the Report as JSON; `make
// verify` and CI run it on a small seeded dataset.
package conformance

import (
	"fmt"
	"math"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kernel"
)

// Config selects the dataset and the conformance matrix to run over it.
// Zero values select defaults (all kernels, all methods, tile sizes
// {1, 4, 16}, ε = 0.05, τ = μ + 0.5σ).
type Config struct {
	// Name labels the dataset in the report.
	Name string
	// Pts is the dataset; rendering checks require 2-d points.
	Pts geom.Points
	// Res is the raster resolution (default 40×30 — large enough that hot
	// regions span several tiles, small enough that brute-force oracle
	// rasters for every kernel stay fast).
	Res grid.Resolution
	// Eps is the εKDV relative-error budget (default 0.05).
	Eps float64
	// TauSigma positions the τKDV threshold at μ + TauSigma·σ of the exact
	// raster (default 0.5, matching the paper's mid-ladder setting).
	TauSigma float64
	// TileSizes are the WithTileSize settings to cross the methods with
	// (default {1, 4, 16}: per-pixel baseline, sub-tile, full tile).
	TileSizes []int
	// Kernels defaults to every supported kernel.
	Kernels []kernel.Kernel
	// Methods defaults to all five evaluation methods.
	Methods []quad.Method
	// Workers is the render worker count (default 1; the determinism pass
	// separately asserts workers-independence).
	Workers int
	// Seed drives the query sampling of the bound-dominance pass.
	Seed int64
	// SkipBounds / SkipMetamorphic / SkipSharding drop those passes (used
	// to scope fast CLI runs; the full suite runs everything).
	SkipBounds      bool
	SkipMetamorphic bool
	SkipSharding    bool
	// FlatQuick cuts the flat-vs-pointer engine pass to a representative
	// subset (first kernel, MethodQuadratic, 2-way shards); the pass itself
	// always runs — engine-layout identity is the cheapest early signal the
	// suite has.
	FlatQuick bool
	// SkipTiles drops the tile-pyramid stitch pass entirely; TileQuick cuts
	// it to the first kernel × MethodQuadratic (both zooms still run). The
	// quick subset is what `kdvcheck -quick` gates on.
	SkipTiles bool
	TileQuick bool
}

func (c *Config) setDefaults() error {
	if c.Pts.Dim <= 0 || len(c.Pts.Coords) == 0 {
		return fmt.Errorf("conformance: empty dataset")
	}
	if c.Pts.Dim != 2 {
		return fmt.Errorf("conformance: rendering checks need 2-d points, got %d-d", c.Pts.Dim)
	}
	if c.Name == "" {
		c.Name = "dataset"
	}
	if c.Res.W == 0 || c.Res.H == 0 {
		c.Res = grid.Resolution{W: 40, H: 30}
	}
	if c.Eps <= 0 {
		c.Eps = 0.05
	}
	if c.TauSigma == 0 {
		c.TauSigma = 0.5
	}
	if len(c.TileSizes) == 0 {
		c.TileSizes = []int{1, 4, 16}
	}
	if len(c.Kernels) == 0 {
		c.Kernels = kernel.All()
	}
	if len(c.Methods) == 0 {
		c.Methods = []quad.Method{quad.MethodQuadratic, quad.MethodLinear, quad.MethodMinMax, quad.MethodExact, quad.MethodZOrder}
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Check is one verdict of the suite.
type Check struct {
	// Name identifies the check, e.g. "eps/gaussian/quad/ts=4".
	Name string `json:"name"`
	Pass bool   `json:"pass"`
	// Info marks observational checks that never fail (e.g. Z-order's
	// probabilistic error, where a deterministic assertion would be wrong).
	Info bool `json:"info,omitempty"`
	// MaxRelErr is the worst observed relative deviation, when meaningful.
	MaxRelErr float64 `json:"max_rel_err,omitempty"`
	// Detail explains a failure or records the observation.
	Detail string `json:"detail,omitempty"`
}

// Report is the JSON-serializable outcome of a conformance run.
type Report struct {
	Dataset  string  `json:"dataset"`
	N        int     `json:"n"`
	Res      string  `json:"res"`
	Eps      float64 `json:"eps"`
	TauSigma float64 `json:"tau_sigma"`
	Checks   []Check `json:"checks"`
	Passed   int     `json:"passed"`
	Failed   int     `json:"failed"`
	Pass     bool    `json:"pass"`
}

func (r *Report) add(c Check) {
	r.Checks = append(r.Checks, c)
	if c.Pass {
		r.Passed++
	} else {
		r.Failed++
	}
}

// Failures returns the failing checks.
func (r *Report) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Run executes the conformance suite and returns its report. An error means
// the suite could not run (bad config, construction failure); guarantee
// violations are reported as failed checks, not errors.
func Run(cfg Config) (*Report, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rep := &Report{
		Dataset:  cfg.Name,
		N:        cfg.Pts.Len(),
		Res:      cfg.Res.String(),
		Eps:      cfg.Eps,
		TauSigma: cfg.TauSigma,
	}
	if err := runDifferential(&cfg, rep); err != nil {
		return nil, err
	}
	if err := runFlat(&cfg, rep); err != nil {
		return nil, err
	}
	if !cfg.SkipTiles {
		if err := runTiles(&cfg, rep); err != nil {
			return nil, err
		}
	}
	if !cfg.SkipBounds {
		if err := runDominance(&cfg, rep); err != nil {
			return nil, err
		}
	}
	if !cfg.SkipMetamorphic {
		if err := runMetamorphic(&cfg, rep); err != nil {
			return nil, err
		}
	}
	if !cfg.SkipSharding {
		if err := runSharding(&cfg, rep); err != nil {
			return nil, err
		}
	}
	rep.Pass = rep.Failed == 0
	return rep, nil
}

// CheckEpsRaster asserts the εKDV guarantee |vals[i] − exact[i]| ≤
// ε·exact[i] on every pixel, with an absolute slack of 1e-12 of the raster
// maximum so exact zeros (outside a compact kernel's support) don't demand
// bit-exact zeros. NaN or infinite values fail.
func CheckEpsRaster(name string, vals, exact []float64, eps float64) Check {
	if len(vals) != len(exact) {
		return Check{Name: name, Detail: fmt.Sprintf("raster size %d != oracle %d", len(vals), len(exact))}
	}
	var maxExact float64
	for _, v := range exact {
		if v > maxExact {
			maxExact = v
		}
	}
	slack := 1e-12 * maxExact
	worst := 0.0
	bad, badAt := 0, -1
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Check{Name: name, Detail: fmt.Sprintf("pixel %d is %g", i, v)}
		}
		diff := math.Abs(v - exact[i])
		if exact[i] > 0 {
			if rel := diff / exact[i]; rel > worst {
				worst = rel
			}
		}
		if diff > eps*exact[i]+slack {
			bad++
			if badAt < 0 {
				badAt = i
			}
		}
	}
	c := Check{Name: name, Pass: bad == 0, MaxRelErr: worst}
	if bad > 0 {
		c.Detail = fmt.Sprintf("%d/%d pixels exceed ε=%g (first at %d: got %.17g, exact %.17g)",
			bad, len(vals), eps, badAt, vals[badAt], exact[badAt])
	}
	return c
}

// ObservedError reports the worst relative deviation of vals from exact
// without asserting a bound — used for Z-order, whose guarantee is
// probabilistic, so any deterministic per-run assertion would be unsound.
func ObservedError(name string, vals, exact []float64) Check {
	c := CheckEpsRaster(name, vals, exact, math.Inf(1))
	c.Pass = true
	c.Info = true
	c.Detail = fmt.Sprintf("probabilistic guarantee; observed max rel err %.3g", c.MaxRelErr)
	return c
}

// CheckMaskAgainstRaster asserts the τKDV contract: pixel i is hot iff
// exact[i] ≥ tau. Pixels whose exact density lies within margin·max(τ, F)
// of τ are excused — there the engine's fixed-precision aggregates may
// legitimately land on the other side of the threshold than the
// Kahan-summed oracle.
func CheckMaskAgainstRaster(name string, hot []bool, exact []float64, tau, margin float64) Check {
	if len(hot) != len(exact) {
		return Check{Name: name, Detail: fmt.Sprintf("mask size %d != oracle %d", len(hot), len(exact))}
	}
	bad, badAt, excused := 0, -1, 0
	for i, h := range hot {
		want := exact[i] >= tau
		if h == want {
			continue
		}
		if math.Abs(exact[i]-tau) <= margin*math.Max(tau, exact[i]) {
			excused++
			continue
		}
		bad++
		if badAt < 0 {
			badAt = i
		}
	}
	c := Check{Name: name, Pass: bad == 0}
	switch {
	case bad > 0:
		c.Detail = fmt.Sprintf("%d/%d pixels misclassified (first at %d: hot=%v, exact %.17g vs τ=%.17g)",
			bad, len(hot), badAt, hot[badAt], exact[badAt], tau)
	case excused > 0:
		c.Detail = fmt.Sprintf("%d pixels within fp margin of τ excused", excused)
	}
	return c
}

// CheckMasksIdentical asserts two hot masks agree on every pixel — the
// tile-shared traversal's bit-identity contract for τKDV.
func CheckMasksIdentical(name string, a, b []bool) Check {
	if len(a) != len(b) {
		return Check{Name: name, Detail: fmt.Sprintf("mask sizes differ: %d vs %d", len(a), len(b))}
	}
	for i := range a {
		if a[i] != b[i] {
			return Check{Name: name, Detail: fmt.Sprintf("masks diverge at pixel %d: %v vs %v", i, a[i], b[i])}
		}
	}
	return Check{Name: name, Pass: true}
}

// CheckRastersIdentical asserts two rasters are byte-identical
// (bit-comparing, so NaNs can't slip through an == comparison).
func CheckRastersIdentical(name string, a, b []float64) Check {
	if len(a) != len(b) {
		return Check{Name: name, Detail: fmt.Sprintf("raster sizes differ: %d vs %d", len(a), len(b))}
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return Check{Name: name, Detail: fmt.Sprintf("rasters diverge at pixel %d: %.17g vs %.17g", i, a[i], b[i])}
		}
	}
	return Check{Name: name, Pass: true}
}

// CheckRastersWithin asserts max_i |a[i] − b[i]| ≤ tol·max(a[i], b[i]) +
// slack — the pairwise form used when two rasters each carry an ε guarantee
// against the same ground truth (so they may differ from each other by up
// to 2ε).
func CheckRastersWithin(name string, a, b []float64, tol float64) Check {
	if len(a) != len(b) {
		return Check{Name: name, Detail: fmt.Sprintf("raster sizes differ: %d vs %d", len(a), len(b))}
	}
	var scale float64
	for i := range a {
		scale = math.Max(scale, math.Max(math.Abs(a[i]), math.Abs(b[i])))
	}
	slack := 1e-12 * scale
	worst := 0.0
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		ref := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if ref > 0 {
			worst = math.Max(worst, diff/ref)
		}
		if diff > tol*ref+slack {
			return Check{Name: name, MaxRelErr: worst,
				Detail: fmt.Sprintf("pixel %d: %.17g vs %.17g exceeds rel tol %g", i, a[i], b[i], tol)}
		}
	}
	return Check{Name: name, Pass: true, MaxRelErr: worst}
}
