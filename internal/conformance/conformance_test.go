package conformance

import (
	"strings"
	"testing"

	"github.com/quadkdv/quad/internal/dataset"
)

// TestRunFullSuite is the differential conformance suite of ISSUE 3: every
// method × kernel × tile size, εKDV and τKDV, judged against the Kahan
// oracle, plus bound dominance and metamorphic passes.
func TestRunFullSuite(t *testing.T) {
	n := 1500
	if testing.Short() {
		n = 400
	}
	rep, err := Run(Config{Name: "crime", Pts: dataset.Crime(n, 7)})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Failures() {
		t.Errorf("FAIL %s: %s", c.Name, c.Detail)
	}
	if !rep.Pass {
		t.Fatalf("%d/%d checks failed", rep.Failed, len(rep.Checks))
	}

	// The matrix must actually have been covered: spot-check cells from
	// every axis of the cross product.
	for _, want := range []string{
		"eps/gaussian/quad/ts=1",
		"eps/gaussian/quad/ts=16",
		"eps/gaussian/karl/ts=4",
		"eps/uniform/minmax/ts=16",
		"eps/epanechnikov/exact/ts=1",
		"eps/triangular/zorder/ts=1",
		"tau/cosine/quad/ts=4",
		"tau-tile-identity/gaussian/quad/ts=1-vs-16",
		"eps-tile-drift/exponential/quad/ts=1-vs-4",
		"eps-tile-identity/quartic/exact/ts=1-vs-16",
		"determinism/eps-workers",
		"bounds/sandwich/gaussian/quad",
		"bounds/hierarchy/gaussian/quad-in-karl",
		"bounds/rect/uniform/minmax",
		"bounds/envelope/gaussian",
		"metamorphic/weight-linearity/eps",
		"metamorphic/scale/eps",
		"metamorphic/duplication/render-agreement",
		"metamorphic/sampling-monotonicity",
		"shard-merge/gaussian/exact/shards=2",
		"shard-merge/gaussian/quad/shards=4",
		"shard-window/gaussian/quad/shards=2/i=1",
		"shard-determinism/gaussian/quad/i=0-of-2",
	} {
		if !hasCheck(rep, want) {
			t.Errorf("suite did not run check %q", want)
		}
	}

	// No linear (KARL) cells outside the Gaussian kernel.
	for _, c := range rep.Checks {
		if strings.Contains(c.Name, "/karl/") && !strings.Contains(c.Name, "gaussian") {
			t.Errorf("KARL ran on a non-Gaussian kernel: %s", c.Name)
		}
	}
}

func hasCheck(rep *Report, name string) bool {
	for _, c := range rep.Checks {
		if c.Name == name {
			return true
		}
	}
	return false
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	pts := dataset.Hep(50, 5, 1)
	if _, err := Run(Config{Pts: pts}); err == nil {
		t.Error("non-2-d dataset accepted")
	}
}
