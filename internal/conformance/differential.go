package conformance

import (
	"fmt"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/oracle"
)

func qKernel(k kernel.Kernel) quad.Kernel { return quad.Kernel(int(k)) }

// exactScanTol is the assertion applied to MethodExact rasters: the scan is
// "exact" up to naive-accumulation rounding, which for n points is O(n·ulp)
// relative — orders of magnitude under this.
const exactScanTol = 1e-9

// fpMargin excuses τ misclassification only when the exact density is within
// this relative distance of τ — the regime where the production path's
// ordinary floating-point aggregates can legitimately land on the other side
// of the threshold than the compensated oracle.
const fpMargin = 1e-9

// buildKDV constructs a KDV over the config's dataset with the given
// settings, pinning gamma/weight so every method is judged against the same
// oracle.
func buildKDV(cfg *Config, k kernel.Kernel, m quad.Method, gamma, weight float64, ts int) (*quad.KDV, error) {
	kdv, err := quad.New(cfg.Pts.Coords, 2,
		quad.WithKernel(qKernel(k)),
		quad.WithMethod(m),
		quad.WithBandwidth(gamma, weight),
		quad.WithTileSize(ts),
		quad.WithWorkers(cfg.Workers),
	)
	if err != nil {
		return nil, fmt.Errorf("conformance: building %s/%s/ts=%d: %w", k, m, ts, err)
	}
	return kdv, nil
}

// runDifferential is the core of the suite: the full method × kernel × tile
// size matrix, each cell rendered for both εKDV and τKDV and judged against
// the kernel's oracle raster, plus cross-tile-size identity checks and the
// determinism pass.
func runDifferential(cfg *Config, rep *Report) error {
	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}
	for _, k := range cfg.Kernels {
		// One reference build fixes (γ, w) per kernel; every method below is
		// constructed with the same pair so the single oracle raster is the
		// ground truth for all of them.
		ref, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)))
		if err != nil {
			return fmt.Errorf("conformance: reference build (%s): %w", k, err)
		}
		gamma, weight := ref.Gamma(), ref.Weight()
		// Same window derivation as KDV's default render path (points are
		// copied verbatim by New; only the tree's internal copy is
		// reordered), so pixel centers match bit-for-bit.
		g, err := grid.ForDataset(cfg.Res, cfg.Pts, 0.02)
		if err != nil {
			return fmt.Errorf("conformance: grid (%s): %w", k, err)
		}
		o, err := oracle.New(cfg.Pts, nil, k, gamma, weight)
		if err != nil {
			return fmt.Errorf("conformance: oracle (%s): %w", k, err)
		}
		exact := o.Raster(g)
		mu, sigma := oracle.MuSigma(exact)
		tau := mu + cfg.TauSigma*sigma

		for _, m := range cfg.Methods {
			if m == quad.MethodLinear && !k.HasLinearBounds() {
				continue // KARL is Gaussian-only (paper Section 5.1)
			}
			deterministic := m != quad.MethodZOrder
			scanBased := m == quad.MethodExact || m == quad.MethodZOrder
			var baseVals []float64
			var baseMask []bool
			baseTS := 0
			for _, ts := range cfg.TileSizes {
				kdv, err := buildKDV(cfg, k, m, gamma, weight, ts)
				if err != nil {
					return err
				}
				tag := fmt.Sprintf("%s/%s/ts=%d", k, m, ts)

				dm, err := kdv.RenderEps(res, cfg.Eps)
				if err != nil {
					return fmt.Errorf("conformance: RenderEps %s: %w", tag, err)
				}
				switch {
				case m == quad.MethodExact:
					rep.add(CheckEpsRaster("eps/"+tag, dm.Values, exact, exactScanTol))
				case deterministic:
					rep.add(CheckEpsRaster("eps/"+tag, dm.Values, exact, cfg.Eps))
				default:
					rep.add(ObservedError("eps/"+tag, dm.Values, exact))
				}

				hm, err := kdv.RenderTau(res, tau)
				if err != nil {
					return fmt.Errorf("conformance: RenderTau %s: %w", tag, err)
				}
				if deterministic {
					rep.add(CheckMaskAgainstRaster("tau/"+tag, hm.Hot, exact, tau, fpMargin))
				}

				if baseMask == nil {
					baseVals = append([]float64(nil), dm.Values...)
					baseMask = append([]bool(nil), hm.Hot...)
					baseTS = ts
				} else {
					// τKDV classification is bit-identical across tile sizes
					// by design (the tile phase only settles zero-gap nodes).
					rep.add(CheckMasksIdentical(
						fmt.Sprintf("tau-tile-identity/%s/%s/ts=%d-vs-%d", k, m, baseTS, ts),
						baseMask, hm.Hot))
					if scanBased {
						// Scan paths ignore tile structure entirely.
						rep.add(CheckRastersIdentical(
							fmt.Sprintf("eps-tile-identity/%s/%s/ts=%d-vs-%d", k, m, baseTS, ts),
							baseVals, dm.Values))
					} else {
						// εKDV values legitimately drift across tile sizes
						// (different refinement orders stop at different
						// points inside the band); each raster carries its
						// own ε guarantee, so pairwise drift is bounded by
						// 2ε.
						rep.add(CheckRastersWithin(
							fmt.Sprintf("eps-tile-drift/%s/%s/ts=%d-vs-%d", k, m, baseTS, ts),
							baseVals, dm.Values, 2*cfg.Eps))
					}
				}
			}
		}
	}
	return runDeterminism(cfg, rep)
}

// runDeterminism asserts the repeatability contracts: rendering the same
// scene twice on one KDV, on a freshly built identical KDV, and across
// worker counts is byte-identical.
func runDeterminism(cfg *Config, rep *Report) error {
	k := cfg.Kernels[0]
	ref, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)))
	if err != nil {
		return fmt.Errorf("conformance: determinism reference build: %w", err)
	}
	gamma, weight := ref.Gamma(), ref.Weight()
	res := quad.Resolution{W: cfg.Res.W, H: cfg.Res.H}
	kdv, err := buildKDV(cfg, k, quad.MethodQuadratic, gamma, weight, 0)
	if err != nil {
		return err
	}

	dm1, err := kdv.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: determinism render: %w", err)
	}
	dm2, err := kdv.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: determinism render: %w", err)
	}
	rep.add(CheckRastersIdentical("determinism/eps-repeat", dm1.Values, dm2.Values))

	mu, sigma := oracle.MuSigma(dm1.Values)
	tau := mu + cfg.TauSigma*sigma
	hm1, err := kdv.RenderTau(res, tau)
	if err != nil {
		return fmt.Errorf("conformance: determinism render: %w", err)
	}
	hm2, err := kdv.RenderTau(res, tau)
	if err != nil {
		return fmt.Errorf("conformance: determinism render: %w", err)
	}
	rep.add(CheckMasksIdentical("determinism/tau-repeat", hm1.Hot, hm2.Hot))

	// A fresh identical build and a different worker count must reproduce
	// the raster bit-for-bit: results depend only on configuration, never on
	// scheduling.
	wcfg := *cfg
	wcfg.Workers = cfg.Workers + 3
	kdvW, err := buildKDV(&wcfg, k, quad.MethodQuadratic, gamma, weight, 0)
	if err != nil {
		return err
	}
	dmW, err := kdvW.RenderEps(res, cfg.Eps)
	if err != nil {
		return fmt.Errorf("conformance: determinism render: %w", err)
	}
	rep.add(CheckRastersIdentical("determinism/eps-workers", dm1.Values, dmW.Values))
	hmW, err := kdvW.RenderTau(res, tau)
	if err != nil {
		return fmt.Errorf("conformance: determinism render: %w", err)
	}
	rep.add(CheckMasksIdentical("determinism/tau-workers", hm1.Hot, hmW.Hot))
	return nil
}
