package conformance

import (
	"fmt"
	"math"
	"math/rand"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/oracle"
)

// Bounder is the node-bound surface the dominance checks judge. It is an
// interface (satisfied by *bounds.Evaluator) so the mutation self-tests can
// inject a deliberately broken implementation and prove the checks catch it.
type Bounder interface {
	Bounds(n *kdtree.Node, q []float64) (lb, ub float64)
}

// boundTol is the floating-point slack granted to a bound violation check:
// relative to the magnitudes involved plus a tiny absolute floor (observed
// violations of correct bounds sit at the denormal scale; broken bounds
// violate by orders of magnitude more).
func boundTol(vals ...float64) float64 {
	var m float64
	for _, v := range vals {
		m += math.Abs(v)
	}
	return 1e-12*m + 1e-300
}

// CheckNodeBounds walks every node of the tree and asserts the sandwich
// invariant LB_R(q) ≤ F_R(q) ≤ UB_R(q) for each query, with F from the
// Kahan-summed oracle.
func CheckNodeBounds(name string, t *kdtree.Tree, b Bounder, o *oracle.Oracle, queries [][]float64) Check {
	var worst float64
	var detail string
	bad := 0
	for _, q := range queries {
		t.Walk(func(n *kdtree.Node) bool {
			lb, ub := b.Bounds(n, q)
			f := o.NodeDensity(t, n, q)
			tol := boundTol(f, lb, ub)
			if v := math.Max(lb-f, f-ub); v > tol {
				bad++
				if v > worst {
					worst = v
					detail = fmt.Sprintf("node [%d,%d) at q=%v: lb=%.17g f=%.17g ub=%.17g",
						n.Start, n.End, q, lb, f, ub)
				}
			}
			return true
		})
	}
	c := Check{Name: name, Pass: bad == 0, MaxRelErr: worst}
	if bad > 0 {
		c.Detail = fmt.Sprintf("%d node/query violations; worst %s", bad, detail)
	}
	return c
}

// CheckBoundHierarchy asserts the paper's dominance chain on every node: the
// tight method's interval nests inside the loose one's,
// [lbT, ubT] ⊆ [lbL, ubL] up to floating-point slack.
func CheckBoundHierarchy(name string, t *kdtree.Tree, tight, loose Bounder, queries [][]float64) Check {
	var worst float64
	var detail string
	bad := 0
	for _, q := range queries {
		t.Walk(func(n *kdtree.Node) bool {
			lbT, ubT := tight.Bounds(n, q)
			lbL, ubL := loose.Bounds(n, q)
			tol := boundTol(lbT, ubT, lbL, ubL)
			if v := math.Max(lbL-lbT, ubT-ubL); v > tol {
				bad++
				if v > worst {
					worst = v
					detail = fmt.Sprintf("node [%d,%d) at q=%v: tight [%.17g,%.17g] vs loose [%.17g,%.17g]",
						n.Start, n.End, q, lbT, ubT, lbL, ubL)
				}
			}
			return true
		})
	}
	c := Check{Name: name, Pass: bad == 0, MaxRelErr: worst}
	if bad > 0 {
		c.Detail = fmt.Sprintf("%d nesting violations; worst %s", bad, detail)
	}
	return c
}

// CheckRectBounds asserts the tile-uniform contract: RectBounds(n, rect)
// brackets F_R(q) for every query inside rect — the invariant the
// tile-shared render phase rests on. All queries must lie inside rect.
func CheckRectBounds(name string, t *kdtree.Tree, ev *bounds.Evaluator, o *oracle.Oracle, rect geom.Rect, queries [][]float64) Check {
	bad := 0
	var detail string
	t.Walk(func(n *kdtree.Node) bool {
		lb, ub := ev.RectBounds(n, rect)
		for _, q := range queries {
			f := o.NodeDensity(t, n, q)
			if v := math.Max(lb-f, f-ub); v > boundTol(f, lb, ub) {
				bad++
				if detail == "" {
					detail = fmt.Sprintf("node [%d,%d) at q=%v: rect bounds [%.17g,%.17g] miss f=%.17g",
						n.Start, n.End, q, lb, ub, f)
				}
			}
		}
		return true
	})
	c := Check{Name: name, Pass: bad == 0}
	if bad > 0 {
		c.Detail = fmt.Sprintf("%d violations; first %s", bad, detail)
	}
	return c
}

// checkEnvelope accumulates the rect envelopes of a covering node set and
// asserts lbEnv(q) ≤ F_P(q) ≤ ubEnv(q) for every query in the rect — the
// aggregate form the tile-shared phase evaluates per pixel.
func checkEnvelope(name string, t *kdtree.Tree, ev *bounds.Evaluator, o *oracle.Oracle, rect geom.Rect, queries [][]float64) Check {
	cover := coverNodes(t, 2)
	var lbEnv, ubEnv bounds.TileEnvelope
	lbEnv.Reset(t.Dim())
	ubEnv.Reset(t.Dim())
	center := make([]float64, t.Dim())
	for i := range center {
		center[i] = (rect.Min[i] + rect.Max[i]) / 2
	}
	for _, n := range cover {
		if !ev.AccumulateRectEnvelope(n, rect, center, &lbEnv, &ubEnv) {
			return Check{Name: name, Pass: true, Info: true, Detail: "envelope unsupported for this configuration"}
		}
	}
	bad := 0
	var detail string
	for _, q := range queries {
		f := o.Density(q)
		lb := lbEnv.Eval(q, center)
		ub := ubEnv.Eval(q, center)
		if v := math.Max(lb-f, f-ub); v > boundTol(f, lb, ub) {
			bad++
			if detail == "" {
				detail = fmt.Sprintf("q=%v: envelope [%.17g,%.17g] misses f=%.17g", q, lb, ub, f)
			}
		}
	}
	c := Check{Name: name, Pass: bad == 0}
	if bad > 0 {
		c.Detail = fmt.Sprintf("%d violations; first %s", bad, detail)
	}
	return c
}

// coverNodes returns a set of nodes at the given depth (or shallower leaves)
// that partitions the point set.
func coverNodes(t *kdtree.Tree, depth int) []*kdtree.Node {
	var out []*kdtree.Node
	var rec func(n *kdtree.Node, d int)
	rec = func(n *kdtree.Node, d int) {
		if n.IsLeaf() || d >= depth {
			out = append(out, n)
			return
		}
		rec(n.Left, d+1)
		rec(n.Right, d+1)
	}
	rec(t.Root, 0)
	return out
}

// runDominance builds each kernel's tree and evaluators and runs the node
// sandwich, interval-nesting hierarchy, rect-bound, and envelope checks.
func runDominance(cfg *Config, rep *Report) error {
	g, err := grid.ForDataset(cfg.Res, cfg.Pts, 0.02)
	if err != nil {
		return fmt.Errorf("conformance: dominance grid: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	queries := sampleQueries(g, rng)
	rect, rectQueries := centralRect(g)

	tree, err := kdtree.Build(cfg.Pts, kdtree.Options{Gram: true})
	if err != nil {
		return fmt.Errorf("conformance: dominance tree: %w", err)
	}
	for _, k := range cfg.Kernels {
		ref, err := quad.New(cfg.Pts.Coords, 2, quad.WithKernel(qKernel(k)))
		if err != nil {
			return fmt.Errorf("conformance: dominance reference build (%s): %w", k, err)
		}
		gamma, weight := ref.Gamma(), ref.Weight()
		o, err := oracle.New(cfg.Pts, nil, k, gamma, weight)
		if err != nil {
			return fmt.Errorf("conformance: dominance oracle (%s): %w", k, err)
		}
		evQuad, err := bounds.NewEvaluator(k, gamma, weight, bounds.Quadratic, 2)
		if err != nil {
			return fmt.Errorf("conformance: evaluator (%s): %w", k, err)
		}
		evMM, err := bounds.NewEvaluator(k, gamma, weight, bounds.MinMax, 2)
		if err != nil {
			return fmt.Errorf("conformance: evaluator (%s): %w", k, err)
		}
		rep.add(CheckNodeBounds(fmt.Sprintf("bounds/sandwich/%s/quad", k), tree, evQuad, o, queries))
		rep.add(CheckNodeBounds(fmt.Sprintf("bounds/sandwich/%s/minmax", k), tree, evMM, o, queries))
		if k != kernel.Quartic {
			// The quartic kernel's quadratic envelope is only partially
			// exact: on far nodes it degrades to the profile-max clamp,
			// which min-max beats, so interval nesting does not hold for it
			// (only the sandwich does). Every other kernel's quadratic
			// interval nests inside min-max's.
			rep.add(CheckBoundHierarchy(fmt.Sprintf("bounds/hierarchy/%s/quad-in-minmax", k), tree, evQuad, evMM, queries))
		}
		if k.HasLinearBounds() {
			evLin, err := bounds.NewEvaluator(k, gamma, weight, bounds.Linear, 2)
			if err != nil {
				return fmt.Errorf("conformance: evaluator (%s): %w", k, err)
			}
			rep.add(CheckNodeBounds(fmt.Sprintf("bounds/sandwich/%s/karl", k), tree, evLin, o, queries))
			rep.add(CheckBoundHierarchy(fmt.Sprintf("bounds/hierarchy/%s/quad-in-karl", k), tree, evQuad, evLin, queries))
			rep.add(CheckBoundHierarchy(fmt.Sprintf("bounds/hierarchy/%s/karl-in-minmax", k), tree, evLin, evMM, queries))
			rep.add(checkEnvelope(fmt.Sprintf("bounds/envelope/%s", k), tree, evQuad, o, rect, rectQueries))
		}
		rep.add(CheckRectBounds(fmt.Sprintf("bounds/rect/%s/quad", k), tree, evQuad, o, rect, rectQueries))
		rep.add(CheckRectBounds(fmt.Sprintf("bounds/rect/%s/minmax", k), tree, evMM, o, rect, rectQueries))
	}
	return nil
}

// sampleQueries mixes structured pixel centers (corners, center) with
// seeded uniform samples over the window, including points outside the data
// bounding box (the rect-distance code has separate inside/outside paths).
func sampleQueries(g *grid.Grid, rng *rand.Rand) [][]float64 {
	var out [][]float64
	add := func(px, py int) {
		q := make([]float64, 2)
		g.Query(px, py, q)
		out = append(out, q)
	}
	add(0, 0)
	add(g.Res.W-1, g.Res.H-1)
	add(g.Res.W/2, g.Res.H/2)
	add(g.Res.W/4, 3*g.Res.H/4)
	lo, hi := make([]float64, 2), make([]float64, 2)
	g.Query(0, 0, lo)
	g.Query(g.Res.W-1, g.Res.H-1, hi)
	for i := 0; i < 5; i++ {
		q := make([]float64, 2)
		for j := range q {
			span := hi[j] - lo[j]
			q[j] = lo[j] - 0.2*span + 1.4*span*rng.Float64()
		}
		out = append(out, q)
	}
	return out
}

// centralRect returns the data-space rectangle spanned by a central 4×4
// pixel block together with the block's pixel-center queries — all inside
// the rect by construction.
func centralRect(g *grid.Grid) (geom.Rect, [][]float64) {
	x0, y0 := g.Res.W/2-2, g.Res.H/2-2
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	x1, y1 := x0+3, y0+3
	if x1 >= g.Res.W {
		x1 = g.Res.W - 1
	}
	if y1 >= g.Res.H {
		y1 = g.Res.H - 1
	}
	rect := geom.Rect{Min: make([]float64, 2), Max: make([]float64, 2)}
	g.Query(x0, y0, rect.Min)
	g.Query(x1, y1, rect.Max)
	var queries [][]float64
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			q := make([]float64, 2)
			g.Query(x, y, q)
			queries = append(queries, q)
		}
	}
	return rect, queries
}
