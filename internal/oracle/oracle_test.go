package oracle

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// TestSumCompensates pins the property that motivates the package: summing
// one large term plus many tiny terms that individually vanish against it.
// Naive accumulation loses the tiny terms entirely; the compensated sum
// keeps them to within one ulp of the true total.
func TestSumCompensates(t *testing.T) {
	const n = 1_000_000
	const tiny = 1e-16
	var kahan Sum
	var naive float64
	kahan.Add(1)
	naive += 1
	for i := 0; i < n; i++ {
		kahan.Add(tiny)
		naive += tiny
	}
	want := 1 + float64(n)*tiny
	if naive == want {
		t.Fatalf("naive summation unexpectedly exact; test term too large")
	}
	if got := kahan.Value(); math.Abs(got-want) > 1e-15*want {
		t.Errorf("compensated sum = %.17g, want %.17g", got, want)
	}
}

func TestSumMatchesSortedAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	terms := make([]float64, 5000)
	for i := range terms {
		terms[i] = math.Exp(-20 * rng.Float64() * rng.Float64())
	}
	var s Sum
	for _, v := range terms {
		s.Add(v)
	}
	// Reference: extended-precision style pairwise reduction.
	ref := pairwiseSum(terms)
	if got := s.Value(); math.Abs(got-ref) > 1e-12*ref {
		t.Errorf("Sum = %.17g, pairwise = %.17g", got, ref)
	}
}

func pairwiseSum(v []float64) float64 {
	if len(v) == 1 {
		return v[0]
	}
	m := len(v) / 2
	return pairwiseSum(v[:m]) + pairwiseSum(v[m:])
}

// TestDensityMatchesExactScan: on well-conditioned data the oracle and the
// production ExactScan agree to float tolerance for every kernel.
func TestDensityMatchesExactScan(t *testing.T) {
	pts := dataset.Crime(2000, 3)
	gamma, weight := 0.8, 1.0/2000
	queries := [][]float64{{50, 50}, {0, 0}, {120, -10}, {33.3, 66.6}}
	for _, k := range kernel.All() {
		o, err := New(pts, nil, k, gamma, weight)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want := bounds.ExactScan(pts, nil, k, gamma, weight, q)
			got := o.Density(q)
			tol := 1e-12 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("%s at %v: oracle %.17g, scan %.17g", k, q, got, want)
			}
		}
	}
}

func TestDensityWeighted(t *testing.T) {
	pts := geom.NewPoints([]float64{0, 0, 1, 0, 0, 1}, 2)
	ws := []float64{1, 2, 3}
	o, err := New(pts, ws, kernel.Gaussian, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0}
	want := 0.5 * (1*math.Exp(0) + 2*math.Exp(-1) + 3*math.Exp(-1))
	if got := o.Density(q); math.Abs(got-want) > 1e-15 {
		t.Errorf("weighted density = %.17g, want %.17g", got, want)
	}
}

// TestNodeDensityPartition: the root's children partition the point set, so
// their exact partial sums must add to the root's (and to Density over the
// tree's point buffer).
func TestNodeDensityPartition(t *testing.T) {
	pts := dataset.ElNino(1500, 11)
	tree, err := kdtree.Build(pts, kdtree.Options{LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(tree.Pts, nil, kernel.Gaussian, 0.5, 1.0/1500)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{25, 12}
	root := o.NodeDensity(tree, tree.Root, q)
	if whole := o.Density(q); math.Abs(root-whole) > 1e-13*(1+whole) {
		t.Errorf("root partial %.17g != full density %.17g", root, whole)
	}
	var leafSum Sum
	tree.Walk(func(n *kdtree.Node) bool {
		if n.IsLeaf() {
			leafSum.Add(o.NodeDensity(tree, n, q))
		}
		return true
	})
	if got := leafSum.Value(); math.Abs(got-root) > 1e-12*(1+root) {
		t.Errorf("leaf partials sum to %.17g, root %.17g", got, root)
	}
}

func TestRasterAndHotMask(t *testing.T) {
	pts := dataset.Home(1000, 5)
	o, err := New(pts, nil, kernel.Gaussian, 0.7, 1.0/1000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.ForDataset(grid.Resolution{W: 16, H: 12}, pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	vals := o.Raster(g)
	if len(vals) != 16*12 {
		t.Fatalf("raster has %d pixels, want %d", len(vals), 16*12)
	}
	q := make([]float64, 2)
	g.Query(7, 5, q)
	if want := o.Density(q); vals[g.Index(7, 5)] != want {
		t.Errorf("raster pixel %.17g != direct density %.17g", vals[g.Index(7, 5)], want)
	}
	mu, sigma := MuSigma(vals)
	if sigma <= 0 {
		t.Fatalf("degenerate raster: mu=%g sigma=%g", mu, sigma)
	}
	hot := HotMask(vals, mu)
	var n int
	for i, h := range hot {
		if h != (vals[i] >= mu) {
			t.Fatalf("pixel %d misclassified", i)
		}
		if h {
			n++
		}
	}
	if n == 0 || n == len(hot) {
		t.Errorf("τ=μ mask is degenerate (%d/%d hot)", n, len(hot))
	}
}

func TestNewValidates(t *testing.T) {
	pts := geom.NewPoints([]float64{0, 0}, 2)
	if _, err := New(geom.Points{Dim: 2}, nil, kernel.Gaussian, 1, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := New(pts, nil, kernel.Kernel(99), 1, 1); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := New(pts, nil, kernel.Gaussian, 0, 1); err == nil {
		t.Error("zero gamma accepted")
	}
	if _, err := New(pts, nil, kernel.Gaussian, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := New(pts, []float64{1, 2}, kernel.Gaussian, 1, 1); err == nil {
		t.Error("mismatched weights accepted")
	}
}
