// Package oracle is the slow, trusted ground truth of the conformance
// layer: an exact kernel density evaluator whose every aggregate is computed
// with Kahan–Neumaier compensated summation. Where the production paths
// (bounds.ExactScan, the refinement engines, the tile-shared traversal)
// optimize for speed and accept ordinary floating-point accumulation, the
// oracle optimizes for having an error model so small — one rounding unit of
// the final sum, independent of n — that every other path can be judged
// against it: the differential suite asserts the εKDV guarantee
// |R − F_P(q)| ≤ ε·F_P(q) pixel-by-pixel against oracle rasters, the τKDV
// suite compares hot masks against oracle classification, and the
// bound-dominance checks sandwich per-node partial sums between each
// method's LB/UB.
//
// Nothing here is on a hot path by design; keep it simple and obviously
// correct.
package oracle

import (
	"fmt"
	"math"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
)

// Sum is a Kahan–Neumaier compensated accumulator: the running error of each
// addition is captured in a compensation term and folded back in at the end,
// so the final value is exact to within one rounding of the true sum even
// when terms vary over many orders of magnitude (exactly the regime of
// kernel sums: a few near-1 terms from local points plus millions of tiny
// tail contributions).
type Sum struct {
	s, c float64
}

// Add accumulates x.
func (a *Sum) Add(x float64) {
	t := a.s + x
	if abs(a.s) >= abs(x) {
		a.c += (a.s - t) + x
	} else {
		a.c += (x - t) + a.s
	}
	a.s = t
}

// Value returns the compensated total.
func (a *Sum) Value() float64 { return a.s + a.c }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Oracle evaluates exact kernel densities F_P(q) = w·Σ w_i·K(q, p_i) for one
// dataset and kernel configuration. It is safe for concurrent use (all state
// is read-only after construction).
type Oracle struct {
	Pts geom.Points
	// Weights are optional per-point weights parallel to Pts (nil = uniform
	// weight 1).
	Weights []float64
	Kern    kernel.Kernel
	Gamma   float64
	// Weight is the scalar weight w applied to the whole sum.
	Weight float64
}

// New validates the configuration and returns an oracle.
func New(pts geom.Points, weights []float64, kern kernel.Kernel, gamma, weight float64) (*Oracle, error) {
	if pts.Len() == 0 {
		return nil, fmt.Errorf("oracle: empty dataset")
	}
	if !kern.Valid() {
		return nil, fmt.Errorf("oracle: invalid kernel %d", int(kern))
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("oracle: gamma must be positive, got %g", gamma)
	}
	if weight <= 0 {
		return nil, fmt.Errorf("oracle: weight must be positive, got %g", weight)
	}
	if weights != nil && len(weights) != pts.Len() {
		return nil, fmt.Errorf("oracle: %d weights for %d points", len(weights), pts.Len())
	}
	return &Oracle{Pts: pts, Weights: weights, Kern: kern, Gamma: gamma, Weight: weight}, nil
}

// Density returns the exact kernel density F_P(q), Kahan-summed over every
// point.
func (o *Oracle) Density(q []float64) float64 {
	return o.rangeDensity(o.Pts, o.Weights, 0, o.Pts.Len(), q)
}

// NodeDensity returns the exact partial sum F_R(q) of one kd-tree node — the
// quantity every bound method's [LB_R(q), UB_R(q)] interval must bracket.
// The tree's (reordered) points and per-point weights are used, so the value
// is comparable with bounds computed against the same tree.
func (o *Oracle) NodeDensity(t *kdtree.Tree, n *kdtree.Node, q []float64) float64 {
	return o.rangeDensity(t.Pts, t.Weights, n.Start, n.End, q)
}

func (o *Oracle) rangeDensity(pts geom.Points, weights []float64, start, end int, q []float64) float64 {
	d := pts.Dim
	coords := pts.Coords
	var acc Sum
	for i := start; i < end; i++ {
		row := coords[i*d : i*d+d]
		// The per-point squared distance is also compensated: in degenerate
		// geometries (all-identical coordinates, d=7 far queries) the naive
		// inner loop is exact anyway, but compensation costs nothing here.
		var dist2 Sum
		for k, v := range q {
			dd := v - row[k]
			dist2.Add(dd * dd)
		}
		kv := o.Kern.Eval(o.Gamma, dist2.Value())
		if weights != nil {
			kv *= weights[i]
		}
		acc.Add(kv)
	}
	return o.Weight * acc.Value()
}

// Raster brute-forces the exact density of every pixel center of g —
// the reference raster the differential εKDV checks compare against.
func (o *Oracle) Raster(g *grid.Grid) []float64 {
	vals := make([]float64, g.Res.Pixels())
	q := make([]float64, 2)
	for y := 0; y < g.Res.H; y++ {
		for x := 0; x < g.Res.W; x++ {
			g.Query(x, y, q)
			vals[g.Index(x, y)] = o.Density(q)
		}
	}
	return vals
}

// HotMask classifies a raster of exact densities against τ with the
// library's convention: a pixel is hot iff F_P(q) ≥ τ.
func HotMask(vals []float64, tau float64) []bool {
	hot := make([]bool, len(vals))
	for i, v := range vals {
		hot[i] = v >= tau
	}
	return hot
}

// MuSigma returns the mean and standard deviation of a raster, both
// Kahan-summed — the statistics τ ladders are expressed in.
func MuSigma(vals []float64) (mu, sigma float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	var s Sum
	for _, v := range vals {
		s.Add(v)
	}
	mu = s.Value() / float64(len(vals))
	var sq Sum
	for _, v := range vals {
		d := v - mu
		sq.Add(d * d)
	}
	variance := sq.Value() / float64(len(vals))
	if variance < 0 {
		variance = 0
	}
	return mu, math.Sqrt(variance)
}
