package pca

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/geom"
)

// anisotropicCloud samples a 3-d Gaussian stretched along a known axis.
func anisotropicCloud(rng *rand.Rand, n int) geom.Points {
	// Principal axis (1,1,0)/√2 with σ=5; the others σ=1 and σ=0.1.
	coords := make([]float64, 0, n*3)
	inv := 1 / math.Sqrt2
	for i := 0; i < n; i++ {
		a := rng.NormFloat64() * 5
		b := rng.NormFloat64() * 1
		c := rng.NormFloat64() * 0.1
		coords = append(coords,
			a*inv-b*inv,
			a*inv+b*inv,
			c,
		)
	}
	return geom.NewPoints(coords, 3)
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(geom.NewPoints([]float64{1, 2}, 2)); err == nil {
		t.Error("single point accepted")
	}
}

func TestFitRecoversPrincipalAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	m, err := Fit(anisotropicCloud(rng, 20000))
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues descending and close to 25, 1, 0.01.
	if m.Variances[0] < m.Variances[1] || m.Variances[1] < m.Variances[2] {
		t.Fatalf("eigenvalues not descending: %v", m.Variances)
	}
	if math.Abs(m.Variances[0]-25) > 2 {
		t.Errorf("top eigenvalue %g, want ≈25", m.Variances[0])
	}
	// Top component aligned with (1,1,0)/√2 up to sign.
	c := m.Components[0]
	align := math.Abs(c[0]/math.Sqrt2 + c[1]/math.Sqrt2)
	if align < 0.99 {
		t.Errorf("top component %v poorly aligned (%g)", c, align)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	m, err := Fit(anisotropicCloud(rng, 5000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Components {
		for j := range m.Components {
			dot := geom.Dot(m.Components[i], m.Components[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Errorf("components %d·%d = %g, want %g", i, j, dot, want)
			}
		}
	}
}

func TestProjectPreservesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	pts := anisotropicCloud(rng, 10000)
	m, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := m.Project(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Dim != 1 || proj.Len() != pts.Len() {
		t.Fatalf("projection shape: dim=%d len=%d", proj.Dim, proj.Len())
	}
	var mean, varr float64
	for i := 0; i < proj.Len(); i++ {
		mean += proj.At(i)[0]
	}
	mean /= float64(proj.Len())
	for i := 0; i < proj.Len(); i++ {
		d := proj.At(i)[0] - mean
		varr += d * d
	}
	varr /= float64(proj.Len() - 1)
	if math.Abs(varr-m.Variances[0])/m.Variances[0] > 1e-6 {
		t.Errorf("projected variance %g, eigenvalue %g", varr, m.Variances[0])
	}
}

func TestProjectValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	pts := anisotropicCloud(rng, 100)
	m, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Project(pts, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := m.Project(pts, 4); err == nil {
		t.Error("k>d accepted")
	}
	if _, err := m.Project(geom.NewPoints([]float64{1, 2}, 2), 1); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	pts := anisotropicCloud(rng, 2000)
	out, err := Reduce(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim != 2 || out.Len() != 2000 {
		t.Fatalf("Reduce shape: dim=%d len=%d", out.Dim, out.Len())
	}
}

func TestJacobiOnDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, 7}}
	vals, _ := jacobiEigen(a)
	got := []float64{vals[0], vals[1]}
	if !(got[0] == 3 && got[1] == 7) && !(got[0] == 7 && got[1] == 3) {
		t.Errorf("diagonal eigenvalues = %v", got)
	}
}
