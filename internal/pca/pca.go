// Package pca implements principal component analysis for the paper's
// Figure 24 dimensionality sweep ("vary the dimensionality of these datasets
// via PCA dimensionality reduction"). The eigen-decomposition of the sample
// covariance matrix uses the cyclic Jacobi rotation method, which is exact
// (to machine precision), dependency-free and more than fast enough for the
// d ≤ 20 settings KDV operates in.
package pca

import (
	"fmt"
	"math"
	"sort"

	"github.com/quadkdv/quad/internal/geom"
)

// maxJacobiSweeps bounds the Jacobi iteration; symmetric matrices of the
// sizes used here converge in well under 20 sweeps.
const maxJacobiSweeps = 64

// Model holds a fitted PCA basis.
type Model struct {
	Mean       []float64
	Components [][]float64 // row i is the i-th principal axis (unit norm)
	Variances  []float64   // eigenvalues, descending
}

// Fit computes the PCA basis of the dataset.
func Fit(pts geom.Points) (*Model, error) {
	n := pts.Len()
	d := pts.Dim
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 points, got %d", n)
	}
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for j := 0; j < d; j++ {
			mean[j] += p[j]
		}
	}
	for j := 0; j < d; j++ {
		mean[j] /= float64(n)
	}
	// Sample covariance matrix (d×d, symmetric).
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	diff := make([]float64, d)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for j := 0; j < d; j++ {
			diff[j] = p[j] - mean[j]
		}
		for r := 0; r < d; r++ {
			for c := r; c < d; c++ {
				cov[r][c] += diff[r] * diff[c]
			}
		}
	}
	for r := 0; r < d; r++ {
		for c := r; c < d; c++ {
			cov[r][c] /= float64(n - 1)
			cov[c][r] = cov[r][c]
		}
	}
	values, vectors := jacobiEigen(cov)
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return values[order[a]] > values[order[b]] })
	m := &Model{Mean: mean, Components: make([][]float64, d), Variances: make([]float64, d)}
	for rank, idx := range order {
		m.Variances[rank] = values[idx]
		comp := make([]float64, d)
		for j := 0; j < d; j++ {
			comp[j] = vectors[j][idx] // column idx of the rotation product
		}
		m.Components[rank] = comp
	}
	return m, nil
}

// Project maps the dataset onto the top-k principal components.
func (m *Model) Project(pts geom.Points, k int) (geom.Points, error) {
	d := pts.Dim
	if d != len(m.Mean) {
		return geom.Points{}, fmt.Errorf("pca: dataset dim %d does not match model dim %d", d, len(m.Mean))
	}
	if k < 1 || k > d {
		return geom.Points{}, fmt.Errorf("pca: k=%d out of range [1, %d]", k, d)
	}
	n := pts.Len()
	out := make([]float64, 0, n*k)
	diff := make([]float64, d)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for j := 0; j < d; j++ {
			diff[j] = p[j] - m.Mean[j]
		}
		for c := 0; c < k; c++ {
			out = append(out, geom.Dot(diff, m.Components[c]))
		}
	}
	return geom.NewPoints(out, k), nil
}

// Reduce is the one-shot convenience: fit on pts and project to k dims.
func Reduce(pts geom.Points, k int) (geom.Points, error) {
	m, err := Fit(pts)
	if err != nil {
		return geom.Points{}, err
	}
	return m.Project(pts, k)
}

// jacobiEigen diagonalizes the symmetric matrix a (destructively) via cyclic
// Jacobi rotations, returning the eigenvalues and the accumulated rotation
// matrix whose COLUMNS are the eigenvectors.
func jacobiEigen(a [][]float64) (values []float64, vectors [][]float64) {
	d := len(a)
	v := make([][]float64, d)
	for i := range v {
		v[i] = make([]float64, d)
		v[i][i] = 1
	}
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		var off float64
		for r := 0; r < d; r++ {
			for c := r + 1; c < d; c++ {
				off += a[r][c] * a[r][c]
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				if math.Abs(a[p][q]) < 1e-30 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				rotate(a, v, p, q, cos, sin)
			}
		}
	}
	values = make([]float64, d)
	for i := 0; i < d; i++ {
		values[i] = a[i][i]
	}
	return values, v
}

// rotate applies the Jacobi rotation G(p,q,θ) as a ← GᵀaG and accumulates
// v ← vG.
func rotate(a, v [][]float64, p, q int, cos, sin float64) {
	d := len(a)
	for i := 0; i < d; i++ {
		aip, aiq := a[i][p], a[i][q]
		a[i][p] = cos*aip - sin*aiq
		a[i][q] = sin*aip + cos*aiq
	}
	for j := 0; j < d; j++ {
		apj, aqj := a[p][j], a[q][j]
		a[p][j] = cos*apj - sin*aqj
		a[q][j] = sin*apj + cos*aqj
	}
	for i := 0; i < d; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = cos*vip - sin*viq
		v[i][q] = sin*vip + cos*viq
	}
}
