// Package logging installs the process-wide structured logger every kdv
// binary shares: one JSON object per line on stderr via log/slog, tagged
// with the component name. Uniform keys (component, error, and the serving
// layer's request_id/trace_id/dataset) make the five binaries' logs
// joinable by the same tooling that reads the slow-query and violation
// lines.
package logging

import (
	"io"
	"log/slog"
	"os"
)

// Setup builds the component's JSON logger on w (os.Stderr when nil),
// installs it as both the slog default and the legacy log package's output
// (so stray log.Printf calls in dependencies still come out as structured
// lines), and returns it.
func Setup(component string, w io.Writer) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	l := slog.New(slog.NewJSONHandler(w, nil)).With(slog.String("component", component))
	slog.SetDefault(l)
	return l
}
