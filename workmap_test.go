package quad

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"github.com/quadkdv/quad/internal/trace"
)

// TestWorkMapEpsMatchesStats checks the work map's cross-total invariant:
// the per-pixel rasters are recorded at exactly the sites that feed
// RenderStats.addPixel, so their sums must equal the aggregate counters —
// and the density raster must be identical to a plain stats render.
func TestWorkMapEpsMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cloud := testCloud(rng, 600)
	res := Resolution{W: 40, H: 32}
	const eps = 0.05
	for _, tile := range []int{1, 4, 16} {
		k, err := NewFromPoints(cloud, WithTileSize(tile), WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		dm, wm, st, err := k.RenderEpsWorkMap(res, eps)
		if err != nil {
			t.Fatal(err)
		}
		if wm.Res != res || len(wm.Depth) != res.W*res.H || len(wm.Evals) != res.W*res.H || len(wm.Gap) != res.W*res.H {
			t.Fatalf("tile=%d: bad work-map shape %+v", tile, wm.Res)
		}
		depth, evals, _ := wm.Totals()
		if depth != st.Iterations {
			t.Errorf("tile=%d: work-map depth total %d != stats iterations %d", tile, depth, st.Iterations)
		}
		if evals != st.NodesEvaluated {
			t.Errorf("tile=%d: work-map eval total %d != stats node evals %d", tile, evals, st.NodesEvaluated)
		}
		if evals == 0 {
			t.Errorf("tile=%d: work map recorded no node evaluations", tile)
		}
		// The εKDV stop rule ub ≤ (1+ε)·lb bounds the settle gap by ε·lb ≤
		// ε·value; decided-from-frontier pixels can be fully refined (gap 0).
		for i, g := range wm.Gap {
			if g < 0 {
				t.Fatalf("tile=%d pixel %d: negative gap %g", tile, i, g)
			}
			if g > eps*dm.Values[i]+1e-12 {
				t.Fatalf("tile=%d pixel %d: settle gap %g beyond eps bound %g", tile, i, g, eps*dm.Values[i])
			}
		}
		if wm.WindowMin != dm.WindowMin || wm.WindowMax != dm.WindowMax {
			t.Errorf("tile=%d: work-map window %v..%v != map window %v..%v",
				tile, wm.WindowMin, wm.WindowMax, dm.WindowMin, dm.WindowMax)
		}
		plain, err := k.RenderEps(res, eps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain.Values {
			if plain.Values[i] != dm.Values[i] {
				t.Fatalf("tile=%d: work-map render diverges from plain render at pixel %d", tile, i)
			}
		}
	}
}

// TestWorkMapTauDecidedTilesStayZero checks the τKDV work map: totals match
// stats, and with a far-out τ the shared phase decides tiles wholesale, so
// the per-pixel rasters record zero work for them.
func TestWorkMapTauDecidedTilesStayZero(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	cloud := testCloud(rng, 600)
	res := Resolution{W: 40, H: 32}
	k, err := NewFromPoints(cloud, WithTileSize(8), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := k.RenderEps(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := dm.MuSigma()
	hm, wm, st, err := k.RenderTauWorkMap(res, mu+sigma)
	if err != nil {
		t.Fatal(err)
	}
	depth, evals, _ := wm.Totals()
	if depth != st.Iterations || evals != st.NodesEvaluated {
		t.Errorf("work-map totals (%d, %d) != stats (%d, %d)", depth, evals, st.Iterations, st.NodesEvaluated)
	}
	if st.TilesDecided == 0 {
		t.Skip("no decided tiles at this τ; invariant not exercised")
	}
	// Some pixels must have been settled without any per-pixel work.
	var zeros int
	for i := range wm.Evals {
		if wm.Evals[i] == 0 && wm.Depth[i] == 0 && wm.Gap[i] == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Errorf("decided tiles present (%d) but no zero-work pixels recorded", st.TilesDecided)
	}
	_ = hm
}

// TestWorkMapLayersAndPNG exercises layer parsing and PNG export of every
// layer.
func TestWorkMapLayersAndPNG(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	k, err := NewFromPoints(testCloud(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	_, wm, _, err := k.RenderEpsWorkMap(Resolution{W: 24, H: 18}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"depth", "evals", "gap"} {
		layer, err := ParseWorkMapLayer(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := wm.EncodePNG(&buf, layer); err != nil {
			t.Fatalf("layer %s: %v", name, err)
		}
		if buf.Len() == 0 || !bytes.HasPrefix(buf.Bytes(), []byte("\x89PNG")) {
			t.Fatalf("layer %s: not a PNG (%d bytes)", name, buf.Len())
		}
	}
	if _, err := ParseWorkMapLayer("bogus"); err == nil {
		t.Error("bogus layer accepted")
	}
	if _, err := wm.Layer(WorkMapLayer("bogus")); err == nil {
		t.Error("bogus layer returned a raster")
	}
	if got, want := len(WorkMapLayers()), 3; got != want {
		t.Errorf("WorkMapLayers() has %d entries, want %d", got, want)
	}
}

// TestRenderStatsEmitsSpans checks that a stats render under a traced
// context decomposes into the render-stage spans, and that an untraced
// context emits nothing.
func TestRenderStatsEmitsSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	k, err := NewFromPoints(testCloud(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	res := Resolution{W: 24, H: 18}

	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	if _, _, err := k.RenderEpsStatsInCtx(ctx, res, 0.05, Window{}); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byName := map[string]*trace.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["render.eps"]
	if root == nil {
		t.Fatalf("no render.eps span; got %d spans", len(spans))
	}
	for _, child := range []string{"shared_frontier", "pixel_refinement"} {
		s := byName[child]
		if s == nil {
			t.Fatalf("missing %s span", child)
		}
		if s.Parent != root.ID {
			t.Errorf("%s span not parented on render.eps", child)
		}
		if s.Start.Before(root.Start) || s.Finish.After(root.Finish) {
			t.Errorf("%s span [%v, %v] outside parent [%v, %v]", child, s.Start, s.Finish, root.Start, root.Finish)
		}
	}

	// Untraced context: no spans, no panic.
	if _, _, err := k.RenderEpsStatsInCtx(context.Background(), res, 0.05, Window{}); err != nil {
		t.Fatal(err)
	}
}

// TestProgressiveStatsAndLevelSpans checks satellite coverage for the
// progressive path: the result carries populated RenderStats, and a traced
// streaming render emits one span per completed refinement level.
func TestProgressiveStatsAndLevelSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	k, err := NewFromPoints(testCloud(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	res := Resolution{W: 32, H: 32}

	r, err := k.RenderProgressive(res, 0.05, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatal("unbudgeted progressive render incomplete")
	}
	if r.Stats.Pixels != r.Evaluated {
		t.Errorf("Stats.Pixels = %d, want Evaluated %d", r.Stats.Pixels, r.Evaluated)
	}
	if r.Stats.NodesEvaluated == 0 && r.Stats.SharedNodeEvals == 0 {
		t.Error("progressive stats recorded no bound work")
	}
	if r.Stats.Elapsed != r.Elapsed {
		t.Errorf("Stats.Elapsed = %v, want %v", r.Stats.Elapsed, r.Elapsed)
	}

	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	var levels int
	sr, err := k.RenderProgressiveStreamCtx(ctx, res, 0.05, 0, func(s Snapshot) bool {
		levels++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var levelSpans int
	for _, s := range tr.Spans() {
		if len(s.Name) > len("progressive.level.") && s.Name[:len("progressive.level.")] == "progressive.level." {
			levelSpans++
		}
	}
	if levelSpans != levels {
		t.Errorf("got %d progressive.level spans, want one per snapshot (%d)", levelSpans, levels)
	}
	if sr.Stats.Pixels != sr.Evaluated || sr.Stats.NodesEvaluated+sr.Stats.SharedNodeEvals == 0 {
		t.Errorf("stream stats not populated: %+v", sr.Stats)
	}
}
