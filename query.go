package quad

import (
	"context"
	"fmt"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/oracle"
)

// acquireEngine hands out a per-goroutine render engine of the configured
// layout (engines hold scratch buffers and a reusable priority queue, so
// they cannot be shared).
func (k *KDV) acquireEngine() (engine.Renderer, error) {
	if k.proto == nil {
		return nil, fmt.Errorf("quad: method %s does not use the bound engine", k.cfg.method)
	}
	if r, ok := k.engines.Get().(engine.Renderer); ok {
		return r, nil
	}
	return k.newRenderer()
}

func (k *KDV) releaseEngine(r engine.Renderer) { k.engines.Put(r) }

// renderScratch is the pooled per-worker state of a tile render: the
// worker's render engine, reusable frontiers of the engine's layout, and
// the query/rect buffers — everything the hot path would otherwise allocate
// per tile.
type renderScratch struct {
	r                engine.Renderer
	frontier         engine.Front // tile-level frontier
	sub              engine.Front // sub-tile frontier (second level)
	q                []float64
	rectMin, rectMax [2]float64
}

// tileRect returns the data-space rectangle spanned by the tile's pixel
// centers (the extreme query points of the tile), backed by the scratch's
// own buffers.
func (s *renderScratch) tileRect(g *grid.Grid, t tileSpan) geom.Rect {
	r := geom.Rect{Min: s.rectMin[:], Max: s.rectMax[:]}
	g.Query(t.x0, t.y0, r.Min)
	g.Query(t.x1-1, t.y1-1, r.Max)
	return r
}

// acquireRenderScratch hands out pooled tile-render scratch wired to a
// pooled engine.
func (k *KDV) acquireRenderScratch() (*renderScratch, error) {
	r, err := k.acquireEngine()
	if err != nil {
		return nil, err
	}
	s, _ := k.tileScratch.Get().(*renderScratch)
	if s == nil {
		s = &renderScratch{q: make([]float64, 2)}
	}
	s.r = r
	if s.frontier == nil {
		// Frontiers are layout-specific; the layout is fixed per KDV, so the
		// scratch's frontiers always match the pooled renderers.
		s.frontier = r.NewFront()
		s.sub = r.NewFront()
	}
	k.scratchLive.Add(1)
	return s, nil
}

func (k *KDV) releaseRenderScratch(s *renderScratch) {
	k.releaseEngine(s.r)
	s.r = nil
	k.tileScratch.Put(s)
	k.scratchLive.Add(-1)
}

func (k *KDV) checkQuery(q []float64) error {
	if len(q) != k.pts.Dim {
		return fmt.Errorf("quad: query has dimension %d, dataset has %d", len(q), k.pts.Dim)
	}
	return nil
}

// Density computes the exact kernel density F_P(q) by a sequential scan
// with Kahan–Neumaier compensated summation — the same accumulator the
// conformance oracle trusts, so the public exact answer is correct to one
// rounding of the true sum regardless of dataset size or skew.
func (k *KDV) Density(q []float64) (float64, error) {
	if err := k.checkQuery(q); err != nil {
		return 0, err
	}
	o := oracle.Oracle{
		Pts:     k.pts,
		Weights: k.weights,
		Kern:    k.cfg.kern.internal(),
		Gamma:   k.bw.Gamma,
		Weight:  k.bw.Weight,
	}
	return o.Density(q), nil
}

// Estimate answers an εKDV query: a value R with |R − F_P(q)| ≤ ε·F_P(q).
// For MethodExact and MethodZOrder the method's native evaluation is
// returned (exact, respectively sample-exact with a probabilistic
// guarantee).
func (k *KDV) Estimate(q []float64, eps float64) (float64, error) {
	if err := k.checkQuery(q); err != nil {
		return 0, err
	}
	if eps < 0 {
		return 0, fmt.Errorf("quad: negative relative error %g", eps)
	}
	switch k.cfg.method {
	case MethodExact:
		return bounds.ExactScan(k.pts, k.weights, k.cfg.kern.internal(), k.bw.Gamma, k.bw.Weight, q), nil
	case MethodZOrder:
		return bounds.ExactScan(k.sample, nil, k.cfg.kern.internal(), k.bw.Gamma, k.sampleWeight, q), nil
	}
	e, err := k.acquireEngine()
	if err != nil {
		return 0, err
	}
	defer k.releaseEngine(e)
	v, _ := e.EvalEps(q, eps)
	return v, nil
}

// EstimateCtx is Estimate under a context: an already-cancelled context
// fails fast with ctx.Err() before any evaluation work. A single point
// query refines in microseconds, so no mid-query poll is needed — batch
// callers (renders, ThresholdStats) poll between queries instead.
func (k *KDV) EstimateCtx(ctx context.Context, q []float64, eps float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return k.Estimate(q, eps)
}

// IsHotCtx is IsHot under a context (see EstimateCtx).
func (k *KDV) IsHotCtx(ctx context.Context, q []float64, tau float64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return k.IsHot(q, tau)
}

// IsHot answers a τKDV query: whether F_P(q) ≥ τ. For MethodExact and
// MethodZOrder the density is computed directly and compared.
func (k *KDV) IsHot(q []float64, tau float64) (bool, error) {
	if err := k.checkQuery(q); err != nil {
		return false, err
	}
	switch k.cfg.method {
	case MethodExact:
		return bounds.ExactScan(k.pts, k.weights, k.cfg.kern.internal(), k.bw.Gamma, k.bw.Weight, q) >= tau, nil
	case MethodZOrder:
		return bounds.ExactScan(k.sample, nil, k.cfg.kern.internal(), k.bw.Gamma, k.sampleWeight, q) >= tau, nil
	}
	e, err := k.acquireEngine()
	if err != nil {
		return false, err
	}
	defer k.releaseEngine(e)
	hot, _ := e.EvalTau(q, tau)
	return hot, nil
}

// DensityBounds returns the bounds the configured method derives for the
// whole dataset at q without any refinement — useful for inspecting bound
// tightness (paper Section 7.3). Only bound-based methods support it.
func (k *KDV) DensityBounds(q []float64) (lb, ub float64, err error) {
	if err := k.checkQuery(q); err != nil {
		return 0, 0, err
	}
	e, err := k.acquireEngine()
	if err != nil {
		return 0, 0, err
	}
	defer k.releaseEngine(e)
	lb, ub = e.RootBounds(q)
	return lb, ub, nil
}
