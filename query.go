package quad

import (
	"context"
	"fmt"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/engine"
)

// acquireEngine hands out a per-goroutine engine (engines hold scratch
// buffers and a reusable priority queue, so they cannot be shared).
func (k *KDV) acquireEngine() (*engine.Engine, error) {
	if k.proto == nil {
		return nil, fmt.Errorf("quad: method %s does not use the bound engine", k.cfg.method)
	}
	if e, ok := k.engines.Get().(*engine.Engine); ok {
		return e, nil
	}
	return engine.New(k.tree, k.proto.Clone())
}

func (k *KDV) releaseEngine(e *engine.Engine) { k.engines.Put(e) }

func (k *KDV) checkQuery(q []float64) error {
	if len(q) != k.pts.Dim {
		return fmt.Errorf("quad: query has dimension %d, dataset has %d", len(q), k.pts.Dim)
	}
	return nil
}

// Density computes the exact kernel density F_P(q) by a sequential scan.
func (k *KDV) Density(q []float64) (float64, error) {
	if err := k.checkQuery(q); err != nil {
		return 0, err
	}
	return bounds.ExactScan(k.pts, k.weights, k.cfg.kern.internal(), k.bw.Gamma, k.bw.Weight, q), nil
}

// Estimate answers an εKDV query: a value R with |R − F_P(q)| ≤ ε·F_P(q).
// For MethodExact and MethodZOrder the method's native evaluation is
// returned (exact, respectively sample-exact with a probabilistic
// guarantee).
func (k *KDV) Estimate(q []float64, eps float64) (float64, error) {
	if err := k.checkQuery(q); err != nil {
		return 0, err
	}
	if eps < 0 {
		return 0, fmt.Errorf("quad: negative relative error %g", eps)
	}
	switch k.cfg.method {
	case MethodExact:
		return bounds.ExactScan(k.pts, k.weights, k.cfg.kern.internal(), k.bw.Gamma, k.bw.Weight, q), nil
	case MethodZOrder:
		return bounds.ExactScan(k.sample, nil, k.cfg.kern.internal(), k.bw.Gamma, k.sampleWeight, q), nil
	}
	e, err := k.acquireEngine()
	if err != nil {
		return 0, err
	}
	defer k.releaseEngine(e)
	v, _ := e.EvalEps(q, eps)
	return v, nil
}

// EstimateCtx is Estimate under a context: an already-cancelled context
// fails fast with ctx.Err() before any evaluation work. A single point
// query refines in microseconds, so no mid-query poll is needed — batch
// callers (renders, ThresholdStats) poll between queries instead.
func (k *KDV) EstimateCtx(ctx context.Context, q []float64, eps float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return k.Estimate(q, eps)
}

// IsHotCtx is IsHot under a context (see EstimateCtx).
func (k *KDV) IsHotCtx(ctx context.Context, q []float64, tau float64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return k.IsHot(q, tau)
}

// IsHot answers a τKDV query: whether F_P(q) ≥ τ. For MethodExact and
// MethodZOrder the density is computed directly and compared.
func (k *KDV) IsHot(q []float64, tau float64) (bool, error) {
	if err := k.checkQuery(q); err != nil {
		return false, err
	}
	switch k.cfg.method {
	case MethodExact:
		return bounds.ExactScan(k.pts, k.weights, k.cfg.kern.internal(), k.bw.Gamma, k.bw.Weight, q) >= tau, nil
	case MethodZOrder:
		return bounds.ExactScan(k.sample, nil, k.cfg.kern.internal(), k.bw.Gamma, k.sampleWeight, q) >= tau, nil
	}
	e, err := k.acquireEngine()
	if err != nil {
		return false, err
	}
	defer k.releaseEngine(e)
	hot, _ := e.EvalTau(q, tau)
	return hot, nil
}

// DensityBounds returns the bounds the configured method derives for the
// whole dataset at q without any refinement — useful for inspecting bound
// tightness (paper Section 7.3). Only bound-based methods support it.
func (k *KDV) DensityBounds(q []float64) (lb, ub float64, err error) {
	if err := k.checkQuery(q); err != nil {
		return 0, 0, err
	}
	e, err := k.acquireEngine()
	if err != nil {
		return 0, 0, err
	}
	defer k.releaseEngine(e)
	lb, ub = e.Ev.Bounds(e.Tree.Root, q)
	return lb, ub, nil
}
