package quad

import (
	"math"
	"testing"
)

// TestOraclePartialMatchesShardDensities pins the contract the cluster
// audit path relies on: the partial-sum oracle over live shards equals the
// sum of the per-shard exact densities (to accumulation rounding), and the
// all-shards oracle equals the full Density.
func TestOraclePartialMatchesShardDensities(t *testing.T) {
	pts := shardTestPoints(t, 420)
	full, err := New(pts.Coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, 0.7}
	const count = 4

	for _, live := range [][]int{{0}, {1, 3}, {0, 2, 3}, {0, 1, 2, 3}} {
		partial, err := full.OraclePartial(live, count)
		if err != nil {
			t.Fatalf("OraclePartial(%v): %v", live, err)
		}
		var want float64
		for _, s := range live {
			sh, err := New(pts.Coords, 2, WithShard(s, count))
			if err != nil {
				t.Fatal(err)
			}
			d, err := sh.Density(q)
			if err != nil {
				t.Fatal(err)
			}
			want += d
		}
		got := partial(q)
		if diff := math.Abs(got - want); diff > 1e-12*math.Max(got, want) {
			t.Errorf("live %v: partial oracle %.17g vs shard sum %.17g", live, got, want)
		}
	}

	all, err := full.OraclePartial([]int{3, 2, 1, 0, 2}, count) // duplicates collapse
	if err != nil {
		t.Fatal(err)
	}
	fd, err := full.Density(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := all(q); got != fd {
		t.Errorf("all-shards oracle %.17g != full Density %.17g", got, fd)
	}
}

// TestOraclePartialWeighted checks per-point weights ride along the
// partial-sum restriction.
func TestOraclePartialWeighted(t *testing.T) {
	pts := shardTestPoints(t, 240)
	ws := make([]float64, pts.Len())
	for i := range ws {
		ws[i] = 1 + float64(i%3)
	}
	full, err := New(pts.Coords, 2, WithPointWeights(ws))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, 0.5}
	partial, err := full.OraclePartial([]int{1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(pts.Coords, 2, WithShard(1, 3), WithPointWeights(ws))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sh.Density(q)
	if err != nil {
		t.Fatal(err)
	}
	got := partial(q)
	if diff := math.Abs(got - want); diff > 1e-12*math.Max(got, want) {
		t.Errorf("weighted partial oracle %.17g vs shard density %.17g", got, want)
	}
}

func TestOraclePartialValidation(t *testing.T) {
	pts := shardTestPoints(t, 50)
	full, err := New(pts.Coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		shards []int
		count  int
	}{
		{"zero count", []int{0}, 0},
		{"count past cardinality", []int{0}, 51},
		{"negative shard", []int{-1}, 2},
		{"shard past count", []int{2}, 2},
	}
	for _, tc := range cases {
		if _, err := full.OraclePartial(tc.shards, tc.count); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	sharded, err := New(pts.Coords, 2, WithShard(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.OraclePartial([]int{0}, 2); err == nil {
		t.Error("sharded receiver: expected error")
	}
}
