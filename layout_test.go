package quad_test

import (
	"math"
	"testing"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
)

// TestFlatPointerRenderIdentity is the tier-1 face of the engine-layout
// contract: the flat SoA engine renders bit-identically to the pointer
// engine across kernels, bound methods, and tile sizes — εKDV rasters by
// Float64bits, τKDV masks exactly. (cmd/kdvcheck runs the full matrix with
// sharding through internal/conformance; this keeps the core of it in
// plain `go test ./...`.)
func TestFlatPointerRenderIdentity(t *testing.T) {
	pts := dataset.Crime(8000, 7)
	res := quad.Resolution{W: 64, H: 48}
	const eps = 0.05
	const tau = 0.001
	for _, kern := range []quad.Kernel{quad.Gaussian, quad.Epanechnikov} {
		for _, method := range []quad.Method{quad.MethodQuadratic, quad.MethodMinMax, quad.MethodLinear} {
			if method == quad.MethodLinear && kern != quad.Gaussian {
				continue
			}
			for _, ts := range []int{1, 16} {
				opts := []quad.Option{
					quad.WithKernel(kern), quad.WithMethod(method), quad.WithTileSize(ts),
				}
				fl, err := quad.New(pts.Coords, 2, opts...)
				if err != nil {
					t.Fatal(err)
				}
				pt, err := quad.New(pts.Coords, 2, append(opts, quad.WithEngineLayout(quad.LayoutPointer))...)
				if err != nil {
					t.Fatal(err)
				}
				tag := func(v string) string {
					return v + "/" + kern.String() + "/" + method.String()
				}
				fdm, err := fl.RenderEps(res, eps)
				if err != nil {
					t.Fatal(err)
				}
				pdm, err := pt.RenderEps(res, eps)
				if err != nil {
					t.Fatal(err)
				}
				if i, ok := sameBits(fdm.Values, pdm.Values); !ok {
					t.Fatalf("%s ts=%d: flat differs from pointer at pixel %d: %x vs %x", tag("eps"), ts,
						i, math.Float64bits(fdm.Values[i]), math.Float64bits(pdm.Values[i]))
				}
				fhm, err := fl.RenderTau(res, tau)
				if err != nil {
					t.Fatal(err)
				}
				phm, err := pt.RenderTau(res, tau)
				if err != nil {
					t.Fatal(err)
				}
				for i := range fhm.Hot {
					if fhm.Hot[i] != phm.Hot[i] {
						t.Fatalf("%s ts=%d: flat mask differs from pointer at pixel %d", tag("tau"), ts, i)
					}
				}
			}
		}
	}
}

// TestFlatRenderWorkersDeterminism pins the flat engine's scheduling
// independence: the same scene rendered with 1, 3, and 8 workers is
// bit-identical, both εKDV values and τKDV masks.
func TestFlatRenderWorkersDeterminism(t *testing.T) {
	pts := dataset.Crime(6000, 7)
	res := quad.Resolution{W: 64, H: 48}
	const eps = 0.05
	build := func(workers int) *quad.KDV {
		k, err := quad.New(pts.Coords, 2, quad.WithTileSize(16), quad.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base, err := build(1).RenderEps(res, eps)
	if err != nil {
		t.Fatal(err)
	}
	baseHot, err := build(1).RenderTau(res, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{3, 8} {
		dm, err := build(w).RenderEps(res, eps)
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := sameBits(base.Values, dm.Values); !ok {
			t.Fatalf("workers=%d differs from workers=1 at pixel %d", w, i)
		}
		hm, err := build(w).RenderTau(res, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		for i := range baseHot.Hot {
			if baseHot.Hot[i] != hm.Hot[i] {
				t.Fatalf("workers=%d mask differs from workers=1 at pixel %d", w, i)
			}
		}
	}
}
