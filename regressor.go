package quad

import (
	"fmt"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/regress"
	"github.com/quadkdv/quad/internal/stats"
)

// Regressor is a Nadaraya–Watson kernel regressor built on the same bound
// machinery as εKDV — the paper's "kernel regression" future-work direction.
// Predictions come with a controlled tolerance: the numerator and
// denominator aggregates are refined only until the prediction's certified
// bracket is narrow enough, so each Predict typically touches a small
// fraction of the training set.
type Regressor struct {
	impl *regress.Regressor
}

// NewRegressor fits a kernel regressor to features X (one point per row)
// and responses y. gamma ≤ 0 selects Scott's rule over X. Responses may be
// negative; the estimator splits the numerator into signed parts
// internally.
func NewRegressor(x [][]float64, y []float64, kern Kernel, gamma float64, opts ...Option) (*Regressor, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("quad: empty training set")
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, fmt.Errorf("quad: zero-dimensional features")
	}
	coords := make([]float64, 0, len(x)*dim)
	for i, p := range x {
		if len(p) != dim {
			return nil, fmt.Errorf("quad: point %d has dim %d, want %d", i, len(p), dim)
		}
		coords = append(coords, p...)
	}
	pts := geom.NewPoints(coords, dim)
	cfg := config{method: MethodQuadratic}
	for _, o := range opts {
		o(&cfg)
	}
	method, err := toBoundsMethod(cfg.method)
	if err != nil {
		return nil, fmt.Errorf("quad: regressor requires a bound-based method: %w", err)
	}
	if gamma <= 0 {
		gamma = stats.ScottsRule(pts, kern.internal()).Gamma
	}
	impl, err := regress.New(pts, append([]float64(nil), y...), regress.Config{
		Kernel:   kernel.Kernel(kern),
		Gamma:    gamma,
		Method:   method,
		LeafSize: cfg.leafSize,
	})
	if err != nil {
		return nil, err
	}
	return &Regressor{impl: impl}, nil
}

// Predict returns the regression estimate at q within the given relative
// tolerance (tol ≤ 0 selects 1e-6). ok is false where the kernel mass at q
// is zero (the estimator is undefined there, e.g. far outside a
// finite-support kernel's reach). Safe for concurrent use.
func (r *Regressor) Predict(q []float64, tol float64) (value float64, ok bool, err error) {
	return r.impl.Predict(q, tol)
}

// Dim returns the feature dimensionality.
func (r *Regressor) Dim() int { return r.impl.Dim() }
