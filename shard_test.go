package quad

import (
	"math"
	"testing"

	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/geom"
)

func shardTestPoints(t *testing.T, n int) geom.Points {
	t.Helper()
	pts, err := dataset.Generate("crime", n, 7)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return dataset.First2D(pts)
}

func TestShardRangeCoversAll(t *testing.T) {
	for _, tc := range []struct{ n, count int }{
		{10, 1}, {10, 2}, {10, 3}, {10, 10}, {1001, 4}, {7, 7},
	} {
		prev := 0
		total := 0
		for i := 0; i < tc.count; i++ {
			lo, hi := shardRange(tc.n, i, tc.count)
			if lo != prev {
				t.Fatalf("n=%d count=%d shard %d: lo=%d, want %d (gap/overlap)", tc.n, tc.count, i, lo, prev)
			}
			if hi <= lo {
				t.Fatalf("n=%d count=%d shard %d: empty range [%d,%d)", tc.n, tc.count, i, lo, hi)
			}
			prev = hi
			total += hi - lo
		}
		if total != tc.n {
			t.Fatalf("n=%d count=%d: ranges cover %d points", tc.n, tc.count, total)
		}
	}
}

func TestShardValidation(t *testing.T) {
	pts := shardTestPoints(t, 50)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"negative index", []Option{WithShard(-1, 2)}},
		{"index past count", []Option{WithShard(2, 2)}},
		{"zero count", []Option{WithShard(0, 0)}},
		{"more shards than points", []Option{WithShard(0, 51)}},
		{"zorder method", []Option{WithShard(0, 2), WithMethod(MethodZOrder)}},
	} {
		if _, err := New(pts.Coords, 2, tc.opts...); err == nil {
			t.Errorf("%s: expected construction error", tc.name)
		}
	}
}

func TestShardPartitionIsExact(t *testing.T) {
	pts := shardTestPoints(t, 403)
	full, err := New(pts.Coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{2, 3, 5} {
		total := 0
		for i := 0; i < count; i++ {
			sh, err := New(pts.Coords, 2, WithShard(i, count))
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, count, err)
			}
			total += sh.Len()
			if g, w := sh.Gamma(), sh.Weight(); g != full.Gamma() || w != full.Weight() {
				t.Fatalf("shard %d/%d bandwidth (%g,%g) != full (%g,%g)", i, count, g, w, full.Gamma(), full.Weight())
			}
			if idx, c := sh.Shard(); idx != i || c != count {
				t.Fatalf("Shard() = (%d,%d), want (%d,%d)", idx, c, i, count)
			}
		}
		if total != pts.Len() {
			t.Fatalf("%d shards cover %d of %d points", count, total, pts.Len())
		}
	}
}

// TestShardMergeMatchesFullDensity is the additivity contract behind the
// cluster fan-out: per-shard exact densities must sum to the full-dataset
// density, and per-shard εKDV rasters (each within ε of its shard's density)
// must merge to within ε of the full density.
func TestShardMergeMatchesFullDensity(t *testing.T) {
	pts := shardTestPoints(t, 600)
	res := Resolution{W: 32, H: 24}
	const eps = 0.05

	full, err := New(pts.Coords, 2, WithMethod(MethodExact))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := full.RenderEps(res, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, count := range []int{2, 4} {
		// Exact shard renders: the merge must match the full exact render to
		// accumulation-rounding precision.
		merged := make([]float64, res.W*res.H)
		for i := 0; i < count; i++ {
			sh, err := New(pts.Coords, 2, WithShard(i, count), WithMethod(MethodExact))
			if err != nil {
				t.Fatal(err)
			}
			dm, err := sh.RenderEps(res, 0)
			if err != nil {
				t.Fatal(err)
			}
			if dm.WindowMin != exact.WindowMin || dm.WindowMax != exact.WindowMax {
				t.Fatalf("shard %d/%d window %v..%v != full %v..%v",
					i, count, dm.WindowMin, dm.WindowMax, exact.WindowMin, exact.WindowMax)
			}
			for p, v := range dm.Values {
				merged[p] += v
			}
		}
		for p := range merged {
			diff := math.Abs(merged[p] - exact.Values[p])
			if diff > 1e-9*math.Max(merged[p], exact.Values[p]) {
				t.Fatalf("count=%d pixel %d: merged %.17g vs full %.17g", count, p, merged[p], exact.Values[p])
			}
		}

		// εKDV shard renders under QUAD bounds: merge must honor ε globally.
		approx := make([]float64, res.W*res.H)
		for i := 0; i < count; i++ {
			sh, err := New(pts.Coords, 2, WithShard(i, count))
			if err != nil {
				t.Fatal(err)
			}
			dm, err := sh.RenderEps(res, eps)
			if err != nil {
				t.Fatal(err)
			}
			for p, v := range dm.Values {
				approx[p] += v
			}
		}
		var maxV float64
		for _, v := range exact.Values {
			maxV = math.Max(maxV, v)
		}
		for p := range approx {
			if diff := math.Abs(approx[p] - exact.Values[p]); diff > eps*exact.Values[p]+1e-12*maxV {
				t.Fatalf("count=%d pixel %d: merged εKDV %.17g vs exact %.17g exceeds ε=%g",
					count, p, approx[p], exact.Values[p], eps)
			}
		}
	}
}

// TestShardRenderDeterministic pins the property the cluster's bit-identical
// partial merges rely on: the same shard built twice renders byte-identical
// rasters.
func TestShardRenderDeterministic(t *testing.T) {
	pts := shardTestPoints(t, 500)
	res := Resolution{W: 24, H: 16}
	for i := 0; i < 2; i++ {
		a, err := New(pts.Coords, 2, WithShard(i, 2))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(pts.Coords, 2, WithShard(i, 2))
		if err != nil {
			t.Fatal(err)
		}
		da, err := a.RenderEps(res, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.RenderEps(res, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for p := range da.Values {
			if math.Float64bits(da.Values[p]) != math.Float64bits(db.Values[p]) {
				t.Fatalf("shard %d: repeat render diverges at pixel %d", i, p)
			}
		}
	}
}

// TestShardWeightedMerge checks that per-point weights ride along the shard
// permutation: weighted shard densities must sum to the weighted full
// density.
func TestShardWeightedMerge(t *testing.T) {
	pts := shardTestPoints(t, 300)
	ws := make([]float64, pts.Len())
	for i := range ws {
		ws[i] = 1 + float64(i%5)
	}
	res := Resolution{W: 16, H: 12}
	full, err := New(pts.Coords, 2, WithMethod(MethodExact), WithPointWeights(ws))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := full.RenderEps(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	merged := make([]float64, res.W*res.H)
	for i := 0; i < 3; i++ {
		sh, err := New(pts.Coords, 2, WithShard(i, 3), WithMethod(MethodExact), WithPointWeights(ws))
		if err != nil {
			t.Fatal(err)
		}
		dm, err := sh.RenderEps(res, 0)
		if err != nil {
			t.Fatal(err)
		}
		for p, v := range dm.Values {
			merged[p] += v
		}
	}
	for p := range merged {
		if diff := math.Abs(merged[p] - exact.Values[p]); diff > 1e-9*math.Max(merged[p], exact.Values[p]) {
			t.Fatalf("pixel %d: weighted merge %.17g vs full %.17g", p, merged[p], exact.Values[p])
		}
	}
}
