# Development targets for the quad KDV library and its commands.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test vet fmt race verify fuzz bench bench-compare chaos smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt — the same gate CI applies.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: compile everything, lint, run the full test
# suite — which includes the metrics-drift golden-file gate and the
# Prometheus text-format parse check (internal/serve TestMetricsGolden /
# TestPrometheusExpositionParses) — then run the guarantee-conformance
# suite (oracle-differential, bound-dominance, and metamorphic checks) on a
# small seeded dataset. CI runs this plus the race and fuzz shards.
verify: build vet fmt test
	$(GO) run ./cmd/kdvcheck -dataset crime -n 1200 -seed 7 -res 32x24 \
		-json results/kdvcheck.json > /dev/null

# fuzz runs every native fuzz target for FUZZTIME each (Go allows one
# -fuzz target per invocation). Corpora seeds live under each package's
# testdata/fuzz/ and also run as plain tests in `make test`.
fuzz:
	$(GO) test ./internal/kernel -run='^$$' -fuzz='^FuzzExpEnvelopes$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/kernel -run='^$$' -fuzz='^FuzzDistKernelEnvelopes$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadCSV$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/geom -run='^$$' -fuzz='^FuzzRectDistBounds$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/geom -run='^$$' -fuzz='^FuzzRectRectDistBounds$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/kernel -run='^$$' -fuzz='^FuzzExpFastLanes$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/kdtree -run='^$$' -fuzz='^FuzzBuildInvariants$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/kdtree -run='^$$' -fuzz='^FuzzFlatTreeInvariants$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bounds -run='^$$' -fuzz='^FuzzEvaluatorBounds$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bounds -run='^$$' -fuzz='^FuzzRectBounds$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/trace -run='^$$' -fuzz='^FuzzParseTraceparent$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/tiles -run='^$$' -fuzz='^FuzzTileRecord$$' -fuzztime=$(FUZZTIME)

# bench regenerates BENCH_PR10.json: the render benchmark (εKDV + τKDV,
# crime analogue at 30k points, 256² and 512², tile-shared vs per-pixel),
# the telemetry-, tracing-, and shadow-audit-overhead deltas against the
# uninstrumented paths, and the tile-serving tiers (cold engine build vs
# warm-disk vs warm-memory on 512² XYZ tiles through a real on-disk store).
bench:
	$(GO) run ./cmd/kdvbench -json BENCH_PR10.json -jsonn 30000

# bench-compare is the regression gate: diff the newest checked-in baseline
# against its predecessor. Deterministic work counters (nodes/pixel) get a
# 5% budget, wall-clock cells 25%, instrumentation overheads 2% absolute —
# including the PR10 shadow-audit producer hook at its production 1%
# sampling fraction; exits non-zero on any regression. -mintilespeedup
# requires the new report's warm-disk tile serving to beat its own cold
# build by ≥10× — the PR9 acceptance claim, re-checked on the new report.
bench-compare:
	$(GO) run ./cmd/kdvbench -compare BENCH_PR9.json -mintilespeedup 10 BENCH_PR10.json

# chaos runs the cluster fault-injection suite under the race detector:
# seeded fault transport + fake clock drive breaker trips/recovery, hedges
# against hung workers, partial-merge degradation, and bit-identity of
# k-of-n merges against the single-process oracle.
chaos:
	$(GO) test -race -count=1 ./internal/cluster/...

# smoke boots kdvserve, waits for /readyz, renders once, and asserts the
# /metrics scrape saw the work — the end-to-end check of the telemetry path.
# Then boots a coordinator + two shard workers, kills one, and asserts the
# render degrades to a 200 partial raster with X-KDV-Complete: false.
smoke:
	./scripts/smoke.sh

clean:
	$(GO) clean ./...
