# Development targets for the quad KDV library and its commands.

GO ?= go

.PHONY: build test vet race verify clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: compile everything, lint, and run the
# whole suite under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

clean:
	$(GO) clean ./...
