# Development targets for the quad KDV library and its commands.

GO ?= go

.PHONY: build test vet race verify bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: compile everything, lint, and run the
# whole suite under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench regenerates BENCH_PR2.json: the tile-shared traversal's speedup and
# node-evaluation reduction over the per-pixel baseline (εKDV + τKDV,
# crime analogue at 30k points, 256² and 512²).
bench:
	$(GO) run ./cmd/kdvbench -json BENCH_PR2.json -jsonn 30000

clean:
	$(GO) clean ./...
