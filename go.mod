module github.com/quadkdv/quad

go 1.22
