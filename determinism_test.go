package quad_test

import (
	"math"
	"testing"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
)

// buildAnalogue builds a KDV over a seeded dataset analogue.
func buildAnalogue(t *testing.T, name string, n int, opts ...quad.Option) *quad.KDV {
	t.Helper()
	pts, err := dataset.Generate(name, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	k, err := quad.New(pts.Coords, pts.Dim, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// sameBits reports whether two rasters are bit-identical, returning the
// first differing pixel for diagnostics.
func sameBits(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// TestRenderDeterministic pins the seed-pinned determinism contract on two
// dataset analogues: the same configuration renders byte-identical rasters
// on repeat runs, and the worker count never changes a single bit (tiles
// are evaluated independently, so scheduling cannot leak into values).
func TestRenderDeterministic(t *testing.T) {
	res := quad.Resolution{W: 48, H: 36}
	const eps = 0.05
	for _, name := range []string{"crime", "elnino"} {
		t.Run(name, func(t *testing.T) {
			k := buildAnalogue(t, name, 2000)
			a, err := k.RenderEps(res, eps)
			if err != nil {
				t.Fatal(err)
			}
			b, err := k.RenderEps(res, eps)
			if err != nil {
				t.Fatal(err)
			}
			if i, ok := sameBits(a.Values, b.Values); !ok {
				t.Fatalf("repeat render differs at pixel %d: %x vs %x",
					i, math.Float64bits(a.Values[i]), math.Float64bits(b.Values[i]))
			}

			kw := buildAnalogue(t, name, 2000, quad.WithWorkers(4))
			c, err := kw.RenderEps(res, eps)
			if err != nil {
				t.Fatal(err)
			}
			if i, ok := sameBits(a.Values, c.Values); !ok {
				t.Fatalf("4-worker render differs at pixel %d from 1-worker render", i)
			}

			_, sigma := a.MuSigma()
			mu, _ := a.MuSigma()
			tau := mu + 0.5*sigma
			h1, err := k.RenderTau(res, tau)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := kw.RenderTau(res, tau)
			if err != nil {
				t.Fatal(err)
			}
			for i := range h1.Hot {
				if h1.Hot[i] != h2.Hot[i] {
					t.Fatalf("τ mask differs at pixel %d across worker counts", i)
				}
			}
		})
	}
}

// TestTileSizeDeterminismContract documents the intentional nondeterminism
// across *different* tile sizes: εKDV pixel values may differ between
// WithTileSize(1) and the default, because warm-started refinement stops at
// a different certified interval than per-pixel root refinement. Each
// raster must still satisfy |R − F| ≤ ε·F pixel-by-pixel against the exact
// density, and τKDV hot masks must be bit-identical for every tile size.
func TestTileSizeDeterminismContract(t *testing.T) {
	res := quad.Resolution{W: 48, H: 36}
	const eps = 0.05
	k1 := buildAnalogue(t, "crime", 2000, quad.WithTileSize(1))
	kd := buildAnalogue(t, "crime", 2000)

	a, err := k1.RenderEps(res, eps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kd.RenderEps(res, eps)
	if err != nil {
		t.Fatal(err)
	}

	diff := 0
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			diff++
		}
	}
	// On this dataset the tile-shared path demonstrably returns different
	// (equally valid) values for some pixels; if this ever becomes zero the
	// WithTileSize documentation should be revisited.
	if diff == 0 {
		t.Error("tile size 1 and default produced identical εKDV rasters; expected documented divergence")
	}
	t.Logf("εKDV: %d/%d pixels differ between tile size 1 and default", diff, len(a.Values))

	// Both rasters honor the guarantee against the exact density at each
	// pixel center (reconstructed from the map's window exactly as the
	// render grid computes it).
	stepX := (a.WindowMax[0] - a.WindowMin[0]) / float64(res.W)
	stepY := (a.WindowMax[1] - a.WindowMin[1]) / float64(res.H)
	q := make([]float64, 2)
	for y := 0; y < res.H; y++ {
		for x := 0; x < res.W; x++ {
			q[0] = a.WindowMin[0] + (float64(x)+0.5)*stepX
			q[1] = a.WindowMin[1] + (float64(y)+0.5)*stepY
			f, err := k1.Density(q)
			if err != nil {
				t.Fatal(err)
			}
			slack := eps*f + 1e-12*f
			for _, m := range []*quad.DensityMap{a, b} {
				if v := m.At(x, y); math.Abs(v-f) > slack {
					t.Fatalf("pixel (%d,%d): value %g violates ε=%g guarantee around F=%g", x, y, v, eps, f)
				}
			}
		}
	}

	mu, sigma := a.MuSigma()
	tau := mu + 0.5*sigma
	h1, err := k1.RenderTau(res, tau)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := kd.RenderTau(res, tau)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Hot {
		if h1.Hot[i] != hd.Hot[i] {
			t.Fatalf("τ mask differs at pixel %d between tile size 1 and default", i)
		}
	}
}
