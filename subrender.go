package quad

import (
	"context"
	"fmt"
	"time"

	"github.com/quadkdv/quad/internal/grid"
)

// PixelRect selects the pixel sub-rectangle [X0, X1) × [Y0, Y1) of a raster,
// in the raster's lower-left-origin pixel coordinates.
type PixelRect struct {
	X0, Y0, X1, Y1 int
}

// W returns the sub-rectangle's width in pixels.
func (r PixelRect) W() int { return r.X1 - r.X0 }

// H returns the sub-rectangle's height in pixels.
func (r PixelRect) H() int { return r.Y1 - r.Y0 }

func (r PixelRect) validate(full Resolution) error {
	if r.X1 <= r.X0 || r.Y1 <= r.Y0 {
		return fmt.Errorf("quad: degenerate pixel rect [%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
	}
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > full.W || r.Y1 > full.H {
		return fmt.Errorf("quad: pixel rect [%d,%d)x[%d,%d) outside raster %dx%d",
			r.X0, r.X1, r.Y0, r.Y1, full.W, full.H)
	}
	return nil
}

// DefaultWindow returns the data-space window a zero-Window render covers:
// the dataset's bounding box (the full dataset's under WithShard) expanded
// by the configured margin. This is the fixed reference frame the XYZ tile
// pyramid is addressed against.
func (k *KDV) DefaultWindow() (Window, error) {
	g, err := k.newGridIn(Resolution{W: 1, H: 1}, Window{})
	if err != nil {
		return Window{}, err
	}
	return Window{
		MinX: g.Window.Min[0], MinY: g.Window.Min[1],
		MaxX: g.Window.Max[0], MaxY: g.Window.Max[1],
	}, nil
}

// RenderEpsSubInCtx renders the sub pixel rectangle of the conceptual
// full-resolution raster over win (zero Window = the dataset's default
// window) and returns a sub.W()×sub.H() density map. Every query point is
// computed with the full raster's window mapping, so the returned raster is
// bit-identical (Float64bits) to the corresponding crop of a full
// RenderEpsInCtx render whenever the sub-rect's origin is aligned to the
// engine's pixel-tile lattice (X0 and Y0 multiples of the effective tile
// size, see WithTileSize) — the contract the tile-pyramid subsystem and its
// stitched-mosaic conformance pass are built on. Unaligned origins render
// correctly (the ε guarantee holds) but may diverge from the crop in the
// low bits, because tile-shared frontiers would straddle different pixel
// blocks.
//
// The DensityMap's WindowMin/WindowMax are the data-space corners of the
// sub-rectangle (pixel edges, not centers) — the tile's bbox.
func (k *KDV) RenderEpsSubInCtx(ctx context.Context, full Resolution, eps float64, win Window, sub PixelRect) (*DensityMap, error) {
	return k.renderEpsSubIn(ctx, full, eps, win, sub, nil)
}

// RenderEpsSubStatsInCtx is RenderEpsSubInCtx additionally reporting the
// render's work counters.
func (k *KDV) RenderEpsSubStatsInCtx(ctx context.Context, full Resolution, eps float64, win Window, sub PixelRect) (*DensityMap, RenderStats, error) {
	var st RenderStats
	start := time.Now()
	dm, err := k.renderEpsSubIn(ctx, full, eps, win, sub, &st)
	st.Elapsed = time.Since(start)
	emitRenderSpans(ctx, "render.eps.sub", start, st, err)
	return dm, st, err
}

func (k *KDV) renderEpsSubIn(ctx context.Context, full Resolution, eps float64, win Window, sub PixelRect, st *RenderStats) (*DensityMap, error) {
	if eps < 0 {
		return nil, fmt.Errorf("quad: negative relative error %g", eps)
	}
	if full.W < 1 || full.H < 1 {
		return nil, fmt.Errorf("quad: non-positive full resolution %dx%d", full.W, full.H)
	}
	if err := sub.validate(full); err != nil {
		return nil, err
	}
	g, err := k.newGridIn(full, win)
	if err != nil {
		return nil, err
	}
	sg, err := g.Sub(sub.X0, sub.Y0, sub.W(), sub.H())
	if err != nil {
		return nil, err
	}
	vals, err := k.renderValues(ctx, sg, renderPass{eps: eps, stats: st})
	if err != nil {
		return nil, err
	}
	minX, minY := sg.PixelEdge(0, 0)
	maxX, maxY := sg.PixelEdge(sub.W(), sub.H())
	return &DensityMap{
		Res:       Resolution{W: sub.W(), H: sub.H()},
		Values:    vals,
		WindowMin: [2]float64{minX, minY},
		WindowMax: [2]float64{maxX, maxY},
	}, nil
}

// subGridFor exposes the sub-view grid construction to tests asserting the
// query-point identity directly.
func subGridFor(k *KDV, full Resolution, win Window, sub PixelRect) (*grid.Grid, error) {
	g, err := k.newGridIn(full, win)
	if err != nil {
		return nil, err
	}
	return g.Sub(sub.X0, sub.Y0, sub.W(), sub.H())
}
