package quad_test

import (
	"math"
	"strings"
	"testing"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
)

// TestNewRejectsEmptyDataset: every constructor form must reject an empty
// dataset with an error, not a zero-value KDV.
func TestNewRejectsEmptyDataset(t *testing.T) {
	if _, err := quad.New(nil, 2); err == nil {
		t.Error("New(nil, 2) accepted an empty dataset")
	}
	if _, err := quad.New([]float64{}, 2); err == nil {
		t.Error("New([], 2) accepted an empty dataset")
	}
	if _, err := quad.NewFromPoints(nil); err == nil {
		t.Error("NewFromPoints(nil) accepted an empty dataset")
	}
	if _, err := quad.New([]float64{1, 2, 3}, 2); err == nil {
		t.Error("New accepted a coordinate buffer that is not a multiple of dim")
	}
	if _, err := quad.New([]float64{1, 2}, 0); err == nil {
		t.Error("New accepted dimension 0")
	}
}

// edgeCase is one degenerate dataset/query geometry. Every case is run
// against Estimate (ε ladder including 0), IsHot (τ ladder including 0 and
// above-maximum), and DensityBounds (root sandwich), for each bound method.
type edgeCase struct {
	name   string
	coords []float64
	dim    int
	// query to evaluate at; tauHigh must exceed the maximum possible
	// density of the case so IsHot is provably false.
	query   []float64
	tauHigh float64
}

func edgeCases(t *testing.T) []edgeCase {
	t.Helper()
	d7 := dataset.Hep(200, 7, 1)
	line := make([]float64, 100)
	for i := range line {
		line[i] = 0.05 * float64(i%23)
	}
	identical := make([]float64, 0, 100)
	for i := 0; i < 50; i++ {
		identical = append(identical, 3, 4)
	}
	return []edgeCase{
		{name: "single-point", coords: []float64{3, 4}, dim: 2, query: []float64{3, 4}, tauHigh: 2},
		{name: "all-identical-points", coords: identical, dim: 2, query: []float64{3, 4}, tauHigh: 2},
		{name: "query-equals-data-point", coords: []float64{0, 0, 1, 1, 2, 2, 5, 1}, dim: 2, query: []float64{1, 1}, tauHigh: 2},
		{name: "d=1", coords: line, dim: 1, query: []float64{0.5}, tauHigh: 2},
		{name: "d=7", coords: d7.Coords, dim: 7, query: d7.At(0), tauHigh: 2},
	}
}

// TestQueryEdgeCases runs the degenerate geometries through the three query
// entry points for every bound method: the εKDV guarantee must hold down to
// ε=0, τ=0 must always be hot (densities are nonnegative), a τ above the
// maximum possible density must never be, and the no-refinement root bounds
// must sandwich the exact density.
func TestQueryEdgeCases(t *testing.T) {
	methods := []quad.Method{quad.MethodQuadratic, quad.MethodLinear, quad.MethodMinMax}
	for _, tc := range edgeCases(t) {
		for _, m := range methods {
			t.Run(tc.name+"/"+m.String(), func(t *testing.T) {
				// Degenerate geometries break the automatic bandwidth (zero
				// variance ⇒ no Scott's rule), so pin γ and w explicitly.
				// w=1/n keeps every density ≤ 1 < tauHigh.
				n := len(tc.coords) / tc.dim
				k, err := quad.New(tc.coords, tc.dim,
					quad.WithMethod(m), quad.WithBandwidth(1, 1/float64(n)))
				if err != nil {
					t.Fatal(err)
				}
				f, err := k.Density(tc.query)
				if err != nil {
					t.Fatal(err)
				}
				for _, eps := range []float64{0, 0.01, 0.2} {
					r, err := k.Estimate(tc.query, eps)
					if err != nil {
						t.Fatal(err)
					}
					if slack := eps*f + 1e-9*f; math.Abs(r-f) > slack {
						t.Errorf("Estimate(ε=%g) = %.17g, exact %.17g — guarantee violated", eps, r, f)
					}
				}
				if hot, err := k.IsHot(tc.query, 0); err != nil || !hot {
					t.Errorf("IsHot(τ=0) = (%v, %v), want hot: densities are nonnegative and ties are hot", hot, err)
				}
				if hot, err := k.IsHot(tc.query, tc.tauHigh); err != nil || hot {
					t.Errorf("IsHot(τ=%g) = (%v, %v), want cold: τ exceeds the maximum density", tc.tauHigh, hot, err)
				}
				if f > 0 {
					if hot, err := k.IsHot(tc.query, f*0.5); err != nil || !hot {
						t.Errorf("IsHot(τ=F/2) = (%v, %v), want hot", hot, err)
					}
				}
				lb, ub, err := k.DensityBounds(tc.query)
				if err != nil {
					t.Fatal(err)
				}
				tol := 1e-9 * (math.Abs(f) + math.Abs(lb) + math.Abs(ub))
				if lb > f+tol || f > ub+tol {
					t.Errorf("DensityBounds = [%.17g, %.17g] does not sandwich exact %.17g", lb, ub, f)
				}
			})
		}
	}
}

// TestQueryArgumentErrors pins the error contract of the query entry
// points: mismatched query dimension, negative ε, and DensityBounds on
// methods without a bound function.
func TestQueryArgumentErrors(t *testing.T) {
	pts, err := dataset.Generate("crime", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	k, err := quad.New(pts.Coords, pts.Dim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Estimate([]float64{1, 2, 3}, 0.1); err == nil {
		t.Error("Estimate accepted a 3-d query on a 2-d dataset")
	}
	if _, err := k.Estimate([]float64{1, 2}, -0.1); err == nil {
		t.Error("Estimate accepted a negative ε")
	}
	if _, err := k.IsHot([]float64{1}, 0.5); err == nil {
		t.Error("IsHot accepted a 1-d query on a 2-d dataset")
	}
	if _, _, err := k.DensityBounds([]float64{1}); err == nil {
		t.Error("DensityBounds accepted a 1-d query on a 2-d dataset")
	}

	for _, m := range []quad.Method{quad.MethodExact, quad.MethodZOrder} {
		km, err := quad.New(pts.Coords, pts.Dim, quad.WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := km.DensityBounds([]float64{50, 50}); err == nil {
			t.Errorf("DensityBounds on %s returned no error; the method has no bound function", m)
		} else if !strings.Contains(err.Error(), m.String()) {
			t.Errorf("DensityBounds error %q does not name the method", err)
		}
	}
}
