package quad

import (
	"context"
	"math/rand"
	"testing"
)

// uniformCloud builds an unclustered dataset — the adversarial case for
// tile sharing, where no node settles early.
func uniformCloud(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	return pts
}

// TestRenderEpsTileGuarantee is the εKDV property test: every pixel of a
// tile-shared render must be within relative error ε of the exact density,
// on clustered and uniform data and across tile sizes (including 1, the
// per-pixel baseline).
func TestRenderEpsTileGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	res := Resolution{W: 48, H: 36}
	const eps = 0.05
	for name, cloud := range map[string][][]float64{
		"clustered": testCloud(rng, 800),
		"uniform":   uniformCloud(rng, 800),
	} {
		exactK, err := NewFromPoints(cloud, WithMethod(MethodExact))
		if err != nil {
			t.Fatal(err)
		}
		want, err := exactK.RenderEps(res, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, tile := range []int{0, 1, 4, 16, 64} {
			k, err := NewFromPoints(cloud, WithTileSize(tile), WithWorkers(3))
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.RenderEps(res, eps)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range got.Values {
				f := want.Values[i]
				if diff := v - f; diff > eps*f || -diff > eps*f {
					t.Fatalf("%s tile=%d pixel %d: got %g, exact %g, rel err %g beyond eps %g",
						name, tile, i, v, f, (v-f)/f, eps)
				}
			}
		}
	}
}

// TestRenderTauTileMaskIdentity checks that tile-shared τKDV masks are
// identical to per-pixel refinement and to exact classification, across τ
// regimes that exercise decided-hot, decided-cold and mixed tiles.
func TestRenderTauTileMaskIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cloud := testCloud(rng, 800)
	res := Resolution{W: 48, H: 36}

	exactK, err := NewFromPoints(cloud, WithMethod(MethodExact))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := exactK.RenderEps(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := dm.MuSigma()

	perPixel, err := NewFromPoints(cloud, WithTileSize(1))
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := NewFromPoints(cloud, WithTileSize(16), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{mu - sigma, mu, mu + sigma, mu + 2*sigma} {
		if tau <= 0 {
			continue
		}
		want, err := perPixel.RenderTau(res, tau)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tiled.RenderTau(res, tau)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Hot {
			if got.Hot[i] != want.Hot[i] {
				t.Fatalf("tau=%g pixel %d: tile-shared %v, per-pixel %v (exact density %g)",
					tau, i, got.Hot[i], want.Hot[i], dm.Values[i])
			}
			if exact := dm.Values[i] >= tau; got.Hot[i] != exact {
				t.Fatalf("tau=%g pixel %d: tile-shared %v, exact classification %v", tau, i, got.Hot[i], exact)
			}
		}
	}
}

// TestRenderWorkerDeterminism: the work-stealing scheduler only moves tiles
// between workers, so the rendered output must be bit-identical for every
// worker count.
func TestRenderWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cloud := testCloud(rng, 600)
	res := Resolution{W: 40, H: 30}

	var refEps []float64
	var refTau []bool
	for _, workers := range []int{1, 2, 3, 8, 32} {
		k, err := NewFromPoints(cloud, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		dm, err := k.RenderEps(res, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		hm, err := k.RenderTau(res, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if refEps == nil {
			refEps = append(refEps, dm.Values...)
			refTau = append(refTau, hm.Hot...)
			continue
		}
		for i, v := range dm.Values {
			if v != refEps[i] {
				t.Fatalf("workers=%d: εKDV pixel %d differs: %g vs %g", workers, i, v, refEps[i])
			}
		}
		for i, h := range hm.Hot {
			if h != refTau[i] {
				t.Fatalf("workers=%d: τKDV pixel %d differs", workers, i)
			}
		}
	}
}

// TestRenderStatsCounters sanity-checks the RenderStats plumbing: pixel
// counts match the raster, tile sharing records shared work, and the
// per-pixel baseline records none.
func TestRenderStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cloud := testCloud(rng, 600)
	res := Resolution{W: 64, H: 48}

	tiled, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := tiled.RenderEpsStats(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pixels != res.W*res.H {
		t.Errorf("Pixels = %d, want %d", st.Pixels, res.W*res.H)
	}
	if st.Tiles == 0 || st.SharedNodeEvals == 0 {
		t.Errorf("tile-shared render recorded no shared work: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Errorf("Elapsed not recorded: %v", st.Elapsed)
	}

	perPixel, err := NewFromPoints(cloud, WithTileSize(1))
	if err != nil {
		t.Fatal(err)
	}
	_, pst, err := perPixel.RenderEpsStats(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if pst.SharedNodeEvals != 0 || pst.Tiles != 0 {
		t.Errorf("per-pixel baseline recorded shared work: %+v", pst)
	}
	if pst.NodesEvaluated == 0 {
		t.Errorf("per-pixel baseline recorded no node evaluations")
	}
	// The whole point: tile sharing must cut per-pixel node evaluations.
	if st.NodesEvaluated >= pst.NodesEvaluated {
		t.Errorf("tile sharing did not reduce per-pixel node evals: tiled %d vs per-pixel %d",
			st.NodesEvaluated, pst.NodesEvaluated)
	}

	_, tst, err := tiled.RenderTauStats(res, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if tst.Pixels != res.W*res.H || tst.Tiles == 0 {
		t.Errorf("τKDV stats incomplete: %+v", tst)
	}
}

// TestRenderStatsDepthAndStages checks the PR4 stats additions: the
// refinement-depth histogram accounts for every refined pixel, the shared
// stage records wall time, and the ctx-aware Stats entry points populate
// everything the header/slow-query plumbing reads.
func TestRenderStatsDepthAndStages(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cloud := testCloud(rng, 600)
	res := Resolution{W: 64, H: 48}
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}

	_, st, err := k.RenderEpsStatsInCtx(context.Background(), res, 0.05, Window{})
	if err != nil {
		t.Fatal(err)
	}
	var depth int
	for _, n := range st.DepthPixels {
		depth += n
	}
	// εKDV renders refine every pixel (fills happen only for decided τ
	// tiles), so the depth histogram must cover the whole raster.
	if depth != st.Pixels {
		t.Errorf("sum(DepthPixels) = %d, want Pixels = %d (%v)", depth, st.Pixels, st.DepthPixels)
	}
	if st.SharedElapsed <= 0 || st.SharedElapsed > st.Elapsed*64 {
		// SharedElapsed is summed across workers, so it may exceed wall
		// time — but not by more than the worker count.
		t.Errorf("SharedElapsed implausible: shared %v vs elapsed %v", st.SharedElapsed, st.Elapsed)
	}

	_, tst, err := k.RenderTauStatsInCtx(context.Background(), res, 0.02, Window{})
	if err != nil {
		t.Fatal(err)
	}
	var tdepth int
	for _, n := range tst.DepthPixels {
		tdepth += n
	}
	// τKDV fills decided tiles without refining their pixels.
	if tdepth > tst.Pixels {
		t.Errorf("τ sum(DepthPixels) = %d > Pixels = %d", tdepth, tst.Pixels)
	}
	if tst.TilesDecided > 0 && tdepth == tst.Pixels {
		t.Errorf("decided tiles recorded per-pixel depth entries: %+v", tst)
	}

	// Per-pixel baseline: no shared stage, no promotions, full depth cover.
	pp, err := NewFromPoints(cloud, WithTileSize(1))
	if err != nil {
		t.Fatal(err)
	}
	_, pst, err := pp.RenderEpsStatsInCtx(context.Background(), res, 0.05, Window{})
	if err != nil {
		t.Fatal(err)
	}
	if pst.SharedElapsed != 0 || pst.FrontierPromotions != 0 {
		t.Errorf("per-pixel baseline recorded shared stage work: %+v", pst)
	}
}

// TestHotFractionEmpty: an empty hotspot map has hot fraction 0, not NaN.
func TestHotFractionEmpty(t *testing.T) {
	m := &HotspotMap{}
	if f := m.HotFraction(); f != 0 {
		t.Errorf("empty HotFraction = %g, want 0", f)
	}
}

// TestMapRelease exercises the pooled-buffer round trip: Release and a
// subsequent render must not corrupt earlier results.
func TestMapRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	cloud := testCloud(rng, 300)
	res := Resolution{W: 32, H: 24}
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	a, err := k.RenderEps(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]float64(nil), a.Values...)
	a.Release()
	if a.Values != nil {
		t.Fatal("Release did not clear Values")
	}
	b, err := k.RenderEps(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b.Values {
		if v != keep[i] {
			t.Fatalf("render after Release differs at %d: %g vs %g", i, v, keep[i])
		}
	}
	hm, err := k.RenderTau(res, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	hm.Release()
	if hm.Hot != nil {
		t.Fatal("Release did not clear Hot")
	}
}
