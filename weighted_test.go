package quad

import (
	"math"
	"math/rand"
	"testing"
)

func TestWithPointWeightsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	cloud := testCloud(rng, 50)
	if _, err := NewFromPoints(cloud, WithPointWeights([]float64{1, 2})); err == nil {
		t.Error("mismatched weight count accepted")
	}
	bad := make([]float64, 50)
	bad[3] = -1
	if _, err := NewFromPoints(cloud, WithPointWeights(bad)); err == nil {
		t.Error("negative weight accepted")
	}
	zeros := make([]float64, 50)
	if _, err := NewFromPoints(cloud, WithPointWeights(zeros)); err == nil {
		t.Error("all-zero weights accepted")
	}
	ws := make([]float64, 50)
	for i := range ws {
		ws[i] = 1
	}
	if _, err := NewFromPoints(cloud, WithPointWeights(ws), WithMethod(MethodZOrder)); err == nil {
		t.Error("Z-order with point weights accepted")
	}
}

func TestWeightedEstimateMatchesWeightedDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	cloud := testCloud(rng, 1000)
	ws := make([]float64, len(cloud))
	for i := range ws {
		ws[i] = rng.Float64() * 4
	}
	k, err := NewFromPoints(cloud, WithPointWeights(ws))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 6}
		exact, err := k.Density(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Estimate(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if exact > 0 && math.Abs(got-exact)/exact > 0.01 {
			t.Fatalf("weighted estimate rel err %g", math.Abs(got-exact)/exact)
		}
	}
}

// TestWeightedDefaultNormalization: the automatic scalar weight with point
// weights is 1/Σw, so densities stay O(1)-scaled like the uniform case.
func TestWeightedDefaultNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	cloud := testCloud(rng, 400)
	ws := make([]float64, len(cloud))
	for i := range ws {
		ws[i] = 2.5
	}
	kw, err := NewFromPoints(cloud, WithPointWeights(ws))
	if err != nil {
		t.Fatal(err)
	}
	ku, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	// Constant weights with 1/Σw normalization reduce exactly to the
	// uniform 1/n case.
	q := []float64{4, 4}
	dw, _ := kw.Density(q)
	du, _ := ku.Density(q)
	if math.Abs(dw-du) > 1e-12*(1+du) {
		t.Errorf("constant-weight density %g != uniform density %g", dw, du)
	}
}

// TestWeightedRender: the weighted density map must emphasize the
// high-weight cluster.
func TestWeightedRender(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	// Two clusters, one with 10x point weights.
	var cloud [][]float64
	var ws []float64
	for i := 0; i < 600; i++ {
		if i%2 == 0 {
			cloud = append(cloud, []float64{1 + rng.NormFloat64()*0.3, 1 + rng.NormFloat64()*0.3})
			ws = append(ws, 10)
		} else {
			cloud = append(cloud, []float64{5 + rng.NormFloat64()*0.3, 5 + rng.NormFloat64()*0.3})
			ws = append(ws, 1)
		}
	}
	k, err := NewFromPoints(cloud, WithPointWeights(ws))
	if err != nil {
		t.Fatal(err)
	}
	heavy, _ := k.Density([]float64{1, 1})
	light, _ := k.Density([]float64{5, 5})
	if heavy < 5*light {
		t.Errorf("weighted cluster density %g not dominating unweighted %g", heavy, light)
	}
	dm, err := k.RenderEps(Resolution{W: 24, H: 24}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, hi := minMax(dm.Values); hi <= 0 {
		t.Error("weighted render produced no positive densities")
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}

func TestRenderEpsInWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	cloud := testCloud(rng, 600)
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	res := Resolution{W: 16, H: 16}
	win := Window{MinX: -0.5, MinY: -0.5, MaxX: 1.5, MaxY: 1.5}
	dm, err := k.RenderEpsIn(res, 0.01, win)
	if err != nil {
		t.Fatal(err)
	}
	if dm.WindowMin != [2]float64{-0.5, -0.5} || dm.WindowMax != [2]float64{1.5, 1.5} {
		t.Errorf("window not honored: %v %v", dm.WindowMin, dm.WindowMax)
	}
	// Zoomed window over the first cluster must agree with direct queries.
	q := []float64{win.MinX + (0.5+8)/16*(win.MaxX-win.MinX), win.MinY + (0.5+8)/16*(win.MaxY-win.MinY)}
	exact, _ := k.Density(q)
	if exact > 0 && math.Abs(dm.At(8, 8)-exact)/exact > 0.01 {
		t.Errorf("windowed pixel value %g, exact %g", dm.At(8, 8), exact)
	}
	if _, err := k.RenderEpsIn(res, 0.01, Window{MinX: 1, MaxX: 1, MinY: 0, MaxY: 2}); err == nil {
		t.Error("degenerate window accepted")
	}
	hm, err := k.RenderTauIn(res, exact, win)
	if err != nil {
		t.Fatal(err)
	}
	if len(hm.Hot) != 256 {
		t.Errorf("windowed tau raster %d", len(hm.Hot))
	}
}

func TestWithTightNodeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	cloud := testCloud(rng, 2000)
	plain, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewFromPoints(cloud, WithTightNodeBounds(true))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 6}
		a, _ := plain.Estimate(q, 0.01)
		b, _ := tight.Estimate(q, 0.01)
		exact, _ := plain.Density(q)
		if exact > 0 {
			if math.Abs(a-exact)/exact > 0.01 || math.Abs(b-exact)/exact > 0.01 {
				t.Fatalf("ball-tightened estimate broke guarantee: %g %g vs %g", a, b, exact)
			}
		}
	}
	// Tightened root interval must be no wider.
	q := []float64{12, -3}
	lbP, ubP, _ := plain.DensityBounds(q)
	lbT, ubT, _ := tight.DensityBounds(q)
	if ubT-lbT > (ubP-lbP)*(1+1e-12) {
		t.Errorf("ball tightening widened the root gap: [%g,%g] vs [%g,%g]", lbT, ubT, lbP, ubP)
	}
}

func TestWithBandwidthRule(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	// Silverman's factor (4/(d+2))^{1/(d+4)} is exactly 1 in 2-d; use 1-d
	// (factor > 1) and 3-d (factor < 1) data to observe the difference.
	cloudDim := func(dim int) [][]float64 {
		pts := make([][]float64, 500)
		for i := range pts {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			pts[i] = p
		}
		return pts
	}
	mk := func(pts [][]float64, rule BandwidthRule) *KDV {
		k, err := NewFromPoints(pts, WithBandwidthRule(rule))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	one := cloudDim(1)
	if s, sc := mk(one, Silverman).Bandwidth(), mk(one, Scott).Bandwidth(); s <= sc*1.01 {
		t.Errorf("1-d: Silverman h %g should exceed Scott h %g", s, sc)
	}
	three := cloudDim(3)
	if s, sc := mk(three, Silverman).Bandwidth(), mk(three, Scott).Bandwidth(); s >= sc {
		t.Errorf("3-d: Silverman h %g should be below Scott h %g", s, sc)
	}
	// 2-d: the rules coincide.
	two := testCloud(rng, 400)
	a, _ := NewFromPoints(two, WithBandwidthRule(Scott))
	b, _ := NewFromPoints(two, WithBandwidthRule(Silverman))
	if math.Abs(a.Bandwidth()-b.Bandwidth()) > 1e-12*a.Bandwidth() {
		t.Errorf("2-d: rules should coincide: %g vs %g", a.Bandwidth(), b.Bandwidth())
	}
}
