package quad

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/progressive"
	"github.com/quadkdv/quad/internal/render"
	"github.com/quadkdv/quad/internal/stats"
	"github.com/quadkdv/quad/internal/trace"
)

// DensityMap is a rendered density raster: Values[y*Res.W+x] is the density
// of pixel (x, y), with pixel (0, 0) at the lower-left corner of the
// data-space window.
type DensityMap struct {
	Res    Resolution
	Values []float64
	// WindowMin/WindowMax are the data-space corners of the rendered
	// window.
	WindowMin, WindowMax [2]float64
}

// At returns the density value of pixel (x, y).
func (m *DensityMap) At(x, y int) float64 { return m.Values[y*m.Res.W+x] }

// MuSigma returns the mean and standard deviation of the map's density
// values — the statistics the paper's τ thresholds are expressed in.
func (m *DensityMap) MuSigma() (mu, sigma float64) { return stats.MuSigma(m.Values) }

// Release returns the map's value buffer to the shared render pool and
// clears Values. Call it once the map is no longer needed (e.g. after
// encoding a PNG) so subsequent renders at the same resolution reuse the
// raster instead of re-allocating it; the map must not be used afterwards.
func (m *DensityMap) Release() {
	if m.Values != nil {
		putVals(m.Values)
		m.Values = nil
	}
}

// SavePNG renders the map through the heat-color ramp and writes a PNG.
// logScale applies a logarithmic color scale, which suits the heavy density
// skew of typical KDV data.
func (m *DensityMap) SavePNG(path string, logScale bool) error {
	v := &grid.Values{Res: m.Res.internal(), Data: m.Values}
	scale := render.Linear
	if logScale {
		scale = render.Log
	}
	return render.SavePNG(path, render.Heatmap(v, scale))
}

// HotspotMap is a rendered τKDV raster: Hot[y*Res.W+x] reports whether
// pixel (x, y) has density ≥ τ.
type HotspotMap struct {
	Res                  Resolution
	Tau                  float64
	Hot                  []bool
	WindowMin, WindowMax [2]float64
}

// At reports whether pixel (x, y) is hot.
func (m *HotspotMap) At(x, y int) bool { return m.Hot[y*m.Res.W+x] }

// HotFraction returns the fraction of hot pixels. An empty map has no hot
// pixels, so its fraction is 0 (not NaN).
func (m *HotspotMap) HotFraction() float64 {
	if len(m.Hot) == 0 {
		return 0
	}
	var n int
	for _, h := range m.Hot {
		if h {
			n++
		}
	}
	return float64(n) / float64(len(m.Hot))
}

// Release returns the map's mask buffer to the shared render pool and
// clears Hot; the map must not be used afterwards.
func (m *HotspotMap) Release() {
	if m.Hot != nil {
		putHot(m.Hot)
		m.Hot = nil
	}
}

// SavePNG writes the two-color hotspot map as a PNG.
func (m *HotspotMap) SavePNG(path string) error {
	img, err := render.Binary(m.Res.internal(), m.Hot)
	if err != nil {
		return err
	}
	return render.SavePNG(path, img)
}

// Window is a 2-d data-space rectangle selecting the region a render
// covers — the pan/zoom primitive for interactive exploration. The zero
// Window means "the dataset's bounding box plus the configured margin".
type Window struct {
	MinX, MinY, MaxX, MaxY float64
}

// IsZero reports whether the window is unset.
func (w Window) IsZero() bool { return w == Window{} }

func (w Window) validate() error {
	if w.MaxX <= w.MinX || w.MaxY <= w.MinY {
		return fmt.Errorf("quad: degenerate window [%g,%g]x[%g,%g]", w.MinX, w.MaxX, w.MinY, w.MaxY)
	}
	return nil
}

func (k *KDV) newGrid(res Resolution) (*grid.Grid, error) {
	return k.newGridIn(res, Window{})
}

func (k *KDV) newGridIn(res Resolution, w Window) (*grid.Grid, error) {
	if k.pts.Dim != 2 {
		return nil, fmt.Errorf("quad: rendering requires a 2-d dataset, got %d-d (use Estimate for general KDE)", k.pts.Dim)
	}
	if w.IsZero() {
		if k.fullRect.Dim() == 2 {
			// Sharded KDV (WithShard): the default window covers the FULL
			// dataset's bounding box, not the shard's, so per-shard rasters
			// align pixel for pixel and merge by addition.
			r := k.fullRect.Clone()
			for i := 0; i < 2; i++ {
				m := (r.Max[i] - r.Min[i]) * k.cfg.seedWindow
				r.Min[i] -= m
				r.Max[i] += m
			}
			return grid.New(res.internal(), r)
		}
		return grid.ForDataset(res.internal(), k.pts, k.cfg.seedWindow)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	return grid.New(res.internal(), geomRect(w))
}

// defaultTileSize is the default pixel tile edge for tile-shared rendering
// (see WithTileSize): 16×16 tiles amortize the shared kd-tree refinement
// over 256 pixels while staying small enough that tile-uniform bounds are
// tight.
const defaultTileSize = 16

// subTileSize is the second level of the tile-shared traversal: within a
// tile, the shared frontier is tightened once per subTileSize×subTileSize
// pixel block before pixels warm-start from it.
const subTileSize = 4

// tileSize returns the effective tile edge: the configured value, 1 for
// "sharing disabled", or the default.
func (k *KDV) tileSize() int {
	switch {
	case k.cfg.tileSize >= 2:
		return k.cfg.tileSize
	case k.cfg.tileSize == 1:
		return 1
	default:
		return defaultTileSize
	}
}

// tileSpan is one work unit of the render scheduler: the pixel block
// [x0, x1) × [y0, y1).
type tileSpan struct{ x0, y0, x1, y1 int }

// tileSpans decomposes the raster into row-major size×size tiles (edge
// tiles clipped).
func tileSpans(res grid.Resolution, size int) []tileSpan {
	if size < 1 {
		size = 1
	}
	nx := (res.W + size - 1) / size
	ny := (res.H + size - 1) / size
	spans := make([]tileSpan, 0, nx*ny)
	for ty := 0; ty < ny; ty++ {
		y0 := ty * size
		y1 := y0 + size
		if y1 > res.H {
			y1 = res.H
		}
		for tx := 0; tx < nx; tx++ {
			x0 := tx * size
			x1 := x0 + size
			if x1 > res.W {
				x1 = res.W
			}
			spans = append(spans, tileSpan{x0, y0, x1, y1})
		}
	}
	return spans
}

// valsPool recycles full-raster float64 buffers across renders, so repeated
// server renders at steady resolutions stop re-allocating W×H slices. Maps
// built on pooled buffers return them through Release.
var valsPool sync.Pool

func getVals(n int) []float64 {
	if p, ok := valsPool.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putVals(v []float64) {
	if cap(v) == 0 {
		return
	}
	v = v[:0]
	valsPool.Put(&v)
}

// hotPool is valsPool's analogue for τKDV masks.
var hotPool sync.Pool

func getHot(n int) []bool {
	if p, ok := hotPool.Get().(*[]bool); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]bool, n)
}

func putHot(h []bool) {
	if cap(h) == 0 {
		return
	}
	h = h[:0]
	hotPool.Put(&h)
}

// renderDepthBuckets is the number of refinement-depth buckets in
// RenderStats.DepthPixels: bucket 0 holds pixels settled with zero queue
// pops, bucket d (1 ≤ d < 8) pixels settled in [2^(d-1), 2^d) pops, and the
// last bucket everything deeper.
const renderDepthBuckets = 9

// RenderStats aggregates the work one render performed across all workers —
// the observability behind the benchmarks' ns/pixel and nodes/pixel
// trajectories, and the payload of the server's X-KDV-Stats-* headers and
// slow-query log.
type RenderStats struct {
	// Pixels is the number of pixels evaluated.
	Pixels int
	// Tiles is the number of pixel tiles scheduled; TilesDecided counts the
	// τKDV tiles classified whole by the shared phase (zero per-pixel work).
	Tiles, TilesDecided int
	// SharedNodeEvals counts tile-uniform bound evaluations (shared phase
	// and frontier promotions), amortized over each tile's pixels.
	SharedNodeEvals int
	// FrontierPromotions counts the frontier expansions triggered by the
	// coherence signal (promoteHits adjacent pixels expanding the same
	// node) during per-pixel refinement.
	FrontierPromotions int
	// Iterations, NodesEvaluated, LeafScans and PointsScanned are the
	// per-pixel refinement counters summed over every pixel (see
	// engine.Stats).
	Iterations, NodesEvaluated, LeafScans, PointsScanned int
	// DepthPixels histograms refined pixels by queue pops needed to settle
	// them: bucket 0 is zero pops (the warm-started frontier already decided
	// the pixel), bucket d is [2^(d-1), 2^d) pops, the last bucket is
	// everything deeper. Pixels filled from decided tile envelopes do not
	// appear here, so the sum can be below Pixels.
	DepthPixels [renderDepthBuckets]int
	// Elapsed is the render's wall-clock time (set by the *Stats render
	// entry points). SharedElapsed is the time spent building tile/sub-tile
	// frontiers, summed across workers — CPU time of the shared stage, not
	// wall time (promotion work is counted in the per-pixel remainder).
	Elapsed, SharedElapsed time.Duration
}

// NodesPerPixel returns bound evaluations per pixel, counting the shared
// tile work against the pixels it was amortized over.
func (s RenderStats) NodesPerPixel() float64 {
	if s.Pixels == 0 {
		return 0
	}
	return float64(s.NodesEvaluated+s.SharedNodeEvals) / float64(s.Pixels)
}

func (s *RenderStats) addPixel(st engine.Stats) {
	s.Iterations += st.Iterations
	s.NodesEvaluated += st.NodesEvaluated
	s.LeafScans += st.LeafScans
	s.PointsScanned += st.PointsScanned
	d := bits.Len(uint(st.Iterations))
	if d >= renderDepthBuckets {
		d = renderDepthBuckets - 1
	}
	s.DepthPixels[d]++
}

func (s *RenderStats) addShared(st engine.Stats) { s.SharedNodeEvals += st.NodesEvaluated }

// addPromote records a Promote result: promotions re-evaluate bounds for
// the expanded node's children, so a non-zero eval count means exactly one
// promotion happened.
func (s *RenderStats) addPromote(st engine.Stats) {
	if st.NodesEvaluated > 0 {
		s.SharedNodeEvals += st.NodesEvaluated
		s.FrontierPromotions++
	}
}

// sharedStart marks the start of a shared-stage timing window; it costs
// nothing unless the render is collecting stats.
func sharedStart(timed bool) time.Time {
	if !timed {
		return time.Time{}
	}
	return time.Now()
}

func (s *RenderStats) endShared(timed bool, t0 time.Time) {
	if timed {
		s.SharedElapsed += time.Since(t0)
	}
}

func (s *RenderStats) merge(o RenderStats) {
	s.Tiles += o.Tiles
	s.TilesDecided += o.TilesDecided
	s.SharedNodeEvals += o.SharedNodeEvals
	s.FrontierPromotions += o.FrontierPromotions
	s.Iterations += o.Iterations
	s.NodesEvaluated += o.NodesEvaluated
	s.LeafScans += o.LeafScans
	s.PointsScanned += o.PointsScanned
	for i, n := range o.DepthPixels {
		s.DepthPixels[i] += n
	}
	s.SharedElapsed += o.SharedElapsed
}

// emitRenderSpans records post-hoc render-stage spans on the context's
// trace (no-op when the context carries none), decomposing the render's
// wall time at the RenderStats stage boundaries: a parent render span, a
// shared_frontier child and a pixel_refinement child. SharedElapsed is CPU
// time summed across workers, not wall time, so the shared_frontier child
// is clamped to the wall window and carries the true CPU sum as cpu_ms.
// Call after st.Elapsed has been set.
func emitRenderSpans(ctx context.Context, name string, start time.Time, st RenderStats, err error) {
	tr := trace.FromContext(ctx)
	if tr == nil {
		return
	}
	end := start.Add(st.Elapsed)
	sp := tr.Add(name, trace.SpanFromContext(ctx), start, end,
		trace.Int("pixels", st.Pixels),
		trace.Int("tiles", st.Tiles),
		trace.Int("tiles_decided", st.TilesDecided),
		trace.Int("node_evals", st.NodesEvaluated),
		trace.Int("shared_evals", st.SharedNodeEvals),
		trace.Float64("nodes_per_pixel", st.NodesPerPixel()),
	)
	if err != nil {
		sp.SetAttrs(trace.Str("error", err.Error()))
	}
	shared := st.SharedElapsed
	if shared > st.Elapsed {
		shared = st.Elapsed
	}
	mid := start.Add(shared)
	tr.Add("shared_frontier", sp, start, mid,
		trace.DurMs("cpu_ms", st.SharedElapsed),
		trace.Int("shared_evals", st.SharedNodeEvals),
		trace.Int("promotions", st.FrontierPromotions))
	tr.Add("pixel_refinement", sp, mid, end,
		trace.Int("iterations", st.Iterations),
		trace.Int("node_evals", st.NodesEvaluated),
		trace.Int("leaf_scans", st.LeafScans),
		trace.Int("points_scanned", st.PointsScanned))
}

// renderPass describes one full-raster evaluation: εKDV (density values) or
// τKDV (0/1 hot values), with an optional stats sink and an optional
// per-pixel work-map sink.
type renderPass struct {
	eps   float64
	tau   float64
	isTau bool
	stats *RenderStats
	work  *WorkMap
}

// renderValues evaluates every pixel of g into a pooled buffer. Workers
// claim fixed-size pixel tiles from a shared cursor — a work-stealing queue,
// so hotspot-heavy tiles don't stall the render the way static row ranges
// did — and each tile is evaluated independently with the tile-shared
// traversal (one shared kd-tree refinement per tile, per-pixel refinement
// warm-started from the residual frontier). Tile results do not depend on
// which worker computes them, so output is bit-identical for every worker
// count. Each worker polls ctx between tiles and between pixel rows inside
// a tile (large tiles would otherwise delay cancellation by a whole tile's
// work); the first context error is returned after all workers have exited.
func (k *KDV) renderValues(ctx context.Context, g *grid.Grid, pass renderPass) ([]float64, error) {
	vals := getVals(g.Res.Pixels())
	size := k.tileSize()
	sched := size
	if sched < 2 {
		// Sharing disabled: tiles remain the scheduling unit, just bigger
		// to keep cursor contention negligible.
		sched = 2 * defaultTileSize
	}
	spans := tileSpans(g.Res, sched)
	workers := k.cfg.workers
	if workers > len(spans) {
		workers = len(spans)
	}
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		statsMu  sync.Mutex
	)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local RenderStats
			run, cleanup, err := k.newTileRunner(ctx, g, size, pass, &local)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			defer func() {
				cleanup()
				if pass.stats != nil {
					statsMu.Lock()
					pass.stats.merge(local)
					statsMu.Unlock()
				}
			}()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				run(spans[i], vals)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		putVals(vals)
		return nil, err
	}
	if firstErr != nil {
		putVals(vals)
		return nil, firstErr
	}
	if pass.stats != nil {
		pass.stats.Pixels += g.Res.Pixels()
	}
	return vals, nil
}

// newTileRunner builds one worker's tile evaluator for the pass. The
// returned run writes every pixel of its span into vals; cleanup returns the
// worker's pooled scratch. run polls ctx between pixel rows and returns
// early once it is cancelled — partial tile output is fine because the
// caller discards the raster on any context error.
func (k *KDV) newTileRunner(ctx context.Context, g *grid.Grid, size int, pass renderPass, local *RenderStats) (run func(tileSpan, []float64), cleanup func(), err error) {
	kern := k.cfg.kern.internal()
	switch k.cfg.method {
	case MethodExact, MethodZOrder:
		pts, ws, wt := k.pts, k.weights, k.bw.Weight
		if k.cfg.method == MethodZOrder {
			pts, ws, wt = k.sample, nil, k.sampleWeight
		}
		q := make([]float64, 2)
		run = func(t tileSpan, vals []float64) {
			for y := t.y0; y < t.y1; y++ {
				if ctx.Err() != nil {
					return
				}
				for x := t.x0; x < t.x1; x++ {
					g.Query(x, y, q)
					v := bounds.ExactScan(pts, ws, kern, k.bw.Gamma, wt, q)
					if pass.isTau {
						if v >= pass.tau {
							v = 1
						} else {
							v = 0
						}
					}
					vals[g.Index(x, y)] = v
				}
			}
		}
		return run, func() {}, nil
	}
	s, err := k.acquireRenderScratch()
	if err != nil {
		return nil, nil, err
	}
	cleanup = func() { k.releaseRenderScratch(s) }
	// Shared-stage wall time is only measured when the caller asked for
	// stats; plain renders skip every clock read.
	timed := pass.stats != nil
	if size < 2 {
		// Tile sharing disabled: the paper's per-pixel refinement from the
		// root, kept as the WithTileSize(1) baseline.
		run = func(t tileSpan, vals []float64) {
			for y := t.y0; y < t.y1; y++ {
				if ctx.Err() != nil {
					return
				}
				for x := t.x0; x < t.x1; x++ {
					g.Query(x, y, s.q)
					var v float64
					var st engine.Stats
					if pass.isTau {
						var hot bool
						hot, st = s.r.EvalTau(s.q, pass.tau)
						if hot {
							v = 1
						}
					} else {
						v, st = s.r.EvalEps(s.q, pass.eps)
					}
					vals[g.Index(x, y)] = v
					local.addPixel(st)
					if pass.work != nil {
						pass.work.record(g.Index(x, y), st)
					}
				}
			}
		}
		return run, cleanup, nil
	}
	// runPixels evaluates a pixel span against one frontier. Serpentine
	// pixel order keeps successive queries adjacent, which is what makes the
	// frontier-promotion coherence signal meaningful.
	runPixels := func(t tileSpan, f engine.Front, vals []float64) {
		for y := t.y0; y < t.y1; y++ {
			if ctx.Err() != nil {
				return
			}
			x0, x1, dx := t.x0, t.x1-1, 1
			if (y-t.y0)%2 == 1 {
				x0, x1, dx = t.x1-1, t.x0, -1
			}
			for x := x0; ; x += dx {
				g.Query(x, y, s.q)
				var v float64
				var st engine.Stats
				if pass.isTau {
					var hot bool
					hot, st = s.r.EvalTauFrom(f, s.q, pass.tau)
					if hot {
						v = 1
					}
				} else {
					v, st = s.r.EvalEpsFrom(f, s.q, pass.eps)
				}
				vals[g.Index(x, y)] = v
				local.addPixel(st)
				if pass.work != nil {
					pass.work.record(g.Index(x, y), st)
				}
				local.addPromote(s.r.Promote(f))
				if x == x1 {
					break
				}
			}
		}
	}
	fill := func(t tileSpan, hot bool, vals []float64) {
		var v float64
		if hot {
			v = 1
		}
		for y := t.y0; y < t.y1; y++ {
			for x := t.x0; x < t.x1; x++ {
				vals[g.Index(x, y)] = v
			}
		}
	}
	// rootPixels evaluates a pixel span with per-pixel root refinement — the
	// fallback when a tile's shared frontier is measurably not worth seeding
	// from. Like the warm-started path it runs through the Renderer
	// interface, so the fallback decision and the refinement it triggers are
	// identical under the flat and pointer engine layouts.
	rootPixels := func(t tileSpan, vals []float64) {
		for y := t.y0; y < t.y1; y++ {
			if ctx.Err() != nil {
				return
			}
			for x := t.x0; x < t.x1; x++ {
				g.Query(x, y, s.q)
				v, st := s.r.EvalEps(s.q, pass.eps)
				vals[g.Index(x, y)] = v
				local.addPixel(st)
				if pass.work != nil {
					pass.work.record(g.Index(x, y), st)
				}
			}
		}
	}
	run = func(t tileSpan, vals []float64) {
		rect := s.tileRect(g, t)
		local.Tiles++
		if pass.isTau {
			t0 := sharedStart(timed)
			local.addShared(s.r.BuildFrontierTau(rect, pass.tau, s.frontier))
			local.endShared(timed, t0)
			if decided, hot := s.frontier.State(); decided {
				local.TilesDecided++
				fill(t, hot, vals)
				return
			}
		} else if size <= subTileSize {
			t0 := sharedStart(timed)
			local.addShared(s.r.BuildFrontierEps(rect, pass.eps, s.frontier))
			local.endShared(timed, t0)
		} else {
			t0 := sharedStart(timed)
			outSt := s.r.BuildFrontierEpsCoarse(rect, pass.eps, s.frontier)
			local.endShared(timed, t0)
			local.addShared(outSt)
			// Adaptive probe: build the first sub-frontier and evaluate the
			// tile's first pixel both warm-started and from the root. Dense
			// data under coarse pixels can leave frontiers that cost more to
			// seed from than root refinement saves; the probe measures the
			// actual per-pixel costs and the projected shared overhead, and
			// picks the cheaper strategy for the whole tile. The decision
			// depends only on deterministic per-tile state, so renders stay
			// bit-identical across worker counts.
			fx1, fy1 := t.x0+subTileSize, t.y0+subTileSize
			if fx1 > t.x1 {
				fx1 = t.x1
			}
			if fy1 > t.y1 {
				fy1 = t.y1
			}
			first := tileSpan{t.x0, t.y0, fx1, fy1}
			srect := s.tileRect(g, first)
			t0 = sharedStart(timed)
			subSt := s.r.BuildFrontierEpsFrom(s.frontier, srect, pass.eps, s.sub)
			local.endShared(timed, t0)
			local.addShared(subSt)
			g.Query(t.x0, t.y0, s.q)
			_, warmSt := s.r.EvalEpsFrom(s.sub, s.q, pass.eps)
			_, rootSt := s.r.EvalEps(s.q, pass.eps)
			local.addShared(rootSt) // probe overhead, not pixel work
			px := (t.x1 - t.x0) * (t.y1 - t.y0)
			nsub := ((t.x1 - t.x0 + subTileSize - 1) / subTileSize) *
				((t.y1 - t.y0 + subTileSize - 1) / subTileSize)
			overhead := (outSt.NodesEvaluated + nsub*subSt.NodesEvaluated) / px
			if warmSt.NodesEvaluated+overhead > rootSt.NodesEvaluated {
				rootPixels(t, vals)
				return
			}
			runPixels(first, s.sub, vals)
			for sy := t.y0; sy < t.y1; sy += subTileSize {
				sy1 := sy + subTileSize
				if sy1 > t.y1 {
					sy1 = t.y1
				}
				for sx := t.x0; sx < t.x1; sx += subTileSize {
					if sx == t.x0 && sy == t.y0 {
						continue
					}
					sx1 := sx + subTileSize
					if sx1 > t.x1 {
						sx1 = t.x1
					}
					sub := tileSpan{sx, sy, sx1, sy1}
					srect := s.tileRect(g, sub)
					t0 := sharedStart(timed)
					local.addShared(s.r.BuildFrontierEpsFrom(s.frontier, srect, pass.eps, s.sub))
					local.endShared(timed, t0)
					runPixels(sub, s.sub, vals)
				}
			}
			return
		}
		if size <= subTileSize {
			runPixels(t, s.frontier, vals)
			return
		}
		// Second level (τKDV): tighten the tile frontier against each
		// sub-tile's much smaller rectangle (rect-to-rect bounds shrink with
		// the query rect), amortized over the sub-tile's pixels, and
		// warm-start pixels from the sub-frontier.
		for sy := t.y0; sy < t.y1; sy += subTileSize {
			sy1 := sy + subTileSize
			if sy1 > t.y1 {
				sy1 = t.y1
			}
			for sx := t.x0; sx < t.x1; sx += subTileSize {
				sx1 := sx + subTileSize
				if sx1 > t.x1 {
					sx1 = t.x1
				}
				sub := tileSpan{sx, sy, sx1, sy1}
				srect := s.tileRect(g, sub)
				t0 := sharedStart(timed)
				local.addShared(s.r.BuildFrontierTauFrom(s.frontier, srect, pass.tau, s.sub))
				local.endShared(timed, t0)
				if decided, hot := s.sub.State(); decided {
					local.TilesDecided++
					fill(sub, hot, vals)
					continue
				}
				runPixels(sub, s.sub, vals)
			}
		}
	}
	return run, cleanup, nil
}

// progWarm warm-starts progressive εKDV evaluation with tile frontiers: the
// first pixel landing in a tile refines from the root (coarse levels touch
// each tile at most once, where building a frontier would cost more than it
// saves), the second touch builds the tile's shared frontier, and every
// later pixel in that tile seeds from it. Paired with Order.GroupByTile so
// deep levels visit each tile's pixels in bursts.
type progWarm struct {
	r                engine.Renderer
	g                *grid.Grid
	size, tilesX     int
	eps              float64
	touched          []bool
	fronts           []engine.Front
	rectMin, rectMax [2]float64
	// stats, when non-nil, accumulates the per-pixel and shared work
	// counters. Progressive evaluation is single-threaded, so plain field
	// updates suffice.
	stats *RenderStats
}

func (k *KDV) newProgWarm(g *grid.Grid, r engine.Renderer, eps float64, st *RenderStats) *progWarm {
	size := k.tileSize()
	if r == nil || size < 2 {
		return nil
	}
	tilesX := (g.Res.W + size - 1) / size
	tilesY := (g.Res.H + size - 1) / size
	return &progWarm{
		r:       r,
		g:       g,
		size:    size,
		tilesX:  tilesX,
		eps:     eps,
		touched: make([]bool, tilesX*tilesY),
		fronts:  make([]engine.Front, tilesX*tilesY),
		stats:   st,
	}
}

func (w *progWarm) eval(px, py int, q []float64) float64 {
	ti := (py/w.size)*w.tilesX + px/w.size
	if f := w.fronts[ti]; f != nil {
		v, st := w.r.EvalEpsFrom(f, q, w.eps)
		if w.stats != nil {
			w.stats.addPixel(st)
		}
		return v
	}
	if !w.touched[ti] {
		w.touched[ti] = true
		v, st := w.r.EvalEps(q, w.eps)
		if w.stats != nil {
			w.stats.addPixel(st)
		}
		return v
	}
	x0, y0 := (px/w.size)*w.size, (py/w.size)*w.size
	x1, y1 := x0+w.size, y0+w.size
	if x1 > w.g.Res.W {
		x1 = w.g.Res.W
	}
	if y1 > w.g.Res.H {
		y1 = w.g.Res.H
	}
	rect := geom.Rect{Min: w.rectMin[:], Max: w.rectMax[:]}
	w.g.Query(x0, y0, rect.Min)
	w.g.Query(x1-1, y1-1, rect.Max)
	f := w.r.NewFront()
	buildSt := w.r.BuildFrontierEps(rect, w.eps, f)
	w.fronts[ti] = f
	v, st := w.r.EvalEpsFrom(f, q, w.eps)
	if w.stats != nil {
		w.stats.Tiles++
		w.stats.addShared(buildSt)
		w.stats.addPixel(st)
	}
	return v
}

// evalCtx carries the per-worker evaluation state: the worker's private
// engine for bound-based methods, nil for scan-based methods.
type evalCtx struct {
	eng engine.Renderer
}

func (k *KDV) newEvalCtx() (*evalCtx, error) {
	if k.proto == nil {
		return &evalCtx{}, nil
	}
	e, err := k.acquireEngine()
	if err != nil {
		return nil, err
	}
	return &evalCtx{eng: e}, nil
}

func (c *evalCtx) release(k *KDV) {
	if c.eng != nil {
		k.releaseEngine(c.eng)
	}
}

// RenderEps computes the full εKDV color map at the given resolution over
// the dataset's bounding window.
func (k *KDV) RenderEps(res Resolution, eps float64) (*DensityMap, error) {
	return k.RenderEpsInCtx(context.Background(), res, eps, Window{})
}

// RenderEpsCtx is RenderEps under a context: cancellation (client
// disconnect, deadline) stops the row workers within one row of work each
// and returns ctx.Err().
func (k *KDV) RenderEpsCtx(ctx context.Context, res Resolution, eps float64) (*DensityMap, error) {
	return k.RenderEpsInCtx(ctx, res, eps, Window{})
}

// RenderEpsIn is RenderEps over an explicit data-space window — the
// pan/zoom form for interactive exploration. A zero Window selects the
// dataset's bounding box.
func (k *KDV) RenderEpsIn(res Resolution, eps float64, win Window) (*DensityMap, error) {
	return k.RenderEpsInCtx(context.Background(), res, eps, win)
}

// RenderEpsInCtx is RenderEpsIn under a context (see RenderEpsCtx).
func (k *KDV) RenderEpsInCtx(ctx context.Context, res Resolution, eps float64, win Window) (*DensityMap, error) {
	return k.renderEpsIn(ctx, res, eps, win, nil, nil)
}

// RenderEpsStats is RenderEps additionally reporting the render's work
// counters — the observability hook behind the repo's benchmarks.
func (k *KDV) RenderEpsStats(res Resolution, eps float64) (*DensityMap, RenderStats, error) {
	return k.RenderEpsStatsInCtx(context.Background(), res, eps, Window{})
}

// RenderEpsStatsInCtx is RenderEpsInCtx additionally reporting the render's
// work counters — the form the server uses for X-KDV-Stats-* headers and
// the slow-query log. On error the stats still describe the work done
// before the render stopped.
func (k *KDV) RenderEpsStatsInCtx(ctx context.Context, res Resolution, eps float64, win Window) (*DensityMap, RenderStats, error) {
	var st RenderStats
	start := time.Now()
	dm, err := k.renderEpsIn(ctx, res, eps, win, &st, nil)
	st.Elapsed = time.Since(start)
	emitRenderSpans(ctx, "render.eps", start, st, err)
	return dm, st, err
}

func (k *KDV) renderEpsIn(ctx context.Context, res Resolution, eps float64, win Window, st *RenderStats, work *WorkMap) (*DensityMap, error) {
	if eps < 0 {
		return nil, fmt.Errorf("quad: negative relative error %g", eps)
	}
	g, err := k.newGridIn(res, win)
	if err != nil {
		return nil, err
	}
	vals, err := k.renderValues(ctx, g, renderPass{eps: eps, stats: st, work: work})
	if err != nil {
		return nil, err
	}
	return &DensityMap{
		Res:       res,
		Values:    vals,
		WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
		WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
	}, nil
}

// RenderTau computes the full τKDV two-color map at the given resolution.
func (k *KDV) RenderTau(res Resolution, tau float64) (*HotspotMap, error) {
	return k.RenderTauInCtx(context.Background(), res, tau, Window{})
}

// RenderTauCtx is RenderTau under a context (see RenderEpsCtx).
func (k *KDV) RenderTauCtx(ctx context.Context, res Resolution, tau float64) (*HotspotMap, error) {
	return k.RenderTauInCtx(ctx, res, tau, Window{})
}

// RenderTauIn is RenderTau over an explicit data-space window (see
// RenderEpsIn).
func (k *KDV) RenderTauIn(res Resolution, tau float64, win Window) (*HotspotMap, error) {
	return k.RenderTauInCtx(context.Background(), res, tau, win)
}

// RenderTauInCtx is RenderTauIn under a context (see RenderEpsCtx).
func (k *KDV) RenderTauInCtx(ctx context.Context, res Resolution, tau float64, win Window) (*HotspotMap, error) {
	return k.renderTauIn(ctx, res, tau, win, nil, nil)
}

// RenderTauStats is RenderTau additionally reporting the render's work
// counters (see RenderEpsStats).
func (k *KDV) RenderTauStats(res Resolution, tau float64) (*HotspotMap, RenderStats, error) {
	return k.RenderTauStatsInCtx(context.Background(), res, tau, Window{})
}

// RenderTauStatsInCtx is RenderTauInCtx additionally reporting the render's
// work counters (see RenderEpsStatsInCtx).
func (k *KDV) RenderTauStatsInCtx(ctx context.Context, res Resolution, tau float64, win Window) (*HotspotMap, RenderStats, error) {
	var st RenderStats
	start := time.Now()
	hm, err := k.renderTauIn(ctx, res, tau, win, &st, nil)
	st.Elapsed = time.Since(start)
	emitRenderSpans(ctx, "render.tau", start, st, err)
	return hm, st, err
}

func (k *KDV) renderTauIn(ctx context.Context, res Resolution, tau float64, win Window, st *RenderStats, work *WorkMap) (*HotspotMap, error) {
	g, err := k.newGridIn(res, win)
	if err != nil {
		return nil, err
	}
	vals, err := k.renderValues(ctx, g, renderPass{tau: tau, isTau: true, stats: st, work: work})
	if err != nil {
		return nil, err
	}
	hot := getHot(len(vals))
	for i, v := range vals {
		hot[i] = v != 0
	}
	putVals(vals)
	return &HotspotMap{
		Res:       res,
		Tau:       tau,
		Hot:       hot,
		WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
		WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
	}, nil
}

// ThresholdStats estimates the mean μ and standard deviation σ of the
// density over a stride-sampled pixel grid, the quantities the paper's τ
// ladder (μ ± kσ) is built from. Values are εKDV estimates with the given
// ε (use a small ε like 0.01).
func (k *KDV) ThresholdStats(res Resolution, stride int, eps float64) (mu, sigma float64, err error) {
	return k.ThresholdStatsCtx(context.Background(), res, stride, eps)
}

// ThresholdStatsCtx is ThresholdStats under a context: cancellation is
// polled between sample rows and returns ctx.Err().
func (k *KDV) ThresholdStatsCtx(ctx context.Context, res Resolution, stride int, eps float64) (mu, sigma float64, err error) {
	if stride < 1 {
		stride = 1
	}
	g, err := k.newGrid(res)
	if err != nil {
		return 0, 0, err
	}
	var samples []float64
	q := make([]float64, 2)
	for y := 0; y < res.H; y += stride {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		for x := 0; x < res.W; x += stride {
			g.Query(x, y, q)
			v, err := k.Estimate(q, eps)
			if err != nil {
				return 0, 0, err
			}
			samples = append(samples, v)
		}
	}
	mu, sigma = stats.MuSigma(samples)
	return mu, sigma, nil
}

// ProgressiveResult is a partial color map produced under a time budget.
type ProgressiveResult struct {
	Map *DensityMap
	// Evaluated is the number of pixels computed exactly (the rest carry
	// coarse fill values from enclosing regions).
	Evaluated int
	// Complete reports whether every pixel was evaluated before the budget
	// expired.
	Complete bool
	// Elapsed is the wall-clock time consumed.
	Elapsed time.Duration
	// Stats aggregates the refinement work of the evaluated pixels (zero
	// for scan-based methods, which perform no bound refinement). Pixels is
	// the evaluated count, not the raster size — progressive renders leave
	// the unevaluated remainder to coarse fill.
	Stats RenderStats
}

// RenderProgressive runs the progressive visualization framework (paper
// Section 6): pixels are εKDV-evaluated in quad-tree order and each value
// fills its sub-region until refined, so a spatially complete coarse map
// exists almost immediately. The run stops when budget elapses (≤ 0 means
// run to completion) or maxPixels pixels were evaluated (≤ 0 means all).
func (k *KDV) RenderProgressive(res Resolution, eps float64, budget time.Duration, maxPixels int) (*ProgressiveResult, error) {
	return k.RenderProgressiveInCtx(context.Background(), res, eps, budget, maxPixels, Window{})
}

// RenderProgressiveCtx is RenderProgressive under a context: cancellation
// is polled between evaluations and returns ctx.Err() promptly. Budget
// expiry still yields the normal partial result with a nil error;
// cancellation is the caller abandoning the render, so no result is
// returned.
func (k *KDV) RenderProgressiveCtx(ctx context.Context, res Resolution, eps float64, budget time.Duration, maxPixels int) (*ProgressiveResult, error) {
	return k.RenderProgressiveInCtx(ctx, res, eps, budget, maxPixels, Window{})
}

// RenderProgressiveIn is RenderProgressive over an explicit data-space
// window (see RenderEpsIn). A zero Window selects the dataset's bounding
// box.
func (k *KDV) RenderProgressiveIn(res Resolution, eps float64, budget time.Duration, maxPixels int, win Window) (*ProgressiveResult, error) {
	return k.RenderProgressiveInCtx(context.Background(), res, eps, budget, maxPixels, win)
}

// RenderProgressiveInCtx is RenderProgressiveIn under a context (see
// RenderProgressiveCtx).
func (k *KDV) RenderProgressiveInCtx(ctx context.Context, res Resolution, eps float64, budget time.Duration, maxPixels int, win Window) (*ProgressiveResult, error) {
	if eps < 0 {
		return nil, fmt.Errorf("quad: negative relative error %g", eps)
	}
	g, err := k.newGridIn(res, win)
	if err != nil {
		return nil, err
	}
	order, err := progressive.BuildOrder(res.internal())
	if err != nil {
		return nil, err
	}
	ec, err := k.newEvalCtx()
	if err != nil {
		return nil, err
	}
	defer ec.release(k)
	var rst RenderStats
	warm := k.newProgWarm(g, ec.eng, eps, &rst)
	if warm != nil {
		order.GroupByTile(warm.size)
	}
	kern := k.cfg.kern.internal()
	q := make([]float64, 2)
	eval := func(px, py int) float64 {
		g.Query(px, py, q)
		switch k.cfg.method {
		case MethodExact:
			return bounds.ExactScan(k.pts, k.weights, kern, k.bw.Gamma, k.bw.Weight, q)
		case MethodZOrder:
			return bounds.ExactScan(k.sample, nil, kern, k.bw.Gamma, k.sampleWeight, q)
		default:
			if warm != nil {
				return warm.eval(px, py, q)
			}
			v, st := ec.eng.EvalEps(q, eps)
			rst.addPixel(st)
			return v
		}
	}
	r, ctxErr := progressive.RunCtx(ctx, order, eval, budget, maxPixels)
	if ctxErr != nil {
		return nil, ctxErr
	}
	rst.Pixels = r.Evaluated
	rst.Elapsed = r.Elapsed
	return &ProgressiveResult{
		Map: &DensityMap{
			Res:       res,
			Values:    r.Values.Data,
			WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
			WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
		},
		Evaluated: r.Evaluated,
		Complete:  r.Complete,
		Elapsed:   r.Elapsed,
		Stats:     rst,
	}, nil
}

// Snapshot is a partial color-map state streamed by
// RenderProgressiveStream: spatially complete at every level, refining
// monotonically across snapshots.
type Snapshot struct {
	// Map is the current raster. Its Values alias the live buffer; copy
	// them if the snapshot is retained beyond the callback.
	Map *DensityMap
	// Evaluated is the number of exactly evaluated pixels so far.
	Evaluated int
	// Level is the quad-tree refinement depth just completed.
	Level int
	// Elapsed is the wall-clock time since the render started.
	Elapsed time.Duration
	// Final marks the stream's last snapshot.
	Final bool
}

// RenderProgressiveStream is the streaming form of RenderProgressive: emit
// is invoked with a spatially complete partial map after every completed
// quad-tree refinement level and once at the end; returning false stops the
// render — the "user terminates the process at any time" interaction of
// paper Section 6. budget ≤ 0 means no time limit.
func (k *KDV) RenderProgressiveStream(res Resolution, eps float64, budget time.Duration, emit func(Snapshot) bool) (*ProgressiveResult, error) {
	return k.RenderProgressiveStreamCtx(context.Background(), res, eps, budget, emit)
}

// RenderProgressiveStreamCtx is RenderProgressiveStream under a context:
// cancellation is polled between evaluations, stops the stream without a
// final snapshot, and returns ctx.Err().
func (k *KDV) RenderProgressiveStreamCtx(ctx context.Context, res Resolution, eps float64, budget time.Duration, emit func(Snapshot) bool) (*ProgressiveResult, error) {
	if eps < 0 {
		return nil, fmt.Errorf("quad: negative relative error %g", eps)
	}
	if emit == nil {
		return nil, fmt.Errorf("quad: nil snapshot callback (use RenderProgressive for non-streaming renders)")
	}
	g, err := k.newGrid(res)
	if err != nil {
		return nil, err
	}
	order, err := progressive.BuildOrder(res.internal())
	if err != nil {
		return nil, err
	}
	ec, err := k.newEvalCtx()
	if err != nil {
		return nil, err
	}
	defer ec.release(k)
	var rst RenderStats
	warm := k.newProgWarm(g, ec.eng, eps, &rst)
	if warm != nil {
		order.GroupByTile(warm.size)
	}
	kern := k.cfg.kern.internal()
	q := make([]float64, 2)
	eval := func(px, py int) float64 {
		g.Query(px, py, q)
		switch k.cfg.method {
		case MethodExact:
			return bounds.ExactScan(k.pts, k.weights, kern, k.bw.Gamma, k.bw.Weight, q)
		case MethodZOrder:
			return bounds.ExactScan(k.sample, nil, kern, k.bw.Gamma, k.sampleWeight, q)
		default:
			if warm != nil {
				return warm.eval(px, py, q)
			}
			v, st := ec.eng.EvalEps(q, eps)
			rst.addPixel(st)
			return v
		}
	}
	dm := &DensityMap{
		Res:       res,
		WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
		WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
	}
	// Per-level spans: each completed quad-tree level becomes a post-hoc
	// span covering [previous snapshot, this snapshot] with the pixels and
	// node evaluations the level consumed.
	tr := trace.FromContext(ctx)
	parentSpan := trace.SpanFromContext(ctx)
	start := time.Now()
	var prevElapsed time.Duration
	prevEvaluated, prevNodes := 0, 0
	r, ctxErr := progressive.RunStreamCtx(ctx, order, eval, budget, 0, func(s progressive.Snapshot) bool {
		dm.Values = s.Values
		if tr != nil {
			sp := tr.Add(fmt.Sprintf("progressive.level.%d", s.Level), parentSpan,
				start.Add(prevElapsed), start.Add(s.Elapsed),
				trace.Int("level", s.Level),
				trace.Int("pixels", s.Evaluated-prevEvaluated),
				trace.Int("node_evals", rst.NodesEvaluated-prevNodes))
			if s.Final {
				sp.SetAttrs(trace.Str("final", "true"))
			}
			prevElapsed, prevEvaluated, prevNodes = s.Elapsed, s.Evaluated, rst.NodesEvaluated
		}
		return emit(Snapshot{
			Map:       dm,
			Evaluated: s.Evaluated,
			Level:     s.Level,
			Elapsed:   s.Elapsed,
			Final:     s.Final,
		})
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	dm.Values = r.Values.Data
	rst.Pixels = r.Evaluated
	rst.Elapsed = r.Elapsed
	return &ProgressiveResult{
		Map:       dm,
		Evaluated: r.Evaluated,
		Complete:  r.Complete,
		Elapsed:   r.Elapsed,
		Stats:     rst,
	}, nil
}

// geomRect converts a public Window to the internal rectangle type.
func geomRect(w Window) geom.Rect {
	return geom.Rect{Min: []float64{w.MinX, w.MinY}, Max: []float64{w.MaxX, w.MaxY}}
}
